(** purec — the pure-C compiler chain as a command-line tool.

    Mirrors the paper's Fig. 1 pipeline on a [.c] file written in the
    supported subset:

    {v
    purec check file.c              verify pure annotations, print diagnostics
    purec compile file.c            run the chain, print the transformed C
    purec run file.c                compile and execute on the instrumented
                                    interpreter; report output and timing
    v}
*)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared arguments *)

let file_arg =
  let doc = "C source file (the supported subset, with pure annotations)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

let mode_arg =
  let doc =
    "Pipeline mode: $(b,pure) (full chain), $(b,seq) (no transformation), \
     $(b,pluto) (polyhedral pass only, manual scop markers), $(b,manual) \
     (hand-written OpenMP pragmas)."
  in
  Arg.(value & opt (enum [ ("pure", `Pure); ("seq", `Seq); ("pluto", `Pluto); ("manual", `Manual) ]) `Pure
       & info [ "m"; "mode" ] ~docv:"MODE" ~doc)

let sica_arg =
  let doc = "Enable the SICA extension (cache-aware tiling + SIMD pragmas)." in
  Arg.(value & flag & info [ "sica" ] ~doc)

let tile_arg =
  let doc = "Tile the permutable band with the given tile size." in
  Arg.(value & opt (some int) None & info [ "tile" ] ~docv:"SIZE" ~doc)

let schedule_arg =
  let doc = "OpenMP schedule clause for generated pragmas, e.g. dynamic,1." in
  Arg.(value & opt (some string) None & info [ "schedule" ] ~docv:"CLAUSE" ~doc)

let cores_arg =
  let doc = "Core counts to simulate (repeatable)." in
  Arg.(value & opt_all int [ 1; 2; 4; 8; 16; 32; 64 ] & info [ "cores" ] ~docv:"N" ~doc)

let backend_arg =
  let doc = "Compiler backend model: gcc or icc." in
  Arg.(value & opt (enum [ ("gcc", Machine.Config.gcc); ("icc", Machine.Config.icc) ])
         Machine.Config.gcc
       & info [ "backend" ] ~docv:"BACKEND" ~doc)

let dump_stages_arg =
  let doc = "Print the source text after each pipeline stage." in
  Arg.(value & flag & info [ "dump-stages" ] ~doc)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let chain_mode mode sica tile schedule =
  let adjust (c : Pluto.config) =
    let c = if sica then { c with Pluto.sica = true; sica_cache = Toolchain.Chain.scaled_sica_cache } else c in
    let c =
      match tile with
      | Some ts -> { c with Pluto.tile = true; tile_sizes = [ ts ] }
      | None -> c
    in
    { c with Pluto.schedule_clause = schedule }
  in
  match mode with
  | `Pure -> Toolchain.Chain.Pure_chain adjust
  | `Seq -> Toolchain.Chain.Sequential
  | `Pluto -> Toolchain.Chain.Plain_pluto adjust
  | `Manual -> Toolchain.Chain.Manual_omp

let report_outcomes (c : Toolchain.Chain.compiled) =
  List.iter
    (fun (o : Pluto.outcome) ->
      match o.Pluto.o_result with
      | Pluto.Transformed { t_units } ->
        List.iter
          (fun (u : Pluto.unit_info) ->
            Fmt.pr "scop at %a: iters [%s], parallel level %s, tiled %d levels%s@."
              Support.Loc.pp o.Pluto.o_loc
              (String.concat ", " u.Pluto.ui_iters)
              (match u.Pluto.ui_parallel with Some l -> string_of_int l | None -> "none")
              u.Pluto.ui_tiled
              (if u.Pluto.ui_identity then "" else " (transformed schedule)"))
          t_units
      | Pluto.Rejected msg -> Fmt.pr "scop at %a: rejected (%s)@." Support.Loc.pp o.Pluto.o_loc msg)
    c.Toolchain.Chain.c_outcomes

let handle_compile_error f =
  try f () with
  | Toolchain.Chain.Compile_error diags ->
    List.iter (fun d -> Fmt.epr "%a@." Support.Diag.pp d) diags;
    exit 1
  | Support.Diag.Fatal d ->
    Fmt.epr "%a@." Support.Diag.pp d;
    exit 1

(* ------------------------------------------------------------------ *)
(* check *)

let check_cmd =
  let run file =
    handle_compile_error (fun () ->
        let src = read_file file in
        let reporter = Support.Diag.create_reporter () in
        let stripped = Cpp.Pc_prepro.strip src in
        let env = Cpp.Preproc.create ~reporter () in
        let pre = Cpp.Preproc.run env stripped.Cpp.Pc_prepro.source in
        let prog = Cfront.Parser.program_of_string ~reporter pre in
        let _ = Sema.Typecheck.check_program ~reporter prog in
        let registry = Purity.Purity_check.check_program ~reporter prog in
        let diags = Support.Diag.diagnostics reporter in
        List.iter (fun d -> Fmt.pr "%a@." Support.Diag.pp d) diags;
        let errors = Support.Diag.errors reporter in
        if errors = [] then begin
          Fmt.pr "OK: all pure annotations verified.@.";
          Fmt.pr "pure functions in scope: %s@."
            (String.concat ", " (Purity.Registry.names registry))
        end
        else exit 1)
  in
  Cmd.v (Cmd.info "check" ~doc:"Verify the purity annotations of a file.")
    Term.(const run $ file_arg)

(* ------------------------------------------------------------------ *)
(* compile *)

let compile_cmd =
  let run file mode sica tile schedule dump =
    handle_compile_error (fun () ->
        let src = read_file file in
        let c = Toolchain.Chain.compile ~mode:(chain_mode mode sica tile schedule) src in
        report_outcomes c;
        if dump then
          List.iter
            (fun (stage, text) -> Fmt.pr "@.===== stage %s =====@.%s@." stage text)
            c.Toolchain.Chain.c_stage_sources
        else Fmt.pr "%s@." c.Toolchain.Chain.c_emitted)
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Run the source-to-source chain and print the result.")
    Term.(const run $ file_arg $ mode_arg $ sica_arg $ tile_arg $ schedule_arg $ dump_stages_arg)

(* ------------------------------------------------------------------ *)
(* run *)

let run_cmd =
  let run file mode sica tile schedule cores backend =
    handle_compile_error (fun () ->
        let src = read_file file in
        let c = Toolchain.Chain.compile ~mode:(chain_mode mode sica tile schedule) src in
        report_outcomes c;
        let profile = Toolchain.Chain.execute c in
        Fmt.pr "--- program output ---@.%s--- end output ---@." profile.Interp.Trace.output;
        Fmt.pr "exit code: %d@." profile.Interp.Trace.return_code;
        Fmt.pr "parallel regions executed: %d@."
          (Interp.Trace.n_parallel_segments profile);
        let cost = Interp.Trace.total_cost profile in
        Fmt.pr "dynamic ops: %d (flops %d, loads %d, stores %d, calls %d)@."
          (Interp.Cost.total_ops cost) (Interp.Cost.total_flops cost) cost.Interp.Cost.loads
          cost.Interp.Cost.stores cost.Interp.Cost.calls;
        Fmt.pr "simulated %s timing:@." backend.Machine.Config.b_name;
        List.iter
          (fun n ->
            let r = Machine.Model.simulate ~backend ~n profile in
            Fmt.pr "  %2d cores: %10.6f s@." n r.Machine.Model.r_seconds)
          cores)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Compile, execute, and simulate timings on the modeled machine.")
    Term.(const run $ file_arg $ mode_arg $ sica_arg $ tile_arg $ schedule_arg $ cores_arg $ backend_arg)

(* ------------------------------------------------------------------ *)

let () =
  let doc = "the pure-C automatic parallelization chain (paper reproduction)" in
  let info = Cmd.info "purec" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ check_cmd; compile_cmd; run_cmd ]))
