examples/quickstart.ml: Cfront Cpp Fmt Interp List Machine Pluto Printf Purity String Support Toolchain
