examples/parallel_spmv.mli:
