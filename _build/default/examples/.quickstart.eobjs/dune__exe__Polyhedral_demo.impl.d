examples/polyhedral_demo.ml: Cfront Codegen Dependence Fmt Linalg List Poly Scop_ir Transform
