examples/polyhedral_demo.mli:
