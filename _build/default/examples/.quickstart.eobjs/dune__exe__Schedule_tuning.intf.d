examples/schedule_tuning.mli:
