examples/quickstart.mli:
