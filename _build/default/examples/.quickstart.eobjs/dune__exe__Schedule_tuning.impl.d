examples/schedule_tuning.ml: Array Fmt List Machine Pluto Toolchain Workloads
