examples/parallel_spmv.ml: Array Domain Float Fmt Fun Lama List Runtime Unix
