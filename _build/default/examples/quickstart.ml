(** Quickstart: annotate a C program with [pure], push it through the
    paper's compiler chain, inspect the transformed source, execute it, and
    simulate the 64-core machine.

    Run with: [dune exec examples/quickstart.exe] *)

let source =
  {|
#include <stdio.h>
#include <stdlib.h>
#define N 64

float **A, **B, **C;

/* a pure function: no side effects, so loops calling it can be
   parallelized automatically (the whole point of the paper) */
pure float mult(float a, float b) {
  return a * b;
}

pure float dot(pure float* a, pure float* b, int size) {
  float res = 0.0f;
  for (int i = 0; i < size; ++i)
    res += mult(a[i], b[i]);
  return res;
}

int main() {
  A = (float**) malloc(N * sizeof(float*));
  B = (float**) malloc(N * sizeof(float*));
  C = (float**) malloc(N * sizeof(float*));
  for (int i = 0; i < N; i++) {
    A[i] = (float*) malloc(N * sizeof(float));
    B[i] = (float*) malloc(N * sizeof(float));
    C[i] = (float*) malloc(N * sizeof(float));
  }
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++) {
      A[i][j] = (i + j) * 0.125f;
      B[i][j] = (2 * i - j) * 0.25f;
    }
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++)
      C[i][j] = dot((pure float*)A[i], (pure float*)B[j], N);
  float trace = 0.0f;
  for (int i = 0; i < N; i++)
    trace += C[i][i];
  printf("trace = %.3f\n", trace);
  return 0;
}
|}

let () =
  Fmt.pr "=== 1. verify the pure annotations ===@.";
  let reporter = Support.Diag.create_reporter () in
  let stripped = Cpp.Pc_prepro.strip source in
  let pre = Cpp.Preproc.run (Cpp.Preproc.create ~reporter ()) stripped.Cpp.Pc_prepro.source in
  let prog = Cfront.Parser.program_of_string ~reporter pre in
  let registry = Purity.Purity_check.check_program ~reporter prog in
  if Support.Diag.has_errors reporter then begin
    List.iter (fun d -> Fmt.epr "%a@." Support.Diag.pp d) (Support.Diag.errors reporter);
    exit 1
  end;
  Fmt.pr "all pure functions verified: %s@.@."
    (String.concat ", "
       (List.filter
          (fun n -> Cfront.Ast.find_func prog n <> None)
          (Purity.Registry.names registry)));

  Fmt.pr "=== 2. run the full chain (PC-PrePro, cpp, PC-CC, polycc, PC-PosPro) ===@.";
  let compiled = Toolchain.Chain.compile ~mode:(Toolchain.Chain.Pure_chain (fun c -> c)) source in
  List.iter
    (fun (o : Pluto.outcome) ->
      match o.Pluto.o_result with
      | Pluto.Transformed { t_units } ->
        List.iter
          (fun (u : Pluto.unit_info) ->
            Fmt.pr "  loop nest [%s]: %s@."
              (String.concat ", " u.Pluto.ui_iters)
              (match u.Pluto.ui_parallel with
              | Some l -> Printf.sprintf "parallelized at level %d" l
              | None -> "kept sequential"))
          t_units
      | Pluto.Rejected msg -> Fmt.pr "  region rejected: %s@." msg)
    compiled.Toolchain.Chain.c_outcomes;
  Fmt.pr "@.=== 3. the transformed C (what PC-PosPro emits) ===@.%s@."
    compiled.Toolchain.Chain.c_emitted;

  Fmt.pr "=== 4. execute on the instrumented interpreter ===@.";
  let profile = Toolchain.Chain.execute compiled in
  Fmt.pr "program says: %s" profile.Interp.Trace.output;
  Fmt.pr "parallel regions executed: %d@.@."
    (Interp.Trace.n_parallel_segments profile);

  Fmt.pr "=== 5. simulate the paper's 64-core Opteron ===@.";
  List.iter
    (fun n ->
      let gcc = Machine.Model.simulate ~backend:Machine.Config.gcc ~n profile in
      let icc = Machine.Model.simulate ~backend:Machine.Config.icc ~n profile in
      Fmt.pr "  %2d cores: gcc %.6f s, icc %.6f s@." n gcc.Machine.Model.r_seconds
        icc.Machine.Model.r_seconds)
    [ 1; 2; 4; 8; 16; 32; 64 ]
