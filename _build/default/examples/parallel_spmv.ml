(** Real parallel execution (no simulation): the LAMA-style ELL SpMV on the
    domain-pool runtime, checked against the sequential kernel — the
    substrate a downstream user would adopt directly from OCaml.

    Run with: [dune exec examples/parallel_spmv.exe] *)

let () =
  let rows = 4096 in
  Fmt.pr "generating a pwtk-like sparse matrix (%d rows)...@." rows;
  let spec = Lama.Matrix_gen.pwtk_like ~rows () in
  let m = Lama.Matrix_gen.generate_ell spec in
  let mn, mx, mean, pad = Lama.Matrix_gen.stats m in
  Fmt.pr "  nnz: %d, row degree min/mean/max = %d/%.1f/%d, ELL padding %.1f%%@."
    (Lama.Ell.nnz m) mn mean mx (100.0 *. pad);

  let x = Lama.Matrix_gen.test_vector rows in
  let y_ref = Lama.Spmv.ell_seq m x in

  let n_domains = max 1 (Domain.recommended_domain_count ()) in
  Fmt.pr "running on a pool of %d execution stream(s)...@." n_domains;
  let pool = Runtime.Pool.create n_domains in
  Fun.protect
    ~finally:(fun () -> Runtime.Pool.shutdown pool)
    (fun () ->
      List.iter
        (fun (label, schedule) ->
          let t0 = Unix.gettimeofday () in
          let reps = 50 in
          let y = ref [||] in
          for _ = 1 to reps do
            y := Lama.Spmv.ell_par pool ~schedule m x
          done;
          let dt = (Unix.gettimeofday () -. t0) /. float_of_int reps in
          let ok = !y = y_ref in
          Fmt.pr "  %-22s %.3f ms/spmv, matches sequential: %b@." label (dt *. 1e3) ok)
        [
          ("schedule(static)", Runtime.Par_loop.Static);
          ("schedule(static,16)", Runtime.Par_loop.Static_chunk 16);
          ("schedule(dynamic,16)", Runtime.Par_loop.Dynamic 16);
        ];
      (* a reduction over the result, also on the pool *)
      let norm2 =
        Runtime.Par_loop.parallel_reduce pool ~lo:0 ~hi:rows ~init:0.0 ~combine:( +. )
          (fun r -> y_ref.(r) *. y_ref.(r))
      in
      Fmt.pr "  ||y||^2 = %.6f (parallel reduction)@." norm2);

  (* cross-check the formats *)
  let csr = Lama.Csr.of_ell m in
  let y_csr = Lama.Spmv.csr_seq csr x in
  Fmt.pr "CSR kernel agrees with ELL: %b@."
    (Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-9) y_ref y_csr)
