(** Schedule tuning on an imbalanced workload — the §4.3.3 story as an API
    walk-through: take the satellite filter, let the chain parallelize it,
    then compare OpenMP schedules on the simulated machine the way the
    paper's authors hand-tuned theirs.

    Run with: [dune exec examples/schedule_tuning.exe] *)

let () =
  let w = 48 and h = 48 and bands = 12 in
  let src = Workloads.Satellite.pure_source ~w ~h ~bands () in

  Fmt.pr "=== the workload: per-pixel AOD retrieval, heavier toward later rows ===@.";
  let iters = Workloads.Reference.satellite_row_iters w h bands in
  Fmt.pr "retrieval iterations, first rows vs last rows:@.";
  Fmt.pr "  rows 0..3:   %d %d %d %d@." iters.(0) iters.(1) iters.(2) iters.(3);
  Fmt.pr "  rows %d..%d: %d %d %d %d@." (h - 4) (h - 1) iters.(h - 4) iters.(h - 3)
    iters.(h - 2)
    iters.(h - 1);
  Fmt.pr "imbalance factor (last/first): %.2f@.@."
    (float_of_int iters.(h - 1) /. float_of_int iters.(0));

  Fmt.pr "=== compile once per schedule clause, execute, simulate ===@.";
  let cores = [ 1; 8; 16; 32; 64 ] in
  Fmt.pr "%-18s" "schedule";
  List.iter (fun n -> Fmt.pr " %9d" n) cores;
  Fmt.pr "@.";
  let results =
    List.map
      (fun (label, clause) ->
        let mode =
          Toolchain.Chain.Pure_chain
            (fun c -> { c with Pluto.schedule_clause = clause })
        in
        let _, profile = Toolchain.Chain.run ~mode src in
        let times =
          List.map
            (fun n ->
              (Machine.Model.simulate ~backend:Machine.Config.gcc ~n profile)
                .Machine.Model.r_seconds)
            cores
        in
        (label, times))
      [
        ("static", None);
        ("static,1", Some "static,1");
        ("static,4", Some "static,4");
        ("dynamic,1", Some "dynamic,1");
        ("dynamic,4", Some "dynamic,4");
      ]
  in
  List.iter
    (fun (label, times) ->
      Fmt.pr "%-18s" label;
      List.iter (fun t -> Fmt.pr " %9.5f" t) times;
      Fmt.pr "@.")
    results;

  (* who wins at each core count? *)
  Fmt.pr "@.best schedule per core count:@.";
  List.iteri
    (fun i n ->
      let best, _ =
        List.fold_left
          (fun (bl, bt) (label, times) ->
            let t = List.nth times i in
            if t < bt then (label, t) else (bl, bt))
          ("", infinity) results
      in
      Fmt.pr "  %2d cores: %s@." n best)
    cores;
  Fmt.pr
    "@.the default contiguous static blocks leave the last cores with the@.\
     heavy rows; the paper's manual fix (schedule(dynamic,1), 4.3.3) and@.\
     interleaved static,1 both spread them.  with one row per core all@.\
     schedules converge again, as Fig. 8 shows at 64 cores.@."
