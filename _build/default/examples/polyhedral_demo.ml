(** The shearing of paper Fig. 2, end to end on the polyhedral library.

    A Gauss–Seidel-style stencil carries dependences in both loops, so the
    rectangular tiling of the original iteration space is invalid.  A
    wavefront skew [ (i, j) -> (i + j, j) ] makes all dependences point
    forward in the new outer dimension; the inner loop becomes parallel.

    Run with: [dune exec examples/polyhedral_demo.exe] *)

open Poly

let nest =
  "for (int i = 1; i < 7; i++)\n\
  \  for (int j = 1; j < 7; j++)\n\
  \    G[i][j] = 0.25 * (G[i - 1][j] + G[i][j - 1] + G[i + 1][j] + G[i][j + 1]);"

let pp_levels ppf levels =
  if levels = [] then Fmt.string ppf "none"
  else Fmt.(list ~sep:comma int) ppf levels

let () =
  Fmt.pr "=== the stencil loop nest ===@.%s@.@." nest;
  let stmt = Cfront.Parser.stmt_of_string nest in
  let unit = Scop_ir.extract_unit stmt in

  Fmt.pr "=== dependence analysis (original order) ===@.";
  let deps = Dependence.dependences unit in
  List.iter
    (fun (d : Dependence.dep) ->
      Fmt.pr "  %s dependence on %s, carried at level %s@."
        (match d.Dependence.dep_kind with
        | Dependence.Flow -> "flow"
        | Dependence.Anti -> "anti"
        | Dependence.Output -> "output")
        d.Dependence.dep_array
        (match d.Dependence.dep_carried with
        | Some l -> string_of_int l
        | None -> "(loop independent)"))
    deps;
  Fmt.pr "carried levels: %a -> parallel loops: %a@.@." pp_levels
    (Dependence.carried_levels unit) pp_levels
    (Dependence.parallel_levels unit);

  Fmt.pr "=== why the red tiling of Fig. 2 is invalid ===@.";
  Fmt.pr "tiling needs a fully permutable band; band check on (i, j): %b@.@."
    (Dependence.band_permutable unit (Linalg.Imat.identity 2) ~l1:1 ~l2:2);

  Fmt.pr "=== the shearing (i, j) -> (i + j, j) ===@.";
  let wave = [| [| 1; 1 |]; [| 0; 1 |] |] in
  Fmt.pr "transform matrix:@.%s@." (Linalg.Imat.to_string wave);
  Fmt.pr "legal: %b@." (Dependence.transform_legal unit wave);
  Fmt.pr "carried levels after shearing: %a (level 2 is now parallel)@.@."
    pp_levels
    (Dependence.carried_levels_under unit wave);

  (* an illegal transform for contrast *)
  let reversal = [| [| -1; 0 |]; [| 0; 1 |] |] in
  Fmt.pr "for contrast, reversing the outer loop is %s@.@."
    (if Dependence.transform_legal unit reversal then "legal (?!)" else "ILLEGAL");

  Fmt.pr "=== what the schedule search picks ===@.";
  let sched = Transform.find_schedule unit in
  Fmt.pr "matrix:@.%s@.parallel levels: %a@.@."
    (Linalg.Imat.to_string sched.Transform.sched_matrix)
    pp_levels sched.Transform.sched_parallel;

  Fmt.pr "=== the regenerated loop nest ===@.";
  let gen = Codegen.generate unit sched in
  List.iter (fun s -> Fmt.pr "%s@." (Cfront.Ast_printer.stmt_to_string s)) gen.Codegen.g_stmts;

  (* draw the sheared iteration space like Fig. 2's right diagram *)
  Fmt.pr "@.=== iteration space, wavefronts marked by outer value t1 = i + j ===@.";
  Fmt.pr "    j:  1  2  3  4  5  6@.";
  for i = 1 to 6 do
    Fmt.pr "i=%d   " i;
    for j = 1 to 6 do
      Fmt.pr "%3d" (i + j)
    done;
    Fmt.pr "@."
  done;
  Fmt.pr "points on the same anti-diagonal run in parallel.@."
