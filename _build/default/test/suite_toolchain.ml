(** End-to-end toolchain tests: every workload variant produces the same
    checksum, the checksums match the independent OCaml references, the
    pipeline reports its stages, and the figure machinery yields sane
    series. *)

let scale = Toolchain.Figures.test_scale

(* datasets are expensive to build; share them across the suite *)
let matmul = lazy (Toolchain.Figures.matmul_dataset scale)

let heat = lazy (Toolchain.Figures.heat_dataset scale)

let satellite = lazy (Toolchain.Figures.satellite_dataset scale)

let lama = lazy (Toolchain.Figures.lama_dataset scale)

let check_agreement name d expected_ref =
  let d = Lazy.force d in
  Alcotest.(check bool) (name ^ ": variants agree") true
    (Toolchain.Figures.checksums_agree d);
  let _, first = List.hd d.Toolchain.Figures.d_checksums in
  (* compare against the independent OCaml implementation, allowing only
     print-rounding differences *)
  let tol = Float.max 1e-3 (Float.abs expected_ref *. 1e-6) in
  Alcotest.(check bool)
    (Printf.sprintf "%s: matches OCaml reference (%g vs %g)" name first expected_ref)
    true
    (Float.abs (first -. expected_ref) <= tol)

let test_matmul_checksums () =
  check_agreement "matmul" matmul
    (Workloads.Reference.matmul_checksum scale.Toolchain.Figures.matmul_n)

let test_heat_checksums () =
  check_agreement "heat" heat
    (Workloads.Reference.heat_checksum scale.Toolchain.Figures.heat_n
       scale.Toolchain.Figures.heat_t)

let test_satellite_checksums () =
  check_agreement "satellite" satellite
    (Workloads.Reference.satellite_checksum scale.Toolchain.Figures.sat_w
       scale.Toolchain.Figures.sat_h scale.Toolchain.Figures.sat_bands)

let test_lama_checksums () =
  check_agreement "lama" lama
    (Workloads.Reference.lama_checksum scale.Toolchain.Figures.lama_rows
       scale.Toolchain.Figures.lama_maxnnz scale.Toolchain.Figures.lama_reps)

let test_pure_chain_parallelizes () =
  (* the headline claim: the pure chain parallelizes regions PluTo alone
     rejects *)
  let src = Workloads.Matmul.pure_source ~n:scale.Toolchain.Figures.matmul_n () in
  let pure_c = Toolchain.Chain.compile ~mode:(Toolchain.Chain.Pure_chain (fun c -> c)) src in
  let parallel, _ = Pluto.summarize pure_c.Toolchain.Chain.c_outcomes in
  Alcotest.(check bool) "pure chain parallelizes scops" true (parallel >= 3);
  (* without the purity stage the same marked program is fully rejected *)
  let reporter = Support.Diag.create_reporter () in
  let prog = Cfront.Parser.program_of_string (Toolchain.Chain.compile ~mode:Toolchain.Chain.Sequential src).Toolchain.Chain.c_emitted in
  ignore reporter;
  ignore prog;
  let registry =
    Purity.Purity_check.check_program ~reporter:(Support.Diag.create_reporter ())
      (Cfront.Parser.program_of_string
         (Cpp.Preproc.run (Cpp.Preproc.create ()) (Cpp.Pc_prepro.strip src).Cpp.Pc_prepro.source))
  in
  let marked =
    Purity.Scop_marker.mark ~registry ~reporter:(Support.Diag.create_reporter ())
      (Cfront.Parser.program_of_string
         (Cpp.Preproc.run (Cpp.Preproc.create ()) (Cpp.Pc_prepro.strip src).Cpp.Pc_prepro.source))
  in
  let _, outcomes = Pluto.run ~config:Pluto.default_config marked in
  let parallel_wo, rejected_wo = Pluto.summarize outcomes in
  Alcotest.(check int) "PluTo alone parallelizes nothing" 0 parallel_wo;
  Alcotest.(check bool) "PluTo alone rejects regions" true (rejected_wo >= 3)

let test_stage_sources () =
  let src = Workloads.Heat.pure_source ~n:8 ~t:2 () in
  let c = Toolchain.Chain.compile ~mode:(Toolchain.Chain.Pure_chain (fun c -> c)) src in
  let stages = List.map fst c.Toolchain.Chain.c_stage_sources in
  Alcotest.(check (list string)) "stage order"
    [ "pc-prepro"; "gcc-E"; "pc-cc"; "polycc"; "pc-pospro" ] stages;
  (* PC-PosPro put the system includes back *)
  Alcotest.(check bool) "includes reinserted" true
    (Support.Util.string_contains ~needle:"#include <stdio.h>" c.Toolchain.Chain.c_emitted);
  (* the final text contains OpenMP pragmas and no pure keyword *)
  Alcotest.(check bool) "omp pragma present" true
    (Support.Util.string_contains ~needle:"#pragma omp parallel for" c.Toolchain.Chain.c_emitted);
  Alcotest.(check bool) "pure lowered away" false
    (Support.Util.string_contains ~needle:"pure " c.Toolchain.Chain.c_emitted)

let test_emitted_c_reparses_and_runs () =
  (* the final C text is itself a valid program with the same behaviour *)
  let src = Workloads.Matmul.pure_source ~n:12 () in
  let c = Toolchain.Chain.compile ~mode:(Toolchain.Chain.Pure_chain (fun c -> c)) src in
  let direct = Toolchain.Chain.execute c in
  let reparsed, rerun = Toolchain.Chain.run ~mode:Toolchain.Chain.Sequential c.Toolchain.Chain.c_emitted in
  ignore reparsed;
  Alcotest.(check string) "same output" direct.Interp.Trace.output rerun.Interp.Trace.output

let test_compile_error_on_bad_purity () =
  let src = "int g;\npure int f(int x) { g = x; return x; }\nint main() { return f(1); }\n" in
  Alcotest.(check bool) "raises Compile_error" true
    (try
       ignore (Toolchain.Chain.compile ~mode:(Toolchain.Chain.Pure_chain (fun c -> c)) src);
       false
     with Toolchain.Chain.Compile_error diags ->
       List.exists (fun d -> d.Support.Diag.code = "pure.global-write") diags)

let test_figure_series_shape () =
  let d = Lazy.force matmul in
  let fig = Toolchain.Figures.fig3 ~scale ~matmul:d () in
  Alcotest.(check int) "three series" 3 (List.length fig.Toolchain.Figures.f_series);
  List.iter
    (fun s ->
      Alcotest.(check int) "seven core counts" 7 (List.length s.Toolchain.Figures.s_points);
      List.iter
        (fun (_, v) ->
          Alcotest.(check bool) "positive finite" true (Float.is_finite v && v > 0.0))
        s.Toolchain.Figures.s_points)
    fig.Toolchain.Figures.f_series

let test_speedup_figures_consistent () =
  let d = Lazy.force heat in
  let f6 = Toolchain.Figures.fig6 ~scale ~heat:d () in
  let f7 = Toolchain.Figures.fig7 ~scale ~heat:d () in
  let seq = List.assoc "seq-gcc" f6.Toolchain.Figures.f_baselines in
  List.iter2
    (fun s6 s7 ->
      List.iter2
        (fun (_, t) (_, sp) ->
          Alcotest.(check (float 1e-6)) "speedup = seq/time" (seq /. t) sp)
        s6.Toolchain.Figures.s_points s7.Toolchain.Figures.s_points)
    f6.Toolchain.Figures.f_series f7.Toolchain.Figures.f_series

let test_satellite_imbalance_premise () =
  (* the later rows really are heavier (the premise of the dynamic-schedule
     story) *)
  let iters =
    Workloads.Reference.satellite_row_iters scale.Toolchain.Figures.sat_w
      scale.Toolchain.Figures.sat_h scale.Toolchain.Figures.sat_bands
  in
  let h = Array.length iters in
  Alcotest.(check bool) "last row heavier than first" true
    (iters.(h - 1) > iters.(0))

let test_dynamic_helps_satellite () =
  let d = Lazy.force satellite in
  let auto = Toolchain.Figures.profile d "pure" in
  let manual = Toolchain.Figures.profile d "manual-dyn" in
  let t p n =
    (Machine.Model.simulate ~backend:Machine.Config.gcc ~n p).Machine.Model.r_seconds
  in
  (* at an intermediate core count the dynamic schedule must not lose to
     static by more than noise, and typically wins *)
  Alcotest.(check bool) "dynamic not worse at 16" true (t manual 16 <= t auto 16 *. 1.05)

let suite =
  [
    Alcotest.test_case "matmul checksums vs reference" `Slow test_matmul_checksums;
    Alcotest.test_case "heat checksums vs reference" `Slow test_heat_checksums;
    Alcotest.test_case "satellite checksums vs reference" `Slow test_satellite_checksums;
    Alcotest.test_case "lama checksums vs reference" `Slow test_lama_checksums;
    Alcotest.test_case "pure chain parallelizes, PluTo alone cannot" `Slow
      test_pure_chain_parallelizes;
    Alcotest.test_case "pipeline stages" `Quick test_stage_sources;
    Alcotest.test_case "emitted C reparses and runs" `Quick test_emitted_c_reparses_and_runs;
    Alcotest.test_case "purity errors abort compilation" `Quick test_compile_error_on_bad_purity;
    Alcotest.test_case "figure series shape" `Slow test_figure_series_shape;
    Alcotest.test_case "speedup figures consistent" `Slow test_speedup_figures_consistent;
    Alcotest.test_case "satellite imbalance premise" `Quick test_satellite_imbalance_premise;
    Alcotest.test_case "dynamic schedule helps satellite" `Slow test_dynamic_helps_satellite;
  ]
