(** Polyhedral-engine tests: exact rational linear algebra, Fourier–Motzkin,
    SCoP extraction, dependence analysis, schedule legality, and codegen
    equivalence (including the Fig. 2 wavefront skew and tiling). *)

open Poly

(* ------------------------------------------------------------------ *)
(* Rationals and matrices *)

let qgen = QCheck.Gen.(map2 (fun n d -> Linalg.Q.make n (if d = 0 then 1 else d)) (int_range (-50) 50) (int_range (-20) 20))

let qarb = QCheck.make qgen

let qcheck_q_add_comm =
  QCheck.Test.make ~name:"Q addition commutative" ~count:300 (QCheck.pair qarb qarb)
    (fun (a, b) -> Linalg.Q.equal (Linalg.Q.add a b) (Linalg.Q.add b a))

let qcheck_q_mul_inverse =
  QCheck.Test.make ~name:"Q multiplicative inverse" ~count:300 qarb (fun a ->
      QCheck.assume (not (Linalg.Q.is_zero a));
      Linalg.Q.equal Linalg.Q.one (Linalg.Q.mul a (Linalg.Q.div Linalg.Q.one a)))

let test_q_floor_ceil () =
  Alcotest.(check int) "floor 7/2" 3 (Linalg.Q.floor (Linalg.Q.make 7 2));
  Alcotest.(check int) "floor -7/2" (-4) (Linalg.Q.floor (Linalg.Q.make (-7) 2));
  Alcotest.(check int) "ceil 7/2" 4 (Linalg.Q.ceil (Linalg.Q.make 7 2));
  Alcotest.(check int) "ceil -7/2" (-3) (Linalg.Q.ceil (Linalg.Q.make (-7) 2))

(* random unimodular matrix: product of elementary row operations *)
let unimodular_gen d =
  QCheck.Gen.(
    let* steps = list_size (int_range 0 6) (triple (int_range 0 (d - 1)) (int_range 0 (d - 1)) (int_range (-2) 2)) in
    let m = Linalg.Imat.identity d in
    let m =
      List.fold_left
        (fun m (r, c, f) ->
          if r = c || f = 0 then m
          else begin
            let e = Linalg.Imat.identity d in
            e.(r).(c) <- f;
            Linalg.Imat.mul e m
          end)
        m steps
    in
    return m)

let qcheck_unimodular_inverse =
  QCheck.Test.make ~name:"unimodular inverse is exact" ~count:200
    (QCheck.make (unimodular_gen 3))
    (fun m ->
      Linalg.Imat.is_unimodular m
      &&
      match Linalg.Imat.inverse m with
      | None -> false
      | Some inv ->
        let prod = Linalg.Imat.mul m inv in
        prod = Linalg.Imat.identity 3)

let test_determinant () =
  Alcotest.(check bool) "det id = 1" true
    (Linalg.Q.equal Linalg.Q.one (Linalg.Imat.determinant (Linalg.Imat.identity 4)));
  let swap = [| [| 0; 1 |]; [| 1; 0 |] |] in
  Alcotest.(check bool) "det swap = -1" true
    (Linalg.Q.equal (Linalg.Q.of_int (-1)) (Linalg.Imat.determinant swap));
  let sing = [| [| 1; 2 |]; [| 2; 4 |] |] in
  Alcotest.(check bool) "det singular = 0" true
    (Linalg.Q.is_zero (Linalg.Imat.determinant sing));
  Alcotest.(check bool) "no inverse" true (Linalg.Imat.inverse sing = None)

(* ------------------------------------------------------------------ *)
(* Affine forms *)

let space2 = Affine.space ~iters:[ "i"; "j" ] ~params:[ "n" ]

let test_affine_eval () =
  let a =
    Affine.add
      (Affine.scale 2 (Affine.of_iter space2 "i"))
      (Affine.add (Affine.of_param space2 "n") (Affine.const space2 3))
  in
  Alcotest.(check int) "2i + n + 3 at (5, _, n=10)" 23
    (Affine.eval a ~iters:[| 5; 0 |] ~params:[| 10 |])

let test_affine_subst_matrix () =
  (* x = M y with M = [[1,1],[0,1]]: old i = y0 + y1, old j = y1 *)
  let m = [| [| 1; 1 |]; [| 0; 1 |] |] in
  let a = Affine.of_iter space2 "i" in
  let a' = Affine.apply_iter_subst a m in
  Alcotest.(check int) "coeff y0" 1 a'.Affine.it.(0);
  Alcotest.(check int) "coeff y1" 1 a'.Affine.it.(1)

(* ------------------------------------------------------------------ *)
(* Polyhedra: emptiness vs enumeration *)

(* a random polyhedron inside a small box, with extra random constraints *)
let box_poly_gen =
  QCheck.Gen.(
    let* extra =
      list_size (int_range 0 4)
        (map2
           (fun (ci, cj) c -> (ci, cj, c))
           (pair (int_range (-2) 2) (int_range (-2) 2))
           (int_range (-6) 6))
    in
    return extra)

let build_box_poly extra =
  let space = Affine.space ~iters:[ "i"; "j" ] ~params:[] in
  let i = Affine.of_iter space "i" and j = Affine.of_iter space "j" in
  let p = Polyhedron.universe space in
  let p = Polyhedron.ge2 p i (Affine.const space 0) in
  let p = Polyhedron.le2 p i (Affine.const space 5) in
  let p = Polyhedron.ge2 p j (Affine.const space 0) in
  let p = Polyhedron.le2 p j (Affine.const space 5) in
  List.fold_left
    (fun p (ci, cj, c) ->
      let aff =
        Affine.add
          (Affine.add (Affine.scale ci i) (Affine.scale cj j))
          (Affine.const space c)
      in
      Polyhedron.ge p aff)
    p extra

let brute_force_empty p =
  let pts = ref true in
  for i = 0 to 5 do
    for j = 0 to 5 do
      if Polyhedron.contains p ~iters:[| i; j |] ~params:[||] then pts := false
    done
  done;
  !pts

let qcheck_fm_emptiness =
  QCheck.Test.make ~name:"FM emptiness is sound on boxes" ~count:300
    (QCheck.make box_poly_gen)
    (fun extra ->
      let p = build_box_poly extra in
      (* FM may conservatively claim non-emptiness for an integer-empty set
         (dark-shadow gap), but the converse direction must hold: when it
         says empty, no integer point exists; and when integer points exist,
         it must say non-empty *)
      if Polyhedron.is_empty p then brute_force_empty p
      else true)

let qcheck_enumerate_matches_contains =
  QCheck.Test.make ~name:"enumerate = filter contains" ~count:200
    (QCheck.make box_poly_gen)
    (fun extra ->
      let p = build_box_poly extra in
      let enumerated = List.sort compare (Polyhedron.enumerate p ~params:[||]) in
      let brute = ref [] in
      for i = 5 downto 0 do
        for j = 5 downto 0 do
          if Polyhedron.contains p ~iters:[| i; j |] ~params:[||] then
            brute := [ i; j ] :: !brute
        done
      done;
      enumerated = List.sort compare !brute)

let test_bounds_for () =
  let space = Affine.space ~iters:[ "i" ] ~params:[ "n" ] in
  let i = Affine.of_iter space "i" in
  let p = Polyhedron.universe space in
  let p = Polyhedron.ge2 p i (Affine.const space 2) in
  let p = Polyhedron.lt2 p i (Affine.of_param space "n") in
  let lowers, uppers = Polyhedron.bounds_for p 0 in
  Alcotest.(check int) "one lower" 1 (List.length lowers);
  Alcotest.(check int) "one upper" 1 (List.length uppers);
  let _, lo = List.hd lowers and _, up = List.hd uppers in
  Alcotest.(check int) "lower const" 2 lo.Affine.const;
  Alcotest.(check int) "upper n-1" (-1) up.Affine.const;
  Alcotest.(check int) "upper n coeff" 1 up.Affine.par.(0)

(* ------------------------------------------------------------------ *)
(* SCoP extraction *)

let extract src =
  let stmt = Cfront.Parser.stmt_of_string src in
  Scop_ir.extract_unit stmt

let matmul_nest =
  "for (int i = 0; i < 16; i++)\n\
  \  for (int j = 0; j < 16; j++)\n\
  \    for (int k = 0; k < 16; k++)\n\
  \      C[i][j] = C[i][j] + A[i][k] * B[k][j];"

let test_extract_matmul () =
  let u = extract matmul_nest in
  Alcotest.(check (list string)) "iters" [ "i"; "j"; "k" ] u.Scop_ir.u_iters;
  let b = List.hd u.Scop_ir.u_body in
  Alcotest.(check int) "one write" 1 (List.length b.Scop_ir.b_writes);
  Alcotest.(check int) "three reads" 3 (List.length b.Scop_ir.b_reads);
  Alcotest.(check int) "domain points" (16 * 16 * 16)
    (List.length (Polyhedron.enumerate u.Scop_ir.u_domain ~params:[||]))

let test_extract_parametric_bound () =
  let u = extract "for (int i = 2; i < n - 1; i++) a[i] = b[i + 1];" in
  Alcotest.(check (list string)) "param discovered" [ "n" ]
    (Array.to_list u.Scop_ir.u_space.Affine.params)

let test_extract_rejects_calls () =
  Alcotest.(check bool) "call rejected" true
    (try
       ignore (extract "for (int i = 0; i < 4; i++) a[i] = f(i);");
       false
     with Scop_ir.Not_affine _ -> true)

let test_extract_rejects_nonaffine () =
  Alcotest.(check bool) "i*i rejected" true
    (try
       ignore (extract "for (int i = 0; i < 4; i++) a[i * i] = 0;");
       false
     with Scop_ir.Not_affine _ -> true)

let test_extract_accepts_tmpconst () =
  let u = extract "for (int i = 0; i < 4; i++) a[i] = tmpConst_f_0;" in
  Alcotest.(check int) "no reads from the opaque constant" 0
    (List.length (List.hd u.Scop_ir.u_body).Scop_ir.b_reads)

(* ------------------------------------------------------------------ *)
(* Dependence analysis *)

let test_deps_matmul () =
  let u = extract matmul_nest in
  Alcotest.(check (list int)) "reduction carried at level 3" [ 3 ]
    (Dependence.carried_levels u);
  Alcotest.(check (list int)) "i and j parallel" [ 1; 2 ] (Dependence.parallel_levels u)

let seidel_nest =
  "for (int i = 1; i < 15; i++)\n\
  \  for (int j = 1; j < 15; j++)\n\
  \    G[i][j] = 0.25 * (G[i - 1][j] + G[i][j - 1] + G[i + 1][j] + G[i][j + 1]);"

let test_deps_seidel () =
  let u = extract seidel_nest in
  Alcotest.(check (list int)) "both levels carry" [ 1; 2 ] (Dependence.carried_levels u);
  Alcotest.(check (list int)) "nothing parallel" [] (Dependence.parallel_levels u)

let test_deps_jacobi () =
  let u =
    extract
      "for (int i = 1; i < 15; i++)\n\
      \  for (int j = 1; j < 15; j++)\n\
      \    B[i][j] = 0.25 * (A[i - 1][j] + A[i][j - 1] + A[i + 1][j] + A[i][j + 1]);"
  in
  Alcotest.(check (list int)) "no deps at all" [] (Dependence.carried_levels u)

let test_deps_recurrence () =
  let u = extract "for (int i = 1; i < 100; i++) a[i] = a[i - 1] + 1;" in
  Alcotest.(check (list int)) "level 1 carried" [ 1 ] (Dependence.carried_levels u)

let test_deps_stride_disjoint () =
  (* a[2i] vs a[2i+1] never overlap: the integer-tightened FM must see it *)
  let u = extract "for (int i = 0; i < 50; i++) a[2 * i] = a[2 * i + 1];" in
  Alcotest.(check (list int)) "no dependence" [] (Dependence.carried_levels u)

(* ------------------------------------------------------------------ *)
(* Transform legality and schedule search *)

let test_identity_always_legal () =
  List.iter
    (fun src ->
      let u = extract src in
      let d = List.length u.Scop_ir.u_iters in
      Alcotest.(check bool) "identity legal" true
        (Dependence.transform_legal u (Linalg.Imat.identity d)))
    [ matmul_nest; seidel_nest; "for (int i = 1; i < 100; i++) a[i] = a[i - 1] + 1;" ]

let test_reversal_illegal () =
  let u = extract "for (int i = 1; i < 100; i++) a[i] = a[i - 1] + 1;" in
  Alcotest.(check bool) "reversal illegal" false
    (Dependence.transform_legal u [| [| -1 |] |])

let test_seidel_wavefront () =
  let u = extract seidel_nest in
  let wave = [| [| 1; 1 |]; [| 0; 1 |] |] in
  Alcotest.(check bool) "wavefront legal" true (Dependence.transform_legal u wave);
  Alcotest.(check (list int)) "inner parallel after skew" [ 1 ]
    (Dependence.carried_levels_under u wave);
  (* the search must find a schedule exposing parallelism *)
  let sched = Transform.find_schedule u in
  Alcotest.(check bool) "search found parallelism" true
    (sched.Transform.sched_parallel <> []);
  Alcotest.(check bool) "and it is not the identity" false
    sched.Transform.sched_is_identity

let test_matmul_schedule_identity () =
  let u = extract matmul_nest in
  let sched = Transform.find_schedule u in
  Alcotest.(check bool) "identity kept" true sched.Transform.sched_is_identity;
  Alcotest.(check (list int)) "outer parallel" [ 1; 2 ] sched.Transform.sched_parallel;
  Alcotest.(check int) "full band permutable" 3 sched.Transform.sched_band

let test_interchange_legal_matmul () =
  let u = extract matmul_nest in
  let interchange = [| [| 0; 1; 0 |]; [| 1; 0; 0 |]; [| 0; 0; 1 |] |] in
  Alcotest.(check bool) "i<->j interchange legal" true
    (Dependence.transform_legal u interchange)

(* ------------------------------------------------------------------ *)
(* Codegen equivalence: generated nests compute the same values *)

let run_output mode src =
  let _, profile = Toolchain.Chain.run ~mode src in
  profile.Interp.Trace.output

let check_variants_equal name src adjusts =
  let base = run_output Toolchain.Chain.Sequential src in
  List.iter
    (fun (label, adjust) ->
      let out = run_output (Toolchain.Chain.Plain_pluto adjust) src in
      Alcotest.(check string) (name ^ "/" ^ label) base out)
    adjusts

let test_codegen_matmul_equiv () =
  let src =
    "#pragma scop\n" ^ "int dummy_marker;\n"
  in
  ignore src;
  let program =
    "float A[12][12]; float B[12][12]; float C[12][12];\n\
     int main() {\n\
    \  for (int i = 0; i < 12; i++)\n\
    \    for (int j = 0; j < 12; j++) {\n\
    \      A[i][j] = i * 0.5f + j;\n\
    \      B[i][j] = i - 0.25f * j;\n\
    \      C[i][j] = 0.0f;\n\
    \    }\n\
     #pragma scop\n\
    \  for (int i = 0; i < 12; i++)\n\
    \    for (int j = 0; j < 12; j++)\n\
    \      for (int k = 0; k < 12; k++)\n\
    \        C[i][j] = C[i][j] + A[i][k] * B[k][j];\n\
     #pragma endscop\n\
    \  float s = 0.0f;\n\
    \  for (int i = 0; i < 12; i++)\n\
    \    for (int j = 0; j < 12; j++)\n\
    \      s += C[i][j] * (i - j);\n\
    \  printf(\"%.4f\\n\", s);\n\
    \  return 0;\n\
     }\n"
  in
  check_variants_equal "matmul" program
    [
      ("untiled", (fun c -> c));
      ("tiled 5", fun c -> { c with Pluto.tile = true; tile_sizes = [ 5 ] });
      ("tiled 4x3", fun c -> { c with Pluto.tile = true; tile_sizes = [ 4; 3 ] });
      ("sica", fun c -> { c with Pluto.sica = true });
    ]

let test_codegen_seidel_equiv () =
  (* the wavefront skew (Fig. 2) must preserve the sequential result *)
  let program =
    "double G[14][14];\n\
     int main() {\n\
    \  for (int i = 0; i < 14; i++)\n\
    \    for (int j = 0; j < 14; j++)\n\
    \      G[i][j] = (i * 7 + j * 3) % 13 * 0.5;\n\
     #pragma scop\n\
    \  for (int i = 1; i < 13; i++)\n\
    \    for (int j = 1; j < 13; j++)\n\
    \      G[i][j] = 0.25 * (G[i - 1][j] + G[i][j - 1] + G[i + 1][j] + G[i][j + 1]);\n\
     #pragma endscop\n\
    \  double s = 0.0;\n\
    \  for (int i = 0; i < 14; i++)\n\
    \    for (int j = 0; j < 14; j++)\n\
    \      s += G[i][j] * ((i + 2 * j) % 5);\n\
    \  printf(\"%.6f\\n\", s);\n\
    \  return 0;\n\
     }\n"
  in
  check_variants_equal "seidel" program [ ("wavefront", fun c -> c) ]

let test_codegen_triangular_equiv () =
  let program =
    "double T[20][20];\n\
     int main() {\n\
     #pragma scop\n\
    \  for (int i = 0; i < 20; i++)\n\
    \    for (int j = 0; j <= i; j++)\n\
    \      T[i][j] = i * 20 + j;\n\
     #pragma endscop\n\
    \  double s = 0.0;\n\
    \  for (int i = 0; i < 20; i++)\n\
    \    for (int j = 0; j < 20; j++)\n\
    \      s += T[i][j];\n\
    \  printf(\"%.1f\\n\", s);\n\
    \  return 0;\n\
     }\n"
  in
  check_variants_equal "triangular" program [ ("plain", fun c -> c) ]

(* qcheck: random unimodular transforms that happen to be legal preserve the
   recurrence result *)
let qcheck_legal_transform_preserves =
  QCheck.Test.make ~name:"legal transform preserves seidel semantics" ~count:25
    (QCheck.make (unimodular_gen 2))
    (fun m ->
      let u = extract seidel_nest in
      QCheck.assume (Linalg.Imat.is_unimodular m);
      if not (Dependence.transform_legal u m) then true
      else begin
        (* generate code under this transform and execute *)
        let sched = Transform.analyze u m in
        let gen = Codegen.generate u sched in
        let body =
          String.concat "\n" (List.map Cfront.Ast_printer.stmt_to_string gen.Codegen.g_stmts)
        in
        let program header tail = header ^ body ^ tail in
        let header =
          "double G[16][16];\n\
           int main() {\n\
          \  for (int i = 0; i < 16; i++)\n\
          \    for (int j = 0; j < 16; j++)\n\
          \      G[i][j] = (i * 5 + j) % 7 * 0.25;\n{\n"
        in
        let tail =
          "}\n  double s = 0.0;\n\
          \  for (int i = 0; i < 16; i++)\n\
          \    for (int j = 0; j < 16; j++)\n\
          \      s += G[i][j] * (i + 2 * j);\n\
          \  printf(\"%.6f\\n\", s);\n\
          \  return 0;\n\
           }\n"
        in
        (* reference: original nest in place of the generated body *)
        let reference =
          header
          ^ "for (int i = 1; i < 15; i++)\n\
            \  for (int j = 1; j < 15; j++)\n\
            \    G[i][j] = 0.25 * (G[i - 1][j] + G[i][j - 1] + G[i + 1][j] + G[i][j + 1]);\n"
          ^ tail
        in
        let run src = (Interp.Exec.run (Cfront.Parser.program_of_string src)).Interp.Trace.output in
        run (program header tail) = run reference
      end)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_q_add_comm;
    QCheck_alcotest.to_alcotest qcheck_q_mul_inverse;
    Alcotest.test_case "Q floor/ceil" `Quick test_q_floor_ceil;
    QCheck_alcotest.to_alcotest qcheck_unimodular_inverse;
    Alcotest.test_case "determinants" `Quick test_determinant;
    Alcotest.test_case "affine eval" `Quick test_affine_eval;
    Alcotest.test_case "affine matrix substitution" `Quick test_affine_subst_matrix;
    QCheck_alcotest.to_alcotest qcheck_fm_emptiness;
    QCheck_alcotest.to_alcotest qcheck_enumerate_matches_contains;
    Alcotest.test_case "bounds extraction" `Quick test_bounds_for;
    Alcotest.test_case "extract matmul" `Quick test_extract_matmul;
    Alcotest.test_case "extract parametric bound" `Quick test_extract_parametric_bound;
    Alcotest.test_case "extraction rejects calls" `Quick test_extract_rejects_calls;
    Alcotest.test_case "extraction rejects non-affine" `Quick test_extract_rejects_nonaffine;
    Alcotest.test_case "extraction accepts tmpConst" `Quick test_extract_accepts_tmpconst;
    Alcotest.test_case "deps: matmul reduction" `Quick test_deps_matmul;
    Alcotest.test_case "deps: seidel" `Quick test_deps_seidel;
    Alcotest.test_case "deps: jacobi has none" `Quick test_deps_jacobi;
    Alcotest.test_case "deps: recurrence" `Quick test_deps_recurrence;
    Alcotest.test_case "deps: disjoint strides" `Quick test_deps_stride_disjoint;
    Alcotest.test_case "identity always legal" `Quick test_identity_always_legal;
    Alcotest.test_case "reversal illegal" `Quick test_reversal_illegal;
    Alcotest.test_case "seidel wavefront" `Quick test_seidel_wavefront;
    Alcotest.test_case "matmul schedule identity" `Quick test_matmul_schedule_identity;
    Alcotest.test_case "matmul interchange legal" `Quick test_interchange_legal_matmul;
    Alcotest.test_case "codegen: matmul variants equivalent" `Quick test_codegen_matmul_equiv;
    Alcotest.test_case "codegen: seidel wavefront equivalent" `Quick test_codegen_seidel_equiv;
    Alcotest.test_case "codegen: triangular domain" `Quick test_codegen_triangular_equiv;
    QCheck_alcotest.to_alcotest qcheck_legal_transform_preserves;
  ]
