(** Lexer tests: tokens, literals, comments, pragmas, locations. *)

open Cfront

let toks src = List.map (fun s -> s.Token.tok) (Lexer.tokenize src)

let check_toks name expected src = Alcotest.(check (list string)) name expected (List.map Token.to_string (toks src))

let test_keywords () =
  check_toks "keywords"
    [ "pure"; "int"; "float"; "double"; "for"; "while"; "return"; "<eof>" ]
    "pure int float double for while return"

let test_identifiers () =
  check_toks "identifiers" [ "foo"; "_bar"; "x9"; "pureX"; "<eof>" ] "foo _bar x9 pureX"

let test_int_literals () =
  match toks "0 42 1000000 7u 7l 7ul" with
  | [ Token.INT_LIT 0; INT_LIT 42; INT_LIT 1000000; INT_LIT 7; INT_LIT 7; INT_LIT 7; EOF ]
    ->
    ()
  | _ -> Alcotest.fail "int literals mis-lexed"

let test_float_literals () =
  match toks "1.5 0.25f 1e3 2.5e-2 3.f" with
  | [
   Token.FLOAT_LIT (1.5, false);
   FLOAT_LIT (0.25, true);
   FLOAT_LIT (1000.0, false);
   FLOAT_LIT (0.025, false);
   FLOAT_LIT (3.0, true);
   EOF;
  ] ->
    ()
  | l -> Alcotest.failf "float literals mis-lexed: %s" (String.concat " " (List.map Token.to_string l))

let test_string_char () =
  match toks {|"hi\n" 'a' '\n'|} with
  | [ Token.STR_LIT "hi\n"; CHAR_LIT 'a'; CHAR_LIT '\n'; EOF ] -> ()
  | _ -> Alcotest.fail "string/char literals mis-lexed"

let test_operators () =
  check_toks "ops"
    [ "+"; "+="; "++"; "->"; "<="; "<<"; "<"; "&&"; "&"; "=="; "="; "!="; "!"; "<eof>" ]
    "+ += ++ -> <= << < && & == = != !"

let test_comments () =
  check_toks "comments" [ "a"; "b"; "<eof>" ] "a /* comment \n more */ b // trailing\n"

let test_pragma () =
  match toks "#pragma omp parallel for private(j)\nint x;" with
  | [ Token.PRAGMA "omp parallel for private(j)"; KW_INT; IDENT "x"; SEMI; EOF ] -> ()
  | _ -> Alcotest.fail "pragma mis-lexed"

let test_line_marker_skipped () =
  check_toks "line markers" [ "int"; "x"; ";"; "<eof>" ] "# 1 \"foo.c\"\nint x;"

let test_locations () =
  let spanned = Lexer.tokenize ~file:"f.c" "int\n  x;" in
  match spanned with
  | [ { Token.loc = l1; _ }; { Token.loc = l2; _ }; _; _ ] ->
    Alcotest.(check int) "line 1" 1 l1.Support.Loc.line;
    Alcotest.(check int) "line 2" 2 l2.Support.Loc.line;
    Alcotest.(check int) "col 3" 3 l2.Support.Loc.col
  | _ -> Alcotest.fail "unexpected token count"

let test_unterminated_comment () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Lexer.tokenize "/* never closed");
       false
     with Support.Diag.Fatal _ -> true)

let test_unexpected_char () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Lexer.tokenize "int @ x;");
       false
     with Support.Diag.Fatal _ -> true)

(* qcheck: lexing the printed form of random identifier/integer sequences is
   the identity *)
let ident_gen =
  QCheck.Gen.(
    let* first = oneofl [ 'a'; 'b'; 'z'; '_' ] in
    let* rest = string_size ~gen:(oneofl [ 'a'; '1'; '_'; 'Z' ]) (int_range 0 6) in
    return (String.make 1 first ^ rest))

let qcheck_roundtrip =
  QCheck.Test.make ~name:"lex(print(tokens)) = tokens" ~count:200
    (QCheck.make
       QCheck.Gen.(list_size (int_range 1 20) (oneof [ map (fun i -> Token.INT_LIT (abs i)) nat; map (fun s -> Token.IDENT s) ident_gen ])))
    (fun tokens ->
      (* avoid keyword collisions *)
      let tokens =
        List.filter
          (fun t ->
            match t with
            | Token.IDENT s -> not (List.mem_assoc s Token.keyword_table)
            | _ -> true)
          tokens
      in
      let printed = String.concat " " (List.map Token.to_string tokens) in
      let relexed = List.filter (( <> ) Token.EOF) (List.map (fun s -> s.Token.tok) (Lexer.tokenize printed)) in
      relexed = tokens)

let suite =
  [
    Alcotest.test_case "keywords" `Quick test_keywords;
    Alcotest.test_case "identifiers" `Quick test_identifiers;
    Alcotest.test_case "int literals" `Quick test_int_literals;
    Alcotest.test_case "float literals" `Quick test_float_literals;
    Alcotest.test_case "string and char literals" `Quick test_string_char;
    Alcotest.test_case "operators" `Quick test_operators;
    Alcotest.test_case "comments" `Quick test_comments;
    Alcotest.test_case "pragma" `Quick test_pragma;
    Alcotest.test_case "line markers skipped" `Quick test_line_marker_skipped;
    Alcotest.test_case "locations" `Quick test_locations;
    Alcotest.test_case "unterminated comment" `Quick test_unterminated_comment;
    Alcotest.test_case "unexpected char" `Quick test_unexpected_char;
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
  ]
