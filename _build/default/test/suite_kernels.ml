(** Kernel-gallery tests: each classic polyhedral kernel must survive the
    chain with a bit-identical result, and the engine must find the
    transform properties the kernel is known to have (reduction loops kept
    inner, wavefronts skewed, time loops sequentialized, ...). *)

let mode_for (k : Workloads.Kernels.kernel) =
  (* kernels without manual scop markers go through the full pure chain *)
  if Support.Util.string_contains ~needle:"#pragma scop" k.Workloads.Kernels.k_source
  then Toolchain.Chain.Plain_pluto (fun c -> c)
  else Toolchain.Chain.Pure_chain (fun c -> c)

let compile_and_run (k : Workloads.Kernels.kernel) =
  let seq = snd (Toolchain.Chain.run ~mode:Toolchain.Chain.Sequential k.k_source) in
  let compiled = Toolchain.Chain.compile ~mode:(mode_for k) k.k_source in
  let par = Toolchain.Chain.execute compiled in
  (seq, compiled, par)

let first_unit (compiled : Toolchain.Chain.compiled) =
  List.find_map
    (fun (o : Pluto.outcome) ->
      match o.Pluto.o_result with
      | Pluto.Transformed { t_units = u :: _ } -> Some u
      | _ -> None)
    compiled.Toolchain.Chain.c_outcomes

(* the unit belonging to the kernel proper: the one with the most loop
   levels (setup loops are shallower or equal; prefer non-identity) *)
let kernel_unit (compiled : Toolchain.Chain.compiled) =
  let units =
    List.concat_map
      (fun (o : Pluto.outcome) ->
        match o.Pluto.o_result with
        | Pluto.Transformed { t_units } -> t_units
        | Pluto.Rejected _ -> [])
      compiled.Toolchain.Chain.c_outcomes
  in
  match
    List.sort
      (fun (a : Pluto.unit_info) b ->
        compare
          (List.length b.Pluto.ui_iters, not b.Pluto.ui_identity)
          (List.length a.Pluto.ui_iters, not a.Pluto.ui_identity))
      units
  with
  | u :: _ -> Some u
  | [] -> None

let test_kernel (k : Workloads.Kernels.kernel) () =
  let seq, compiled, par = compile_and_run k in
  (* 1. bit-identical output *)
  Alcotest.(check string)
    (k.k_name ^ ": output preserved")
    seq.Interp.Trace.output par.Interp.Trace.output;
  (* 2. expected transform properties *)
  let e = k.Workloads.Kernels.k_expect in
  (match kernel_unit compiled with
  | None -> Alcotest.fail (k.k_name ^ ": no unit transformed")
  | Some u ->
    if e.Workloads.Kernels.x_parallel then
      Alcotest.(check bool)
        (k.k_name ^ ": some loop parallel")
        true
        (u.Pluto.ui_parallel <> None);
    if e.Workloads.Kernels.x_outer_parallel then
      Alcotest.(check (option int)) (k.k_name ^ ": outermost parallel") (Some 1)
        u.Pluto.ui_parallel
    else
      Alcotest.(check bool)
        (k.k_name ^ ": outermost NOT parallel")
        true
        (u.Pluto.ui_parallel <> Some 1);
    Alcotest.(check bool)
      (k.k_name ^ Printf.sprintf ": identity=%b" e.Workloads.Kernels.x_identity)
      e.Workloads.Kernels.x_identity u.Pluto.ui_identity);
  (* 3. if anything is parallel, the profile has parallel segments *)
  if e.Workloads.Kernels.x_parallel then
    Alcotest.(check bool)
      (k.k_name ^ ": parallel segments recorded")
      true
      (Interp.Trace.n_parallel_segments par > 0)

(* every kernel also survives tiling without changing its output *)
let test_kernel_tiled (k : Workloads.Kernels.kernel) () =
  let seq = snd (Toolchain.Chain.run ~mode:Toolchain.Chain.Sequential k.k_source) in
  let mode =
    match mode_for k with
    | Toolchain.Chain.Plain_pluto _ ->
      Toolchain.Chain.Plain_pluto
        (fun c -> { c with Pluto.tile = true; tile_sizes = [ 7 ] })
    | _ ->
      Toolchain.Chain.Pure_chain
        (fun c -> { c with Pluto.tile = true; tile_sizes = [ 7 ] })
  in
  let par = snd (Toolchain.Chain.run ~mode k.k_source) in
  Alcotest.(check string)
    (k.k_name ^ ": tiled output preserved")
    seq.Interp.Trace.output par.Interp.Trace.output

let _ = first_unit

let suite =
  List.concat_map
    (fun (k : Workloads.Kernels.kernel) ->
      [
        Alcotest.test_case k.k_name `Quick (test_kernel k);
        Alcotest.test_case (k.k_name ^ " tiled") `Quick (test_kernel_tiled k);
      ])
    Workloads.Kernels.all
