(** Type-checker tests: acceptance of the supported subset, rejection of
    genuine type errors. *)

let check src =
  let reporter = Support.Diag.create_reporter () in
  let prog = Cfront.Parser.program_of_string src in
  let _env = Sema.Typecheck.check_program ~reporter prog in
  Support.Diag.error_codes reporter

let accepts name src = Alcotest.(check (list string)) name [] (check src)

let rejects name codes src = Alcotest.(check (list string)) name codes (check src)

let test_ok_basics () =
  accepts "arith and calls"
    "int add(int a, int b) { return a + b; }\n\
     int main() { int x = add(1, 2); float f = x * 0.5f; return x; }\n"

let test_ok_pointers () =
  accepts "pointer flows"
    "int main() {\n\
    \  int* p = (int*) malloc(8 * sizeof(int));\n\
    \  p[0] = 3;\n\
    \  *p = 4;\n\
    \  int* q = p + 2;\n\
    \  int d = q - p;\n\
    \  free(p);\n\
    \  return d;\n\
     }\n"

let test_ok_arrays () =
  accepts "2-D arrays"
    "double G[8][8];\nint main() { G[1][2] = 0.5; return (int) G[1][2]; }\n"

let test_undeclared () = rejects "undeclared" [ "type" ] "int main() { return y; }\n"

let test_unknown_function () =
  rejects "unknown call" [ "type" ] "int main() { return nope(1); }\n"

let test_arity () =
  rejects "wrong arity" [ "type" ]
    "int f(int a) { return a; }\nint main() { return f(1, 2); }\n"

let test_bad_assign () =
  rejects "not an lvalue" [ "type" ] "int main() { 3 = 4; return 0; }\n"

let test_bad_subscript () =
  rejects "subscript of scalar" [ "type" ] "int main() { int x; return x[0]; }\n"

let test_bad_deref () =
  rejects "deref of scalar" [ "type" ] "int main() { int x; return *x; }\n"

let test_return_mismatch () =
  rejects "void returns value" [ "type.return" ] "void f() { return 3; }\n"

let test_missing_return_value () =
  rejects "missing value" [ "type.return" ] "int f() { return; }\n"

let test_redeclaration () =
  rejects "same-block redeclaration" [ "sema.shadow" ]
    "int main() { int x; int x; return 0; }\n"

let test_shadowing_allowed () =
  accepts "inner-block shadowing is C"
    "int main() { int x = 1; { int x = 2; x = x + 1; } return x; }\n"

let test_pure_mismatch () =
  rejects "pure vs impure decls" [ "sema.pure-mismatch" ]
    "pure int f(int x);\nint f(int x) { return x; }\n"

let test_struct_fields () =
  accepts "struct member access"
    "struct p { int x; int y; };\nstruct p g;\nint main() { return g.x; }\n";
  rejects "missing field" [ "type" ]
    "struct p { int x; };\nstruct p g;\nint main() { return g.z; }\n"

let test_void_ptr_flows () =
  accepts "void* assignment both ways"
    "int main() {\n\
    \  int* p = (int*) malloc(4);\n\
    \  free(p);\n\
    \  return 0;\n\
     }\n"

let test_null_literal () =
  accepts "0 as null" "int main() { int* p = 0; return p == 0; }\n"

let test_scope_symbols () =
  let prog =
    Cfront.Parser.program_of_string
      "int g;\nint f(int a) { int b = a; { int c = b; b = c; } return b; }\n"
  in
  let env = Sema.Env.gather prog in
  Alcotest.(check bool) "global found" true (Sema.Env.find_global env "g" <> None);
  Alcotest.(check bool) "function found" true (Sema.Env.find_func env "f" <> None);
  Alcotest.(check bool) "builtin absent" true (Sema.Env.find_func env "sin" = None)

let test_typedef_resolution () =
  let prog = Cfront.Parser.program_of_string "typedef int myint;\nmyint x;\n" in
  let env = Sema.Env.gather prog in
  Alcotest.(check bool) "resolved" true
    (Sema.Env.resolve env (Cfront.Ast.Named "myint") = Cfront.Ast.Int)

let suite =
  [
    Alcotest.test_case "basics accept" `Quick test_ok_basics;
    Alcotest.test_case "pointers accept" `Quick test_ok_pointers;
    Alcotest.test_case "arrays accept" `Quick test_ok_arrays;
    Alcotest.test_case "undeclared rejected" `Quick test_undeclared;
    Alcotest.test_case "unknown function rejected" `Quick test_unknown_function;
    Alcotest.test_case "arity rejected" `Quick test_arity;
    Alcotest.test_case "assignment to rvalue rejected" `Quick test_bad_assign;
    Alcotest.test_case "bad subscript rejected" `Quick test_bad_subscript;
    Alcotest.test_case "bad deref rejected" `Quick test_bad_deref;
    Alcotest.test_case "return mismatch rejected" `Quick test_return_mismatch;
    Alcotest.test_case "missing return value rejected" `Quick test_missing_return_value;
    Alcotest.test_case "redeclaration rejected" `Quick test_redeclaration;
    Alcotest.test_case "shadowing allowed" `Quick test_shadowing_allowed;
    Alcotest.test_case "pure/impure decl mismatch" `Quick test_pure_mismatch;
    Alcotest.test_case "struct fields" `Quick test_struct_fields;
    Alcotest.test_case "void* flows" `Quick test_void_ptr_flows;
    Alcotest.test_case "null literal" `Quick test_null_literal;
    Alcotest.test_case "environment symbols" `Quick test_scope_symbols;
    Alcotest.test_case "typedef resolution" `Quick test_typedef_resolution;
  ]
