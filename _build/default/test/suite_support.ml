(** Tests for the support library: deterministic PRNG, utilities,
    diagnostics. *)

let test_rng_deterministic () =
  let a = Support.Rng.create 42 and b = Support.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Support.Rng.int a 1000) (Support.Rng.int b 1000)
  done

let test_rng_seed_matters () =
  let a = Support.Rng.create 1 and b = Support.Rng.create 2 in
  let xs = List.init 20 (fun _ -> Support.Rng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Support.Rng.int b 1_000_000) in
  Alcotest.(check bool) "different seeds differ" true (xs <> ys)

let test_rng_range () =
  let r = Support.Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Support.Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  for _ = 1 to 1000 do
    let f = Support.Rng.float r in
    Alcotest.(check bool) "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_gcd_lcm () =
  Alcotest.(check int) "gcd" 6 (Support.Util.gcd 54 24);
  Alcotest.(check int) "gcd neg" 6 (Support.Util.gcd (-54) 24);
  Alcotest.(check int) "gcd zero" 5 (Support.Util.gcd 0 5);
  Alcotest.(check int) "lcm" 36 (Support.Util.lcm 12 18);
  Alcotest.(check int) "lcm zero" 0 (Support.Util.lcm 0 7)

let test_range () =
  Alcotest.(check (list int)) "range" [ 2; 3; 4 ] (Support.Util.range 2 5);
  Alcotest.(check (list int)) "empty range" [] (Support.Util.range 5 2)

let test_argmin () =
  let a = [| 3.0; 1.0; 2.0 |] in
  Alcotest.(check int) "argmin" 1 (Support.Util.argmin_array compare a)

let test_string_contains () =
  Alcotest.(check bool) "contains" true
    (Support.Util.string_contains ~needle:"lel for" "omp parallel for");
  Alcotest.(check bool) "not contains" false
    (Support.Util.string_contains ~needle:"xyz" "omp parallel for");
  Alcotest.(check bool) "empty needle" true (Support.Util.string_contains ~needle:"" "abc")

let test_diag_reporting () =
  let r = Support.Diag.create_reporter () in
  Support.Diag.error r ~code:"test.a" "first %d" 1;
  Support.Diag.warning r ~code:"test.b" "second";
  Support.Diag.error r ~code:"test.c" "third";
  Alcotest.(check bool) "has errors" true (Support.Diag.has_errors r);
  Alcotest.(check (list string)) "codes in order" [ "test.a"; "test.c" ]
    (Support.Diag.error_codes r);
  Alcotest.(check int) "all diags" 3 (List.length (Support.Diag.diagnostics r))

let test_diag_fatal () =
  Alcotest.check_raises "fatal raises"
    (Support.Diag.Fatal
       {
         Support.Diag.severity = Support.Diag.Error;
         code = "x";
         loc = Support.Loc.dummy;
         message = "boom";
       })
    (fun () -> Support.Diag.fatal ~code:"x" "boom")

let qcheck_gcd_divides =
  QCheck.Test.make ~name:"gcd divides both arguments" ~count:500
    QCheck.(pair (int_range (-1000) 1000) (int_range (-1000) 1000))
    (fun (a, b) ->
      let g = Support.Util.gcd a b in
      QCheck.assume (g <> 0);
      a mod g = 0 && b mod g = 0)

let qcheck_geomean_bounds =
  QCheck.Test.make ~name:"geomean between min and max" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 10) (float_range 0.1 100.0))
    (fun xs ->
      QCheck.assume (xs <> []);
      let g = Support.Util.geomean xs in
      let mn = List.fold_left Float.min infinity xs in
      let mx = List.fold_left Float.max neg_infinity xs in
      g >= mn -. 1e-9 && g <= mx +. 1e-9)

let suite =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng seeds differ" `Quick test_rng_seed_matters;
    Alcotest.test_case "rng ranges" `Quick test_rng_range;
    Alcotest.test_case "gcd lcm" `Quick test_gcd_lcm;
    Alcotest.test_case "range" `Quick test_range;
    Alcotest.test_case "argmin" `Quick test_argmin;
    Alcotest.test_case "string contains" `Quick test_string_contains;
    Alcotest.test_case "diag reporting" `Quick test_diag_reporting;
    Alcotest.test_case "diag fatal" `Quick test_diag_fatal;
    QCheck_alcotest.to_alcotest qcheck_gcd_divides;
    QCheck_alcotest.to_alcotest qcheck_geomean_bounds;
  ]
