(** Domain-pool runtime tests: worksharing correctness under every schedule
    (the pool really runs on OCaml domains). *)

let with_pool size f =
  let pool = Runtime.Pool.create size in
  Fun.protect ~finally:(fun () -> Runtime.Pool.shutdown pool) (fun () -> f pool)

let test_covers_all_indices () =
  List.iter
    (fun schedule ->
      with_pool 4 (fun pool ->
          let n = 1000 in
          let hits = Array.make n 0 in
          let mutex = Mutex.create () in
          Runtime.Par_loop.parallel_for pool ~schedule ~lo:0 ~hi:n (fun i ->
              Mutex.lock mutex;
              hits.(i) <- hits.(i) + 1;
              Mutex.unlock mutex);
          Array.iteri
            (fun i h -> if h <> 1 then Alcotest.failf "index %d hit %d times" i h)
            hits))
    [ Runtime.Par_loop.Static; Runtime.Par_loop.Static_chunk 7; Runtime.Par_loop.Dynamic 3 ]

let test_empty_and_single () =
  with_pool 3 (fun pool ->
      let count = ref 0 in
      Runtime.Par_loop.parallel_for pool ~lo:5 ~hi:5 (fun _ -> incr count);
      Alcotest.(check int) "empty range" 0 !count;
      Runtime.Par_loop.parallel_for pool ~lo:5 ~hi:6 (fun _ -> incr count);
      Alcotest.(check int) "single iteration" 1 !count)

let test_pool_size_one () =
  with_pool 1 (fun pool ->
      let acc = ref [] in
      Runtime.Par_loop.parallel_for pool ~lo:0 ~hi:5 (fun i -> acc := i :: !acc);
      Alcotest.(check (list int)) "sequential order" [ 4; 3; 2; 1; 0 ] !acc)

let test_reduce () =
  with_pool 4 (fun pool ->
      let sum =
        Runtime.Par_loop.parallel_reduce pool ~lo:1 ~hi:101 ~init:0 ~combine:( + )
          (fun i -> i)
      in
      Alcotest.(check int) "gauss sum" 5050 sum)

let test_reduce_dynamic () =
  with_pool 3 (fun pool ->
      let sum =
        Runtime.Par_loop.parallel_reduce pool ~schedule:(Runtime.Par_loop.Dynamic 5)
          ~lo:0 ~hi:1000 ~init:0 ~combine:( + )
          (fun i -> i * 2)
      in
      Alcotest.(check int) "doubled sum" (999 * 1000) sum)

let test_spmv_parallel_equals_seq () =
  with_pool 4 (fun pool ->
      let spec = Lama.Matrix_gen.pwtk_like ~rows:256 () in
      let m = Lama.Matrix_gen.generate_ell spec in
      let x = Lama.Matrix_gen.test_vector 256 in
      let seq = Lama.Spmv.ell_seq m x in
      List.iter
        (fun schedule ->
          let par = Lama.Spmv.ell_par pool ~schedule m x in
          Alcotest.(check bool) "identical" true (seq = par))
        [ Runtime.Par_loop.Static; Runtime.Par_loop.Dynamic 2 ])

let qcheck_parallel_sum =
  QCheck.Test.make ~name:"parallel sums match sequential" ~count:20
    QCheck.(pair (int_range 1 4) (int_range 0 500))
    (fun (size, n) ->
      with_pool size (fun pool ->
          let expected = ref 0 in
          for i = 0 to n - 1 do
            expected := !expected + (i * i)
          done;
          let got =
            Runtime.Par_loop.parallel_reduce pool ~lo:0 ~hi:n ~init:0 ~combine:( + )
              (fun i -> i * i)
          in
          got = !expected))

let suite =
  [
    Alcotest.test_case "covers all indices once" `Quick test_covers_all_indices;
    Alcotest.test_case "empty and single ranges" `Quick test_empty_and_single;
    Alcotest.test_case "pool of one" `Quick test_pool_size_one;
    Alcotest.test_case "reduction" `Quick test_reduce;
    Alcotest.test_case "dynamic reduction" `Quick test_reduce_dynamic;
    Alcotest.test_case "parallel spmv = sequential" `Quick test_spmv_parallel_equals_seq;
    QCheck_alcotest.to_alcotest qcheck_parallel_sum;
  ]
