(** Sparse-matrix substrate tests: ELL/CSR formats, conversions, SpMV
    against dense references, generator properties. *)

let small_rows =
  [| [ (0, 2.0); (1, -1.0) ]; [ (0, -1.0); (1, 2.0); (2, -1.0) ]; [ (1, -1.0); (2, 2.0) ] |]

let test_ell_basics () =
  let m = Lama.Ell.of_rows ~cols:3 small_rows in
  Alcotest.(check int) "rows" 3 (Lama.Ell.rows m);
  Alcotest.(check int) "cols" 3 (Lama.Ell.cols m);
  Alcotest.(check int) "nnz" 7 (Lama.Ell.nnz m);
  Alcotest.(check int) "max nnz" 3 m.Lama.Ell.max_nnz;
  Alcotest.(check int) "padding" 2 (Lama.Ell.padding m);
  Alcotest.(check (float 1e-12)) "get" 2.0 (Lama.Ell.get m 1 1);
  Alcotest.(check (float 1e-12)) "get zero" 0.0 (Lama.Ell.get m 0 2)

let test_ell_to_dense () =
  let m = Lama.Ell.of_rows ~cols:3 small_rows in
  let d = Lama.Ell.to_dense m in
  Alcotest.(check (float 1e-12)) "corner" 2.0 d.(0).(0);
  Alcotest.(check (float 1e-12)) "off" (-1.0) d.(2).(1)

let test_csr_roundtrip () =
  let csr = Lama.Csr.of_rows ~cols:3 small_rows in
  Alcotest.(check int) "csr nnz" 7 (Lama.Csr.nnz csr);
  let back = Lama.Csr.to_rows csr in
  Alcotest.(check bool) "rows preserved" true (back = small_rows)

let test_ell_csr_conversions () =
  let ell = Lama.Ell.of_rows ~cols:3 small_rows in
  let csr = Lama.Csr.of_ell ell in
  let ell2 = Lama.Csr.to_ell csr in
  Alcotest.(check bool) "dense equal" true (Lama.Ell.to_dense ell = Lama.Ell.to_dense ell2)

let test_spmv_small () =
  let m = Lama.Ell.of_rows ~cols:3 small_rows in
  let y = Lama.Spmv.ell_seq m [| 1.0; 2.0; 3.0 |] in
  (* tridiagonal [2 -1; -1 2 -1; -1 2] times [1;2;3] = [0; 0; 4] *)
  Alcotest.(check (float 1e-12)) "y0" 0.0 y.(0);
  Alcotest.(check (float 1e-12)) "y1" 0.0 y.(1);
  Alcotest.(check (float 1e-12)) "y2" 4.0 y.(2)

let rows_gen =
  QCheck.Gen.(
    let* n = int_range 1 20 in
    let* rows =
      array_size (return n)
        (list_size (int_range 0 6)
           (pair (int_range 0 (n - 1)) (float_range (-2.0) 2.0)))
    in
    (* dedup columns within each row *)
    let dedup l =
      let seen = Hashtbl.create 8 in
      List.filter
        (fun (c, _) ->
          if Hashtbl.mem seen c then false
          else begin
            Hashtbl.replace seen c ();
            true
          end)
        l
    in
    return (n, Array.map dedup rows))

let qcheck_spmv_vs_dense =
  QCheck.Test.make ~name:"ELL spmv = dense reference" ~count:200 (QCheck.make rows_gen)
    (fun (n, rows) ->
      let ell = Lama.Ell.of_rows ~cols:n rows in
      let x = Array.init n (fun i -> float_of_int (i + 1) *. 0.5) in
      let y1 = Lama.Spmv.ell_seq ell x in
      let y2 = Lama.Spmv.dense (Lama.Ell.to_dense ell) x in
      Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-9) y1 y2)

let qcheck_csr_vs_ell =
  QCheck.Test.make ~name:"CSR spmv = ELL spmv" ~count:200 (QCheck.make rows_gen)
    (fun (n, rows) ->
      let ell = Lama.Ell.of_rows ~cols:n rows in
      let csr = Lama.Csr.of_rows ~cols:n rows in
      let x = Array.init n (fun i -> 1.0 +. float_of_int (i mod 3)) in
      let y1 = Lama.Spmv.ell_seq ell x in
      let y2 = Lama.Spmv.csr_seq csr x in
      Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-9) y1 y2)

let test_generator_properties () =
  let spec = Lama.Matrix_gen.pwtk_like ~rows:512 () in
  let m = Lama.Matrix_gen.generate_ell spec in
  Alcotest.(check int) "rows" 512 (Lama.Ell.rows m);
  let mn, mx, mean, pad = Lama.Matrix_gen.stats m in
  Alcotest.(check bool) "diagonal present" true (mn >= 1);
  Alcotest.(check bool) "long tail" true (float_of_int mx > 1.5 *. mean);
  Alcotest.(check bool) "padding exists (the ELL cost)" true (pad > 0.05);
  (* symmetric by construction *)
  let d = Lama.Ell.to_dense m in
  let sym = ref true in
  for i = 0 to 511 do
    for j = 0 to 511 do
      if Float.abs (d.(i).(j) -. d.(j).(i)) > 1e-9 then sym := false
    done
  done;
  Alcotest.(check bool) "symmetric" true !sym

let test_generator_deterministic () =
  let a = Lama.Matrix_gen.generate_ell (Lama.Matrix_gen.pwtk_like ~rows:128 ()) in
  let b = Lama.Matrix_gen.generate_ell (Lama.Matrix_gen.pwtk_like ~rows:128 ()) in
  Alcotest.(check bool) "same seed same matrix" true
    (Lama.Ell.to_dense a = Lama.Ell.to_dense b)

let suite =
  [
    Alcotest.test_case "ELL basics" `Quick test_ell_basics;
    Alcotest.test_case "ELL to dense" `Quick test_ell_to_dense;
    Alcotest.test_case "CSR round trip" `Quick test_csr_roundtrip;
    Alcotest.test_case "ELL<->CSR conversions" `Quick test_ell_csr_conversions;
    Alcotest.test_case "tridiagonal spmv" `Quick test_spmv_small;
    QCheck_alcotest.to_alcotest qcheck_spmv_vs_dense;
    QCheck_alcotest.to_alcotest qcheck_csr_vs_ell;
    Alcotest.test_case "pwtk-like generator" `Quick test_generator_properties;
    Alcotest.test_case "generator deterministic" `Quick test_generator_deterministic;
  ]
