(** Parser tests: the paper's listings, declarations, precedence, and a
    print/parse round-trip property. *)

open Cfront

let parse src = Parser.program_of_string src

let parse_expr = Parser.expr_of_string

let expr_str e = Ast_printer.expr_to_string e

let test_listing1 () =
  (* Listing 1: declaration of a pure function with a pure pointer param *)
  match parse "pure int* func(pure int* p1, int p2);" with
  | [ Ast.GFunc f ] ->
    Alcotest.(check bool) "function is pure" true f.Ast.f_pure;
    Alcotest.(check bool) "no body" true (f.Ast.f_body = None);
    (match f.Ast.f_ret with
    | Ast.Ptr { elt = Ast.Int; ptr_pure = false; _ } -> ()
    | _ -> Alcotest.fail "return type should be plain int*");
    (match f.Ast.f_params with
    | [ { Ast.p_type = Ast.Ptr { elt = Ast.Int; ptr_pure = true; _ }; p_name = "p1"; _ };
        { Ast.p_type = Ast.Int; p_name = "p2"; _ } ] ->
      ()
    | _ -> Alcotest.fail "parameter types wrong")
  | _ -> Alcotest.fail "expected one function"

let test_declarator_groups () =
  match parse "float **A, *b, c;" with
  | [ Ast.GVar a; Ast.GVar b; Ast.GVar c ] ->
    Alcotest.(check string) "a name" "A" a.Ast.d_name;
    (match a.Ast.d_type with
    | Ast.Ptr { elt = Ast.Ptr { elt = Ast.Float; _ }; _ } -> ()
    | _ -> Alcotest.fail "A should be float**");
    (match b.Ast.d_type with
    | Ast.Ptr { elt = Ast.Float; _ } -> ()
    | _ -> Alcotest.fail "b should be float*");
    Alcotest.(check bool) "c scalar" true (c.Ast.d_type = Ast.Float)
  | _ -> Alcotest.fail "expected three globals"

let test_local_decl_group () =
  let s = Parser.stmt_of_string "{ int t1, t2, lb = 0, ub = 4095; register int lbv, ubv; }" in
  match s.Ast.sdesc with
  | Ast.SBlock ss ->
    Alcotest.(check int) "six declarations" 6 (List.length ss);
    (match (List.nth ss 2).Ast.sdesc with
    | Ast.SDecl { d_name = "lb"; d_init = Some { edesc = Ast.IntLit 0; _ }; _ } -> ()
    | _ -> Alcotest.fail "lb init wrong");
    (match (List.nth ss 4).Ast.sdesc with
    | Ast.SDecl { d_name = "lbv"; d_storage = Ast.Register; _ } -> ()
    | _ -> Alcotest.fail "register storage lost")
  | _ -> Alcotest.fail "expected block"

let test_precedence () =
  Alcotest.(check string) "mul over add" "a + b * c" (expr_str (parse_expr "a + b * c"));
  Alcotest.(check string) "parens preserved" "(a + b) * c" (expr_str (parse_expr "(a + b) * c"));
  Alcotest.(check string) "comparison" "a + 1 < b * 2" (expr_str (parse_expr "a + 1 < b * 2"));
  Alcotest.(check string) "logical" "a < b && c > d || e == f"
    (expr_str (parse_expr "a < b && c > d || e == f"));
  Alcotest.(check string) "assign right assoc" "a = b = c + 1"
    (expr_str (parse_expr "a = b = c + 1"));
  Alcotest.(check string) "ternary" "a ? b : c ? d : e" (expr_str (parse_expr "a ? b : c ? d : e"))

let test_cast_vs_paren () =
  (match (parse_expr "(pure int*)p").Ast.edesc with
  | Ast.Cast (Ast.Ptr { ptr_pure = true; elt = Ast.Int; _ }, _) -> ()
  | _ -> Alcotest.fail "pure cast not parsed");
  (match (parse_expr "(a) + b").Ast.edesc with
  | Ast.Binop (Ast.Add, _, _) -> ()
  | _ -> Alcotest.fail "parenthesised ident should not be a cast")

let test_sizeof () =
  (match (parse_expr "sizeof(float)").Ast.edesc with
  | Ast.SizeofType Ast.Float -> ()
  | _ -> Alcotest.fail "sizeof type");
  match (parse_expr "3 * sizeof(int)").Ast.edesc with
  | Ast.Binop (Ast.Mul, _, { edesc = Ast.SizeofType Ast.Int; _ }) -> ()
  | _ -> Alcotest.fail "sizeof in expression"

let test_array_dims () =
  match parse "double G[64][32];" with
  | [ Ast.GVar { d_type = Ast.Array (Ast.Array (Ast.Double, Some 32), Some 64); _ } ] -> ()
  | _ -> Alcotest.fail "2-D array dims wrong"

let test_struct_and_typedef () =
  let prog =
    parse
      "struct point { int x; int y; };\n\
       typedef struct point pt;\n\
       pt origin;\n"
  in
  match prog with
  | [ Ast.GStruct sd; Ast.GTypedef ("pt", Ast.Struct "point", _); Ast.GVar v ] ->
    Alcotest.(check int) "two fields" 2 (List.length sd.Ast.s_fields);
    Alcotest.(check bool) "typedef used" true (v.Ast.d_type = Ast.Named "pt")
  | _ -> Alcotest.fail "struct/typedef parse failed"

let test_pragma_statement () =
  let s = Parser.stmt_of_string "{\n#pragma omp parallel for private(j)\nfor (i = 0; i < n; i++) x = x + 1;\n}" in
  match s.Ast.sdesc with
  | Ast.SBlock [ { sdesc = Ast.SPragma p; _ }; { sdesc = Ast.SFor _; _ } ] ->
    Alcotest.(check string) "pragma text" "omp parallel for private(j)" p
  | _ -> Alcotest.fail "pragma statement not parsed"

let test_do_while_break_continue () =
  let s =
    Parser.stmt_of_string "do { if (x > 3) break; else continue; } while (x < 10);"
  in
  match s.Ast.sdesc with
  | Ast.SDoWhile ({ sdesc = Ast.SBlock [ { sdesc = Ast.SIf (_, t, Some e); _ } ]; _ }, _) ->
    Alcotest.(check bool) "break" true (t.Ast.sdesc = Ast.SBreak);
    Alcotest.(check bool) "continue" true (e.Ast.sdesc = Ast.SContinue)
  | _ -> Alcotest.fail "do-while shape wrong"

let test_incdec_forms () =
  List.iter
    (fun (src, pre, inc) ->
      match (parse_expr src).Ast.edesc with
      | Ast.IncDec { pre = p; inc = i; _ } ->
        Alcotest.(check bool) (src ^ " pre") pre p;
        Alcotest.(check bool) (src ^ " inc") inc i
      | _ -> Alcotest.fail (src ^ " not parsed as inc/dec"))
    [ ("++i", true, true); ("i++", false, true); ("--i", true, false); ("i--", false, false) ]

let test_listing8_parses () =
  (* the paper's PluTo output style: iterator decls + pragma + assign-init *)
  let src =
    "float f(const float* a, const float* b, int size);\n\
     float** C;\n\
     float** A;\n\
     float** Bt;\n\
     int main(int argc, char** argv) {\n\
     int t1, t2, lb, ub, lbp = 0, ubp = 4095, lb2, ub2;\n\
     register int lbv, ubv;\n\
     #pragma omp parallel for private(lbv,ubv,t2)\n\
     for (t1 = lbp; t1 < ubp; t1++)\n\
    \  for (t2 = 0; t2 <= 4095; t2++)\n\
    \    C[t1][t2] = f((const float*)A[t1], (const float*)Bt[t1], 4096);\n\
     return 0;\n\
     }\n"
  in
  let prog = parse src in
  Alcotest.(check int) "globals parsed" 5 (List.length prog)

(* round-trip: print then reparse gives a structurally equal program *)
let strip_locs_prog p =
  (* compare via printed text: print is deterministic *)
  Ast_printer.program_to_string p

let test_roundtrip_listings () =
  List.iter
    (fun src ->
      let p1 = parse src in
      let printed = Ast_printer.program_to_string p1 in
      let p2 = parse printed in
      Alcotest.(check string) "fixpoint" printed (strip_locs_prog p2))
    (List.map
       (fun s ->
         (* strip cpp lines: parse only the body after preprocessing *)
         let stripped = Cpp.Pc_prepro.strip s in
         let env = Cpp.Preproc.create () in
         Cpp.Preproc.run env stripped.Cpp.Pc_prepro.source)
       [ Workloads.Matmul.pure_source ~n:8 (); Workloads.Matmul.inlined_source ~n:8 () ])

(* qcheck: random arithmetic expressions round-trip through print/parse *)
let expr_gen =
  let open QCheck.Gen in
  let leaf = oneof [ map (fun n -> Printf.sprintf "%d" (abs n mod 1000)) int; oneofl [ "x"; "y"; "z" ] ] in
  let rec go depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (2, leaf);
          ( 3,
            let* op = oneofl [ "+"; "-"; "*"; "/"; "%"; "<"; "<="; "=="; "&&"; "||" ] in
            let* a = go (depth - 1) in
            let* b = go (depth - 1) in
            return (Printf.sprintf "(%s %s %s)" a op b) );
          ( 1,
            let* a = go (depth - 1) in
            return (Printf.sprintf "-(%s)" a) );
          ( 1,
            let* c = go (depth - 1) in
            let* a = go (depth - 1) in
            let* b = go (depth - 1) in
            return (Printf.sprintf "(%s ? %s : %s)" c a b) );
        ]
  in
  go 4

let qcheck_expr_roundtrip =
  QCheck.Test.make ~name:"expr print/parse fixpoint" ~count:300 (QCheck.make expr_gen)
    (fun src ->
      let e1 = parse_expr src in
      let p1 = expr_str e1 in
      let e2 = parse_expr p1 in
      let p2 = expr_str e2 in
      p1 = p2)

let suite =
  [
    Alcotest.test_case "listing 1" `Quick test_listing1;
    Alcotest.test_case "global declarator groups" `Quick test_declarator_groups;
    Alcotest.test_case "local declarator groups" `Quick test_local_decl_group;
    Alcotest.test_case "precedence" `Quick test_precedence;
    Alcotest.test_case "cast vs paren" `Quick test_cast_vs_paren;
    Alcotest.test_case "sizeof" `Quick test_sizeof;
    Alcotest.test_case "array dims" `Quick test_array_dims;
    Alcotest.test_case "struct and typedef" `Quick test_struct_and_typedef;
    Alcotest.test_case "pragma statements" `Quick test_pragma_statement;
    Alcotest.test_case "do-while break continue" `Quick test_do_while_break_continue;
    Alcotest.test_case "inc/dec forms" `Quick test_incdec_forms;
    Alcotest.test_case "listing 8 style output parses" `Quick test_listing8_parses;
    Alcotest.test_case "workload sources round-trip" `Quick test_roundtrip_listings;
    QCheck_alcotest.to_alcotest qcheck_expr_roundtrip;
  ]
