(** Tests for the pure-function access metadata (the §3.3 future-work
    coupling between the purity pass and SICA). *)

open Purity

let func_of src name =
  let prog = Cfront.Parser.program_of_string src in
  match Cfront.Ast.find_func prog name with
  | Some f -> f
  | None -> Alcotest.failf "function %s not found" name

let test_dot_summary () =
  let f =
    func_of
      "pure float dot(pure float* a, pure float* b, int size) {\n\
      \  float res = 0.0f;\n\
      \  for (int i = 0; i < size; ++i)\n\
      \    res += a[i] * b[i];\n\
      \  return res;\n\
       }\n"
      "dot"
  in
  let s = Fn_metadata.summarize f in
  Alcotest.(check bool) "has loop" true s.Fn_metadata.fs_has_loop;
  Alcotest.(check int) "two pointer params" 2 (List.length s.Fn_metadata.fs_params);
  List.iter
    (fun (p : Fn_metadata.param_summary) ->
      Alcotest.(check string) (p.ps_name ^ " unit stride") "unit-stride"
        (Fn_metadata.pattern_to_string p.Fn_metadata.ps_pattern);
      Alcotest.(check int) (p.ps_name ^ " bytes") 4 p.Fn_metadata.ps_elem_bytes;
      Alcotest.(check int) (p.ps_name ^ " one site") 1 p.Fn_metadata.ps_access_sites)
    s.Fn_metadata.fs_params

let test_stencil_summary () =
  let f =
    func_of
      "pure double stencil(pure double* g, int i, int j, int n) {\n\
      \  return 0.25 * (g[(i - 1) * n + j] + g[(i + 1) * n + j]\n\
      \               + g[i * n + j - 1] + g[i * n + j + 1]);\n\
       }\n"
      "stencil"
  in
  let s = Fn_metadata.summarize f in
  Alcotest.(check bool) "no loop" false s.Fn_metadata.fs_has_loop;
  match s.Fn_metadata.fs_params with
  | [ p ] ->
    Alcotest.(check int) "double width" 8 p.Fn_metadata.ps_elem_bytes;
    Alcotest.(check int) "four sites" 4 p.Fn_metadata.ps_access_sites;
    (* subscripts are affine in i/j but those are parameters of the callee,
       not its own loop iterators: conservatively strided *)
    Alcotest.(check string) "pattern" "strided"
      (Fn_metadata.pattern_to_string p.Fn_metadata.ps_pattern)
  | _ -> Alcotest.fail "expected one pointer param"

let test_gather_summary () =
  let f =
    func_of
      "pure double row_dot(pure double* v, pure int* c, pure double* x, int r, int m, int n) {\n\
      \  double acc = 0.0;\n\
      \  for (int k = 0; k < n; k++)\n\
      \    acc += v[r * m + k] * x[c[r * m + k]];\n\
      \  return acc;\n\
       }\n"
      "row_dot"
  in
  let s = Fn_metadata.summarize f in
  let find n = List.find (fun p -> p.Fn_metadata.ps_name = n) s.Fn_metadata.fs_params in
  Alcotest.(check string) "v unit stride" "unit-stride"
    (Fn_metadata.pattern_to_string (find "v").Fn_metadata.ps_pattern);
  Alcotest.(check string) "x is a gather" "irregular"
    (Fn_metadata.pattern_to_string (find "x").Fn_metadata.ps_pattern)

let test_program_summaries () =
  let src = Workloads.Matmul.pure_source ~n:16 () in
  let pre =
    Cpp.Preproc.run (Cpp.Preproc.create ())
      (Cpp.Pc_prepro.strip src).Cpp.Pc_prepro.source
  in
  let prog = Cfront.Parser.program_of_string pre in
  let summaries = Fn_metadata.summarize_program prog in
  let names = List.map fst summaries |> List.sort compare in
  Alcotest.(check (list string)) "all pure functions summarized"
    [ "dot"; "fillA"; "fillB"; "mult" ] names;
  (* footprint of the hidden dot call: its two stride-1 float arrays *)
  let arrays, bytes = Fn_metadata.sica_footprint summaries [ "dot" ] in
  Alcotest.(check int) "dot touches two arrays" 2 arrays;
  Alcotest.(check int) "float width" 4 bytes

let test_sica_coupling_changes_tiles () =
  (* with metadata, SICA sizes tiles for the arrays inside the hidden call:
     the generated tile step must shrink relative to a run that knows of no
     arrays at all *)
  let src = Workloads.Matmul.pure_source ~n:64 () in
  let compile fn_summaries =
    let mode =
      Toolchain.Chain.Pure_chain
        (fun c ->
          {
            c with
            Pluto.sica = true;
            sica_cache = Toolchain.Chain.scaled_sica_cache;
            fn_summaries;
          })
    in
    Toolchain.Chain.compile ~mode src
  in
  let with_meta = compile (Fn_metadata.summarize_program (Cfront.Parser.program_of_string (Cpp.Preproc.run (Cpp.Preproc.create ()) (Cpp.Pc_prepro.strip src).Cpp.Pc_prepro.source))) in
  let without_meta = compile [] in
  (* both must still be correct *)
  let seq = snd (Toolchain.Chain.run ~mode:Toolchain.Chain.Sequential src) in
  Alcotest.(check string) "with metadata preserves output" seq.Interp.Trace.output
    (Toolchain.Chain.execute with_meta).Interp.Trace.output;
  Alcotest.(check string) "without metadata preserves output" seq.Interp.Trace.output
    (Toolchain.Chain.execute without_meta).Interp.Trace.output;
  (* and the emitted tiled code must differ (different tile sizes) *)
  Alcotest.(check bool) "metadata changes the tiling" true
    (with_meta.Toolchain.Chain.c_emitted <> without_meta.Toolchain.Chain.c_emitted)

let suite =
  [
    Alcotest.test_case "dot summary" `Quick test_dot_summary;
    Alcotest.test_case "stencil summary" `Quick test_stencil_summary;
    Alcotest.test_case "gather summary" `Quick test_gather_summary;
    Alcotest.test_case "program summaries + footprint" `Quick test_program_summaries;
    Alcotest.test_case "metadata drives SICA tiles" `Quick test_sica_coupling_changes_tiles;
  ]
