(** Preprocessor tests: PC-PrePro include stripping/reinsertion and the
    GCC-E stand-in (defines, conditionals, quoted includes). *)

let test_strip_system_includes () =
  let src = "#include <stdio.h>\n#include <stdlib.h>\nint x;\n#include \"mine.h\"\n" in
  let s = Cpp.Pc_prepro.strip src in
  Alcotest.(check (list string)) "includes recorded" [ "<stdio.h>"; "<stdlib.h>" ]
    s.Cpp.Pc_prepro.system_includes;
  Alcotest.(check bool) "quoted include kept" true
    (Support.Util.string_contains ~needle:"mine.h" s.Cpp.Pc_prepro.source);
  Alcotest.(check bool) "system includes gone" false
    (Support.Util.string_contains ~needle:"stdio" s.Cpp.Pc_prepro.source)

let test_reinsert () =
  let src = "#include <math.h>\nint x;\n" in
  let s = Cpp.Pc_prepro.strip src in
  let out = Cpp.Pc_prepro.reinsert s "int y;\n" in
  Alcotest.(check string) "reinserted at top" "#include <math.h>\nint y;\n" out

let run ?headers src =
  let env = Cpp.Preproc.create ?headers () in
  Cpp.Preproc.run env src

let test_object_define () =
  let out = run "#define N 42\nint a[N];\nint b = N + N;\n" in
  Alcotest.(check bool) "expanded" true (Support.Util.string_contains ~needle:"int a[42];" out);
  Alcotest.(check bool) "expanded twice" true
    (Support.Util.string_contains ~needle:"42 + 42" out)

let test_define_word_boundary () =
  let out = run "#define N 42\nint NN = N;\nint xN = 1;\n" in
  Alcotest.(check bool) "NN untouched" true (Support.Util.string_contains ~needle:"int NN = 42;" out);
  Alcotest.(check bool) "xN untouched" true (Support.Util.string_contains ~needle:"int xN = 1;" out)

let test_function_macro () =
  let out = run "#define SQ(x) ((x) * (x))\nint y = SQ(a + 1);\n" in
  Alcotest.(check bool) "substituted" true
    (Support.Util.string_contains ~needle:"((a + 1) * (a + 1))" out)

let test_nested_macro () =
  let out = run "#define A 10\n#define B (A + 1)\nint y = B;\n" in
  Alcotest.(check bool) "recursive expansion" true
    (Support.Util.string_contains ~needle:"(10 + 1)" out)

let test_undef () =
  let out = run "#define N 1\n#undef N\nint x = N;\n" in
  Alcotest.(check bool) "undefined stays" true (Support.Util.string_contains ~needle:"int x = N;" out)

let test_conditionals () =
  let out = run "#define FEATURE 1\n#ifdef FEATURE\nint yes;\n#else\nint no;\n#endif\n" in
  Alcotest.(check bool) "then kept" true (Support.Util.string_contains ~needle:"int yes;" out);
  Alcotest.(check bool) "else dropped" false (Support.Util.string_contains ~needle:"int no;" out);
  let out2 = run "#ifndef MISSING\nint yes;\n#endif\n" in
  Alcotest.(check bool) "ifndef" true (Support.Util.string_contains ~needle:"int yes;" out2)

let test_quoted_include () =
  let out =
    run ~headers:[ ("util.h", "#define HELPER 5\nint helper;\n") ]
      "#include \"util.h\"\nint x = HELPER;\n"
  in
  Alcotest.(check bool) "content included" true
    (Support.Util.string_contains ~needle:"int helper;" out);
  Alcotest.(check bool) "header macro visible" true
    (Support.Util.string_contains ~needle:"int x = 5;" out)

let test_missing_include_errors () =
  let reporter = Support.Diag.create_reporter () in
  let env = Cpp.Preproc.create ~reporter () in
  let _ = Cpp.Preproc.run env "#include \"nope.h\"\n" in
  Alcotest.(check (list string)) "error code" [ "cpp.include" ]
    (Support.Diag.error_codes reporter)

let test_unterminated_if_errors () =
  let reporter = Support.Diag.create_reporter () in
  let env = Cpp.Preproc.create ~reporter () in
  let _ = Cpp.Preproc.run env "#ifdef X\nint a;\n" in
  Alcotest.(check (list string)) "error code" [ "cpp.unterminated" ]
    (Support.Diag.error_codes reporter)

let test_macro_not_in_strings () =
  let out = run "#define N 9\nchar* s = \"N bottles\";\n" in
  Alcotest.(check bool) "strings opaque" true
    (Support.Util.string_contains ~needle:"\"N bottles\"" out)

let test_pragma_passthrough () =
  let out = run "#pragma omp parallel for\nint x;\n" in
  Alcotest.(check bool) "pragma kept" true
    (Support.Util.string_contains ~needle:"#pragma omp parallel for" out)

let test_full_chain_include_roundtrip () =
  (* the whole PC-PrePro -> cpp -> PC-PosPro include discipline *)
  let src = "#include <stdio.h>\n#define N 4\nint a[N];\n" in
  let stripped = Cpp.Pc_prepro.strip src in
  let out = run stripped.Cpp.Pc_prepro.source in
  let final = Cpp.Pc_prepro.reinsert stripped out in
  Alcotest.(check bool) "include back on top" true
    (String.length final > 18 && String.sub final 0 18 = "#include <stdio.h>");
  Alcotest.(check bool) "macro expanded" true (Support.Util.string_contains ~needle:"int a[4];" final)

let suite =
  [
    Alcotest.test_case "strip system includes" `Quick test_strip_system_includes;
    Alcotest.test_case "reinsert" `Quick test_reinsert;
    Alcotest.test_case "object define" `Quick test_object_define;
    Alcotest.test_case "define word boundary" `Quick test_define_word_boundary;
    Alcotest.test_case "function macro" `Quick test_function_macro;
    Alcotest.test_case "nested macro" `Quick test_nested_macro;
    Alcotest.test_case "undef" `Quick test_undef;
    Alcotest.test_case "conditionals" `Quick test_conditionals;
    Alcotest.test_case "quoted include" `Quick test_quoted_include;
    Alcotest.test_case "missing include errors" `Quick test_missing_include_errors;
    Alcotest.test_case "unterminated #if errors" `Quick test_unterminated_if_errors;
    Alcotest.test_case "macros skip strings" `Quick test_macro_not_in_strings;
    Alcotest.test_case "pragma passthrough" `Quick test_pragma_passthrough;
    Alcotest.test_case "include round-trip" `Quick test_full_chain_include_roundtrip;
  ]
