test/suite_lama.ml: Alcotest Array Float Hashtbl Lama List QCheck QCheck_alcotest
