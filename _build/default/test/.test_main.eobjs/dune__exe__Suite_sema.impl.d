test/suite_sema.ml: Alcotest Cfront Sema Support
