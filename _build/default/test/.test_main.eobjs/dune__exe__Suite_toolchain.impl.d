test/suite_toolchain.ml: Alcotest Array Cfront Cpp Float Interp Lazy List Machine Pluto Printf Purity Support Toolchain Workloads
