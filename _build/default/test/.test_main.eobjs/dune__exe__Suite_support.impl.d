test/suite_support.ml: Alcotest Float Gen List QCheck QCheck_alcotest Support
