test/suite_kernels.ml: Alcotest Interp List Pluto Printf Support Toolchain Workloads
