test/suite_machine.ml: Alcotest Array Float Gen Interp List Machine QCheck QCheck_alcotest
