test/suite_purity.ml: Alcotest Ast Ast_printer Cfront Cpp Interp List Parser Purity String Support Workloads
