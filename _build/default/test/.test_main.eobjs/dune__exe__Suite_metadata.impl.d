test/suite_metadata.ml: Alcotest Cfront Cpp Fn_metadata Interp List Pluto Purity Toolchain Workloads
