test/suite_parser.ml: Alcotest Ast Ast_printer Cfront Cpp List Parser Printf QCheck QCheck_alcotest Workloads
