test/suite_runtime.ml: Alcotest Array Fun Lama List Mutex QCheck QCheck_alcotest Runtime
