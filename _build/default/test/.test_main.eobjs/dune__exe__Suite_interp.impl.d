test/suite_interp.ml: Alcotest Array Cfront Interp
