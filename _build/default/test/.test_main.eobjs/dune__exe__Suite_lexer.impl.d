test/suite_lexer.ml: Alcotest Cfront Lexer List QCheck QCheck_alcotest String Support Token
