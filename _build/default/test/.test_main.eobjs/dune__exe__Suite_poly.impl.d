test/suite_poly.ml: Affine Alcotest Array Cfront Codegen Dependence Interp Linalg List Pluto Poly Polyhedron QCheck QCheck_alcotest Scop_ir String Toolchain Transform
