test/suite_cpp.ml: Alcotest Cpp String Support
