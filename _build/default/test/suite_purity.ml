(** Purity-pass tests: the exact accept/reject semantics of the paper's
    listings (1, 2, 3, 4, 5, 6), the whitelist, lowering, scop marking and
    the call substitution. *)

open Cfront

let run_checker ?registry src =
  let reporter = Support.Diag.create_reporter () in
  let prog = Parser.program_of_string src in
  let registry = Purity.Purity_check.check_program ?registry ~reporter prog in
  (Support.Diag.error_codes reporter, registry, prog)

let codes src =
  let c, _, _ = run_checker src in
  c

let accepts name src = Alcotest.(check (list string)) name [] (codes src)

let rejects name expected src = Alcotest.(check (list string)) name expected (codes src)

(* ------------------------------------------------------------------ *)
(* The paper's listings *)

let listing2 =
  "int* globalPtr;\n\
   void func1();\n\
   pure int* func2(pure int* p1, int p2);\n\
   pure int* func2(pure int* p1, int p2) {\n\
  \  int a = p2;\n\
  \  int b = a + 42;\n\
  \  int* c = (int*) malloc(3 * sizeof(int));\n\
  \  pure int* ptr = p1;\n\
  \  int* extPtr1 = globalPtr;\n\
  \  pure int* extPtr2;\n\
  \  extPtr2 = (pure int*) globalPtr;\n\
  \  func1();\n\
  \  pure int* extPtr3;\n\
  \  extPtr3 = (pure int*) func2(p1, p2);\n\
  \  return c;\n\
   }\n"

let test_listing2 () =
  (* exactly the two invalid lines: the uncast global pointer assignment and
     the impure call *)
  rejects "listing 2" [ "pure.external-ptr-no-cast"; "pure.call-impure" ] listing2

let listing4 =
  "int* extPtr;\n\
   pure int* f(pure int* q, int n) {\n\
  \  pure int* intPtr = (pure int*) extPtr;\n\
  \  intPtr = extPtr;\n\
  \  return 0;\n\
   }\n"

let test_listing4 () =
  (* pure pointers are single-assignment, and the reassignment also lacks
     the cast *)
  rejects "listing 4" [ "pure.pure-ptr-reassign"; "pure.external-ptr-no-cast" ] listing4

let listing5 =
  "pure int func(pure int* a, int idx) {\n\
  \  return a[idx - 1] + a[idx];\n\
   }\n\
   int main() {\n\
  \  int array[100];\n\
  \  for (int i = 1; i < 100; i++) {\n\
  \    array[i] = func(array, i);\n\
  \  }\n\
  \  return 0;\n\
   }\n"

let listing6 =
  "pure int func(pure int* a, int idx) {\n\
  \  return a[idx - 1] + a[idx];\n\
   }\n\
   int main() {\n\
  \  int array[100];\n\
  \  int* alias = array;\n\
  \  for (int i = 1; i < 100; i++) {\n\
  \    alias[i] = func(array, i);\n\
  \  }\n\
  \  return 0;\n\
   }\n"

let mark src =
  let reporter = Support.Diag.create_reporter () in
  let prog = Parser.program_of_string src in
  let registry = Purity.Purity_check.check_program ~reporter prog in
  let marked = Purity.Scop_marker.mark ~registry ~reporter prog in
  (Support.Diag.error_codes reporter, Purity.Scop_marker.count_scops marked)

let test_listing5_rejected () =
  let codes, scops = mark listing5 in
  Alcotest.(check (list string)) "listing 5 error" [ "scop.arg-assigned" ] codes;
  Alcotest.(check int) "nothing marked" 0 scops

let test_listing6_limitation () =
  (* the documented aliasing limitation: the marker is name-based, so the
     alias slips through and the loop IS marked *)
  let codes, scops = mark listing6 in
  Alcotest.(check (list string)) "no errors" [] codes;
  Alcotest.(check int) "marked despite alias" 1 scops

(* ------------------------------------------------------------------ *)
(* More accept/reject cases *)

let test_global_write_rejected () =
  rejects "global write" [ "pure.global-write" ]
    "int g;\npure int f(int x) { g = x; return x; }\n"

let test_global_array_write_rejected () =
  rejects "global element store" [ "pure.store-external" ]
    "int g[10];\npure int f(int x) { g[0] = x; return x; }\n"

let test_param_write_through_rejected () =
  rejects "store through pure param" [ "pure.pure-ptr-write" ]
    "pure int f(pure int* p) { p[0] = 1; return 0; }\n"

let test_param_scalar_write_ok () =
  accepts "scalar param is a copy" "pure int f(int x) { x = x + 1; return x; }\n"

let test_impure_ptr_param_rejected () =
  rejects "pointer param must be pure" [ "pure.param-ptr-not-pure" ]
    "pure int f(int* p) { return p[0]; }\n"

let test_call_chain () =
  accepts "pure calls pure"
    "pure int g(int x) { return x * 2; }\npure int f(int x) { return g(x) + 1; }\n";
  accepts "recursion"
    "pure int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }\n";
  accepts "forward reference"
    "pure int f(int x);\npure int h(int x) { return f(x); }\npure int f(int x) { return x; }\n"

let test_stdlib_whitelist () =
  accepts "math whitelisted" "pure double f(double x) { return sin(x) + sqrt(x); }\n";
  rejects "printf not whitelisted" [ "pure.call-impure" ]
    "pure int f(int x) { printf(\"%d\", x); return x; }\n"

let test_malloc_free_local () =
  accepts "malloc + free own memory"
    "pure int f(int n) {\n\
    \  int* buf = (int*) malloc(n * sizeof(int));\n\
    \  buf[0] = 1;\n\
    \  int r = buf[0];\n\
    \  free(buf);\n\
    \  return r;\n\
     }\n"

let test_free_param_rejected () =
  rejects "free of external memory" [ "pure.free-external" ]
    "pure int f(pure int* p) { free(p); return 0; }\n"

let test_malloc_ablation () =
  let registry = Purity.Registry.create ~allow_malloc:false () in
  let codes, _, _ =
    run_checker ~registry "pure int f(int n) { int* b = (int*) malloc(n); return 0; }\n"
  in
  Alcotest.(check (list string)) "malloc impure without whitelist" [ "pure.call-impure" ]
    codes

let test_local_array_ok () =
  accepts "local array writable"
    "pure int f(int n) { int a[10]; a[0] = n; a[1] = a[0] + 1; return a[1]; }\n"

let test_pure_view_read_ok () =
  accepts "reading through a pure view of a global"
    "double g[4];\n\
     pure double f(int i) {\n\
    \  pure double* v = (pure double*) g;\n\
    \  return v[i];\n\
     }\n"

let test_pure_view_write_rejected () =
  rejects "writing through a pure view" [ "pure.pure-ptr-write" ]
    "double g[4];\n\
     pure double f(int i) {\n\
    \  pure double* v = (pure double*) g;\n\
    \  v[i] = 1.0;\n\
    \  return 0.0;\n\
     }\n"

let test_pure_to_impure_rejected () =
  rejects "laundering a pure pointer" [ "pure.pure-to-impure" ]
    "pure int f(pure int* p) { int* q = p; return q[0]; }\n"

let test_impure_function_unchecked () =
  accepts "impure functions may do anything"
    "int g;\nvoid side() { g = g + 1; }\nint main() { side(); return g; }\n"

let test_registry_contents () =
  let _, registry, _ = run_checker "pure int f(int x) { return x; }\n" in
  Alcotest.(check bool) "user fn registered" true (Purity.Registry.mem registry "f");
  Alcotest.(check bool) "sin whitelisted" true (Purity.Registry.mem registry "sin");
  Alcotest.(check bool) "malloc whitelisted" true (Purity.Registry.mem registry "malloc");
  Alcotest.(check bool) "printf not pure" false (Purity.Registry.mem registry "printf")

(* ------------------------------------------------------------------ *)
(* Lowering *)

let test_lowering () =
  let prog = Parser.program_of_string listing2 in
  Alcotest.(check bool) "pure present before" true (Purity.Lowering.contains_pure prog);
  let lowered = Purity.Lowering.lower prog in
  Alcotest.(check bool) "pure gone after" false (Purity.Lowering.contains_pure lowered);
  let printed = Ast_printer.program_to_string lowered in
  Alcotest.(check bool) "const introduced" true
    (Support.Util.string_contains ~needle:"const int* p1" printed);
  (* the lowered text parses again *)
  let reparsed = Parser.program_of_string printed in
  Alcotest.(check int) "same global count" (List.length lowered) (List.length reparsed)

let test_lowering_preserves_semantics () =
  let src = Workloads.Matmul.pure_source ~n:8 () in
  let stripped = Cpp.Pc_prepro.strip src in
  let pre = Cpp.Preproc.run (Cpp.Preproc.create ()) stripped.Cpp.Pc_prepro.source in
  let prog = Parser.program_of_string pre in
  let out1 = (Interp.Exec.run prog).Interp.Trace.output in
  let out2 = (Interp.Exec.run (Purity.Lowering.lower prog)).Interp.Trace.output in
  Alcotest.(check string) "identical output" out1 out2

(* ------------------------------------------------------------------ *)
(* Scop marking details *)

let test_marking_heat_structure () =
  (* the heat time loop violates the arg-assigned rule at the outer level,
     but both inner nests must still be marked (warning, not error) *)
  let src = Workloads.Heat.pure_source ~n:8 ~t:2 () in
  let stripped = Cpp.Pc_prepro.strip src in
  let pre = Cpp.Preproc.run (Cpp.Preproc.create ()) stripped.Cpp.Pc_prepro.source in
  let reporter = Support.Diag.create_reporter () in
  let prog = Parser.program_of_string pre in
  let registry = Purity.Purity_check.check_program ~reporter prog in
  let marked = Purity.Scop_marker.mark ~registry ~reporter prog in
  Alcotest.(check bool) "no errors" false (Support.Diag.has_errors reporter);
  (* init nest + stencil nest + copy nest + checksum nest *)
  Alcotest.(check int) "four scops" 4 (Purity.Scop_marker.count_scops marked)

let test_marking_skips_impure_loops () =
  let _, scops =
    mark
      "int g;\n\
       void bump() { g = g + 1; }\n\
       int main() {\n\
      \  for (int i = 0; i < 10; i++) bump();\n\
      \  return g;\n\
       }\n"
  in
  Alcotest.(check int) "impure loop unmarked" 0 scops

(* ------------------------------------------------------------------ *)
(* Substitution *)

let test_substitution_roundtrip () =
  let s =
    Parser.stmt_of_string
      "for (int i = 0; i < n; i++) { a[i] = f(b, i) + g(i); }"
  in
  let table = Purity.Substitute.create () in
  let hidden = Purity.Substitute.hide_stmt table s in
  Alcotest.(check (list string)) "no calls left" [] (Ast.calls_in_stmt hidden);
  let revealed = Purity.Substitute.reveal_stmt table hidden in
  Alcotest.(check string) "round trip" (Ast_printer.stmt_to_string s)
    (Ast_printer.stmt_to_string revealed)

let test_substitution_unique_names () =
  let s = Parser.stmt_of_string "{ x = f(1) + f(2); y = f(3); }" in
  let table = Purity.Substitute.create () in
  let hidden = Purity.Substitute.hide_stmt table s in
  let names =
    Ast.fold_stmt
      ~stmt:(fun acc _ -> acc)
      ~expr:(fun acc e ->
        match e.Ast.edesc with
        | Ast.Ident n when String.length n > 8 && String.sub n 0 8 = "tmpConst" -> n :: acc
        | _ -> acc)
      [] hidden
  in
  Alcotest.(check int) "three distinct sites" 3 (List.length (List.sort_uniq compare names))

let suite =
  [
    Alcotest.test_case "listing 2" `Quick test_listing2;
    Alcotest.test_case "listing 4" `Quick test_listing4;
    Alcotest.test_case "listing 5 rejected" `Quick test_listing5_rejected;
    Alcotest.test_case "listing 6 aliasing limitation" `Quick test_listing6_limitation;
    Alcotest.test_case "global write rejected" `Quick test_global_write_rejected;
    Alcotest.test_case "global element store rejected" `Quick test_global_array_write_rejected;
    Alcotest.test_case "store through pure param rejected" `Quick test_param_write_through_rejected;
    Alcotest.test_case "scalar param copy ok" `Quick test_param_scalar_write_ok;
    Alcotest.test_case "impure pointer param rejected" `Quick test_impure_ptr_param_rejected;
    Alcotest.test_case "pure call chains" `Quick test_call_chain;
    Alcotest.test_case "stdlib whitelist" `Quick test_stdlib_whitelist;
    Alcotest.test_case "malloc/free own memory" `Quick test_malloc_free_local;
    Alcotest.test_case "free external rejected" `Quick test_free_param_rejected;
    Alcotest.test_case "no-malloc ablation" `Quick test_malloc_ablation;
    Alcotest.test_case "local array ok" `Quick test_local_array_ok;
    Alcotest.test_case "pure view read ok" `Quick test_pure_view_read_ok;
    Alcotest.test_case "pure view write rejected" `Quick test_pure_view_write_rejected;
    Alcotest.test_case "pure-to-impure rejected" `Quick test_pure_to_impure_rejected;
    Alcotest.test_case "impure functions unchecked" `Quick test_impure_function_unchecked;
    Alcotest.test_case "registry contents" `Quick test_registry_contents;
    Alcotest.test_case "lowering removes pure" `Quick test_lowering;
    Alcotest.test_case "lowering preserves semantics" `Quick test_lowering_preserves_semantics;
    Alcotest.test_case "heat nest marking" `Quick test_marking_heat_structure;
    Alcotest.test_case "impure loops unmarked" `Quick test_marking_skips_impure_loops;
    Alcotest.test_case "substitution round-trip" `Quick test_substitution_roundtrip;
    Alcotest.test_case "substitution unique names" `Quick test_substitution_unique_names;
  ]
