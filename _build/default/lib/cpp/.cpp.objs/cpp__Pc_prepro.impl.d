lib/cpp/pc_prepro.ml: List String
