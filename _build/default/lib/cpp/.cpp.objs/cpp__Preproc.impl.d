lib/cpp/preproc.ml: Buffer Diag List Loc String Support
