(** A small C preprocessor standing in for GCC-E (paper Fig. 1).

    Supported directives: [#include "file"] resolved from a virtual header
    store, object-like and function-like [#define], [#undef],
    [#ifdef]/[#ifndef]/[#else]/[#endif], and [#pragma] (passed through).
    System includes are expected to have been stripped by {!Pc_prepro}
    beforehand; if one is met it is passed through untouched.

    Macro expansion is token-based with word boundaries, recursive with a
    depth cap (self-referential macros stop expanding, like real cpp). *)

open Support

type macro =
  | Object of string
  | Function of string list * string  (** parameter names, body *)

type env = {
  mutable macros : (string * macro) list;
  headers : (string * string) list;  (** virtual filesystem: name -> content *)
  reporter : Diag.reporter;
}

let create ?(headers = []) ?(reporter = Diag.create_reporter ()) () =
  { macros = [ ("__PURE_C__", Object "1") ]; headers; reporter }

let define env name macro = env.macros <- (name, macro) :: List.remove_assoc name env.macros

let undef env name = env.macros <- List.remove_assoc name env.macros

let is_defined env name = List.mem_assoc name env.macros

(* ------------------------------------------------------------------ *)
(* Tokenish scanning used for macro substitution *)

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let is_ident_start c = is_ident_char c && not (c >= '0' && c <= '9')

(* Split [s] into a sequence of chunks: Ident or Other (single char), keeping
   string literals opaque so macros never expand inside them. *)
type chunk = CIdent of string | COther of string

let chunks_of_string s =
  let n = String.length s in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char s.[!i] do
        incr i
      done;
      out := CIdent (String.sub s start (!i - start)) :: !out
    end
    else if c = '"' then begin
      let start = !i in
      incr i;
      while !i < n && s.[!i] <> '"' do
        if s.[!i] = '\\' then incr i;
        incr i
      done;
      if !i < n then incr i;
      out := COther (String.sub s start (!i - start)) :: !out
    end
    else if c = '\'' then begin
      let start = !i in
      incr i;
      while !i < n && s.[!i] <> '\'' do
        if s.[!i] = '\\' then incr i;
        incr i
      done;
      if !i < n then incr i;
      out := COther (String.sub s start (!i - start)) :: !out
    end
    else begin
      out := COther (String.make 1 c) :: !out;
      incr i
    end
  done;
  List.rev !out

(* Scan a macro argument list starting right after the macro name; returns
   (args, rest-of-string).  [s] starts at the '(' or has leading spaces. *)
let scan_args s =
  let n = String.length s in
  let i = ref 0 in
  while !i < n && (s.[!i] = ' ' || s.[!i] = '\t') do
    incr i
  done;
  if !i >= n || s.[!i] <> '(' then None
  else begin
    incr i;
    let args = ref [] in
    let buf = Buffer.create 16 in
    let depth = ref 0 in
    let finished = ref false in
    while not !finished && !i < n do
      let c = s.[!i] in
      (if c = '(' then begin
         incr depth;
         Buffer.add_char buf c
       end
       else if c = ')' then
         if !depth = 0 then begin
           args := Buffer.contents buf :: !args;
           finished := true
         end
         else begin
           decr depth;
           Buffer.add_char buf c
         end
       else if c = ',' && !depth = 0 then begin
         args := Buffer.contents buf :: !args;
         Buffer.clear buf
       end
       else Buffer.add_char buf c);
      incr i
    done;
    if not !finished then None
    else
      let rest = String.sub s !i (n - !i) in
      let args = List.rev_map String.trim !args in
      (* f() has zero args, not one empty arg *)
      let args = match args with [ "" ] -> [] | a -> a in
      Some (args, rest)
  end

let max_expansion_depth = 64

(* Substitute parameters in a function-like macro body (word-boundary). *)
let substitute_params params args body =
  let assoc = List.combine params args in
  chunks_of_string body
  |> List.map (function
       | CIdent id -> ( match List.assoc_opt id assoc with Some a -> a | None -> id)
       | COther s -> s)
  |> String.concat ""

let rec expand_string env depth s =
  if depth > max_expansion_depth then s
  else begin
    let buf = Buffer.create (String.length s) in
    let rec go chunks =
      match chunks with
      | [] -> ()
      | CIdent id :: rest -> (
        match List.assoc_opt id env.macros with
        | Some (Object body) ->
          Buffer.add_string buf (expand_string env (depth + 1) body);
          go rest
        | Some (Function (params, body)) -> (
          (* need the argument list from the remaining raw text *)
          let rest_str =
            String.concat ""
              (List.map (function CIdent i -> i | COther o -> o) rest)
          in
          match scan_args rest_str with
          | Some (args, tail) when List.length args = List.length params ->
            let expanded_args = List.map (expand_string env (depth + 1)) args in
            let body' = substitute_params params expanded_args body in
            Buffer.add_string buf (expand_string env (depth + 1) body');
            go (chunks_of_string tail)
          | _ ->
            Buffer.add_string buf id;
            go rest)
        | None ->
          Buffer.add_string buf id;
          go rest)
      | COther o :: rest ->
        Buffer.add_string buf o;
        go rest
    in
    go (chunks_of_string s);
    Buffer.contents buf
  end

(* ------------------------------------------------------------------ *)
(* Directive parsing *)

let directive_of_line line =
  let l = String.trim line in
  if String.length l = 0 || l.[0] <> '#' then None
  else
    let rest = String.trim (String.sub l 1 (String.length l - 1)) in
    let word, arg =
      match String.index_opt rest ' ' with
      | Some i ->
        (String.sub rest 0 i, String.trim (String.sub rest i (String.length rest - i)))
      | None -> (rest, "")
    in
    Some (word, arg)

let parse_define env arg loc =
  (* NAME, NAME value, NAME(a,b) body *)
  let n = String.length arg in
  let i = ref 0 in
  while !i < n && is_ident_char arg.[!i] do
    incr i
  done;
  let name = String.sub arg 0 !i in
  if name = "" then Diag.error env.reporter ~loc ~code:"cpp.define" "malformed #define"
  else if !i < n && arg.[!i] = '(' then begin
    match String.index_from_opt arg !i ')' with
    | None -> Diag.error env.reporter ~loc ~code:"cpp.define" "unterminated macro parameter list"
    | Some close ->
      let params =
        String.sub arg (!i + 1) (close - !i - 1)
        |> String.split_on_char ','
        |> List.map String.trim
        |> List.filter (fun s -> s <> "")
      in
      let body = String.trim (String.sub arg (close + 1) (n - close - 1)) in
      define env name (Function (params, body))
  end
  else begin
    let body = String.trim (String.sub arg !i (n - !i)) in
    define env name (Object body)
  end

(** Run the preprocessor over [source].  [#include "x"] is resolved from the
    virtual header store; unknown quoted headers are an error. *)
let run env ?(file = "<input>") source =
  let out = Buffer.create (String.length source) in
  (* conditional stack: each entry = currently-active? *)
  let cond_stack = ref [] in
  let active () = List.for_all (fun b -> b) !cond_stack in
  let rec process_lines ~file lines lineno =
    match lines with
    | [] -> ()
    | line :: rest ->
      let loc = Loc.make ~file ~line:lineno ~col:1 in
      (match directive_of_line line with
      | Some ("define", arg) -> if active () then parse_define env arg loc
      | Some ("undef", arg) -> if active () then undef env (String.trim arg)
      | Some ("ifdef", arg) -> cond_stack := is_defined env (String.trim arg) :: !cond_stack
      | Some ("ifndef", arg) ->
        cond_stack := not (is_defined env (String.trim arg)) :: !cond_stack
      | Some ("else", _) -> (
        match !cond_stack with
        | b :: tl -> cond_stack := not b :: tl
        | [] -> Diag.error env.reporter ~loc ~code:"cpp.else" "#else without #if")
      | Some ("endif", _) -> (
        match !cond_stack with
        | _ :: tl -> cond_stack := tl
        | [] -> Diag.error env.reporter ~loc ~code:"cpp.endif" "#endif without #if")
      | Some ("include", arg) when active () ->
        let arg = String.trim arg in
        if String.length arg >= 2 && arg.[0] = '"' then begin
          let name = String.sub arg 1 (String.length arg - 2) in
          match List.assoc_opt name env.headers with
          | Some content ->
            process_lines ~file:name (String.split_on_char '\n' content) 1
          | None ->
            Diag.error env.reporter ~loc ~code:"cpp.include" "header %S not found" name
        end
        else
          (* a system include that survived PC-PrePro: pass through *)
          Buffer.add_string out (line ^ "\n")
      | Some ("include", _) -> ()
      | Some ("pragma", _) -> if active () then Buffer.add_string out (line ^ "\n")
      | Some _ ->
        if active () then
          Diag.warning env.reporter ~loc ~code:"cpp.unknown"
            "ignoring unknown directive: %s" (String.trim line)
      | None -> if active () then Buffer.add_string out (expand_string env 0 line ^ "\n"));
      process_lines ~file rest (lineno + 1)
  in
  process_lines ~file (String.split_on_char '\n' source) 1;
  if !cond_stack <> [] then
    Diag.error env.reporter ~code:"cpp.unterminated" "unterminated #if block at end of %s" file;
  Buffer.contents out
