(** PC-PrePro and PC-PosPro (paper Fig. 1).

    The paper's chain removes system includes before GCC's preprocessor runs
    (so that the purity pass sees only the program's own code plus quoted
    includes) and reinserts them verbatim after the polyhedral stage. *)

type stripped = {
  source : string;  (** the program with system-include lines removed *)
  system_includes : string list;  (** e.g. [["<stdio.h>"; "<stdlib.h>"]] in order *)
}

let is_system_include line =
  let l = String.trim line in
  if String.length l = 0 || l.[0] <> '#' then None
  else
    let rest = String.trim (String.sub l 1 (String.length l - 1)) in
    if String.length rest >= 7 && String.sub rest 0 7 = "include" then
      let arg = String.trim (String.sub rest 7 (String.length rest - 7)) in
      if String.length arg > 0 && arg.[0] = '<' then Some arg else None
    else None

(** Remove [#include <...>] lines, recording them in order. *)
let strip source =
  let lines = String.split_on_char '\n' source in
  let includes = ref [] in
  let kept =
    List.filter
      (fun line ->
        match is_system_include line with
        | Some inc ->
          includes := inc :: !includes;
          false
        | None -> true)
      lines
  in
  { source = String.concat "\n" kept; system_includes = List.rev !includes }

(** PC-PosPro: reinsert the system includes at the top of the final source. *)
let reinsert stripped final_source =
  let header =
    String.concat "\n"
      (List.map (fun inc -> "#include " ^ inc) stripped.system_includes)
  in
  if header = "" then final_source else header ^ "\n" ^ final_source
