lib/toolchain/chain.ml: Cfront Cpp Diag Interp List Pluto Purity Sema Support
