lib/toolchain/figures.ml: Chain Float Fmt Interp List Machine Pluto Workloads
