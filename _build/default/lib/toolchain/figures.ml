(** Reproduction of every evaluation figure (paper Figs. 3–11).

    Each figure is a set of (variant, backend) series over the paper's core
    counts 1..64.  A workload executes once per compiled variant on the
    instrumented interpreter; the machine model then replays the profile at
    each core count.  Problem sizes are scaled down from the paper's (the
    interpreter runs on one host core); the per-figure shape checks live in
    EXPERIMENTS.md and in the test suite. *)


type scale = {
  matmul_n : int;
  heat_n : int;
  heat_t : int;
  sat_w : int;
  sat_h : int;
  sat_bands : int;
  lama_rows : int;
  lama_maxnnz : int;
  lama_reps : int;
}

let default_scale =
  {
    matmul_n = Workloads.Matmul.default_n;
    heat_n = Workloads.Heat.default_n;
    heat_t = Workloads.Heat.default_t;
    sat_w = Workloads.Satellite.default_w;
    sat_h = Workloads.Satellite.default_h;
    sat_bands = Workloads.Satellite.default_bands;
    lama_rows = Workloads.Lama_app.default_rows;
    lama_maxnnz = Workloads.Lama_app.default_maxnnz;
    lama_reps = Workloads.Lama_app.default_reps;
  }

(** A small scale for tests. *)
let test_scale =
  {
    matmul_n = 24;
    heat_n = 32;
    heat_t = 4;
    sat_w = 16;
    sat_h = 16;
    sat_bands = 6;
    lama_rows = 512;
    lama_maxnnz = 16;
    lama_reps = 2;
  }

let paper_cores = [ 1; 2; 4; 8; 16; 32; 64 ]

type series = {
  s_label : string;
  s_points : (int * float) list;  (** (cores, seconds) or (cores, speedup) *)
}

type figure = {
  f_id : string;
  f_title : string;
  f_unit : string;  (** "s" or "speedup" *)
  f_baselines : (string * float) list;  (** e.g. sequential runtimes *)
  f_series : series list;
}

(* ------------------------------------------------------------------ *)
(* Variant plumbing *)

let sweep profile backend =
  List.map
    (fun n -> (n, (Machine.Model.simulate ~backend ~n profile).Machine.Model.r_seconds))
    paper_cores

let seq_seconds profile backend =
  (Machine.Model.simulate ~backend ~n:1 profile).Machine.Model.r_seconds

(* PluTo variant configs *)
let pluto_plain (c : Pluto.config) = { c with Pluto.tile = true; tile_sizes = [ 16 ] }

let pluto_sica (c : Pluto.config) =
  { c with Pluto.sica = true; sica_cache = Chain.scaled_sica_cache }

let pure_default (c : Pluto.config) = c

let pure_no_init (c : Pluto.config) = { c with Pluto.skip_malloc_loops = true }

let pure_dynamic (c : Pluto.config) =
  { c with Pluto.schedule_clause = Some "dynamic,1" }

(* ------------------------------------------------------------------ *)
(* Per-workload datasets: compile + execute each variant once. *)

type dataset = {
  d_name : string;
  d_profiles : (string * Interp.Trace.profile) list;
  d_checksums : (string * float) list;
}

let profile_of mode source = snd (Chain.run ~mode source)

let checksum name profile =
  match Workloads.Reference.checksum_of_output profile.Interp.Trace.output with
  | Some c -> c
  | None -> Fmt.failwith "variant %s printed no checksum" name

let make_dataset name variants =
  let d_profiles = List.map (fun (label, mode, src) -> (label, profile_of mode src)) variants in
  let d_checksums = List.map (fun (l, p) -> (l, checksum l p)) d_profiles in
  { d_name = name; d_profiles; d_checksums }

let matmul_dataset scale =
  let n = scale.matmul_n in
  let pure_src = Workloads.Matmul.pure_source ~n () in
  let inl_src = Workloads.Matmul.inlined_source ~n () in
  make_dataset "matmul"
    [
      ("seq", Chain.Sequential, pure_src);
      ("pluto", Chain.Plain_pluto pluto_plain, inl_src);
      ("pluto-sica", Chain.Plain_pluto pluto_sica, inl_src);
      ("pure", Chain.Pure_chain pure_default, pure_src);
      ("pure-noinit", Chain.Pure_chain pure_default, Workloads.Matmul.pure_noinit_source ~n ());
    ]

let heat_dataset scale =
  let n = scale.heat_n and t = scale.heat_t in
  let pure_src = Workloads.Heat.pure_source ~n ~t () in
  let inl_src = Workloads.Heat.inlined_source ~n ~t () in
  make_dataset "heat"
    [
      ("seq", Chain.Sequential, pure_src);
      ("pluto-sica", Chain.Plain_pluto pluto_sica, inl_src);
      ("pure", Chain.Pure_chain pure_default, pure_src);
    ]

let satellite_dataset scale =
  let w = scale.sat_w and h = scale.sat_h and bands = scale.sat_bands in
  let pure_src = Workloads.Satellite.pure_source ~w ~h ~bands () in
  let man_src = Workloads.Satellite.manual_source ~w ~h ~bands () in
  make_dataset "satellite"
    [
      ("seq", Chain.Sequential, pure_src);
      ("pure", Chain.Pure_chain pure_default, pure_src);
      ("manual-dyn", Chain.Manual_omp, man_src);
    ]

let lama_dataset scale =
  let rows = scale.lama_rows and maxnnz = scale.lama_maxnnz and reps = scale.lama_reps in
  let pure_src = Workloads.Lama_app.pure_source ~rows ~maxnnz ~reps () in
  let man_src = Workloads.Lama_app.manual_source ~rows ~maxnnz ~reps () in
  make_dataset "lama"
    [
      ("seq", Chain.Sequential, pure_src);
      ("pure", Chain.Pure_chain pure_default, pure_src);
      ("manual-static", Chain.Manual_omp, man_src);
    ]

let profile d label = List.assoc label d.d_profiles

(** All variants of a dataset must agree bit-for-bit on the checksum. *)
let checksums_agree d =
  match d.d_checksums with
  | [] -> true
  | (_, first) :: rest -> List.for_all (fun (_, c) -> Float.equal c first) rest

(* ------------------------------------------------------------------ *)
(* Figures *)

let gcc = Machine.Config.gcc

let icc = Machine.Config.icc

(** Fig. 3: matmul execution time, GCC backend. *)
let fig3 ?(scale = default_scale) ?matmul () =
  let d = match matmul with Some d -> d | None -> matmul_dataset scale in
  let seq = seq_seconds (profile d "seq") gcc in
  {
    f_id = "fig3";
    f_title = "Matrix-matrix multiplication, execution time (GCC)";
    f_unit = "s";
    f_baselines = [ ("seq-gcc", seq) ];
    f_series =
      [
        { s_label = "PluTo (gcc)"; s_points = sweep (profile d "pluto") gcc };
        { s_label = "pure (gcc)"; s_points = sweep (profile d "pure") gcc };
        { s_label = "pure w/o init par (gcc)"; s_points = sweep (profile d "pure-noinit") gcc };
      ];
  }

(** Fig. 4: matmul execution time, ICC backend (plus MKL). *)
let fig4 ?(scale = default_scale) ?matmul () =
  let d = match matmul with Some d -> d | None -> matmul_dataset scale in
  let seq_icc = seq_seconds (profile d "seq") icc in
  let mkl =
    List.map
      (fun n -> (n, Machine.Mkl_model.gemm_seconds ~n ~size:scale.matmul_n ()))
      paper_cores
  in
  {
    f_id = "fig4";
    f_title = "Matrix-matrix multiplication, execution time (ICC)";
    f_unit = "s";
    f_baselines = [ ("seq-icc", seq_icc) ];
    f_series =
      [
        { s_label = "PluTo (icc)"; s_points = sweep (profile d "pluto") icc };
        { s_label = "PluTo-SICA (icc)"; s_points = sweep (profile d "pluto-sica") icc };
        { s_label = "pure (icc)"; s_points = sweep (profile d "pure") icc };
        { s_label = "MKL (icc)"; s_points = mkl };
      ];
  }

let to_speedup ~seq series =
  {
    series with
    s_points = List.map (fun (n, s) -> (n, Machine.Model.speedup ~seq_seconds:seq ~par_seconds:s)) series.s_points;
  }

(** Fig. 5: matmul speedups over the sequential GCC version. *)
let fig5 ?(scale = default_scale) ?matmul () =
  let d = match matmul with Some d -> d | None -> matmul_dataset scale in
  let seq = seq_seconds (profile d "seq") gcc in
  let f3 = fig3 ~scale ~matmul:d () and f4 = fig4 ~scale ~matmul:d () in
  {
    f_id = "fig5";
    f_title = "Matrix-matrix multiplication, speedup vs sequential GCC";
    f_unit = "speedup";
    f_baselines = [ ("seq-gcc", seq) ];
    f_series = List.map (to_speedup ~seq) (f3.f_series @ f4.f_series);
  }

(** Fig. 6: heat distribution execution time. *)
let fig6 ?(scale = default_scale) ?heat () =
  let d = match heat with Some d -> d | None -> heat_dataset scale in
  let seq_gcc = seq_seconds (profile d "seq") gcc in
  let seq_icc = seq_seconds (profile d "seq") icc in
  {
    f_id = "fig6";
    f_title = "Heat distribution, execution time";
    f_unit = "s";
    f_baselines = [ ("seq-gcc", seq_gcc); ("seq-icc", seq_icc) ];
    f_series =
      [
        { s_label = "PluTo-SICA (gcc)"; s_points = sweep (profile d "pluto-sica") gcc };
        { s_label = "PluTo-SICA (icc)"; s_points = sweep (profile d "pluto-sica") icc };
        { s_label = "pure (gcc)"; s_points = sweep (profile d "pure") gcc };
        { s_label = "pure (icc)"; s_points = sweep (profile d "pure") icc };
      ];
  }

(** Fig. 7: heat distribution speedups. *)
let fig7 ?(scale = default_scale) ?heat () =
  let d = match heat with Some d -> d | None -> heat_dataset scale in
  let f6 = fig6 ~scale ~heat:d () in
  let seq = List.assoc "seq-gcc" f6.f_baselines in
  {
    f_id = "fig7";
    f_title = "Heat distribution, speedup vs sequential GCC";
    f_unit = "speedup";
    f_baselines = f6.f_baselines;
    f_series = List.map (to_speedup ~seq) f6.f_series;
  }

(** Fig. 8: satellite image filter execution time. *)
let fig8 ?(scale = default_scale) ?satellite () =
  let d = match satellite with Some d -> d | None -> satellite_dataset scale in
  let seq_gcc = seq_seconds (profile d "seq") gcc in
  {
    f_id = "fig8";
    f_title = "Satellite image filter, execution time";
    f_unit = "s";
    f_baselines = [ ("seq-gcc", seq_gcc) ];
    f_series =
      [
        { s_label = "auto (gcc)"; s_points = sweep (profile d "pure") gcc };
        { s_label = "auto (icc)"; s_points = sweep (profile d "pure") icc };
        { s_label = "manual dyn (gcc)"; s_points = sweep (profile d "manual-dyn") gcc };
        { s_label = "manual dyn (icc)"; s_points = sweep (profile d "manual-dyn") icc };
      ];
  }

(** Fig. 9: satellite speedups. *)
let fig9 ?(scale = default_scale) ?satellite () =
  let d = match satellite with Some d -> d | None -> satellite_dataset scale in
  let f8 = fig8 ~scale ~satellite:d () in
  let seq = List.assoc "seq-gcc" f8.f_baselines in
  {
    f_id = "fig9";
    f_title = "Satellite image filter, speedup vs sequential GCC";
    f_unit = "speedup";
    f_baselines = f8.f_baselines;
    f_series = List.map (to_speedup ~seq) f8.f_series;
  }

(** Fig. 10: LAMA ELL SpMV execution time. *)
let fig10 ?(scale = default_scale) ?lama () =
  let d = match lama with Some d -> d | None -> lama_dataset scale in
  let seq_gcc = seq_seconds (profile d "seq") gcc in
  {
    f_id = "fig10";
    f_title = "LAMA ELL SpMV, execution time";
    f_unit = "s";
    f_baselines = [ ("seq-gcc", seq_gcc) ];
    f_series =
      [
        { s_label = "auto (gcc)"; s_points = sweep (profile d "pure") gcc };
        { s_label = "auto (icc)"; s_points = sweep (profile d "pure") icc };
        { s_label = "manual (gcc)"; s_points = sweep (profile d "manual-static") gcc };
        { s_label = "manual (icc)"; s_points = sweep (profile d "manual-static") icc };
      ];
  }

(** Fig. 11: LAMA speedups. *)
let fig11 ?(scale = default_scale) ?lama () =
  let d = match lama with Some d -> d | None -> lama_dataset scale in
  let f10 = fig10 ~scale ~lama:d () in
  let seq = List.assoc "seq-gcc" f10.f_baselines in
  {
    f_id = "fig11";
    f_title = "LAMA ELL SpMV, speedup vs sequential GCC";
    f_unit = "speedup";
    f_baselines = f10.f_baselines;
    f_series = List.map (to_speedup ~seq) f10.f_series;
  }

(* ------------------------------------------------------------------ *)
(* Rendering *)

let render_figure ppf (f : figure) =
  Fmt.pf ppf "== %s: %s ==@." f.f_id f.f_title;
  List.iter (fun (name, v) -> Fmt.pf ppf "  baseline %-28s %12.4f %s@." name v f.f_unit) f.f_baselines;
  Fmt.pf ppf "  %-28s" "cores";
  List.iter (fun n -> Fmt.pf ppf " %10d" n) paper_cores;
  Fmt.pf ppf "@.";
  List.iter
    (fun s ->
      Fmt.pf ppf "  %-28s" s.s_label;
      List.iter (fun (_, v) -> Fmt.pf ppf " %10.4f" v) s.s_points;
      Fmt.pf ppf "@.")
    f.f_series
