(** Printing the AST back to C source.

    The tool chain is source-to-source (paper Fig. 1), so the printer must
    emit compilable C: qualifiers, pragmas and casts all round-trip through
    {!Parser}. *)

open Ast

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | LAnd -> "&&"
  | LOr -> "||"
  | BAnd -> "&"
  | BOr -> "|"
  | BXor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"

let assign_op_str = function
  | OpAssign -> "="
  | OpAddAssign -> "+="
  | OpSubAssign -> "-="
  | OpMulAssign -> "*="
  | OpDivAssign -> "/="
  | OpModAssign -> "%="

(* Precedence levels, higher binds tighter. *)
let binop_prec = function
  | Mul | Div | Mod -> 12
  | Add | Sub -> 11
  | Shl | Shr -> 10
  | Lt | Le | Gt | Ge -> 9
  | Eq | Ne -> 8
  | BAnd -> 7
  | BXor -> 6
  | BOr -> 5
  | LAnd -> 4
  | LOr -> 3

(* ------------------------------------------------------------------ *)
(* Types.  C declarators wrap inside-out; we support the subset where the
   base type is printed, then stars, then the declarator name, then array
   suffixes. *)

let rec base_and_suffix ty =
  (* Returns (prefix string including stars, array-suffix string). *)
  match ty with
  | Void -> ("void", "")
  | Int -> ("int", "")
  | Float -> ("float", "")
  | Double -> ("double", "")
  | Char -> ("char", "")
  | Struct s -> ("struct " ^ s, "")
  | Named s -> (s, "")
  | Ptr { elt; ptr_pure; ptr_const } ->
    let pre, suf = base_and_suffix elt in
    let quald =
      if ptr_pure then "pure " ^ pre else if ptr_const then "const " ^ pre else pre
    in
    (quald ^ "*", suf)
  | Array (elt, n) ->
    let pre, suf = base_and_suffix elt in
    let dim = match n with Some n -> Printf.sprintf "[%d]" n | None -> "[]" in
    (pre, dim ^ suf)

let type_to_string ty =
  let pre, suf = base_and_suffix ty in
  pre ^ suf

(** Declaration of [name] with type [ty], e.g. [float a[10]]. *)
let declarator ty name =
  let pre, suf = base_and_suffix ty in
  if suf = "" then Printf.sprintf "%s %s" pre name
  else Printf.sprintf "%s %s%s" pre name suf

(* ------------------------------------------------------------------ *)
(* Expressions *)

let float_lit_to_string v single =
  let s =
    if Float.is_integer v && Float.abs v < 1e16 then Printf.sprintf "%.1f" v
    else Printf.sprintf "%.17g" v
  in
  if single then s ^ "f" else s

let rec expr_str ?(prec = 0) e =
  let s, my_prec =
    match e.edesc with
    | IntLit i -> (string_of_int i, 100)
    | FloatLit (v, single) -> (float_lit_to_string v single, 100)
    | StrLit s -> (Printf.sprintf "%S" s, 100)
    | CharLit c -> (Printf.sprintf "'%s'" (Char.escaped c), 100)
    | Ident x -> (x, 100)
    | Binop (op, a, b) ->
      let p = binop_prec op in
      ( Printf.sprintf "%s %s %s"
          (expr_str ~prec:p a)
          (binop_str op)
          (expr_str ~prec:(p + 1) b),
        p )
    | Unop (op, a) ->
      let op_s = match op with Neg -> "-" | LNot -> "!" | BNot -> "~" in
      (op_s ^ expr_str ~prec:14 a, 14)
    | Assign (op, l, r) ->
      ( Printf.sprintf "%s %s %s" (expr_str ~prec:2 l) (assign_op_str op)
          (expr_str ~prec:1 r),
        1 )
    | Call (f, args) ->
      (Printf.sprintf "%s(%s)" f (String.concat ", " (List.map expr_str args)), 100)
    | Index (a, i) -> (Printf.sprintf "%s[%s]" (expr_str ~prec:15 a) (expr_str i), 15)
    | Deref a -> ("*" ^ expr_str ~prec:14 a, 14)
    | AddrOf a -> ("&" ^ expr_str ~prec:14 a, 14)
    | Member (a, f) -> (Printf.sprintf "%s.%s" (expr_str ~prec:15 a) f, 15)
    | Arrow (a, f) -> (Printf.sprintf "%s->%s" (expr_str ~prec:15 a) f, 15)
    | Cast (ty, a) ->
      (Printf.sprintf "(%s)%s" (type_to_string ty) (expr_str ~prec:14 a), 13)
    | Cond (c, t, f) ->
      ( Printf.sprintf "%s ? %s : %s" (expr_str ~prec:3 c) (expr_str t)
          (expr_str ~prec:2 f),
        2 )
    | SizeofType ty -> (Printf.sprintf "sizeof(%s)" (type_to_string ty), 100)
    | SizeofExpr a -> (Printf.sprintf "sizeof(%s)" (expr_str a), 100)
    | IncDec { pre; inc; arg } ->
      let op_s = if inc then "++" else "--" in
      if pre then (op_s ^ expr_str ~prec:14 arg, 14)
      else (expr_str ~prec:15 arg ^ op_s, 15)
    | Comma (a, b) -> (Printf.sprintf "%s, %s" (expr_str a) (expr_str ~prec:0 b), 0)
  in
  if my_prec < prec then "(" ^ s ^ ")" else s

(* ------------------------------------------------------------------ *)
(* Statements *)

let storage_prefix = function Auto -> "" | Static -> "static " | Register -> "register "

let decl_str d =
  let init = match d.d_init with Some e -> " = " ^ expr_str e | None -> "" in
  Printf.sprintf "%s%s%s;" (storage_prefix d.d_storage) (declarator d.d_type d.d_name) init

let indent n = String.make (2 * n) ' '

let rec stmt_lines lvl s =
  let pad = indent lvl in
  match s.sdesc with
  | SExpr e -> [ pad ^ expr_str e ^ ";" ]
  | SDecl d -> [ pad ^ decl_str d ]
  | SIf (c, t, e) -> (
    let head = Printf.sprintf "%sif (%s)" pad (expr_str c) in
    let then_lines = block_lines lvl t in
    match e with
    | None -> (head ^ " {") :: (then_lines @ [ pad ^ "}" ])
    | Some e ->
      (head ^ " {")
      :: (then_lines @ [ pad ^ "} else {" ] @ block_lines lvl e @ [ pad ^ "}" ]))
  | SWhile (c, b) ->
    (Printf.sprintf "%swhile (%s) {" pad (expr_str c) :: block_lines lvl b)
    @ [ pad ^ "}" ]
  | SDoWhile (b, c) ->
    ((pad ^ "do {") :: block_lines lvl b)
    @ [ Printf.sprintf "%s} while (%s);" pad (expr_str c) ]
  | SFor (init, cond, step, b) ->
    let init_s =
      match init with
      | None -> ""
      | Some (FInitExpr e) -> expr_str e
      | Some (FInitDecl d) ->
        let init = match d.d_init with Some e -> " = " ^ expr_str e | None -> "" in
        declarator d.d_type d.d_name ^ init
    in
    let cond_s = match cond with Some e -> expr_str e | None -> "" in
    let step_s = match step with Some e -> expr_str e | None -> "" in
    (Printf.sprintf "%sfor (%s; %s; %s) {" pad init_s cond_s step_s
    :: block_lines lvl b)
    @ [ pad ^ "}" ]
  | SReturn None -> [ pad ^ "return;" ]
  | SReturn (Some e) -> [ pad ^ "return " ^ expr_str e ^ ";" ]
  | SBlock ss -> ((pad ^ "{") :: List.concat_map (stmt_lines (lvl + 1)) ss) @ [ pad ^ "}" ]
  | SBreak -> [ pad ^ "break;" ]
  | SContinue -> [ pad ^ "continue;" ]
  | SPragma p -> [ "#pragma " ^ p ]

and block_lines lvl s =
  match s.sdesc with
  | SBlock ss -> List.concat_map (stmt_lines (lvl + 1)) ss
  | _ -> stmt_lines (lvl + 1) s

(* ------------------------------------------------------------------ *)
(* Top level *)

let param_str p = declarator p.p_type p.p_name

let func_header f =
  let pure_s = if f.f_pure then "pure " else "" in
  let static_s = if f.f_static then "static " else "" in
  let params =
    match f.f_params with
    | [] -> "void"
    | ps -> String.concat ", " (List.map param_str ps)
  in
  let pre, suf = base_and_suffix f.f_ret in
  (* Function return types in the subset never carry array suffixes. *)
  assert (suf = "");
  Printf.sprintf "%s%s%s %s(%s)" static_s pure_s pre f.f_name params

let func_lines f =
  match f.f_body with
  | None -> [ func_header f ^ ";" ]
  | Some body ->
    ((func_header f ^ " {") :: List.concat_map (stmt_lines 1) body) @ [ "}" ]

let global_lines = function
  | GFunc f -> func_lines f @ [ "" ]
  | GVar d -> [ decl_str d ]
  | GStruct s ->
    (Printf.sprintf "struct %s {" s.s_name
    :: List.map (fun (ty, name) -> "  " ^ declarator ty name ^ ";") s.s_fields)
    @ [ "};"; "" ]
  | GTypedef (name, ty, _) -> [ Printf.sprintf "typedef %s;" (declarator ty name) ]
  | GPragma (p, _) -> [ "#pragma " ^ p ]
  | GInclude (h, _) -> [ Printf.sprintf "#include %s" h ]

let program_to_string (p : program) =
  String.concat "\n" (List.concat_map global_lines p) ^ "\n"

let stmt_to_string s = String.concat "\n" (stmt_lines 0 s)

let expr_to_string e = expr_str e
