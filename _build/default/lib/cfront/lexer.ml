(** Hand-written lexer for the C subset.

    Input is expected to be already preprocessed (no [#include]/[#define]
    remain) except that [#pragma] lines are kept and lexed into single
    [PRAGMA] tokens, and [# <line> "<file>"] markers are skipped. *)

open Support

type state = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (** offset of beginning of current line *)
}

let create ?(file = "<input>") src = { src; file; pos = 0; line = 1; bol = 0 }

let loc st = Loc.make ~file:st.file ~line:st.line ~col:(st.pos - st.bol + 1)

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.bol <- st.pos + 1
  | _ -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c

let error st fmt = Diag.fatal ~loc:(loc st) ~code:"lex" fmt

(* Skip whitespace and comments; returns unit. Raises on unterminated
   comment. *)
let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_trivia st
  | Some '/' when peek2 st = Some '/' ->
    while peek st <> None && peek st <> Some '\n' do
      advance st
    done;
    skip_trivia st
  | Some '/' when peek2 st = Some '*' ->
    advance st;
    advance st;
    let rec go () =
      match peek st with
      | None -> error st "unterminated comment"
      | Some '*' when peek2 st = Some '/' ->
        advance st;
        advance st
      | Some _ ->
        advance st;
        go ()
    in
    go ();
    skip_trivia st
  | _ -> ()

let read_while st pred =
  let start = st.pos in
  while match peek st with Some c when pred c -> true | _ -> false do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let lex_number st =
  let intpart = read_while st is_digit in
  let is_float =
    match (peek st, peek2 st) with
    | Some '.', _ -> true
    | Some ('e' | 'E'), Some (('0' .. '9' | '+' | '-') as _c) -> true
    | _ -> false
  in
  if is_float then begin
    let frac =
      if peek st = Some '.' then begin
        advance st;
        "." ^ read_while st is_digit
      end
      else ""
    in
    let exp =
      match peek st with
      | Some ('e' | 'E') ->
        advance st;
        let sign =
          match peek st with
          | Some (('+' | '-') as c) ->
            advance st;
            String.make 1 c
          | _ -> ""
        in
        "e" ^ sign ^ read_while st is_digit
      | _ -> ""
    in
    let single =
      match peek st with
      | Some ('f' | 'F') ->
        advance st;
        true
      | _ -> false
    in
    Token.FLOAT_LIT (float_of_string (intpart ^ frac ^ exp), single)
  end
  else begin
    (* consume integer suffixes silently: u, l, ul, ll... *)
    let _ = read_while st (fun c -> c = 'u' || c = 'U' || c = 'l' || c = 'L') in
    Token.INT_LIT (int_of_string intpart)
  end

let lex_escape st =
  match peek st with
  | Some 'n' ->
    advance st;
    '\n'
  | Some 't' ->
    advance st;
    '\t'
  | Some 'r' ->
    advance st;
    '\r'
  | Some '0' ->
    advance st;
    '\000'
  | Some '\\' ->
    advance st;
    '\\'
  | Some '\'' ->
    advance st;
    '\''
  | Some '"' ->
    advance st;
    '"'
  | Some c ->
    advance st;
    c
  | None -> error st "unterminated escape sequence"

let lex_string st =
  advance st;
  (* opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string literal"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      Buffer.add_char buf (lex_escape st);
      go ()
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Token.STR_LIT (Buffer.contents buf)

let lex_char st =
  advance st;
  (* opening quote *)
  let c =
    match peek st with
    | Some '\\' ->
      advance st;
      lex_escape st
    | Some c ->
      advance st;
      c
    | None -> error st "unterminated character literal"
  in
  (match peek st with
  | Some '\'' -> advance st
  | _ -> error st "unterminated character literal");
  Token.CHAR_LIT c

(* A '#' directive. Preprocessed input may still contain '#pragma' lines
   (kept) and '# <line>' markers (skipped). *)
let lex_hash st =
  advance st;
  (* '#' *)
  let _ = read_while st (fun c -> c = ' ' || c = '\t') in
  let word = read_while st is_ident_char in
  let rest_of_line () =
    let s = read_while st (fun c -> c <> '\n') in
    String.trim s
  in
  if word = "pragma" then Some (Token.PRAGMA (rest_of_line ()))
  else begin
    (* line marker or unknown directive: skip the line *)
    let _ = rest_of_line () in
    None
  end

let next_token st =
  skip_trivia st;
  let l = loc st in
  let mk tok = { Token.tok; loc = l } in
  match peek st with
  | None -> mk Token.EOF
  | Some c -> (
    match c with
    | '#' ->
      (* Directives are handled by [next]; reaching here means a stray '#'. *)
      error st "unexpected '#'"
    | '0' .. '9' -> mk (lex_number st)
    | '"' -> mk (lex_string st)
    | '\'' -> mk (lex_char st)
    | c when is_ident_start c ->
      let word = read_while st is_ident_char in
      mk
        (match List.assoc_opt word Token.keyword_table with
        | Some kw -> kw
        | None -> Token.IDENT word)
    | _ ->
      let two a b tok =
        if peek st = Some a && peek2 st = Some b then begin
          advance st;
          advance st;
          Some tok
        end
        else None
      in
      let candidates =
        [
          two '-' '>' Token.ARROW;
          two '<' '=' Token.LE;
          two '>' '=' Token.GE;
          two '=' '=' Token.EQEQ;
          two '!' '=' Token.NEQ;
          two '&' '&' Token.ANDAND;
          two '|' '|' Token.OROR;
          two '<' '<' Token.SHL;
          two '>' '>' Token.SHR;
          two '+' '=' Token.PLUS_ASSIGN;
          two '-' '=' Token.MINUS_ASSIGN;
          two '*' '=' Token.STAR_ASSIGN;
          two '/' '=' Token.SLASH_ASSIGN;
          two '%' '=' Token.PERCENT_ASSIGN;
          two '+' '+' Token.PLUSPLUS;
          two '-' '-' Token.MINUSMINUS;
        ]
      in
      (match List.find_opt Option.is_some candidates with
      | Some (Some tok) -> mk tok
      | _ ->
        advance st;
        mk
          (match c with
          | '(' -> Token.LPAREN
          | ')' -> Token.RPAREN
          | '{' -> Token.LBRACE
          | '}' -> Token.RBRACE
          | '[' -> Token.LBRACKET
          | ']' -> Token.RBRACKET
          | ';' -> Token.SEMI
          | ',' -> Token.COMMA
          | '.' -> Token.DOT
          | '?' -> Token.QUESTION
          | ':' -> Token.COLON
          | '+' -> Token.PLUS
          | '-' -> Token.MINUS
          | '*' -> Token.STAR
          | '/' -> Token.SLASH
          | '%' -> Token.PERCENT
          | '&' -> Token.AMP
          | '|' -> Token.PIPE
          | '^' -> Token.CARET
          | '~' -> Token.TILDE
          | '!' -> Token.BANG
          | '<' -> Token.LT
          | '>' -> Token.GT
          | '=' -> Token.ASSIGN
          | c -> error st "unexpected character %C" c)))

(* The '#'-skipping path in [next_token] is awkward recursively; wrap it so a
   skipped directive simply yields the following token. *)
let rec next st =
  skip_trivia st;
  match peek st with
  | Some '#' -> (
    let l = loc st in
    match lex_hash st with
    | Some tok -> { Token.tok; loc = l }
    | None -> next st)
  | _ -> next_token st

(** Lex the whole input into a token list ending with EOF. *)
let tokenize ?file src =
  let st = create ?file src in
  let rec go acc =
    let t = next st in
    match t.Token.tok with Token.EOF -> List.rev (t :: acc) | _ -> go (t :: acc)
  in
  go []
