(** Abstract syntax of the C subset extended with [pure].

    The tree deliberately keeps a source-to-source shape: [#pragma] lines are
    statements/globals, and casts, qualifiers and declarations print back to
    compilable C (see {!Ast_printer}). *)

open Support

(* ------------------------------------------------------------------ *)
(* Types *)

type ctype =
  | Void
  | Int
  | Float
  | Double
  | Char
  | Ptr of ptr
  | Array of ctype * int option  (** element type, optional static size *)
  | Struct of string
  | Named of string  (** typedef name, resolved during semantic analysis *)

and ptr = {
  elt : ctype;
  ptr_pure : bool;  (** [pure T*]: pointee is read-only, single assignment *)
  ptr_const : bool;  (** [const T*]: pointee is read-only (lowered form) *)
}

let ptr ?(pure = false) ?(const = false) elt =
  Ptr { elt; ptr_pure = pure; ptr_const = const }

(* ------------------------------------------------------------------ *)
(* Expressions *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | LAnd
  | LOr
  | BAnd
  | BOr
  | BXor
  | Shl
  | Shr

type unop = Neg | LNot | BNot

type assign_op = OpAssign | OpAddAssign | OpSubAssign | OpMulAssign | OpDivAssign | OpModAssign

type expr = { edesc : edesc; eloc : Loc.t }

and edesc =
  | IntLit of int
  | FloatLit of float * bool  (** value, single precision *)
  | StrLit of string
  | CharLit of char
  | Ident of string
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Assign of assign_op * expr * expr  (** lvalue, rvalue *)
  | Call of string * expr list
  | Index of expr * expr
  | Deref of expr
  | AddrOf of expr
  | Member of expr * string  (** [s.f] *)
  | Arrow of expr * string  (** [p->f] *)
  | Cast of ctype * expr
  | Cond of expr * expr * expr
  | SizeofType of ctype
  | SizeofExpr of expr
  | IncDec of { pre : bool; inc : bool; arg : expr }
  | Comma of expr * expr

let mk_expr ?(loc = Loc.dummy) edesc = { edesc; eloc = loc }

let int_lit ?(loc = Loc.dummy) i = mk_expr ~loc (IntLit i)

let ident ?(loc = Loc.dummy) s = mk_expr ~loc (Ident s)

(* ------------------------------------------------------------------ *)
(* Statements and declarations *)

type storage = Auto | Static | Register

type decl = {
  d_type : ctype;
  d_name : string;
  d_storage : storage;
  d_init : expr option;
  d_loc : Loc.t;
}

type stmt = { sdesc : sdesc; sloc : Loc.t }

and sdesc =
  | SExpr of expr
  | SDecl of decl
  | SIf of expr * stmt * stmt option
  | SWhile of expr * stmt
  | SDoWhile of stmt * expr
  | SFor of for_init option * expr option * expr option * stmt
  | SReturn of expr option
  | SBlock of stmt list
  | SBreak
  | SContinue
  | SPragma of string

and for_init = FInitDecl of decl | FInitExpr of expr

let mk_stmt ?(loc = Loc.dummy) sdesc = { sdesc; sloc = loc }

(* ------------------------------------------------------------------ *)
(* Top level *)

type param = { p_type : ctype; p_name : string; p_loc : Loc.t }

type func = {
  f_name : string;
  f_ret : ctype;
  f_pure : bool;  (** declared with the [pure] function prefix *)
  f_static : bool;
  f_params : param list;
  f_body : stmt list option;  (** [None] for a declaration (prototype) *)
  f_loc : Loc.t;
}

type struct_def = { s_name : string; s_fields : (ctype * string) list; s_loc : Loc.t }

type global =
  | GFunc of func
  | GVar of decl
  | GStruct of struct_def
  | GTypedef of string * ctype * Loc.t
  | GPragma of string * Loc.t
  | GInclude of string * Loc.t
      (** a system include reinserted by PC-PosPro, e.g. [<stdio.h>] *)

type program = global list

(* ------------------------------------------------------------------ *)
(* Helpers *)

let rec type_equal a b =
  match (a, b) with
  | Void, Void | Int, Int | Float, Float | Double, Double | Char, Char -> true
  | Ptr p, Ptr q ->
    type_equal p.elt q.elt && p.ptr_pure = q.ptr_pure && p.ptr_const = q.ptr_const
  | Array (t, n), Array (u, m) -> type_equal t u && n = m
  | Struct a, Struct b | Named a, Named b -> String.equal a b
  | (Void | Int | Float | Double | Char | Ptr _ | Array _ | Struct _ | Named _), _ ->
    false

(** Same representation ignoring purity/constness qualifiers. *)
let rec type_compatible a b =
  match (a, b) with
  | Ptr p, Ptr q -> type_compatible p.elt q.elt
  | Array (t, _), Array (u, _) -> type_compatible t u
  | Array (t, _), Ptr q | Ptr q, Array (t, _) -> type_compatible t q.elt
  | _ -> type_equal a b

let is_pointer = function Ptr _ -> true | _ -> false

let is_arith = function Int | Float | Double | Char -> true | _ -> false

let is_float_type = function Float | Double -> true | _ -> false

(** Fold over all sub-expressions of [e] including [e] itself. *)
let rec fold_expr f acc e =
  let acc = f acc e in
  match e.edesc with
  | IntLit _ | FloatLit _ | StrLit _ | CharLit _ | Ident _ | SizeofType _ -> acc
  | Binop (_, a, b) | Assign (_, a, b) | Index (a, b) | Comma (a, b) ->
    fold_expr f (fold_expr f acc a) b
  | Unop (_, a)
  | Deref a
  | AddrOf a
  | Member (a, _)
  | Arrow (a, _)
  | Cast (_, a)
  | SizeofExpr a
  | IncDec { arg = a; _ } ->
    fold_expr f acc a
  | Call (_, args) -> List.fold_left (fold_expr f) acc args
  | Cond (a, b, c) -> fold_expr f (fold_expr f (fold_expr f acc a) b) c

(** Fold over all statements (pre-order) and expressions within. *)
let rec fold_stmt ~stmt ~expr acc s =
  let acc = stmt acc s in
  let fe = fold_expr expr in
  let fopt acc = function Some e -> fe acc e | None -> acc in
  match s.sdesc with
  | SExpr e -> fe acc e
  | SDecl d -> fopt acc d.d_init
  | SIf (c, t, e) ->
    let acc = fe acc c in
    let acc = fold_stmt ~stmt ~expr acc t in
    (match e with Some e -> fold_stmt ~stmt ~expr acc e | None -> acc)
  | SWhile (c, b) -> fold_stmt ~stmt ~expr (fe acc c) b
  | SDoWhile (b, c) -> fe (fold_stmt ~stmt ~expr acc b) c
  | SFor (init, cond, step, b) ->
    let acc =
      match init with
      | Some (FInitDecl d) -> fopt acc d.d_init
      | Some (FInitExpr e) -> fe acc e
      | None -> acc
    in
    let acc = fopt acc cond in
    let acc = fopt acc step in
    fold_stmt ~stmt ~expr acc b
  | SReturn e -> fopt acc e
  | SBlock ss -> List.fold_left (fold_stmt ~stmt ~expr) acc ss
  | SBreak | SContinue | SPragma _ -> acc

(** All function names called anywhere under [s]. *)
let calls_in_stmt s =
  fold_stmt ~stmt:(fun acc _ -> acc)
    ~expr:(fun acc e -> match e.edesc with Call (f, _) -> f :: acc | _ -> acc)
    [] s

let calls_in_expr e =
  fold_expr (fun acc e -> match e.edesc with Call (f, _) -> f :: acc | _ -> acc) [] e

(** Map over every statement in a function body (bottom-up). *)
let rec map_stmt f s =
  let remap sdesc = f { s with sdesc } in
  match s.sdesc with
  | SExpr _ | SDecl _ | SReturn _ | SBreak | SContinue | SPragma _ -> f s
  | SIf (c, t, e) -> remap (SIf (c, map_stmt f t, Option.map (map_stmt f) e))
  | SWhile (c, b) -> remap (SWhile (c, map_stmt f b))
  | SDoWhile (b, c) -> remap (SDoWhile (map_stmt f b, c))
  | SFor (i, c, st, b) -> remap (SFor (i, c, st, map_stmt f b))
  | SBlock ss -> remap (SBlock (List.map (map_stmt f) ss))

(** Find a function by name in a program. *)
let find_func program name =
  List.find_map
    (function GFunc f when f.f_name = name -> Some f | _ -> None)
    program

(** All function definitions (with bodies). *)
let definitions program =
  List.filter_map
    (function GFunc f when f.f_body <> None -> Some f | _ -> None)
    program
