(** Tokens of the C subset, extended with the [pure] keyword.

    [#pragma] lines survive lexing as single [PRAGMA] tokens because the
    tool chain is source-to-source: PluTo's output re-enters the parser with
    [#pragma omp ...] lines that must round-trip. *)

type t =
  (* literals and identifiers *)
  | INT_LIT of int
  | FLOAT_LIT of float * bool  (** value, is_single_precision ('f' suffix) *)
  | STR_LIT of string
  | CHAR_LIT of char
  | IDENT of string
  (* keywords *)
  | KW_INT
  | KW_FLOAT
  | KW_DOUBLE
  | KW_CHAR
  | KW_VOID
  | KW_LONG
  | KW_UNSIGNED
  | KW_SHORT
  | KW_IF
  | KW_ELSE
  | KW_FOR
  | KW_WHILE
  | KW_DO
  | KW_RETURN
  | KW_BREAK
  | KW_CONTINUE
  | KW_STRUCT
  | KW_SIZEOF
  | KW_PURE
  | KW_CONST
  | KW_STATIC
  | KW_REGISTER
  | KW_TYPEDEF
  (* punctuation *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | DOT
  | ARROW
  | QUESTION
  | COLON
  (* operators *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | AMP
  | PIPE
  | CARET
  | TILDE
  | BANG
  | LT
  | GT
  | LE
  | GE
  | EQEQ
  | NEQ
  | ANDAND
  | OROR
  | SHL
  | SHR
  | ASSIGN
  | PLUS_ASSIGN
  | MINUS_ASSIGN
  | STAR_ASSIGN
  | SLASH_ASSIGN
  | PERCENT_ASSIGN
  | PLUSPLUS
  | MINUSMINUS
  | PRAGMA of string  (** text after [#pragma], trimmed *)
  | EOF

let to_string = function
  | INT_LIT i -> string_of_int i
  | FLOAT_LIT (f, single) -> string_of_float f ^ (if single then "f" else "")
  | STR_LIT s -> Printf.sprintf "%S" s
  | CHAR_LIT c -> Printf.sprintf "'%c'" c
  | IDENT s -> s
  | KW_INT -> "int"
  | KW_FLOAT -> "float"
  | KW_DOUBLE -> "double"
  | KW_CHAR -> "char"
  | KW_VOID -> "void"
  | KW_LONG -> "long"
  | KW_UNSIGNED -> "unsigned"
  | KW_SHORT -> "short"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_FOR -> "for"
  | KW_WHILE -> "while"
  | KW_DO -> "do"
  | KW_RETURN -> "return"
  | KW_BREAK -> "break"
  | KW_CONTINUE -> "continue"
  | KW_STRUCT -> "struct"
  | KW_SIZEOF -> "sizeof"
  | KW_PURE -> "pure"
  | KW_CONST -> "const"
  | KW_STATIC -> "static"
  | KW_REGISTER -> "register"
  | KW_TYPEDEF -> "typedef"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | SEMI -> ";"
  | COMMA -> ","
  | DOT -> "."
  | ARROW -> "->"
  | QUESTION -> "?"
  | COLON -> ":"
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | AMP -> "&"
  | PIPE -> "|"
  | CARET -> "^"
  | TILDE -> "~"
  | BANG -> "!"
  | LT -> "<"
  | GT -> ">"
  | LE -> "<="
  | GE -> ">="
  | EQEQ -> "=="
  | NEQ -> "!="
  | ANDAND -> "&&"
  | OROR -> "||"
  | SHL -> "<<"
  | SHR -> ">>"
  | ASSIGN -> "="
  | PLUS_ASSIGN -> "+="
  | MINUS_ASSIGN -> "-="
  | STAR_ASSIGN -> "*="
  | SLASH_ASSIGN -> "/="
  | PERCENT_ASSIGN -> "%="
  | PLUSPLUS -> "++"
  | MINUSMINUS -> "--"
  | PRAGMA s -> "#pragma " ^ s
  | EOF -> "<eof>"

let keyword_table : (string * t) list =
  [
    ("int", KW_INT);
    ("float", KW_FLOAT);
    ("double", KW_DOUBLE);
    ("char", KW_CHAR);
    ("void", KW_VOID);
    ("long", KW_LONG);
    ("unsigned", KW_UNSIGNED);
    ("short", KW_SHORT);
    ("if", KW_IF);
    ("else", KW_ELSE);
    ("for", KW_FOR);
    ("while", KW_WHILE);
    ("do", KW_DO);
    ("return", KW_RETURN);
    ("break", KW_BREAK);
    ("continue", KW_CONTINUE);
    ("struct", KW_STRUCT);
    ("sizeof", KW_SIZEOF);
    ("pure", KW_PURE);
    ("const", KW_CONST);
    ("static", KW_STATIC);
    ("register", KW_REGISTER);
    ("typedef", KW_TYPEDEF);
  ]

type spanned = { tok : t; loc : Support.Loc.t }
