(** Recursive-descent parser for the C subset with [pure].

    Declarations follow the simplified grammar

    {v
      decl      ::= storage? qual* base-type '*'* name dims? ('=' init)? ';'
      qual      ::= 'pure' | 'const'
      base-type ::= 'void' | 'int' | 'float' | 'double' | 'char'
                  | 'struct' IDENT | typedef-name
    v}

    where a [pure]/[const] qualifier written before the base type attaches to
    the outermost pointer (the paper's [pure int* p] syntax), and a [pure]
    before a function declarator marks the function itself pure (Listing 1). *)

open Support

type state = {
  toks : Token.spanned array;
  mutable pos : int;
  mutable typedefs : string list;
  reporter : Diag.reporter;
}

let create ?(reporter = Diag.create_reporter ()) toks =
  { toks = Array.of_list toks; pos = 0; typedefs = []; reporter }

let peek st = st.toks.(st.pos).Token.tok

let peek_at st n =
  let i = st.pos + n in
  if i < Array.length st.toks then st.toks.(i).Token.tok else Token.EOF

let cur_loc st = st.toks.(st.pos).Token.loc

let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let err st fmt = Diag.fatal ~loc:(cur_loc st) ~code:"parse" fmt

let expect st tok =
  if peek st = tok then advance st
  else err st "expected %s but found %s" (Token.to_string tok) (Token.to_string (peek st))

let expect_ident st =
  match peek st with
  | Token.IDENT s ->
    advance st;
    s
  | t -> err st "expected identifier but found %s" (Token.to_string t)

(* ------------------------------------------------------------------ *)
(* Type parsing *)

let is_base_type_token st = function
  | Token.KW_INT | Token.KW_FLOAT | Token.KW_DOUBLE | Token.KW_CHAR | Token.KW_VOID
  | Token.KW_STRUCT | Token.KW_LONG | Token.KW_UNSIGNED | Token.KW_SHORT ->
    true
  | Token.IDENT s -> List.mem s st.typedefs
  | _ -> false

let starts_type st = function
  | Token.KW_PURE | Token.KW_CONST | Token.KW_STATIC | Token.KW_REGISTER -> true
  | t -> is_base_type_token st t

(* Parse the base type (no stars). *)
let rec parse_base_type st =
  match peek st with
  | Token.KW_VOID ->
    advance st;
    Ast.Void
  | Token.KW_INT ->
    advance st;
    Ast.Int
  | Token.KW_FLOAT ->
    advance st;
    Ast.Float
  | Token.KW_DOUBLE ->
    advance st;
    Ast.Double
  | Token.KW_CHAR ->
    advance st;
    Ast.Char
  | Token.KW_LONG ->
    (* 'long', 'long long', 'long int' all collapse to Int in the subset. *)
    advance st;
    if peek st = Token.KW_LONG then advance st;
    if peek st = Token.KW_INT then advance st;
    Ast.Int
  | Token.KW_SHORT ->
    advance st;
    if peek st = Token.KW_INT then advance st;
    Ast.Int
  | Token.KW_UNSIGNED ->
    advance st;
    if is_base_type_token st (peek st) then parse_base_type st
    else Ast.Int
  | Token.KW_STRUCT ->
    advance st;
    Ast.Struct (expect_ident st)
  | Token.IDENT s when List.mem s st.typedefs ->
    advance st;
    Ast.Named s
  | t -> err st "expected a type but found %s" (Token.to_string t)

(* Leading qualifiers before the base type: (pure?, const?). *)
let parse_prequals st =
  let saw_pure = ref false and saw_const = ref false in
  let rec quals () =
    match peek st with
    | Token.KW_PURE ->
      saw_pure := true;
      advance st;
      quals ()
    | Token.KW_CONST ->
      saw_const := true;
      advance st;
      quals ()
    | _ -> ()
  in
  quals ();
  (!saw_pure, !saw_const)

(* Stars belonging to one declarator.  Qualifiers written before the base
   type attach to the outermost star (the paper's [pure int* p] syntax). *)
let parse_stars st ~pure ~const base =
  let rec stars acc depth =
    if peek st = Token.STAR then begin
      advance st;
      (* const may also appear after a star: 'int * const p' *)
      let post_const = ref false in
      while peek st = Token.KW_CONST do
        post_const := true;
        advance st
      done;
      stars (Ast.ptr acc ~const:!post_const) (depth + 1)
    end
    else (acc, depth)
  in
  let ty, depth = stars base 0 in
  if depth = 0 then ty
    (* Qualified scalar: a read-only plain value; nothing to attach to. *)
  else
    match ty with
    | Ast.Ptr p ->
      Ast.Ptr { p with ptr_pure = p.ptr_pure || pure; ptr_const = p.ptr_const || const }
    | _ -> assert false

(* Parse qualifiers + base type + stars as one type (casts, params,
   typedefs: contexts with exactly one declarator). *)
let parse_type st =
  let pure, const = parse_prequals st in
  let base = parse_base_type st in
  parse_stars st ~pure ~const base

(* Lookahead: does a '(' open a cast?  True iff the token after '(' starts a
   type and the matching ')' directly follows a type-ish token sequence.  We
   use the simpler decision: next token is a qualifier or base-type token. *)
let is_cast_ahead st =
  peek st = Token.LPAREN
  &&
  match peek_at st 1 with
  | Token.KW_PURE | Token.KW_CONST -> true
  | t -> is_base_type_token st t

(* ------------------------------------------------------------------ *)
(* Expressions *)

let binop_of_token = function
  | Token.PLUS -> Some (Ast.Add, 11)
  | Token.MINUS -> Some (Ast.Sub, 11)
  | Token.STAR -> Some (Ast.Mul, 12)
  | Token.SLASH -> Some (Ast.Div, 12)
  | Token.PERCENT -> Some (Ast.Mod, 12)
  | Token.SHL -> Some (Ast.Shl, 10)
  | Token.SHR -> Some (Ast.Shr, 10)
  | Token.LT -> Some (Ast.Lt, 9)
  | Token.LE -> Some (Ast.Le, 9)
  | Token.GT -> Some (Ast.Gt, 9)
  | Token.GE -> Some (Ast.Ge, 9)
  | Token.EQEQ -> Some (Ast.Eq, 8)
  | Token.NEQ -> Some (Ast.Ne, 8)
  | Token.AMP -> Some (Ast.BAnd, 7)
  | Token.CARET -> Some (Ast.BXor, 6)
  | Token.PIPE -> Some (Ast.BOr, 5)
  | Token.ANDAND -> Some (Ast.LAnd, 4)
  | Token.OROR -> Some (Ast.LOr, 3)
  | _ -> None

let assign_op_of_token = function
  | Token.ASSIGN -> Some Ast.OpAssign
  | Token.PLUS_ASSIGN -> Some Ast.OpAddAssign
  | Token.MINUS_ASSIGN -> Some Ast.OpSubAssign
  | Token.STAR_ASSIGN -> Some Ast.OpMulAssign
  | Token.SLASH_ASSIGN -> Some Ast.OpDivAssign
  | Token.PERCENT_ASSIGN -> Some Ast.OpModAssign
  | _ -> None

let rec parse_expr st = parse_comma st

and parse_comma st =
  let e = parse_assign st in
  if peek st = Token.COMMA then begin
    let loc = cur_loc st in
    advance st;
    let rest = parse_comma st in
    Ast.mk_expr ~loc (Ast.Comma (e, rest))
  end
  else e

and parse_assign st =
  let lhs = parse_cond st in
  match assign_op_of_token (peek st) with
  | Some op ->
    let loc = cur_loc st in
    advance st;
    let rhs = parse_assign st in
    Ast.mk_expr ~loc (Ast.Assign (op, lhs, rhs))
  | None -> lhs

and parse_cond st =
  let c = parse_binary st 0 in
  if peek st = Token.QUESTION then begin
    let loc = cur_loc st in
    advance st;
    let t = parse_assign st in
    expect st Token.COLON;
    let f = parse_cond st in
    Ast.mk_expr ~loc (Ast.Cond (c, t, f))
  end
  else c

and parse_binary st min_prec =
  let lhs = parse_unary st in
  let rec loop lhs =
    match binop_of_token (peek st) with
    | Some (op, prec) when prec >= min_prec ->
      let loc = cur_loc st in
      advance st;
      let rhs = parse_binary st (prec + 1) in
      loop (Ast.mk_expr ~loc (Ast.Binop (op, lhs, rhs)))
    | _ -> lhs
  in
  loop lhs

and parse_unary st =
  let loc = cur_loc st in
  match peek st with
  | Token.MINUS ->
    advance st;
    Ast.mk_expr ~loc (Ast.Unop (Ast.Neg, parse_unary st))
  | Token.BANG ->
    advance st;
    Ast.mk_expr ~loc (Ast.Unop (Ast.LNot, parse_unary st))
  | Token.TILDE ->
    advance st;
    Ast.mk_expr ~loc (Ast.Unop (Ast.BNot, parse_unary st))
  | Token.STAR ->
    advance st;
    Ast.mk_expr ~loc (Ast.Deref (parse_unary st))
  | Token.AMP ->
    advance st;
    Ast.mk_expr ~loc (Ast.AddrOf (parse_unary st))
  | Token.PLUSPLUS ->
    advance st;
    Ast.mk_expr ~loc (Ast.IncDec { pre = true; inc = true; arg = parse_unary st })
  | Token.MINUSMINUS ->
    advance st;
    Ast.mk_expr ~loc (Ast.IncDec { pre = true; inc = false; arg = parse_unary st })
  | Token.KW_SIZEOF ->
    advance st;
    expect st Token.LPAREN;
    let e =
      if starts_type st (peek st) then begin
        let ty = parse_type st in
        Ast.mk_expr ~loc (Ast.SizeofType ty)
      end
      else Ast.mk_expr ~loc (Ast.SizeofExpr (parse_expr st))
    in
    expect st Token.RPAREN;
    e
  | Token.LPAREN when is_cast_ahead st ->
    advance st;
    let ty = parse_type st in
    expect st Token.RPAREN;
    Ast.mk_expr ~loc (Ast.Cast (ty, parse_unary st))
  | _ -> parse_postfix st

and parse_postfix st =
  let e = parse_primary st in
  let rec loop e =
    let loc = cur_loc st in
    match peek st with
    | Token.LBRACKET ->
      advance st;
      let idx = parse_expr st in
      expect st Token.RBRACKET;
      loop (Ast.mk_expr ~loc (Ast.Index (e, idx)))
    | Token.DOT ->
      advance st;
      loop (Ast.mk_expr ~loc (Ast.Member (e, expect_ident st)))
    | Token.ARROW ->
      advance st;
      loop (Ast.mk_expr ~loc (Ast.Arrow (e, expect_ident st)))
    | Token.PLUSPLUS ->
      advance st;
      loop (Ast.mk_expr ~loc (Ast.IncDec { pre = false; inc = true; arg = e }))
    | Token.MINUSMINUS ->
      advance st;
      loop (Ast.mk_expr ~loc (Ast.IncDec { pre = false; inc = false; arg = e }))
    | _ -> e
  in
  loop e

and parse_primary st =
  let loc = cur_loc st in
  match peek st with
  | Token.INT_LIT i ->
    advance st;
    Ast.mk_expr ~loc (Ast.IntLit i)
  | Token.FLOAT_LIT (f, single) ->
    advance st;
    Ast.mk_expr ~loc (Ast.FloatLit (f, single))
  | Token.STR_LIT s ->
    advance st;
    Ast.mk_expr ~loc (Ast.StrLit s)
  | Token.CHAR_LIT c ->
    advance st;
    Ast.mk_expr ~loc (Ast.CharLit c)
  | Token.IDENT name ->
    advance st;
    if peek st = Token.LPAREN then begin
      advance st;
      let args =
        if peek st = Token.RPAREN then []
        else
          let rec go acc =
            let e = parse_assign st in
            if peek st = Token.COMMA then begin
              advance st;
              go (e :: acc)
            end
            else List.rev (e :: acc)
          in
          go []
      in
      expect st Token.RPAREN;
      Ast.mk_expr ~loc (Ast.Call (name, args))
    end
    else Ast.mk_expr ~loc (Ast.Ident name)
  | Token.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st Token.RPAREN;
    e
  | t -> err st "expected expression but found %s" (Token.to_string t)

(* ------------------------------------------------------------------ *)
(* Declarations (local and global share this shape) *)

let parse_storage st =
  match peek st with
  | Token.KW_STATIC ->
    advance st;
    Ast.Static
  | Token.KW_REGISTER ->
    advance st;
    Ast.Register
  | _ -> Ast.Auto

(* Array dimension suffixes after a declarator name: a[10][20]. *)
let rec parse_dims st ty =
  if peek st = Token.LBRACKET then begin
    advance st;
    let n =
      match peek st with
      | Token.INT_LIT i ->
        advance st;
        Some i
      | Token.RBRACKET -> None
      | t -> err st "expected array size but found %s" (Token.to_string t)
    in
    expect st Token.RBRACKET;
    let inner = parse_dims st ty in
    Ast.Array (inner, n)
  end
  else ty

(* One declarator (stars, name, dims, init) given leading qualifiers and the
   base type, which are shared across a comma-separated declarator group. *)
let parse_one_declarator st ~pure ~const ~storage base =
  let loc = cur_loc st in
  let ty = parse_stars st ~pure ~const base in
  let name = expect_ident st in
  let ty = parse_dims st ty in
  let init =
    if peek st = Token.ASSIGN then begin
      advance st;
      Some (parse_assign st)
    end
    else None
  in
  { Ast.d_type = ty; d_name = name; d_storage = storage; d_init = init; d_loc = loc }

(* A declaration group: 'int t1, *p, lb = 0;' → one decl per declarator. *)
let parse_decl_group st storage =
  let pure, const = parse_prequals st in
  let base = parse_base_type st in
  let rec go acc =
    let d = parse_one_declarator st ~pure ~const ~storage base in
    if peek st = Token.COMMA then begin
      advance st;
      go (d :: acc)
    end
    else List.rev (d :: acc)
  in
  go []

(* One declaration after storage class; used in for-init where C allows a
   group but our polyhedral front end only meets single declarators. *)
let parse_decl_after_storage st storage =
  match parse_decl_group st storage with
  | [ d ] -> d
  | d :: _ as ds ->
    Diag.error st.reporter ~loc:d.Ast.d_loc ~code:"parse.for-init-group"
      "multiple declarators in a for-initializer are not supported; using the \
       first of %d" (List.length ds);
    d
  | [] -> assert false

(* ------------------------------------------------------------------ *)
(* Statements *)

(* [parse_stmt] yields one statement; a declaration group like
   'int a, b = 1;' yields several, so blocks use [parse_stmt_many]. *)
let rec parse_stmt st =
  match parse_stmt_many st with
  | [ s ] -> s
  | ss -> Ast.mk_stmt ~loc:(cur_loc st) (Ast.SBlock ss)

and parse_stmt_many st : Ast.stmt list =
  match peek st with
  | t when starts_type st t ->
    let storage = parse_storage st in
    let ds = parse_decl_group st storage in
    expect st Token.SEMI;
    List.map (fun d -> Ast.mk_stmt ~loc:d.Ast.d_loc (Ast.SDecl d)) ds
  | _ -> [ parse_stmt_single st ]

and parse_stmt_single st =
  let loc = cur_loc st in
  match peek st with
  | Token.LBRACE ->
    advance st;
    let rec go acc =
      if peek st = Token.RBRACE then begin
        advance st;
        List.rev acc
      end
      else go (List.rev_append (parse_stmt_many st) acc)
    in
    Ast.mk_stmt ~loc (Ast.SBlock (go []))
  | Token.SEMI ->
    advance st;
    Ast.mk_stmt ~loc (Ast.SBlock [])
  | Token.PRAGMA p ->
    advance st;
    Ast.mk_stmt ~loc (Ast.SPragma p)
  | Token.KW_IF ->
    advance st;
    expect st Token.LPAREN;
    let c = parse_expr st in
    expect st Token.RPAREN;
    let t = parse_stmt st in
    let e =
      if peek st = Token.KW_ELSE then begin
        advance st;
        Some (parse_stmt st)
      end
      else None
    in
    Ast.mk_stmt ~loc (Ast.SIf (c, t, e))
  | Token.KW_WHILE ->
    advance st;
    expect st Token.LPAREN;
    let c = parse_expr st in
    expect st Token.RPAREN;
    Ast.mk_stmt ~loc (Ast.SWhile (c, parse_stmt st))
  | Token.KW_DO ->
    advance st;
    let b = parse_stmt st in
    expect st Token.KW_WHILE;
    expect st Token.LPAREN;
    let c = parse_expr st in
    expect st Token.RPAREN;
    expect st Token.SEMI;
    Ast.mk_stmt ~loc (Ast.SDoWhile (b, c))
  | Token.KW_FOR ->
    advance st;
    expect st Token.LPAREN;
    let init =
      if peek st = Token.SEMI then None
      else if starts_type st (peek st) then begin
        let storage = parse_storage st in
        Some (Ast.FInitDecl (parse_decl_after_storage st storage))
      end
      else Some (Ast.FInitExpr (parse_expr st))
    in
    expect st Token.SEMI;
    let cond = if peek st = Token.SEMI then None else Some (parse_expr st) in
    expect st Token.SEMI;
    let step = if peek st = Token.RPAREN then None else Some (parse_expr st) in
    expect st Token.RPAREN;
    Ast.mk_stmt ~loc (Ast.SFor (init, cond, step, parse_stmt st))
  | Token.KW_RETURN ->
    advance st;
    let e = if peek st = Token.SEMI then None else Some (parse_expr st) in
    expect st Token.SEMI;
    Ast.mk_stmt ~loc (Ast.SReturn e)
  | Token.KW_BREAK ->
    advance st;
    expect st Token.SEMI;
    Ast.mk_stmt ~loc Ast.SBreak
  | Token.KW_CONTINUE ->
    advance st;
    expect st Token.SEMI;
    Ast.mk_stmt ~loc Ast.SContinue
  | _ ->
    let e = parse_expr st in
    expect st Token.SEMI;
    Ast.mk_stmt ~loc (Ast.SExpr e)

(* ------------------------------------------------------------------ *)
(* Top level *)

let parse_params st =
  expect st Token.LPAREN;
  if peek st = Token.RPAREN then begin
    advance st;
    []
  end
  else if peek st = Token.KW_VOID && peek_at st 1 = Token.RPAREN then begin
    advance st;
    advance st;
    []
  end
  else begin
    let rec go acc =
      let loc = cur_loc st in
      let ty = parse_type st in
      let name = expect_ident st in
      let ty = parse_dims st ty in
      let p = { Ast.p_type = ty; p_name = name; p_loc = loc } in
      if peek st = Token.COMMA then begin
        advance st;
        go (p :: acc)
      end
      else begin
        expect st Token.RPAREN;
        List.rev (p :: acc)
      end
    in
    go []
  end

(* A top-level item may expand to several globals ('float **A, **Bt, **C;'). *)
let parse_global_many st : Ast.global list =
  let loc = cur_loc st in
  match peek st with
  | Token.PRAGMA p ->
    advance st;
    [ Ast.GPragma (p, loc) ]
  | Token.KW_TYPEDEF ->
    advance st;
    let ty = parse_type st in
    let name = expect_ident st in
    let ty = parse_dims st ty in
    expect st Token.SEMI;
    st.typedefs <- name :: st.typedefs;
    [ Ast.GTypedef (name, ty, loc) ]
  | Token.KW_STRUCT when peek_at st 2 = Token.LBRACE ->
    advance st;
    let name = expect_ident st in
    expect st Token.LBRACE;
    let rec fields acc =
      if peek st = Token.RBRACE then begin
        advance st;
        List.rev acc
      end
      else begin
        let ty = parse_type st in
        let fname = expect_ident st in
        let ty = parse_dims st ty in
        expect st Token.SEMI;
        fields ((ty, fname) :: acc)
      end
    in
    let fs = fields [] in
    expect st Token.SEMI;
    [ Ast.GStruct { s_name = name; s_fields = fs; s_loc = loc } ]
  | _ ->
    (* function or global variable group *)
    let storage = parse_storage st in
    let f_static = storage = Ast.Static in
    let f_pure =
      if peek st = Token.KW_PURE then begin
        advance st;
        true
      end
      else false
    in
    let pure, const = parse_prequals st in
    let base = parse_base_type st in
    let first_ty = parse_stars st ~pure ~const base in
    let name = expect_ident st in
    if peek st = Token.LPAREN then begin
      let params = parse_params st in
      let mk body =
        Ast.GFunc
          {
            f_name = name;
            f_ret = first_ty;
            f_pure;
            f_static;
            f_params = params;
            f_body = body;
            f_loc = loc;
          }
      in
      match peek st with
      | Token.SEMI ->
        advance st;
        [ mk None ]
      | Token.LBRACE -> (
        let body = parse_stmt st in
        match body.Ast.sdesc with
        | Ast.SBlock ss -> [ mk (Some ss) ]
        | _ -> assert false)
      | t -> err st "expected ';' or '{' after function header, found %s" (Token.to_string t)
    end
    else begin
      if f_pure then
        Diag.error st.reporter ~loc ~code:"parse.pure-var"
          "the 'pure' function prefix cannot qualify a variable declaration";
      let finish_decl ty =
        let ty = parse_dims st ty in
        let init =
          if peek st = Token.ASSIGN then begin
            advance st;
            Some (parse_assign st)
          end
          else None
        in
        {
          Ast.d_type = ty;
          d_name = name;
          d_storage = storage;
          d_init = init;
          d_loc = loc;
        }
      in
      let first = finish_decl first_ty in
      let rec more acc =
        if peek st = Token.COMMA then begin
          advance st;
          let ty = parse_stars st ~pure ~const base in
          let dname = expect_ident st in
          let ty = parse_dims st ty in
          let init =
            if peek st = Token.ASSIGN then begin
              advance st;
              Some (parse_assign st)
            end
            else None
          in
          more
            ({ Ast.d_type = ty; d_name = dname; d_storage = storage; d_init = init; d_loc = loc }
            :: acc)
        end
        else List.rev acc
      in
      let decls = first :: more [] in
      expect st Token.SEMI;
      List.map (fun d -> Ast.GVar d) decls
    end

let parse_program st =
  let rec go acc =
    if peek st = Token.EOF then List.rev acc
    else go (List.rev_append (parse_global_many st) acc)
  in
  go []

(** Parse a complete translation unit from source text. *)
let program_of_string ?file ?reporter src =
  let toks = Lexer.tokenize ?file src in
  let st = create ?reporter toks in
  parse_program st

(** Parse a single expression (used by tests and the SCoP tooling). *)
let expr_of_string ?file src =
  let toks = Lexer.tokenize ?file src in
  let st = create toks in
  let e = parse_expr st in
  expect st Token.EOF;
  e

(** Parse a single statement. *)
let stmt_of_string ?file src =
  let toks = Lexer.tokenize ?file src in
  let st = create toks in
  let s = parse_stmt st in
  expect st Token.EOF;
  s
