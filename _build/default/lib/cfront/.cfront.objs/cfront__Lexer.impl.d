lib/cfront/lexer.ml: Buffer Diag List Loc Option String Support Token
