lib/cfront/ast_printer.ml: Ast Char Float List Printf String
