lib/cfront/token.ml: Printf Support
