lib/cfront/ast.ml: List Loc Option String Support
