lib/cfront/parser.ml: Array Ast Diag Lexer List Support Token
