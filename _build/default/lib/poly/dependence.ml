(** Exact dependence analysis on a {!Scop_ir.unit_nest}.

    For every pair of accesses to the same array with at least one write, a
    dependence polyhedron is built over the product space (source iteration
    vector × sink iteration vector) and queried for emptiness, per original
    carrying level.  The same machinery answers three questions:

    - which loops of the nest carry a dependence (a loop with no carried
      dependence is parallel);
    - whether a candidate unimodular schedule transformation is legal (no
      dependence may point lexicographically backwards in the new order);
    - whether a band of loops is fully permutable (tilable). *)

type dep_kind = Flow  (** write → read *) | Anti  (** read → write *) | Output  (** write → write *)

type dep = {
  dep_kind : dep_kind;
  dep_array : string;
  dep_src : int;  (** body-statement index of the source *)
  dep_dst : int;
  dep_carried : int option;  (** 1-based original carrying level; None = loop-independent *)
}

(* ------------------------------------------------------------------ *)
(* Product space plumbing *)

type product = {
  p_space : Affine.space;
  p_dim : int;  (** dimensionality of the original nest *)
}

let product_space (u : Scop_ir.unit_nest) =
  let d = List.length u.u_iters in
  let src = List.map (fun n -> n ^ "$s") u.u_iters in
  let dst = List.map (fun n -> n ^ "$t") u.u_iters in
  let params = Array.to_list u.u_space.Affine.params in
  { p_space = Affine.space ~iters:(src @ dst) ~params; p_dim = d }

(* Embed a unit-space affine form into the product space on the source
   (offset 0) or sink (offset d) half. *)
let embed prod ~(sink : bool) (a : Affine.t) : Affine.t =
  let d = prod.p_dim in
  let it = Array.make (2 * d) 0 in
  Array.iteri (fun k c -> it.((if sink then d else 0) + k) <- c) a.Affine.it;
  { Affine.it; par = Array.copy a.Affine.par; const = a.Affine.const }

(* The affine form of new-schedule row [row] of transform [t] applied to the
   source or sink iteration vector: (T x)_row. *)
let schedule_row prod (t : int array array) ~sink row : Affine.t =
  let d = prod.p_dim in
  let it = Array.make (2 * d) 0 in
  Array.iteri (fun k c -> it.((if sink then d else 0) + k) <- c) t.(row);
  { Affine.it; par = Array.make (Array.length prod.p_space.Affine.params) 0; const = 0 }

(* Base dependence polyhedron for a pair of accesses: both domains + equal
   subscripts.  Original execution-order constraints are added per carrying
   scenario by the callers. *)
let base_polyhedron (u : Scop_ir.unit_nest) prod (src : Scop_ir.access)
    (dst : Scop_ir.access) : Polyhedron.t option =
  if src.Scop_ir.a_array <> dst.Scop_ir.a_array then None
  else if List.length src.a_indices <> List.length dst.a_indices then None
  else begin
    let p = ref (Polyhedron.universe prod.p_space) in
    (* both iteration vectors lie in the domain *)
    List.iter
      (fun (c : Polyhedron.cstr) ->
        let mk sink = { c with Polyhedron.aff = embed prod ~sink c.Polyhedron.aff } in
        p := Polyhedron.add_cstr !p (mk false);
        p := Polyhedron.add_cstr !p (mk true))
      u.u_domain.Polyhedron.cstrs;
    (* equal subscripts *)
    List.iter2
      (fun ia ib ->
        p := Polyhedron.eq2 !p (embed prod ~sink:false ia) (embed prod ~sink:true ib))
      src.a_indices dst.a_indices;
    Some !p
  end

(* x_j = y_j for j < level (0-based exclusive bound), in the ORIGINAL space. *)
let equal_below prod p level =
  let rec go p j =
    if j >= level then p
    else
      let xi = Affine.of_iter prod.p_space prod.p_space.Affine.iters.(j) in
      let yi = Affine.of_iter prod.p_space prod.p_space.Affine.iters.(prod.p_dim + j) in
      go (Polyhedron.eq2 p xi yi) (j + 1)
  in
  go p 0

(* x_level < y_level in the original space (0-based level). *)
let less_at prod p level =
  let xi = Affine.of_iter prod.p_space prod.p_space.Affine.iters.(level) in
  let yi = Affine.of_iter prod.p_space prod.p_space.Affine.iters.(prod.p_dim + level) in
  Polyhedron.lt2 p xi yi

(* (T x)_j = (T y)_j for new levels j < level. *)
let sched_equal_below prod t p level =
  let rec go p j =
    if j >= level then p
    else
      go
        (Polyhedron.eq2 p (schedule_row prod t ~sink:false j) (schedule_row prod t ~sink:true j))
        (j + 1)
  in
  go p 0

(* ------------------------------------------------------------------ *)
(* Enumerating dependences *)

let classify_kind src_is_write dst_is_write =
  match (src_is_write, dst_is_write) with
  | true, false -> Flow
  | false, true -> Anti
  | true, true -> Output
  | false, false -> assert false

(* All access pairs (with body indices and write flags) that can conflict. *)
let conflicting_pairs (u : Scop_ir.unit_nest) =
  let accesses_of i (b : Scop_ir.body_stmt) =
    List.map (fun a -> (i, a, true)) b.Scop_ir.b_writes
    @ List.map (fun a -> (i, a, false)) b.Scop_ir.b_reads
  in
  let all = List.concat (List.mapi accesses_of u.u_body) in
  List.concat_map
    (fun (i, a, wa) ->
      List.filter_map
        (fun (j, b, wb) ->
          if (wa || wb) && a.Scop_ir.a_array = b.Scop_ir.a_array then Some ((i, a, wa), (j, b, wb))
          else None)
        all)
    all

(** All dependences of the unit with their original carrying levels.
    [context] can add extra parameter constraints (e.g. N >= 2). *)
let dependences ?(context = fun (p : Polyhedron.t) -> p) (u : Scop_ir.unit_nest) :
    dep list =
  let prod = product_space u in
  let deps = ref [] in
  List.iter
    (fun ((i, src, wa), (j, dst, wb)) ->
      match base_polyhedron u prod src dst with
      | None -> ()
      | Some base ->
        let base = context base in
        (* loop-carried at each level *)
        for level = 0 to prod.p_dim - 1 do
          let p = less_at prod (equal_below prod base level) level in
          if not (Polyhedron.is_empty p) then
            deps :=
              {
                dep_kind = classify_kind wa wb;
                dep_array = src.Scop_ir.a_array;
                dep_src = i;
                dep_dst = j;
                dep_carried = Some (level + 1);
              }
              :: !deps
        done;
        (* loop-independent: same iteration, source textually before sink
           (or same statement with read-before-write giving no dependence
           within the iteration) *)
        if i < j then begin
          let p = equal_below prod base prod.p_dim in
          if not (Polyhedron.is_empty p) then
            deps :=
              {
                dep_kind = classify_kind wa wb;
                dep_array = src.Scop_ir.a_array;
                dep_src = i;
                dep_dst = j;
                dep_carried = None;
              }
              :: !deps
        end)
    (conflicting_pairs u);
  List.rev !deps

(** The set of 1-based levels carrying at least one dependence.  A loop is
    parallel iff its level is not in this set. *)
let carried_levels (u : Scop_ir.unit_nest) : int list =
  dependences u
  |> List.filter_map (fun d -> d.dep_carried)
  |> List.sort_uniq compare

(** 1-based levels of parallel loops in the original nest order. *)
let parallel_levels (u : Scop_ir.unit_nest) : int list =
  let carried = carried_levels u in
  let d = List.length u.u_iters in
  List.filter (fun l -> not (List.mem l carried)) (Support.Util.range 1 (d + 1))

(* ------------------------------------------------------------------ *)
(* Transformed-schedule queries *)

(* For each dependence scenario (original carrying level or independent),
   call [f] with its polyhedron. *)
let iter_dep_polyhedra (u : Scop_ir.unit_nest) f =
  let prod = product_space u in
  List.iter
    (fun ((i, src, _wa), (j, dst, _wb)) ->
      match base_polyhedron u prod src dst with
      | None -> ()
      | Some base ->
        for level = 0 to prod.p_dim - 1 do
          let p = less_at prod (equal_below prod base level) level in
          f prod p
        done;
        if i < j then f prod (equal_below prod base prod.p_dim))
    (conflicting_pairs u)

(** Is the unimodular transform [t] legal?  No dependence may run backwards
    in the new lexicographic order. *)
let transform_legal (u : Scop_ir.unit_nest) (t : int array array) : bool =
  let legal = ref true in
  iter_dep_polyhedra u (fun prod p ->
      if !legal then
        for nl = 0 to prod.p_dim - 1 do
          if !legal then begin
            let q = sched_equal_below prod t p nl in
            let backward =
              Polyhedron.gt2 q (schedule_row prod t ~sink:false nl)
                (schedule_row prod t ~sink:true nl)
            in
            if not (Polyhedron.is_empty backward) then legal := false
          end
        done);
  !legal

(** 1-based levels of the NEW nest (after transform [t]) that carry a
    dependence. *)
let carried_levels_under (u : Scop_ir.unit_nest) (t : int array array) : int list =
  let carried = Array.make (List.length u.u_iters) false in
  iter_dep_polyhedra u (fun prod p ->
      for nl = 0 to prod.p_dim - 1 do
        if not carried.(nl) then begin
          let q = sched_equal_below prod t p nl in
          let forward =
            Polyhedron.gt2 q (schedule_row prod t ~sink:true nl)
              (schedule_row prod t ~sink:false nl)
          in
          if not (Polyhedron.is_empty forward) then carried.(nl) <- true
        end
      done);
  List.filter_map
    (fun i -> if carried.(i - 1) then Some i else None)
    (Support.Util.range 1 (Array.length carried + 1))

(** Are new-nest levels [l1..l2] (1-based, inclusive) fully permutable under
    transform [t]?  True iff every dependence has non-negative components on
    all band levels once the levels above the band are equal. *)
let band_permutable (u : Scop_ir.unit_nest) (t : int array array) ~l1 ~l2 : bool =
  let ok = ref true in
  iter_dep_polyhedra u (fun prod p ->
      if !ok then begin
        let q = sched_equal_below prod t p (l1 - 1) in
        for l = l1 to l2 do
          if !ok then begin
            let neg =
              Polyhedron.gt2 q
                (schedule_row prod t ~sink:false (l - 1))
                (schedule_row prod t ~sink:true (l - 1))
            in
            if not (Polyhedron.is_empty neg) then ok := false
          end
        done
      end);
  !ok
