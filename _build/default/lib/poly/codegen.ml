(** Loop-nest regeneration from a transformed polyhedral unit — the ClooG
    role.

    The generated code mirrors PluTo's output style (paper Listing 8): fresh
    iterators [t1, t2, ...] declared before the nest, bounds from
    Fourier–Motzkin projection with [__max]/[__min]/[__ceild]/[__floord]
    helpers, an [#pragma omp parallel for private(...)] on the chosen
    parallel loop, optional rectangular tiling of the permutable band, and
    optional SICA-style vectorization pragmas on the innermost loop. *)

open Cfront
open Support

type options = {
  tile : bool;
  tile_sizes : int list;  (** per-band-level tile sizes, cycled if short *)
  vectorize : bool;  (** emit ivdep/vector pragmas on the innermost loop *)
  parallelize : bool;
  schedule_clause : string option;  (** e.g. [Some "dynamic,1"] *)
}

let default_options =
  {
    tile = false;
    tile_sizes = [ 32 ];
    vectorize = false;
    parallelize = true;
    schedule_clause = None;
  }

type generated = {
  g_stmts : Ast.stmt list;  (** declarations + pragmas + the loop nest *)
  g_parallel_level : int option;  (** 1-based new level carrying the omp pragma *)
  g_tiled_levels : int;  (** number of tiled band levels (0 = untiled) *)
  g_new_iters : string list;
  g_schedule : Transform.schedule;
}

(* ------------------------------------------------------------------ *)
(* Expression helpers *)

let map_expr_children f (e : Ast.expr) : Ast.expr =
  let d =
    match e.Ast.edesc with
    | Ast.Binop (op, a, b) -> Ast.Binop (op, f a, f b)
    | Ast.Unop (op, a) -> Ast.Unop (op, f a)
    | Ast.Assign (op, a, b) -> Ast.Assign (op, f a, f b)
    | Ast.Call (g, args) -> Ast.Call (g, List.map f args)
    | Ast.Index (a, b) -> Ast.Index (f a, f b)
    | Ast.Deref a -> Ast.Deref (f a)
    | Ast.AddrOf a -> Ast.AddrOf (f a)
    | Ast.Member (a, fld) -> Ast.Member (f a, fld)
    | Ast.Arrow (a, fld) -> Ast.Arrow (f a, fld)
    | Ast.Cast (ty, a) -> Ast.Cast (ty, f a)
    | Ast.Cond (a, b, c) -> Ast.Cond (f a, f b, f c)
    | Ast.SizeofExpr a -> Ast.SizeofExpr (f a)
    | Ast.IncDec r -> Ast.IncDec { r with arg = f r.arg }
    | Ast.Comma (a, b) -> Ast.Comma (f a, f b)
    | (Ast.IntLit _ | Ast.FloatLit _ | Ast.StrLit _ | Ast.CharLit _ | Ast.Ident _
      | Ast.SizeofType _) as d ->
      d
  in
  { e with Ast.edesc = d }

let rec subst_idents map (e : Ast.expr) : Ast.expr =
  match e.Ast.edesc with
  | Ast.Ident x -> ( match List.assoc_opt x map with Some e' -> e' | None -> e)
  | _ -> map_expr_children (subst_idents map) e

let affine_to_expr (space : Affine.space) (a : Affine.t) : Ast.expr =
  (* signed terms: (sign, |coeff|, name) *)
  let terms = ref [] in
  let add_term coeff name = if coeff <> 0 then terms := (coeff, name) :: !terms in
  Array.iteri (fun k c -> add_term c space.Affine.iters.(k)) a.Affine.it;
  Array.iteri (fun k c -> add_term c space.Affine.params.(k)) a.Affine.par;
  let term_expr coeff name =
    let base = Ast.ident name in
    if abs coeff = 1 then base
    else Ast.mk_expr (Ast.Binop (Ast.Mul, Ast.int_lit (abs coeff), base))
  in
  let combine acc (coeff, name) =
    let op = if coeff >= 0 then Ast.Add else Ast.Sub in
    Ast.mk_expr (Ast.Binop (op, acc, term_expr coeff name))
  in
  match List.rev !terms with
  | [] -> Ast.int_lit a.Affine.const
  | (c0, n0) :: rest ->
    let first =
      if c0 >= 0 then term_expr c0 n0
      else Ast.mk_expr (Ast.Unop (Ast.Neg, term_expr c0 n0))
    in
    let sum = List.fold_left combine first rest in
    if a.Affine.const = 0 then sum
    else if a.Affine.const > 0 then
      Ast.mk_expr (Ast.Binop (Ast.Add, sum, Ast.int_lit a.Affine.const))
    else Ast.mk_expr (Ast.Binop (Ast.Sub, sum, Ast.int_lit (-a.Affine.const)))

let max_expr a b = Ast.mk_expr (Ast.Call ("__max", [ a; b ]))

let min_expr a b = Ast.mk_expr (Ast.Call ("__min", [ a; b ]))

let lower_bound_expr space lowers =
  let exprs =
    List.map
      (fun (c, form) ->
        let e = affine_to_expr space form in
        if c = 1 then e else Ast.mk_expr (Ast.Call ("__ceild", [ e; Ast.int_lit c ])))
      lowers
  in
  match exprs with
  | [] -> None
  | e :: es -> Some (List.fold_left max_expr e es)

let upper_bound_expr space uppers =
  let exprs =
    List.map
      (fun (c, form) ->
        let e = affine_to_expr space form in
        if c = 1 then e else Ast.mk_expr (Ast.Call ("__floord", [ e; Ast.int_lit c ])))
      uppers
  in
  match exprs with
  | [] -> None
  | e :: es -> Some (List.fold_left min_expr e es)

(* ------------------------------------------------------------------ *)
(* Nest construction *)

let assign_init iter lb_expr =
  Ast.FInitExpr (Ast.mk_expr (Ast.Assign (Ast.OpAssign, Ast.ident iter, lb_expr)))

let for_loop_step iter lb_expr ub_expr step body =
  let step_expr =
    if step = 1 then Ast.mk_expr (Ast.IncDec { pre = false; inc = true; arg = Ast.ident iter })
    else Ast.mk_expr (Ast.Assign (Ast.OpAddAssign, Ast.ident iter, Ast.int_lit step))
  in
  Ast.mk_stmt
    (Ast.SFor
       ( Some (assign_init iter lb_expr),
         Some (Ast.mk_expr (Ast.Binop (Ast.Le, Ast.ident iter, ub_expr))),
         Some step_expr,
         body ))

let for_loop iter lb_expr ub_expr body = for_loop_step iter lb_expr ub_expr 1 body

let int_decl name =
  Ast.mk_stmt
    (Ast.SDecl
       {
         Ast.d_type = Ast.Int;
         d_name = name;
         d_storage = Ast.Auto;
         d_init = None;
         d_loc = Loc.dummy;
       })

(* Bounds for new level k: project out deeper iterators from the transformed
   domain, then read the (coeff, form) bound pairs for k. *)
let level_bounds new_space transformed_cstrs d k =
  let p = { Polyhedron.space = new_space; cstrs = transformed_cstrs } in
  let rec project p j = if j >= d then p else project (Polyhedron.project_out p j) (j + 1) in
  let p = project p (k + 1) in
  Polyhedron.bounds_for p k

(* Do the bounds of levels 1..b depend only on parameters (rectangular)? *)
let band_rectangular new_space transformed_cstrs d b =
  let ok = ref true in
  for k = 0 to b - 1 do
    let lowers, uppers = level_bounds new_space transformed_cstrs d k in
    List.iter
      (fun (_, form) -> if not (Array.for_all (( = ) 0) form.Affine.it) then ok := false)
      (lowers @ uppers)
  done;
  !ok

(** Generate the transformed nest for [u] under [sched]. *)
let generate ?(options = default_options) (u : Scop_ir.unit_nest)
    (sched : Transform.schedule) : generated =
  let d = List.length u.u_iters in
  let t = sched.Transform.sched_matrix in
  let m_inv =
    match Linalg.Imat.inverse t with
    | Some m -> m
    | None -> invalid_arg "Codegen.generate: transform is not unimodular"
  in
  let new_iters = List.init d (fun i -> Printf.sprintf "t%d" (i + 1)) in
  let new_space =
    Affine.space ~iters:new_iters ~params:(Array.to_list u.u_space.Affine.params)
  in
  let transformed_cstrs =
    List.map
      (fun (c : Polyhedron.cstr) ->
        { c with Polyhedron.aff = Affine.apply_iter_subst c.Polyhedron.aff m_inv })
      u.u_domain.Polyhedron.cstrs
  in
  (* old iterator name -> expression over the new iterators (x = M y) *)
  let subst_map =
    List.mapi
      (fun old_k old_name ->
        let form =
          {
            Affine.it = Array.copy m_inv.(old_k);
            par = Array.make (Array.length new_space.Affine.params) 0;
            const = 0;
          }
        in
        (old_name, affine_to_expr new_space form))
      u.u_iters
  in
  let new_body =
    List.map
      (fun (b : Scop_ir.body_stmt) ->
        match b.Scop_ir.b_ast.Ast.sdesc with
        | Ast.SExpr e -> Ast.mk_stmt (Ast.SExpr (subst_idents subst_map e))
        | _ -> b.Scop_ir.b_ast)
      u.u_body
  in
  let innermost_body =
    match new_body with [ s ] -> s | ss -> Ast.mk_stmt (Ast.SBlock ss)
  in
  let band = sched.Transform.sched_band in
  let tiled_levels =
    if options.tile && band >= 2 && band_rectangular new_space transformed_cstrs d band
    then band
    else 0
  in
  let tile_size k =
    match options.tile_sizes with
    | [] -> 32
    | sizes -> List.nth sizes (k mod List.length sizes)
  in
  let bounds =
    Array.init d (fun k ->
        let lowers, uppers = level_bounds new_space transformed_cstrs d k in
        let lb =
          match lower_bound_expr new_space lowers with
          | Some e -> e
          | None -> invalid_arg "Codegen.generate: unbounded loop (no lower bound)"
        in
        let ub =
          match upper_bound_expr new_space uppers with
          | Some e -> e
          | None -> invalid_arg "Codegen.generate: unbounded loop (no upper bound)"
        in
        (lb, ub))
  in
  (* Constant trip count of a new-space level, when both bounds are
     parameter-free. *)
  let level_extent k =
    let lowers, uppers = level_bounds new_space transformed_cstrs d k in
    let const_of forms ~pick =
      List.fold_left
        (fun acc (c, form) ->
          if Affine.is_constant form && Array.for_all (( = ) 0) form.Affine.par then
            let v =
              if c = 1 then form.Affine.const
              else form.Affine.const / c (* coarse; only used as a heuristic *)
            in
            match acc with None -> Some v | Some a -> Some (pick a v)
          else acc)
        None forms
    in
    match (const_of lowers ~pick:max, const_of uppers ~pick:min) with
    | Some lb, Some ub
      when List.for_all (fun (_, f) -> Affine.is_constant f) lowers
           && List.for_all (fun (_, f) -> Affine.is_constant f) uppers ->
      Some (ub - lb + 1)
    | _ -> None
  in
  let parallel_level =
    if not options.parallelize then None
    else begin
      (* prefer the outermost parallel loop that actually has iterations to
         share; a degenerate loop (e.g. a single-trip repetition level) would
         absorb the pragma and serialize everything below it *)
      let worthwhile l =
        match level_extent (l - 1) with None -> true | Some e -> e >= 8
      in
      match List.filter worthwhile sched.Transform.sched_parallel with
      | l :: _ -> Some l
      | [] -> ( match sched.Transform.sched_parallel with [] -> None | l :: _ -> Some l)
    end
  in
  let omp_pragma level =
    (* iterators of loops strictly inside the parallel loop must be private
       (they are declared at function scope, PluTo-style); outer sequential
       iterators stay shared, and OpenMP privatizes the parallel iterator
       itself *)
    let parallel_iter =
      let base = List.nth new_iters (level - 1) in
      if tiled_levels >= level then base ^ "t" else base
    in
    let loop_order =
      List.map (fun n -> n ^ "t") (Util.take tiled_levels new_iters) @ new_iters
    in
    let rec after = function
      | [] -> []
      | x :: rest -> if x = parallel_iter then rest else after rest
    in
    let privates = after loop_order in
    let private_clause =
      if privates = [] then "" else Printf.sprintf " private(%s)" (String.concat "," privates)
    in
    let sched_clause =
      match options.schedule_clause with
      | Some c -> Printf.sprintf " schedule(%s)" c
      | None -> ""
    in
    Ast.mk_stmt (Ast.SPragma (Printf.sprintf "omp parallel for%s%s" private_clause sched_clause))
  in
  (* point loops, built inner to outer; the innermost may carry SICA
     vectorization pragmas, and the parallel level carries the omp pragma
     when it is not the outermost construct *)
  let rec build_point k =
    let iter = List.nth new_iters k in
    let lb, ub = bounds.(k) in
    let lb, ub =
      if k < tiled_levels then
        let tile_iter = Ast.ident (iter ^ "t") in
        ( max_expr lb tile_iter,
          min_expr ub (Ast.mk_expr (Ast.Binop (Ast.Add, tile_iter, Ast.int_lit (tile_size k - 1))))
        )
      else (lb, ub)
    in
    let inner =
      if k = d - 1 then
        if options.vectorize then
          Ast.mk_stmt
            (Ast.SBlock
               [
                 Ast.mk_stmt (Ast.SPragma "ivdep");
                 Ast.mk_stmt (Ast.SPragma "vector always");
                 innermost_body;
               ])
        else innermost_body
      else build_point (k + 1)
    in
    (* the vectorization pragmas must precede the innermost *loop*, not its
       body; wrap when building level d-1's parent.  Simpler: pragmas inside
       the loop body would change semantics of #pragma, so instead attach
       them around the innermost loop statement here. *)
    let loop = for_loop iter lb ub inner in
    let loop =
      if parallel_level = Some (k + 1) && (k + 1 > 1 || tiled_levels > 0) && k >= tiled_levels
      then Ast.mk_stmt (Ast.SBlock [ omp_pragma (k + 1); loop ])
      else loop
    in
    loop
  in
  let point_nest = build_point 0 in
  let rec build_tile k inner =
    if k < 0 then inner
    else
      let iter = List.nth new_iters k ^ "t" in
      let lb, ub = bounds.(k) in
      build_tile (k - 1) (for_loop_step iter lb ub (tile_size k) inner)
  in
  let nest =
    if tiled_levels > 0 then build_tile (tiled_levels - 1) point_nest else point_nest
  in
  (* omp pragma before the whole nest when the parallel loop is the
     outermost generated construct (tile loop t1t or point loop t1) *)
  let top_pragma =
    match parallel_level with
    | Some 1 -> [ omp_pragma 1 ]
    | Some _ when false -> []
    | _ -> []
  in
  let decls =
    let tiles = List.map (fun n -> n ^ "t") (Util.take tiled_levels new_iters) in
    List.map int_decl (tiles @ new_iters)
  in
  {
    g_stmts = decls @ top_pragma @ [ nest ];
    g_parallel_level = parallel_level;
    g_tiled_levels = tiled_levels;
    g_new_iters = new_iters;
    g_schedule = sched;
  }
