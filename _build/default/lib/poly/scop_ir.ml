(** The polyhedral intermediate representation and its extraction from the
    AST — the role Clan/OpenScop play for PluTo.

    A {e unit} is a perfect loop nest whose body is a list of assignment
    statements with affine accesses.  Imperfect nests decompose into several
    units under enclosing sequential loops (the enclosing iterators behave
    as parameters for the unit's analysis, because the unit is only
    transformed, never moved across the enclosing loops).

    Extraction {e fails} on anything non-affine — in particular on function
    calls.  That failure is the paper's central premise: PluTo alone cannot
    handle loops with calls, and only after the purity pass substitutes pure
    calls with opaque constants does extraction succeed. *)

open Cfront

type access = {
  a_array : string;
  a_indices : Affine.t list;  (** outermost subscript first; [] for scalars *)
}

type body_stmt = {
  b_ast : Ast.stmt;
  b_writes : access list;
  b_reads : access list;
}

type unit_nest = {
  u_iters : string list;  (** outer-to-inner iterator names *)
  u_space : Affine.space;
  u_domain : Polyhedron.t;
  u_body : body_stmt list;
  u_enclosing : string list;  (** enclosing sequential loop iterators *)
  u_decls : (string * Ast.ctype) list;  (** iterator declarations to re-emit *)
}

(** Extraction failure: the nest is not a static control part. *)
exception Not_affine of string * Support.Loc.t

let fail loc fmt = Fmt.kstr (fun m -> raise (Not_affine (m, loc))) fmt

let is_tmp_const name =
  String.length name >= 9 && String.sub name 0 9 = "tmpConst_"

(* ------------------------------------------------------------------ *)
(* Loop header recognition: for (i = lb; i </<= ub; i++/i+=1) *)

type loop_header = {
  h_iter : string;
  h_decl : Ast.ctype option;  (** Some ty if the iterator is declared here *)
  h_lb : Ast.expr;
  h_ub : Ast.expr;  (** inclusive upper bound is [h_ub_incl] *)
  h_ub_incl : bool;
  h_body : Ast.stmt;
  h_loc : Support.Loc.t;
}

let recognize_loop (s : Ast.stmt) : loop_header option =
  match s.sdesc with
  | Ast.SFor (Some init, Some cond, Some step, body) -> (
    let iter_decl =
      match init with
      | Ast.FInitDecl { d_name; d_init = Some lb; d_type; _ } -> Some (d_name, Some d_type, lb)
      | Ast.FInitExpr { edesc = Ast.Assign (Ast.OpAssign, { edesc = Ast.Ident n; _ }, lb); _ } ->
        Some (n, None, lb)
      | _ -> None
    in
    match iter_decl with
    | None -> None
    | Some (name, decl, lb) -> (
      let ub =
        match cond.edesc with
        | Ast.Binop (Ast.Lt, { edesc = Ast.Ident n; _ }, ub) when n = name -> Some (ub, false)
        | Ast.Binop (Ast.Le, { edesc = Ast.Ident n; _ }, ub) when n = name -> Some (ub, true)
        | _ -> None
      in
      let step_ok =
        match step.edesc with
        | Ast.IncDec { inc = true; arg = { edesc = Ast.Ident n; _ }; _ } -> n = name
        | Ast.Assign (Ast.OpAddAssign, { edesc = Ast.Ident n; _ }, { edesc = Ast.IntLit 1; _ })
          ->
          n = name
        | Ast.Assign
            ( Ast.OpAssign,
              { edesc = Ast.Ident n; _ },
              {
                edesc = Ast.Binop (Ast.Add, { edesc = Ast.Ident n2; _ }, { edesc = Ast.IntLit 1; _ });
                _;
              } ) ->
          n = name && n2 = name
        | _ -> false
      in
      match ub with
      | Some (ub, incl) when step_ok ->
        Some
          {
            h_iter = name;
            h_decl = (match decl with Some ty -> Some ty | None -> None);
            h_lb = lb;
            h_ub = ub;
            h_ub_incl = incl;
            h_body = body;
            h_loc = s.sloc;
          }
      | _ -> None))
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Expression → affine form *)

(* Names assigned anywhere in a statement (used to refuse treating a mutated
   scalar as a parameter). *)
let mutated_names stmt =
  Ast.fold_stmt ~stmt:(fun acc _ -> acc)
    ~expr:(fun acc e ->
      match e.Ast.edesc with
      | Ast.Assign (_, { edesc = Ast.Ident n; _ }, _) -> n :: acc
      | Ast.IncDec { arg = { edesc = Ast.Ident n; _ }; _ } -> n :: acc
      | _ -> acc)
    [] stmt

type affine_env = {
  iters : string list;
  mutable params : string list;  (** discovered loop-invariant scalars *)
  forbidden : string list;  (** mutated in the nest: not loop-invariant *)
}

let rec to_affine env space (e : Ast.expr) : Affine.t =
  match e.Ast.edesc with
  | Ast.IntLit n -> Affine.const space n
  | Ast.Ident x ->
    if List.mem x env.iters then Affine.of_iter space x
    else if List.mem x env.forbidden then
      fail e.eloc "scalar %s is modified in the nest and cannot be used affinely" x
    else Affine.of_param space x
  | Ast.Binop (Ast.Add, a, b) -> Affine.add (to_affine env space a) (to_affine env space b)
  | Ast.Binop (Ast.Sub, a, b) -> Affine.sub (to_affine env space a) (to_affine env space b)
  | Ast.Binop (Ast.Mul, a, b) -> (
    let fa = to_affine env space a and fb = to_affine env space b in
    if Affine.is_constant fa then Affine.scale fa.Affine.const fb
    else if Affine.is_constant fb then Affine.scale fb.Affine.const fa
    else fail e.eloc "non-affine multiplication")
  | Ast.Unop (Ast.Neg, a) -> Affine.neg (to_affine env space a)
  | Ast.Cast (_, a) -> to_affine env space a
  | _ -> fail e.eloc "non-affine expression: %s" (Ast_printer.expr_to_string e)

(* Pre-scan an expression for parameter names so the space can be built
   before affine conversion. *)
let rec scan_params env (e : Ast.expr) =
  match e.Ast.edesc with
  | Ast.IntLit _ -> ()
  | Ast.Ident x ->
    if
      (not (List.mem x env.iters))
      && (not (List.mem x env.forbidden))
      && (not (List.mem x env.params))
      && not (is_tmp_const x)
    then env.params <- x :: env.params
  | Ast.Binop ((Ast.Add | Ast.Sub | Ast.Mul), a, b) ->
    scan_params env a;
    scan_params env b
  | Ast.Unop (Ast.Neg, a) | Ast.Cast (_, a) -> scan_params env a
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Access extraction *)

(* Base array name and subscripts of an lvalue-ish expression:
   A[i][j] → ("A", [i; j]); *p → ("p", [0]). *)
let rec array_base (e : Ast.expr) (subs : Ast.expr list) =
  match e.Ast.edesc with
  | Ast.Ident x -> Some (x, subs)
  | Ast.Index (b, i) -> array_base b (i :: subs)
  | Ast.Deref b -> array_base b (Ast.int_lit 0 :: subs)
  | Ast.Cast (_, b) -> array_base b subs
  | _ -> None

type acc_collector = { mutable reads : access list; mutable writes : access list }

let rec collect_expr env space col ~(is_read : bool) (e : Ast.expr) =
  match e.Ast.edesc with
  | Ast.IntLit _ | Ast.FloatLit _ | Ast.StrLit _ | Ast.CharLit _ | Ast.SizeofType _ -> ()
  | Ast.Ident x ->
    if List.mem x env.iters || is_tmp_const x then ()
    else if is_read && not (List.mem x env.forbidden) then
      (* loop-invariant scalar read: a parameter, no access *)
      ()
    else begin
      (* mutated scalar: a 0-dimensional access *)
      let acc = { a_array = x; a_indices = [] } in
      if is_read then col.reads <- acc :: col.reads else col.writes <- acc :: col.writes
    end
  | Ast.Index _ | Ast.Deref _ -> (
    match array_base e [] with
    | Some (base, subs) ->
      let indices = List.map (to_affine env space) subs in
      let acc = { a_array = base; a_indices = indices } in
      if is_read then col.reads <- acc :: col.reads else col.writes <- acc :: col.writes;
      (* subscripts are themselves reads of iterators/params only; checked by
         to_affine above *)
      ()
    | None -> fail e.eloc "unanalyzable memory access")
  | Ast.Binop (_, a, b) ->
    collect_expr env space col ~is_read:true a;
    collect_expr env space col ~is_read:true b
  | Ast.Unop (_, a) | Ast.Cast (_, a) -> collect_expr env space col ~is_read:true a
  | Ast.Cond (c, t, f) ->
    collect_expr env space col ~is_read:true c;
    collect_expr env space col ~is_read:true t;
    collect_expr env space col ~is_read:true f
  | Ast.Assign (op, lhs, rhs) ->
    collect_expr env space col ~is_read:false lhs;
    if op <> Ast.OpAssign then collect_expr env space col ~is_read:true lhs;
    collect_expr env space col ~is_read:true rhs
  | Ast.Call (f, _) -> fail e.eloc "function call to %s inside a static control part" f
  | Ast.Member _ | Ast.Arrow _ -> fail e.eloc "struct access inside a static control part"
  | Ast.AddrOf _ -> fail e.eloc "address-of inside a static control part"
  | Ast.SizeofExpr _ -> ()
  | Ast.IncDec { arg; _ } ->
    collect_expr env space col ~is_read:false arg;
    collect_expr env space col ~is_read:true arg
  | Ast.Comma (a, b) ->
    collect_expr env space col ~is_read:true a;
    collect_expr env space col ~is_read:true b

(* Pre-scan of an expression for parameter discovery in subscripts/rhs.
   Identifiers in array-base position are array names, not parameters. *)
let rec scan_expr env (e : Ast.expr) =
  match e.Ast.edesc with
  | Ast.Index (a, b) ->
    scan_base env a;
    scan_expr env b
  | Ast.Deref a -> scan_base env a
  | Ast.Binop (_, a, b) | Ast.Assign (_, a, b) | Ast.Comma (a, b) ->
    scan_expr env a;
    scan_expr env b
  | Ast.Unop (_, a)
  | Ast.Cast (_, a)
  | Ast.AddrOf a
  | Ast.Member (a, _)
  | Ast.Arrow (a, _)
  | Ast.SizeofExpr a
  | Ast.IncDec { arg = a; _ } ->
    scan_expr env a
  | Ast.Cond (a, b, c) ->
    scan_expr env a;
    scan_expr env b;
    scan_expr env c
  | Ast.Call (_, args) -> List.iter (scan_expr env) args
  | Ast.Ident _ -> scan_params env e
  | Ast.IntLit _ | Ast.FloatLit _ | Ast.StrLit _ | Ast.CharLit _ | Ast.SizeofType _ -> ()

and scan_base env (e : Ast.expr) =
  match e.Ast.edesc with
  | Ast.Ident _ -> ()
  | Ast.Index (a, b) ->
    scan_base env a;
    scan_expr env b
  | Ast.Cast (_, a) | Ast.Deref a -> scan_base env a
  | _ -> scan_expr env e

(* ------------------------------------------------------------------ *)
(* Unit extraction *)

(* Statements of a loop body: unwrap blocks. *)
let body_list (s : Ast.stmt) =
  match s.Ast.sdesc with Ast.SBlock ss -> ss | _ -> [ s ]

(* Recognize a maximal perfect nest starting at [s]; returns headers
   outer→inner and the list of body statements. *)
let rec perfect_nest (s : Ast.stmt) : loop_header list * Ast.stmt list =
  match recognize_loop s with
  | None -> ([], body_list s)
  | Some h -> (
    match body_list h.h_body with
    | [ inner ] when Option.is_some (recognize_loop inner) ->
      let hs, body = perfect_nest inner in
      (h :: hs, body)
    | body -> ([ h ], body))

(** Extract one unit from a loop-nest statement.  Every body statement must
    be an affine assignment; anything else raises {!Not_affine}. *)
let extract_unit ?(enclosing = []) ?(enclosing_params = []) (s : Ast.stmt) : unit_nest =
  let headers, body = perfect_nest s in
  if headers = [] then fail s.Ast.sloc "not a recognizable for-loop";
  let iters = List.map (fun h -> h.h_iter) headers in
  (* parameter discovery: scan bounds and body *)
  let forbidden =
    List.filter (fun n -> not (List.mem n iters)) (mutated_names s)
  in
  let env = { iters; params = enclosing_params @ enclosing; forbidden } in
  List.iter
    (fun h ->
      scan_expr env h.h_lb;
      scan_expr env h.h_ub)
    headers;
  List.iter
    (fun st ->
      match st.Ast.sdesc with
      | Ast.SExpr e -> scan_expr env e
      | _ -> fail st.Ast.sloc "unsupported statement in a static control part")
    body;
  let space = Affine.space ~iters ~params:(List.rev env.params) in
  (* domain *)
  let domain =
    List.fold_left
      (fun p h ->
        let lb = to_affine env space h.h_lb in
        let ub = to_affine env space h.h_ub in
        let iter = Affine.of_iter space h.h_iter in
        let p = Polyhedron.ge2 p iter lb in
        if h.h_ub_incl then Polyhedron.le2 p iter ub else Polyhedron.lt2 p iter ub)
      (Polyhedron.universe space) headers
  in
  let body_stmts =
    List.map
      (fun st ->
        match st.Ast.sdesc with
        | Ast.SExpr e ->
          let col = { reads = []; writes = [] } in
          collect_expr env space col ~is_read:true e;
          { b_ast = st; b_writes = List.rev col.writes; b_reads = List.rev col.reads }
        | _ -> fail st.Ast.sloc "unsupported statement in a static control part")
      body
  in
  let decls =
    List.filter_map
      (fun h -> match h.h_decl with Some ty -> Some (h.h_iter, ty) | None -> None)
      headers
  in
  {
    u_iters = iters;
    u_space = space;
    u_domain = domain;
    u_body = body_stmts;
    u_enclosing = enclosing;
    u_decls = decls;
  }

(** Decompose a marked loop nest into units.  For a perfect nest this is one
    unit; for an imperfect nest the outer loops stay sequential and each
    maximal inner perfect nest becomes a unit (PluTo would handle these with
    general schedules; the decomposition covers the evaluation codes). *)
let rec extract_units ?(enclosing = []) ?(enclosing_params = []) (s : Ast.stmt) :
    unit_nest list =
  match recognize_loop s with
  | None -> fail s.Ast.sloc "not a recognizable for-loop"
  | Some h -> (
    let body = body_list h.h_body in
    let all_loops =
      body <> [] && List.for_all (fun st -> Option.is_some (recognize_loop st)) body
    in
    let is_single_nest =
      match body with [ st ] -> Option.is_some (recognize_loop st) | _ -> false
    in
    if is_single_nest || not all_loops then
      (* perfect (or leaf-level) nest: one unit *)
      [ extract_unit ~enclosing ~enclosing_params s ]
    else
      (* imperfect: this loop stays sequential; recurse into each sub-nest *)
      let enclosing' = enclosing @ [ h.h_iter ] in
      List.concat_map
        (fun st -> extract_units ~enclosing:enclosing' ~enclosing_params st)
        body)
