lib/poly/scop_ir.ml: Affine Ast Ast_printer Cfront Fmt List Option Polyhedron String Support
