lib/poly/polyhedron.ml: Affine Array Hashtbl Linalg List Option Printf String Support
