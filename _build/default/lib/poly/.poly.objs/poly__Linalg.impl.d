lib/poly/linalg.ml: Array Printf String Support Util
