lib/poly/dependence.ml: Affine Array List Polyhedron Scop_ir Support
