lib/poly/affine.ml: Array List Printf String
