lib/poly/transform.ml: Array Dependence Hashtbl Linalg List Scop_ir Support Util
