lib/poly/codegen.ml: Affine Array Ast Cfront Linalg List Loc Polyhedron Printf Scop_ir String Support Transform Util
