(** Parameterized polyhedra and Fourier–Motzkin elimination.

    A polyhedron is a conjunction of affine constraints [aff >= 0] /
    [aff = 0] over a {!Affine.space}.  This is the slice of ISL the
    reproduction needs: emptiness of dependence polyhedra, variable
    elimination, and bound extraction for code generation.

    Elimination is rational (classic FM).  For *emptiness* this is
    conservative in the right direction: a rationally-empty set is
    integrally empty, and a rationally-non-empty dependence polyhedron is
    treated as a real dependence — never missing a dependence, exactly like
    a production dependence tester that over-approximates. *)


type kind = Ge  (** aff >= 0 *) | EqK  (** aff = 0 *)

type cstr = { kind : kind; aff : Affine.t }

type t = { space : Affine.space; cstrs : cstr list }

let universe space = { space; cstrs = [] }

let add_cstr p c = { p with cstrs = c :: p.cstrs }

let ge p aff = add_cstr p { kind = Ge; aff }

(** aff1 >= aff2 *)
let ge2 p aff1 aff2 = ge p (Affine.sub aff1 aff2)

(** aff1 <= aff2 *)
let le2 p aff1 aff2 = ge p (Affine.sub aff2 aff1)

let eq p aff = add_cstr p { kind = EqK; aff }

let eq2 p aff1 aff2 = eq p (Affine.sub aff1 aff2)

(** aff1 >= aff2 + 1, i.e. strict greater on integers *)
let gt2 p aff1 aff2 = ge p (Affine.sub (Affine.sub aff1 aff2) (Affine.const p.space 1))

(** aff1 <= aff2 - 1, i.e. strict less on integers *)
let lt2 p aff1 aff2 = gt2 p aff2 aff1

let conjunction a b =
  if not (Affine.space_equal a.space b.space) then
    invalid_arg "Polyhedron.conjunction: different spaces";
  { a with cstrs = a.cstrs @ b.cstrs }

(* Split equalities into two inequalities. *)
let inequalities p =
  List.concat_map
    (fun c ->
      match c.kind with
      | Ge -> [ c.aff ]
      | EqK -> [ c.aff; Affine.neg c.aff ])
    p.cstrs

(* A constraint with no iterator coefficients is a fact about parameters and
   constants; if its constant part is negative and no parameters occur, the
   polyhedron is empty.  Parameter-dependent facts are kept (context). *)
let trivially_false aff =
  Affine.is_constant aff && aff.Affine.const < 0

(* Normalize an inequality [aff >= 0]: divide by the gcd of the variable
   coefficients, flooring the constant — every integer solution is kept and
   the integer relaxation gets tighter (safe for dependence testing: no
   integer point is ever lost). *)
let normalize_ineq (aff : Affine.t) : Affine.t =
  let g =
    Array.fold_left (fun acc c -> Support.Util.gcd acc c) 0 aff.Affine.it
    |> fun g -> Array.fold_left (fun acc c -> Support.Util.gcd acc c) g aff.Affine.par
  in
  if g <= 1 then aff
  else
    {
      Affine.it = Array.map (fun c -> c / g) aff.Affine.it;
      par = Array.map (fun c -> c / g) aff.Affine.par;
      const =
        (if aff.Affine.const >= 0 then aff.Affine.const / g
         else -((-aff.Affine.const + g - 1) / g));
    }

(* Trivially satisfied: no variables and a non-negative constant. *)
let trivially_true aff = Affine.is_constant aff && aff.Affine.const >= 0

let dedup_ineqs ineqs =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun (aff : Affine.t) ->
      if trivially_true aff then false
      else begin
        let key = (Array.to_list aff.Affine.it, Array.to_list aff.Affine.par, aff.Affine.const) in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.replace seen key ();
          true
        end
      end)
    ineqs

(* Eliminate iterator [k] by Fourier–Motzkin.  All constraints are treated
   as inequalities (equalities pre-split).  Results are gcd-normalized and
   deduplicated to keep the constraint count under control. *)
let eliminate_iter_ineqs space k ineqs =
  let lower, upper, rest =
    List.fold_left
      (fun (lo, up, rest) aff ->
        let c = Affine.iter_coeff aff k in
        if c > 0 then (aff :: lo, up, rest)
        else if c < 0 then (lo, aff :: up, rest)
        else (lo, up, aff :: rest))
      ([], [], []) ineqs
  in
  (* lower: c*x + r >= 0 with c>0  →  x >= -r/c
     upper: -c*x + r >= 0 with c>0 →  x <= r/c
     combination: for lower (c1, r1), upper with coeff -c2 (c2>0), r2:
       c2*r1 + c1*r2 >= 0 *)
  let combos =
    List.concat_map
      (fun lo ->
        let c1 = Affine.iter_coeff lo k in
        List.map
          (fun up ->
            let c2 = -Affine.iter_coeff up k in
            let combined = Affine.add (Affine.scale c2 lo) (Affine.scale c1 up) in
            (* zero out the eliminated coefficient explicitly *)
            let it = Array.copy combined.Affine.it in
            it.(k) <- 0;
            normalize_ineq { combined with Affine.it })
          upper)
      lower
  in
  ignore space;
  dedup_ineqs (combos @ rest)

(** Is the polyhedron (rationally, integer-tightened) empty?  Variables are
    eliminated cheapest-first (fewest lower×upper combinations), the classic
    FM ordering heuristic. *)
let is_empty p =
  let n = Affine.space_dim p.space in
  let rec go remaining ineqs =
    if List.exists trivially_false ineqs then true
    else
      match remaining with
      | [] ->
        (* only parameters left: without parameter context we treat
           parameter-dependent constraints as satisfiable *)
        List.exists (fun aff -> Affine.is_constant aff && aff.Affine.const < 0) ineqs
      | _ ->
        let cost k =
          let lo, up =
            List.fold_left
              (fun (lo, up) aff ->
                let c = Affine.iter_coeff aff k in
                if c > 0 then (lo + 1, up) else if c < 0 then (lo, up + 1) else (lo, up))
              (0, 0) ineqs
          in
          (lo * up) - lo - up
        in
        let best =
          List.fold_left
            (fun acc k ->
              match acc with
              | None -> Some (k, cost k)
              | Some (_, c) -> if cost k < c then Some (k, cost k) else acc)
            None remaining
        in
        let k, _ = Option.get best in
        go (List.filter (( <> ) k) remaining) (eliminate_iter_ineqs p.space k ineqs)
  in
  go (List.init n (fun i -> i)) (dedup_ineqs (inequalities p))

(** Eliminate one iterator, keeping the space (coefficients of [k] are zero
    afterwards). *)
let project_out p k =
  let ineqs = eliminate_iter_ineqs p.space k (inequalities p) in
  { p with cstrs = List.map (fun aff -> { kind = Ge; aff }) ineqs }

(** Eliminate all iterators except those in [keep]. *)
let project_onto p keep =
  let n = Affine.space_dim p.space in
  let rec go k acc = if k >= n then acc else go (k + 1) (if List.mem k keep then acc else project_out acc k) in
  go 0 p

(** Lower and upper bound forms for iterator [k]:
    [lowers] are affine forms L with x_k >= ceil(L) and [uppers] U with
    x_k <= floor(U); returned as (coefficient, form-without-x_k) pairs so the
    caller can emit ceil/floor divisions ([coefficient] is positive). *)
let bounds_for p k =
  let lowers = ref [] and uppers = ref [] in
  List.iter
    (fun aff ->
      let c = Affine.iter_coeff aff k in
      if c > 0 then begin
        (* c*x + r >= 0 → x >= -r/c *)
        let r = { aff with Affine.it = Array.copy aff.Affine.it } in
        r.Affine.it.(k) <- 0;
        lowers := (c, Affine.neg r) :: !lowers
      end
      else if c < 0 then begin
        (* -c'*x + r >= 0 → x <= r/c' with c' = -c *)
        let r = { aff with Affine.it = Array.copy aff.Affine.it } in
        r.Affine.it.(k) <- 0;
        uppers := (-c, r) :: !uppers
      end)
    (inequalities p);
  (!lowers, !uppers)

(** Enumerate all integer points (for tests; requires constant bounds once
    outer values are fixed, parameters instantiated via [params]). *)
let enumerate p ~params =
  let n = Affine.space_dim p.space in
  let ineqs = inequalities p in
  (* bounds for dim k given outer values fixed *)
  let rec go k prefix acc =
    if k >= n then List.rev prefix :: acc
    else begin
      let fixed = Array.of_list (List.rev prefix) in
      let value_of aff =
        (* evaluates coefficients of dims < k with prefix; requires dims > k
           to have zero coefficient *)
        let ok = ref true in
        let acc_v = ref aff.Affine.const in
        Array.iteri
          (fun j c ->
            if c <> 0 then
              if j < k then acc_v := !acc_v + (c * fixed.(j))
              else if j > k then ok := false)
          aff.Affine.it;
        Array.iteri (fun j c -> acc_v := !acc_v + (c * params.(j))) aff.Affine.par;
        if !ok then Some !acc_v else None
      in
      (* Project away dims > k to get bounds on dim k in terms of prefix. *)
      let rec proj j ineqs =
        if j >= n then ineqs else proj (j + 1) (eliminate_iter_ineqs p.space j ineqs)
      in
      let ineqs_k = proj (k + 1) ineqs in
      let lo = ref min_int and hi = ref max_int in
      let feasible = ref true in
      List.iter
        (fun aff ->
          let c = aff.Affine.it.(k) in
          let r = { aff with Affine.it = Array.copy aff.Affine.it } in
          r.Affine.it.(k) <- 0;
          match value_of r with
          | None -> ()
          | Some v ->
            if c > 0 then begin
              (* c*x + v >= 0 → x >= ceil(-v/c) *)
              let b = Linalg.Q.ceil (Linalg.Q.make (-v) c) in
              if b > !lo then lo := b
            end
            else if c < 0 then begin
              let b = Linalg.Q.floor (Linalg.Q.make v (-c)) in
              if b < !hi then hi := b
            end
            else if v < 0 then feasible := false)
        ineqs_k;
      if (not !feasible) || !lo > !hi then acc
      else begin
        let acc' = ref acc in
        for v = !lo to !hi do
          acc' := go (k + 1) (v :: prefix) !acc'
        done;
        !acc'
      end
    end
  in
  if n = 0 then []
  else List.rev (go 0 [] [])

(** Does the point satisfy all constraints? *)
let contains p ~iters ~params =
  List.for_all
    (fun c ->
      let v = Affine.eval c.aff ~iters ~params in
      match c.kind with Ge -> v >= 0 | EqK -> v = 0)
    p.cstrs

let to_string p =
  let cstr_to_string c =
    Printf.sprintf "%s %s 0"
      (Affine.to_string p.space c.aff)
      (match c.kind with Ge -> ">=" | EqK -> "=")
  in
  "{ " ^ String.concat " and " (List.map cstr_to_string p.cstrs) ^ " }"
