(** Affine forms over a space of loop iterators and structural parameters.

    An affine form is [sum_k it.(k) * i_k + sum_k par.(k) * p_k + const] with
    integer coefficients.  Spaces are explicit so that dependence analysis
    can build product spaces (source iterators × sink iterators). *)

type space = { iters : string array; params : string array }

let space ~iters ~params = { iters = Array.of_list iters; params = Array.of_list params }

let space_dim s = Array.length s.iters

let space_equal a b = a.iters = b.iters && a.params = b.params

let iter_index s name =
  let rec go i =
    if i >= Array.length s.iters then None
    else if s.iters.(i) = name then Some i
    else go (i + 1)
  in
  go 0

let param_index s name =
  let rec go i =
    if i >= Array.length s.params then None
    else if s.params.(i) = name then Some i
    else go (i + 1)
  in
  go 0

type t = { it : int array; par : int array; const : int }

let zero s =
  {
    it = Array.make (Array.length s.iters) 0;
    par = Array.make (Array.length s.params) 0;
    const = 0;
  }

let const s c = { (zero s) with const = c }

let of_iter s name =
  match iter_index s name with
  | Some i ->
    let a = zero s in
    a.it.(i) <- 1;
    a
  | None -> invalid_arg ("Affine.of_iter: unknown iterator " ^ name)

let of_param s name =
  match param_index s name with
  | Some i ->
    let a = zero s in
    a.par.(i) <- 1;
    a
  | None -> invalid_arg ("Affine.of_param: unknown parameter " ^ name)

let map2 f a b =
  {
    it = Array.map2 f a.it b.it;
    par = Array.map2 f a.par b.par;
    const = f a.const b.const;
  }

let add a b = map2 ( + ) a b

let sub a b = map2 ( - ) a b

let scale k a =
  { it = Array.map (( * ) k) a.it; par = Array.map (( * ) k) a.par; const = k * a.const }

let neg a = scale (-1) a

let is_constant a =
  Array.for_all (( = ) 0) a.it && Array.for_all (( = ) 0) a.par

let is_zero a = is_constant a && a.const = 0

let equal a b = a.it = b.it && a.par = b.par && a.const = b.const

(** Evaluate with concrete iterator and parameter values. *)
let eval a ~iters ~params =
  let acc = ref a.const in
  Array.iteri (fun k c -> acc := !acc + (c * iters.(k))) a.it;
  Array.iteri (fun k c -> acc := !acc + (c * params.(k))) a.par;
  !acc

(** Coefficient of iterator [k]. *)
let iter_coeff a k = a.it.(k)

(** Substitute iterator [k] by the affine form [repl] (same space). *)
let subst_iter a k repl =
  let c = a.it.(k) in
  if c = 0 then a
  else begin
    let a' = { a with it = Array.copy a.it } in
    a'.it.(k) <- 0;
    add a' (scale c repl)
  end

(** Apply an integer linear map [m] to the iterator coordinates: the result
    in row [r] is the affine form for new-iterator r expressed... — more
    precisely, given old-form [a] over iterators [x] and a substitution
    [x = m * y] (rows of [m] give each old iterator in terms of the new
    ones), produce the form over [y]. *)
let apply_iter_subst a (m : int array array) =
  let n = Array.length a.it in
  if Array.length m <> n then invalid_arg "Affine.apply_iter_subst: dimension mismatch";
  let it' = Array.make (if n = 0 then 0 else Array.length m.(0)) 0 in
  Array.iteri
    (fun old_k coeff ->
      if coeff <> 0 then
        Array.iteri (fun new_k c -> it'.(new_k) <- it'.(new_k) + (coeff * c)) m.(old_k))
    a.it;
  { a with it = it' }

let to_string s a =
  let terms = ref [] in
  let push coeff name =
    if coeff = 1 then terms := name :: !terms
    else if coeff = -1 then terms := ("-" ^ name) :: !terms
    else if coeff <> 0 then terms := Printf.sprintf "%d*%s" coeff name :: !terms
  in
  Array.iteri (fun k c -> push c s.iters.(k)) a.it;
  Array.iteri (fun k c -> push c s.params.(k)) a.par;
  if a.const <> 0 || !terms = [] then terms := string_of_int a.const :: !terms;
  String.concat " + " (List.rev !terms)
