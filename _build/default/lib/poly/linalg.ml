(** Exact rational and integer linear algebra for the polyhedral model.

    Stands in for the relevant corners of Polylib/Piplib: rational Gaussian
    elimination, determinants, integer matrix inverses of unimodular
    matrices. *)

open Support

(* ------------------------------------------------------------------ *)
(* Rationals *)

module Q = struct
  type t = { num : int; den : int }  (** den > 0, gcd(num,den)=1 *)

  let make num den =
    if den = 0 then invalid_arg "Q.make: zero denominator";
    let s = if den < 0 then -1 else 1 in
    let num = s * num and den = s * den in
    let g = max 1 (Util.gcd num den) in
    { num = num / g; den = den / g }

  let of_int n = { num = n; den = 1 }

  let zero = of_int 0

  let one = of_int 1

  let add a b = make ((a.num * b.den) + (b.num * a.den)) (a.den * b.den)

  let sub a b = make ((a.num * b.den) - (b.num * a.den)) (a.den * b.den)

  let mul a b = make (a.num * b.num) (a.den * b.den)

  let div a b =
    if b.num = 0 then invalid_arg "Q.div: division by zero";
    make (a.num * b.den) (a.den * b.num)

  let neg a = { a with num = -a.num }

  let equal a b = a.num = b.num && a.den = b.den

  let compare a b = compare (a.num * b.den) (b.num * a.den)

  let sign a = compare a zero

  let is_zero a = a.num = 0

  let is_integer a = a.den = 1

  let to_float a = float_of_int a.num /. float_of_int a.den

  let to_string a = if a.den = 1 then string_of_int a.num else Printf.sprintf "%d/%d" a.num a.den

  let floor a = if a.num >= 0 then a.num / a.den else -(((-a.num) + a.den - 1) / a.den)

  let ceil a = -floor (neg a)
end

(* ------------------------------------------------------------------ *)
(* Matrices over Q *)

module Mat = struct
  type t = Q.t array array  (** rows of equal length *)

  let make rows cols f = Array.init rows (fun i -> Array.init cols (fun j -> f i j))

  let of_int_matrix m = Array.map (Array.map Q.of_int) m

  let rows (m : t) = Array.length m

  let cols (m : t) = if rows m = 0 then 0 else Array.length m.(0)

  let identity n = make n n (fun i j -> if i = j then Q.one else Q.zero)

  let copy (m : t) = Array.map Array.copy m

  let mul (a : t) (b : t) : t =
    let n = rows a and k = cols a and p = cols b in
    if k <> rows b then invalid_arg "Mat.mul: dimension mismatch";
    make n p (fun i j ->
        let acc = ref Q.zero in
        for l = 0 to k - 1 do
          acc := Q.add !acc (Q.mul a.(i).(l) b.(l).(j))
        done;
        !acc)

  let mul_vec (a : t) (v : Q.t array) : Q.t array =
    let n = rows a and k = cols a in
    if k <> Array.length v then invalid_arg "Mat.mul_vec: dimension mismatch";
    Array.init n (fun i ->
        let acc = ref Q.zero in
        for l = 0 to k - 1 do
          acc := Q.add !acc (Q.mul a.(i).(l) v.(l))
        done;
        !acc)

  (* Gauss-Jordan on [m | rhs]; returns None for a singular matrix. *)
  let solve_gauss (m0 : t) (rhs0 : t) : t option =
    let n = rows m0 in
    if cols m0 <> n then invalid_arg "Mat.solve_gauss: matrix must be square";
    let m = copy m0 and rhs = copy rhs0 in
    let ok = ref true in
    for col = 0 to n - 1 do
      if !ok then begin
        (* find pivot *)
        let pivot = ref (-1) in
        for r = col to n - 1 do
          if !pivot = -1 && not (Q.is_zero m.(r).(col)) then pivot := r
        done;
        if !pivot = -1 then ok := false
        else begin
          let p = !pivot in
          if p <> col then begin
            let tmp = m.(p) in
            m.(p) <- m.(col);
            m.(col) <- tmp;
            let tmp = rhs.(p) in
            rhs.(p) <- rhs.(col);
            rhs.(col) <- tmp
          end;
          let inv = Q.div Q.one m.(col).(col) in
          for j = 0 to n - 1 do
            m.(col).(j) <- Q.mul m.(col).(j) inv
          done;
          for j = 0 to cols rhs - 1 do
            rhs.(col).(j) <- Q.mul rhs.(col).(j) inv
          done;
          for r = 0 to n - 1 do
            if r <> col && not (Q.is_zero m.(r).(col)) then begin
              let factor = m.(r).(col) in
              for j = 0 to n - 1 do
                m.(r).(j) <- Q.sub m.(r).(j) (Q.mul factor m.(col).(j))
              done;
              for j = 0 to cols rhs - 1 do
                rhs.(r).(j) <- Q.sub rhs.(r).(j) (Q.mul factor rhs.(col).(j))
              done
            end
          done
        end
      end
    done;
    if !ok then Some rhs else None

  let inverse (m : t) : t option = solve_gauss m (identity (rows m))

  let determinant (m0 : t) : Q.t =
    let n = rows m0 in
    if cols m0 <> n then invalid_arg "Mat.determinant: matrix must be square";
    let m = copy m0 in
    let det = ref Q.one in
    (try
       for col = 0 to n - 1 do
         let pivot = ref (-1) in
         for r = col to n - 1 do
           if !pivot = -1 && not (Q.is_zero m.(r).(col)) then pivot := r
         done;
         if !pivot = -1 then begin
           det := Q.zero;
           raise Exit
         end;
         let p = !pivot in
         if p <> col then begin
           let tmp = m.(p) in
           m.(p) <- m.(col);
           m.(col) <- tmp;
           det := Q.neg !det
         end;
         det := Q.mul !det m.(col).(col);
         for r = col + 1 to n - 1 do
           if not (Q.is_zero m.(r).(col)) then begin
             let factor = Q.div m.(r).(col) m.(col).(col) in
             for j = col to n - 1 do
               m.(r).(j) <- Q.sub m.(r).(j) (Q.mul factor m.(col).(j))
             done
           end
         done
       done
     with Exit -> ());
    !det
end

(* ------------------------------------------------------------------ *)
(* Integer matrices (loop transformation matrices) *)

module Imat = struct
  type t = int array array

  let identity n = Array.init n (fun i -> Array.init n (fun j -> if i = j then 1 else 0))

  let mul (a : t) (b : t) : t =
    let n = Array.length a and k = Array.length b in
    if k = 0 || Array.length a.(0) <> k then invalid_arg "Imat.mul: dimension mismatch";
    let p = Array.length b.(0) in
    Array.init n (fun i ->
        Array.init p (fun j ->
            let acc = ref 0 in
            for l = 0 to k - 1 do
              acc := !acc + (a.(i).(l) * b.(l).(j))
            done;
            !acc))

  let mul_vec (a : t) (v : int array) : int array =
    Array.map
      (fun row ->
        let acc = ref 0 in
        Array.iteri (fun l c -> acc := !acc + (c * v.(l))) row;
        !acc)
      a

  let determinant (m : t) : Q.t = Mat.determinant (Mat.of_int_matrix m)

  let is_unimodular (m : t) =
    let d = determinant m in
    Q.equal d Q.one || Q.equal d (Q.of_int (-1))

  (** Integer inverse of a unimodular matrix. *)
  let inverse (m : t) : t option =
    match Mat.inverse (Mat.of_int_matrix m) with
    | None -> None
    | Some inv ->
      if Array.for_all (Array.for_all Q.is_integer) inv then
        Some (Array.map (Array.map (fun (q : Q.t) -> q.Q.num)) inv)
      else None

  let to_string (m : t) =
    String.concat "\n"
      (Array.to_list
         (Array.map
            (fun row ->
              "[" ^ String.concat " " (Array.to_list (Array.map string_of_int row)) ^ "]")
            m))
end
