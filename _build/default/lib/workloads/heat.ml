(** Application 2 (paper §4.1): heat distribution on a point-heated plate.

    Jacobi iteration on an [N x N] grid with a fixed hot spot, [T] time
    steps.  In the [pure] variant the stencil lives in a pure function
    called from the sweep loop; the [inlined] variant (for PluTo-SICA) has
    the stencil expression written out inside manual scop markers.  The
    inlined body executes roughly half the dynamic operations of the
    pure-call version — the effect the paper measures with perf in §4.3.2
    (47.5 vs 87.8 billion instructions). *)

let default_n = 128

let default_t = 20

let header n t =
  Printf.sprintf "#include <stdio.h>\n#include <stdlib.h>\n#define N %d\n#define T %d\n" n t

let pure_source ?(n = default_n) ?(t = default_t) () =
  header n t
  ^ {|
double *A, *B;

pure double stencil(pure double* g, int i, int j, int n) {
  return 0.25 * (g[(i - 1) * n + j] + g[(i + 1) * n + j]
               + g[i * n + j - 1] + g[i * n + j + 1]);
}

int main() {
  A = (double*) malloc(N * N * sizeof(double));
  B = (double*) malloc(N * N * sizeof(double));
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < N; j++) {
      A[i * N + j] = 0.0;
      B[i * N + j] = 0.0;
    }
  }
  A[(N / 2) * N] = 100.0;
  for (int t = 0; t < T; t++) {
    for (int i = 1; i < N - 1; i++)
      for (int j = 1; j < N - 1; j++)
        B[i * N + j] = stencil((pure double*)A, i, j, N);
    for (int i = 1; i < N - 1; i++)
      for (int j = 1; j < N - 1; j++)
        A[i * N + j] = B[i * N + j];
    A[(N / 2) * N] = 100.0;
  }
  double sum = 0.0;
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++)
      sum += A[i * N + j] * ((i * 3 + j) % 5 + 1);
  printf("checksum %.6f\n", sum);
  return 0;
}
|}

let inlined_source ?(n = default_n) ?(t = default_t) () =
  header n t
  ^ {|
double *A, *B;

int main() {
  A = (double*) malloc(N * N * sizeof(double));
  B = (double*) malloc(N * N * sizeof(double));
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < N; j++) {
      A[i * N + j] = 0.0;
      B[i * N + j] = 0.0;
    }
  }
  A[(N / 2) * N] = 100.0;
  for (int t = 0; t < T; t++) {
#pragma scop
    for (int i = 1; i < N - 1; i++)
      for (int j = 1; j < N - 1; j++)
        B[i * N + j] = 0.25 * (A[(i - 1) * N + j] + A[(i + 1) * N + j]
                             + A[i * N + j - 1] + A[i * N + j + 1]);
#pragma endscop
#pragma scop
    for (int i = 1; i < N - 1; i++)
      for (int j = 1; j < N - 1; j++)
        A[i * N + j] = B[i * N + j];
#pragma endscop
    A[(N / 2) * N] = 100.0;
  }
  double sum = 0.0;
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++)
      sum += A[i * N + j] * ((i * 3 + j) % 5 + 1);
  printf("checksum %.6f\n", sum);
  return 0;
}
|}
