lib/workloads/lama_app.ml: Printf
