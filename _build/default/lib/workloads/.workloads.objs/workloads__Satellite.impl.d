lib/workloads/satellite.ml: Printf
