lib/workloads/heat.ml: Printf
