lib/workloads/kernels.ml: List
