lib/workloads/matmul.ml: Printf
