lib/workloads/reference.ml: Array Float List String
