(** Application 1 (paper §4.1): matrix–matrix multiplication.

    The [pure] variant is the paper's Listing 7 shape: the hot loop calls a
    pure [dot] that itself calls a pure [mult], so a polyhedral tool alone
    cannot touch it.  The [inlined] variant is what the paper had to prepare
    by hand for the PluTo / PluTo-SICA baselines: the function code inlined
    into a plain triple nest inside manual [#pragma scop] markers — note the
    initialization loops are {e not} inside markers there, which is exactly
    the asymmetry behind Fig. 3's surprise (the pure chain parallelizes the
    [malloc] initialization loop because [malloc] is whitelisted). *)

let default_n = 192

let header n =
  Printf.sprintf "#include <stdio.h>\n#include <stdlib.h>\n#include <math.h>\n#define N %d\n" n

(** Listing-7-style source with [pure] annotations. *)
let pure_source ?(n = default_n) () =
  header n
  ^ {|
float **A, **Bt, **C;

pure float mult(float a, float b) {
  return a * b;
}

pure float dot(pure float* a, pure float* b, int size) {
  float res = 0.0f;
  for (int i = 0; i < size; ++i)
    res += mult(a[i], b[i]);
  return res;
}

pure float fillA(int i, int j) {
  return 0.5f + sqrtf((i * 13 + j * 7) % 101 * 0.01f);
}

pure float fillB(int i, int j) {
  return 0.25f + sqrtf((i * 11 + j * 17) % 97 * 0.01f);
}

int main() {
  A = (float**) malloc(N * sizeof(float*));
  Bt = (float**) malloc(N * sizeof(float*));
  C = (float**) malloc(N * sizeof(float*));
  for (int i = 0; i < N; i++) {
    A[i] = (float*) malloc(N * sizeof(float));
    Bt[i] = (float*) malloc(N * sizeof(float));
    C[i] = (float*) malloc(N * sizeof(float));
  }
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < N; j++) {
      A[i][j] = fillA(i, j);
      Bt[i][j] = fillB(i, j);
      C[i][j] = 0.0f;
    }
  }
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++)
      C[i][j] = dot((pure float*)A[i], (pure float*)Bt[j], N);
  float sum = 0.0f;
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++)
      sum += C[i][j] * ((i + j) % 7 + 1);
  printf("checksum %.3f\n", sum);
  return 0;
}
|}

(** Manually inlined source with hand-placed scop markers, as required to
    run PluTo / PluTo-SICA without the pure stage. *)
let inlined_source ?(n = default_n) () =
  header n
  ^ {|
float **A, **Bt, **C;

int main() {
  A = (float**) malloc(N * sizeof(float*));
  Bt = (float**) malloc(N * sizeof(float*));
  C = (float**) malloc(N * sizeof(float*));
  for (int i = 0; i < N; i++) {
    A[i] = (float*) malloc(N * sizeof(float));
    Bt[i] = (float*) malloc(N * sizeof(float));
    C[i] = (float*) malloc(N * sizeof(float));
  }
  for (int i = 0; i < N; i++) {
    for (int j = 0; j < N; j++) {
      A[i][j] = 0.5f + sqrtf((i * 13 + j * 7) % 101 * 0.01f);
      Bt[i][j] = 0.25f + sqrtf((i * 11 + j * 17) % 97 * 0.01f);
      C[i][j] = 0.0f;
    }
  }
#pragma scop
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++)
      for (int k = 0; k < N; k++)
        C[i][j] = C[i][j] + A[i][k] * Bt[j][k];
#pragma endscop
  float sum = 0.0f;
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++)
      sum += C[i][j] * ((i + j) % 7 + 1);
  printf("checksum %.3f\n", sum);
  return 0;
}
|}

(** The "initialization manually excluded" variant behind the black bars of
    Fig. 3: allocation and filling are merged into one imperfect nest, which
    is not a static control part, so the chain (correctly) refuses to
    parallelize it — reproducing the manual exclusion. *)
let pure_noinit_source ?(n = default_n) () =
  header n
  ^ {|
float **A, **Bt, **C;

pure float mult(float a, float b) {
  return a * b;
}

pure float dot(pure float* a, pure float* b, int size) {
  float res = 0.0f;
  for (int i = 0; i < size; ++i)
    res += mult(a[i], b[i]);
  return res;
}

pure float fillA(int i, int j) {
  return 0.5f + sqrtf((i * 13 + j * 7) % 101 * 0.01f);
}

pure float fillB(int i, int j) {
  return 0.25f + sqrtf((i * 11 + j * 17) % 97 * 0.01f);
}

int main() {
  A = (float**) malloc(N * sizeof(float*));
  Bt = (float**) malloc(N * sizeof(float*));
  C = (float**) malloc(N * sizeof(float*));
  for (int i = 0; i < N; i++) {
    A[i] = (float*) malloc(N * sizeof(float));
    Bt[i] = (float*) malloc(N * sizeof(float));
    C[i] = (float*) malloc(N * sizeof(float));
    for (int j = 0; j < N; j++) {
      A[i][j] = fillA(i, j);
      Bt[i][j] = fillB(i, j);
      C[i][j] = 0.0f;
    }
  }
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++)
      C[i][j] = dot((pure float*)A[i], (pure float*)Bt[j], N);
  float sum = 0.0f;
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++)
      sum += C[i][j] * ((i + j) % 7 + 1);
  printf("checksum %.3f\n", sum);
  return 0;
}
|}

(** Flop count of the kernel (for the analytic MKL baseline). *)
let kernel_flops n = 2.0 *. (float_of_int n ** 3.0)
