(** Independent OCaml reference implementations of the four workloads.

    Each mirrors the arithmetic of its C source exactly (same formulas, same
    accumulation order) and returns the same checksum, so tests can validate
    the whole compiler chain — parser, purity stage, polyhedral transform,
    interpreter — against code that never went near it. *)

(* ------------------------------------------------------------------ *)
(* Matmul *)

let matmul_checksum n =
  let fill_a i j = 0.5 +. sqrt (float_of_int (((i * 13) + (j * 7)) mod 101) *. 0.01) in
  let fill_b i j = 0.25 +. sqrt (float_of_int (((i * 11) + (j * 17)) mod 97) *. 0.01) in
  let a = Array.init n (fun i -> Array.init n (fun j -> fill_a i j)) in
  let bt = Array.init n (fun i -> Array.init n (fun j -> fill_b i j)) in
  let sum = ref 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0.0 in
      for k = 0 to n - 1 do
        acc := !acc +. (a.(i).(k) *. bt.(j).(k))
      done;
      sum := !sum +. (!acc *. float_of_int (((i + j) mod 7) + 1))
    done
  done;
  !sum

(* ------------------------------------------------------------------ *)
(* Heat *)

let heat_checksum n t =
  let a = Array.make (n * n) 0.0 and b = Array.make (n * n) 0.0 in
  a.((n / 2) * n) <- 100.0;
  for _step = 1 to t do
    for i = 1 to n - 2 do
      for j = 1 to n - 2 do
        b.((i * n) + j) <-
          0.25
          *. (a.(((i - 1) * n) + j) +. a.(((i + 1) * n) + j) +. a.((i * n) + j - 1)
             +. a.((i * n) + j + 1))
      done
    done;
    for i = 1 to n - 2 do
      for j = 1 to n - 2 do
        a.((i * n) + j) <- b.((i * n) + j)
      done
    done;
    a.((n / 2) * n) <- 100.0
  done;
  let sum = ref 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      sum := !sum +. (a.((i * n) + j) *. float_of_int ((((i * 3) + j) mod 5) + 1))
    done
  done;
  !sum

(* ------------------------------------------------------------------ *)
(* Satellite *)

(* direct port of the C retrieval *)
let satellite_checksum w h bands =
  let radiance x y b =
    (0.08 +. (0.8 *. float_of_int y /. float_of_int h))
    +. (0.015 *. float_of_int (((x * 7) + (b * 3)) mod 11))
  in
  let cube =
    Array.init (w * h * bands) (fun idx ->
        let b = idx mod bands in
        let pix = idx / bands in
        let x = pix mod w and y = pix / w in
        radiance x y b)
  in
  let retrieve x y =
    let idx = (y * w) + x in
    let sum = ref 0.0 in
    for b = 0 to bands - 1 do
      let r = cube.((idx * bands) + b) in
      sum := !sum +. (r /. (1.0 +. (0.5 *. r)))
    done;
    let target = !sum /. float_of_int bands in
    let tau = ref 0.05 and err = ref 1.0 and iter = ref 0 in
    while !err > 0.0005 && !iter < 400 do
      let model = (!tau *. (1.0 -. (0.35 *. !tau))) +. 0.05 in
      err := Float.abs (model -. target);
      if model < target then tau := !tau +. (0.22 *. (target -. model))
      else tau := !tau -. (0.22 *. (model -. target));
      incr iter
    done;
    !tau
  in
  let sum = ref 0.0 in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      sum := !sum +. (retrieve x y *. float_of_int (((x + y) mod 3) + 1))
    done
  done;
  !sum

(* Per-row retrieval iteration counts (to validate the imbalance premise). *)
let satellite_row_iters w h bands =
  let radiance x y b =
    (0.08 +. (0.8 *. float_of_int y /. float_of_int h))
    +. (0.015 *. float_of_int (((x * 7) + (b * 3)) mod 11))
  in
  Array.init h (fun y ->
      let total = ref 0 in
      for x = 0 to w - 1 do
        let sum = ref 0.0 in
        for b = 0 to bands - 1 do
          let r = radiance x y b in
          sum := !sum +. (r /. (1.0 +. (0.5 *. r)))
        done;
        let target = !sum /. float_of_int bands in
        let tau = ref 0.05 and err = ref 1.0 and iter = ref 0 in
        while !err > 0.0005 && !iter < 400 do
          let model = (!tau *. (1.0 -. (0.35 *. !tau))) +. 0.05 in
          err := Float.abs (model -. target);
          if model < target then tau := !tau +. (0.22 *. (target -. model))
          else tau := !tau -. (0.22 *. (model -. target));
          incr iter
        done;
        total := !total + !iter
      done;
      !total)

(* ------------------------------------------------------------------ *)
(* LAMA *)

let lama_hash2 a b =
  let h = (a * 2654435) + (b * 40503) + 12289 in
  let h = h lxor (h / 8192) in
  abs h

let lama_row_nnz maxnnz r rows =
  let h = lama_hash2 r 17 in
  let base = 8 + (h mod 9) in
  if r > rows - (rows / 8) then maxnnz - (h mod 3) else base

let lama_col r k rows =
  let h = lama_hash2 ((r * 31) + k) k in
  let c = r - 16 + (h mod 33) in
  let c = if c < 0 then -c else c in
  if c >= rows then (2 * rows) - 2 - c else c

let lama_val r k = (0.001 *. float_of_int (lama_hash2 r (k + 101) mod 2000)) -. 1.0

let lama_checksum rows maxnnz reps =
  let nnz = Array.init rows (fun r -> lama_row_nnz maxnnz r rows) in
  let x = Array.init rows (fun r -> 1.0 +. (float_of_int (r mod 17) *. 0.125)) in
  let y = Array.make rows 0.0 in
  for _rep = 1 to reps do
    for r = 0 to rows - 1 do
      let acc = ref 0.0 in
      for k = 0 to nnz.(r) - 1 do
        acc := !acc +. (lama_val r k *. x.(lama_col r k rows))
      done;
      y.(r) <- !acc
    done
  done;
  let sum = ref 0.0 in
  for r = 0 to rows - 1 do
    sum := !sum +. (y.(r) *. float_of_int ((r mod 13) + 1))
  done;
  !sum

(** Parse the "checksum X" line an interpreted workload prints. *)
let checksum_of_output output =
  let lines = String.split_on_char '\n' output in
  List.find_map
    (fun line ->
      match String.split_on_char ' ' (String.trim line) with
      | [ "checksum"; v ] -> float_of_string_opt v
      | _ -> None)
    lines
