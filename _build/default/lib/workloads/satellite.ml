(** Application 3 (paper §4.1, §4.3.3): the satellite image filter —
    aerosol optical depth (AOD) retrieval from hyperspectral observations.

    The real MODIS/Aqua granules are not redistributable, so a synthetic
    hyperspectral cube reproduces the property the evaluation depends on:
    a per-pixel retrieval whose fixed-point iteration count is data
    dependent and grows toward the later image rows, which is the load
    imbalance the paper fixed by hand with [schedule(dynamic,1)].

    The per-pixel function has data-dependent control flow ("dynamic
    conditional jumps"), making the loop hopeless for any static polyhedral
    analysis — only the pure chain parallelizes it. *)

let default_w = 64

let default_h = 64

let default_bands = 16

let header w h bands =
  Printf.sprintf
    "#include <stdio.h>\n#include <stdlib.h>\n#include <math.h>\n#define W %d\n#define H %d\n#define BANDS %d\n"
    w h bands

let pure_source ?(w = default_w) ?(h = default_h) ?(bands = default_bands) () =
  header w h bands
  ^ {|
double *cube, *aod;

pure double radiance(int x, int y, int b) {
  double base = 0.08 + 0.8 * y / H;
  double ripple = 0.015 * ((x * 7 + b * 3) % 11);
  return base + ripple;
}

pure double surface_term(pure double* c, int idx, int b, int nb) {
  double r = c[idx * nb + b];
  return r / (1.0 + 0.5 * r);
}

pure double retrieve_aod(pure double* c, int x, int y, int w, int nb) {
  int idx = y * w + x;
  double sum = 0.0;
  for (int b = 0; b < nb; b++)
    sum += surface_term(c, idx, b, nb);
  double target = sum / nb;
  double tau = 0.05;
  double err = 1.0;
  int iter = 0;
  while (err > 0.0005 && iter < 400) {
    double model = tau * (1.0 - 0.35 * tau) + 0.05;
    err = fabs(model - target);
    if (model < target)
      tau = tau + 0.22 * (target - model);
    else
      tau = tau - 0.22 * (model - target);
    iter = iter + 1;
  }
  return tau;
}

int main() {
  cube = (double*) malloc(W * H * BANDS * sizeof(double));
  aod = (double*) malloc(W * H * sizeof(double));
  for (int y = 0; y < H; y++)
    for (int x = 0; x < W; x++)
      for (int b = 0; b < BANDS; b++)
        cube[(y * W + x) * BANDS + b] = radiance(x, y, b);
  for (int y = 0; y < H; y++)
    for (int x = 0; x < W; x++)
      aod[y * W + x] = retrieve_aod((pure double*)cube, x, y, W, BANDS);
  double sum = 0.0;
  for (int y = 0; y < H; y++)
    for (int x = 0; x < W; x++)
      sum += aod[y * W + x] * ((x + y) % 3 + 1);
  printf("checksum %.6f\n", sum);
  return 0;
}
|}

(** Hand-parallelized variant: the paper's manual adaptation — OpenMP
    directives written by hand with [schedule(dynamic,1)] (§4.3.3). *)
let manual_source ?(w = default_w) ?(h = default_h) ?(bands = default_bands) () =
  header w h bands
  ^ {|
double *cube, *aod;

pure double radiance(int x, int y, int b) {
  double base = 0.08 + 0.8 * y / H;
  double ripple = 0.015 * ((x * 7 + b * 3) % 11);
  return base + ripple;
}

pure double surface_term(pure double* c, int idx, int b, int nb) {
  double r = c[idx * nb + b];
  return r / (1.0 + 0.5 * r);
}

pure double retrieve_aod(pure double* c, int x, int y, int w, int nb) {
  int idx = y * w + x;
  double sum = 0.0;
  for (int b = 0; b < nb; b++)
    sum += surface_term(c, idx, b, nb);
  double target = sum / nb;
  double tau = 0.05;
  double err = 1.0;
  int iter = 0;
  while (err > 0.0005 && iter < 400) {
    double model = tau * (1.0 - 0.35 * tau) + 0.05;
    err = fabs(model - target);
    if (model < target)
      tau = tau + 0.22 * (target - model);
    else
      tau = tau - 0.22 * (model - target);
    iter = iter + 1;
  }
  return tau;
}

int main() {
  cube = (double*) malloc(W * H * BANDS * sizeof(double));
  aod = (double*) malloc(W * H * sizeof(double));
#pragma omp parallel for private(x,b)
  for (int y = 0; y < H; y++)
    for (int x = 0; x < W; x++)
      for (int b = 0; b < BANDS; b++)
        cube[(y * W + x) * BANDS + b] = radiance(x, y, b);
#pragma omp parallel for private(x) schedule(dynamic,1)
  for (int y = 0; y < H; y++)
    for (int x = 0; x < W; x++)
      aod[y * W + x] = retrieve_aod((pure double*)cube, x, y, W, BANDS);
  double sum = 0.0;
  for (int y = 0; y < H; y++)
    for (int x = 0; x < W; x++)
      sum += aod[y * W + x] * ((x + y) % 3 + 1);
  printf("checksum %.6f\n", sum);
  return 0;
}
|}
