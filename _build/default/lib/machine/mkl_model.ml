(** Analytic model of the hand-tuned MKL dgemm baseline (paper §4.2/§4.3.1).

    MKL is closed source and its performance comes from register blocking,
    prefetching and hand-scheduled AVX kernels that an instruction-counting
    interpreter cannot observe, so the comparison point is modeled
    analytically: a kernel sustaining a calibrated fraction of machine peak,
    with a parallel efficiency that decays slowly with the core count.  The
    paper reports MKL 7.28x faster than pure on 1 core and 5.82x on 64; the
    EXPERIMENTS.md shape check asserts our ratio band around those. *)

type t = {
  flops_per_cycle_1core : float;  (** sustained FMA throughput per core *)
  parallel_efficiency_64 : float;  (** efficiency at the full 64 cores *)
}

(** Opteron 6272 (Bulldozer): shared FPU per module; a tuned SGEMM sustains
    roughly 6 single-precision flops/cycle/core. *)
let default = { flops_per_cycle_1core = 6.0; parallel_efficiency_64 = 0.80 }

(* efficiency interpolates from 1.0 at n=1 down to parallel_efficiency_64 *)
let efficiency t ~max_cores n =
  if n <= 1 then 1.0
  else begin
    let frac = log (float_of_int n) /. log (float_of_int (max max_cores 2)) in
    1.0 -. ((1.0 -. t.parallel_efficiency_64) *. frac)
  end

(** Runtime in seconds of an [n1 x n2 x n3] matrix multiplication. *)
let gemm_seconds ?(model = default) ?(machine = Config.opteron64) ~n ~size () =
  let flops = 2.0 *. (float_of_int size ** 3.0) in
  let per_core = model.flops_per_cycle_1core *. machine.Config.m_freq_ghz *. 1e9 in
  let eff = efficiency model ~max_cores:machine.Config.m_max_cores n in
  flops /. (per_core *. float_of_int n *. eff)
