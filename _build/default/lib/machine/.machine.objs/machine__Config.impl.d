lib/machine/config.ml: Float
