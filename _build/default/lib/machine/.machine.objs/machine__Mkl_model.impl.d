lib/machine/mkl_model.ml: Config
