lib/machine/model.ml: Array Config Cost Float Interp List Support Trace
