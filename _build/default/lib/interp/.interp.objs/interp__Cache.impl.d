lib/interp/cache.ml: Array Cost
