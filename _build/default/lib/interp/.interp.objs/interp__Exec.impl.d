lib/interp/exec.ml: Array Ast Buffer Cache Cfront Compile Cost Hashtbl List Mem Option Sema Trace
