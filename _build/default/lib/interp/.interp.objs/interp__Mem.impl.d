lib/interp/mem.ml: Array Cache Fmt
