lib/interp/compile.ml: Array Ast Ast_printer Buffer Cache Cfront Char Cost Float Fmt Hashtbl List Loc Mem Printf Scanf Sema Seq String Support Trace
