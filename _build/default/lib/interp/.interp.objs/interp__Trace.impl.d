lib/interp/trace.ml: Array Buffer Cost List String
