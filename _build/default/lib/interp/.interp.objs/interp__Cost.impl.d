lib/interp/cost.ml: Fmt
