(** Block-structured scopes for function bodies.

    Lookups distinguish the innermost block from enclosing blocks of the same
    function — the purity checker treats both as "function scope" but the
    [free]-tracking needs block granularity. *)

open Cfront

type t = {
  mutable blocks : (string, Symbol.entry) Hashtbl.t list;  (** innermost first *)
  globals : (string, Symbol.entry) Hashtbl.t;
  params : (string, Symbol.entry) Hashtbl.t;
}

let create ~globals ~params = { blocks = [ Hashtbl.create 16 ]; globals; params }

let push t = t.blocks <- Hashtbl.create 16 :: t.blocks

let pop t =
  match t.blocks with
  | [] | [ _ ] -> invalid_arg "Scope.pop: cannot pop function-level block"
  | _ :: tl -> t.blocks <- tl

let add_local t name (ty : Ast.ctype) loc =
  match t.blocks with
  | [] -> invalid_arg "Scope.add_local: no block"
  | b :: _ -> Hashtbl.replace b name { Symbol.ty; origin = Symbol.Local; loc }

(** Look a name up through blocks, then params, then globals.  Locals found
    in an outer block come back with origin [Enclosing]. *)
let lookup t name : Symbol.entry option =
  let rec go innermost = function
    | [] -> (
      match Hashtbl.find_opt t.params name with
      | Some e -> Some e
      | None -> Hashtbl.find_opt t.globals name)
    | b :: rest -> (
      match Hashtbl.find_opt b name with
      | Some e ->
        if innermost then Some e else Some { e with origin = Symbol.Enclosing }
      | None -> go false rest)
  in
  go true t.blocks

(** Is [name] a local (any block) of the current function? *)
let is_function_local t name =
  List.exists (fun b -> Hashtbl.mem b name) t.blocks

let in_current_block t name =
  match t.blocks with [] -> false | b :: _ -> Hashtbl.mem b name
