(** Symbol information shared by the type checker and the purity pass. *)

open Cfront

(** Where a name was introduced.  The purity checker's core question is
    whether a store can reach memory from outside the function scope, so the
    origin of every identifier matters. *)
type origin =
  | Local  (** declared in the current function body *)
  | Param  (** function parameter *)
  | Global  (** file-scope variable *)
  | Enclosing  (** declared in an enclosing block of the same function *)

type entry = { ty : Ast.ctype; origin : origin; loc : Support.Loc.t }

type func_sig = {
  fs_name : string;
  fs_ret : Ast.ctype;
  fs_pure : bool;
  fs_params : Ast.param list;
  fs_defined : bool;
  fs_loc : Support.Loc.t;
}

let sig_of_func (f : Ast.func) =
  {
    fs_name = f.f_name;
    fs_ret = f.f_ret;
    fs_pure = f.f_pure;
    fs_params = f.f_params;
    fs_defined = f.f_body <> None;
    fs_loc = f.f_loc;
  }
