lib/sema/scope.ml: Ast Cfront Hashtbl List Symbol
