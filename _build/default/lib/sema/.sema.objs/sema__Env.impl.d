lib/sema/env.ml: Ast Cfront Diag Hashtbl List Support Symbol
