lib/sema/builtins.ml: Ast Cfront List Option
