lib/sema/typecheck.ml: Ast Ast_printer Builtins Cfront Diag Env Fmt Hashtbl List Option Scope Support Symbol
