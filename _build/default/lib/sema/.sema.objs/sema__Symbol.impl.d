lib/sema/symbol.ml: Ast Cfront Support
