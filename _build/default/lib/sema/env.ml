(** Translation-unit environment: structs, typedefs, globals, functions. *)

open Cfront
open Support

type t = {
  structs : (string, Ast.struct_def) Hashtbl.t;
  typedefs : (string, Ast.ctype) Hashtbl.t;
  globals : (string, Symbol.entry) Hashtbl.t;
  funcs : (string, Symbol.func_sig) Hashtbl.t;
}

let create () =
  {
    structs = Hashtbl.create 16;
    typedefs = Hashtbl.create 16;
    globals = Hashtbl.create 16;
    funcs = Hashtbl.create 16;
  }

(** Resolve typedef names down to a structural type. *)
let rec resolve t (ty : Ast.ctype) : Ast.ctype =
  match ty with
  | Ast.Named n -> (
    match Hashtbl.find_opt t.typedefs n with
    | Some ty' -> resolve t ty'
    | None -> ty)
  | Ast.Ptr p -> Ast.Ptr { p with elt = resolve t p.elt }
  | Ast.Array (e, n) -> Ast.Array (resolve t e, n)
  | Ast.Void | Ast.Int | Ast.Float | Ast.Double | Ast.Char | Ast.Struct _ -> ty

let find_struct t name = Hashtbl.find_opt t.structs name

let find_func t name = Hashtbl.find_opt t.funcs name

let find_global t name = Hashtbl.find_opt t.globals name

let field_type t sname fname =
  match find_struct t sname with
  | None -> None
  | Some sd -> List.assoc_opt fname (List.map (fun (ty, n) -> (n, ty)) sd.s_fields)

(** Collect the environment from a parsed program.  A redefinition with a
    different signature is reported through [reporter]. *)
let gather ?(reporter = Diag.create_reporter ()) (program : Ast.program) : t =
  let t = create () in
  List.iter
    (fun g ->
      match g with
      | Ast.GStruct sd -> Hashtbl.replace t.structs sd.s_name sd
      | Ast.GTypedef (name, ty, _) -> Hashtbl.replace t.typedefs name ty
      | Ast.GVar d ->
        Hashtbl.replace t.globals d.d_name
          { Symbol.ty = resolve t d.d_type; origin = Symbol.Global; loc = d.d_loc }
      | Ast.GFunc f -> (
        let s = Symbol.sig_of_func f in
        match Hashtbl.find_opt t.funcs f.f_name with
        | Some prev ->
          if
            (not (Ast.type_compatible prev.fs_ret s.fs_ret))
            || List.length prev.fs_params <> List.length s.fs_params
          then
            Diag.error reporter ~loc:f.f_loc ~code:"sema.redef"
              "conflicting declaration of function %s" f.f_name
          else if prev.fs_pure <> s.fs_pure then
            Diag.error reporter ~loc:f.f_loc ~code:"sema.pure-mismatch"
              "function %s is declared both pure and impure" f.f_name
          else
            (* keep the definition if this one has a body *)
            if s.fs_defined then Hashtbl.replace t.funcs f.f_name s
        | None -> Hashtbl.replace t.funcs f.f_name s)
      | Ast.GPragma _ | Ast.GInclude _ -> ())
    program;
  t
