lib/runtime/pool.ml: Condition Domain List Mutex Queue
