lib/runtime/par_loop.ml: Atomic List Mutex Pool
