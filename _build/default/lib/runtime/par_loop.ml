(** OpenMP-style worksharing loops over a {!Pool}.

    Implements the three schedules the evaluation codes use —
    [schedule(static)] (contiguous blocks, the default), [schedule(static,c)]
    (round-robin chunks) and [schedule(dynamic,c)] (first-come first-served
    chunks off a shared counter) — with OpenMP's fork/join semantics. *)

type schedule = Static | Static_chunk of int | Dynamic of int

(** [parallel_for pool ~schedule ~lo ~hi body] runs [body i] for every
    [lo <= i < hi], partitioned over the pool per [schedule].  Returns when
    all iterations are done. *)
let parallel_for pool ?(schedule = Static) ~lo ~hi (body : int -> unit) =
  let n = hi - lo in
  if n <= 0 then ()
  else begin
    let workers = Pool.size pool in
    if workers = 1 then
      for i = lo to hi - 1 do
        body i
      done
    else begin
      match schedule with
      | Static ->
        let block = (n + workers - 1) / workers in
        let jobs =
          List.init workers (fun w ->
              let start = lo + (w * block) in
              let stop = min hi (start + block) in
              fun () ->
                for i = start to stop - 1 do
                  body i
                done)
        in
        Pool.run pool jobs
      | Static_chunk chunk ->
        let chunk = max 1 chunk in
        let jobs =
          List.init workers (fun w ->
              fun () ->
                (* worker w takes chunks w, w+workers, w+2*workers, ... *)
                let rec go c =
                  let start = lo + (c * chunk) in
                  if start < hi then begin
                    let stop = min hi (start + chunk) in
                    for i = start to stop - 1 do
                      body i
                    done;
                    go (c + workers)
                  end
                in
                go w)
        in
        Pool.run pool jobs
      | Dynamic chunk ->
        let chunk = max 1 chunk in
        let next = Atomic.make lo in
        let jobs =
          List.init workers (fun _ ->
              fun () ->
                let rec go () =
                  let start = Atomic.fetch_and_add next chunk in
                  if start < hi then begin
                    let stop = min hi (start + chunk) in
                    for i = start to stop - 1 do
                      body i
                    done;
                    go ()
                  end
                in
                go ())
        in
        Pool.run pool jobs
    end
  end

(** Parallel reduction: combines a per-iteration value with [combine]
    (associative, commutative); used by tests and examples. *)
let parallel_reduce pool ?(schedule = Static) ~lo ~hi ~init ~combine
    (body : int -> 'a) : 'a =
  let workers = Pool.size pool in
  if workers = 1 || hi - lo <= 1 then begin
    let acc = ref init in
    for i = lo to hi - 1 do
      acc := combine !acc (body i)
    done;
    !acc
  end
  else begin
    let mutex = Mutex.create () in
    let acc = ref init in
    parallel_for pool ~schedule ~lo ~hi (fun i ->
        let v = body i in
        Mutex.lock mutex;
        acc := combine !acc v;
        Mutex.unlock mutex);
    !acc
  end
