(** Marking parallelizable loop nests with [#pragma scop] (paper §3.2, §3.4).

    Each outermost for-loop of a non-pure function is checked: if every call
    inside the nest targets a registry-pure function, the loop is surrounded
    by [#pragma scop] / [#pragma endscop] so the polyhedral stage picks it
    up.  Additionally, the safety rule of §3.4 (Listing 5) is enforced: an
    array passed as an argument to a pure call must not also appear on the
    left-hand side of an assignment in the same nest — by *name*, which is
    exactly why the alias of Listing 6 slips through. *)

open Cfront
open Support

let scop_begin = "scop"

let scop_end = "endscop"

(* Root identifier of an lvalue or array argument (name-based, cf. §3.4). *)
let rec root_name (e : Ast.expr) =
  match e.edesc with
  | Ast.Ident x -> Some x
  | Ast.Index (b, _) | Ast.Deref b -> root_name b
  | Ast.Member (b, _) | Ast.Arrow (b, _) -> root_name b
  | Ast.Cast (_, b) -> root_name b
  | Ast.Binop ((Ast.Add | Ast.Sub), a, _) -> root_name a
  | _ -> None

(* Is the store an *element* store (through [] or * or ->), as opposed to a
   plain scalar assignment like the loop iterator's [i++]?  Only element
   stores can conflict with an array passed to a pure call. *)
let rec is_element_store (e : Ast.expr) =
  match e.edesc with
  | Ast.Index _ | Ast.Deref _ | Ast.Arrow _ -> true
  | Ast.Member (b, _) | Ast.Cast (_, b) -> is_element_store b
  | _ -> false

(* Roots of element stores in a statement. *)
let assigned_names stmt =
  Ast.fold_stmt ~stmt:(fun acc _ -> acc)
    ~expr:(fun acc e ->
      match e.Ast.edesc with
      | Ast.Assign (_, lhs, _) when is_element_store lhs -> (
        match root_name lhs with Some n -> n :: acc | None -> acc)
      | Ast.IncDec { arg; _ } when is_element_store arg -> (
        match root_name arg with Some n -> n :: acc | None -> acc)
      | _ -> acc)
    [] stmt

(* All (callee, argument root names) pairs in a statement. *)
let call_args stmt =
  Ast.fold_stmt ~stmt:(fun acc _ -> acc)
    ~expr:(fun acc e ->
      match e.Ast.edesc with
      | Ast.Call (f, args) -> (f, List.filter_map root_name args) :: acc
      | _ -> acc)
    [] stmt

let loop_only_calls_pure registry stmt =
  List.for_all (Registry.mem registry) (Ast.calls_in_stmt stmt)

(* §3.4: arguments of pure calls must not be assignment targets in the nest.
   Returns the offending (array, callee) pairs. *)
let param_lhs_violations stmt =
  let written = assigned_names stmt in
  List.concat_map
    (fun (callee, arg_roots) ->
      List.filter_map
        (fun root -> if List.mem root written then Some (root, callee) else None)
        arg_roots)
    (call_args stmt)

(* Recursively rewrite a statement list, wrapping eligible outermost
   for-loops in scop pragmas.  [marked] counts emitted scop regions so a
   failed outer loop whose inner nests also yield nothing reports the
   Listing 5 error. *)
let rec mark_stmts registry reporter marked stmts =
  List.concat_map
    (fun s ->
      match s.Ast.sdesc with
      | Ast.SFor (_, _, _, _) ->
        if loop_only_calls_pure registry s then begin
          match param_lhs_violations s with
          | [] ->
            incr marked;
            [
              Ast.mk_stmt ~loc:s.Ast.sloc (Ast.SPragma scop_begin);
              s;
              Ast.mk_stmt ~loc:s.Ast.sloc (Ast.SPragma scop_end);
            ]
          | violations ->
            (* the outer nest mixes a pure call with a write to one of its
               array arguments; inner nests may still be clean (e.g. the
               stencil and copy nests under a time loop) *)
            let before = !marked in
            let s' = descend registry reporter marked s in
            if !marked > before then begin
              List.iter
                (fun (root, callee) ->
                  Diag.warning reporter ~loc:s.Ast.sloc ~code:"scop.arg-assigned-outer"
                    "array %s is passed to pure function %s and assigned in the \
                     outer nest; only inner loops were marked"
                    root callee)
                violations;
              [ s' ]
            end
            else begin
              List.iter
                (fun (root, callee) ->
                  Diag.error reporter ~loc:s.Ast.sloc ~code:"scop.arg-assigned"
                    "array %s is passed to pure function %s and assigned in the \
                     same loop nest; the iteration order would matter (cf. paper \
                     Listing 5)"
                    root callee)
                violations;
              [ s ]
            end
        end
        else
          (* an impure call somewhere in the nest: try inner loops *)
          [ descend registry reporter marked s ]
      | Ast.SBlock ss ->
        [ { s with Ast.sdesc = Ast.SBlock (mark_stmts registry reporter marked ss) } ]
      | Ast.SIf (c, t, e) ->
        [
          {
            s with
            Ast.sdesc =
              Ast.SIf
                ( c,
                  block_of (mark_stmts registry reporter marked [ t ]),
                  Option.map
                    (fun e -> block_of (mark_stmts registry reporter marked [ e ]))
                    e );
          };
        ]
      | _ -> [ s ])
    stmts

and descend registry reporter marked s =
  match s.Ast.sdesc with
  | Ast.SFor (i, c, st, body) ->
    {
      s with
      Ast.sdesc = Ast.SFor (i, c, st, block_of (mark_stmts registry reporter marked [ body ]));
    }
  | _ -> s

and block_of = function
  | [ s ] -> s
  | ss -> Ast.mk_stmt (Ast.SBlock ss)

(** Wrap eligible loops of all non-pure function bodies in scop pragmas. *)
let mark ?(registry = Registry.create ()) ~reporter (program : Ast.program) :
    Ast.program =
  let marked = ref 0 in
  List.map
    (fun g ->
      match g with
      | Ast.GFunc f when (not f.f_pure) && f.f_body <> None ->
        let body = Option.get f.f_body in
        Ast.GFunc { f with f_body = Some (mark_stmts registry reporter marked body) }
      | _ -> g)
    program

(** Number of scop regions in a program (for tests and reports). *)
let count_scops (program : Ast.program) =
  let count_in_stmts ss =
    List.fold_left
      (fun acc s ->
        Ast.fold_stmt
          ~stmt:(fun acc s ->
            match s.Ast.sdesc with
            | Ast.SPragma p when p = scop_begin -> acc + 1
            | _ -> acc)
          ~expr:(fun acc _ -> acc)
          acc s)
      0 ss
  in
  List.fold_left
    (fun acc g ->
      match g with
      | Ast.GFunc { f_body = Some body; _ } -> acc + count_in_stmts body
      | _ -> acc)
    0 program
