(** Access metadata for pure functions — the paper's future-work coupling
    (§3.3): "our compiler pass could store metadata from pure functions
    containing information about array accesses and iteration patterns and
    use this information to conduct SICA cache-aware transformations."

    For every pure function we summarize, per pointer parameter, how the
    function walks the data (unit stride in its own loops, strided, or
    irregular/indirect) and how much arithmetic one call performs.  The
    polyhedral driver feeds these summaries to the SICA tile-size model, so
    a loop whose body is an opaque [tmpConst_...] still tiles for the
    arrays the hidden call actually touches. *)

open Cfront

type pattern =
  | Unit_stride  (** innermost subscript advances by 1 per loop iteration *)
  | Strided  (** affine but non-unit stride *)
  | Irregular  (** indirect or non-affine subscripts *)

type param_summary = {
  ps_name : string;
  ps_elem_bytes : int;
  ps_pattern : pattern;
  ps_access_sites : int;
}

type summary = {
  fs_name : string;
  fs_params : param_summary list;  (** pointer parameters only *)
  fs_has_loop : bool;
  fs_flops_estimate : int;  (** static count of float operations per call *)
}

let pattern_to_string = function
  | Unit_stride -> "unit-stride"
  | Strided -> "strided"
  | Irregular -> "irregular"

(* iterators declared by the function's own for loops *)
let own_iterators (f : Ast.func) =
  match f.Ast.f_body with
  | None -> []
  | Some body ->
    List.concat_map
      (fun s ->
        Ast.fold_stmt
          ~stmt:(fun acc s ->
            match s.Ast.sdesc with
            | Ast.SFor (Some (Ast.FInitDecl d), _, _, _) -> d.Ast.d_name :: acc
            | _ -> acc)
          ~expr:(fun acc _ -> acc)
          [] s)
      body

(* all [Index]/[Deref] accesses rooted at [param] in the body *)
let accesses_of_param (f : Ast.func) param =
  match f.Ast.f_body with
  | None -> []
  | Some body ->
    List.concat_map
      (fun s ->
        Ast.fold_stmt
          ~stmt:(fun acc _ -> acc)
          ~expr:(fun acc e ->
            match e.Ast.edesc with
            | Ast.Index ({ edesc = Ast.Ident base; _ }, idx) when base = param ->
              idx :: acc
            | Ast.Deref { edesc = Ast.Ident base; _ } when base = param ->
              Ast.int_lit 0 :: acc
            | _ -> acc)
          [] s)
      body

(* classify one subscript with respect to the function's own iterators:
   iterators may be scaled by literals (stride known) or by symbols such as
   a row-length parameter (stride symbolic -> Strided); products of two
   iterator-bearing expressions or nested accesses are Irregular *)
exception Nonlinear

let classify_subscript iters (idx : Ast.expr) =
  let contains_iter e =
    Ast.fold_expr
      (fun acc x -> acc || match x.Ast.edesc with Ast.Ident n -> List.mem n iters | _ -> false)
      false e
  in
  (* iterator -> Some literal-coefficient | None (symbolic scale) *)
  let coeffs : (string, int option) Hashtbl.t = Hashtbl.create 4 in
  let add name kind =
    let merged =
      match (Hashtbl.find_opt coeffs name, kind) with
      | None, k -> k
      | Some None, _ | Some _, None -> None
      | Some (Some a), Some b -> Some (a + b)
    in
    Hashtbl.replace coeffs name merged
  in
  let rec go (e : Ast.expr) ~lit ~symbolic =
    match e.Ast.edesc with
    | Ast.IntLit _ | Ast.FloatLit _ | Ast.CharLit _ | Ast.SizeofType _ -> ()
    | Ast.Ident x ->
      if List.mem x iters then add x (if symbolic then None else Some lit)
    | Ast.Binop (Ast.Add, a, b) ->
      go a ~lit ~symbolic;
      go b ~lit ~symbolic
    | Ast.Binop (Ast.Sub, a, b) ->
      go a ~lit ~symbolic;
      go b ~lit:(-lit) ~symbolic
    | Ast.Binop (Ast.Mul, a, b) -> (
      match (contains_iter a, contains_iter b) with
      | true, true -> raise Nonlinear
      | false, false -> ()
      | true, false -> (
        match b.Ast.edesc with
        | Ast.IntLit k -> go a ~lit:(lit * k) ~symbolic
        | _ -> go a ~lit ~symbolic:true)
      | false, true -> (
        match a.Ast.edesc with
        | Ast.IntLit k -> go b ~lit:(lit * k) ~symbolic
        | _ -> go b ~lit ~symbolic:true))
    | Ast.Unop (Ast.Neg, a) -> go a ~lit:(-lit) ~symbolic
    | Ast.Cast (_, a) -> go a ~lit ~symbolic
    | _ -> if contains_iter e then raise Nonlinear
  in
  match go idx ~lit:1 ~symbolic:false with
  | () ->
    let kinds = Hashtbl.fold (fun _ k acc -> k :: acc) coeffs [] in
    let kinds = List.filter (fun k -> k <> Some 0) kinds in
    if kinds = [] then Strided (* no iterator: constant subscript *)
    else if List.exists (fun k -> k = Some 1 || k = Some (-1)) kinds then Unit_stride
    else Strided
  | exception Nonlinear -> Irregular

let elem_bytes_of_type (ty : Ast.ctype) =
  match ty with
  | Ast.Ptr { elt = Ast.Double; _ } -> 8
  | Ast.Ptr { elt = Ast.Float; _ } -> 4
  | Ast.Ptr { elt = Ast.Int; _ } -> 4
  | Ast.Ptr { elt = Ast.Char; _ } -> 1
  | Ast.Ptr _ -> 8
  | _ -> 4

let count_flops (f : Ast.func) =
  match f.Ast.f_body with
  | None -> 0
  | Some body ->
    List.fold_left
      (fun acc s ->
        Ast.fold_stmt
          ~stmt:(fun acc _ -> acc)
          ~expr:(fun acc e ->
            match e.Ast.edesc with
            | Ast.Binop ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div), _, _) -> acc + 1
            | _ -> acc)
          acc s)
      0 body

let has_loop (f : Ast.func) =
  match f.Ast.f_body with
  | None -> false
  | Some body ->
    List.exists
      (fun s ->
        Ast.fold_stmt
          ~stmt:(fun acc s ->
            acc
            ||
            match s.Ast.sdesc with
            | Ast.SFor _ | Ast.SWhile _ | Ast.SDoWhile _ -> true
            | _ -> false)
          ~expr:(fun acc _ -> acc)
          false s)
      body

(** Summarize one pure function. *)
let summarize (f : Ast.func) : summary =
  let iters = own_iterators f in
  let params =
    List.filter_map
      (fun (p : Ast.param) ->
        match p.Ast.p_type with
        | Ast.Ptr _ ->
          let accesses = accesses_of_param f p.Ast.p_name in
          if accesses = [] then
            Some
              {
                ps_name = p.Ast.p_name;
                ps_elem_bytes = elem_bytes_of_type p.Ast.p_type;
                ps_pattern = Strided;
                ps_access_sites = 0;
              }
          else begin
            (* the weakest pattern over all sites wins *)
            let patterns = List.map (classify_subscript iters) accesses in
            let worst =
              if List.mem Irregular patterns then Irregular
              else if List.for_all (( = ) Unit_stride) patterns then Unit_stride
              else Strided
            in
            Some
              {
                ps_name = p.Ast.p_name;
                ps_elem_bytes = elem_bytes_of_type p.Ast.p_type;
                ps_pattern = worst;
                ps_access_sites = List.length accesses;
              }
          end
        | _ -> None)
      f.Ast.f_params
  in
  {
    fs_name = f.Ast.f_name;
    fs_params = params;
    fs_has_loop = has_loop f;
    fs_flops_estimate = count_flops f;
  }

(** Summaries for every defined pure function of the program. *)
let summarize_program (program : Ast.program) : (string * summary) list =
  List.filter_map
    (function
      | Ast.GFunc f when f.Ast.f_pure && f.Ast.f_body <> None ->
        Some (f.Ast.f_name, summarize f)
      | _ -> None)
    program

(** Aggregate view for the SICA tile model over a set of called pure
    functions: (arrays touched inside the calls, widest element in bytes). *)
let sica_footprint (summaries : (string * summary) list) (callees : string list) :
    int * int =
  List.fold_left
    (fun (arrays, bytes) callee ->
      match List.assoc_opt callee summaries with
      | None -> (arrays, bytes)
      | Some s ->
        let touched = List.filter (fun p -> p.ps_access_sites > 0) s.fs_params in
        ( arrays + List.length touched,
          List.fold_left (fun b p -> max b p.ps_elem_bytes) bytes touched ))
    (0, 4) callees
