(** Temporarily replacing pure calls by opaque constants (paper §3.3).

    PluTo is unaware of pure functions, so inside a [#pragma scop] region
    every call is substituted by a unique identifier ("to make the function
    calls appear as if they were constants", e.g. [fnAB()] becomes
    [tmpConst_fnAB]).  After the polyhedral transformation the identifiers
    are swapped back for the original call expressions.

    Hiding the call — including the array reads in its arguments — is sound
    because the SCoP marker enforced the §3.4 rule: no array passed to a pure
    call is written in the same nest, so the hidden reads cannot carry a
    dependence. *)

open Cfront

type table = { mutable entries : (string * Ast.expr) list; mutable next : int }

let create () = { entries = []; next = 0 }

let fresh_name t fname =
  let name = Printf.sprintf "tmpConst_%s_%d" fname t.next in
  t.next <- t.next + 1;
  name

(* Replace every call expression in [e] by a fresh identifier. *)
let rec hide_expr t (e : Ast.expr) : Ast.expr =
  match e.edesc with
  | Ast.Call (fname, _) ->
    let name = fresh_name t fname in
    t.entries <- (name, e) :: t.entries;
    { e with edesc = Ast.Ident name }
  | _ -> map_children (hide_expr t) e

and map_children f (e : Ast.expr) : Ast.expr =
  let d =
    match e.edesc with
    | Ast.Binop (op, a, b) -> Ast.Binop (op, f a, f b)
    | Ast.Unop (op, a) -> Ast.Unop (op, f a)
    | Ast.Assign (op, a, b) -> Ast.Assign (op, f a, f b)
    | Ast.Call (g, args) -> Ast.Call (g, List.map f args)
    | Ast.Index (a, b) -> Ast.Index (f a, f b)
    | Ast.Deref a -> Ast.Deref (f a)
    | Ast.AddrOf a -> Ast.AddrOf (f a)
    | Ast.Member (a, fld) -> Ast.Member (f a, fld)
    | Ast.Arrow (a, fld) -> Ast.Arrow (f a, fld)
    | Ast.Cast (ty, a) -> Ast.Cast (ty, f a)
    | Ast.Cond (a, b, c) -> Ast.Cond (f a, f b, f c)
    | Ast.SizeofExpr a -> Ast.SizeofExpr (f a)
    | Ast.IncDec r -> Ast.IncDec { r with arg = f r.arg }
    | Ast.Comma (a, b) -> Ast.Comma (f a, f b)
    | (Ast.IntLit _ | Ast.FloatLit _ | Ast.StrLit _ | Ast.CharLit _ | Ast.Ident _
      | Ast.SizeofType _) as d ->
      d
  in
  { e with edesc = d }

let rec hide_stmt t (s : Ast.stmt) : Ast.stmt =
  let he = hide_expr t in
  let d =
    match s.sdesc with
    | Ast.SExpr e -> Ast.SExpr (he e)
    | Ast.SDecl d -> Ast.SDecl { d with d_init = Option.map he d.d_init }
    | Ast.SIf (c, th, el) -> Ast.SIf (he c, hide_stmt t th, Option.map (hide_stmt t) el)
    | Ast.SWhile (c, b) -> Ast.SWhile (he c, hide_stmt t b)
    | Ast.SDoWhile (b, c) -> Ast.SDoWhile (hide_stmt t b, he c)
    | Ast.SFor (init, cond, step, b) ->
      let init =
        Option.map
          (function
            | Ast.FInitDecl d -> Ast.FInitDecl { d with Ast.d_init = Option.map he d.Ast.d_init }
            | Ast.FInitExpr e -> Ast.FInitExpr (he e))
          init
      in
      Ast.SFor (init, Option.map he cond, Option.map he step, hide_stmt t b)
    | Ast.SReturn e -> Ast.SReturn (Option.map he e)
    | Ast.SBlock ss -> Ast.SBlock (List.map (hide_stmt t) ss)
    | (Ast.SBreak | Ast.SContinue | Ast.SPragma _) as d -> d
  in
  { s with sdesc = d }

(* Swap hidden identifiers back for the recorded call expressions. *)
let rec reveal_expr t (e : Ast.expr) : Ast.expr =
  match e.edesc with
  | Ast.Ident x -> (
    match List.assoc_opt x t.entries with Some call -> call | None -> e)
  | _ -> map_children (reveal_expr t) e

let rec reveal_stmt t (s : Ast.stmt) : Ast.stmt =
  let re = reveal_expr t in
  let d =
    match s.sdesc with
    | Ast.SExpr e -> Ast.SExpr (re e)
    | Ast.SDecl d -> Ast.SDecl { d with d_init = Option.map re d.d_init }
    | Ast.SIf (c, th, el) ->
      Ast.SIf (re c, reveal_stmt t th, Option.map (reveal_stmt t) el)
    | Ast.SWhile (c, b) -> Ast.SWhile (re c, reveal_stmt t b)
    | Ast.SDoWhile (b, c) -> Ast.SDoWhile (reveal_stmt t b, re c)
    | Ast.SFor (init, cond, step, b) ->
      let init =
        Option.map
          (function
            | Ast.FInitDecl d ->
              Ast.FInitDecl { d with Ast.d_init = Option.map re d.Ast.d_init }
            | Ast.FInitExpr e -> Ast.FInitExpr (re e))
          init
      in
      Ast.SFor (init, Option.map re cond, Option.map re step, reveal_stmt t b)
    | Ast.SReturn e -> Ast.SReturn (Option.map re e)
    | Ast.SBlock ss -> Ast.SBlock (List.map (reveal_stmt t) ss)
    | (Ast.SBreak | Ast.SContinue | Ast.SPragma _) as d -> d
  in
  { s with sdesc = d }
