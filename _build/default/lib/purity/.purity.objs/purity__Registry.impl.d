lib/purity/registry.ml: Hashtbl List
