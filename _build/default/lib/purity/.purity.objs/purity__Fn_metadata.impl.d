lib/purity/fn_metadata.ml: Ast Cfront Hashtbl List
