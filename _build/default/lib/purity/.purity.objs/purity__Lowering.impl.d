lib/purity/lowering.ml: Ast Cfront List Option
