lib/purity/purity_check.ml: Ast Cfront Diag Hashtbl List Option Registry Sema Support
