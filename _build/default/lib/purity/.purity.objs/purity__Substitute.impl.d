lib/purity/substitute.ml: Ast Cfront List Option Printf
