lib/purity/scop_marker.ml: Ast Cfront Diag List Option Registry Support
