(** The purity verifier — the additional compiler pass of paper §3.2.

    For every function marked [pure] it verifies that

    - only pure functions are called (registry = pure stdlib + [malloc]/
      [free] + user functions declared pure, including the function itself);
    - no assignment modifies function-external data (globals, parameter
      pointees), cf. Listing 2 and Listing 4;
    - pointer parameters are declared [pure];
    - [pure] pointers are assigned at most once and never written through;
    - taking an external (global) pointer into a local requires the
      [(pure T* )] cast discipline of Listing 3;
    - [free] is applied only to memory allocated in the same function.

    The check is deliberately *name-based* and syntactic, like the paper's:
    the alias in Listing 6 is accepted — that documented limitation is
    covered by a test. *)

open Cfront
open Support

(* Where a pointer *value* may point. *)
type taint =
  | Fresh  (** locally allocated or address of a local *)
  | External  (** reaches caller-visible memory (param pointee, global) *)
  | Opaque  (** unknown, treated permissively (name-based checker) *)

type vinfo = {
  v_ty : Ast.ctype;
  v_origin : Sema.Symbol.origin;
  mutable v_taint : taint;
  mutable v_assigned : bool;  (** a pure pointer already holds a value *)
  mutable v_from_malloc : bool;
}

type ctx = {
  env : Sema.Env.t;
  registry : Registry.t;
  reporter : Diag.reporter;
  fname : string;
  (* shadow-stacked flow info per name *)
  flow : (string, vinfo list) Hashtbl.t;
  mutable block_names : string list list;  (** names declared per open block *)
  scope : Sema.Scope.t;  (** for type inference *)
  tc : Sema.Typecheck.ctx;
}

let err ctx loc code fmt = Diag.error ctx.reporter ~loc ~code fmt

let is_pure_ptr = function Ast.Ptr { ptr_pure = true; _ } -> true | _ -> false

let vinfo_find ctx name =
  match Hashtbl.find_opt ctx.flow name with Some (v :: _) -> Some v | _ -> None

let vinfo_push ctx name v =
  let stack = Option.value (Hashtbl.find_opt ctx.flow name) ~default:[] in
  Hashtbl.replace ctx.flow name (v :: stack);
  match ctx.block_names with
  | names :: rest -> ctx.block_names <- (name :: names) :: rest
  | [] -> invalid_arg "vinfo_push: no open block"

let push_block ctx =
  ctx.block_names <- [] :: ctx.block_names;
  Sema.Scope.push ctx.scope

let pop_block ctx =
  (match ctx.block_names with
  | names :: rest ->
    List.iter
      (fun name ->
        match Hashtbl.find_opt ctx.flow name with
        | Some (_ :: tl) -> Hashtbl.replace ctx.flow name tl
        | _ -> ())
      names;
    ctx.block_names <- rest
  | [] -> invalid_arg "pop_block: no open block");
  Sema.Scope.pop ctx.scope

let infer ctx e = Sema.Typecheck.infer ctx.tc ctx.scope e

(* ------------------------------------------------------------------ *)
(* Classifying where a pointer-valued expression can point. *)

let rec classify_value ctx (e : Ast.expr) : taint =
  match e.edesc with
  | Ast.Cast (_, inner) -> classify_value ctx inner
  | Ast.Ident x -> (
    match vinfo_find ctx x with
    | Some v -> (
      match v.v_origin with
      | Sema.Symbol.Param -> External
      | Sema.Symbol.Global -> External
      | Sema.Symbol.Local | Sema.Symbol.Enclosing -> v.v_taint)
    | None -> (
      (* not flow-tracked: must be a param or global *)
      match Sema.Scope.lookup ctx.scope x with
      | Some { origin = Sema.Symbol.Param | Sema.Symbol.Global; _ } -> External
      | _ -> Opaque))
  | Ast.Call (_, _) -> Fresh
  | Ast.AddrOf inner -> classify_lvalue_base ctx inner
  | Ast.Index (b, _) | Ast.Deref b -> classify_value ctx b
  | Ast.Binop ((Ast.Add | Ast.Sub), a, b) -> (
    (* pointer arithmetic: taint of the pointer side *)
    match (infer ctx a, infer ctx b) with
    | Ast.Ptr _, _ | Ast.Array _, _ -> classify_value ctx a
    | _, (Ast.Ptr _ | Ast.Array _) -> classify_value ctx b
    | _ -> Opaque)
  | Ast.Cond (_, t, f) -> (
    match (classify_value ctx t, classify_value ctx f) with
    | External, _ | _, External -> External
    | Fresh, Fresh -> Fresh
    | _ -> Opaque)
  | Ast.Comma (_, b) -> classify_value ctx b
  | Ast.Member (b, _) | Ast.Arrow (b, _) -> classify_value ctx b
  | _ -> Opaque

(* The storage an lvalue lives in (for address-of and store checking). *)
and classify_lvalue_base ctx (e : Ast.expr) : taint =
  match e.edesc with
  | Ast.Ident x -> (
    match vinfo_find ctx x with
    | Some v -> (
      match v.v_origin with
      | Sema.Symbol.Param -> Fresh (* the parameter slot itself is a local copy *)
      | Sema.Symbol.Global -> External
      | Sema.Symbol.Local | Sema.Symbol.Enclosing -> Fresh)
    | None -> (
      match Sema.Scope.lookup ctx.scope x with
      | Some { origin = Sema.Symbol.Global; _ } -> External
      | Some { origin = Sema.Symbol.Param; _ } -> Fresh
      | _ -> Opaque))
  | Ast.Index (b, _) | Ast.Deref b ->
    (* element of *base: lives wherever base points *)
    classify_value ctx b
  | Ast.Member (b, _) -> classify_lvalue_base ctx b
  | Ast.Arrow (b, _) -> classify_value ctx b
  | Ast.Cast (_, inner) -> classify_lvalue_base ctx inner
  | _ -> Opaque

(* The flow-tracked variable at the root of an lvalue, with the pointer
   depth between the root and the stored-to cell (0 = the variable itself). *)
let rec lvalue_root (e : Ast.expr) depth =
  match e.edesc with
  | Ast.Ident x -> Some (x, depth)
  | Ast.Index (b, _) | Ast.Deref b -> lvalue_root b (depth + 1)
  | Ast.Member (b, _) -> lvalue_root b depth
  | Ast.Arrow (b, _) -> lvalue_root b (depth + 1)
  | Ast.Cast (_, inner) -> lvalue_root inner depth
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Expression checking *)

let is_malloc_call (e : Ast.expr) =
  let rec strip e =
    match e.Ast.edesc with Ast.Cast (_, inner) -> strip inner | _ -> e
  in
  match (strip e).Ast.edesc with
  | Ast.Call (("malloc" | "calloc"), _) -> true
  | _ -> false

(* Check a value assigned into a pointer-typed target. *)
let check_ptr_flow ctx loc ~target_pure ~(rhs : Ast.expr) =
  let rhs_ty = infer ctx rhs in
  let rhs_is_pure_typed = is_pure_ptr rhs_ty in
  let taint = classify_value ctx rhs in
  if target_pure then begin
    (* pure target: fine from pure-typed values and from fresh memory;
       external non-pure values need the explicit (pure T* ) cast, which
       would have made the type pure. *)
    if (not rhs_is_pure_typed) && taint = External then
      err ctx loc "pure.external-ptr-no-cast"
        "assigning external data to a pure pointer requires a (pure T*) cast"
  end
  else begin
    (* non-pure target: external values must not be laundered into writable
       pointers (Listing 2, line 11) *)
    if rhs_is_pure_typed then
      err ctx loc "pure.pure-to-impure"
        "a pure pointer value cannot be assigned to a non-pure pointer"
    else if taint = External then
      err ctx loc "pure.external-ptr-no-cast"
        "assigning external data to a non-pure pointer is invalid in a pure \
         function; cast to (pure T*) and use a pure pointer"
  end

let rec check_expr ctx (e : Ast.expr) =
  match e.edesc with
  | Ast.IntLit _ | Ast.FloatLit _ | Ast.StrLit _ | Ast.CharLit _ | Ast.Ident _
  | Ast.SizeofType _ ->
    ()
  | Ast.Call (fname, args) ->
    List.iter (check_expr ctx) args;
    if not (Registry.mem ctx.registry fname) then
      err ctx e.eloc "pure.call-impure"
        "pure function %s calls non-pure function %s" ctx.fname fname;
    if fname = "free" then check_free ctx e.eloc args
  | Ast.Assign (op, lhs, rhs) ->
    check_expr ctx rhs;
    check_store ctx e.eloc op lhs rhs
  | Ast.IncDec { arg; _ } ->
    (* x++ is a store of x+1 *)
    check_store ctx e.eloc Ast.OpAddAssign arg (Ast.int_lit 1)
  | Ast.Binop (_, a, b) | Ast.Comma (a, b) ->
    check_expr ctx a;
    check_expr ctx b
  | Ast.Index (a, b) ->
    check_expr ctx a;
    check_expr ctx b
  | Ast.Unop (_, a)
  | Ast.Deref a
  | Ast.AddrOf a
  | Ast.Member (a, _)
  | Ast.Arrow (a, _)
  | Ast.Cast (_, a)
  | Ast.SizeofExpr a ->
    check_expr ctx a
  | Ast.Cond (a, b, c) ->
    check_expr ctx a;
    check_expr ctx b;
    check_expr ctx c

and check_free ctx loc args =
  match args with
  | [ arg ] -> (
    let rec strip e =
      match e.Ast.edesc with Ast.Cast (_, inner) -> strip inner | _ -> e
    in
    match (strip arg).Ast.edesc with
    | Ast.Ident x -> (
      match vinfo_find ctx x with
      | Some { v_from_malloc = true; _ } -> ()
      | _ ->
        err ctx loc "pure.free-external"
          "free in pure function %s frees memory not allocated in its scope"
          ctx.fname)
    | _ ->
      err ctx loc "pure.free-external"
        "free in pure function %s frees memory not allocated in its scope" ctx.fname)
  | _ -> ()

(* A store [lhs op= rhs].  [depth] 0 means assigning the variable slot
   itself; >0 means writing through pointers/arrays. *)
and check_store ctx loc _op lhs rhs =
  match lvalue_root lhs 0 with
  | None ->
    (* stores to exotic lvalues: check the pointee location *)
    if classify_lvalue_base ctx lhs = External then
      err ctx loc "pure.store-external" "store to function-external data"
  | Some (root, depth) -> (
    let entry = Sema.Scope.lookup ctx.scope root in
    let origin =
      match entry with Some s -> Some s.Sema.Symbol.origin | None -> None
    in
    match (origin, depth) with
    | Some Sema.Symbol.Global, 0 ->
      err ctx loc "pure.global-write" "pure function %s writes global %s" ctx.fname
        root
    | Some Sema.Symbol.Global, _ ->
      err ctx loc "pure.store-external" "pure function %s writes through global %s"
        ctx.fname root
    | Some Sema.Symbol.Param, 0 ->
      (* the parameter slot is a local copy; assigning it is fine unless it
         is a pure pointer (single assignment, and it is already bound by
         the call) *)
      let ty = match entry with Some s -> s.Sema.Symbol.ty | None -> Ast.Int in
      if is_pure_ptr ty then
        err ctx loc "pure.pure-ptr-reassign" "pure pointer parameter %s reassigned"
          root
    | Some Sema.Symbol.Param, _ ->
      err ctx loc "pure.pure-ptr-write"
        "pure function %s writes through parameter %s" ctx.fname root
    | Some (Sema.Symbol.Local | Sema.Symbol.Enclosing), 0 -> (
      let ty = match entry with Some s -> s.Sema.Symbol.ty | None -> Ast.Int in
      match vinfo_find ctx root with
      | Some v ->
        if is_pure_ptr ty then begin
          if v.v_assigned then
            err ctx loc "pure.pure-ptr-reassign"
              "pure pointer %s can only be assigned once" root;
          v.v_assigned <- true
        end;
        if Ast.is_pointer ty then begin
          check_ptr_flow ctx loc ~target_pure:(is_pure_ptr ty) ~rhs;
          v.v_taint <- classify_value ctx rhs;
          v.v_from_malloc <- is_malloc_call rhs
        end
      | None -> ())
    | Some (Sema.Symbol.Local | Sema.Symbol.Enclosing), _ -> (
      (* writing through a local pointer: fine for fresh memory, an error if
         the pointer (or array element) reaches external data or is pure *)
      let ty = match entry with Some s -> s.Sema.Symbol.ty | None -> Ast.Int in
      if is_pure_ptr ty then
        err ctx loc "pure.pure-ptr-write"
          "store through pure pointer %s in pure function %s" root ctx.fname
      else
        match vinfo_find ctx root with
        | Some { v_taint = External; _ } ->
          err ctx loc "pure.store-external"
            "store through pointer %s which references external data" root
        | _ -> ())
    | None, _ ->
      err ctx loc "pure.store-external" "store to undeclared name %s" root)

(* ------------------------------------------------------------------ *)
(* Statements *)

let check_decl ctx (d : Ast.decl) =
  let ty = Sema.Env.resolve ctx.env d.d_type in
  Sema.Scope.add_local ctx.scope d.d_name ty d.d_loc;
  let v =
    {
      v_ty = ty;
      v_origin = Sema.Symbol.Local;
      v_taint = (if Ast.is_pointer ty then Opaque else Fresh);
      v_assigned = false;
      v_from_malloc = false;
    }
  in
  vinfo_push ctx d.d_name v;
  match d.d_init with
  | None ->
    (* arrays/structs declared locally are fresh storage *)
    (match ty with Ast.Array _ | Ast.Struct _ -> v.v_taint <- Fresh | _ -> ())
  | Some init ->
    check_expr ctx init;
    if Ast.is_pointer ty then begin
      check_ptr_flow ctx d.d_loc ~target_pure:(is_pure_ptr ty) ~rhs:init;
      v.v_taint <- classify_value ctx init;
      v.v_from_malloc <- is_malloc_call init;
      if is_pure_ptr ty then v.v_assigned <- true
    end

let rec check_stmt ctx (s : Ast.stmt) =
  match s.sdesc with
  | Ast.SExpr e -> check_expr ctx e
  | Ast.SDecl d -> check_decl ctx d
  | Ast.SIf (c, t, e) ->
    check_expr ctx c;
    check_in_block ctx t;
    Option.iter (check_in_block ctx) e
  | Ast.SWhile (c, b) ->
    check_expr ctx c;
    check_in_block ctx b
  | Ast.SDoWhile (b, c) ->
    check_in_block ctx b;
    check_expr ctx c
  | Ast.SFor (init, cond, step, b) ->
    push_block ctx;
    (match init with
    | Some (Ast.FInitDecl d) -> check_decl ctx d
    | Some (Ast.FInitExpr e) -> check_expr ctx e
    | None -> ());
    Option.iter (check_expr ctx) cond;
    Option.iter (check_expr ctx) step;
    check_in_block ctx b;
    pop_block ctx
  | Ast.SReturn eo -> Option.iter (check_expr ctx) eo
  | Ast.SBlock ss ->
    push_block ctx;
    List.iter (check_stmt ctx) ss;
    pop_block ctx
  | Ast.SBreak | Ast.SContinue | Ast.SPragma _ -> ()

and check_in_block ctx s = check_stmt ctx s

(* ------------------------------------------------------------------ *)
(* Functions and programs *)

let check_params ctx (f : Ast.func) =
  List.iter
    (fun (p : Ast.param) ->
      let ty = Sema.Env.resolve ctx.env p.p_type in
      match ty with
      | Ast.Ptr { ptr_pure = false; _ } | Ast.Array _ ->
        err ctx p.p_loc "pure.param-ptr-not-pure"
          "pointer parameter %s of pure function %s must be declared pure"
          p.p_name ctx.fname
      | _ -> ())
    f.f_params

let check_function env registry reporter (f : Ast.func) =
  match f.f_body with
  | None -> ()
  | Some body ->
    let scope = Sema.Typecheck.scope_for_function env f in
    let tc =
      { Sema.Typecheck.env; reporter = Diag.create_reporter (); current_ret = f.f_ret }
    in
    (* the purity pass must not duplicate type errors; give infer a dummy
       reporter *)
    let ctx =
      {
        env;
        registry;
        reporter;
        fname = f.f_name;
        flow = Hashtbl.create 16;
        block_names = [ [] ];
        scope;
        tc;
      }
    in
    check_params ctx f;
    List.iter (check_stmt ctx) body

(** Verify every [pure] function of the program.  All [pure] declarations are
    registered first so mutual recursion and forward references work; the
    registry is extended in place. *)
let check_program ?(registry = Registry.create ()) ~reporter (program : Ast.program) :
    Registry.t =
  let env = Sema.Env.gather ~reporter:(Diag.create_reporter ()) program in
  List.iter
    (function
      | Ast.GFunc f when f.f_pure -> Registry.add registry f.f_name
      | _ -> ())
    program;
  List.iter
    (function
      | Ast.GFunc f when f.f_pure -> check_function env registry reporter f
      | _ -> ())
    program;
  registry
