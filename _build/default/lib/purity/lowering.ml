(** Lowering [pure] away for the classic tool chain (paper §3.2, last part).

    "We must replace pure prefixes of pointers in argument lists of functions
    and remove the prefixes from functions entirely.  The pointer prefixes
    are replaced with the const keyword [...]; the function prefix is removed
    completely."  After this pass the program is plain C. *)

open Cfront

let rec lower_type (ty : Ast.ctype) : Ast.ctype =
  match ty with
  | Ast.Ptr p ->
    Ast.Ptr
      {
        elt = lower_type p.elt;
        ptr_pure = false;
        ptr_const = p.ptr_const || p.ptr_pure;
      }
  | Ast.Array (e, n) -> Ast.Array (lower_type e, n)
  | Ast.Void | Ast.Int | Ast.Float | Ast.Double | Ast.Char | Ast.Struct _ | Ast.Named _
    ->
    ty

let rec lower_expr (e : Ast.expr) : Ast.expr =
  let d =
    match e.edesc with
    | Ast.Cast (ty, a) -> Ast.Cast (lower_type ty, lower_expr a)
    | Ast.SizeofType ty -> Ast.SizeofType (lower_type ty)
    | Ast.Binop (op, a, b) -> Ast.Binop (op, lower_expr a, lower_expr b)
    | Ast.Unop (op, a) -> Ast.Unop (op, lower_expr a)
    | Ast.Assign (op, a, b) -> Ast.Assign (op, lower_expr a, lower_expr b)
    | Ast.Call (f, args) -> Ast.Call (f, List.map lower_expr args)
    | Ast.Index (a, b) -> Ast.Index (lower_expr a, lower_expr b)
    | Ast.Deref a -> Ast.Deref (lower_expr a)
    | Ast.AddrOf a -> Ast.AddrOf (lower_expr a)
    | Ast.Member (a, f) -> Ast.Member (lower_expr a, f)
    | Ast.Arrow (a, f) -> Ast.Arrow (lower_expr a, f)
    | Ast.Cond (a, b, c) -> Ast.Cond (lower_expr a, lower_expr b, lower_expr c)
    | Ast.SizeofExpr a -> Ast.SizeofExpr (lower_expr a)
    | Ast.IncDec r -> Ast.IncDec { r with arg = lower_expr r.arg }
    | Ast.Comma (a, b) -> Ast.Comma (lower_expr a, lower_expr b)
    | (Ast.IntLit _ | Ast.FloatLit _ | Ast.StrLit _ | Ast.CharLit _ | Ast.Ident _) as d
      ->
      d
  in
  { e with edesc = d }

let lower_decl (d : Ast.decl) =
  { d with d_type = lower_type d.d_type; d_init = Option.map lower_expr d.d_init }

let rec lower_stmt (s : Ast.stmt) : Ast.stmt =
  let d =
    match s.sdesc with
    | Ast.SExpr e -> Ast.SExpr (lower_expr e)
    | Ast.SDecl d -> Ast.SDecl (lower_decl d)
    | Ast.SIf (c, t, e) -> Ast.SIf (lower_expr c, lower_stmt t, Option.map lower_stmt e)
    | Ast.SWhile (c, b) -> Ast.SWhile (lower_expr c, lower_stmt b)
    | Ast.SDoWhile (b, c) -> Ast.SDoWhile (lower_stmt b, lower_expr c)
    | Ast.SFor (init, cond, step, b) ->
      let init =
        Option.map
          (function
            | Ast.FInitDecl d -> Ast.FInitDecl (lower_decl d)
            | Ast.FInitExpr e -> Ast.FInitExpr (lower_expr e))
          init
      in
      Ast.SFor (init, Option.map lower_expr cond, Option.map lower_expr step, lower_stmt b)
    | Ast.SReturn e -> Ast.SReturn (Option.map lower_expr e)
    | Ast.SBlock ss -> Ast.SBlock (List.map lower_stmt ss)
    | (Ast.SBreak | Ast.SContinue | Ast.SPragma _) as d -> d
  in
  { s with sdesc = d }

let lower_func (f : Ast.func) =
  {
    f with
    Ast.f_pure = false;
    f_ret = lower_type f.f_ret;
    f_params = List.map (fun p -> { p with Ast.p_type = lower_type p.Ast.p_type }) f.f_params;
    f_body = Option.map (List.map lower_stmt) f.f_body;
  }

(** Remove every [pure] from the program: function prefixes disappear, pure
    pointers become const pointers. *)
let lower (program : Ast.program) : Ast.program =
  List.map
    (fun g ->
      match g with
      | Ast.GFunc f -> Ast.GFunc (lower_func f)
      | Ast.GVar d -> Ast.GVar (lower_decl d)
      | Ast.GStruct sd ->
        Ast.GStruct
          { sd with s_fields = List.map (fun (t, n) -> (lower_type t, n)) sd.s_fields }
      | Ast.GTypedef (n, t, l) -> Ast.GTypedef (n, lower_type t, l)
      | (Ast.GPragma _ | Ast.GInclude _) as g -> g)
    program

(** Does any [pure] remain? (test helper) *)
let contains_pure (program : Ast.program) =
  let rec ty_pure = function
    | Ast.Ptr p -> p.ptr_pure || ty_pure p.elt
    | Ast.Array (e, _) -> ty_pure e
    | _ -> false
  in
  let expr_pure e =
    Ast.fold_expr
      (fun acc e ->
        acc
        ||
        match e.Ast.edesc with
        | Ast.Cast (ty, _) -> ty_pure ty
        | Ast.SizeofType ty -> ty_pure ty
        | _ -> false)
      false e
  in
  let stmt_pure s =
    Ast.fold_stmt
      ~stmt:(fun acc s ->
        acc
        ||
        match s.Ast.sdesc with
        | Ast.SDecl d -> ty_pure d.Ast.d_type
        | _ -> false)
      ~expr:(fun acc e -> acc || expr_pure e)
      false s
  in
  List.exists
    (function
      | Ast.GFunc f ->
        f.Ast.f_pure || ty_pure f.f_ret
        || List.exists (fun p -> ty_pure p.Ast.p_type) f.f_params
        || (match f.f_body with
           | Some body -> List.exists stmt_pure body
           | None -> false)
      | Ast.GVar d -> ty_pure d.Ast.d_type
      | _ -> false)
    program
