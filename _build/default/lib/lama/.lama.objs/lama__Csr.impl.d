lib/lama/csr.ml: Array Ell List
