lib/lama/ell.ml: Array List
