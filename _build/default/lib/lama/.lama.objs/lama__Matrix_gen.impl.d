lib/lama/matrix_gen.ml: Array Ell Hashtbl List Rng Support
