lib/lama/spmv.ml: Array Csr Ell Runtime
