(** ELLPACK (ELL) sparse matrix storage — the format of the LAMA kernel the
    paper evaluates (§4.1, fourth application).

    ELL stores a [rows x cols] sparse matrix as two dense [rows x max_nnz]
    arrays (column indices and values) in column-major "jagged diagonal"
    order; rows shorter than [max_nnz] are padded.  The padding and the
    varying true row lengths are exactly what makes the SpMV loop
    load-imbalanced at the tail — the effect §4.3.4 discusses. *)

type t = {
  rows : int;
  cols : int;
  max_nnz : int;  (** entries per row including padding *)
  row_nnz : int array;  (** true (unpadded) entries per row *)
  col_idx : int array;  (** [rows * max_nnz], row-major: idx.(r*max_nnz+k) *)
  values : float array;  (** same layout as [col_idx] *)
}

let rows t = t.rows

let cols t = t.cols

let nnz t = Array.fold_left ( + ) 0 t.row_nnz

let padding t = (t.rows * t.max_nnz) - nnz t

(** Build from a row-wise list of (column, value) lists. *)
let of_rows ~cols (rows_data : (int * float) list array) : t =
  let rows = Array.length rows_data in
  let row_nnz = Array.map List.length rows_data in
  let max_nnz = Array.fold_left max 0 row_nnz in
  let max_nnz = max 1 max_nnz in
  let col_idx = Array.make (rows * max_nnz) 0 in
  let values = Array.make (rows * max_nnz) 0.0 in
  Array.iteri
    (fun r entries ->
      List.iteri
        (fun k (cidx, v) ->
          if cidx < 0 || cidx >= cols then invalid_arg "Ell.of_rows: column out of range";
          col_idx.((r * max_nnz) + k) <- cidx;
          values.((r * max_nnz) + k) <- v)
        entries)
    rows_data;
  { rows; cols; max_nnz; row_nnz; col_idx; values }

(** Dense lookup (tests). *)
let get t r c =
  let acc = ref 0.0 in
  for k = 0 to t.row_nnz.(r) - 1 do
    if t.col_idx.((r * t.max_nnz) + k) = c then acc := !acc +. t.values.((r * t.max_nnz) + k)
  done;
  !acc

let to_dense t =
  let d = Array.make_matrix t.rows t.cols 0.0 in
  for r = 0 to t.rows - 1 do
    for k = 0 to t.row_nnz.(r) - 1 do
      let c = t.col_idx.((r * t.max_nnz) + k) in
      d.(r).(c) <- d.(r).(c) +. t.values.((r * t.max_nnz) + k)
    done
  done;
  d

(** Row-padded iteration (the kernel's access pattern). *)
let iter_row t r f =
  for k = 0 to t.row_nnz.(r) - 1 do
    f t.col_idx.((r * t.max_nnz) + k) t.values.((r * t.max_nnz) + k)
  done
