(** Sparse matrix–vector multiplication kernels (the LAMA standalone
    function of paper §4.1) in OCaml: a sequential reference, and a
    pool-parallel version with a pluggable schedule for the static-versus-
    dynamic comparison of §4.3.4. *)

(** y = A x, ELL format, sequential reference. *)
let ell_seq (a : Ell.t) (x : float array) : float array =
  if Array.length x <> a.Ell.cols then invalid_arg "Spmv.ell_seq: dimension mismatch";
  let y = Array.make a.Ell.rows 0.0 in
  for r = 0 to a.Ell.rows - 1 do
    let acc = ref 0.0 in
    for k = 0 to a.Ell.row_nnz.(r) - 1 do
      let idx = (r * a.Ell.max_nnz) + k in
      acc := !acc +. (a.Ell.values.(idx) *. x.(a.Ell.col_idx.(idx)))
    done;
    y.(r) <- !acc
  done;
  y

(** y = A x over a domain pool. *)
let ell_par pool ?(schedule = Runtime.Par_loop.Static) (a : Ell.t) (x : float array) :
    float array =
  if Array.length x <> a.Ell.cols then invalid_arg "Spmv.ell_par: dimension mismatch";
  let y = Array.make a.Ell.rows 0.0 in
  Runtime.Par_loop.parallel_for pool ~schedule ~lo:0 ~hi:a.Ell.rows (fun r ->
      let acc = ref 0.0 in
      for k = 0 to a.Ell.row_nnz.(r) - 1 do
        let idx = (r * a.Ell.max_nnz) + k in
        acc := !acc +. (a.Ell.values.(idx) *. x.(a.Ell.col_idx.(idx)))
      done;
      y.(r) <- !acc);
  y

(** CSR reference (cross-checking the formats against each other). *)
let csr_seq (a : Csr.t) (x : float array) : float array =
  let y = Array.make a.Csr.rows 0.0 in
  for r = 0 to a.Csr.rows - 1 do
    let acc = ref 0.0 in
    for k = a.Csr.row_ptr.(r) to a.Csr.row_ptr.(r + 1) - 1 do
      acc := !acc +. (a.Csr.values.(k) *. x.(a.Csr.col_idx.(k)))
    done;
    y.(r) <- !acc
  done;
  y

(** Dense reference for small matrices (tests). *)
let dense (d : float array array) (x : float array) : float array =
  Array.map
    (fun row ->
      let acc = ref 0.0 in
      Array.iteri (fun j v -> acc := !acc +. (v *. x.(j))) row;
      !acc)
    d
