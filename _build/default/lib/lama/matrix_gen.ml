(** Synthetic sparse matrices with a pwtk-like profile.

    The Boeing/pwtk pressurized-wind-tunnel matrix used in the paper (217k
    rows, 11.5M nonzeros, symmetric, ~53 nnz/row on average) is not
    redistributable here, so the generator produces a symmetric banded
    matrix with clustered off-band entries and a long-tailed row-degree
    distribution.  What the SpMV evaluation depends on — ELL padding ratio
    and tail imbalance of row lengths — is matched by construction. *)

open Support

type spec = {
  rows : int;
  avg_nnz : int;  (** mean nonzeros per row *)
  band : int;  (** half-width of the main band *)
  heavy_row_fraction : float;  (** fraction of rows with ~3x the average *)
  seed : int;
}

let pwtk_like ?(rows = 4096) () =
  { rows; avg_nnz = 24; band = 16; heavy_row_fraction = 0.06; seed = 42 }

(** Generate the matrix as row lists (symmetric, diagonally dominant). *)
let generate (spec : spec) : (int * float) list array =
  let rng = Rng.create spec.seed in
  let n = spec.rows in
  let tbl = Array.make n [] in
  let add r c v =
    if r >= 0 && r < n && c >= 0 && c < n then tbl.(r) <- (c, v) :: tbl.(r)
  in
  (* symmetric insertion *)
  let add_sym r c v =
    add r c v;
    if r <> c then add c r v
  in
  for r = 0 to n - 1 do
    (* diagonal *)
    add r r (4.0 +. Rng.float rng);
    let heavy = Rng.float rng < spec.heavy_row_fraction in
    let target = if heavy then spec.avg_nnz * 3 else spec.avg_nnz in
    (* banded entries: only place (r, c) with c > r to keep symmetry *)
    let placed = ref 0 in
    let attempts = ref 0 in
    while !placed < target / 2 && !attempts < target * 4 do
      incr attempts;
      let off = 1 + Rng.int rng spec.band in
      let c = if Rng.bool rng then r + off else r + off + Rng.int rng (spec.band * 4) in
      if c > r && c < n then begin
        add_sym r c (Rng.float_range rng (-1.0) 1.0 *. 0.25);
        incr placed
      end
    done
  done;
  (* dedup columns per row, keep first occurrence, sort by column *)
  Array.map
    (fun entries ->
      let seen = Hashtbl.create 16 in
      List.rev entries
      |> List.filter (fun (c, _) ->
             if Hashtbl.mem seen c then false
             else begin
               Hashtbl.replace seen c ();
               true
             end)
      |> List.sort (fun (a, _) (b, _) -> compare a b))
    tbl

let generate_ell spec : Ell.t =
  let rows = generate spec in
  Ell.of_rows ~cols:spec.rows rows

(** A deterministic dense-ish vector to multiply with. *)
let test_vector n =
  Array.init n (fun i -> 1.0 +. (float_of_int (i mod 17) *. 0.125))

(** Row-degree statistics: (min, max, mean, fraction of padding in ELL). *)
let stats (e : Ell.t) =
  let n = Ell.rows e in
  let mn = Array.fold_left min max_int e.Ell.row_nnz in
  let mx = Array.fold_left max 0 e.Ell.row_nnz in
  let mean = float_of_int (Ell.nnz e) /. float_of_int n in
  let pad = float_of_int (Ell.padding e) /. float_of_int (n * e.Ell.max_nnz) in
  (mn, mx, mean, pad)
