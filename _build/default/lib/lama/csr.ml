(** Compressed sparse row storage, used as a conversion partner and
    reference for the ELL format (LAMA supports both). *)

type t = {
  rows : int;
  cols : int;
  row_ptr : int array;  (** length rows+1 *)
  col_idx : int array;
  values : float array;
}

let nnz t = Array.length t.values

let of_rows ~cols (rows_data : (int * float) list array) : t =
  let rows = Array.length rows_data in
  let row_ptr = Array.make (rows + 1) 0 in
  Array.iteri (fun r entries -> row_ptr.(r + 1) <- row_ptr.(r) + List.length entries) rows_data;
  let total = row_ptr.(rows) in
  let col_idx = Array.make (max 1 total) 0 in
  let values = Array.make (max 1 total) 0.0 in
  Array.iteri
    (fun r entries ->
      List.iteri
        (fun k (c, v) ->
          col_idx.(row_ptr.(r) + k) <- c;
          values.(row_ptr.(r) + k) <- v)
        entries)
    rows_data;
  { rows; cols; row_ptr; col_idx; values }

let to_rows t : (int * float) list array =
  Array.init t.rows (fun r ->
      List.init
        (t.row_ptr.(r + 1) - t.row_ptr.(r))
        (fun k -> (t.col_idx.(t.row_ptr.(r) + k), t.values.(t.row_ptr.(r) + k))))

let of_ell (e : Ell.t) : t =
  of_rows ~cols:e.Ell.cols
    (Array.init e.Ell.rows (fun r ->
         let acc = ref [] in
         Ell.iter_row e r (fun c v -> acc := (c, v) :: !acc);
         List.rev !acc))

let to_ell (t : t) : Ell.t = Ell.of_rows ~cols:t.cols (to_rows t)

let get t r c =
  let acc = ref 0.0 in
  for k = t.row_ptr.(r) to t.row_ptr.(r + 1) - 1 do
    if t.col_idx.(k) = c then acc := !acc +. t.values.(k)
  done;
  !acc
