lib/pluto/sica.ml: List Poly
