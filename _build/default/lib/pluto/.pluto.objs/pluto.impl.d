lib/pluto/pluto.ml: Ast Cfront List Loc Option Poly Purity Sica Stdlib String Support
