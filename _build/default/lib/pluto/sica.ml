(** The SICA extension: hardware-aware tile sizes and SIMD pragmas
    (Feld et al., paper §2.2/§3.3).

    PluTo-SICA augments PluTo with cache-conscious tiling and vectorization
    hints.  We model the two knobs it turns: a tile-size choice derived from
    the cache capacity, and ivdep/vector-always pragmas on the innermost
    loop so the backend's vector units are used. *)

type cache = { l1_bytes : int; l2_bytes : int; line_bytes : int }

(** The paper's evaluation machine (AMD Opteron 6272): 16 KiB L1D per core,
    2 MiB L2 per module. *)
let opteron_6272 = { l1_bytes = 16 * 1024; l2_bytes = 2 * 1024 * 1024; line_bytes = 64 }

(** Tile sizes for a band of [depth] loops so that the working set of one
    tile (roughly [arrays_touched] arrays of [elem_bytes] elements) fits the
    L1 cache, rounded down to a multiple of the vector width. *)
let cache_aware_tile_sizes ?(cache = opteron_6272) ~elem_bytes ~arrays_touched ~depth ()
    : int list =
  if depth <= 0 then []
  else begin
    let budget = float_of_int cache.l1_bytes /. float_of_int (arrays_touched * elem_bytes) in
    let per_dim = budget ** (1.0 /. float_of_int depth) in
    let vector_width = max 1 (16 / elem_bytes) in
    let ts = max vector_width (int_of_float per_dim / vector_width * vector_width) in
    List.init depth (fun _ -> ts)
  end

(** Codegen options for a SICA run. *)
let options ?(cache = opteron_6272) ~elem_bytes ~arrays_touched ~depth () :
    Poly.Codegen.options =
  {
    Poly.Codegen.tile = true;
    tile_sizes = cache_aware_tile_sizes ~cache ~elem_bytes ~arrays_touched ~depth ();
    vectorize = true;
    parallelize = true;
    schedule_clause = None;
  }
