lib/support/loc.ml: Fmt Int String
