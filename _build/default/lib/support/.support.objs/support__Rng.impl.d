lib/support/rng.ml: Array Float Int64
