lib/support/util.ml: Array Float List String
