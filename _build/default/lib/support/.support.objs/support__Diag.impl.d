lib/support/diag.ml: Fmt List Loc
