(** Source locations for the C front end and diagnostics. *)

type t = {
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 1-based *)
}

let dummy = { file = "<none>"; line = 0; col = 0 }

let make ~file ~line ~col = { file; line; col }

let pp ppf { file; line; col } = Fmt.pf ppf "%s:%d:%d" file line col

let to_string t = Fmt.str "%a" pp t

let compare a b =
  match String.compare a.file b.file with
  | 0 -> ( match Int.compare a.line b.line with 0 -> Int.compare a.col b.col | c -> c)
  | c -> c

let equal a b = compare a b = 0
