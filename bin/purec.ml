(** purec — the pure-C compiler chain as a command-line tool.

    Mirrors the paper's Fig. 1 pipeline on a [.c] file written in the
    supported subset:

    {v
    purec check file.c              verify pure annotations, print diagnostics
    purec compile file.c            run the chain, print the transformed C
    purec run file.c                compile and execute on the instrumented
                                    interpreter; report output and timing
    v}
*)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared arguments *)

let file_arg =
  let doc = "C source file (the supported subset, with pure annotations)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

let mode_arg =
  let doc =
    "Pipeline mode: $(b,pure) (full chain), $(b,seq) (no transformation), \
     $(b,pluto) (polyhedral pass only, manual scop markers), $(b,manual) \
     (hand-written OpenMP pragmas)."
  in
  Arg.(value & opt (enum [ ("pure", `Pure); ("seq", `Seq); ("pluto", `Pluto); ("manual", `Manual) ]) `Pure
       & info [ "m"; "mode" ] ~docv:"MODE" ~doc)

let sica_arg =
  let doc = "Enable the SICA extension (cache-aware tiling + SIMD pragmas)." in
  Arg.(value & flag & info [ "sica" ] ~doc)

let tile_arg =
  let doc = "Tile the permutable band with the given tile size." in
  Arg.(value & opt (some int) None & info [ "tile" ] ~docv:"SIZE" ~doc)

let schedule_arg =
  let doc = "OpenMP schedule clause for generated pragmas, e.g. dynamic,1." in
  Arg.(value & opt (some string) None & info [ "schedule" ] ~docv:"CLAUSE" ~doc)

let cores_arg =
  let doc = "Core counts to simulate (repeatable)." in
  Arg.(value & opt_all int [ 1; 2; 4; 8; 16; 32; 64 ] & info [ "cores" ] ~docv:"N" ~doc)

let backend_arg =
  let doc = "Compiler backend model: gcc or icc." in
  Arg.(value & opt (enum [ ("gcc", Machine.Config.gcc); ("icc", Machine.Config.icc) ])
         Machine.Config.gcc
       & info [ "backend" ] ~docv:"BACKEND" ~doc)

let dump_stages_arg =
  let doc = "Print the source text after each pipeline stage." in
  Arg.(value & flag & info [ "dump-stages" ] ~doc)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let chain_mode mode sica tile schedule =
  let adjust (c : Pluto.config) =
    let c = if sica then { c with Pluto.sica = true; sica_cache = Toolchain.Chain.scaled_sica_cache } else c in
    let c =
      match tile with
      | Some ts -> { c with Pluto.tile = true; tile_sizes = [ ts ] }
      | None -> c
    in
    { c with Pluto.schedule_clause = schedule }
  in
  match mode with
  | `Pure -> Toolchain.Chain.Pure_chain adjust
  | `Seq -> Toolchain.Chain.Sequential
  | `Pluto -> Toolchain.Chain.Plain_pluto adjust
  | `Manual -> Toolchain.Chain.Manual_omp

let report_outcomes (c : Toolchain.Chain.compiled) =
  List.iter
    (fun (o : Pluto.outcome) ->
      match o.Pluto.o_result with
      | Pluto.Transformed { t_units } ->
        List.iter
          (fun (u : Pluto.unit_info) ->
            Fmt.pr "scop at %a: iters [%s], parallel level %s, tiled %d levels%s@."
              Support.Loc.pp o.Pluto.o_loc
              (String.concat ", " u.Pluto.ui_iters)
              (match u.Pluto.ui_parallel with Some l -> string_of_int l | None -> "none")
              u.Pluto.ui_tiled
              (if u.Pluto.ui_identity then "" else " (transformed schedule)"))
          t_units
      | Pluto.Rejected msg -> Fmt.pr "scop at %a: rejected (%s)@." Support.Loc.pp o.Pluto.o_loc msg)
    c.Toolchain.Chain.c_outcomes

(* exit with a code that tells the failure stages apart (see
   {!Toolchain.Chain.classify_errors}): 2 = parse, 3 = purity, 1 = other *)
let handle_compile_error f =
  try f () with
  | Toolchain.Chain.Compile_error diags ->
    List.iter (fun d -> Fmt.epr "%a@." Support.Diag.pp d) diags;
    exit (Toolchain.Chain.classify_errors diags)
  | Support.Diag.Fatal d ->
    Fmt.epr "%a@." Support.Diag.pp d;
    exit (Toolchain.Chain.classify_errors [ d ])

(* ------------------------------------------------------------------ *)
(* check *)

let check_cmd =
  let run file =
    handle_compile_error (fun () ->
        let src = read_file file in
        let reporter = Support.Diag.create_reporter () in
        let stripped = Cpp.Pc_prepro.strip src in
        let env = Cpp.Preproc.create ~reporter () in
        let pre = Cpp.Preproc.run env stripped.Cpp.Pc_prepro.source in
        let prog = Cfront.Parser.program_of_string ~reporter pre in
        let _ = Sema.Typecheck.check_program ~reporter prog in
        let registry = Purity.Purity_check.check_program ~reporter prog in
        let diags = Support.Diag.diagnostics reporter in
        List.iter (fun d -> Fmt.pr "%a@." Support.Diag.pp d) diags;
        let errors = Support.Diag.errors reporter in
        if errors = [] then begin
          Fmt.pr "OK: all pure annotations verified.@.";
          Fmt.pr "pure functions in scope: %s@."
            (String.concat ", " (Purity.Registry.names registry))
        end
        else exit (Toolchain.Chain.classify_errors errors))
  in
  Cmd.v (Cmd.info "check" ~doc:"Verify the purity annotations of a file.")
    Term.(const run $ file_arg)

(* ------------------------------------------------------------------ *)
(* compile *)

let compile_cmd =
  let run file mode sica tile schedule dump =
    handle_compile_error (fun () ->
        let src = read_file file in
        let c = Toolchain.Chain.compile ~mode:(chain_mode mode sica tile schedule) src in
        report_outcomes c;
        if dump then
          List.iter
            (fun (stage, text) -> Fmt.pr "@.===== stage %s =====@.%s@." stage text)
            c.Toolchain.Chain.c_stage_sources
        else Fmt.pr "%s@." c.Toolchain.Chain.c_emitted)
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Run the source-to-source chain and print the result.")
    Term.(const run $ file_arg $ mode_arg $ sica_arg $ tile_arg $ schedule_arg $ dump_stages_arg)

(* ------------------------------------------------------------------ *)
(* run *)

let run_cmd =
  let run file mode sica tile schedule cores backend =
    handle_compile_error (fun () ->
        let src = read_file file in
        let c = Toolchain.Chain.compile ~mode:(chain_mode mode sica tile schedule) src in
        report_outcomes c;
        let profile = Toolchain.Chain.execute c in
        Fmt.pr "--- program output ---@.%s--- end output ---@." profile.Interp.Trace.output;
        Fmt.pr "exit code: %d@." profile.Interp.Trace.return_code;
        Fmt.pr "parallel regions executed: %d@."
          (Interp.Trace.n_parallel_segments profile);
        let cost = Interp.Trace.total_cost profile in
        Fmt.pr "dynamic ops: %d (flops %d, loads %d, stores %d, calls %d)@."
          (Interp.Cost.total_ops cost) (Interp.Cost.total_flops cost) cost.Interp.Cost.loads
          cost.Interp.Cost.stores cost.Interp.Cost.calls;
        Fmt.pr "simulated %s timing:@." backend.Machine.Config.b_name;
        List.iter
          (fun n ->
            let r = Machine.Model.simulate ~backend ~n profile in
            Fmt.pr "  %2d cores: %10.6f s@." n r.Machine.Model.r_seconds)
          cores)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Compile, execute, and simulate timings on the modeled machine.")
    Term.(const run $ file_arg $ mode_arg $ sica_arg $ tile_arg $ schedule_arg $ cores_arg $ backend_arg)

(* ------------------------------------------------------------------ *)
(* fuzz *)

let fuzz_cmd =
  let seed_arg =
    let doc = "Base seed; program $(i,i) of the campaign uses seed + i." in
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc)
  in
  let count_arg =
    let doc = "Number of random programs to generate and cross-check." in
    Arg.(value & opt int 100 & info [ "count" ] ~docv:"K" ~doc)
  in
  let inject_arg =
    let doc =
      "Fault injection: disable the polyhedral legality check (forces an \
       arbitrary loop permutation).  The oracle is expected to catch the \
       resulting miscompiles; used to validate the oracle itself."
    in
    Arg.(value & flag & info [ "inject-illegal" ] ~doc)
  in
  let dump_arg =
    let doc = "Print every generated program before checking it." in
    Arg.(value & flag & info [ "dump" ] ~doc)
  in
  let no_shrink_arg =
    let doc = "Skip minimizing failing programs." in
    Arg.(value & flag & info [ "no-shrink" ] ~doc)
  in
  let run seed count inject dump no_shrink =
    let checked = ref 0 in
    let on_case (case : Fuzzgen.Fuzz.case_result) =
      incr checked;
      if dump then
        Fmt.pr "===== seed %d =====@.%s@." case.Fuzzgen.Fuzz.c_seed case.Fuzzgen.Fuzz.c_source;
      if not (Fuzzgen.Oracle.passed case.Fuzzgen.Fuzz.c_report) then begin
        Fmt.pr "seed %d: FAILED (replay: purec fuzz --seed %d --count 1%s)@."
          case.Fuzzgen.Fuzz.c_seed case.Fuzzgen.Fuzz.c_seed
          (if inject then " --inject-illegal" else "");
        List.iter
          (fun f -> Fmt.pr "  %s@." (Fuzzgen.Oracle.describe f))
          case.Fuzzgen.Fuzz.c_report.Fuzzgen.Oracle.r_failures;
        match case.Fuzzgen.Fuzz.c_shrunk with
        | Some src -> Fmt.pr "--- minimized reproducer ---@.%s@." src
        | None -> ()
      end
    in
    match
      Fuzzgen.Fuzz.campaign ~inject ~shrink:(not no_shrink) ~on_case ~seed ~count ()
    with
    | result ->
      let nfail = List.length result.Fuzzgen.Fuzz.k_failed in
      Fmt.pr "fuzz: %d programs, %d configurations each, %d mismatches@." result.Fuzzgen.Fuzz.k_count
        result.Fuzzgen.Fuzz.k_configs nfail;
      if nfail > 0 then exit Toolchain.Chain.exit_fuzz_mismatch
    | exception Fuzzgen.Fuzz.Roundtrip_error msg ->
      Fmt.epr "fuzz: internal round-trip failure after %d programs: %s@." !checked msg;
      exit Toolchain.Chain.exit_error
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: generate random pure-C programs and check \
          every pipeline configuration against the sequential baseline.")
    Term.(const run $ seed_arg $ count_arg $ inject_arg $ dump_arg $ no_shrink_arg)

(* ------------------------------------------------------------------ *)

let () =
  let doc = "the pure-C automatic parallelization chain (paper reproduction)" in
  let info = Cmd.info "purec" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ check_cmd; compile_cmd; run_cmd; fuzz_cmd ]))
