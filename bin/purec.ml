(** purec — the pure-C compiler chain as a command-line tool.

    Mirrors the paper's Fig. 1 pipeline on a [.c] file written in the
    supported subset:

    {v
    purec check file.c              verify pure annotations, print diagnostics
    purec compile file.c            run the chain, print the transformed C
    purec run file.c                compile and execute on the instrumented
                                    interpreter; report output and timing
    purec serve                     persistent daemon: JSONL requests on
                                    stdin, one JSON reply per line on stdout
    v}

    The printing for compile/run/racecheck lives in {!Toolchain.Chain}
    ([pp_compile_result], [pp_run_report], [racecheck_report]) and the fuzz
    report in {!Serve.Driver.fuzz_campaign}; this file only parses flags
    and points the shared drivers at stdout.  [purec serve] replies are
    byte-identical to the one-shot commands because both run exactly that
    code. *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared arguments *)

let file_arg =
  let doc = "C source file (the supported subset, with pure annotations)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

let mode_arg =
  let doc =
    "Pipeline mode: $(b,pure) (full chain), $(b,seq) (no transformation), \
     $(b,pluto) (polyhedral pass only, manual scop markers), $(b,manual) \
     (hand-written OpenMP pragmas)."
  in
  Arg.(value & opt (enum [ ("pure", `Pure); ("seq", `Seq); ("pluto", `Pluto); ("manual", `Manual) ]) `Pure
       & info [ "m"; "mode" ] ~docv:"MODE" ~doc)

let sica_arg =
  let doc = "Enable the SICA extension (cache-aware tiling + SIMD pragmas)." in
  Arg.(value & flag & info [ "sica" ] ~doc)

let tile_arg =
  let doc = "Tile the permutable band with the given tile size." in
  Arg.(value & opt (some int) None & info [ "tile" ] ~docv:"SIZE" ~doc)

let schedule_arg =
  let doc = "OpenMP schedule clause for generated pragmas, e.g. dynamic,1." in
  Arg.(value & opt (some string) None & info [ "schedule" ] ~docv:"CLAUSE" ~doc)

let cores_arg =
  let doc = "Core counts to simulate (repeatable)." in
  Arg.(value & opt_all int [ 1; 2; 4; 8; 16; 32; 64 ] & info [ "cores" ] ~docv:"N" ~doc)

let backend_arg =
  let doc = "Compiler backend model: gcc or icc." in
  Arg.(value & opt (enum [ ("gcc", Machine.Config.gcc); ("icc", Machine.Config.icc) ])
         Machine.Config.gcc
       & info [ "backend" ] ~docv:"BACKEND" ~doc)

let dump_stages_arg =
  let doc = "Print the source text after each pipeline stage." in
  Arg.(value & flag & info [ "dump-stages" ] ~doc)

let tile_grain_arg =
  let doc =
    "Dispatch tiled/skewed multi-loop nests at tile granularity: whole \
     tiles become pool jobs and traced runs carry nested tile/point \
     segment structure.  $(b,false) reverts to the coarse behaviour (only \
     single-statement canonical bodies parallelize, traces stay flat)."
  in
  Arg.(value & opt bool true & info [ "tile-grain" ] ~docv:"BOOL" ~doc)

let inspector_arg =
  let doc =
    "Runtime-checked parallelization of index-array gathers (inspector/\
     executor).  When a nest fails dependence analysis only because a \
     subscript goes through an index array, an inspector probes the \
     iterations' write/read footprints at runtime and dispatches the \
     parallel executor when they are pairwise disjoint (sequential \
     fallback otherwise).  $(b,false) rejects such nests as before."
  in
  Arg.(value & opt bool true & info [ "inspector" ] ~docv:"BOOL" ~doc)

let jobs_arg =
  let doc =
    "OCaml domains to fan work across.  Defaults to $(b,PUREC_JOBS) when \
     set, else the machine's recommended domain count minus one.  Results \
     are bit-identical to $(b,--jobs 1) (work lands in per-job slots and \
     is reported in order)."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let resolve_jobs = function
  | Some n -> max 1 n
  | None -> Runtime.Pool.default_jobs ()

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let make_spec ?(inspector = true) mode sica tile schedule =
  {
    Toolchain.Chain.ms_mode = mode;
    ms_sica = sica;
    ms_tile = tile;
    ms_schedule = schedule;
    ms_inject = false;
    ms_inspector = inspector;
  }

(* exit with a code that tells the failure stages apart (see
   {!Toolchain.Chain.classify_errors}): 2 = parse, 3 = purity, 1 = other *)
let handle_compile_error f =
  try f () with
  | Toolchain.Chain.Compile_error diags ->
    List.iter (fun d -> Fmt.epr "%a@." Support.Diag.pp d) diags;
    exit (Toolchain.Chain.classify_errors diags)
  | Support.Diag.Fatal d ->
    Fmt.epr "%a@." Support.Diag.pp d;
    exit (Toolchain.Chain.classify_errors [ d ])

(* ------------------------------------------------------------------ *)
(* check *)

let check_cmd =
  let run file =
    handle_compile_error (fun () ->
        let src = read_file file in
        let reporter = Support.Diag.create_reporter () in
        let stripped = Cpp.Pc_prepro.strip src in
        let env = Cpp.Preproc.create ~reporter () in
        let pre = Cpp.Preproc.run env stripped.Cpp.Pc_prepro.source in
        let prog = Cfront.Parser.program_of_string ~reporter pre in
        let _ = Sema.Typecheck.check_program ~reporter prog in
        let registry = Purity.Purity_check.check_program ~reporter prog in
        let diags = Support.Diag.diagnostics reporter in
        List.iter (fun d -> Fmt.pr "%a@." Support.Diag.pp d) diags;
        let errors = Support.Diag.errors reporter in
        if errors = [] then begin
          Fmt.pr "OK: all pure annotations verified.@.";
          Fmt.pr "pure functions in scope: %s@."
            (String.concat ", " (Purity.Registry.names registry))
        end
        else exit (Toolchain.Chain.classify_errors errors))
  in
  Cmd.v (Cmd.info "check" ~doc:"Verify the purity annotations of a file.")
    Term.(const run $ file_arg)

(* ------------------------------------------------------------------ *)
(* compile *)

let compile_cmd =
  let run file mode sica tile schedule inspector dump =
    handle_compile_error (fun () ->
        let src = read_file file in
        let spec = make_spec ~inspector mode sica tile schedule in
        let c = Toolchain.Chain.compile ~mode:(Toolchain.Chain.mode_of_spec spec) src in
        Toolchain.Chain.pp_compile_result Fmt.stdout ~dump c)
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Run the source-to-source chain and print the result.")
    Term.(
      const run $ file_arg $ mode_arg $ sica_arg $ tile_arg $ schedule_arg
      $ inspector_arg $ dump_stages_arg)

(* ------------------------------------------------------------------ *)
(* run *)

let run_cmd =
  let run_jobs_arg =
    (* [run] defaults to sequential: the simulated cost counters are only
       deterministic without real parallel execution (per-domain cache
       simulators; cf. DESIGN.md §8), so domains are strictly opt-in here *)
    let doc =
      "Execute parallelized loops for real on N OCaml domains (program \
       output stays bit-identical; measured wall time goes to stderr).  \
       Default 1: sequential, fully deterministic cost model."
    in
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let no_model_arg =
    let doc =
      "Skip the machine model: execute on the uninstrumented fast variant \
       (typed unboxed closures, no cost counters, no cache simulation).  \
       Program output, exit code and faults are byte-identical to the \
       instrumented run; the dynamic-ops and simulated-timing sections are \
       omitted.  An order of magnitude faster — the right mode when only \
       the program's result is wanted."
    in
    Arg.(value & flag & info [ "no-model" ] ~doc)
  in
  let run file mode sica tile schedule inspector cores backend jobs tile_grain no_model
      =
    handle_compile_error (fun () ->
        let src = read_file file in
        let spec = make_spec ~inspector mode sica tile schedule in
        let c = Toolchain.Chain.compile ~mode:(Toolchain.Chain.mode_of_spec spec) src in
        Toolchain.Chain.pp_outcomes Fmt.stdout c;
        let profile =
          if jobs > 1 then begin
            let pool = Runtime.Pool.create jobs in
            Fun.protect
              ~finally:(fun () -> Runtime.Pool.shutdown pool)
              (fun () ->
                let t0 = Unix.gettimeofday () in
                let p = Toolchain.Chain.execute ~no_model ~tile_grain ~pool c in
                let t1 = Unix.gettimeofday () in
                Fmt.epr "run: %d worker domains, %.6f s wall@."
                  (Runtime.Pool.size pool) (t1 -. t0);
                p)
          end
          else Toolchain.Chain.execute ~no_model ~tile_grain c
        in
        Toolchain.Chain.pp_run_report Fmt.stdout ~model:(not no_model) ~cores ~backend
          profile)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Compile, execute, and simulate timings on the modeled machine.")
    Term.(
      const run $ file_arg $ mode_arg $ sica_arg $ tile_arg $ schedule_arg
      $ inspector_arg $ cores_arg $ backend_arg $ run_jobs_arg $ tile_grain_arg
      $ no_model_arg)

(* ------------------------------------------------------------------ *)
(* racecheck *)

let racecheck_cmd =
  let file_arg =
    let doc =
      "C source file to racecheck.  Omit it and pass $(b,--workload) to \
       check built-in workloads instead."
    in
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let workload_arg =
    let doc =
      "Built-in workload to racecheck (repeatable): one of the four \
       applications ($(b,matmul), $(b,heat), $(b,satellite), $(b,lama)), a \
       gallery kernel by name, $(b,kernels) (every gallery kernel), or \
       $(b,all)."
    in
    Arg.(value & opt_all string [] & info [ "workload" ] ~docv:"NAME" ~doc)
  in
  let rc_cores_arg =
    let doc = "Thread counts to replay the plan at (repeatable; default 1 4 16 64)." in
    Arg.(value & opt_all int [] & info [ "cores" ] ~docv:"N" ~doc)
  in
  let rc_sched_arg =
    let doc =
      "Worksharing schedule to replay (repeatable): $(b,static), \
       $(b,static,C) or $(b,dynamic,C).  Default: all three."
    in
    Arg.(value & opt_all string [] & info [ "schedule" ] ~docv:"CLAUSE" ~doc)
  in
  let inject_arg =
    let doc =
      "Fault injection: disable the polyhedral legality check (forces an \
       arbitrary loop permutation).  The race detector is expected to catch \
       the resulting races; used to validate the detector itself."
    in
    Arg.(value & flag & info [ "inject-illegal" ] ~doc)
  in
  let engine_arg =
    let doc =
      "Race engine(s) to run: $(b,hb) (vector-clock happens-before replay), \
       $(b,lockset) (Eraser-style lockset discipline), or $(b,both) \
       (run both and cross-check their verdicts; a disagreement is a hard \
       failure)."
    in
    Arg.(value & opt string "both" & info [ "engine" ] ~docv:"ENGINE" ~doc)
  in
  (* a workload supplies its own scop markers → plain PluTo; otherwise the
     full pure chain marks scops itself (same rule as the test suite).
     [--tile]/[--sica] apply to workloads too, so the gallery can be
     racechecked under tiled/skewed schedules. *)
  let workload_mode ~inject ~sica ~tile ~inspector source =
    let adjust (c : Pluto.config) =
      let c =
        if sica then
          { c with Pluto.sica = true; sica_cache = Toolchain.Chain.scaled_sica_cache }
        else c
      in
      let c =
        match tile with
        | Some ts -> { c with Pluto.tile = true; tile_sizes = [ ts ] }
        | None -> c
      in
      let c = { c with Pluto.inspector } in
      if inject then { c with Pluto.unsafe_no_legality = true } else c
    in
    if Support.Util.string_contains ~needle:"#pragma scop" source then
      Toolchain.Chain.Plain_pluto adjust
    else Toolchain.Chain.Pure_chain adjust
  in
  let workload_targets names =
    let scale = Toolchain.Figures.test_scale in
    let apps =
      [
        ("matmul", Workloads.Matmul.pure_source ~n:scale.Toolchain.Figures.matmul_n ());
        ( "heat",
          Workloads.Heat.pure_source ~n:scale.Toolchain.Figures.heat_n
            ~t:scale.Toolchain.Figures.heat_t () );
        ( "satellite",
          Workloads.Satellite.pure_source ~w:scale.Toolchain.Figures.sat_w
            ~h:scale.Toolchain.Figures.sat_h ~bands:scale.Toolchain.Figures.sat_bands () );
        ( "lama",
          Workloads.Lama_app.pure_source ~rows:scale.Toolchain.Figures.lama_rows
            ~maxnnz:scale.Toolchain.Figures.lama_maxnnz
            ~reps:scale.Toolchain.Figures.lama_reps () );
        ( "lama-inspector",
          Workloads.Lama_app.inspector_source ~rows:scale.Toolchain.Figures.lama_rows
            ~maxnnz:scale.Toolchain.Figures.lama_maxnnz
            ~reps:scale.Toolchain.Figures.lama_reps () );
      ]
    in
    let resolve name =
      match List.assoc_opt name apps with
      | Some src -> [ (name, src) ]
      | None -> (
        match Workloads.Kernels.find name with
        | Some k -> [ (name, k.Workloads.Kernels.k_source) ]
        | None ->
          Fmt.epr "racecheck: unknown workload %s (try: %s, or a kernel: %s)@." name
            (String.concat ", " (List.map fst apps))
            (String.concat ", "
               (List.map (fun k -> k.Workloads.Kernels.k_name) Workloads.Kernels.all));
          exit Toolchain.Chain.exit_error)
    in
    let kernels =
      List.map
        (fun k -> (k.Workloads.Kernels.k_name, k.Workloads.Kernels.k_source))
        Workloads.Kernels.all
    in
    List.concat_map
      (fun name ->
        if name = "all" then apps @ kernels
        else if name = "kernels" then kernels
        else resolve name)
      names
  in
  (* [--schedule] here selects the replay plans; the pragma clause the
     compiler would emit is irrelevant because the replay matrix covers
     every clause anyway *)
  let run file workloads cores scheds inject engine_s mode sica tile inspector jobs
      tile_grain =
    let engine =
      match Racecheck.engine_choice_of_string engine_s with
      | Ok e -> e
      | Error msg ->
        Fmt.epr "racecheck: %s@." msg;
        exit Toolchain.Chain.exit_error
    in
    let cores = if cores = [] then Racecheck.default_cores else cores in
    let schedules =
      if scheds = [] then Racecheck.default_schedules
      else
        List.map
          (fun s ->
            match Racecheck.schedule_of_string s with
            | Ok sched -> sched
            | Error msg ->
              Fmt.epr "racecheck: %s@." msg;
              exit Toolchain.Chain.exit_error)
          scheds
    in
    let targets =
      match (file, workloads) with
      | None, [] ->
        Fmt.epr "racecheck: give a FILE or at least one --workload@.";
        exit Toolchain.Chain.exit_error
      | _ ->
        (match file with Some f -> [ (f, `File (read_file f)) ] | None -> [])
        @ List.map (fun (n, s) -> (n, `Workload s)) (workload_targets workloads)
    in
    (* one target = one unit of campaign work; everything it would print is
       buffered so targets can be checked on worker domains and the report
       replayed in target order — stdout is byte-identical for every --jobs *)
    let check_target (name, target) =
      let buf = Buffer.create 256 in
      let ppf = Format.formatter_of_buffer buf in
      try
        let source, chosen_mode =
          match target with
          | `File src ->
            ( src,
              Toolchain.Chain.mode_of_spec
                { (make_spec ~inspector mode sica tile None) with ms_inject = inject }
            )
          | `Workload src -> (src, workload_mode ~inject ~sica ~tile ~inspector src)
        in
        let racy =
          Toolchain.Chain.racecheck_report ppf ~name ~engine ~schedules ~cores ~tile_grain
            ~inject ~mode:chosen_mode source
        in
        Format.pp_print_flush ppf ();
        (Buffer.contents buf, "", racy, None)
      with
      | Toolchain.Chain.Compile_error diags ->
        Format.pp_print_flush ppf ();
        ( Buffer.contents buf,
          String.concat "" (List.map (fun d -> Fmt.str "%a@." Support.Diag.pp d) diags),
          false,
          Some (Toolchain.Chain.classify_errors diags) )
      | Support.Diag.Fatal d ->
        Format.pp_print_flush ppf ();
        ( Buffer.contents buf,
          Fmt.str "%a@." Support.Diag.pp d,
          false,
          Some (Toolchain.Chain.classify_errors [ d ]) )
    in
    let tarr = Array.of_list targets in
    let n = Array.length tarr in
    let jobs = min (resolve_jobs jobs) (max 1 n) in
    Fmt.epr "racecheck: %d domain(s), %d target(s)@." jobs n;
    let outcomes = Array.make n None in
    let fill i = outcomes.(i) <- Some (check_target tarr.(i)) in
    if jobs <= 1 then
      for i = 0 to n - 1 do
        fill i
      done
    else begin
      let pool = Runtime.Pool.create jobs in
      Fun.protect
        ~finally:(fun () -> Runtime.Pool.shutdown pool)
        (fun () ->
          Runtime.Par_loop.parallel_for pool ~schedule:(Runtime.Par_loop.Dynamic 1)
            ~lo:0 ~hi:n fill)
    end;
    (* replay in target order; a compile error stops the report exactly
       where the sequential loop would have stopped *)
    let racy = ref 0 in
    Array.iter
      (function
        | None -> ()
        | Some (out, err, was_racy, code) -> (
          print_string out;
          if was_racy then incr racy;
          match code with
          | Some code ->
            flush stdout;
            prerr_string err;
            exit code
          | None -> ()))
      outcomes;
    if !racy > 0 then exit Toolchain.Chain.exit_race
  in
  Cmd.v
    (Cmd.info "racecheck"
       ~doc:
         "Shadow-verify parallelized loops: replay the interpreter's access \
          log under every worksharing plan with a happens-before race \
          detector and an Eraser-style lockset engine, cross-checking their \
          verdicts.  Exits 5 if any plan races or the engines disagree.")
    Term.(
      const run $ file_arg $ workload_arg $ rc_cores_arg $ rc_sched_arg $ inject_arg
      $ engine_arg $ mode_arg $ sica_arg $ tile_arg $ inspector_arg $ jobs_arg
      $ tile_grain_arg)

(* ------------------------------------------------------------------ *)
(* fuzz *)

let fuzz_cmd =
  let seed_arg =
    let doc = "Base seed; program $(i,i) of the campaign uses seed + i." in
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc)
  in
  let count_arg =
    let doc = "Number of random programs to generate and cross-check." in
    Arg.(value & opt int 100 & info [ "count" ] ~docv:"K" ~doc)
  in
  let inject_arg =
    let doc =
      "Fault injection: disable the polyhedral legality check (forces an \
       arbitrary loop permutation).  The oracle is expected to catch the \
       resulting miscompiles; used to validate the oracle itself."
    in
    Arg.(value & flag & info [ "inject-illegal" ] ~doc)
  in
  let dump_arg =
    let doc = "Print every generated program before checking it." in
    Arg.(value & flag & info [ "dump" ] ~doc)
  in
  let no_shrink_arg =
    let doc = "Skip minimizing failing programs." in
    Arg.(value & flag & info [ "no-shrink" ] ~doc)
  in
  let racecheck_arg =
    let doc =
      "Add both dynamic race engines (happens-before and lockset, \
       cross-checked) as a second oracle stage: every transformed \
       configuration must replay race-free under all plans, checked before \
       outputs are compared."
    in
    Arg.(value & flag & info [ "racecheck" ] ~doc)
  in
  let run seed count inject racecheck dump no_shrink jobs =
    let jobs = resolve_jobs jobs in
    (* stderr, so the campaign report on stdout stays identical across --jobs *)
    Fmt.epr "fuzz: %d domain(s)@." jobs;
    match
      Serve.Driver.fuzz_campaign Fmt.stdout ~seed ~count ~inject ~racecheck ~dump
        ~shrink:(not no_shrink) ~jobs
    with
    | code -> if code <> Toolchain.Chain.exit_ok then exit code
    | exception Fuzzgen.Fuzz.Roundtrip_error msg ->
      Fmt.epr "fuzz: internal round-trip failure: %s@." msg;
      exit Toolchain.Chain.exit_error
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: generate random pure-C programs and check \
          every pipeline configuration against the sequential baseline.")
    Term.(
      const run $ seed_arg $ count_arg $ inject_arg $ racecheck_arg $ dump_arg
      $ no_shrink_arg $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* serve *)

let serve_cmd =
  let queue_depth_arg =
    let doc =
      "Bounded request-queue capacity (back-pressure): requests arriving \
       while the queue is full get an immediate $(b,busy) reply instead of \
       queueing without limit."
    in
    Arg.(value & opt int 64 & info [ "queue-depth" ] ~docv:"K" ~doc)
  in
  let batch_arg =
    let doc =
      "Batch mode: instead of serving stdin, fan the given files across \
       the pool as one batch request (repeatable), print the reply, and \
       exit with the aggregate status."
    in
    Arg.(value & opt_all file [] & info [ "batch" ] ~docv:"FILE" ~doc)
  in
  let run jobs queue_depth batch_files =
    let jobs = resolve_jobs jobs in
    let t = Serve.Server.create ~jobs ~queue_depth () in
    Fun.protect
      ~finally:(fun () -> Serve.Server.shutdown t)
      (fun () ->
        match batch_files with
        | [] -> Serve.Server.stdio t
        | files ->
          let line =
            Serve.Protocol.(
              to_string
                (Obj
                   [
                     ("id", Str "batch");
                     ("cmd", Str "batch");
                     ("files", Arr (List.map (fun f -> Str f) files));
                   ]))
          in
          let replies = Serve.Server.run_script t [ line ] in
          List.iter print_endline replies;
          let code =
            match replies with
            | [ reply ] -> (
              match
                Serve.Protocol.(field (of_string reply) "exit")
              with
              | Some (Serve.Protocol.Int code) -> code
              | _ -> Toolchain.Chain.exit_error)
            | _ -> Toolchain.Chain.exit_error
          in
          if code <> 0 then exit code)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Persistent compile-and-run daemon: read JSONL requests \
          ($(b,compile), $(b,run), $(b,racecheck), $(b,fuzz), $(b,batch), \
          $(b,stats)) from stdin, answer one JSON reply per line on stdout, \
          keeping one domain pool and warm caches across all requests.")
    Term.(const run $ jobs_arg $ queue_depth_arg $ batch_arg)

(* ------------------------------------------------------------------ *)

let () =
  let doc = "the pure-C automatic parallelization chain (paper reproduction)" in
  let info = Cmd.info "purec" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info [ check_cmd; compile_cmd; run_cmd; racecheck_cmd; fuzz_cmd; serve_cmd ]))
