(** purec — the pure-C compiler chain as a command-line tool.

    Mirrors the paper's Fig. 1 pipeline on a [.c] file written in the
    supported subset:

    {v
    purec check file.c              verify pure annotations, print diagnostics
    purec compile file.c            run the chain, print the transformed C
    purec run file.c                compile and execute on the instrumented
                                    interpreter; report output and timing
    v}
*)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared arguments *)

let file_arg =
  let doc = "C source file (the supported subset, with pure annotations)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

let mode_arg =
  let doc =
    "Pipeline mode: $(b,pure) (full chain), $(b,seq) (no transformation), \
     $(b,pluto) (polyhedral pass only, manual scop markers), $(b,manual) \
     (hand-written OpenMP pragmas)."
  in
  Arg.(value & opt (enum [ ("pure", `Pure); ("seq", `Seq); ("pluto", `Pluto); ("manual", `Manual) ]) `Pure
       & info [ "m"; "mode" ] ~docv:"MODE" ~doc)

let sica_arg =
  let doc = "Enable the SICA extension (cache-aware tiling + SIMD pragmas)." in
  Arg.(value & flag & info [ "sica" ] ~doc)

let tile_arg =
  let doc = "Tile the permutable band with the given tile size." in
  Arg.(value & opt (some int) None & info [ "tile" ] ~docv:"SIZE" ~doc)

let schedule_arg =
  let doc = "OpenMP schedule clause for generated pragmas, e.g. dynamic,1." in
  Arg.(value & opt (some string) None & info [ "schedule" ] ~docv:"CLAUSE" ~doc)

let cores_arg =
  let doc = "Core counts to simulate (repeatable)." in
  Arg.(value & opt_all int [ 1; 2; 4; 8; 16; 32; 64 ] & info [ "cores" ] ~docv:"N" ~doc)

let backend_arg =
  let doc = "Compiler backend model: gcc or icc." in
  Arg.(value & opt (enum [ ("gcc", Machine.Config.gcc); ("icc", Machine.Config.icc) ])
         Machine.Config.gcc
       & info [ "backend" ] ~docv:"BACKEND" ~doc)

let dump_stages_arg =
  let doc = "Print the source text after each pipeline stage." in
  Arg.(value & flag & info [ "dump-stages" ] ~doc)

let tile_grain_arg =
  let doc =
    "Dispatch tiled/skewed multi-loop nests at tile granularity: whole \
     tiles become pool jobs and traced runs carry nested tile/point \
     segment structure.  $(b,false) reverts to the coarse behaviour (only \
     single-statement canonical bodies parallelize, traces stay flat)."
  in
  Arg.(value & opt bool true & info [ "tile-grain" ] ~docv:"BOOL" ~doc)

let jobs_arg =
  let doc =
    "OCaml domains to fan work across.  Defaults to $(b,PUREC_JOBS) when \
     set, else the machine's recommended domain count minus one.  Results \
     are bit-identical to $(b,--jobs 1) (work lands in per-job slots and \
     is reported in order)."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let resolve_jobs = function
  | Some n -> max 1 n
  | None -> Runtime.Pool.default_jobs ()

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let chain_mode mode sica tile schedule =
  let adjust (c : Pluto.config) =
    let c = if sica then { c with Pluto.sica = true; sica_cache = Toolchain.Chain.scaled_sica_cache } else c in
    let c =
      match tile with
      | Some ts -> { c with Pluto.tile = true; tile_sizes = [ ts ] }
      | None -> c
    in
    { c with Pluto.schedule_clause = schedule }
  in
  match mode with
  | `Pure -> Toolchain.Chain.Pure_chain adjust
  | `Seq -> Toolchain.Chain.Sequential
  | `Pluto -> Toolchain.Chain.Plain_pluto adjust
  | `Manual -> Toolchain.Chain.Manual_omp

let report_outcomes (c : Toolchain.Chain.compiled) =
  List.iter
    (fun (o : Pluto.outcome) ->
      match o.Pluto.o_result with
      | Pluto.Transformed { t_units } ->
        List.iter
          (fun (u : Pluto.unit_info) ->
            Fmt.pr "scop at %a: iters [%s], parallel level %s, tiled %d levels%s@."
              Support.Loc.pp o.Pluto.o_loc
              (String.concat ", " u.Pluto.ui_iters)
              (match u.Pluto.ui_parallel with Some l -> string_of_int l | None -> "none")
              u.Pluto.ui_tiled
              (if u.Pluto.ui_identity then "" else " (transformed schedule)"))
          t_units
      | Pluto.Rejected msg -> Fmt.pr "scop at %a: rejected (%s)@." Support.Loc.pp o.Pluto.o_loc msg)
    c.Toolchain.Chain.c_outcomes

(* exit with a code that tells the failure stages apart (see
   {!Toolchain.Chain.classify_errors}): 2 = parse, 3 = purity, 1 = other *)
let handle_compile_error f =
  try f () with
  | Toolchain.Chain.Compile_error diags ->
    List.iter (fun d -> Fmt.epr "%a@." Support.Diag.pp d) diags;
    exit (Toolchain.Chain.classify_errors diags)
  | Support.Diag.Fatal d ->
    Fmt.epr "%a@." Support.Diag.pp d;
    exit (Toolchain.Chain.classify_errors [ d ])

(* ------------------------------------------------------------------ *)
(* check *)

let check_cmd =
  let run file =
    handle_compile_error (fun () ->
        let src = read_file file in
        let reporter = Support.Diag.create_reporter () in
        let stripped = Cpp.Pc_prepro.strip src in
        let env = Cpp.Preproc.create ~reporter () in
        let pre = Cpp.Preproc.run env stripped.Cpp.Pc_prepro.source in
        let prog = Cfront.Parser.program_of_string ~reporter pre in
        let _ = Sema.Typecheck.check_program ~reporter prog in
        let registry = Purity.Purity_check.check_program ~reporter prog in
        let diags = Support.Diag.diagnostics reporter in
        List.iter (fun d -> Fmt.pr "%a@." Support.Diag.pp d) diags;
        let errors = Support.Diag.errors reporter in
        if errors = [] then begin
          Fmt.pr "OK: all pure annotations verified.@.";
          Fmt.pr "pure functions in scope: %s@."
            (String.concat ", " (Purity.Registry.names registry))
        end
        else exit (Toolchain.Chain.classify_errors errors))
  in
  Cmd.v (Cmd.info "check" ~doc:"Verify the purity annotations of a file.")
    Term.(const run $ file_arg)

(* ------------------------------------------------------------------ *)
(* compile *)

let compile_cmd =
  let run file mode sica tile schedule dump =
    handle_compile_error (fun () ->
        let src = read_file file in
        let c = Toolchain.Chain.compile ~mode:(chain_mode mode sica tile schedule) src in
        report_outcomes c;
        if dump then
          List.iter
            (fun (stage, text) -> Fmt.pr "@.===== stage %s =====@.%s@." stage text)
            c.Toolchain.Chain.c_stage_sources
        else Fmt.pr "%s@." c.Toolchain.Chain.c_emitted)
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Run the source-to-source chain and print the result.")
    Term.(const run $ file_arg $ mode_arg $ sica_arg $ tile_arg $ schedule_arg $ dump_stages_arg)

(* ------------------------------------------------------------------ *)
(* run *)

let run_cmd =
  let run_jobs_arg =
    (* [run] defaults to sequential: the simulated cost counters are only
       deterministic without real parallel execution (per-domain cache
       simulators; cf. DESIGN.md §8), so domains are strictly opt-in here *)
    let doc =
      "Execute parallelized loops for real on N OCaml domains (program \
       output stays bit-identical; measured wall time goes to stderr).  \
       Default 1: sequential, fully deterministic cost model."
    in
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let run file mode sica tile schedule cores backend jobs tile_grain =
    handle_compile_error (fun () ->
        let src = read_file file in
        let c = Toolchain.Chain.compile ~mode:(chain_mode mode sica tile schedule) src in
        report_outcomes c;
        let profile =
          if jobs > 1 then begin
            let pool = Runtime.Pool.create jobs in
            Fun.protect
              ~finally:(fun () -> Runtime.Pool.shutdown pool)
              (fun () ->
                let t0 = Unix.gettimeofday () in
                let p = Toolchain.Chain.execute ~tile_grain ~pool c in
                let t1 = Unix.gettimeofday () in
                Fmt.epr "run: %d worker domains, %.6f s wall@."
                  (Runtime.Pool.size pool) (t1 -. t0);
                p)
          end
          else Toolchain.Chain.execute ~tile_grain c
        in
        Fmt.pr "--- program output ---@.%s--- end output ---@." profile.Interp.Trace.output;
        Fmt.pr "exit code: %d@." profile.Interp.Trace.return_code;
        Fmt.pr "parallel regions executed: %d@."
          (Interp.Trace.n_parallel_segments profile);
        let cost = Interp.Trace.total_cost profile in
        Fmt.pr "dynamic ops: %d (flops %d, loads %d, stores %d, calls %d)@."
          (Interp.Cost.total_ops cost) (Interp.Cost.total_flops cost) cost.Interp.Cost.loads
          cost.Interp.Cost.stores cost.Interp.Cost.calls;
        Fmt.pr "simulated %s timing:@." backend.Machine.Config.b_name;
        List.iter
          (fun n ->
            let r = Machine.Model.simulate ~backend ~n profile in
            Fmt.pr "  %2d cores: %10.6f s@." n r.Machine.Model.r_seconds)
          cores)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Compile, execute, and simulate timings on the modeled machine.")
    Term.(
      const run $ file_arg $ mode_arg $ sica_arg $ tile_arg $ schedule_arg $ cores_arg
      $ backend_arg $ run_jobs_arg $ tile_grain_arg)

(* ------------------------------------------------------------------ *)
(* racecheck *)

let racecheck_cmd =
  let file_arg =
    let doc =
      "C source file to racecheck.  Omit it and pass $(b,--workload) to \
       check built-in workloads instead."
    in
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let workload_arg =
    let doc =
      "Built-in workload to racecheck (repeatable): one of the four \
       applications ($(b,matmul), $(b,heat), $(b,satellite), $(b,lama)), a \
       gallery kernel by name, $(b,kernels) (every gallery kernel), or \
       $(b,all)."
    in
    Arg.(value & opt_all string [] & info [ "workload" ] ~docv:"NAME" ~doc)
  in
  let rc_cores_arg =
    let doc = "Thread counts to replay the plan at (repeatable; default 1 4 16 64)." in
    Arg.(value & opt_all int [] & info [ "cores" ] ~docv:"N" ~doc)
  in
  let rc_sched_arg =
    let doc =
      "Worksharing schedule to replay (repeatable): $(b,static), \
       $(b,static,C) or $(b,dynamic,C).  Default: all three."
    in
    Arg.(value & opt_all string [] & info [ "schedule" ] ~docv:"CLAUSE" ~doc)
  in
  let inject_arg =
    let doc =
      "Fault injection: disable the polyhedral legality check (forces an \
       arbitrary loop permutation).  The race detector is expected to catch \
       the resulting races; used to validate the detector itself."
    in
    Arg.(value & flag & info [ "inject-illegal" ] ~doc)
  in
  let engine_arg =
    let doc =
      "Race engine(s) to run: $(b,hb) (vector-clock happens-before replay), \
       $(b,lockset) (Eraser-style lockset discipline), or $(b,both) \
       (run both and cross-check their verdicts; a disagreement is a hard \
       failure)."
    in
    Arg.(value & opt string "both" & info [ "engine" ] ~docv:"ENGINE" ~doc)
  in
  (* a workload supplies its own scop markers → plain PluTo; otherwise the
     full pure chain marks scops itself (same rule as the test suite).
     [--tile]/[--sica] apply to workloads too, so the gallery can be
     racechecked under tiled/skewed schedules. *)
  let workload_mode ~inject ~sica ~tile source =
    let adjust (c : Pluto.config) =
      let c =
        if sica then
          { c with Pluto.sica = true; sica_cache = Toolchain.Chain.scaled_sica_cache }
        else c
      in
      let c =
        match tile with
        | Some ts -> { c with Pluto.tile = true; tile_sizes = [ ts ] }
        | None -> c
      in
      if inject then { c with Pluto.unsafe_no_legality = true } else c
    in
    if Support.Util.string_contains ~needle:"#pragma scop" source then
      Toolchain.Chain.Plain_pluto adjust
    else Toolchain.Chain.Pure_chain adjust
  in
  let workload_targets names =
    let scale = Toolchain.Figures.test_scale in
    let apps =
      [
        ("matmul", Workloads.Matmul.pure_source ~n:scale.Toolchain.Figures.matmul_n ());
        ( "heat",
          Workloads.Heat.pure_source ~n:scale.Toolchain.Figures.heat_n
            ~t:scale.Toolchain.Figures.heat_t () );
        ( "satellite",
          Workloads.Satellite.pure_source ~w:scale.Toolchain.Figures.sat_w
            ~h:scale.Toolchain.Figures.sat_h ~bands:scale.Toolchain.Figures.sat_bands () );
        ( "lama",
          Workloads.Lama_app.pure_source ~rows:scale.Toolchain.Figures.lama_rows
            ~maxnnz:scale.Toolchain.Figures.lama_maxnnz
            ~reps:scale.Toolchain.Figures.lama_reps () );
      ]
    in
    let resolve name =
      match List.assoc_opt name apps with
      | Some src -> [ (name, src) ]
      | None -> (
        match Workloads.Kernels.find name with
        | Some k -> [ (name, k.Workloads.Kernels.k_source) ]
        | None ->
          Fmt.epr "racecheck: unknown workload %s (try: %s, or a kernel: %s)@." name
            (String.concat ", " (List.map fst apps))
            (String.concat ", "
               (List.map (fun k -> k.Workloads.Kernels.k_name) Workloads.Kernels.all));
          exit Toolchain.Chain.exit_error)
    in
    let kernels =
      List.map
        (fun k -> (k.Workloads.Kernels.k_name, k.Workloads.Kernels.k_source))
        Workloads.Kernels.all
    in
    List.concat_map
      (fun name ->
        if name = "all" then apps @ kernels
        else if name = "kernels" then kernels
        else resolve name)
      names
  in
  (* [--schedule] here selects the replay plans; the pragma clause the
     compiler would emit is irrelevant because the replay matrix covers
     every clause anyway *)
  let run file workloads cores scheds inject engine_s mode sica tile jobs tile_grain =
    let engine =
      match Racecheck.engine_choice_of_string engine_s with
      | Ok e -> e
      | Error msg ->
        Fmt.epr "racecheck: %s@." msg;
        exit Toolchain.Chain.exit_error
    in
    let cores = if cores = [] then Racecheck.default_cores else cores in
    let schedules =
      if scheds = [] then Racecheck.default_schedules
      else
        List.map
          (fun s ->
            match Racecheck.schedule_of_string s with
            | Ok sched -> sched
            | Error msg ->
              Fmt.epr "racecheck: %s@." msg;
              exit Toolchain.Chain.exit_error)
          scheds
    in
    let targets =
      match (file, workloads) with
      | None, [] ->
        Fmt.epr "racecheck: give a FILE or at least one --workload@.";
        exit Toolchain.Chain.exit_error
      | _ ->
        (match file with Some f -> [ (f, `File (read_file f)) ] | None -> [])
        @ List.map (fun (n, s) -> (n, `Workload s)) (workload_targets workloads)
    in
    (* one target = one unit of campaign work; everything it would print is
       buffered so targets can be checked on worker domains and the report
       replayed in target order — stdout is byte-identical for every --jobs *)
    let check_target (name, target) =
      let buf = Buffer.create 256 in
      let pr fmt = Fmt.kstr (Buffer.add_string buf) fmt in
      try
        let source, chosen_mode =
          match target with
          | `File src ->
            let adjust_mode m =
              if not inject then m
              else
                match m with
                | Toolchain.Chain.Pure_chain adj ->
                  Toolchain.Chain.Pure_chain
                    (fun c -> { (adj c) with Pluto.unsafe_no_legality = true })
                | Toolchain.Chain.Plain_pluto adj ->
                  Toolchain.Chain.Plain_pluto
                    (fun c -> { (adj c) with Pluto.unsafe_no_legality = true })
                | m -> m
            in
            (src, adjust_mode (chain_mode mode sica tile None))
          | `Workload src -> (src, workload_mode ~inject ~sica ~tile src)
        in
        let c, profile, verdicts =
          Toolchain.Chain.run_racecheck ~mode:chosen_mode ~engine ~schedules ~cores
            ~tile_grain source
        in
        (* per-outcome attribution: every [unit N] pragma tag maps back to
           the polyhedral transform unit that emitted it *)
        let units = Pluto.unit_table c.Toolchain.Chain.c_outcomes in
        Array.iteri
          (fun id (loc, u) ->
            pr "%s: unit %d (scop at %a): %s@." name id Support.Loc.pp loc
              (Pluto.describe_unit u))
          units;
        let attribute seg =
          let tagged =
            match profile.Interp.Trace.par_traces with
            | Some traces -> (
              match List.nth_opt traces seg with
              | Some pt -> pt.Interp.Trace.pt_unit
              | None -> None)
            | None -> None
          in
          match tagged with
          | Some id when id >= 0 && id < Array.length units ->
            let loc, u = units.(id) in
            Fmt.str "transform unit %d (scop at %a): %s" id Support.Loc.pp loc
              (Pluto.describe_unit u)
          | Some id -> Fmt.str "transform unit %d (no surviving outcome)" id
          | None -> "a hand-written pragma (no transform unit)"
        in
        let racy_verdicts = List.filter Racecheck.verdict_racy verdicts in
        let disagreements = Racecheck.verdicts_disagreements verdicts in
        if racy_verdicts = [] && disagreements = [] then
          pr "%s: no races across %d plans (engine %s; %s x cores %s)@." name
            (List.length verdicts)
            (Racecheck.engine_choice_name engine)
            (String.concat ", " (List.map Racecheck.schedule_name schedules))
            (String.concat ", " (List.map string_of_int cores))
        else begin
          List.iter
            (fun v ->
              List.iter
                (fun (r : Racecheck.report) ->
                  if not (Racecheck.clean r) then begin
                    pr "%s: %s@." name (Racecheck.describe_report r);
                    List.iter
                      (fun seg ->
                        pr "%s:   segment %d emitted by %s@." name seg (attribute seg))
                      (List.sort_uniq compare (List.map fst r.Racecheck.p_words))
                  end)
                (Racecheck.verdict_reports v))
            racy_verdicts;
          List.iter (fun d -> pr "%s: ENGINE DISAGREEMENT: %s@." name d) disagreements;
          if not inject && racy_verdicts <> [] then
            if Array.length units > 0 then
              pr
                "%s: LEGALITY DISAGREEMENT: the polyhedral legality analysis approved \
                 this transform, but a dynamic race engine found races — one of the \
                 two is wrong.@."
                name
            else
              pr
                "%s: the hand-written pragmas assert an independence the program \
                 does not have.@."
                name
        end;
        (Buffer.contents buf, "", racy_verdicts <> [] || disagreements <> [], None)
      with
      | Toolchain.Chain.Compile_error diags ->
        ( Buffer.contents buf,
          String.concat "" (List.map (fun d -> Fmt.str "%a@." Support.Diag.pp d) diags),
          false,
          Some (Toolchain.Chain.classify_errors diags) )
      | Support.Diag.Fatal d ->
        ( Buffer.contents buf,
          Fmt.str "%a@." Support.Diag.pp d,
          false,
          Some (Toolchain.Chain.classify_errors [ d ]) )
    in
    let tarr = Array.of_list targets in
    let n = Array.length tarr in
    let jobs = min (resolve_jobs jobs) (max 1 n) in
    Fmt.epr "racecheck: %d domain(s), %d target(s)@." jobs n;
    let outcomes = Array.make n None in
    let fill i = outcomes.(i) <- Some (check_target tarr.(i)) in
    if jobs <= 1 then
      for i = 0 to n - 1 do
        fill i
      done
    else begin
      let pool = Runtime.Pool.create jobs in
      Fun.protect
        ~finally:(fun () -> Runtime.Pool.shutdown pool)
        (fun () ->
          Runtime.Par_loop.parallel_for pool ~schedule:(Runtime.Par_loop.Dynamic 1)
            ~lo:0 ~hi:n fill)
    end;
    (* replay in target order; a compile error stops the report exactly
       where the sequential loop would have stopped *)
    let racy = ref 0 in
    Array.iter
      (function
        | None -> ()
        | Some (out, err, was_racy, code) -> (
          print_string out;
          if was_racy then incr racy;
          match code with
          | Some code ->
            flush stdout;
            prerr_string err;
            exit code
          | None -> ()))
      outcomes;
    if !racy > 0 then exit Toolchain.Chain.exit_race
  in
  Cmd.v
    (Cmd.info "racecheck"
       ~doc:
         "Shadow-verify parallelized loops: replay the interpreter's access \
          log under every worksharing plan with a happens-before race \
          detector and an Eraser-style lockset engine, cross-checking their \
          verdicts.  Exits 5 if any plan races or the engines disagree.")
    Term.(
      const run $ file_arg $ workload_arg $ rc_cores_arg $ rc_sched_arg $ inject_arg
      $ engine_arg $ mode_arg $ sica_arg $ tile_arg $ jobs_arg $ tile_grain_arg)

(* ------------------------------------------------------------------ *)
(* fuzz *)

let fuzz_cmd =
  let seed_arg =
    let doc = "Base seed; program $(i,i) of the campaign uses seed + i." in
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc)
  in
  let count_arg =
    let doc = "Number of random programs to generate and cross-check." in
    Arg.(value & opt int 100 & info [ "count" ] ~docv:"K" ~doc)
  in
  let inject_arg =
    let doc =
      "Fault injection: disable the polyhedral legality check (forces an \
       arbitrary loop permutation).  The oracle is expected to catch the \
       resulting miscompiles; used to validate the oracle itself."
    in
    Arg.(value & flag & info [ "inject-illegal" ] ~doc)
  in
  let dump_arg =
    let doc = "Print every generated program before checking it." in
    Arg.(value & flag & info [ "dump" ] ~doc)
  in
  let no_shrink_arg =
    let doc = "Skip minimizing failing programs." in
    Arg.(value & flag & info [ "no-shrink" ] ~doc)
  in
  let racecheck_arg =
    let doc =
      "Add both dynamic race engines (happens-before and lockset, \
       cross-checked) as a second oracle stage: every transformed \
       configuration must replay race-free under all plans, checked before \
       outputs are compared."
    in
    Arg.(value & flag & info [ "racecheck" ] ~doc)
  in
  let run seed count inject racecheck dump no_shrink jobs =
    let jobs = resolve_jobs jobs in
    (* stderr, so the campaign report on stdout stays identical across --jobs *)
    Fmt.epr "fuzz: %d domain(s)@." jobs;
    let checked = ref 0 in
    let on_case (case : Fuzzgen.Fuzz.case_result) =
      incr checked;
      if dump then
        Fmt.pr "===== seed %d =====@.%s@." case.Fuzzgen.Fuzz.c_seed case.Fuzzgen.Fuzz.c_source;
      if not (Fuzzgen.Oracle.passed case.Fuzzgen.Fuzz.c_report) then begin
        Fmt.pr "seed %d: FAILED (replay: purec fuzz --seed %d --count 1%s%s)@."
          case.Fuzzgen.Fuzz.c_seed case.Fuzzgen.Fuzz.c_seed
          (if inject then " --inject-illegal" else "")
          (if racecheck then " --racecheck" else "");
        List.iter
          (fun f -> Fmt.pr "  %s@." (Fuzzgen.Oracle.describe f))
          case.Fuzzgen.Fuzz.c_report.Fuzzgen.Oracle.r_failures;
        match case.Fuzzgen.Fuzz.c_shrunk with
        | Some src -> Fmt.pr "--- minimized reproducer ---@.%s@." src
        | None -> ()
      end
    in
    match
      Fuzzgen.Fuzz.campaign ~inject ~racecheck ~shrink:(not no_shrink) ~on_case ~jobs
        ~seed ~count ()
    with
    | result ->
      let nfail = List.length result.Fuzzgen.Fuzz.k_failed in
      Fmt.pr "fuzz: %d programs, %d configurations each, %d mismatches@." result.Fuzzgen.Fuzz.k_count
        result.Fuzzgen.Fuzz.k_configs nfail;
      (* exit precedence lives in one place (cf. Fuzz.campaign_exit_code):
         a race or engine disagreement outranks any differential mismatch *)
      let code = Fuzzgen.Fuzz.campaign_exit_code result in
      if code <> Toolchain.Chain.exit_ok then exit code
    | exception Fuzzgen.Fuzz.Roundtrip_error msg ->
      Fmt.epr "fuzz: internal round-trip failure after %d programs: %s@." !checked msg;
      exit Toolchain.Chain.exit_error
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: generate random pure-C programs and check \
          every pipeline configuration against the sequential baseline.")
    Term.(
      const run $ seed_arg $ count_arg $ inject_arg $ racecheck_arg $ dump_arg
      $ no_shrink_arg $ jobs_arg)

(* ------------------------------------------------------------------ *)

let () =
  let doc = "the pure-C automatic parallelization chain (paper reproduction)" in
  let info = Cmd.info "purec" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ check_cmd; compile_cmd; run_cmd; racecheck_cmd; fuzz_cmd ]))
