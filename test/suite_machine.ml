(** Machine-model tests: makespan properties of the schedule simulator,
    roofline behaviour, backend effects. *)

let machine = Machine.Config.opteron64

let mk_cost cycles =
  let c = Interp.Cost.create () in
  c.Interp.Cost.extra_cycles <- cycles;
  c

let mk_par sched cycles_list =
  Interp.Trace.Par { sched; iters = Array.of_list (List.map mk_cost cycles_list) }

let seconds ?(backend = Machine.Config.gcc) n segs =
  (Machine.Model.simulate ~backend ~n
     {
       Interp.Trace.segments = segs;
       output = "";
       return_code = 0;
       regions = [];
       par_traces = None;
       insp = [];
     })
    .Machine.Model.r_seconds

let test_single_core_equals_sum () =
  let iters = [ 100.0; 200.0; 300.0 ] in
  let span, ovh =
    Machine.Model.makespan machine 1 Interp.Trace.Static (Array.of_list iters)
  in
  Alcotest.(check (float 1e-9)) "sum" 600.0 span;
  Alcotest.(check (float 1e-9)) "no overhead" 0.0 ovh

let qcheck_makespan_bounds =
  QCheck.Test.make ~name:"max <= makespan <= sum (all schedules)" ~count:300
    QCheck.(pair (int_range 1 64) (list_of_size (Gen.int_range 1 60) (float_range 1.0 1000.0)))
    (fun (n, iters) ->
      let arr = Array.of_list iters in
      let sum = Array.fold_left ( +. ) 0.0 arr in
      let mx = Array.fold_left Float.max 0.0 arr in
      List.for_all
        (fun sched ->
          let span, _ = Machine.Model.makespan machine n sched arr in
          span >= mx -. 1e-6 && span <= sum +. 1e-6)
        [ Interp.Trace.Static; Interp.Trace.Static_chunk 3; Interp.Trace.Dynamic 1 ])

let qcheck_dynamic_balances_imbalance =
  QCheck.Test.make ~name:"dynamic beats static on monotone imbalance" ~count:100
    (QCheck.int_range 2 32)
    (fun n ->
      (* linearly growing iteration costs, like the satellite rows *)
      let iters = Array.init 128 (fun i -> 10.0 +. (3.0 *. float_of_int i)) in
      let st, _ = Machine.Model.makespan machine n Interp.Trace.Static iters in
      let dy, _ = Machine.Model.makespan machine n (Interp.Trace.Dynamic 1) iters in
      dy <= st +. 1e-6)

let test_static_imbalance_tail () =
  (* heavy tail: the last block dominates under a static schedule *)
  let iters = Array.init 64 (fun i -> if i >= 56 then 800.0 else 100.0) in
  let st, _ = Machine.Model.makespan machine 8 Interp.Trace.Static iters in
  let dy, _ = Machine.Model.makespan machine 8 (Interp.Trace.Dynamic 1) iters in
  Alcotest.(check bool) "static suffers on tail" true (st >= 8.0 *. 800.0 -. 1e-6);
  Alcotest.(check bool) "dynamic balances" true (dy < st)

let test_more_cores_never_hurt_compute () =
  let iters = List.init 100 (fun i -> 50.0 +. float_of_int i) in
  let span n = fst (Machine.Model.makespan machine n Interp.Trace.Static (Array.of_list iters)) in
  let rec go prev = function
    | [] -> ()
    | n :: rest ->
      let s = span n in
      Alcotest.(check bool) "monotone" true (s <= prev +. 1e-6);
      go s rest
  in
  go (span 1) [ 2; 4; 8; 16; 32; 64 ]

let test_seq_segment_unaffected_by_cores () =
  let segs = [ Interp.Trace.Seq (mk_cost 1_000_000) ] in
  Alcotest.(check (float 1e-12)) "same at 1 and 64" (seconds 1 segs) (seconds 64 segs)

let test_fork_overhead_grows () =
  let segs = [ mk_par Interp.Trace.Static [ 10; 10 ] ] in
  Alcotest.(check bool) "64 cores pay more overhead than 2" true
    (seconds 64 segs > seconds 2 segs)

let test_bandwidth_caps () =
  Alcotest.(check (float 1e-9)) "1 core" machine.Machine.Config.m_per_core_bw_gbs
    (Machine.Config.bandwidth machine 1);
  Alcotest.(check (float 1e-9)) "64 cores capped" machine.Machine.Config.m_dram_bw_gbs
    (Machine.Config.bandwidth machine 64)

let test_memory_bound_segment () =
  (* a segment with huge DRAM traffic and almost no compute is limited by
     bandwidth, not cores *)
  let c = Interp.Cost.create () in
  c.Interp.Cost.l2_misses <- 10_000_000;
  let segs = [ Interp.Trace.Par { sched = Interp.Trace.Static; iters = [| c |] } ] in
  let t32 = seconds 32 segs and t64 = seconds 64 segs in
  Alcotest.(check bool) "no gain past the bandwidth wall" true
    (Float.abs (t64 -. t32) /. t32 < 0.2)

let test_backend_vectorization () =
  let c = Interp.Cost.create () in
  c.Interp.Cost.float_adds <- 1_000_000;
  c.Interp.Cost.flops_autovec <- 1_000_000;
  let cyc b = Machine.Model.cycles machine b c in
  Alcotest.(check bool) "icc vectorizes the autovec bucket" true
    (cyc Machine.Config.icc < 0.6 *. cyc Machine.Config.gcc);
  (* pragma bucket honored by both *)
  let c2 = Interp.Cost.create () in
  c2.Interp.Cost.float_adds <- 1_000_000;
  c2.Interp.Cost.flops_pragma_vec <- 1_000_000;
  Alcotest.(check bool) "gcc honors sica pragmas" true
    (cyc Machine.Config.gcc > 1.5 *. Machine.Model.cycles machine Machine.Config.gcc c2)

let test_icc_scalar_factor () =
  let c = Interp.Cost.create () in
  c.Interp.Cost.int_ops <- 1_000_000;
  Alcotest.(check bool) "icc scalar slightly faster" true
    (Machine.Model.cycles machine Machine.Config.icc c
    < Machine.Model.cycles machine Machine.Config.gcc c)

let test_mkl_model_ratio () =
  (* the analytic MKL baseline must sit well below any interpreted kernel
     and keep a plausible 1-to-64-core efficiency *)
  let t1 = Machine.Mkl_model.gemm_seconds ~n:1 ~size:512 () in
  let t64 = Machine.Mkl_model.gemm_seconds ~n:64 ~size:512 () in
  Alcotest.(check bool) "parallel gain" true (t64 < t1 /. 32.0);
  Alcotest.(check bool) "not super-linear" true (t64 > t1 /. 64.0 /. 1.01)

let qcheck_simulation_positive =
  QCheck.Test.make ~name:"simulated time is positive and finite" ~count:100
    QCheck.(pair (int_range 1 64) (list_of_size (Gen.int_range 1 30) (int_range 1 100000)))
    (fun (n, cycles) ->
      let segs = [ mk_par Interp.Trace.Static cycles ] in
      let t = seconds n segs in
      Float.is_finite t && t > 0.0)

let suite =
  [
    Alcotest.test_case "single core = sum" `Quick test_single_core_equals_sum;
    QCheck_alcotest.to_alcotest qcheck_makespan_bounds;
    QCheck_alcotest.to_alcotest qcheck_dynamic_balances_imbalance;
    Alcotest.test_case "static tail imbalance" `Quick test_static_imbalance_tail;
    Alcotest.test_case "makespan monotone in cores" `Quick test_more_cores_never_hurt_compute;
    Alcotest.test_case "sequential segments core-independent" `Quick test_seq_segment_unaffected_by_cores;
    Alcotest.test_case "fork overhead grows" `Quick test_fork_overhead_grows;
    Alcotest.test_case "bandwidth caps" `Quick test_bandwidth_caps;
    Alcotest.test_case "memory-bound segments" `Quick test_memory_bound_segment;
    Alcotest.test_case "backend vectorization" `Quick test_backend_vectorization;
    Alcotest.test_case "icc scalar factor" `Quick test_icc_scalar_factor;
    Alcotest.test_case "mkl model sanity" `Quick test_mkl_model_ratio;
    QCheck_alcotest.to_alcotest qcheck_simulation_positive;
  ]
