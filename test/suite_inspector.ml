(** Inspector/executor differential battery.

    Index-array gather kernels — one whose runtime write footprints are
    pairwise disjoint (a permutation), one that conflicts (a duplicating
    index map), and the inlined LAMA ELL SpMV — are executed across the
    full plan matrix: --jobs 1/2/4/8, all three instrumentation variants
    (Modeled / Traced / Fast), and schedule(static/static,4/dynamic,1/
    guided,1).  Every configuration must reproduce the sequential bytes:
    the disjoint kernels because the parallel executor is legal, the
    conflicting kernel because the inspector's verdict forces the
    byte-identical sequential fallback.

    The counters witness that the dispatch decision is real: on the
    disjoint path [Pool.batches] moves and the global disjoint census
    ticks; on the conflict path the conflict census ticks while the pool
    sees no batch at all. *)

module C = Toolchain.Chain

let with_pool jobs f =
  if jobs <= 1 then f None
  else begin
    let pool = Runtime.Pool.create jobs in
    Fun.protect
      ~finally:(fun () -> Runtime.Pool.shutdown pool)
      (fun () -> f (Some pool))
  end

type outcome = Finished of string * int | Faulted of string

let show_outcome = function
  | Finished (out, rc) -> Printf.sprintf "exit %d\n%s" rc out
  | Faulted m -> "fault: " ^ m

let outcome ?pool ?(trace_accesses = false) ?(no_model = false) c =
  match C.execute ?pool ~trace_accesses ~no_model c with
  | p -> Finished (p.Interp.Trace.output, p.Interp.Trace.return_code)
  | exception Interp.Exec.Runtime_error m -> Faulted m

let kernel_source name =
  match Workloads.Kernels.find name with
  | Some k -> k.Workloads.Kernels.k_source
  | None -> Alcotest.failf "gallery kernel %s missing" name

let lama_source = Workloads.Lama_app.inspector_source ~rows:96 ~maxnnz:6 ~reps:2 ()

let sources () =
  [
    ("gather-disjoint", kernel_source "gather-disjoint");
    ("gather-conflict", kernel_source "gather-conflict");
    ("lama-inspector", lama_source);
  ]

let clauses = [ None; Some "static,4"; Some "dynamic,1"; Some "guided,1" ]

let clause_name = function None -> "static" | Some c -> c

let mode clause = C.Plain_pluto (fun c -> { c with Pluto.schedule_clause = clause })

(* the heart of the battery: 3 sources x 4 schedules x 4 pool sizes x 3
   instrumentation variants, every cell against the sequential baseline *)
let test_differential () =
  List.iter
    (fun (name, src) ->
      let baseline = outcome (C.compile ~mode:C.Sequential src) in
      (match baseline with
      | Finished _ -> ()
      | Faulted m -> Alcotest.failf "%s baseline faulted: %s" name m);
      List.iter
        (fun clause ->
          let c = C.compile ~mode:(mode clause) src in
          List.iter
            (fun jobs ->
              with_pool jobs (fun pool ->
                  let tag variant =
                    Printf.sprintf "%s schedule(%s) --jobs %d %s" name
                      (clause_name clause) jobs variant
                  in
                  Alcotest.(check string) (tag "modeled") (show_outcome baseline)
                    (show_outcome (outcome ?pool c));
                  Alcotest.(check string) (tag "traced") (show_outcome baseline)
                    (show_outcome (outcome ?pool ~trace_accesses:true c));
                  Alcotest.(check string) (tag "fast") (show_outcome baseline)
                    (show_outcome (outcome ?pool ~no_model:true c))))
            [ 1; 2; 4; 8 ])
        clauses)
    (sources ())

(* the modeled profile carries the verdict the diagnostics print *)
let verdicts src =
  let _, p = C.run ~mode:(mode None) src in
  p.Interp.Trace.insp

let test_verdict_disjoint () =
  match verdicts (kernel_source "gather-disjoint") with
  | [ v ] ->
    Alcotest.(check bool) "disjoint verdict" true v.Interp.Trace.iv_disjoint;
    Alcotest.(check bool) "addresses probed" true (v.Interp.Trace.iv_checks > 0)
  | l -> Alcotest.failf "expected one verdict, got %d" (List.length l)

let test_verdict_conflict () =
  match verdicts (kernel_source "gather-conflict") with
  | [ v ] ->
    Alcotest.(check bool) "conflict verdict" false v.Interp.Trace.iv_disjoint;
    Alcotest.(check bool) "addresses probed" true (v.Interp.Trace.iv_checks > 0)
  | l -> Alcotest.failf "expected one verdict, got %d" (List.length l)

(* the inlined LAMA gather's only indirection is a read, so the check is
   vacuous (no array to probe) and the verdict is disjoint by construction;
   the scop sits inside the repetition loop, so one verdict per rep *)
let test_verdict_lama () =
  match verdicts lama_source with
  | [] -> Alcotest.fail "no verdicts logged"
  | l ->
    Alcotest.(check int) "one verdict per rep" 2 (List.length l);
    List.iter
      (fun (v : Interp.Trace.insp_verdict) ->
        Alcotest.(check bool) "lama disjoint" true v.Interp.Trace.iv_disjoint;
        Alcotest.(check int) "no probed addresses" 0 v.Interp.Trace.iv_checks)
      l

(* disjoint path: the pool really forks (batch census moves, disjoint
   census ticks); conflict path: the census ticks while the pool never
   sees a batch *)
let test_dispatch_witness () =
  with_pool 4 (fun pool ->
      let pool = Option.get pool in
      let c_dis = C.compile ~mode:(mode None) (kernel_source "gather-disjoint") in
      let c_con = C.compile ~mode:(mode None) (kernel_source "gather-conflict") in
      Runtime.Pool.reset_batches pool;
      let d0 = Interp.Compile.insp_disjoint_total () in
      (match outcome ~pool ~no_model:true c_dis with
      | Finished _ -> ()
      | Faulted m -> Alcotest.failf "disjoint run faulted: %s" m);
      Alcotest.(check bool) "disjoint census ticked" true
        (Interp.Compile.insp_disjoint_total () > d0);
      Alcotest.(check bool) "pool dispatched the gather" true
        (Runtime.Pool.batches pool > 0);
      Runtime.Pool.reset_batches pool;
      let k0 = Interp.Compile.insp_conflict_total () in
      (match outcome ~pool ~no_model:true c_con with
      | Finished _ -> ()
      | Faulted m -> Alcotest.failf "conflict run faulted: %s" m);
      Alcotest.(check bool) "conflict census ticked" true
        (Interp.Compile.insp_conflict_total () > k0);
      Alcotest.(check int) "no dispatch on the fallback path" 0
        (Runtime.Pool.batches pool))

(* acceptance: the ELL SpMV finally parallelizes — through the inspector
   path, on a real pool, with the sequential bytes *)
let test_lama_parallelizes () =
  let seq = outcome (C.compile ~mode:C.Sequential lama_source) in
  let c = C.compile ~mode:(mode None) lama_source in
  let d0 = Interp.Compile.insp_disjoint_total () in
  let _, p = C.run ~mode:(mode None) lama_source in
  Alcotest.(check bool) "inspector census ticked" true
    (Interp.Compile.insp_disjoint_total () > d0);
  Alcotest.(check bool) "parallel segments recorded" true
    (Interp.Trace.n_parallel_segments p > 0);
  with_pool 4 (fun pool ->
      let pool = Option.get pool in
      Runtime.Pool.reset_batches pool;
      Alcotest.(check string) "lama --jobs 4 fast bytes" (show_outcome seq)
        (show_outcome (outcome ~pool ~no_model:true c));
      Alcotest.(check bool) "lama really dispatched" true
        (Runtime.Pool.batches pool > 0))

(* turning the inspector off restores the old rejection: no parallel
   segments, same bytes *)
let test_inspector_off_rejects () =
  let off = C.Plain_pluto (fun c -> { c with Pluto.inspector = false }) in
  List.iter
    (fun (name, src) ->
      let seq = outcome (C.compile ~mode:C.Sequential src) in
      let compiled = C.compile ~mode:off src in
      Alcotest.(check bool)
        (name ^ ": rejected with the inspector off")
        true
        (List.exists
           (fun (o : Pluto.outcome) ->
             match o.Pluto.o_result with Pluto.Rejected _ -> true | _ -> false)
           compiled.C.c_outcomes);
      let _, p = C.run ~mode:off src in
      Alcotest.(check int) (name ^ ": nothing parallel") 0
        (Interp.Trace.n_parallel_segments p);
      Alcotest.(check string) (name ^ ": bytes unchanged") (show_outcome seq)
        (show_outcome (Finished (p.Interp.Trace.output, p.Interp.Trace.return_code))))
    [
      ("gather-disjoint", kernel_source "gather-disjoint");
      ("gather-conflict", kernel_source "gather-conflict");
    ]

let suite =
  [
    Alcotest.test_case "differential battery" `Quick test_differential;
    Alcotest.test_case "disjoint verdict" `Quick test_verdict_disjoint;
    Alcotest.test_case "conflict verdict" `Quick test_verdict_conflict;
    Alcotest.test_case "lama vacuous verdict" `Quick test_verdict_lama;
    Alcotest.test_case "dispatch witness" `Quick test_dispatch_witness;
    Alcotest.test_case "lama parallelizes" `Quick test_lama_parallelizes;
    Alcotest.test_case "inspector off rejects" `Quick test_inspector_off_rejects;
  ]
