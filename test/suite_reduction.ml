(** Reduction-equivalence battery: every [reduction(op:name)] kernel must
    produce byte-identical output on the domain pool at every --jobs level
    under static, static-chunked, dynamic, and manually-tiled plans, and
    both race engines must agree it is clean.  Also pins the merge
    mechanics: reduction loops really dispatch to the pool (observable via
    {!Runtime.Pool.batches}), per-chunk partials merge in chunk order (so
    even inexact float sums are reproducible run-to-run at fixed jobs, and
    byte-identical across jobs under worker-count-independent chunkings),
    and loops whose clause or body fall outside the recognized shapes fall
    back to sequential execution with the same output. *)

module C = Toolchain.Chain

(* every operand an exact multiple of 0.125, so float sums/products are
   exact and byte-identical under every association *)
let kernels =
  [
    ( "int-sum",
      {|
#include <stdio.h>
int v[128];
int main(void) {
  int s = 0;
  for (int i = 0; i < 128; i++) v[i] = i * 7 % 23;
#pragma omp parallel for reduction(+:s)
  for (int i = 0; i < 128; i++) {
    s += v[i];
  }
  printf("sum %d\n", s);
  return 0;
}
|} );
    ( "dot-product",
      {|
#include <stdio.h>
double a[256];
double b[256];
int main(void) {
  double s = 0.0;
  for (int i = 0; i < 256; i++) {
    a[i] = (i * 13 % 101) * 0.5;
    b[i] = (i * 7 % 97) * 0.25;
  }
#pragma omp parallel for reduction(+:s)
  for (int i = 0; i < 256; i++) {
    s += a[i] * b[i];
  }
  printf("dot %.17g\n", s);
  return 0;
}
|} );
    ( "int-product",
      {|
#include <stdio.h>
int v[40];
int main(void) {
  int p = 1;
  for (int i = 0; i < 40; i++) v[i] = 1 + i % 9 / 8;
#pragma omp parallel for reduction(*:p)
  for (int i = 0; i < 40; i++) {
    p *= v[i];
  }
  printf("product %d\n", p);
  return 0;
}
|} );
    ( "int-max",
      {|
#include <stdio.h>
int v[200];
int main(void) {
  int m = 0;
  for (int i = 0; i < 200; i++) v[i] = i * 37 % 151;
#pragma omp parallel for reduction(max:m)
  for (int i = 0; i < 200; i++) {
    m = __max(m, v[i]);
  }
  printf("max %d\n", m);
  return 0;
}
|} );
    ( "double-max",
      {|
#include <stdio.h>
double a[200];
int main(void) {
  double m = 0.0;
  for (int i = 0; i < 200; i++) a[i] = (i * 37 % 151) * 0.125;
#pragma omp parallel for reduction(max:m)
  for (int i = 0; i < 200; i++) {
    m = fmax(m, a[i]);
  }
  printf("max %.17g\n", m);
  return 0;
}
|} );
    ( "sched-static4",
      {|
#include <stdio.h>
double a[256];
int main(void) {
  double s = 0.0;
  for (int i = 0; i < 256; i++) a[i] = (i * 11 % 103) * 0.25;
#pragma omp parallel for schedule(static,4) reduction(+:s)
  for (int i = 0; i < 256; i++) {
    s = s + a[i];
  }
  printf("sum %.17g\n", s);
  return 0;
}
|} );
    ( "sched-dynamic2",
      {|
#include <stdio.h>
double a[256];
int main(void) {
  double s = 0.0;
  for (int i = 0; i < 256; i++) a[i] = (i * 11 % 103) * 0.25;
#pragma omp parallel for schedule(dynamic,2) reduction(+:s)
  for (int i = 0; i < 256; i++) {
    s = s + a[i];
  }
  printf("sum %.17g\n", s);
  return 0;
}
|} );
    ( "two-accumulators",
      {|
#include <stdio.h>
double a[256];
int main(void) {
  double s = 0.0;
  double m = 0.0;
  for (int i = 0; i < 256; i++) a[i] = (i * 29 % 113) * 0.5;
#pragma omp parallel for reduction(+:s) reduction(max:m)
  for (int i = 0; i < 256; i++) {
    s += a[i];
    m = fmax(m, a[i]);
  }
  printf("sum %.17g max %.17g\n", s, m);
  return 0;
}
|} );
    ( "conditional-update",
      {|
#include <stdio.h>
double a[256];
int main(void) {
  double s = 0.0;
  for (int i = 0; i < 256; i++) a[i] = (i * 13 % 101) * 0.5;
#pragma omp parallel for reduction(+:s)
  for (int i = 0; i < 256; i++) {
    if (a[i] > 8.0) {
      s += a[i];
    }
  }
  printf("sum %.17g\n", s);
  return 0;
}
|} );
    ( "tiled-nest",
      (* each parallel iteration is a whole tile of 16 elements: the
         tile-granular analogue of the flat dot product *)
      {|
#include <stdio.h>
double a[128];
double b[128];
int main(void) {
  double s = 0.0;
  for (int i = 0; i < 128; i++) {
    a[i] = (i * 13 % 101) * 0.5;
    b[i] = (i * 7 % 97) * 0.25;
  }
#pragma omp parallel for reduction(+:s)
  for (int it = 0; it < 8; it++) {
    for (int i = it * 16; i < it * 16 + 16; i++) {
      s += a[i] * b[i];
    }
  }
  printf("dot %.17g\n", s);
  return 0;
}
|} );
  ]

(* par output at --jobs 1/2/4/8 is byte-identical to the sequential
   interpreter for every reduction kernel *)
let test_reduction_equivalence () =
  List.iter
    (fun (name, source) ->
      let c = C.compile ~mode:C.Manual_omp source in
      let seq = C.execute c in
      List.iter
        (fun jobs ->
          let pool = Runtime.Pool.create jobs in
          let par = C.execute ~pool c in
          Runtime.Pool.shutdown pool;
          Alcotest.(check string)
            (Printf.sprintf "%s output at --jobs %d" name jobs)
            seq.Interp.Trace.output par.Interp.Trace.output;
          Alcotest.(check int)
            (Printf.sprintf "%s return code at --jobs %d" name jobs)
            seq.Interp.Trace.return_code par.Interp.Trace.return_code)
        [ 1; 2; 4; 8 ])
    kernels

(* reduction loops really reach the pool: the accumulator no longer
   disqualifies the loop from parallel dispatch *)
let test_reduction_dispatches_to_pool () =
  let _, source = List.hd kernels in
  let c = C.compile ~mode:C.Manual_omp source in
  let pool = Runtime.Pool.create 4 in
  let _ = C.execute ~pool c in
  Alcotest.(check bool) "reduction loop dispatches batches to the pool" true
    (Runtime.Pool.batches pool > 0);
  Runtime.Pool.shutdown pool

(* inexact float sums: the chunk-order merge makes the result a pure
   function of the chunk boundaries, so (a) repeated runs at fixed jobs are
   byte-identical, and (b) under a dynamic plan — whose chunk intervals do
   not depend on the worker count — every pooled jobs level prints the
   same bytes.  (--jobs 1 takes the flat sequential fold, whose
   association only matches the chunked merge for exact operands; the
   equivalence battery above covers that case.) *)
let inexact_source ~sched =
  Printf.sprintf
    {|
#include <stdio.h>
double a[256];
int main(void) {
  double s = 0.0;
  for (int i = 0; i < 256; i++) a[i] = 1.0 / (i + 1);
#pragma omp parallel for %s reduction(+:s)
  for (int i = 0; i < 256; i++) {
    s += a[i];
  }
  printf("harmonic %%.17g\n", s);
  return 0;
}
|}
    sched

let run_at_jobs c jobs =
  let pool = Runtime.Pool.create jobs in
  let out = (C.execute ~pool c).Interp.Trace.output in
  Runtime.Pool.shutdown pool;
  out

let test_float_merge_determinism () =
  let c = C.compile ~mode:C.Manual_omp (inexact_source ~sched:"") in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "repeated runs at --jobs %d agree" jobs)
        (run_at_jobs c jobs) (run_at_jobs c jobs))
    [ 2; 4; 8 ];
  let c = C.compile ~mode:C.Manual_omp (inexact_source ~sched:"schedule(dynamic,2)") in
  let two = run_at_jobs c 2 in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "dynamic chunking is jobs-invariant at --jobs %d" jobs)
        two (run_at_jobs c jobs))
    [ 4; 8 ]

(* a clause or body outside the recognized shapes must not parallelize —
   and must still compute the right answer sequentially *)
let fallback_cases =
  [
    ( "unrecognized-op",
      (* OpenMP's min operator: privatized for the race detector but not
         merged, so the loop stays sequential *)
      {|
#include <stdio.h>
int v[64];
int main(void) {
  int s = 1000;
  for (int i = 0; i < 64; i++) v[i] = i * 37 % 151;
#pragma omp parallel for reduction(min:s)
  for (int i = 0; i < 64; i++) {
    s = __min(s, v[i]);
  }
  printf("min %d\n", s);
  return 0;
}
|} );
    ( "accumulator-read-outside-update",
      {|
#include <stdio.h>
int v[64];
int t[64];
int main(void) {
  int s = 0;
  for (int i = 0; i < 64; i++) v[i] = i * 7 % 23;
#pragma omp parallel for reduction(+:s)
  for (int i = 0; i < 64; i++) {
    s += v[i];
    t[i] = s;
  }
  printf("sum %d last %d\n", s, t[63]);
  return 0;
}
|} );
  ]

let test_fallback_stays_sequential () =
  List.iter
    (fun (name, source) ->
      let c = C.compile ~mode:C.Manual_omp source in
      let seq = C.execute c in
      let pool = Runtime.Pool.create 4 in
      let par = C.execute ~pool c in
      Alcotest.(check int)
        (Printf.sprintf "%s: no parallel dispatch" name)
        0 (Runtime.Pool.batches pool);
      Runtime.Pool.shutdown pool;
      Alcotest.(check string)
        (Printf.sprintf "%s: output unchanged" name)
        seq.Interp.Trace.output par.Interp.Trace.output)
    fallback_cases

(* both engines replay every reduction kernel clean and agree: the
   accumulator is a privatized per-thread copy, not a shared scalar *)
let test_reduction_racecheck_agrees () =
  List.iter
    (fun (name, source) ->
      let _, _, verdicts = C.run_racecheck ~mode:C.Manual_omp source in
      List.iter
        (fun (v : Racecheck.verdict) ->
          Alcotest.(check (list string))
            (Printf.sprintf "%s: engines agree" name)
            [] v.Racecheck.v_disagreements;
          List.iter
            (fun r ->
              if not (Racecheck.clean r) then
                Alcotest.failf "%s races: %s" name (Racecheck.describe_report r))
            (Racecheck.verdict_reports v))
        verdicts)
    kernels

let suite =
  [
    Alcotest.test_case "reduction par=seq at jobs 1/2/4/8" `Quick
      test_reduction_equivalence;
    Alcotest.test_case "reduction dispatch reaches the pool" `Quick
      test_reduction_dispatches_to_pool;
    Alcotest.test_case "float merge determinism" `Quick test_float_merge_determinism;
    Alcotest.test_case "unrecognized shapes fall back sequential" `Quick
      test_fallback_stays_sequential;
    Alcotest.test_case "reduction racecheck clean, engines agree" `Quick
      test_reduction_racecheck_agrees;
  ]
