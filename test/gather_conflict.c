#include <stdio.h>

int col[16];
double y[16];
double v[16];

int main(void) {
  for (int i = 0; i < 16; i++) {
    col[i] = (i * 2) % 8;
    v[i] = (i * 3 % 7) * 0.5;
    y[i] = 0.0;
  }
#pragma scop
  for (int j = 0; j < 16; j++) {
    y[col[j]] += v[j] * 2.0;
  }
#pragma endscop
  double s = 0.0;
  for (int i = 0; i < 16; i++) {
    s += y[i] * (i + 1);
  }
  printf("sum %.17g\n", s);
  return 0;
}
