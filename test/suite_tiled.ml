(** Tiled-equivalence battery: every tiled/skewed gallery kernel must
    produce byte-identical output on the domain pool at every --jobs level,
    and both race engines must agree it is clean.  Also pins the
    tile-granular dispatch mechanics: whole tiles really reach the pool
    (observable via {!Runtime.Pool.batches}), the [--tile-grain false]
    escape hatch reverts to outermost-statement dispatch, and traced tiled
    runs carry nested (tile → point) segment structure. *)

module C = Toolchain.Chain

let tiled_mode =
  C.Plain_pluto (fun c -> { c with Pluto.tile = true; tile_sizes = [ 4 ] })

let kernels =
  List.map
    (fun k -> (k.Workloads.Kernels.k_name, k.Workloads.Kernels.k_source))
    Workloads.Kernels.all

(* tile batches really reach the pool, and --tile-grain false gates them *)
let test_tile_dispatch_reaches_pool () =
  let source = Workloads.Matmul.inlined_source ~n:24 () in
  let mode =
    C.Plain_pluto (fun c -> { c with Pluto.tile = true; tile_sizes = [ 8 ] })
  in
  let c = C.compile ~mode source in
  let seq = C.execute c in
  let pool = Runtime.Pool.create 4 in
  let par = C.execute ~pool c in
  Alcotest.(check bool) "tiled nests dispatch batches to the pool" true
    (Runtime.Pool.batches pool > 0);
  Alcotest.(check string) "pooled output is byte-identical"
    seq.Interp.Trace.output par.Interp.Trace.output;
  let before = Runtime.Pool.batches pool in
  let coarse = C.execute ~tile_grain:false ~pool c in
  Alcotest.(check int) "tile-grain off: multi-loop nests stay sequential"
    before (Runtime.Pool.batches pool);
  Alcotest.(check string) "tile-grain off output unchanged"
    seq.Interp.Trace.output coarse.Interp.Trace.output;
  Runtime.Pool.shutdown pool

(* par output at --jobs 1/2/4/8 is byte-identical to the sequential
   interpreter for every tiled/skewed gallery kernel *)
let test_gallery_tiled_equivalence () =
  List.iter
    (fun (name, source) ->
      let c = C.compile ~mode:tiled_mode source in
      let seq = C.execute c in
      List.iter
        (fun jobs ->
          let pool = Runtime.Pool.create jobs in
          let par = C.execute ~pool c in
          Runtime.Pool.shutdown pool;
          Alcotest.(check string)
            (Printf.sprintf "%s output at --jobs %d" name jobs)
            seq.Interp.Trace.output par.Interp.Trace.output;
          Alcotest.(check int)
            (Printf.sprintf "%s return code at --jobs %d" name jobs)
            seq.Interp.Trace.return_code par.Interp.Trace.return_code)
        [ 1; 2; 4; 8 ])
    kernels

(* both engines replay the tiled nests via nested traces and agree: clean *)
let test_gallery_tiled_racecheck_agrees () =
  List.iter
    (fun (name, source) ->
      let _, _, verdicts = C.run_racecheck ~mode:tiled_mode source in
      List.iter
        (fun (v : Racecheck.verdict) ->
          Alcotest.(check (list string))
            (Printf.sprintf "%s: engines agree under tiling" name)
            [] v.Racecheck.v_disagreements;
          List.iter
            (fun r ->
              if not (Racecheck.clean r) then
                Alcotest.failf "%s races under tiling: %s" name
                  (Racecheck.describe_report r))
            (Racecheck.verdict_reports v))
        verdicts)
    kernels

(* a traced tiled run records tile → point nested structure *)
let test_tiled_trace_has_nested_structure () =
  let source = Workloads.Matmul.inlined_source ~n:24 () in
  let mode =
    C.Plain_pluto (fun c -> { c with Pluto.tile = true; tile_sizes = [ 8 ] })
  in
  let c = C.compile ~mode source in
  let profile = C.execute ~trace_accesses:true c in
  let traces = Option.get profile.Interp.Trace.par_traces in
  let structured =
    List.exists
      (fun (pt : Interp.Trace.par_trace) ->
        Array.exists (fun pts -> Array.length pts > 1) pt.Interp.Trace.pt_points)
      traces
  in
  Alcotest.(check bool) "some parallel iteration has point children" true structured;
  (* the marks are ascending offsets into the iteration's access log *)
  List.iter
    (fun (pt : Interp.Trace.par_trace) ->
      Array.iteri
        (fun i pts ->
          let n = Array.length pt.Interp.Trace.pt_accesses.(i) in
          Array.iteri
            (fun j p ->
              Alcotest.(check bool) "mark within the access log" true
                (p >= 0 && p <= n);
              if j > 0 then
                Alcotest.(check bool) "marks ascend" true (pts.(j - 1) <= p))
            pts)
        pt.Interp.Trace.pt_points)
    traces;
  (* and tile-grain off records flat traces, as before PR 5 *)
  let flat = C.execute ~trace_accesses:true ~tile_grain:false c in
  List.iter
    (fun (pt : Interp.Trace.par_trace) ->
      Alcotest.(check int) "no nested structure with tile-grain off" 0
        (Array.length pt.Interp.Trace.pt_points))
    (Option.get flat.Interp.Trace.par_traces)

let suite =
  [
    Alcotest.test_case "tile dispatch reaches the pool" `Quick
      test_tile_dispatch_reaches_pool;
    Alcotest.test_case "gallery tiled par=seq at jobs 1/2/4/8" `Quick
      test_gallery_tiled_equivalence;
    Alcotest.test_case "gallery tiled racecheck clean, engines agree" `Quick
      test_gallery_tiled_racecheck_agrees;
    Alcotest.test_case "tiled traces carry nested structure" `Quick
      test_tiled_trace_has_nested_structure;
  ]
