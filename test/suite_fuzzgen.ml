(** Differential fuzzing subsystem tests: generator validity, the
    hide/reveal substitution property, oracle agreement on clean builds,
    fault-injection detection with seed-replayable shrinking, worksharing
    plan partitions, and CLI exit-code classification. *)

open Cfront

(* ------------------------------------------------------------------ *)
(* Substitution round-trip: hiding pure calls behind opaque constants and
   revealing them again must pretty-print back to the original program. *)

let hide_reveal_fixpoint (prog : Ast.program) =
  let transformed =
    List.map
      (fun g ->
        match g with
        | Ast.GFunc ({ Ast.f_body = Some body; _ } as fn) ->
          let table = Purity.Substitute.create () in
          let hidden = List.map (Purity.Substitute.hide_stmt table) body in
          let revealed = List.map (Purity.Substitute.reveal_stmt table) hidden in
          Ast.GFunc { fn with Ast.f_body = Some revealed }
        | g -> g)
      prog
  in
  Ast_printer.program_to_string transformed = Ast_printer.program_to_string prog

let workload_sources =
  [
    ("matmul-pure", Workloads.Matmul.pure_source ());
    ("matmul-inlined", Workloads.Matmul.inlined_source ());
    ("matmul-pure-noinit", Workloads.Matmul.pure_noinit_source ());
    ("heat-pure", Workloads.Heat.pure_source ());
    ("heat-inlined", Workloads.Heat.inlined_source ());
    ("satellite-pure", Workloads.Satellite.pure_source ());
    ("satellite-manual", Workloads.Satellite.manual_source ());
    ("lama-pure", Workloads.Lama_app.pure_source ());
    ("lama-manual", Workloads.Lama_app.manual_source ());
  ]
  @ List.map (fun k -> ("kernel-" ^ k.Workloads.Kernels.k_name, k.Workloads.Kernels.k_source)) Workloads.Kernels.all

let test_substitute_workloads () =
  List.iter
    (fun (name, src) ->
      let prog = Parser.program_of_string src in
      Alcotest.(check bool) (name ^ " hide/reveal fixpoint") true (hide_reveal_fixpoint prog))
    workload_sources

let qcheck_substitute_fuzzed =
  QCheck.Test.make ~name:"hide/reveal fixpoint on fuzzed programs" ~count:40
    QCheck.(int_bound 100_000)
    (fun seed -> hide_reveal_fixpoint (Fuzzgen.Gen.program_of_seed seed))

let qcheck_printer_roundtrip_fuzzed =
  QCheck.Test.make ~name:"printer round-trip fixpoint on fuzzed programs" ~count:40
    QCheck.(int_bound 100_000)
    (fun seed ->
      let printed = Ast_printer.program_to_string (Fuzzgen.Gen.program_of_seed seed) in
      let reparsed = Parser.program_of_string printed in
      let printed' = Ast_printer.program_to_string reparsed in
      Ast_printer.program_to_string (Parser.program_of_string printed') = printed')

(* ------------------------------------------------------------------ *)
(* Generated programs are valid by construction *)

let test_generator_validity () =
  for seed = 1 to 15 do
    let src = Fuzzgen.Gen.source_of_seed seed in
    match Toolchain.Chain.run ~mode:Toolchain.Chain.Sequential src with
    | _, profile ->
      Alcotest.(check int)
        (Printf.sprintf "seed %d returns 0" seed)
        0 profile.Interp.Trace.return_code;
      Alcotest.(check bool)
        (Printf.sprintf "seed %d prints checksums" seed)
        true
        (String.length profile.Interp.Trace.output > 0)
    | exception Toolchain.Chain.Compile_error diags ->
      Alcotest.failf "seed %d does not compile: %s" seed
        (String.concat "; " (List.map (fun d -> d.Support.Diag.message) diags))
  done

let test_generator_deterministic () =
  Alcotest.(check string)
    "same seed, same program" (Fuzzgen.Gen.source_of_seed 42) (Fuzzgen.Gen.source_of_seed 42);
  Alcotest.(check bool)
    "different seeds, different programs" true
    (Fuzzgen.Gen.source_of_seed 42 <> Fuzzgen.Gen.source_of_seed 43)

(* ------------------------------------------------------------------ *)
(* Stress grammars: CSR-style gather (indirection) and triangular domains *)

let has_csr src = Support.Util.string_contains ~needle:"col[" src

let has_triangular src = Support.Util.string_contains ~needle:"<= i;" src

let find_seed ?(lo = 1) ?(hi = 60) pred =
  let rec go s =
    if s > hi then None else if pred (Fuzzgen.Gen.source_of_seed s) then Some s else go (s + 1)
  in
  go lo

let test_grammar_presence () =
  (match find_seed has_csr with
  | None -> Alcotest.fail "no CSR-gather program in seeds 1-60"
  | Some s ->
    (* seeded determinism: regenerating the same seed reproduces the same
       indirection program byte for byte *)
    Alcotest.(check string) "csr seed deterministic" (Fuzzgen.Gen.source_of_seed s)
      (Fuzzgen.Gen.source_of_seed s));
  match find_seed has_triangular with
  | None -> Alcotest.fail "no triangular-domain program in seeds 1-60"
  | Some s ->
    Alcotest.(check string) "triangular seed deterministic"
      (Fuzzgen.Gen.source_of_seed s) (Fuzzgen.Gen.source_of_seed s)

(* the gather subscript [A[i][col[k]]] is not affine, so static dependence
   analysis fails — since PR 10 the nest is runtime-checked instead of
   rejected: the pragma carries the [inspector] marker, and with the
   inspector off the old rejection (sequential fallback) returns *)
let test_csr_gather_runtime_checked () =
  let seed =
    match find_seed has_csr with
    | Some s -> s
    | None -> Alcotest.fail "no CSR seed"
  in
  let src = Fuzzgen.Gen.source_of_seed seed in
  (match Toolchain.Chain.compile ~mode:(Toolchain.Chain.Pure_chain (fun c -> c)) src with
  | c ->
    let units =
      List.concat_map
        (fun (o : Pluto.outcome) ->
          match o.Pluto.o_result with
          | Pluto.Transformed { t_units } -> t_units
          | Pluto.Rejected _ -> [])
        c.Toolchain.Chain.c_outcomes
    in
    Alcotest.(check bool) "a runtime-checked unit exists" true
      (List.exists (fun (u : Pluto.unit_info) -> u.Pluto.ui_runtime_check <> None) units);
    Alcotest.(check bool) "the pragma carries the inspector marker" true
      (Support.Util.string_contains ~needle:"[inspector" c.Toolchain.Chain.c_emitted)
  | exception Toolchain.Chain.Compile_error diags ->
    Alcotest.failf "CSR seed %d does not compile: %s" seed
      (String.concat "; " (List.map (fun d -> d.Support.Diag.message) diags)));
  (* with the inspector off the nest is rejected and the gather never sits
     under a pragma, exactly the pre-inspector behaviour *)
  match
    Toolchain.Chain.compile
      ~mode:(Toolchain.Chain.Pure_chain (fun c -> { c with Pluto.inspector = false }))
      src
  with
  | c ->
    Alcotest.(check bool) "the indirect nest is rejected with the inspector off" true
      (List.exists
         (fun (o : Pluto.outcome) ->
           match o.Pluto.o_result with Pluto.Rejected _ -> true | _ -> false)
         c.Toolchain.Chain.c_outcomes);
    let lines = Array.of_list (String.split_on_char '\n' c.Toolchain.Chain.c_emitted) in
    Array.iteri
      (fun k l ->
        if Support.Util.string_contains ~needle:"[col[" l then
          for back = max 0 (k - 3) to k - 1 do
            Alcotest.(check bool) "no pragma on the gather" false
              (Support.Util.string_contains ~needle:"omp parallel for" lines.(back))
          done)
      lines
  | exception Toolchain.Chain.Compile_error diags ->
    Alcotest.failf "CSR seed %d does not compile with the inspector off: %s" seed
      (String.concat "; " (List.map (fun d -> d.Support.Diag.message) diags))

(* a genuinely un-analyzable shape still rejects even with the inspector
   on: when the index array itself is written in the nest, no runtime
   footprint probe evaluated before the loop can be trusted *)
let test_written_index_array_still_rejected () =
  let src =
    {|
double w[16]; int col[16];
int main() {
  for (int i = 0; i < 16; i++) { col[i] = i; w[i] = i * 0.5; }
#pragma scop
  for (int i = 1; i < 15; i++) {
    col[i] = col[i + 1];
    w[col[i]] = w[col[i]] + 1.0;
  }
#pragma endscop
  double s = 0.0;
  for (int i = 0; i < 16; i++) s += w[i];
  printf("checksum %.6f\n", s);
  return 0;
}
|}
  in
  match Toolchain.Chain.compile ~mode:(Toolchain.Chain.Plain_pluto (fun c -> c)) src with
  | c ->
    Alcotest.(check bool) "the self-mutating gather is rejected" true
      (List.exists
         (fun (o : Pluto.outcome) ->
           match o.Pluto.o_result with Pluto.Rejected _ -> true | _ -> false)
         c.Toolchain.Chain.c_outcomes);
    Alcotest.(check bool) "no inspector marker emitted" false
      (Support.Util.string_contains ~needle:"[inspector" c.Toolchain.Chain.c_emitted)
  | exception Toolchain.Chain.Compile_error diags ->
    Alcotest.failf "written-index witness does not compile: %s"
      (String.concat "; " (List.map (fun d -> d.Support.Diag.message) diags))

(* a triangular nest still passes the whole differential oracle (the
   polyhedral stages model the non-rectangular domain exactly) *)
let test_triangular_oracle_clean () =
  let seed =
    match find_seed has_triangular with
    | Some s -> s
    | None -> Alcotest.fail "no triangular seed"
  in
  let case = Fuzzgen.Fuzz.run_one ~racecheck:true ~shrink:false seed in
  if not (Fuzzgen.Oracle.passed case.Fuzzgen.Fuzz.c_report) then
    Alcotest.failf "triangular seed %d fails the oracle: %s" seed
      (String.concat "; "
         (List.map Fuzzgen.Oracle.describe
            case.Fuzzgen.Fuzz.c_report.Fuzzgen.Oracle.r_failures))

(* shrinker replay on the stress grammars: inject an illegal transform on a
   seed that carries both grammars, then shrink — the minimized program must
   fail with the same kind, and the seed must replay the failure *)
let test_stress_grammar_shrinker_replay () =
  let both src = has_csr src && has_triangular src in
  let rec find s =
    if s > 40 then None
    else if both (Fuzzgen.Gen.source_of_seed s) then begin
      let case = Fuzzgen.Fuzz.run_one ~inject:true ~shrink:false s in
      let kinds =
        List.map Fuzzgen.Oracle.kind_tag case.Fuzzgen.Fuzz.c_report.Fuzzgen.Oracle.r_failures
      in
      if List.mem "output-mismatch" kinds then Some (s, case) else find (s + 1)
    end
    else find (s + 1)
  in
  match find 1 with
  | None -> Alcotest.skip ()  (* no injectable failure among the early seeds *)
  | Some (seed, case) ->
    let replay = Fuzzgen.Fuzz.run_one ~inject:true ~shrink:false seed in
    Alcotest.(check bool) "seed replays the same failure kinds" true
      (List.map Fuzzgen.Oracle.kind_tag
         replay.Fuzzgen.Fuzz.c_report.Fuzzgen.Oracle.r_failures
      = List.map Fuzzgen.Oracle.kind_tag
          case.Fuzzgen.Fuzz.c_report.Fuzzgen.Oracle.r_failures);
    let prog = Fuzzgen.Gen.program_of_seed seed in
    let minimized, _ = Fuzzgen.Shrink.minimize ~inject:true ~kind:"output-mismatch" prog in
    let shrunk = Ast_printer.program_to_string minimized in
    Alcotest.(check bool) "minimized is smaller" true
      (String.length shrunk < String.length case.Fuzzgen.Fuzz.c_source);
    let report = Fuzzgen.Oracle.check ~inject:true shrunk in
    Alcotest.(check bool) "minimized still fails the same way" true
      (List.exists
         (fun f -> Fuzzgen.Oracle.kind_tag f = "output-mismatch")
         report.Fuzzgen.Oracle.r_failures)

(* ------------------------------------------------------------------ *)
(* The tileable 2-D nest shape: a dedicated array [T] written along a
   (1,0) flow dependence plus a stencil read — the band the pure-tile
   configuration blocks into tiles, executed at tile granularity *)

let has_tileable src = Support.Util.string_contains ~needle:"T[" src

let test_tileable_presence () =
  match find_seed has_tileable with
  | None -> Alcotest.fail "no tileable-nest program in seeds 1-60"
  | Some s ->
    Alcotest.(check string) "tileable seed deterministic"
      (Fuzzgen.Gen.source_of_seed s) (Fuzzgen.Gen.source_of_seed s);
    (* the nest carries its flow dependence in the source *)
    Alcotest.(check bool) "previous-row read present" true
      (Support.Util.string_contains ~needle:"T[i - 1][j]"
         (Fuzzgen.Gen.source_of_seed s))

(* a tileable seed passes the whole differential oracle with the racecheck
   stage enabled: the pure-tile configuration runs the nest at tile
   granularity and both engines replay it via nested traces *)
let test_tileable_oracle_clean () =
  let seed =
    match find_seed has_tileable with
    | Some s -> s
    | None -> Alcotest.fail "no tileable seed"
  in
  let case = Fuzzgen.Fuzz.run_one ~racecheck:true ~shrink:false seed in
  if not (Fuzzgen.Oracle.passed case.Fuzzgen.Fuzz.c_report) then
    Alcotest.failf "tileable seed %d fails the oracle: %s" seed
      (String.concat "; "
         (List.map Fuzzgen.Oracle.describe
            case.Fuzzgen.Fuzz.c_report.Fuzzgen.Oracle.r_failures))

(* shrinker replay on the tileable shape: inject an illegal transform on a
   seed carrying the [T] nest, shrink, and replay from the seed *)
let test_tileable_shrinker_replay () =
  let rec find s =
    if s > 40 then None
    else if has_tileable (Fuzzgen.Gen.source_of_seed s) then begin
      let case = Fuzzgen.Fuzz.run_one ~inject:true ~shrink:false s in
      let kinds =
        List.map Fuzzgen.Oracle.kind_tag case.Fuzzgen.Fuzz.c_report.Fuzzgen.Oracle.r_failures
      in
      if List.mem "output-mismatch" kinds then Some (s, case) else find (s + 1)
    end
    else find (s + 1)
  in
  match find 1 with
  | None -> Alcotest.skip ()  (* no injectable failure among the early seeds *)
  | Some (seed, case) ->
    let replay = Fuzzgen.Fuzz.run_one ~inject:true ~shrink:false seed in
    Alcotest.(check bool) "seed replays the same failure kinds" true
      (List.map Fuzzgen.Oracle.kind_tag
         replay.Fuzzgen.Fuzz.c_report.Fuzzgen.Oracle.r_failures
      = List.map Fuzzgen.Oracle.kind_tag
          case.Fuzzgen.Fuzz.c_report.Fuzzgen.Oracle.r_failures);
    let prog = Fuzzgen.Gen.program_of_seed seed in
    let minimized, _ = Fuzzgen.Shrink.minimize ~inject:true ~kind:"output-mismatch" prog in
    let shrunk = Ast_printer.program_to_string minimized in
    Alcotest.(check bool) "minimized is smaller" true
      (String.length shrunk < String.length case.Fuzzgen.Fuzz.c_source);
    let report = Fuzzgen.Oracle.check ~inject:true shrunk in
    Alcotest.(check bool) "minimized still fails the same way" true
      (List.exists
         (fun f -> Fuzzgen.Oracle.kind_tag f = "output-mismatch")
         report.Fuzzgen.Oracle.r_failures)

(* ------------------------------------------------------------------ *)
(* The reduction-loop and critical-guarded shared-update shapes: a
   pragma'd scalar reduction (merged from per-chunk partials when pooled)
   and a shared global counter updated under critical/atomic (clean for
   the race engines only because the access log carries the lock ids) *)

let has_reduction src = Support.Util.string_contains ~needle:"reduction(" src

let has_critical src =
  Support.Util.string_contains ~needle:"omp critical" src
  || Support.Util.string_contains ~needle:"omp atomic" src

let test_reduction_shape_presence () =
  match find_seed has_reduction with
  | None -> Alcotest.fail "no reduction-loop program in seeds 1-60"
  | Some s ->
    Alcotest.(check string) "reduction seed deterministic"
      (Fuzzgen.Gen.source_of_seed s) (Fuzzgen.Gen.source_of_seed s);
    Alcotest.(check bool) "accumulator named in the clause" true
      (Support.Util.string_contains ~needle:":r0)" (Fuzzgen.Gen.source_of_seed s))

let test_critical_shape_presence () =
  match find_seed has_critical with
  | None -> Alcotest.fail "no critical/atomic program in seeds 1-60"
  | Some s ->
    Alcotest.(check string) "critical seed deterministic"
      (Fuzzgen.Gen.source_of_seed s) (Fuzzgen.Gen.source_of_seed s);
    Alcotest.(check bool) "the guarded counter is printed" true
      (Support.Util.string_contains ~needle:"crit %d" (Fuzzgen.Gen.source_of_seed s))

(* both shapes pass the whole differential oracle with the racecheck stage
   enabled: the reduction accumulator is privatized and the guarded
   counter's accesses carry their lock ids, so both engines stay clean
   and in agreement *)
let shape_oracle_clean name pred () =
  let seed =
    match find_seed pred with
    | Some s -> s
    | None -> Alcotest.failf "no %s seed" name
  in
  let case = Fuzzgen.Fuzz.run_one ~racecheck:true ~shrink:false seed in
  if not (Fuzzgen.Oracle.passed case.Fuzzgen.Fuzz.c_report) then
    Alcotest.failf "%s seed %d fails the oracle: %s" name seed
      (String.concat "; "
         (List.map Fuzzgen.Oracle.describe
            case.Fuzzgen.Fuzz.c_report.Fuzzgen.Oracle.r_failures))

let test_reduction_oracle_clean = shape_oracle_clean "reduction" has_reduction

let test_critical_oracle_clean = shape_oracle_clean "critical" has_critical

(* shrinker replay on a seed carrying the new shapes: inject an illegal
   transform, shrink, and replay from the seed *)
let test_reduction_shrinker_replay () =
  let rec find s =
    if s > 40 then None
    else if has_reduction (Fuzzgen.Gen.source_of_seed s) then begin
      let case = Fuzzgen.Fuzz.run_one ~inject:true ~shrink:false s in
      let kinds =
        List.map Fuzzgen.Oracle.kind_tag case.Fuzzgen.Fuzz.c_report.Fuzzgen.Oracle.r_failures
      in
      if List.mem "output-mismatch" kinds then Some (s, case) else find (s + 1)
    end
    else find (s + 1)
  in
  match find 1 with
  | None -> Alcotest.skip ()  (* no injectable failure among the early seeds *)
  | Some (seed, case) ->
    let replay = Fuzzgen.Fuzz.run_one ~inject:true ~shrink:false seed in
    Alcotest.(check bool) "seed replays the same failure kinds" true
      (List.map Fuzzgen.Oracle.kind_tag
         replay.Fuzzgen.Fuzz.c_report.Fuzzgen.Oracle.r_failures
      = List.map Fuzzgen.Oracle.kind_tag
          case.Fuzzgen.Fuzz.c_report.Fuzzgen.Oracle.r_failures);
    let prog = Fuzzgen.Gen.program_of_seed seed in
    let minimized, _ = Fuzzgen.Shrink.minimize ~inject:true ~kind:"output-mismatch" prog in
    let shrunk = Ast_printer.program_to_string minimized in
    Alcotest.(check bool) "minimized is smaller" true
      (String.length shrunk < String.length case.Fuzzgen.Fuzz.c_source);
    let report = Fuzzgen.Oracle.check ~inject:true shrunk in
    Alcotest.(check bool) "minimized still fails the same way" true
      (List.exists
         (fun f -> Fuzzgen.Oracle.kind_tag f = "output-mismatch")
         report.Fuzzgen.Oracle.r_failures)

(* ------------------------------------------------------------------ *)
(* The indirect-write gather shape [G[gx[i]] += t]: the index array [gx]
   is drawn as a permutation, a duplicating congruence, or a
   data-dependent image, so across seeds the inspector issues both
   runtime verdicts — disjoint (parallelized) and conflict (sequential
   fallback) — and the oracle must stay clean under both *)

let has_igather src = Support.Util.string_contains ~needle:"G[gx[" src

let test_igather_presence () =
  match find_seed has_igather with
  | None -> Alcotest.fail "no indirect-write gather program in seeds 1-60"
  | Some s ->
    Alcotest.(check string) "igather seed deterministic"
      (Fuzzgen.Gen.source_of_seed s) (Fuzzgen.Gen.source_of_seed s);
    Alcotest.(check bool) "the index array is checksummed" true
      (Support.Util.string_contains ~needle:"gx %d" (Fuzzgen.Gen.source_of_seed s))

(* scan the early seeds for one program per verdict, run under the pure
   chain: the inspector must reach both outcomes on fuzzed inputs *)
let igather_verdicts seed =
  let src = Fuzzgen.Gen.source_of_seed seed in
  if not (has_igather src) then []
  else
    match Toolchain.Chain.run ~mode:(Toolchain.Chain.Pure_chain (fun c -> c)) src with
    | _, p -> List.map (fun (v : Interp.Trace.insp_verdict) -> v.Interp.Trace.iv_disjoint) p.Interp.Trace.insp
    | exception _ -> []

let test_igather_both_verdicts () =
  let rec scan s found_dis found_con =
    if found_dis && found_con then (found_dis, found_con)
    else if s > 40 then (found_dis, found_con)
    else
      let vs = igather_verdicts s in
      scan (s + 1) (found_dis || List.mem true vs) (found_con || List.mem false vs)
  in
  let dis, con = scan 1 false false in
  Alcotest.(check bool) "a disjoint-verdict gather seed exists" true dis;
  Alcotest.(check bool) "a conflict-verdict gather seed exists" true con

(* one seed per verdict through the whole differential oracle with the
   racecheck stage: the parallelized gather replays race-free, and the
   conflict verdict masks the fallback's sequential accesses *)
let test_igather_oracle_clean () =
  let rec find s want =
    if s > 40 then None
    else if List.mem want (igather_verdicts s) then Some s
    else find (s + 1) want
  in
  List.iter
    (fun (tag, want) ->
      match find 1 want with
      | None -> Alcotest.failf "no %s-verdict gather seed in 1-40" tag
      | Some seed ->
        let case = Fuzzgen.Fuzz.run_one ~racecheck:true ~shrink:false seed in
        if not (Fuzzgen.Oracle.passed case.Fuzzgen.Fuzz.c_report) then
          Alcotest.failf "%s gather seed %d fails the oracle: %s" tag seed
            (String.concat "; "
               (List.map Fuzzgen.Oracle.describe
                  case.Fuzzgen.Fuzz.c_report.Fuzzgen.Oracle.r_failures)))
    [ ("disjoint", true); ("conflict", false) ]

(* shrinker replay on a seed carrying the gather shape: inject an illegal
   transform, shrink, and replay from the seed *)
let test_igather_shrinker_replay () =
  let rec find s =
    if s > 40 then None
    else if has_igather (Fuzzgen.Gen.source_of_seed s) then begin
      let case = Fuzzgen.Fuzz.run_one ~inject:true ~shrink:false s in
      let kinds =
        List.map Fuzzgen.Oracle.kind_tag case.Fuzzgen.Fuzz.c_report.Fuzzgen.Oracle.r_failures
      in
      if List.mem "output-mismatch" kinds then Some (s, case) else find (s + 1)
    end
    else find (s + 1)
  in
  match find 1 with
  | None -> Alcotest.skip ()  (* no injectable failure among the early seeds *)
  | Some (seed, case) ->
    let replay = Fuzzgen.Fuzz.run_one ~inject:true ~shrink:false seed in
    Alcotest.(check bool) "seed replays the same failure kinds" true
      (List.map Fuzzgen.Oracle.kind_tag
         replay.Fuzzgen.Fuzz.c_report.Fuzzgen.Oracle.r_failures
      = List.map Fuzzgen.Oracle.kind_tag
          case.Fuzzgen.Fuzz.c_report.Fuzzgen.Oracle.r_failures);
    let prog = Fuzzgen.Gen.program_of_seed seed in
    let minimized, _ = Fuzzgen.Shrink.minimize ~inject:true ~kind:"output-mismatch" prog in
    let shrunk = Ast_printer.program_to_string minimized in
    Alcotest.(check bool) "minimized is smaller" true
      (String.length shrunk < String.length case.Fuzzgen.Fuzz.c_source);
    let report = Fuzzgen.Oracle.check ~inject:true shrunk in
    Alcotest.(check bool) "minimized still fails the same way" true
      (List.exists
         (fun f -> Fuzzgen.Oracle.kind_tag f = "output-mismatch")
         report.Fuzzgen.Oracle.r_failures)

(* ------------------------------------------------------------------ *)
(* Differential oracle *)

let test_oracle_clean_campaign () =
  let result = Fuzzgen.Fuzz.campaign ~seed:1 ~count:10 () in
  Alcotest.(check int) "no mismatches on 10 seeds" 0 (List.length result.Fuzzgen.Fuzz.k_failed);
  Alcotest.(check int) "twelve configurations compared" 12 result.Fuzzgen.Fuzz.k_configs

(* disabling the legality check must produce an output mismatch the oracle
   catches on some seed, and the shrinker must minimize it while the seed
   replays the same failure *)
let test_injected_miscompile_caught_and_shrunk () =
  let rec find_failure seed =
    if seed > 15 then Alcotest.fail "no injected miscompile caught in seeds 1-15"
    else
      let case = Fuzzgen.Fuzz.run_one ~inject:true ~shrink:false seed in
      let mismatches =
        List.filter
          (fun f -> Fuzzgen.Oracle.kind_tag f = "output-mismatch")
          case.Fuzzgen.Fuzz.c_report.Fuzzgen.Oracle.r_failures
      in
      if mismatches = [] then find_failure (seed + 1) else (seed, case)
  in
  let seed, case = find_failure 1 in
  (* replay from the seed alone: the failure reproduces identically *)
  let replay = Fuzzgen.Fuzz.run_one ~inject:true ~shrink:false seed in
  Alcotest.(check bool) "replay from seed fails identically" true
    (List.map Fuzzgen.Oracle.kind_tag replay.Fuzzgen.Fuzz.c_report.Fuzzgen.Oracle.r_failures
    = List.map Fuzzgen.Oracle.kind_tag case.Fuzzgen.Fuzz.c_report.Fuzzgen.Oracle.r_failures);
  (* the same seed without injection is clean: the oracle flags the injected
     illegality, not the program *)
  let clean = Fuzzgen.Fuzz.run_one ~inject:false ~shrink:false seed in
  Alcotest.(check bool) "same seed passes without injection" true
    (Fuzzgen.Oracle.passed clean.Fuzzgen.Fuzz.c_report);
  (* shrinking yields a smaller program that still fails the same way *)
  let prog = Fuzzgen.Gen.program_of_seed seed in
  let minimized, evals = Fuzzgen.Shrink.minimize ~inject:true ~kind:"output-mismatch" prog in
  let shrunk_src = Ast_printer.program_to_string minimized in
  Alcotest.(check bool) "shrinker spent at least one evaluation" true (evals > 0);
  Alcotest.(check bool) "minimized program is smaller" true
    (String.length shrunk_src < String.length case.Fuzzgen.Fuzz.c_source);
  let report = Fuzzgen.Oracle.check ~inject:true shrunk_src in
  Alcotest.(check bool) "minimized program still mismatches" true
    (List.exists
       (fun f -> Fuzzgen.Oracle.kind_tag f = "output-mismatch")
       report.Fuzzgen.Oracle.r_failures)

(* ------------------------------------------------------------------ *)
(* Worksharing plans are exact partitions *)

let flatten_sorted plan = List.sort compare (List.concat (Array.to_list plan))

let test_plan_partitions () =
  List.iter
    (fun sched ->
      List.iter
        (fun workers ->
          List.iter
            (fun (lo, hi) ->
              let plan = Runtime.Par_loop.plan sched ~workers ~lo ~hi in
              Alcotest.(check (list int))
                (Printf.sprintf "partition w=%d [%d,%d)" workers lo hi)
                (Support.Util.range lo hi) (flatten_sorted plan))
            [ (0, 0); (0, 1); (0, 7); (3, 20); (0, 64); (5, 6) ])
        [ 1; 3; 4; 16; 64 ])
    [ Runtime.Par_loop.Static; Runtime.Par_loop.Static_chunk 4; Runtime.Par_loop.Dynamic 1 ]

let test_plan_static_contiguous () =
  let plan = Runtime.Par_loop.plan Runtime.Par_loop.Static ~workers:4 ~lo:0 ~hi:8 in
  Alcotest.(check (list int)) "worker 0 gets first block" [ 0; 1 ] plan.(0);
  Alcotest.(check (list int)) "worker 3 gets last block" [ 6; 7 ] plan.(3)

let test_plan_chunked_round_robin () =
  let plan = Runtime.Par_loop.plan (Runtime.Par_loop.Static_chunk 2) ~workers:2 ~lo:0 ~hi:8 in
  Alcotest.(check (list int)) "worker 0 chunks 0 and 2" [ 0; 1; 4; 5 ] plan.(0);
  Alcotest.(check (list int)) "worker 1 chunks 1 and 3" [ 2; 3; 6; 7 ] plan.(1)

(* ------------------------------------------------------------------ *)
(* Exit-code classification (the CLI maps failure stages to exit codes) *)

let diag ~code =
  { Support.Diag.severity = Support.Diag.Error; code; loc = Support.Loc.dummy; message = "test" }

let test_classify_errors () =
  let check name expected diags =
    Alcotest.(check int) name expected (Toolchain.Chain.classify_errors diags)
  in
  check "parse code" Toolchain.Chain.exit_parse_error [ diag ~code:"parse" ];
  check "lexer code" Toolchain.Chain.exit_parse_error [ diag ~code:"lex" ];
  check "cpp code" Toolchain.Chain.exit_parse_error [ diag ~code:"cpp.include" ];
  check "purity code" Toolchain.Chain.exit_purity_error [ diag ~code:"pure.global-write" ];
  check "scop code" Toolchain.Chain.exit_purity_error [ diag ~code:"scop.arg-assigned" ];
  check "purity wins over parse" Toolchain.Chain.exit_purity_error
    [ diag ~code:"parse"; diag ~code:"pure.global-write" ];
  check "unknown code" Toolchain.Chain.exit_error [ diag ~code:"interp.whatever" ];
  check "no errors" Toolchain.Chain.exit_error []

let test_classify_end_to_end () =
  (* a parse error ends with the parse exit code *)
  (match Toolchain.Chain.compile "int main( {" with
  | _ -> Alcotest.fail "garbage parsed"
  | exception Support.Diag.Fatal d ->
    Alcotest.(check int) "parse failure classifies as parse" Toolchain.Chain.exit_parse_error
      (Toolchain.Chain.classify_errors [ d ])
  | exception Toolchain.Chain.Compile_error diags ->
    Alcotest.(check int) "parse failure classifies as parse" Toolchain.Chain.exit_parse_error
      (Toolchain.Chain.classify_errors diags));
  (* a purity violation under the pure chain ends with the purity exit code *)
  let impure =
    "int g;\n\
     pure int bad(int x) { g = x; return x; }\n\
     int main() { printf(\"%d\\n\", bad(1)); return 0; }\n"
  in
  match Toolchain.Chain.compile ~mode:(Toolchain.Chain.Pure_chain (fun c -> c)) impure with
  | _ -> Alcotest.fail "impure function accepted"
  | exception Toolchain.Chain.Compile_error diags ->
    Alcotest.(check int) "purity failure classifies as purity" Toolchain.Chain.exit_purity_error
      (Toolchain.Chain.classify_errors diags)

(* the installed binary itself returns the distinct codes *)
let test_cli_exit_codes () =
  let purec =
    (* dune runs tests in _build/default/test; the binary sits next door *)
    let candidates = [ "../bin/purec.exe"; "_build/default/bin/purec.exe" ] in
    match List.find_opt Sys.file_exists candidates with
    | Some p -> p
    | None -> Alcotest.skip ()
  in
  let run_file content args =
    let path = Filename.temp_file "purec_test" ".c" in
    let oc = open_out path in
    output_string oc content;
    close_out oc;
    let cmd =
      Printf.sprintf "%s %s %s >/dev/null 2>&1" (Filename.quote purec) args (Filename.quote path)
    in
    let code = Sys.command cmd in
    Sys.remove path;
    code
  in
  Alcotest.(check int) "parse error exits 2" Toolchain.Chain.exit_parse_error
    (run_file "int main( {" "check");
  Alcotest.(check int) "purity error exits 3" Toolchain.Chain.exit_purity_error
    (run_file
       "int g;\npure int bad(int x) { g = x; return x; }\nint main() { return bad(1); }\n"
       "check");
  Alcotest.(check int) "clean file exits 0" 0
    (run_file "int main() { printf(\"ok\\n\"); return 0; }\n" "check")

(* ------------------------------------------------------------------ *)
(* Campaign exit-code precedence: race (5) outranks mismatch (4) *)

let mk_case kinds =
  {
    Fuzzgen.Fuzz.c_seed = 0;
    c_report = { Fuzzgen.Oracle.r_seed = Some 0; r_failures = kinds; r_configs = 7 };
    c_source = "";
    c_shrunk = None;
  }

let mismatch = Fuzzgen.Oracle.Output_mismatch { config = "pure-static"; expected = "a"; got = "b" }

let race = Fuzzgen.Oracle.Race_detected { config = "pure-static"; detail = "w" }

let disagreement = Fuzzgen.Oracle.Engine_disagreement { config = "pure-static"; detail = "d" }

let test_campaign_exit_code_precedence () =
  let code cases =
    Fuzzgen.Fuzz.campaign_exit_code
      { Fuzzgen.Fuzz.k_count = List.length cases; k_failed = cases; k_configs = 7 }
  in
  Alcotest.(check int) "clean campaign exits 0" Toolchain.Chain.exit_ok (code []);
  Alcotest.(check int) "mismatch alone exits 4" Toolchain.Chain.exit_fuzz_mismatch
    (code [ mk_case [ mismatch ] ]);
  Alcotest.(check int) "race alone exits 5" Toolchain.Chain.exit_race
    (code [ mk_case [ race ] ]);
  (* the precedence bug: one seed hitting BOTH a mismatch and a race must
     exit 5, whatever order the failures were recorded in *)
  Alcotest.(check int) "mismatch + race on one seed exits 5" Toolchain.Chain.exit_race
    (code [ mk_case [ mismatch; race ] ]);
  Alcotest.(check int) "race + mismatch on one seed exits 5" Toolchain.Chain.exit_race
    (code [ mk_case [ race; mismatch ] ]);
  Alcotest.(check int) "mismatch and race on different seeds exits 5"
    Toolchain.Chain.exit_race
    (code [ mk_case [ mismatch ]; mk_case [ race ] ]);
  Alcotest.(check int) "an engine disagreement is a race-channel failure"
    Toolchain.Chain.exit_race
    (code [ mk_case [ mismatch ]; mk_case [ disagreement ] ])

(* e2e: an injected illegal transform under --racecheck exits 5 (the race
   verdict outranks the output mismatch the same seed also produces), and
   the campaign report on stdout is byte-identical across --jobs *)
let test_cli_fuzz_racecheck_and_jobs () =
  let purec =
    let candidates = [ "../bin/purec.exe"; "_build/default/bin/purec.exe" ] in
    match List.find_opt Sys.file_exists candidates with
    | Some p -> p
    | None -> Alcotest.skip ()
  in
  let run args out =
    Sys.command
      (Printf.sprintf "%s fuzz %s > %s 2>/dev/null" (Filename.quote purec) args
         (Filename.quote out))
  in
  (* find a seed the injected racecheck campaign fails on (cheap in-process
     scan, then one CLI invocation on that seed) *)
  let rec find_racy s =
    if s > 10 then None
    else
      let case = Fuzzgen.Fuzz.run_one ~inject:true ~racecheck:true ~shrink:false s in
      let kinds =
        List.map Fuzzgen.Oracle.kind_tag case.Fuzzgen.Fuzz.c_report.Fuzzgen.Oracle.r_failures
      in
      if List.mem "race-detected" kinds then Some s else find_racy (s + 1)
  in
  let out = Filename.temp_file "purec_fuzz" ".out" in
  (match find_racy 1 with
  | None -> ()
  | Some s ->
    Alcotest.(check int) "inject + racecheck exits 5" Toolchain.Chain.exit_race
      (run (Printf.sprintf "--seed %d --count 1 --inject-illegal --racecheck --no-shrink" s) out));
  (* --jobs byte-identity on a clean slice of the campaign *)
  let out2 = Filename.temp_file "purec_fuzz" ".out" in
  let read f =
    let ic = open_in_bin f in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  Alcotest.(check int) "jobs 1 clean" 0 (run "--seed 1 --count 4 --no-shrink --jobs 1" out);
  Alcotest.(check int) "jobs 2 clean" 0 (run "--seed 1 --count 4 --no-shrink --jobs 2" out2);
  Alcotest.(check string) "stdout byte-identical across --jobs" (read out) (read out2);
  Sys.remove out;
  Sys.remove out2

let suite =
  [
    Alcotest.test_case "substitute fixpoint on workloads" `Quick test_substitute_workloads;
    QCheck_alcotest.to_alcotest qcheck_substitute_fuzzed;
    QCheck_alcotest.to_alcotest qcheck_printer_roundtrip_fuzzed;
    Alcotest.test_case "generator validity" `Quick test_generator_validity;
    Alcotest.test_case "generator determinism" `Quick test_generator_deterministic;
    Alcotest.test_case "oracle clean campaign" `Quick test_oracle_clean_campaign;
    Alcotest.test_case "injected miscompile caught and shrunk" `Slow
      test_injected_miscompile_caught_and_shrunk;
    Alcotest.test_case "plan partitions" `Quick test_plan_partitions;
    Alcotest.test_case "plan static blocks" `Quick test_plan_static_contiguous;
    Alcotest.test_case "plan chunk round-robin" `Quick test_plan_chunked_round_robin;
    Alcotest.test_case "classify_errors" `Quick test_classify_errors;
    Alcotest.test_case "classification end-to-end" `Quick test_classify_end_to_end;
    Alcotest.test_case "cli exit codes" `Quick test_cli_exit_codes;
    Alcotest.test_case "stress grammars present and deterministic" `Quick
      test_grammar_presence;
    Alcotest.test_case "csr gather runtime-checked" `Quick
      test_csr_gather_runtime_checked;
    Alcotest.test_case "written index array still rejected" `Quick
      test_written_index_array_still_rejected;
    Alcotest.test_case "indirect-write gather present and deterministic" `Quick
      test_igather_presence;
    Alcotest.test_case "indirect-write gather both verdicts" `Quick
      test_igather_both_verdicts;
    Alcotest.test_case "indirect-write gather oracle-clean" `Quick
      test_igather_oracle_clean;
    Alcotest.test_case "indirect-write gather shrinker replay" `Slow
      test_igather_shrinker_replay;
    Alcotest.test_case "triangular nest oracle-clean" `Quick test_triangular_oracle_clean;
    Alcotest.test_case "stress-grammar shrinker replay" `Slow
      test_stress_grammar_shrinker_replay;
    Alcotest.test_case "tileable nest present and deterministic" `Quick
      test_tileable_presence;
    Alcotest.test_case "tileable nest oracle-clean" `Quick
      test_tileable_oracle_clean;
    Alcotest.test_case "tileable shrinker replay" `Slow
      test_tileable_shrinker_replay;
    Alcotest.test_case "reduction shape present and deterministic" `Quick
      test_reduction_shape_presence;
    Alcotest.test_case "critical shape present and deterministic" `Quick
      test_critical_shape_presence;
    Alcotest.test_case "reduction shape oracle-clean" `Quick
      test_reduction_oracle_clean;
    Alcotest.test_case "critical shape oracle-clean" `Quick
      test_critical_oracle_clean;
    Alcotest.test_case "reduction shape shrinker replay" `Slow
      test_reduction_shrinker_replay;
    Alcotest.test_case "campaign exit-code precedence" `Quick
      test_campaign_exit_code_precedence;
    Alcotest.test_case "cli fuzz racecheck + jobs determinism" `Slow
      test_cli_fuzz_racecheck_and_jobs;
  ]
