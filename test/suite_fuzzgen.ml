(** Differential fuzzing subsystem tests: generator validity, the
    hide/reveal substitution property, oracle agreement on clean builds,
    fault-injection detection with seed-replayable shrinking, worksharing
    plan partitions, and CLI exit-code classification. *)

open Cfront

(* ------------------------------------------------------------------ *)
(* Substitution round-trip: hiding pure calls behind opaque constants and
   revealing them again must pretty-print back to the original program. *)

let hide_reveal_fixpoint (prog : Ast.program) =
  let transformed =
    List.map
      (fun g ->
        match g with
        | Ast.GFunc ({ Ast.f_body = Some body; _ } as fn) ->
          let table = Purity.Substitute.create () in
          let hidden = List.map (Purity.Substitute.hide_stmt table) body in
          let revealed = List.map (Purity.Substitute.reveal_stmt table) hidden in
          Ast.GFunc { fn with Ast.f_body = Some revealed }
        | g -> g)
      prog
  in
  Ast_printer.program_to_string transformed = Ast_printer.program_to_string prog

let workload_sources =
  [
    ("matmul-pure", Workloads.Matmul.pure_source ());
    ("matmul-inlined", Workloads.Matmul.inlined_source ());
    ("matmul-pure-noinit", Workloads.Matmul.pure_noinit_source ());
    ("heat-pure", Workloads.Heat.pure_source ());
    ("heat-inlined", Workloads.Heat.inlined_source ());
    ("satellite-pure", Workloads.Satellite.pure_source ());
    ("satellite-manual", Workloads.Satellite.manual_source ());
    ("lama-pure", Workloads.Lama_app.pure_source ());
    ("lama-manual", Workloads.Lama_app.manual_source ());
  ]
  @ List.map (fun k -> ("kernel-" ^ k.Workloads.Kernels.k_name, k.Workloads.Kernels.k_source)) Workloads.Kernels.all

let test_substitute_workloads () =
  List.iter
    (fun (name, src) ->
      let prog = Parser.program_of_string src in
      Alcotest.(check bool) (name ^ " hide/reveal fixpoint") true (hide_reveal_fixpoint prog))
    workload_sources

let qcheck_substitute_fuzzed =
  QCheck.Test.make ~name:"hide/reveal fixpoint on fuzzed programs" ~count:40
    QCheck.(int_bound 100_000)
    (fun seed -> hide_reveal_fixpoint (Fuzzgen.Gen.program_of_seed seed))

let qcheck_printer_roundtrip_fuzzed =
  QCheck.Test.make ~name:"printer round-trip fixpoint on fuzzed programs" ~count:40
    QCheck.(int_bound 100_000)
    (fun seed ->
      let printed = Ast_printer.program_to_string (Fuzzgen.Gen.program_of_seed seed) in
      let reparsed = Parser.program_of_string printed in
      let printed' = Ast_printer.program_to_string reparsed in
      Ast_printer.program_to_string (Parser.program_of_string printed') = printed')

(* ------------------------------------------------------------------ *)
(* Generated programs are valid by construction *)

let test_generator_validity () =
  for seed = 1 to 15 do
    let src = Fuzzgen.Gen.source_of_seed seed in
    match Toolchain.Chain.run ~mode:Toolchain.Chain.Sequential src with
    | _, profile ->
      Alcotest.(check int)
        (Printf.sprintf "seed %d returns 0" seed)
        0 profile.Interp.Trace.return_code;
      Alcotest.(check bool)
        (Printf.sprintf "seed %d prints checksums" seed)
        true
        (String.length profile.Interp.Trace.output > 0)
    | exception Toolchain.Chain.Compile_error diags ->
      Alcotest.failf "seed %d does not compile: %s" seed
        (String.concat "; " (List.map (fun d -> d.Support.Diag.message) diags))
  done

let test_generator_deterministic () =
  Alcotest.(check string)
    "same seed, same program" (Fuzzgen.Gen.source_of_seed 42) (Fuzzgen.Gen.source_of_seed 42);
  Alcotest.(check bool)
    "different seeds, different programs" true
    (Fuzzgen.Gen.source_of_seed 42 <> Fuzzgen.Gen.source_of_seed 43)

(* ------------------------------------------------------------------ *)
(* Differential oracle *)

let test_oracle_clean_campaign () =
  let result = Fuzzgen.Fuzz.campaign ~seed:1 ~count:10 () in
  Alcotest.(check int) "no mismatches on 10 seeds" 0 (List.length result.Fuzzgen.Fuzz.k_failed);
  Alcotest.(check int) "seven configurations compared" 7 result.Fuzzgen.Fuzz.k_configs

(* disabling the legality check must produce an output mismatch the oracle
   catches on some seed, and the shrinker must minimize it while the seed
   replays the same failure *)
let test_injected_miscompile_caught_and_shrunk () =
  let rec find_failure seed =
    if seed > 15 then Alcotest.fail "no injected miscompile caught in seeds 1-15"
    else
      let case = Fuzzgen.Fuzz.run_one ~inject:true ~shrink:false seed in
      let mismatches =
        List.filter
          (fun f -> Fuzzgen.Oracle.kind_tag f = "output-mismatch")
          case.Fuzzgen.Fuzz.c_report.Fuzzgen.Oracle.r_failures
      in
      if mismatches = [] then find_failure (seed + 1) else (seed, case)
  in
  let seed, case = find_failure 1 in
  (* replay from the seed alone: the failure reproduces identically *)
  let replay = Fuzzgen.Fuzz.run_one ~inject:true ~shrink:false seed in
  Alcotest.(check bool) "replay from seed fails identically" true
    (List.map Fuzzgen.Oracle.kind_tag replay.Fuzzgen.Fuzz.c_report.Fuzzgen.Oracle.r_failures
    = List.map Fuzzgen.Oracle.kind_tag case.Fuzzgen.Fuzz.c_report.Fuzzgen.Oracle.r_failures);
  (* the same seed without injection is clean: the oracle flags the injected
     illegality, not the program *)
  let clean = Fuzzgen.Fuzz.run_one ~inject:false ~shrink:false seed in
  Alcotest.(check bool) "same seed passes without injection" true
    (Fuzzgen.Oracle.passed clean.Fuzzgen.Fuzz.c_report);
  (* shrinking yields a smaller program that still fails the same way *)
  let prog = Fuzzgen.Gen.program_of_seed seed in
  let minimized, evals = Fuzzgen.Shrink.minimize ~inject:true ~kind:"output-mismatch" prog in
  let shrunk_src = Ast_printer.program_to_string minimized in
  Alcotest.(check bool) "shrinker spent at least one evaluation" true (evals > 0);
  Alcotest.(check bool) "minimized program is smaller" true
    (String.length shrunk_src < String.length case.Fuzzgen.Fuzz.c_source);
  let report = Fuzzgen.Oracle.check ~inject:true shrunk_src in
  Alcotest.(check bool) "minimized program still mismatches" true
    (List.exists
       (fun f -> Fuzzgen.Oracle.kind_tag f = "output-mismatch")
       report.Fuzzgen.Oracle.r_failures)

(* ------------------------------------------------------------------ *)
(* Worksharing plans are exact partitions *)

let flatten_sorted plan = List.sort compare (List.concat (Array.to_list plan))

let test_plan_partitions () =
  List.iter
    (fun sched ->
      List.iter
        (fun workers ->
          List.iter
            (fun (lo, hi) ->
              let plan = Runtime.Par_loop.plan sched ~workers ~lo ~hi in
              Alcotest.(check (list int))
                (Printf.sprintf "partition w=%d [%d,%d)" workers lo hi)
                (Support.Util.range lo hi) (flatten_sorted plan))
            [ (0, 0); (0, 1); (0, 7); (3, 20); (0, 64); (5, 6) ])
        [ 1; 3; 4; 16; 64 ])
    [ Runtime.Par_loop.Static; Runtime.Par_loop.Static_chunk 4; Runtime.Par_loop.Dynamic 1 ]

let test_plan_static_contiguous () =
  let plan = Runtime.Par_loop.plan Runtime.Par_loop.Static ~workers:4 ~lo:0 ~hi:8 in
  Alcotest.(check (list int)) "worker 0 gets first block" [ 0; 1 ] plan.(0);
  Alcotest.(check (list int)) "worker 3 gets last block" [ 6; 7 ] plan.(3)

let test_plan_chunked_round_robin () =
  let plan = Runtime.Par_loop.plan (Runtime.Par_loop.Static_chunk 2) ~workers:2 ~lo:0 ~hi:8 in
  Alcotest.(check (list int)) "worker 0 chunks 0 and 2" [ 0; 1; 4; 5 ] plan.(0);
  Alcotest.(check (list int)) "worker 1 chunks 1 and 3" [ 2; 3; 6; 7 ] plan.(1)

(* ------------------------------------------------------------------ *)
(* Exit-code classification (the CLI maps failure stages to exit codes) *)

let diag ~code =
  { Support.Diag.severity = Support.Diag.Error; code; loc = Support.Loc.dummy; message = "test" }

let test_classify_errors () =
  let check name expected diags =
    Alcotest.(check int) name expected (Toolchain.Chain.classify_errors diags)
  in
  check "parse code" Toolchain.Chain.exit_parse_error [ diag ~code:"parse" ];
  check "lexer code" Toolchain.Chain.exit_parse_error [ diag ~code:"lex" ];
  check "cpp code" Toolchain.Chain.exit_parse_error [ diag ~code:"cpp.include" ];
  check "purity code" Toolchain.Chain.exit_purity_error [ diag ~code:"pure.global-write" ];
  check "scop code" Toolchain.Chain.exit_purity_error [ diag ~code:"scop.arg-assigned" ];
  check "purity wins over parse" Toolchain.Chain.exit_purity_error
    [ diag ~code:"parse"; diag ~code:"pure.global-write" ];
  check "unknown code" Toolchain.Chain.exit_error [ diag ~code:"interp.whatever" ];
  check "no errors" Toolchain.Chain.exit_error []

let test_classify_end_to_end () =
  (* a parse error ends with the parse exit code *)
  (match Toolchain.Chain.compile "int main( {" with
  | _ -> Alcotest.fail "garbage parsed"
  | exception Support.Diag.Fatal d ->
    Alcotest.(check int) "parse failure classifies as parse" Toolchain.Chain.exit_parse_error
      (Toolchain.Chain.classify_errors [ d ])
  | exception Toolchain.Chain.Compile_error diags ->
    Alcotest.(check int) "parse failure classifies as parse" Toolchain.Chain.exit_parse_error
      (Toolchain.Chain.classify_errors diags));
  (* a purity violation under the pure chain ends with the purity exit code *)
  let impure =
    "int g;\n\
     pure int bad(int x) { g = x; return x; }\n\
     int main() { printf(\"%d\\n\", bad(1)); return 0; }\n"
  in
  match Toolchain.Chain.compile ~mode:(Toolchain.Chain.Pure_chain (fun c -> c)) impure with
  | _ -> Alcotest.fail "impure function accepted"
  | exception Toolchain.Chain.Compile_error diags ->
    Alcotest.(check int) "purity failure classifies as purity" Toolchain.Chain.exit_purity_error
      (Toolchain.Chain.classify_errors diags)

(* the installed binary itself returns the distinct codes *)
let test_cli_exit_codes () =
  let purec =
    (* dune runs tests in _build/default/test; the binary sits next door *)
    let candidates = [ "../bin/purec.exe"; "_build/default/bin/purec.exe" ] in
    match List.find_opt Sys.file_exists candidates with
    | Some p -> p
    | None -> Alcotest.skip ()
  in
  let run_file content args =
    let path = Filename.temp_file "purec_test" ".c" in
    let oc = open_out path in
    output_string oc content;
    close_out oc;
    let cmd =
      Printf.sprintf "%s %s %s >/dev/null 2>&1" (Filename.quote purec) args (Filename.quote path)
    in
    let code = Sys.command cmd in
    Sys.remove path;
    code
  in
  Alcotest.(check int) "parse error exits 2" Toolchain.Chain.exit_parse_error
    (run_file "int main( {" "check");
  Alcotest.(check int) "purity error exits 3" Toolchain.Chain.exit_purity_error
    (run_file
       "int g;\npure int bad(int x) { g = x; return x; }\nint main() { return bad(1); }\n"
       "check");
  Alcotest.(check int) "clean file exits 0" 0
    (run_file "int main() { printf(\"ok\\n\"); return 0; }\n" "check")

let suite =
  [
    Alcotest.test_case "substitute fixpoint on workloads" `Quick test_substitute_workloads;
    QCheck_alcotest.to_alcotest qcheck_substitute_fuzzed;
    QCheck_alcotest.to_alcotest qcheck_printer_roundtrip_fuzzed;
    Alcotest.test_case "generator validity" `Quick test_generator_validity;
    Alcotest.test_case "generator determinism" `Quick test_generator_deterministic;
    Alcotest.test_case "oracle clean campaign" `Quick test_oracle_clean_campaign;
    Alcotest.test_case "injected miscompile caught and shrunk" `Slow
      test_injected_miscompile_caught_and_shrunk;
    Alcotest.test_case "plan partitions" `Quick test_plan_partitions;
    Alcotest.test_case "plan static blocks" `Quick test_plan_static_contiguous;
    Alcotest.test_case "plan chunk round-robin" `Quick test_plan_chunked_round_robin;
    Alcotest.test_case "classify_errors" `Quick test_classify_errors;
    Alcotest.test_case "classification end-to-end" `Quick test_classify_end_to_end;
    Alcotest.test_case "cli exit codes" `Quick test_cli_exit_codes;
  ]
