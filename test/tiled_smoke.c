/* Smoke workload for the @tile-smoke CI alias: a scop-marked matmul nest
 * that PluTo tiles, so `purec run --tile 4 --jobs 2` exercises
 * tile-granular dispatch on the domain pool and `purec racecheck --tile 4`
 * replays the tile loops via nested traces.  The weighted checksum makes
 * any mis-scheduled iteration visible in the output. */
#include <stdio.h>

double A[24][24];
double B[24][24];
double C[24][24];

int main(void) {
  for (int i = 0; i < 24; i++) {
    for (int j = 0; j < 24; j++) {
      A[i][j] = (i * 13 + j * 7) % 101 * 0.01 + 0.5;
      B[i][j] = (i * 11 + j * 17) % 97 * 0.01 + 0.25;
      C[i][j] = 0.0;
    }
  }
#pragma scop
  for (int i = 0; i < 24; i++) {
    for (int j = 0; j < 24; j++) {
      for (int k = 0; k < 24; k++) {
        C[i][j] = C[i][j] + A[i][k] * B[k][j];
      }
    }
  }
#pragma endscop
  double sum = 0.0;
  for (int i = 0; i < 24; i++) {
    for (int j = 0; j < 24; j++) {
      sum = sum + C[i][j] * ((i * 3 + j * 5) % 7 + 1);
    }
  }
  printf("checksum %.17g\n", sum);
  return 0;
}
