/* Skewed triangular nest under schedule(guided,1): iteration i does i
   units of work, so static partitions are maximally imbalanced and the
   guided grants really flow through the work-stealing deques.  Every
   operand is a dyadic rational and each cell is written exactly once,
   so the checksum is byte-identical at every --jobs and schedule. */
#include <stdio.h>

double S[48][48];
double W[48];

int main(void) {
  for (int i = 0; i < 48; i++) {
    W[i] = (i * 11 % 23) * 0.25;
    for (int j = 0; j < 48; j++) {
      S[i][j] = ((i + j) % 17) * 0.5;
    }
  }
#pragma omp parallel for schedule(guided,1)
  for (int i = 1; i < 48; i++) {
    for (int j = 0; j < i; j++) {
      S[i][j] = S[i][j] * 0.5 + W[j] * 0.25;
    }
  }
  double s = 0.0;
  for (int i = 0; i < 48; i++) {
    for (int j = 0; j < 48; j++) {
      s += S[i][j] * ((i + j) % 7);
    }
  }
  printf("tri %.17g\n", s);
  return 0;
}
