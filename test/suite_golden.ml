(** Golden-file round-trip tests for every workload source.

    Each source goes through the front half of the chain — PC-PrePro strip,
    GCC-E preprocessing, parse — and is pretty-printed.  The result must

    - match the committed golden file in [test/golden/] byte for byte
      (any printer or parser change shows up as a reviewable diff), and
    - be a fixed point of parse ∘ print (lex → parse → print → lex → parse
      reproduces the same text), the property every source-to-source stage
      of the pipeline relies on.

    Regenerate the golden files after an intentional printer change with:
    [GOLDEN_UPDATE=/abs/path/to/test/golden dune runtest]. *)

open Cfront

(* fixed small sizes so the golden files stay readable and stable *)
let cases =
  [
    ("matmul_pure", Workloads.Matmul.pure_source ~n:8 ());
    ("matmul_inlined", Workloads.Matmul.inlined_source ~n:8 ());
    ("matmul_pure_noinit", Workloads.Matmul.pure_noinit_source ~n:8 ());
    ("heat_pure", Workloads.Heat.pure_source ~n:8 ~t:2 ());
    ("heat_inlined", Workloads.Heat.inlined_source ~n:8 ~t:2 ());
    ("satellite_pure", Workloads.Satellite.pure_source ~w:6 ~h:4 ~bands:3 ());
    ("satellite_manual", Workloads.Satellite.manual_source ~w:6 ~h:4 ~bands:3 ());
    ("lama_pure", Workloads.Lama_app.pure_source ~rows:8 ~maxnnz:3 ~reps:2 ());
    ("lama_manual", Workloads.Lama_app.manual_source ~rows:8 ~maxnnz:3 ~reps:2 ());
  ]
  @ List.map
      (fun k -> ("kernel_" ^ k.Workloads.Kernels.k_name, k.Workloads.Kernels.k_source))
      Workloads.Kernels.all

(* strip → preprocess → parse, failing the test on any diagnostic error *)
let front_half name source =
  let reporter = Support.Diag.create_reporter () in
  let stripped = Cpp.Pc_prepro.strip source in
  let env = Cpp.Preproc.create ~reporter () in
  let preprocessed = Cpp.Preproc.run env stripped.Cpp.Pc_prepro.source in
  let prog = Parser.program_of_string ~reporter preprocessed in
  if Support.Diag.has_errors reporter then
    Alcotest.failf "%s: front half reported errors: %s" name
      (String.concat "; "
         (List.map (fun d -> d.Support.Diag.message) (Support.Diag.errors reporter)));
  prog

let golden_path name =
  (* dune runs the tests in _build/default/test with golden/ declared as deps *)
  Filename.concat "golden" (name ^ ".golden")

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let update_dir () = Sys.getenv_opt "GOLDEN_UPDATE"

let test_case_for (name, source) () =
  let printed = Ast_printer.program_to_string (front_half name source) in
  (match update_dir () with
  | Some dir ->
    let oc = open_out_bin (Filename.concat dir (name ^ ".golden")) in
    output_string oc printed;
    close_out oc
  | None ->
    let path = golden_path name in
    if not (Sys.file_exists path) then
      Alcotest.failf "%s: missing golden file %s (set GOLDEN_UPDATE to generate)" name path;
    Alcotest.(check string) (name ^ " matches golden") (read_file path) printed);
  (* lex → parse → print is a fixed point of the printed form *)
  let reparsed = Parser.program_of_string printed in
  Alcotest.(check string)
    (name ^ " parse/print fixed point")
    printed
    (Ast_printer.program_to_string reparsed)

(* ------------------------------------------------------------------ *)
(* Per-outcome attribution text of [purec racecheck --workload kernels]:
   every gallery kernel lists its transform units — naming the schedule
   matrix each unit committed to — in stable order, then its verdict.
   Stdout is byte-identical across --jobs, so the golden pins the exact
   report bytes. *)

let golden_of_command ?(expect_code = 0) ~name ~args () =
  let purec =
    let candidates = [ "../bin/purec.exe"; "_build/default/bin/purec.exe" ] in
    match List.find_opt Sys.file_exists candidates with
    | Some p -> p
    | None -> Alcotest.skip ()
  in
  let out = Filename.temp_file "purec_golden" ".out" in
  let code =
    Sys.command
      (Printf.sprintf "%s %s > %s 2>/dev/null" (Filename.quote purec) args
         (Filename.quote out))
  in
  Alcotest.(check int)
    (Printf.sprintf "purec %s exits %d" args expect_code)
    expect_code code;
  let printed = read_file out in
  Sys.remove out;
  match update_dir () with
  | Some dir ->
    let oc = open_out_bin (Filename.concat dir (name ^ ".golden")) in
    output_string oc printed;
    close_out oc
  | None ->
    let path = golden_path name in
    if not (Sys.file_exists path) then
      Alcotest.failf "%s: missing golden file %s (set GOLDEN_UPDATE to generate)" name path;
    Alcotest.(check string) (name ^ " report matches golden") (read_file path) printed

let test_racecheck_kernels_attribution =
  golden_of_command ~name:"racecheck_kernels" ~args:"racecheck --workload kernels"

(* the wavefront gallery under tiling: the skewed, tiled nest replays via
   nested (tile → point) traces; the report pins its [unit N] schedule-matrix
   attribution and clean verdict *)
let test_racecheck_wavefront_tiled =
  golden_of_command ~name:"racecheck_wavefront_tiled"
    ~args:"racecheck --workload pure-wavefront --workload antidiag --tile 4"

(* The critical/atomic lowering pair: a dot product whose shared
   accumulator is updated under [#pragma omp critical] is clean under both
   engines (the trace carries the lock id on every access), and the same
   kernel with the pragma stripped is racy under every plan — exit 5, with
   the hand-written-pragma attribution line pinned. *)
let test_racecheck_critical_guarded =
  golden_of_command ~name:"racecheck_critical_guarded"
    ~args:"racecheck critical_guarded.c --mode manual --engine both --cores 4"

let test_racecheck_critical_unguarded =
  golden_of_command ~expect_code:Toolchain.Chain.exit_race
    ~name:"racecheck_critical_unguarded"
    ~args:"racecheck critical_unguarded.c --mode manual --engine both --cores 4"

(* The work-stealing linearizations, pinned explicitly under guided: the
   tiled wavefront replays clean (guided's grant boundaries are a pure
   function of the plan, so both engines see identical chunking), and the
   unguarded critical pair is racy under guided exactly as under static —
   stealing moves grants between streams but never changes the verdict. *)
let test_racecheck_wavefront_guided =
  golden_of_command ~name:"racecheck_wavefront_guided"
    ~args:
      "racecheck --workload pure-wavefront --workload antidiag --tile 4 \
       --schedule guided,2 --cores 4"

let test_racecheck_critical_unguarded_guided =
  golden_of_command ~expect_code:Toolchain.Chain.exit_race
    ~name:"racecheck_critical_unguarded_guided"
    ~args:
      "racecheck critical_unguarded.c --mode manual --engine both \
       --schedule guided,1 --cores 4"

(* The inspector/executor pair.  The runtime-disjoint and conflicting
   gathers replay clean under the full plan matrix with their verdict
   lines pinned inside racecheck_kernels above; here the duplicate-write
   gather is additionally forced parallel — inspector off plus the
   injected legality skip — and must race under both engines, with the
   [unit N] schedule-matrix attribution and iteration-vector witnesses
   pinned byte for byte — exit 5, the same contract as every other racy
   golden. *)
let test_racecheck_gather_forced =
  golden_of_command ~expect_code:Toolchain.Chain.exit_race
    ~name:"racecheck_gather_forced"
    ~args:
      "racecheck --workload gather-conflict --inspector false \
       --inject-illegal --engine both --cores 4"

let suite =
  List.map (fun (name, src) -> Alcotest.test_case name `Quick (test_case_for (name, src))) cases
  @ [
      Alcotest.test_case "racecheck_kernels_attribution" `Quick
        test_racecheck_kernels_attribution;
      Alcotest.test_case "racecheck_wavefront_tiled" `Quick
        test_racecheck_wavefront_tiled;
      Alcotest.test_case "racecheck_critical_guarded" `Quick
        test_racecheck_critical_guarded;
      Alcotest.test_case "racecheck_critical_unguarded" `Quick
        test_racecheck_critical_unguarded;
      Alcotest.test_case "racecheck_wavefront_guided" `Quick
        test_racecheck_wavefront_guided;
      Alcotest.test_case "racecheck_critical_unguarded_guided" `Quick
        test_racecheck_critical_unguarded_guided;
      Alcotest.test_case "racecheck_gather_forced" `Quick
        test_racecheck_gather_forced;
    ]
