(** Work-stealing scheduler battery.

    The deque scheduler (owner pops LIFO, thieves steal FIFO) and the
    [schedule(guided)] decaying-grant plan must be observationally
    invisible: for every program, schedule clause, pool size, and
    steal interleaving, the output bytes, return code, and fault text
    match the sequential interpreter exactly.  The battery sweeps

    - a skewed triangular nest and the wavefront gallery kernels under
      static / static,C / dynamic,C / guided,C at --jobs 1/2/4/8, in
      both instrumentation variants, against the sequential baseline,
    - a deterministic steal witness: a two-item handshake on one deque
      that can only complete if an idle stream steals,
    - guided stealing really happening on the skewed nest (the
      [Pool.steals] counter moves while bytes stay fixed),
    - nested pragmas inside a dispatched chunk reaching the deques
      (batch census via [Pool.batches]),
    - earliest-iteration fault selection when many stolen chunks fault
      concurrently, pool reuse after the fault, idempotent shutdown,
    - a 200-run determinism soak at fixed jobs. *)

module C = Toolchain.Chain

type outcome = Finished of string * int | Faulted of string

let show_outcome = function
  | Finished (out, rc) -> Printf.sprintf "exit %d\n%s" rc out
  | Faulted m -> "fault: " ^ m

let outcome ?pool ~no_model c =
  match C.execute ?pool ~no_model c with
  | p -> Finished (p.Interp.Trace.output, p.Interp.Trace.return_code)
  | exception Interp.Exec.Runtime_error m -> Faulted m

let with_pool jobs f =
  if jobs <= 1 then f None
  else begin
    let pool = Runtime.Pool.create jobs in
    Fun.protect
      ~finally:(fun () -> Runtime.Pool.shutdown pool)
      (fun () -> f (Some pool))
  end

(* the check at the heart of the battery: whatever was stolen by whom,
   both variants reproduce the sequential bytes *)
let check_against_baseline name baseline ?pool c =
  let m = outcome ?pool ~no_model:false c in
  let f = outcome ?pool ~no_model:true c in
  Alcotest.(check string) (name ^ " modeled") (show_outcome baseline) (show_outcome m);
  Alcotest.(check string) (name ^ " fast") (show_outcome baseline) (show_outcome f)

let check_at_jobs name baseline jobs_list c =
  List.iter
    (fun jobs ->
      with_pool jobs (fun pool ->
          check_against_baseline (Printf.sprintf "%s --jobs %d" name jobs) baseline
            ?pool c))
    jobs_list

(* ------------------------------------------------------------------ *)
(* A skewed triangular nest: iteration i does i units of work, so static
   partitions are maximally imbalanced and guided/stealing really moves
   chunks between streams.  Every operand is a dyadic rational and each
   cell is written exactly once, so the bytes are schedule-independent. *)

let skew_source ?(clause = "") ?(n = 48) () =
  Printf.sprintf
    {|
#include <stdio.h>
double S[%d][%d];
double W[%d];
int main(void) {
  for (int i = 0; i < %d; i++) {
    W[i] = (i * 11 %% 23) * 0.25;
    for (int j = 0; j < %d; j++) {
      S[i][j] = ((i + j) %% 17) * 0.5;
    }
  }
#pragma omp parallel for%s
  for (int i = 1; i < %d; i++) {
    for (int j = 0; j < i; j++) {
      S[i][j] = S[i][j] * 0.5 + W[j] * 0.25;
    }
  }
  double s = 0.0;
  for (int i = 0; i < %d; i++) {
    for (int j = 0; j < %d; j++) {
      s += S[i][j] * ((i + j) %% 7);
    }
  }
  printf("tri %%.17g\n", s);
  return 0;
}
|}
    n n n n n clause n n n

let clauses =
  [ ""; " schedule(static,2)"; " schedule(dynamic,1)"; " schedule(guided,1)";
    " schedule(guided,3)" ]

let test_skew_identical_across_schedules () =
  let baseline = outcome ~no_model:false (C.compile ~mode:C.Sequential (skew_source ())) in
  (match baseline with
  | Finished _ -> ()
  | Faulted m -> Alcotest.failf "skew baseline faulted: %s" m);
  List.iter
    (fun clause ->
      let c = C.compile ~mode:C.Manual_omp (skew_source ~clause ()) in
      check_at_jobs (Printf.sprintf "skew%s" clause) baseline [ 1; 2; 4; 8 ] c)
    clauses

(* the wavefront kernels under guided: the same twins the racecheck
   goldens pin, really executed on domain pools *)

let guided_chain c0 =
  C.Pure_chain (fun cfg -> { cfg with Pluto.schedule_clause = Some c0 })

let test_gallery_guided () =
  let subset =
    [
      ("matmul_pure", Workloads.Matmul.pure_source ~n:8 ());
      ("heat_pure", Workloads.Heat.pure_source ~n:8 ~t:2 ());
      ("lama_pure", Workloads.Lama_app.pure_source ~rows:8 ~maxnnz:3 ~reps:2 ());
    ]
    @ List.filter_map
        (fun name ->
          Option.map
            (fun k -> ("kernel_" ^ name, k.Workloads.Kernels.k_source))
            (Workloads.Kernels.find name))
        [ "pure-wavefront"; "antidiag"; "seidel-2d" ]
  in
  List.iter
    (fun (name, src) ->
      let baseline = outcome ~no_model:false (C.compile ~mode:C.Sequential src) in
      List.iter
        (fun sched ->
          let c = C.compile ~mode:(guided_chain sched) src in
          check_at_jobs
            (Printf.sprintf "%s schedule(%s)" name sched)
            baseline [ 1; 2; 4; 8 ] c)
        [ "guided,1"; "guided,3" ])
    subset

(* ------------------------------------------------------------------ *)
(* Deterministic steal witness.  Both items are seeded onto stream 0's
   deque.  The owner pops LIFO, so it takes the spinner and blocks; the
   setter is left at the top of the deque, where only a FIFO thief can
   reach it.  The handshake therefore completes only via a steal. *)

let test_steal_witness_handshake () =
  with_pool 4 (fun pool ->
      match pool with
      | None -> ()
      | Some pool ->
        if Runtime.Pool.workers pool = 0 then () (* no thief exists: vacuous *)
        else begin
          Runtime.Pool.reset_steals pool;
          let stolen = Atomic.make false in
          let jobs =
            [
              (* pushed first: becomes the deque top, the thief's end *)
              (0, fun _sid -> Atomic.set stolen true);
              (* pushed last: the owner pops this one and spins until the
                 other item has run on some other stream (bounded, so a
                 scheduler bug fails the test instead of hanging it) *)
              ( 0,
                fun _sid ->
                  let spins = ref 0 in
                  while (not (Atomic.get stolen)) && !spins < 2_000_000_000 do
                    incr spins;
                    Domain.cpu_relax ()
                  done );
            ]
          in
          Runtime.Pool.run_sharded pool jobs;
          Alcotest.(check bool) "handshake completed via steal" true
            (Atomic.get stolen);
          Alcotest.(check bool) "steal counted" true (Runtime.Pool.steals pool >= 1)
        end)

(* guided grants on the skewed nest really migrate: the early grants are
   huge, so the streams whose deques drain first steal the loaded one's
   pending grants.  Retried because a single run's interleaving is
   timing-dependent; the bytes are checked on every attempt. *)

let test_steals_on_skewed_guided () =
  let src = skew_source ~clause:" schedule(guided,1)" ~n:96 () in
  let baseline = outcome ~no_model:false (C.compile ~mode:C.Sequential src) in
  let c = C.compile ~mode:C.Manual_omp src in
  with_pool 4 (fun pool ->
      match pool with
      | None -> ()
      | Some pool ->
        if Runtime.Pool.workers pool = 0 then ()
        else begin
          Runtime.Pool.reset_steals pool;
          let attempts = ref 0 in
          while Runtime.Pool.steals pool = 0 && !attempts < 50 do
            incr attempts;
            let f = outcome ~pool ~no_model:true c in
            Alcotest.(check string)
              (Printf.sprintf "skew guided bytes, attempt %d" !attempts)
              (show_outcome baseline) (show_outcome f)
          done;
          Alcotest.(check bool)
            (Printf.sprintf "steals observed within %d attempts" !attempts)
            true
            (Runtime.Pool.steals pool > 0)
        end)

(* ------------------------------------------------------------------ *)
(* Nested parallel pragmas inside a dispatched chunk must reach the
   deques (not silently sequentialize): the batch census counts the
   top-level dispatch plus at least one nested enqueue. *)

let nested_source =
  {|
#include <stdio.h>
double A[40][40];
int main(void) {
  for (int i = 0; i < 40; i++) {
    for (int j = 0; j < 40; j++) {
      A[i][j] = ((i * 40 + j) % 17) * 0.5;
    }
  }
#pragma omp parallel for
  for (int i = 0; i < 40; i++) {
#pragma omp parallel for schedule(guided,2)
    for (int j = 0; j < 40; j++) {
      A[i][j] = A[i][j] * 0.5 + 1.25;
    }
  }
  double s = 0.0;
  for (int i = 0; i < 40; i++) {
    for (int j = 0; j < 40; j++) {
      s += A[i][j] * ((i + j) % 5);
    }
  }
  printf("sum %.17g\n", s);
  return 0;
}
|}

let test_nested_dispatch_census () =
  let baseline = outcome ~no_model:false (C.compile ~mode:C.Sequential nested_source) in
  let c = C.compile ~mode:C.Manual_omp nested_source in
  (* identity first, at every pool size *)
  check_at_jobs "nested pragma" baseline [ 1; 2; 4; 8 ] c;
  (* census: at jobs 4 both variants enqueue nested batches beyond the
     single top-level dispatch *)
  with_pool 4 (fun pool ->
      match pool with
      | None -> ()
      | Some pool ->
        Runtime.Pool.reset_batches pool;
        let f = outcome ~pool ~no_model:true c in
        Alcotest.(check string) "nested fast bytes" (show_outcome baseline)
          (show_outcome f);
        let fast_batches = Runtime.Pool.batches pool in
        Alcotest.(check bool)
          (Printf.sprintf "fast nested dispatch reached the deques (%d batches)"
             fast_batches)
          true (fast_batches >= 2);
        Runtime.Pool.reset_batches pool;
        let m = outcome ~pool ~no_model:false c in
        Alcotest.(check string) "nested modeled bytes" (show_outcome baseline)
          (show_outcome m);
        let modeled_batches = Runtime.Pool.batches pool in
        Alcotest.(check bool)
          (Printf.sprintf "modeled nested chain reached the deques (%d batches)"
             modeled_batches)
          true (modeled_batches >= 2))

(* ------------------------------------------------------------------ *)
(* Fault determinism under stealing: every iteration from 37 on faults,
   each at a different out-of-bounds index, so the surfaced text is only
   right if the join picks the earliest iteration — not whichever stolen
   chunk crashed first on the wall clock. *)

let faulting_source ~clause =
  Printf.sprintf
    {|
#include <stdio.h>
double A[64];
int main(void) {
  for (int i = 0; i < 64; i++) {
    A[i] = i * 0.5;
  }
#pragma omp parallel for%s
  for (int i = 0; i < 64; i++) {
    int k = i;
    if (i >= 37) {
      k = i + 63;
    }
    A[k] = A[k] + 1.0;
  }
  printf("done %%.17g\n", A[12]);
  return 0;
}
|}
    clause

let test_fault_earliest_iteration () =
  List.iter
    (fun clause ->
      let src = faulting_source ~clause in
      let baseline = outcome ~no_model:false (C.compile ~mode:C.Sequential src) in
      (match baseline with
      | Faulted _ -> ()
      | Finished _ -> Alcotest.fail "fault program did not fault sequentially");
      let c = C.compile ~mode:C.Manual_omp src in
      check_at_jobs (Printf.sprintf "fault%s" clause) baseline [ 1; 2; 4; 8 ] c)
    [ ""; " schedule(dynamic,1)"; " schedule(guided,1)" ]

let test_pool_survives_fault_and_shutdown () =
  let faulty = C.compile ~mode:C.Manual_omp (faulting_source ~clause:" schedule(guided,1)") in
  let clean_src = skew_source ~clause:" schedule(guided,1)" () in
  let clean_baseline = outcome ~no_model:false (C.compile ~mode:C.Sequential clean_src) in
  let clean = C.compile ~mode:C.Manual_omp clean_src in
  let pool = Runtime.Pool.create 4 in
  Fun.protect
    ~finally:(fun () -> Runtime.Pool.shutdown pool)
    (fun () ->
      (match outcome ~pool ~no_model:true faulty with
      | Faulted _ -> ()
      | Finished _ -> Alcotest.fail "faulty program finished");
      (* the cancelled flag and failure slot were cleared: the same pool
         runs a clean batch and produces the exact baseline bytes *)
      check_against_baseline "pool reused after fault" clean_baseline
        ~pool clean);
  (* Fun.protect already shut the pool down once; shutdown again, then a
     third time via another finalizer — all no-ops *)
  Runtime.Pool.shutdown pool;
  Alcotest.(check int) "workers joined" 0 (Runtime.Pool.workers pool);
  Fun.protect ~finally:(fun () -> Runtime.Pool.shutdown pool) (fun () -> ())

(* ------------------------------------------------------------------ *)
(* Determinism soak: the same compiled skewed program, the same pool,
   200 fast runs (and 10 modeled runs) at jobs 4.  Every run must
   produce the bytes of the first — any schedule-dependent merge order,
   leaked scratch state, or cross-run contamination shows up here. *)

let test_determinism_soak () =
  let c = C.compile ~mode:C.Manual_omp (skew_source ~clause:" schedule(guided,1)" ~n:64 ()) in
  with_pool 4 (fun pool ->
      let first = show_outcome (outcome ?pool ~no_model:true c) in
      for run = 2 to 200 do
        let got = show_outcome (outcome ?pool ~no_model:true c) in
        if got <> first then
          Alcotest.failf "fast soak diverged on run %d:\n%s\nvs first:\n%s" run got
            first
      done;
      let first_m = show_outcome (outcome ?pool ~no_model:false c) in
      Alcotest.(check string) "modeled agrees with fast" first first_m;
      for run = 2 to 10 do
        let got = show_outcome (outcome ?pool ~no_model:false c) in
        if got <> first_m then Alcotest.failf "modeled soak diverged on run %d" run
      done)

let suite =
  [
    Alcotest.test_case "skew identical across schedules at jobs 1/2/4/8" `Slow
      test_skew_identical_across_schedules;
    Alcotest.test_case "gallery under guided at jobs 1/2/4/8" `Slow
      test_gallery_guided;
    Alcotest.test_case "steal witness handshake" `Quick test_steal_witness_handshake;
    Alcotest.test_case "steals observed on skewed guided nest" `Quick
      test_steals_on_skewed_guided;
    Alcotest.test_case "nested dispatch reaches the deques" `Quick
      test_nested_dispatch_census;
    Alcotest.test_case "fault picks earliest iteration" `Quick
      test_fault_earliest_iteration;
    Alcotest.test_case "pool survives fault; shutdown idempotent" `Quick
      test_pool_survives_fault_and_shutdown;
    Alcotest.test_case "200-run determinism soak at jobs 4" `Slow
      test_determinism_soak;
  ]
