(** Serve daemon tests: reply determinism across --jobs, per-request
    isolation under concurrency, back-pressure, error survival, batch
    aggregation, cache sharing, and the JSONL protocol itself. *)

module P = Serve.Protocol

let with_server ?jobs ?queue_depth f =
  let t = Serve.Server.create ?jobs ?queue_depth () in
  Fun.protect ~finally:(fun () -> Serve.Server.shutdown t) (fun () -> f t)

let jfield obj key =
  match P.field obj key with
  | Some v -> v
  | None -> Alcotest.failf "reply is missing field %S" key

let jint = function
  | P.Int n -> n
  | _ -> Alcotest.fail "expected a JSON integer"

let jstr = function
  | P.Str s -> s
  | _ -> Alcotest.fail "expected a JSON string"

let reply_field line key = jfield (P.of_string line) key

let reply_exit line = jint (reply_field line "exit")

let reply_status line = jstr (reply_field line "status")

let reply_stdout line = jstr (reply_field line "stdout")

let reply_id line = match reply_field line "id" with P.Str s -> s | _ -> "<non-string>"

(** id → reply line with elapsed_ms zeroed, for byte comparison. *)
let normalized_by_id lines =
  List.map (fun l -> (reply_id l, P.to_string (P.reply_significant (P.of_string l)))) lines
  |> List.sort compare

let obj fields = P.to_string (P.Obj fields)

let run_req ~id ?(mode = "manual") file =
  obj [ ("id", P.Str id); ("cmd", P.Str "run"); ("file", P.Str file); ("mode", P.Str mode) ]

let racecheck_req ~id ?(mode = "manual") file =
  obj
    [
      ("id", P.Str id);
      ("cmd", P.Str "racecheck");
      ("file", P.Str file);
      ("mode", P.Str mode);
      ("cores", P.Arr [ P.Int 4 ]);
    ]

(* ------------------------------------------------------------------ *)
(* protocol round-trip + classification *)

let test_json_roundtrip () =
  let v =
    P.Obj
      [
        ("id", P.Str "x\"y\n\t");
        ("n", P.Int (-42));
        ("f", P.Float 1.5);
        ("b", P.Bool true);
        ("z", P.Null);
        ("a", P.Arr [ P.Int 1; P.Str "two"; P.Obj [] ]);
      ]
  in
  Alcotest.(check bool) "roundtrip" true (P.of_string (P.to_string v) = v);
  (* \u escapes decode *)
  (match P.of_string "\"a\\u0041b\"" with
  | P.Str s -> Alcotest.(check string) "unicode escape" "aAb" s
  | _ -> Alcotest.fail "expected string");
  (* malformed inputs raise the protocol diag *)
  List.iter
    (fun bad ->
      match P.of_string bad with
      | exception Support.Diag.Fatal d ->
        Alcotest.(check string)
          ("kind of " ^ bad) "protocol"
          (Support.Diag.kind_to_string (Support.Diag.kind_of d))
      | _ -> Alcotest.failf "parsed %S" bad)
    [ "nope"; "{\"a\":}"; "{\"a\":1} trailing"; "\"unterminated"; "[1,]" ]

let test_protocol_exit_code () =
  (* proto.* codes classify to the new exit 6, ranked below parse *)
  let d code =
    { Support.Diag.severity = Support.Diag.Error; code; loc = Support.Loc.dummy; message = "" }
  in
  Alcotest.(check int) "protocol alone" 6
    (Toolchain.Chain.classify_errors [ d "proto.request" ]);
  Alcotest.(check int) "parse outranks protocol" 2
    (Toolchain.Chain.classify_errors [ d "proto.request"; d "parse" ]);
  Alcotest.(check int) "purity outranks protocol" 3
    (Toolchain.Chain.classify_errors [ d "pure.global-write"; d "proto.unreadable" ])

(* ------------------------------------------------------------------ *)
(* reply determinism across --jobs *)

let identity_script =
  [
    obj
      [
        ("id", P.Str "c1");
        ("cmd", P.Str "compile");
        ("file", P.Str "reduction_smoke.c");
        ("mode", P.Str "manual");
      ];
    run_req ~id:"r1" "reduction_smoke.c";
    racecheck_req ~id:"k1" "critical_guarded.c";
    racecheck_req ~id:"k2" "critical_unguarded.c";
    run_req ~id:"r2" "critical_guarded.c";
    obj [ ("id", P.Str "f1"); ("cmd", P.Str "fuzz"); ("seed", P.Int 1); ("count", P.Int 1) ];
  ]

let test_jobs_identical () =
  let at jobs = with_server ~jobs (fun t -> Serve.Server.run_script t identity_script) in
  let one = normalized_by_id (at 1) in
  let eight = normalized_by_id (at 8) in
  List.iter2
    (fun (id1, r1) (id8, r8) ->
      Alcotest.(check string) "same ids" id1 id8;
      Alcotest.(check string) ("reply " ^ id1) r1 r8)
    one eight;
  Alcotest.(check int) "all replies present" (List.length identity_script) (List.length one)

(* ------------------------------------------------------------------ *)
(* concurrent interleaving: no cross-contamination *)

let test_interleaved_isolated () =
  (* references computed alone, outside any server *)
  let expect_run file =
    let o =
      Serve.Driver.run_request
        ~spec:{ Toolchain.Chain.default_mode_spec with Toolchain.Chain.ms_mode = `Manual }
        ~cores:[ 1; 2; 4; 8; 16; 32; 64 ] ~backend:"gcc" ~tile_grain:true
        (Serve.Driver.read_source (P.From_file file))
    in
    o.Serve.Driver.o_stdout
  in
  let ref_reduction = expect_run "reduction_smoke.c" in
  let ref_guarded = expect_run "critical_guarded.c" in
  Alcotest.(check bool) "distinct outputs" false (ref_reduction = ref_guarded);
  let script =
    List.concat_map
      (fun i ->
        [
          run_req ~id:(Printf.sprintf "a%d" i) "reduction_smoke.c";
          run_req ~id:(Printf.sprintf "b%d" i) "critical_guarded.c";
          racecheck_req ~id:(Printf.sprintf "g%d" i) "critical_guarded.c";
          racecheck_req ~id:(Printf.sprintf "u%d" i) "critical_unguarded.c";
        ])
      [ 0; 1; 2 ]
  in
  with_server ~jobs:4 (fun t ->
      let replies = Serve.Server.run_script t script in
      Alcotest.(check int) "reply count" (List.length script) (List.length replies);
      List.iter
        (fun line ->
          let id = reply_id line in
          match id.[0] with
          | 'a' ->
            Alcotest.(check string) (id ^ " stdout") ref_reduction (reply_stdout line);
            Alcotest.(check int) (id ^ " exit") 0 (reply_exit line)
          | 'b' ->
            Alcotest.(check string) (id ^ " stdout") ref_guarded (reply_stdout line);
            Alcotest.(check int) (id ^ " exit") 0 (reply_exit line)
          | 'g' -> Alcotest.(check int) (id ^ " clean") 0 (reply_exit line)
          | 'u' -> Alcotest.(check int) (id ^ " racy") 5 (reply_exit line)
          | _ -> Alcotest.failf "unexpected reply id %s" id)
        replies)

(* ------------------------------------------------------------------ *)
(* back-pressure *)

let test_queue_overflow_busy () =
  (* depth 0: every queued command overflows deterministically; stats
     bypasses the queue and must still answer *)
  with_server ~jobs:1 ~queue_depth:0 (fun t ->
      let replies =
        Serve.Server.run_script t
          [ run_req ~id:"x" "reduction_smoke.c"; obj [ ("id", P.Str "s"); ("cmd", P.Str "stats") ] ]
      in
      match replies with
      | [ busy; stats ] ->
        Alcotest.(check string) "busy status" "busy" (reply_status busy);
        Alcotest.(check int) "busy exit" 6 (reply_exit busy);
        Alcotest.(check string) "stats answers" "ok" (reply_status stats);
        Alcotest.(check int) "busy counted" 1 (jint (reply_field stats "busy"))
      | _ -> Alcotest.failf "expected 2 replies, got %d" (List.length replies))

(* ------------------------------------------------------------------ *)
(* error-bearing requests leave the daemon serving *)

let impure_source = "int g;\npure int f(int x) { g = x; return x; }\n"

let test_survives_errors () =
  with_server ~jobs:2 (fun t ->
      let script =
        [
          (* purity rejection: exit 3 *)
          obj
            [
              ("id", P.Str "bad");
              ("cmd", P.Str "compile");
              ("source", P.Str impure_source);
              ("mode", P.Str "pure");
            ];
          (* malformed JSONL: exit 6, id unechoable *)
          "{\"id\": \"oops\", ";
          (* unreadable file: exit 6 with the id echoed *)
          obj [ ("id", P.Str "gone"); ("cmd", P.Str "run"); ("file", P.Str "no-such-file.c") ];
          (* and the daemon still serves real work afterwards *)
          run_req ~id:"ok" "reduction_smoke.c";
        ]
      in
      let replies = Serve.Server.run_script t script in
      let by_id = List.map (fun l -> (reply_id l, l)) replies in
      let find id = List.assoc id by_id in
      Alcotest.(check int) "purity exit" 3 (reply_exit (find "bad"));
      Alcotest.(check string) "purity status" "error" (reply_status (find "bad"));
      Alcotest.(check int) "malformed exit" 6 (reply_exit (find "<non-string>"));
      Alcotest.(check int) "unreadable exit" 6 (reply_exit (find "gone"));
      Alcotest.(check int) "daemon still serves" 0 (reply_exit (find "ok"));
      (* a second script against the same server also still works *)
      match Serve.Server.run_script t [ run_req ~id:"again" "reduction_smoke.c" ] with
      | [ r ] -> Alcotest.(check int) "second script" 0 (reply_exit r)
      | rs -> Alcotest.failf "expected 1 reply, got %d" (List.length rs))

(* ------------------------------------------------------------------ *)
(* batch aggregate = sum of the individual runs *)

let test_batch_aggregate () =
  let files = [ "reduction_smoke.c"; "critical_guarded.c" ] in
  let individual =
    with_server ~jobs:2 (fun t ->
        List.map
          (fun f ->
            match Serve.Server.run_script t [ run_req ~id:f ~mode:"pure" f ] with
            | [ r ] -> (f, reply_exit r, reply_stdout r)
            | _ -> Alcotest.fail "expected one reply")
          files)
  in
  with_server ~jobs:4 (fun t ->
      let batch =
        obj
          [
            ("id", P.Str "B");
            ("cmd", P.Str "batch");
            ("files", P.Arr (List.map (fun f -> P.Str f) files));
          ]
      in
      match Serve.Server.run_script t [ batch ] with
      | [ line ] ->
        let reply = P.of_string line in
        let per_file =
          match jfield reply "files" with
          | P.Arr items -> items
          | _ -> Alcotest.fail "files must be an array"
        in
        Alcotest.(check int) "one entry per file" (List.length files) (List.length per_file);
        List.iter2
          (fun (f, exit_code, stdout) entry ->
            Alcotest.(check string) (f ^ " name") f (jstr (jfield entry "file"));
            Alcotest.(check int) (f ^ " exit") exit_code (jint (jfield entry "exit"));
            Alcotest.(check string) (f ^ " stdout") stdout (jstr (jfield entry "stdout")))
          individual per_file;
        let agg = jfield reply "aggregate" in
        let total = jint (jfield agg "total") in
        let ok = jint (jfield agg "ok") in
        let failed = jint (jfield agg "failed") in
        Alcotest.(check int) "total" (List.length files) total;
        Alcotest.(check int) "ok + failed = total" total (ok + failed);
        Alcotest.(check int) "ok = individual successes" ok
          (List.length (List.filter (fun (_, e, _) -> e = 0) individual))
      | rs -> Alcotest.failf "expected 1 batch reply, got %d" (List.length rs))

(* ------------------------------------------------------------------ *)
(* cache sharing + isolation observability *)

let test_caches_and_census () =
  with_server ~jobs:1 (fun t ->
      let census0 = Interp.Compile.rts_created () in
      let script =
        [
          obj
            [
              ("id", P.Str "c");
              ("cmd", P.Str "compile");
              ("file", P.Str "reduction_smoke.c");
              ("mode", P.Str "manual");
            ];
          run_req ~id:"r1" "reduction_smoke.c";
          run_req ~id:"r2" "reduction_smoke.c";
        ]
      in
      let replies = Serve.Server.run_script t script in
      (* stats in a second script: the reader answers stats inline, so only
         after run_script has drained is the counter view deterministic *)
      let stats =
        match Serve.Server.run_script t [ obj [ ("id", P.Str "s"); ("cmd", P.Str "stats") ] ] with
        | [ s ] -> s
        | rs -> Alcotest.failf "expected 1 stats reply, got %d" (List.length rs)
      in
      let sub key field = jint (jfield (reply_field stats key) field) in
      (* compile then run share the parsed TU; the repeated run hits the
         reply memo outright *)
      (* the scheduler's channels are reported separately: batches,
         streamed submissions, and steals each have their own counter *)
      Alcotest.(check bool) "pool_streamed reported" true
        (jint (reply_field stats "pool_streamed") >= 0);
      Alcotest.(check bool) "pool_steals reported" true
        (jint (reply_field stats "pool_steals") >= 0);
      Alcotest.(check bool) "tu cache hit" true (sub "tu_cache" "hits" >= 1);
      Alcotest.(check bool) "reply memo hit" true (sub "reply_memo" "hits" >= 1);
      (* the memoized r2 is byte-identical to r1 *)
      let r1 = List.find (fun l -> reply_id l = "r1") replies in
      let r2 = List.find (fun l -> reply_id l = "r2") replies in
      Alcotest.(check string) "memo reply identical" (reply_stdout r1) (reply_stdout r2);
      (* fresh interpreter state per executed request: exactly one request
         really executes (compile never interprets; the memoized r2
         legitimately skips execution), so the census grew by at least 1 *)
      Alcotest.(check bool) "rt census grew" true (Interp.Compile.rts_created () >= census0 + 1))

let suite =
  [
    Alcotest.test_case "json roundtrip + malformed classification" `Quick test_json_roundtrip;
    Alcotest.test_case "protocol exit code 6 ranking" `Quick test_protocol_exit_code;
    Alcotest.test_case "replies byte-identical at jobs 1 vs 8" `Slow test_jobs_identical;
    Alcotest.test_case "interleaved run/racecheck stay isolated" `Slow test_interleaved_isolated;
    Alcotest.test_case "queue overflow answers busy" `Quick test_queue_overflow_busy;
    Alcotest.test_case "daemon survives error-bearing requests" `Quick test_survives_errors;
    Alcotest.test_case "batch aggregate = sum of individual runs" `Slow test_batch_aggregate;
    Alcotest.test_case "warm caches shared, rt census grows" `Quick test_caches_and_census;
  ]
