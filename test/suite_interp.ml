(** Interpreter tests: C semantics, memory, control flow, cost counters,
    cache behaviour, and OpenMP trace recording. *)

let run src = Interp.Exec.run (Cfront.Parser.program_of_string src)

let output src = (run src).Interp.Trace.output

let check_output name expected src = Alcotest.(check string) name expected (output src)

let test_arithmetic () =
  check_output "int arith" "7 1 12 2 1\n"
    "int main() { printf(\"%d %d %d %d %d\\n\", 3 + 4, 7 % 2, 3 * 4, 7 / 3, 7 > 3); return 0; }\n"

let test_float_arith () =
  check_output "float arith" "3.500000 0.500000 1.000000\n"
    "int main() { double x = 1.5; printf(\"%f %f %f\\n\", x + 2.0, x - 1.0, x / 1.5); return 0; }\n"

let test_int_division_truncates () =
  check_output "C division" "-2 2 1\n"
    "int main() { printf(\"%d %d %d\\n\", -5 / 2, 5 / 2, 5 % 2); return 0; }\n"

let test_mixed_promotion () =
  check_output "int to float" "2.500000\n"
    "int main() { int a = 5; double b = a / 2.0; printf(\"%f\\n\", b); return 0; }\n"

let test_control_flow () =
  check_output "if/while/for" "10 55\n"
    "int main() {\n\
    \  int i = 0; int s = 0;\n\
    \  while (i < 10) i++;\n\
    \  for (int k = 1; k <= 10; k++) s += k;\n\
    \  if (i == 10) printf(\"%d %d\\n\", i, s); else printf(\"no\\n\");\n\
    \  return 0;\n\
     }\n"

let test_break_continue () =
  check_output "break continue" "16\n"
    "int main() {\n\
    \  int s = 0;\n\
    \  for (int i = 0; i < 100; i++) {\n\
    \    if (i % 2 == 0) continue;\n\
    \    if (i > 7) break;\n\
    \    s += i;\n\
    \  }\n\
    \  printf(\"%d\\n\", s);\n\
    \  return 0;\n\
     }\n"

let test_recursion () =
  check_output "fibonacci" "55\n"
    "int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }\n\
     int main() { printf(\"%d\\n\", fib(10)); return 0; }\n"

let test_pointers_and_malloc () =
  check_output "heap round trip" "30\n"
    "int main() {\n\
    \  int* p = (int*) malloc(4 * sizeof(int));\n\
    \  p[0] = 10; p[1] = 20;\n\
    \  int* q = p + 1;\n\
    \  int r = *p + *q;\n\
    \  free(p);\n\
    \  printf(\"%d\\n\", r);\n\
    \  return 0;\n\
     }\n"

let test_2d_global_array () =
  check_output "2-D indexing" "9.000000\n"
    "double G[4][4];\n\
     int main() {\n\
    \  for (int i = 0; i < 4; i++)\n\
    \    for (int j = 0; j < 4; j++)\n\
    \      G[i][j] = i * j;\n\
    \  printf(\"%f\\n\", G[3][3]);\n\
    \  return 0;\n\
     }\n"

let test_ptr_to_ptr () =
  check_output "float** rows" "5.500000\n"
    "float** A;\n\
     int main() {\n\
    \  A = (float**) malloc(2 * sizeof(float*));\n\
    \  A[0] = (float*) malloc(2 * sizeof(float));\n\
    \  A[1] = (float*) malloc(2 * sizeof(float));\n\
    \  A[1][1] = 5.5f;\n\
    \  printf(\"%f\\n\", A[1][1]);\n\
    \  return 0;\n\
     }\n"

let test_local_array_per_call () =
  check_output "fresh locals" "1 1\n"
    "int f() { int a[4]; a[0] = a[0] + 1; return a[0]; }\n\
     int main() { printf(\"%d %d\\n\", f(), f()); return 0; }\n"

let test_math_builtins () =
  check_output "math" "2.000000 1.000000 0.000000\n"
    "int main() { printf(\"%f %f %f\\n\", sqrt(4.0), cos(0.0), fabs(0.0)); return 0; }\n"

let test_ternary_comma () =
  check_output "ternary" "5 1\n"
    "int main() { int x = 3 > 2 ? 5 : 9; int y = (x = x, x > 4); printf(\"%d %d\\n\", x, y); return 0; }\n"

let test_global_init () =
  check_output "global initializers" "42 2.500000\n"
    "int g = 42;\ndouble h = 2.5;\nint main() { printf(\"%d %f\\n\", g, h); return 0; }\n"

let test_exit_code () =
  let p = run "int main() { return 3; }\n" in
  Alcotest.(check int) "return code" 3 p.Interp.Trace.return_code

let test_out_of_bounds_faults () =
  Alcotest.(check bool) "fault raised" true
    (try
       ignore (run "int main() { int* p = (int*) malloc(2 * sizeof(int)); p[5] = 1; return 0; }\n");
       false
     with Interp.Exec.Runtime_error _ -> true)

let test_division_by_zero_faults () =
  Alcotest.(check bool) "fault raised" true
    (try
       ignore (run "int main() { int z = 0; return 5 / z; }\n");
       false
     with Interp.Exec.Runtime_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Cost counters *)

let total src = Interp.Trace.total_cost (run src)

let test_flop_counting () =
  let c =
    total
      "int main() {\n\
      \  double s = 0.0;\n\
      \  for (int i = 0; i < 100; i++) s = s + i * 0.5;\n\
      \  return 0;\n\
       }\n"
  in
  Alcotest.(check int) "100 adds" 100 c.Interp.Cost.float_adds;
  Alcotest.(check int) "100 muls" 100 c.Interp.Cost.float_muls

let test_call_counting () =
  let c =
    total
      "int id(int x) { return x; }\n\
       int main() { int s = 0; for (int i = 0; i < 7; i++) s += id(i); return s; }\n"
  in
  Alcotest.(check int) "7 calls" 7 c.Interp.Cost.calls

let test_malloc_bytes () =
  let c = total "int main() { double* p = (double*) malloc(100 * sizeof(double)); return 0; }\n" in
  Alcotest.(check int) "800 bytes" 800 c.Interp.Cost.malloc_bytes

let test_register_promotion () =
  (* reading the same cell at the same site repeatedly is register-resident:
     only the first access counts *)
  let c =
    total
      "double a[4];\n\
       int main() {\n\
      \  double s = 0.0;\n\
      \  for (int i = 0; i < 1000; i++) s = s + a[0];\n\
      \  return (int) s;\n\
       }\n"
  in
  Alcotest.(check bool) "loads collapsed" true (c.Interp.Cost.loads < 10)

let test_streaming_not_collapsed () =
  let c =
    total
      "double a[1000];\n\
       int main() {\n\
      \  double s = 0.0;\n\
      \  for (int i = 0; i < 1000; i++) s = s + a[i];\n\
      \  return (int) s;\n\
       }\n"
  in
  Alcotest.(check bool) "streaming loads counted" true (c.Interp.Cost.loads >= 1000)

let test_cache_misses_scale () =
  (* streaming 64 KiB through a 4 KiB L1 must miss roughly once per line *)
  let src =
    "double a[8192];\n\
     int main() {\n\
    \  double s = 0.0;\n\
    \  for (int i = 0; i < 8192; i++) s = s + a[i];\n\
    \  return (int) s;\n\
     }\n"
  in
  let p = Interp.Exec.run ~l1_bytes:4096 ~l2_bytes:32768 (Cfront.Parser.program_of_string src) in
  let c = Interp.Trace.total_cost p in
  let lines = 8192 * 8 / 64 in
  Alcotest.(check bool) "about one miss per line" true
    (c.Interp.Cost.l1_misses >= lines - 8 && c.Interp.Cost.l1_misses <= lines + 64)

let test_cache_reuse_hits () =
  let src =
    "double a[64];\n\
     int main() {\n\
    \  double s = 0.0;\n\
    \  for (int r = 0; r < 100; r++)\n\
    \    for (int i = 0; i < 64; i++) s = s + a[i] * r;\n\
    \  return (int) s;\n\
     }\n"
  in
  let p = Interp.Exec.run ~l1_bytes:4096 ~l2_bytes:32768 (Cfront.Parser.program_of_string src) in
  let c = Interp.Trace.total_cost p in
  Alcotest.(check bool) "fits in L1: few misses" true (c.Interp.Cost.l1_misses < 32)

(* ------------------------------------------------------------------ *)
(* OpenMP trace recording *)

let test_omp_segments () =
  let p =
    run
      "double a[50];\n\
       int main() {\n\
       #pragma omp parallel for\n\
      \  for (int i = 0; i < 50; i++) a[i] = i * 2.0;\n\
      \  double s = 0.0;\n\
      \  for (int i = 0; i < 50; i++) s += a[i];\n\
      \  printf(\"%f\\n\", s);\n\
      \  return 0;\n\
       }\n"
  in
  Alcotest.(check int) "one parallel segment" 1 (Interp.Trace.n_parallel_segments p);
  Alcotest.(check int) "fifty iterations" 50 (Interp.Trace.n_parallel_iterations p);
  Alcotest.(check string) "result" "2450.000000\n" p.Interp.Trace.output

let test_omp_schedule_parsing () =
  Alcotest.(check bool) "dynamic,1" true
    (Interp.Trace.sched_of_pragma "omp parallel for schedule(dynamic,1)" = Interp.Trace.Dynamic 1);
  Alcotest.(check bool) "dynamic default" true
    (Interp.Trace.sched_of_pragma "omp parallel for schedule(dynamic)" = Interp.Trace.Dynamic 1);
  Alcotest.(check bool) "static chunk" true
    (Interp.Trace.sched_of_pragma "omp parallel for schedule(static,4)" = Interp.Trace.Static_chunk 4);
  Alcotest.(check bool) "default static" true
    (Interp.Trace.sched_of_pragma "omp parallel for private(j)" = Interp.Trace.Static)

let test_omp_nested_sequentialized () =
  let p =
    run
      "double a[10];\n\
       int main() {\n\
       #pragma omp parallel for\n\
      \  for (int i = 0; i < 10; i++) {\n\
       #pragma omp parallel for\n\
      \    for (int j = 0; j < 3; j++) a[i] = a[i] + j;\n\
      \  }\n\
      \  printf(\"%f\\n\", a[9]);\n\
      \  return 0;\n\
       }\n"
  in
  Alcotest.(check int) "only the outer records" 1 (Interp.Trace.n_parallel_segments p);
  Alcotest.(check string) "value right" "3.000000\n" p.Interp.Trace.output

let test_omp_per_instance_segments () =
  let p =
    run
      "double a[10];\n\
       int main() {\n\
      \  for (int t = 0; t < 4; t++) {\n\
       #pragma omp parallel for\n\
      \    for (int i = 0; i < 10; i++) a[i] = a[i] + 1.0;\n\
      \  }\n\
      \  printf(\"%f\\n\", a[5]);\n\
      \  return 0;\n\
       }\n"
  in
  Alcotest.(check int) "one segment per time step" 4 (Interp.Trace.n_parallel_segments p)

let test_iteration_costs_vary () =
  (* a triangular loop: later iterations are heavier *)
  let p =
    run
      "double a[40];\n\
       int main() {\n\
       #pragma omp parallel for\n\
      \  for (int i = 0; i < 40; i++)\n\
      \    for (int j = 0; j <= i; j++) a[i] = a[i] + 0.5;\n\
      \  printf(\"%f\\n\", a[39]);\n\
      \  return 0;\n\
       }\n"
  in
  match p.Interp.Trace.segments with
  | [ _; Interp.Trace.Par { iters; _ }; _ ] ->
    let first = Interp.Cost.total_ops iters.(0) in
    let last = Interp.Cost.total_ops iters.(39) in
    Alcotest.(check bool) "last heavier than first" true (last > 5 * first)
  | _ -> Alcotest.fail "unexpected segment structure"

(* ------------------------------------------------------------------ *)
(* Cache simulator unit tests (lib/interp/cache.ml directly) *)

let small_cache () =
  (* 256 B 2-way L1 over 64-byte lines: 4 lines, 2 sets; tiny 2-way L2 *)
  let counters = Interp.Cost.create () in
  let c =
    Interp.Cache.create ~l1_bytes:256 ~l1_assoc:2 ~l2_bytes:1024 ~l2_assoc:2 ~line_bytes:64
      counters
  in
  (c, counters)

let test_cache_hit_miss_accounting () =
  let c, counters = small_cache () in
  Interp.Cache.access c 0;
  (* cold: misses in both levels *)
  Alcotest.(check int) "one L1 access" 1 c.Interp.Cache.l1.Interp.Cache.accesses;
  Alcotest.(check int) "cold L1 miss" 1 c.Interp.Cache.l1.Interp.Cache.misses;
  Alcotest.(check int) "cold L2 miss" 1 c.Interp.Cache.l2.Interp.Cache.misses;
  Alcotest.(check int) "counter L1 miss" 1 counters.Interp.Cost.l1_misses;
  Alcotest.(check int) "counter L2 miss" 1 counters.Interp.Cost.l2_misses;
  (* same 64-byte line: pure hit, nothing reaches L2 *)
  Interp.Cache.access c 8;
  Alcotest.(check int) "same line hits" 1 c.Interp.Cache.l1.Interp.Cache.misses;
  Alcotest.(check int) "L2 untouched on L1 hit" 1 c.Interp.Cache.l2.Interp.Cache.accesses;
  (* next line: new cold miss *)
  Interp.Cache.access c 64;
  Alcotest.(check int) "next line misses" 2 c.Interp.Cache.l1.Interp.Cache.misses;
  Alcotest.(check int) "counters track level misses" 2 counters.Interp.Cost.l1_misses

let test_cache_lru_eviction () =
  let c, _ = small_cache () in
  (* lines 0, 2, 4 all map to set 0 of the 2-set L1; the third access evicts
     the least recently used line 0 *)
  Interp.Cache.access c 0;
  Interp.Cache.access c 128;
  Interp.Cache.access c 256;
  let misses_before = c.Interp.Cache.l1.Interp.Cache.misses in
  Interp.Cache.access c 128;
  Alcotest.(check int) "line 2 survives (MRU kept)" misses_before
    c.Interp.Cache.l1.Interp.Cache.misses;
  Interp.Cache.access c 0;
  Alcotest.(check int) "line 0 was evicted" (misses_before + 1)
    c.Interp.Cache.l1.Interp.Cache.misses

let test_cache_reset_all () =
  let c, counters = small_cache () in
  Interp.Cache.access c 0;
  Interp.Cache.access c 64;
  Interp.Cache.reset_all c;
  Alcotest.(check int) "L1 accesses cleared" 0 c.Interp.Cache.l1.Interp.Cache.accesses;
  Alcotest.(check int) "L1 misses cleared" 0 c.Interp.Cache.l1.Interp.Cache.misses;
  Alcotest.(check int) "L2 misses cleared" 0 c.Interp.Cache.l2.Interp.Cache.misses;
  (* the cost counters belong to the run, not the cache: reset keeps them *)
  Alcotest.(check int) "cost counters survive reset" 2 counters.Interp.Cost.l1_misses;
  (* after the reset the same line is cold again *)
  Interp.Cache.access c 0;
  Alcotest.(check int) "cold after reset" 1 c.Interp.Cache.l1.Interp.Cache.misses

(* ------------------------------------------------------------------ *)
(* Trace structure unit tests (lib/interp/trace.ml) *)

let test_trace_event_ordering () =
  let p =
    run
      "double a[8];\n\
       int main() {\n\
      \  printf(\"before\\n\");\n\
       #pragma omp parallel for\n\
      \  for (int i = 0; i < 8; i++) a[i] = i * 2.0;\n\
      \  printf(\"between\\n\");\n\
       #pragma omp parallel for schedule(dynamic,2)\n\
      \  for (int i = 0; i < 4; i++) a[i] = a[i] + 1.0;\n\
      \  printf(\"after %f\\n\", a[3]);\n\
      \  return 0;\n\
       }\n"
  in
  (* segments alternate Seq / Par / Seq / Par / Seq in program order *)
  (match p.Interp.Trace.segments with
  | [ Interp.Trace.Seq _; Interp.Trace.Par p1; Interp.Trace.Seq _; Interp.Trace.Par p2;
      Interp.Trace.Seq _ ] ->
    Alcotest.(check int) "first loop iterations" 8 (Array.length p1.iters);
    Alcotest.(check int) "second loop iterations" 4 (Array.length p2.iters);
    Alcotest.(check bool) "first schedule static" true (p1.sched = Interp.Trace.Static);
    Alcotest.(check bool) "second schedule dynamic,2" true (p2.sched = Interp.Trace.Dynamic 2)
  | segs -> Alcotest.failf "unexpected segment shape (%d segments)" (List.length segs));
  Alcotest.(check string) "output in program order" "before\nbetween\nafter 7.000000\n"
    p.Interp.Trace.output;
  Alcotest.(check int) "two parallel segments" 2 (Interp.Trace.n_parallel_segments p);
  Alcotest.(check int) "twelve parallel iterations" 12 (Interp.Trace.n_parallel_iterations p)

let test_trace_total_cost_aggregates () =
  let p =
    run
      "double a[8];\n\
       int main() {\n\
       #pragma omp parallel for\n\
      \  for (int i = 0; i < 8; i++) a[i] = i * 2.0;\n\
      \  return 0;\n\
       }\n"
  in
  (* the aggregate equals the by-hand fold over segments *)
  let manual = Interp.Cost.create () in
  List.iter
    (function
      | Interp.Trace.Seq c -> Interp.Cost.add_into ~into:manual c
      | Interp.Trace.Par { iters; _ } ->
        Array.iter (fun c -> Interp.Cost.add_into ~into:manual c) iters)
    p.Interp.Trace.segments;
  let total = Interp.Trace.total_cost p in
  Alcotest.(check int) "total ops aggregate" (Interp.Cost.total_ops manual)
    (Interp.Cost.total_ops total);
  Alcotest.(check int) "stores aggregate" manual.Interp.Cost.stores total.Interp.Cost.stores;
  Alcotest.(check bool) "parallel iterations carry cost" true
    (Interp.Cost.total_ops total > 0)

(* ------------------------------------------------------------------ *)
(* Domain-parallel execution: with a pool attached, canonical
   [#pragma omp parallel for] loops really run on domains and must be
   bit-identical to sequential execution (output, return code, segment
   shape) on race-free programs. *)

let with_pool size f =
  let pool = Runtime.Pool.create size in
  Fun.protect ~finally:(fun () -> Runtime.Pool.shutdown pool) (fun () -> f pool)

let run_par pool src =
  Interp.Exec.run ~pool (Cfront.Parser.program_of_string src)

let check_par_equals_seq name src =
  let seq = run src in
  with_pool 4 (fun pool ->
      let par = run_par pool src in
      Alcotest.(check string) (name ^ ": output") seq.Interp.Trace.output
        par.Interp.Trace.output;
      Alcotest.(check int) (name ^ ": return code") seq.Interp.Trace.return_code
        par.Interp.Trace.return_code;
      Alcotest.(check int)
        (name ^ ": parallel segments")
        (Interp.Trace.n_parallel_segments seq)
        (Interp.Trace.n_parallel_segments par);
      Alcotest.(check int)
        (name ^ ": parallel iterations")
        (Interp.Trace.n_parallel_iterations seq)
        (Interp.Trace.n_parallel_iterations par))

let test_par_static_printf_order () =
  (* per-iteration output must be spliced back in iteration order *)
  check_par_equals_seq "static"
    "int main() {\n\
     #pragma omp parallel for\n\
    \  for (int i = 0; i < 37; i++) printf(\"%d \", i * i);\n\
    \  printf(\"\\n\");\n\
    \  return 0;\n\
     }\n"

let test_par_schedules_printf_order () =
  List.iter
    (fun sched ->
      check_par_equals_seq sched
        (Printf.sprintf
           "int main() {\n\
            #pragma omp parallel for schedule(%s)\n\
           \  for (int i = 0; i < 41; i++) printf(\"%%d;\", 100 - i);\n\
           \  return 0;\n\
            }\n"
           sched))
    [ "static"; "static,3"; "dynamic"; "dynamic,5" ]

let test_par_memory_result () =
  (* results written to shared memory by disjoint iterations *)
  check_par_equals_seq "stencil"
    "double a[500];\ndouble b[500];\n\
     int main() {\n\
    \  for (int i = 0; i < 500; i++) a[i] = i * 0.5;\n\
     #pragma omp parallel for\n\
    \  for (int i = 1; i < 499; i++) b[i] = (a[i-1] + a[i] + a[i+1]) / 3.0;\n\
    \  double s = 0.0;\n\
    \  for (int i = 0; i < 500; i++) s += b[i];\n\
    \  printf(\"%f\\n\", s);\n\
    \  return 0;\n\
     }\n"

let test_par_pluto_style_loop () =
  (* PluTo emits the induction pre-declared in the enclosing block and an
     assignment-form init; the final value is visible after the loop *)
  check_par_equals_seq "pluto shape"
    "double a[24];\n\
     int main() {\n\
    \  int t1;\n\
     #pragma omp parallel for private(t1)\n\
    \  for (t1 = 0; t1 <= 23; t1++) {\n\
    \    a[t1] = t1 * 2.0;\n\
    \  }\n\
    \  printf(\"%d %f\\n\", t1, a[23]);\n\
    \  return 0;\n\
     }\n"

let test_par_strided_loop () =
  check_par_equals_seq "stride 4"
    "int main() {\n\
     #pragma omp parallel for\n\
    \  for (int i = 3; i < 90; i += 4) printf(\"%d,\", i);\n\
    \  printf(\"\\n\");\n\
    \  return 0;\n\
     }\n"

let test_par_nested_omp () =
  (* the inner pragma sequentializes inside the dispatched outer loop *)
  check_par_equals_seq "nested omp"
    "double a[16];\n\
     int main() {\n\
     #pragma omp parallel for\n\
    \  for (int i = 0; i < 16; i++) {\n\
     #pragma omp parallel for\n\
    \    for (int j = 0; j < 5; j++) a[i] = a[i] + j + i;\n\
    \  }\n\
    \  for (int i = 0; i < 16; i++) printf(\"%f \", a[i]);\n\
    \  return 0;\n\
     }\n"

let test_par_user_calls_and_malloc () =
  (* bodies calling user functions and allocating (shared bump allocator) *)
  check_par_equals_seq "calls + malloc"
    "double f(double x) { return x * x + 1.0; }\n\
     double* rows[8];\n\
     int main() {\n\
     #pragma omp parallel for schedule(dynamic,1)\n\
    \  for (int i = 0; i < 8; i++) {\n\
    \    double* r = (double*) malloc(16 * sizeof(double));\n\
    \    for (int j = 0; j < 16; j++) r[j] = f(i + j * 0.5);\n\
    \    rows[i] = r;\n\
    \  }\n\
    \  double s = 0.0;\n\
    \  for (int i = 0; i < 8; i++)\n\
    \    for (int j = 0; j < 16; j++) s += rows[i][j];\n\
    \  printf(\"%f\\n\", s);\n\
    \  return 0;\n\
     }\n"

let test_par_noncanonical_falls_back () =
  (* a break at the omp-loop level is not canonical: must still execute
     correctly (sequential fallback), even with a pool attached *)
  check_par_equals_seq "break fallback"
    "int main() {\n\
    \  int n = 0;\n\
     #pragma omp parallel for\n\
    \  for (int i = 0; i < 100; i++) {\n\
    \    n = n + 1;\n\
    \    if (i == 9) break;\n\
    \  }\n\
    \  printf(\"%d\\n\", n);\n\
    \  return 0;\n\
     }\n"

let test_par_empty_and_tiny_ranges () =
  check_par_equals_seq "empty range"
    "int main() {\n\
     #pragma omp parallel for\n\
    \  for (int i = 0; i < 0; i++) printf(\"x\");\n\
    \  printf(\"done\\n\");\n\
    \  return 0;\n\
     }\n";
  check_par_equals_seq "single iteration"
    "int main() {\n\
     #pragma omp parallel for\n\
    \  for (int i = 0; i < 1; i++) printf(\"%d\\n\", i);\n\
    \  return 0;\n\
     }\n"

let test_par_fault_propagates () =
  (* a fault inside a dispatched chunk surfaces as Runtime_error, and the
     interpreter stays usable *)
  with_pool 4 (fun pool ->
      let src =
        "int main() {\n\
         #pragma omp parallel for\n\
        \  for (int i = 0; i < 32; i++) {\n\
        \    int* p = (int*) malloc(2 * sizeof(int));\n\
        \    p[i] = 1;\n\
        \  }\n\
        \  return 0;\n\
         }\n"
      in
      Alcotest.(check bool) "fault raised" true
        (try
           ignore (run_par pool src);
           false
         with Interp.Exec.Runtime_error _ -> true);
      let ok = run_par pool "int main() { return 7; }\n" in
      Alcotest.(check int) "still works" 7 ok.Interp.Trace.return_code)

let test_par_golden_workload () =
  (* the Fig. 3 matmul workload end-to-end: the full pure chain (purity →
     PluTo → lowering), then parallel output = sequential output *)
  let src = Workloads.Matmul.pure_source ~n:48 () in
  let mode = Toolchain.Chain.Pure_chain (fun c -> c) in
  let _, seq = Toolchain.Chain.run ~mode src in
  with_pool 4 (fun pool ->
      let _, par = Toolchain.Chain.run ~mode ~pool src in
      Alcotest.(check string) "matmul output" seq.Interp.Trace.output
        par.Interp.Trace.output;
      Alcotest.(check bool) "loops were actually parallelized" true
        (Interp.Trace.n_parallel_segments par > 0))

let suite =
  [
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "float arithmetic" `Quick test_float_arith;
    Alcotest.test_case "integer division" `Quick test_int_division_truncates;
    Alcotest.test_case "promotion" `Quick test_mixed_promotion;
    Alcotest.test_case "control flow" `Quick test_control_flow;
    Alcotest.test_case "break/continue" `Quick test_break_continue;
    Alcotest.test_case "recursion" `Quick test_recursion;
    Alcotest.test_case "pointers and malloc" `Quick test_pointers_and_malloc;
    Alcotest.test_case "2-D global arrays" `Quick test_2d_global_array;
    Alcotest.test_case "pointer-to-pointer" `Quick test_ptr_to_ptr;
    Alcotest.test_case "local arrays fresh per call" `Quick test_local_array_per_call;
    Alcotest.test_case "math builtins" `Quick test_math_builtins;
    Alcotest.test_case "ternary and comma" `Quick test_ternary_comma;
    Alcotest.test_case "global initializers" `Quick test_global_init;
    Alcotest.test_case "exit code" `Quick test_exit_code;
    Alcotest.test_case "bounds fault" `Quick test_out_of_bounds_faults;
    Alcotest.test_case "division by zero fault" `Quick test_division_by_zero_faults;
    Alcotest.test_case "flop counting" `Quick test_flop_counting;
    Alcotest.test_case "call counting" `Quick test_call_counting;
    Alcotest.test_case "malloc bytes" `Quick test_malloc_bytes;
    Alcotest.test_case "register promotion" `Quick test_register_promotion;
    Alcotest.test_case "streaming loads counted" `Quick test_streaming_not_collapsed;
    Alcotest.test_case "cache misses on streaming" `Quick test_cache_misses_scale;
    Alcotest.test_case "cache hits on reuse" `Quick test_cache_reuse_hits;
    Alcotest.test_case "omp segment recording" `Quick test_omp_segments;
    Alcotest.test_case "omp schedule parsing" `Quick test_omp_schedule_parsing;
    Alcotest.test_case "nested omp sequentialized" `Quick test_omp_nested_sequentialized;
    Alcotest.test_case "per-instance segments" `Quick test_omp_per_instance_segments;
    Alcotest.test_case "iteration costs vary" `Quick test_iteration_costs_vary;
    Alcotest.test_case "cache hit/miss accounting" `Quick test_cache_hit_miss_accounting;
    Alcotest.test_case "cache LRU eviction" `Quick test_cache_lru_eviction;
    Alcotest.test_case "cache reset" `Quick test_cache_reset_all;
    Alcotest.test_case "trace event ordering" `Quick test_trace_event_ordering;
    Alcotest.test_case "trace cost aggregation" `Quick test_trace_total_cost_aggregates;
    Alcotest.test_case "par = seq: static printf" `Quick test_par_static_printf_order;
    Alcotest.test_case "par = seq: all schedules" `Quick test_par_schedules_printf_order;
    Alcotest.test_case "par = seq: shared memory" `Quick test_par_memory_result;
    Alcotest.test_case "par = seq: pluto loop shape" `Quick test_par_pluto_style_loop;
    Alcotest.test_case "par = seq: strided" `Quick test_par_strided_loop;
    Alcotest.test_case "par = seq: nested omp" `Quick test_par_nested_omp;
    Alcotest.test_case "par = seq: calls and malloc" `Quick test_par_user_calls_and_malloc;
    Alcotest.test_case "par = seq: non-canonical fallback" `Quick
      test_par_noncanonical_falls_back;
    Alcotest.test_case "par = seq: empty/tiny ranges" `Quick test_par_empty_and_tiny_ranges;
    Alcotest.test_case "par fault propagates" `Quick test_par_fault_propagates;
    Alcotest.test_case "par = seq: matmul workload" `Quick test_par_golden_workload;
  ]
