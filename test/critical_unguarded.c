/* Racecheck fixture: critical_guarded.c with the critical pragma
 * stripped.  The bare `sum += t` update races under every plan with
 * more than one worker; both engines must flag the word and agree. */
#include <stdio.h>

double a[64];
double b[64];
double sum;

int main(void) {
  sum = 0.0;
  for (int i = 0; i < 64; i++) {
    a[i] = (i * 13 % 101) * 0.5;
    b[i] = (i * 7 % 97) * 0.25;
  }
#pragma omp parallel for
  for (int i = 0; i < 64; i++) {
    double t = a[i] * b[i];
    sum += t;
  }
  printf("dot %.17g\n", sum);
  return 0;
}
