(** Race-detector tests: the vector-clock engine on hand-built access
    traces, the zero-race guarantee over every workload and gallery kernel
    at every legality-approved plan, and the fault-injection path (an
    illegal transform must be caught as a race). *)

module R = Racecheck

let sched = Alcotest.testable (fun ppf s -> Fmt.string ppf (R.schedule_name s)) ( = )

(* ------------------------------------------------------------------ *)
(* Synthetic traces: one parallel segment, [iters] entries of
   (loc, addr, write) access lists, an 8-byte-element region "A" at 0.
   [mk_profile_locked] takes (loc, addr, write, locks) quads for traces
   that carry critical/atomic sections. *)

let mk_profile_locked ?(sched = Interp.Trace.Static) ?(points = [||]) iters :
    Interp.Trace.profile =
  let accesses =
    Array.of_list
      (List.map
         (fun accs ->
           Array.of_list
             (List.map
                (fun (loc, addr, write, locks) ->
                  { Interp.Trace.ac_loc = loc; ac_addr = addr; ac_bytes = 8;
                    ac_write = write; ac_locks = List.sort_uniq compare locks })
                accs))
         iters)
  in
  {
    Interp.Trace.segments = [];
    output = "";
    return_code = 0;
    regions =
      [ { Interp.Mem.rg_label = "A"; rg_base = 0; rg_bytes = 8 * 1024; rg_elem_bytes = 8 } ];
    par_traces =
      Some
        [
          { Interp.Trace.pt_sched = sched;
            pt_unit = None;
            pt_accesses = accesses;
            pt_points = points };
        ];
    insp = [];
  }

let mk_profile ?sched ?points iters =
  mk_profile_locked ?sched ?points
    (List.map (List.map (fun (loc, addr, write) -> (loc, addr, write, []))) iters)

let analyze ~schedule ~workers profile =
  match R.analyze ~schedule ~workers profile with
  | Ok r -> r
  | Error e -> Alcotest.fail e

let test_untraced_profile_rejected () =
  let p = { (mk_profile []) with Interp.Trace.par_traces = None } in
  match R.analyze ~schedule:Runtime.Par_loop.Static ~workers:4 p with
  | Ok _ -> Alcotest.fail "untraced profile must be rejected"
  | Error _ -> ()

let test_static_conflicting_writes_race () =
  (* two iterations writing the same element land on different threads
     under static scheduling with 2 workers *)
  let p = mk_profile [ [ ("a.c:1", 0, true) ]; [ ("a.c:2", 0, true) ] ] in
  let r = analyze ~schedule:Runtime.Par_loop.Static ~workers:2 p in
  Alcotest.(check bool) "races" false (R.clean r);
  let x = List.hd r.R.p_races in
  Alcotest.(check string) "region" "A" x.R.x_array;
  Alcotest.(check int) "element" 0 x.R.x_elem;
  Alcotest.(check bool) "different threads" true (x.R.x_first.R.f_thread <> x.R.x_second.R.f_thread);
  Alcotest.(check (list int)) "both iteration vectors named" [ 0; 1 ]
    (List.sort compare [ x.R.x_first.R.f_iter; x.R.x_second.R.f_iter ])

let test_single_worker_never_races () =
  let p = mk_profile [ [ ("a.c:1", 0, true) ]; [ ("a.c:2", 0, true) ] ] in
  let r = analyze ~schedule:Runtime.Par_loop.Static ~workers:1 p in
  Alcotest.(check bool) "clean at 1 worker" true (R.clean r)

let test_reads_never_race () =
  let p = mk_profile (List.init 8 (fun i -> [ (Printf.sprintf "a.c:%d" i, 0, false) ])) in
  List.iter
    (fun schedule ->
      let r = analyze ~schedule ~workers:4 p in
      Alcotest.(check bool) "read-read sharing is clean" true (R.clean r))
    R.default_schedules

let test_same_thread_accesses_ordered () =
  (* static with 2 workers over 4 iterations: thread 0 owns 0 and 1 *)
  let p =
    mk_profile [ [ ("a.c:1", 0, true) ]; [ ("a.c:2", 0, true) ]; []; [] ]
  in
  let r = analyze ~schedule:Runtime.Par_loop.Static ~workers:2 p in
  Alcotest.(check bool) "program order within a thread" true (R.clean r)

let test_disjoint_elements_clean () =
  let p = mk_profile (List.init 16 (fun i -> [ ("a.c:1", 8 * i, true) ])) in
  List.iter
    (fun schedule ->
      List.iter
        (fun workers ->
          let r = analyze ~schedule ~workers p in
          Alcotest.(check bool) "disjoint writes are clean" true (R.clean r))
        R.default_cores)
    R.default_schedules

let test_write_read_race_provenance () =
  let p = mk_profile [ [ ("w.c:1", 16, true) ]; [ ("r.c:2", 16, false) ] ] in
  let r = analyze ~schedule:Runtime.Par_loop.Static ~workers:2 p in
  Alcotest.(check int) "one race" 1 r.R.p_total;
  let x = List.hd r.R.p_races in
  Alcotest.(check int) "element 2" 2 x.R.x_elem;
  Alcotest.(check bool) "one side is the write" true
    (x.R.x_first.R.f_write <> x.R.x_second.R.f_write);
  let d = R.describe_race x in
  Alcotest.(check bool) "report names both sites" true
    (Support.Util.string_contains ~needle:"w.c:1" d
    && Support.Util.string_contains ~needle:"r.c:2" d)

(* dynamic,1 at 2 workers: chunk fetches order chunks >= 2 apart, and
   nothing closer — adjacent chunks on different threads stay concurrent *)
let test_dynamic_chunk_ordering () =
  let near =
    (* write in iter 1 (thread 1), read in iter 2 (thread 0): distance 1 *)
    mk_profile [ []; [ ("a.c:1", 0, true) ]; [ ("a.c:2", 0, false) ]; [] ]
  in
  let r = analyze ~schedule:(Runtime.Par_loop.Dynamic 1) ~workers:2 near in
  Alcotest.(check bool) "adjacent chunks race" false (R.clean r);
  let far =
    (* write in iter 0, read in iter 3: distance 3 >= 2 workers, the
       dispatch chain has published chunk 0 by chunk 3's fetch *)
    mk_profile [ [ ("a.c:1", 0, true) ]; []; []; [ ("a.c:2", 0, false) ] ]
  in
  let r = analyze ~schedule:(Runtime.Par_loop.Dynamic 1) ~workers:2 far in
  Alcotest.(check bool) "distant chunks ordered by the dispatch chain" true (R.clean r);
  (* the same far pair under static still races: thread 0 owns iterations
     0..1 and thread 1 owns 2..3 with no intra-loop synchronization *)
  let r = analyze ~schedule:Runtime.Par_loop.Static ~workers:2 far in
  Alcotest.(check bool) "no such edge under static" false (R.clean r)

let test_report_cap () =
  (* every pair of 64 iterations conflicts at a distinct site: far more
     distinct races than the cap, but p_total keeps the full count *)
  let p =
    mk_profile (List.init 64 (fun i -> [ (Printf.sprintf "a.c:%d" i, 0, true) ]))
  in
  let r = analyze ~schedule:Runtime.Par_loop.Static ~workers:64 p in
  Alcotest.(check bool) "stored races capped" true
    (List.length r.R.p_races <= R.max_reported_races);
  Alcotest.(check bool) "total exceeds the cap" true (r.R.p_total > R.max_reported_races)

(* ------------------------------------------------------------------ *)
(* Schedule parsing *)

let test_schedule_of_string () =
  let ok s v =
    match R.schedule_of_string s with
    | Ok x -> Alcotest.check sched s v x
    | Error e -> Alcotest.fail e
  in
  ok "static" Runtime.Par_loop.Static;
  ok "static,8" (Runtime.Par_loop.Static_chunk 8);
  ok "dynamic" (Runtime.Par_loop.Dynamic 1);
  ok "DYNAMIC,3" (Runtime.Par_loop.Dynamic 3);
  ok " static , 2 " (Runtime.Par_loop.Static_chunk 2);
  ok "guided" (Runtime.Par_loop.Guided 1);
  ok "guided,7" (Runtime.Par_loop.Guided 7);
  List.iter
    (fun s ->
      match R.schedule_of_string s with
      | Ok _ -> Alcotest.failf "%S must be rejected" s
      | Error _ -> ())
    [ "guided,0"; "static,0"; "dynamic,-1"; "static,x"; "" ]

(* ------------------------------------------------------------------ *)
(* Exit-code classification (Diag.kind is total) *)

let diag ~code =
  {
    Support.Diag.severity = Support.Diag.Error;
    code;
    loc = Support.Loc.dummy;
    message = "test";
  }

let test_race_diag_classification () =
  Alcotest.(check string) "race.detected is the Race kind" "race"
    (Support.Diag.kind_to_string (Support.Diag.kind_of_code "race.detected"));
  Alcotest.(check int) "race exits 5" Toolchain.Chain.exit_race
    (Toolchain.Chain.classify_errors [ diag ~code:"race.detected" ]);
  Alcotest.(check int) "race outranks parse" Toolchain.Chain.exit_race
    (Toolchain.Chain.classify_errors [ diag ~code:"parse.expected"; diag ~code:"race.detected" ]);
  Alcotest.(check int) "race outranks fuzz" Toolchain.Chain.exit_race
    (Toolchain.Chain.classify_errors [ diag ~code:"fuzz.mismatch"; diag ~code:"race.detected" ]);
  Alcotest.(check int) "purity outranks race" Toolchain.Chain.exit_purity_error
    (Toolchain.Chain.classify_errors [ diag ~code:"race.detected"; diag ~code:"pure.assign" ]);
  Alcotest.(check int) "diags_of_report carries race.detected" Toolchain.Chain.exit_race
    (let p = mk_profile [ [ ("a.c:1", 0, true) ]; [ ("a.c:2", 0, true) ] ] in
     let r = analyze ~schedule:Runtime.Par_loop.Static ~workers:2 p in
     Toolchain.Chain.classify_errors (R.diags_of_report r))

(* ------------------------------------------------------------------ *)
(* End-to-end: every workload and kernel, every legality-approved plan *)

let scale = Toolchain.Figures.test_scale

let applications =
  [
    ("matmul", Workloads.Matmul.pure_source ~n:scale.Toolchain.Figures.matmul_n ());
    ( "heat",
      Workloads.Heat.pure_source ~n:scale.Toolchain.Figures.heat_n
        ~t:scale.Toolchain.Figures.heat_t () );
    ( "satellite",
      Workloads.Satellite.pure_source ~w:scale.Toolchain.Figures.sat_w
        ~h:scale.Toolchain.Figures.sat_h ~bands:scale.Toolchain.Figures.sat_bands () );
    ( "lama",
      Workloads.Lama_app.pure_source ~rows:scale.Toolchain.Figures.lama_rows
        ~maxnnz:scale.Toolchain.Figures.lama_maxnnz ~reps:scale.Toolchain.Figures.lama_reps
        () );
  ]

let mode_for ?(inject = false) source =
  let adjust (c : Pluto.config) =
    if inject then { c with Pluto.unsafe_no_legality = true } else c
  in
  if Support.Util.string_contains ~needle:"#pragma scop" source then
    Toolchain.Chain.Plain_pluto adjust
  else Toolchain.Chain.Pure_chain adjust

let traced_verdicts ?inject source =
  let _, _, verdicts =
    Toolchain.Chain.run_racecheck ~mode:(mode_for ?inject source) source
  in
  verdicts

let all_sources =
  applications
  @ List.map
      (fun k -> (k.Workloads.Kernels.k_name, k.Workloads.Kernels.k_source))
      Workloads.Kernels.all

let test_all_workloads_race_free () =
  List.iter
    (fun (name, source) ->
      List.iter
        (fun (v : R.verdict) ->
          List.iter
            (fun d -> Alcotest.failf "%s: engine disagreement: %s" name d)
            v.R.v_disagreements;
          List.iter
            (fun r ->
              if not (R.clean r) then
                Alcotest.failf "%s races under %s" name (R.describe_report r))
            (R.verdict_reports v))
        (traced_verdicts source))
    all_sources

(* the canonical inject witness: antidiag's dependence (1,-1) becomes
   lex-negative under the injected loop swap, so every plan with >= 2
   workers must race — and the race must name both iteration vectors *)
let test_inject_illegal_detected () =
  let k = Option.get (Workloads.Kernels.find "antidiag") in
  let verdicts = traced_verdicts ~inject:true k.Workloads.Kernels.k_source in
  List.iter
    (fun (v : R.verdict) ->
      Alcotest.(check (list string))
        (Printf.sprintf "engines agree at schedule(%s) x %d"
           (R.schedule_name v.R.v_schedule) v.R.v_workers)
        [] v.R.v_disagreements;
      let hb = Option.get v.R.v_hb and ls = Option.get v.R.v_lockset in
      if v.R.v_workers = 1 then
        Alcotest.(check bool) "1 worker stays clean" true (R.clean hb && R.clean ls)
      else begin
        List.iter
          (fun r ->
            Alcotest.(check bool)
              (Printf.sprintf "%s races at schedule(%s) x %d"
                 (R.engine_name r.R.p_engine) (R.schedule_name r.R.p_schedule)
                 r.R.p_workers)
              false (R.clean r);
            let x = List.hd r.R.p_races in
            Alcotest.(check string) "on the A array" "A" x.R.x_array;
            Alcotest.(check bool) "distinct iteration vectors" true
              (x.R.x_first.R.f_iter <> x.R.x_second.R.f_iter))
          [ hb; ls ];
        (* the acceptance bar: both engines flag the same racy words *)
        Alcotest.(check (list (pair int int)))
          (Printf.sprintf "identical race sets at schedule(%s) x %d"
             (R.schedule_name v.R.v_schedule) v.R.v_workers)
          hb.R.p_words ls.R.p_words
      end)
    verdicts;
  (* and the full oracle flags it as a race (before any output diff) *)
  let oracle = Fuzzgen.Oracle.check ~inject:true ~racecheck:true k.Workloads.Kernels.k_source in
  Alcotest.(check bool) "oracle reports race-detected" true
    (List.exists
       (fun f -> Fuzzgen.Oracle.kind_tag f = "race-detected")
       oracle.Fuzzgen.Oracle.r_failures)

let test_oracle_racecheck_clean () =
  (* a clean kernel passes the oracle with the racecheck stage enabled *)
  let k = Option.get (Workloads.Kernels.find "antidiag") in
  let r = Fuzzgen.Oracle.check ~racecheck:true k.Workloads.Kernels.k_source in
  Alcotest.(check bool) "oracle clean" true (Fuzzgen.Oracle.passed r)

(* ------------------------------------------------------------------ *)
(* The lockset second opinion *)

(* The designed catch: a write in iteration 0 and a read in iteration 3
   under dynamic,1 x 2 workers.  The chunk-dispatch chain happens to order
   the two accesses in the replayed linearization, so the happens-before
   engine is silent — but nothing in the program forces that order, and the
   order-free lockset discipline flags the word.  Under the cross-check
   this is exactly the allowed direction (lockset ⊇ hb on dynamic plans),
   racy but NOT an engine disagreement. *)
let test_lockset_catches_hb_hidden_race () =
  let far =
    mk_profile [ [ ("a.c:1", 0, true) ]; []; []; [ ("a.c:2", 0, false) ] ]
  in
  let schedule = Runtime.Par_loop.Dynamic 1 in
  let hb = analyze ~schedule ~workers:2 far in
  Alcotest.(check bool) "hb is blind to the hidden race" true (R.clean hb);
  let ls =
    match R.analyze_lockset ~schedule ~workers:2 far with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "lockset flags it" false (R.clean ls);
  Alcotest.(check (list (pair int int))) "on word (segment 0, addr 0)" [ (0, 0) ]
    ls.R.p_words;
  let x = List.hd ls.R.p_races in
  Alcotest.(check string) "named region A" "A" x.R.x_array;
  match R.verdict ~engine:R.Both ~schedule ~workers:2 far with
  | Error e -> Alcotest.fail e
  | Ok v ->
    Alcotest.(check bool) "cross-checked verdict is racy" true (R.verdict_racy v);
    Alcotest.(check (list string)) "but not a disagreement on a dynamic plan" []
      v.R.v_disagreements;
    (* the same trace under a static plan is caught by BOTH engines: the
       blindness is specifically the dynamic dispatch chain *)
    (match R.verdict ~engine:R.Both ~schedule:Runtime.Par_loop.Static ~workers:2 far with
    | Error e -> Alcotest.fail e
    | Ok v ->
      Alcotest.(check (list string)) "static: engines agree" [] v.R.v_disagreements;
      Alcotest.(check bool) "static: hb flags it too" false
        (R.clean (Option.get v.R.v_hb)))

(* a lockset word the HB engine misses on a static plan WOULD be a
   disagreement: fabricate it by cross-checking an hb verdict from one
   trace against a lockset verdict from another *)
let test_cross_check_flags_static_divergence () =
  let racy = mk_profile [ [ ("a.c:1", 0, true) ]; [ ("a.c:2", 0, false) ] ] in
  let clean = mk_profile [ [ ("a.c:1", 0, true) ]; [] ] in
  let hb = analyze ~schedule:Runtime.Par_loop.Static ~workers:2 clean in
  let ls =
    match R.analyze_lockset ~schedule:Runtime.Par_loop.Static ~workers:2 racy with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let ds = R.cross_check ~regions:racy.Interp.Trace.regions ~hb ~lockset:ls () in
  Alcotest.(check bool) "lockset-only word on a static plan is a disagreement" true
    (ds <> []);
  (* and the other direction — an hb race the lockset misses — is always a
     disagreement, whatever the plan *)
  let hb = analyze ~schedule:(Runtime.Par_loop.Dynamic 1) ~workers:2 racy in
  let ls =
    match R.analyze_lockset ~schedule:(Runtime.Par_loop.Dynamic 1) ~workers:2 clean with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let ds = R.cross_check ~regions:racy.Interp.Trace.regions ~hb ~lockset:ls () in
  Alcotest.(check bool) "hb-only word violates hb ⊆ lockset" true (ds <> [])

(* ------------------------------------------------------------------ *)
(* The fed lockset: hand-built traces whose accesses carry held-lock sets *)

let test_locks_held_accessor () =
  let a =
    { Interp.Trace.ac_loc = "l.c:1"; ac_addr = 0; ac_bytes = 8; ac_write = true;
      ac_locks = [ 3; 7 ] }
  in
  Alcotest.(check (list int)) "locks_held is the stamped set" [ 3; 7 ]
    (R.Lockset.locks_held a);
  let bare = { a with Interp.Trace.ac_locks = [] } in
  Alcotest.(check (list int)) "empty outside any section" [] (R.Lockset.locks_held bare)

let both_verdict ~schedule ~workers p =
  match R.verdict ~engine:R.Both ~schedule ~workers p with
  | Ok v -> v
  | Error e -> Alcotest.fail e

let check_clean_agreeing which v =
  Alcotest.(check (list string)) (which ^ ": engines agree") []
    v.R.v_disagreements;
  List.iter
    (fun r ->
      if not (R.clean r) then
        Alcotest.failf "%s: unexpected race: %s" which (R.describe_report r))
    (R.verdict_reports v)

let check_racy_agreeing which v =
  Alcotest.(check (list string)) (which ^ ": engines agree") []
    v.R.v_disagreements;
  List.iter
    (fun r ->
      Alcotest.(check bool) (which ^ ": " ^ R.engine_name r.R.p_engine ^ " flags it")
        false (R.clean r))
    (R.verdict_reports v)

(* every conflicting access under one common critical section: both engines
   clean on static and dynamic plans *)
let test_common_lock_clean () =
  let p =
    mk_profile_locked
      (List.init 8 (fun i ->
           [ (Printf.sprintf "g.c:%d" i, 0, false, [ 1 ]);
             (Printf.sprintf "g.c:%d" i, 0, true, [ 1 ]) ]))
  in
  List.iter
    (fun schedule ->
      check_clean_agreeing "common lock" (both_verdict ~schedule ~workers:4 p))
    [ Runtime.Par_loop.Static; Runtime.Par_loop.Dynamic 1 ]

(* nested critical sections: the inner access carries both lock ids, and
   words touched only under the outer lock stay guarded by it *)
let test_nested_critical_sections () =
  let p =
    mk_profile_locked
      (List.init 6 (fun i ->
           [ (Printf.sprintf "n.c:%d" i, 0, true, [ 1 ]);
             (Printf.sprintf "n.c:%d" i, 8, true, [ 1; 2 ]);
             (Printf.sprintf "n.c:%d" i, 0, true, [ 1 ]) ]))
  in
  check_clean_agreeing "nested sections"
    (both_verdict ~schedule:Runtime.Par_loop.Static ~workers:3 p)

(* disjoint named locks do NOT order or guard anything: iterations
   alternating between lock 1 and lock 2 on the same word race, and both
   engines say so *)
let test_disjoint_named_locks_race () =
  let p =
    mk_profile_locked
      (List.init 6 (fun i ->
           [ (Printf.sprintf "d.c:%d" i, 0, true, [ 1 + (i mod 2) ]) ]))
  in
  check_racy_agreeing "disjoint locks"
    (both_verdict ~schedule:Runtime.Par_loop.Static ~workers:2 p)

(* a lock released before a conflicting access: the guarded write is no
   protection against a later bare write *)
let test_lock_released_before_conflict () =
  let p =
    mk_profile_locked
      [
        [ ("r.c:1", 0, true, [ 1 ]) ];
        [ ("r.c:2", 0, true, []) ];
      ]
  in
  check_racy_agreeing "released lock"
    (both_verdict ~schedule:Runtime.Par_loop.Static ~workers:2 p)

(* The committed divergence witness for the fed lockset: thread 0 writes
   under lock 1; thread 1 reads under lock 1 and then writes under lock 2.
   The happens-before replay chains t1 behind t0 through lock 1's
   release→acquire edge, so hb is clean — but nothing forces t1's
   acquisition to come second, and the order-free lockset empties the
   word's candidate set.  On a lock-carrying segment this lockset-only
   word is the engine's designed advantage, a real race rather than a
   cross-check disagreement — feeding the lockset must NOT break engine
   agreement. *)
let test_fed_lockset_divergence_is_not_disagreement () =
  let p =
    mk_profile_locked
      [
        [ ("v.c:1", 0, true, [ 1 ]) ];
        [ ("v.c:2", 0, false, [ 1 ]); ("v.c:3", 0, true, [ 2 ]) ];
      ]
  in
  let schedule = Runtime.Par_loop.Static in
  let hb = analyze ~schedule ~workers:2 p in
  Alcotest.(check bool) "hb is blind through the lock-1 chain" true (R.clean hb);
  let ls =
    match R.analyze_lockset ~schedule ~workers:2 p with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "lockset empties the candidate set" false (R.clean ls);
  (* the locked-segment relaxation is what keeps this from being reported
     as engine divergence *)
  Alcotest.(check bool) "segment 0 carries lock events" true
    (R.locked_segments p = [ 0 ]);
  Alcotest.(check bool) "without the relaxation it WOULD be a disagreement" true
    (R.cross_check ~locked:[] ~regions:p.Interp.Trace.regions ~hb ~lockset:ls ()
    <> []);
  Alcotest.(check (list string)) "with the relaxation: none" []
    (R.cross_check ~locked:(R.locked_segments p) ~regions:p.Interp.Trace.regions
       ~hb ~lockset:ls ());
  let v = both_verdict ~schedule ~workers:2 p in
  Alcotest.(check bool) "cross-checked verdict is racy" true (R.verdict_racy v);
  Alcotest.(check (list string)) "and not a disagreement" [] v.R.v_disagreements

(* a race-free tiled kernel passes both engines on every schedule x cores
   plan of the default matrix, with no cross-check disagreements *)
let test_tiled_kernel_clean_under_both_engines () =
  let k = Option.get (Workloads.Kernels.find "antidiag") in
  let mode =
    Toolchain.Chain.Plain_pluto (fun c -> { c with Pluto.tile = true; tile_sizes = [ 4 ] })
  in
  let _, _, verdicts = Toolchain.Chain.run_racecheck ~mode k.Workloads.Kernels.k_source in
  Alcotest.(check int) "full default plan matrix"
    (List.length R.default_schedules * List.length R.default_cores)
    (List.length verdicts);
  List.iter
    (fun (v : R.verdict) ->
      Alcotest.(check (list string)) "no disagreements" [] v.R.v_disagreements;
      List.iter
        (fun r ->
          if not (R.clean r) then
            Alcotest.failf "tiled antidiag races: %s" (R.describe_report r))
        (R.verdict_reports v))
    verdicts

(* ------------------------------------------------------------------ *)
(* Nested traces: tile → point segment structure on hand-built logs *)

let test_point_of_marks () =
  let points = [| 0; 2; 5 |] in
  List.iter
    (fun (k, expect) ->
      Alcotest.(check int) (Printf.sprintf "point_of at access %d" k) expect
        (Interp.Trace.point_of points k))
    [ (0, 0); (1, 0); (2, 1); (4, 1); (5, 2); (9, 2) ];
  Alcotest.(check int) "no structure -> -1" (-1) (Interp.Trace.point_of [||] 3);
  (* a preamble access before the first mark is unstructured *)
  Alcotest.(check int) "before the first mark -> -1" (-1)
    (Interp.Trace.point_of [| 2 |] 1)

(* A tile-boundary write/read pair: tile 0's last point writes the element
   tile 1's first point reads.  Under static x 2 the tiles land on
   different threads, and the report must attribute each side to its point
   child: [0.1] (tile 0, point 1) vs [1.0] (tile 1, point 0). *)
let test_nested_trace_race_names_points () =
  let p =
    mk_profile
      ~points:[| [| 0; 2 |]; [| 0 |] |]
      [
        [ ("t.c:1", 0, true); ("t.c:2", 8, true); ("t.c:3", 16, true) ];
        [ ("t.c:4", 16, false) ];
      ]
  in
  let check_report which r =
    Alcotest.(check bool) (which ^ " flags the boundary pair") false (R.clean r);
    let x = List.hd r.R.p_races in
    let w, rd =
      if x.R.x_first.R.f_write then (x.R.x_first, x.R.x_second)
      else (x.R.x_second, x.R.x_first)
    in
    Alcotest.(check int) (which ^ ": write is tile 0") 0 w.R.f_iter;
    Alcotest.(check int) (which ^ ": write is point 1") 1 w.R.f_point;
    Alcotest.(check int) (which ^ ": read is tile 1") 1 rd.R.f_iter;
    Alcotest.(check int) (which ^ ": read is point 0") 0 rd.R.f_point;
    let d = R.describe_race x in
    Alcotest.(check bool) (which ^ ": report prints [0.1] and [1.0]") true
      (Support.Util.string_contains ~needle:"[0.1]" d
      && Support.Util.string_contains ~needle:"[1.0]" d)
  in
  check_report "hb" (analyze ~schedule:Runtime.Par_loop.Static ~workers:2 p);
  match R.analyze_lockset ~schedule:Runtime.Par_loop.Static ~workers:2 p with
  | Ok r -> check_report "lockset" r
  | Error e -> Alcotest.fail e

(* flat (pre-PR-5) traces keep the old [i] formatting and f_point = -1 *)
let test_flat_trace_unstructured_points () =
  let p = mk_profile [ [ ("a.c:1", 0, true) ]; [ ("a.c:2", 0, false) ] ] in
  let r = analyze ~schedule:Runtime.Par_loop.Static ~workers:2 p in
  let x = List.hd r.R.p_races in
  Alcotest.(check int) "first side unstructured" (-1) x.R.x_first.R.f_point;
  Alcotest.(check int) "second side unstructured" (-1) x.R.x_second.R.f_point;
  let d = R.describe_race x in
  Alcotest.(check bool) "flat iteration vectors" true
    (Support.Util.string_contains ~needle:"[0]" d
    && Support.Util.string_contains ~needle:"[1]" d
    && not (Support.Util.string_contains ~needle:"[0." d))

(* accesses before the first mark (loop preamble) stay unstructured even
   when the iteration has point children *)
let test_nested_trace_preamble_unstructured () =
  let p =
    mk_profile
      ~points:[| [| 1 |]; [||] |]
      [ [ ("t.c:1", 0, true); ("t.c:2", 8, true) ]; [ ("t.c:3", 0, false) ] ]
  in
  let r = analyze ~schedule:Runtime.Par_loop.Static ~workers:2 p in
  let x = List.hd r.R.p_races in
  let w =
    if x.R.x_first.R.f_write then x.R.x_first else x.R.x_second
  in
  Alcotest.(check int) "preamble write has no point" (-1) w.R.f_point;
  Alcotest.(check bool) "formats as a flat vector" true
    (Support.Util.string_contains ~needle:"[0]" (R.describe_race x))

(* ------------------------------------------------------------------ *)
(* Scalar-slot shadowing: a shared function-local scalar is addressable *)

let shared_scalar_source =
  {|
int main() {
  int s;
  int i;
  s = 0;
  #pragma omp parallel for
  for (i = 0; i < 8; i = i + 1) {
    s = s + i;
  }
  return s;
}
|}

let test_scalar_slot_shadowing_catches_shared_local () =
  let _, _, verdicts =
    Toolchain.Chain.run_racecheck ~mode:Toolchain.Chain.Manual_omp shared_scalar_source
  in
  Alcotest.(check bool) "shared local scalar races" true
    (List.exists R.verdict_racy verdicts);
  List.iter
    (fun (v : R.verdict) ->
      Alcotest.(check (list string)) "engines agree" [] v.R.v_disagreements;
      if v.R.v_workers > 1 then begin
        let hb = Option.get v.R.v_hb and ls = Option.get v.R.v_lockset in
        Alcotest.(check bool) "hb sees the slot" false (R.clean hb);
        Alcotest.(check bool) "lockset sees the slot" false (R.clean ls);
        let names r = List.map (fun x -> x.R.x_array) r.R.p_races in
        Alcotest.(check bool) "the report names s" true
          (List.mem "s" (names hb @ names ls))
      end)
    verdicts

let test_scalar_shadowing_no_false_positive_on_private () =
  (* the induction variable and loop-local temporaries must NOT race *)
  let source =
    {|
int a[16];
int main() {
  int i;
  #pragma omp parallel for
  for (i = 0; i < 16; i = i + 1) {
    int t;
    t = i * 2;
    a[i] = t;
  }
  return 0;
}
|}
  in
  let _, _, verdicts =
    Toolchain.Chain.run_racecheck ~mode:Toolchain.Chain.Manual_omp source
  in
  List.iter
    (fun (v : R.verdict) ->
      Alcotest.(check (list string)) "engines agree" [] v.R.v_disagreements;
      List.iter
        (fun r ->
          if not (R.clean r) then
            Alcotest.failf "private locals misreported: %s" (R.describe_report r))
        (R.verdict_reports v))
    verdicts

(* random legality-approved plans on a traced profile stay race-free; the
   same plans on the injected profile race whenever workers > 1 *)
let qcheck_random_plans =
  let legal =
    lazy
      (let k = Option.get (Workloads.Kernels.find "antidiag") in
       let _, profile, _ = Toolchain.Chain.run_racecheck k.Workloads.Kernels.k_source in
       profile)
  in
  let injected =
    lazy
      (let k = Option.get (Workloads.Kernels.find "antidiag") in
       let src = k.Workloads.Kernels.k_source in
       let _, profile =
         Toolchain.Chain.run ~mode:(mode_for ~inject:true src) ~trace_accesses:true src
       in
       profile)
  in
  QCheck.Test.make ~name:"random plans: legal clean, injected racy (workers>1)" ~count:60
    QCheck.(triple (int_range 1 64) (int_range 0 2) (int_range 1 8))
    (fun (workers, which, chunk) ->
      let schedule =
        match which with
        | 0 -> Runtime.Par_loop.Static
        | 1 -> Runtime.Par_loop.Static_chunk chunk
        | _ -> Runtime.Par_loop.Dynamic chunk
      in
      let run p =
        match R.analyze ~schedule ~workers p with
        | Ok r -> r
        | Error e -> QCheck.Test.fail_report e
      in
      R.clean (run (Lazy.force legal))
      && (workers = 1 || not (R.clean (run (Lazy.force injected)))))

(* ------------------------------------------------------------------ *)
(* CLI integration: exit code 5 *)

let test_cli_racecheck_exit_codes () =
  let purec =
    let candidates = [ "../bin/purec.exe"; "_build/default/bin/purec.exe" ] in
    match List.find_opt Sys.file_exists candidates with
    | Some p -> p
    | None -> Alcotest.skip ()
  in
  let k = Option.get (Workloads.Kernels.find "antidiag") in
  let run_racecheck args =
    let path = Filename.temp_file "purec_race" ".c" in
    let oc = open_out path in
    output_string oc k.Workloads.Kernels.k_source;
    close_out oc;
    let cmd =
      Printf.sprintf "%s racecheck %s --mode pluto %s >/dev/null 2>&1"
        (Filename.quote purec) args (Filename.quote path)
    in
    let code = Sys.command cmd in
    Sys.remove path;
    code
  in
  Alcotest.(check int) "legal plan exits 0" 0 (run_racecheck "--cores 4");
  Alcotest.(check int) "injected illegal transform exits 5" Toolchain.Chain.exit_race
    (run_racecheck "--cores 4 --inject-illegal");
  Alcotest.(check int) "lockset engine alone catches the witness"
    Toolchain.Chain.exit_race
    (run_racecheck "--cores 4 --engine lockset --inject-illegal");
  Alcotest.(check int) "unknown engine exits 1" Toolchain.Chain.exit_error
    (run_racecheck "--cores 4 --engine guided")

let suite =
  [
    Alcotest.test_case "untraced profile rejected" `Quick test_untraced_profile_rejected;
    Alcotest.test_case "static conflicting writes" `Quick test_static_conflicting_writes_race;
    Alcotest.test_case "single worker clean" `Quick test_single_worker_never_races;
    Alcotest.test_case "reads never race" `Quick test_reads_never_race;
    Alcotest.test_case "same-thread program order" `Quick test_same_thread_accesses_ordered;
    Alcotest.test_case "disjoint elements clean" `Quick test_disjoint_elements_clean;
    Alcotest.test_case "write-read provenance" `Quick test_write_read_race_provenance;
    Alcotest.test_case "dynamic chunk ordering" `Quick test_dynamic_chunk_ordering;
    Alcotest.test_case "report cap" `Quick test_report_cap;
    Alcotest.test_case "schedule_of_string" `Quick test_schedule_of_string;
    Alcotest.test_case "race exit-code classification" `Quick test_race_diag_classification;
    Alcotest.test_case "all workloads race-free" `Quick test_all_workloads_race_free;
    Alcotest.test_case "inject-illegal detected" `Quick test_inject_illegal_detected;
    Alcotest.test_case "oracle racecheck clean" `Quick test_oracle_racecheck_clean;
    Alcotest.test_case "lockset catches hb-hidden race" `Quick
      test_lockset_catches_hb_hidden_race;
    Alcotest.test_case "cross-check static divergence" `Quick
      test_cross_check_flags_static_divergence;
    Alcotest.test_case "locks_held accessor" `Quick test_locks_held_accessor;
    Alcotest.test_case "common lock clean" `Quick test_common_lock_clean;
    Alcotest.test_case "nested critical sections" `Quick test_nested_critical_sections;
    Alcotest.test_case "disjoint named locks race" `Quick test_disjoint_named_locks_race;
    Alcotest.test_case "lock released before conflict" `Quick
      test_lock_released_before_conflict;
    Alcotest.test_case "fed lockset divergence, engines still agree" `Quick
      test_fed_lockset_divergence_is_not_disagreement;
    Alcotest.test_case "tiled kernel clean, both engines" `Quick
      test_tiled_kernel_clean_under_both_engines;
    Alcotest.test_case "point_of marks" `Quick test_point_of_marks;
    Alcotest.test_case "nested trace race names points" `Quick
      test_nested_trace_race_names_points;
    Alcotest.test_case "flat trace unstructured points" `Quick
      test_flat_trace_unstructured_points;
    Alcotest.test_case "nested trace preamble unstructured" `Quick
      test_nested_trace_preamble_unstructured;
    Alcotest.test_case "scalar shadowing: shared local" `Quick
      test_scalar_slot_shadowing_catches_shared_local;
    Alcotest.test_case "scalar shadowing: private locals" `Quick
      test_scalar_shadowing_no_false_positive_on_private;
    QCheck_alcotest.to_alcotest qcheck_random_plans;
    Alcotest.test_case "cli exit code 5" `Quick test_cli_racecheck_exit_codes;
  ]
