/* Smoke workload for the @reduction-smoke CI alias: a dot product whose
 * accumulator is named in a reduction(+:s) clause, so `purec run --mode
 * manual --jobs 2` executes it on the domain pool with per-chunk partial
 * accumulators and a chunk-order merge.  The operand values are exact
 * multiples of 0.125, so the printed sum is byte-identical at every
 * --jobs level under every schedule. */
#include <stdio.h>

double a[256];
double b[256];

int main(void) {
  double s = 0.0;
  for (int i = 0; i < 256; i++) {
    a[i] = (i * 13 % 101) * 0.5;
    b[i] = (i * 7 % 97) * 0.25;
  }
#pragma omp parallel for reduction(+:s)
  for (int i = 0; i < 256; i++) {
    s += a[i] * b[i];
  }
  printf("dot %.17g\n", s);
  return 0;
}
