(** Test runner aggregating all suites. *)

let () =
  Alcotest.run "purec"
    [
      ("support", Suite_support.suite);
      ("lexer", Suite_lexer.suite);
      ("parser", Suite_parser.suite);
      ("cpp", Suite_cpp.suite);
      ("sema", Suite_sema.suite);
      ("purity", Suite_purity.suite);
      ("poly", Suite_poly.suite);
      ("interp", Suite_interp.suite);
      ("machine", Suite_machine.suite);
      ("runtime", Suite_runtime.suite);
      ("lama", Suite_lama.suite);
      ("toolchain", Suite_toolchain.suite);
      ("kernels", Suite_kernels.suite);
      ("metadata", Suite_metadata.suite);
      ("golden", Suite_golden.suite);
      ("fuzzgen", Suite_fuzzgen.suite);
      ("racecheck", Suite_racecheck.suite);
      ("tiled", Suite_tiled.suite);
      ("reduction", Suite_reduction.suite);
      ("serve", Suite_serve.suite);
      ("fastpath", Suite_fastpath.suite);
      ("steal", Suite_steal.suite);
      ("inspector", Suite_inspector.suite);
    ]
