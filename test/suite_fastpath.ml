(** Differential battery for the fast (uninstrumented) execution variant.

    Plan-time selection of {!Interp.Compile.Fast} must be observationally
    invisible: for every program, plan, and pool size, the output bytes,
    return code, and fault text match the modeled engine exactly — only
    the cost/cache profile disappears.  The battery sweeps

    - the golden-gallery workloads and kernels under the sequential and
      full pure chains at --jobs 1/2/4/8,
    - 32 fuzz seeds at --jobs 1/2/8,
    - the reduction / critical / atomic lowerings on real domain pools,
    - a PluTo-tiled nest dispatched at tile granularity,
    - runtime fault texts (bounds, null deref, division by zero),
    - repeated execution of one compiled program (the shared
      {!Interp.Compile.reset_rt} reset path), and
    - the engagement witness: a fast profile's counters are all zero
      while the modeled twin's are not, proving the comparison really
      crossed engines. *)

module C = Toolchain.Chain

type outcome = Finished of string * int | Faulted of string

let show_outcome = function
  | Finished (out, rc) -> Printf.sprintf "exit %d\n%s" rc out
  | Faulted m -> "fault: " ^ m

let outcome ?pool ~no_model c =
  match C.execute ?pool ~no_model c with
  | p -> Finished (p.Interp.Trace.output, p.Interp.Trace.return_code)
  | exception Interp.Exec.Runtime_error m -> Faulted m

(* the check at the heart of the battery: same compiled program, same
   pool, both instrumentation variants, identical observable outcome *)
let check_pair name ?pool c =
  let m = outcome ?pool ~no_model:false c in
  let f = outcome ?pool ~no_model:true c in
  Alcotest.(check string) name (show_outcome m) (show_outcome f)

let with_pool jobs f =
  if jobs <= 1 then f None
  else begin
    let pool = Runtime.Pool.create jobs in
    Fun.protect
      ~finally:(fun () -> Runtime.Pool.shutdown pool)
      (fun () -> f (Some pool))
  end

let check_at_jobs name jobs_list c =
  List.iter
    (fun jobs ->
      with_pool jobs (fun pool ->
          check_pair (Printf.sprintf "%s --jobs %d" name jobs) ?pool c))
    jobs_list

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* ------------------------------------------------------------------ *)
(* Golden gallery: the same case list the golden suite pins, executed
   under the sequential baseline and the full pure chain. *)

let gallery =
  [
    ("matmul_pure", Workloads.Matmul.pure_source ~n:8 ());
    ("matmul_inlined", Workloads.Matmul.inlined_source ~n:8 ());
    ("matmul_pure_noinit", Workloads.Matmul.pure_noinit_source ~n:8 ());
    ("heat_pure", Workloads.Heat.pure_source ~n:8 ~t:2 ());
    ("heat_inlined", Workloads.Heat.inlined_source ~n:8 ~t:2 ());
    ("satellite_pure", Workloads.Satellite.pure_source ~w:6 ~h:4 ~bands:3 ());
    ("satellite_manual", Workloads.Satellite.manual_source ~w:6 ~h:4 ~bands:3 ());
    ("lama_pure", Workloads.Lama_app.pure_source ~rows:8 ~maxnnz:3 ~reps:2 ());
    ("lama_manual", Workloads.Lama_app.manual_source ~rows:8 ~maxnnz:3 ~reps:2 ());
  ]
  @ List.map
      (fun k -> ("kernel_" ^ k.Workloads.Kernels.k_name, k.Workloads.Kernels.k_source))
      Workloads.Kernels.all

let test_gallery_sequential () =
  List.iter
    (fun (name, src) -> check_pair name (C.compile ~mode:C.Sequential src))
    gallery

let test_gallery_pure_chain () =
  List.iter
    (fun (name, src) ->
      let c = C.compile ~mode:(C.Pure_chain (fun cfg -> cfg)) src in
      check_at_jobs name [ 1; 2; 4; 8 ] c)
    gallery

(* ------------------------------------------------------------------ *)
(* Fuzzed programs: 32 seeds through the pure chain at three pool sizes.
   Seeds are shared with the oracle campaigns, so every grammar stress
   (indirection, triangular bounds, reductions, tiles) rotates through. *)

let test_fuzz_seeds () =
  for seed = 1 to 32 do
    let src = Fuzzgen.Gen.source_of_seed seed in
    let c = C.compile ~mode:(C.Pure_chain (fun cfg -> cfg)) src in
    List.iter
      (fun jobs ->
        with_pool jobs (fun pool ->
            check_pair (Printf.sprintf "seed %d --jobs %d" seed jobs) ?pool c))
      [ 1; 2; 8 ]
  done

(* ------------------------------------------------------------------ *)
(* The synchronization lowerings.  Operands are exact multiples of 1/8
   (or integers), so accumulation is order-independent and the output is
   byte-identical no matter how domains interleave. *)

let reduction_source =
  {|
#include <stdio.h>
double a[256];
double b[256];
int main(void) {
  double s = 0.0;
  for (int i = 0; i < 256; i++) {
    a[i] = (i * 13 % 101) * 0.5;
    b[i] = (i * 7 % 97) * 0.25;
  }
#pragma omp parallel for reduction(+:s)
  for (int i = 0; i < 256; i++) {
    s += a[i] * b[i];
  }
  printf("dot %.17g\n", s);
  return 0;
}
|}

let atomic_source =
  {|
#include <stdio.h>
int v[128];
int total;
int main(void) {
  total = 0;
  for (int i = 0; i < 128; i++) v[i] = i * 7 % 23;
#pragma omp parallel for
  for (int i = 0; i < 128; i++) {
#pragma omp atomic
    total += v[i];
  }
  printf("total %d\n", total);
  return 0;
}
|}

let test_lowerings () =
  List.iter
    (fun (name, src) ->
      let c = C.compile ~mode:C.Manual_omp src in
      check_at_jobs name [ 1; 2; 8 ] c)
    [
      ("reduction dot", reduction_source);
      ("critical sum", read_file "critical_guarded.c");
      ("atomic count", atomic_source);
    ]

(* ------------------------------------------------------------------ *)
(* A PluTo-tiled nest: tile-granular pool dispatch must stay invisible *)

let test_tiled_nest () =
  let spec = { C.default_mode_spec with C.ms_mode = `Pluto; ms_tile = Some 4 } in
  let c = C.compile ~mode:(C.mode_of_spec spec) (read_file "tiled_smoke.c") in
  check_at_jobs "tiled matmul" [ 1; 2; 8 ] c

(* ------------------------------------------------------------------ *)
(* Fault texts: the fast engine keeps the exact modeled fault messages *)

let fault_cases =
  [
    ( "store out of bounds",
      "int a[4];\nint main(void) { int i = 7; a[i] = 1; return 0; }" );
    ("null pointer deref", "double *p;\nint main(void) { return (int) p[2]; }");
    ("division by zero", "int main(void) { int z = 0; return 7 / z; }");
  ]

let test_fault_parity () =
  List.iter
    (fun (name, src) ->
      let c = C.compile ~mode:C.Sequential src in
      (match outcome ~no_model:true c with
      | Faulted _ -> ()
      | Finished _ -> Alcotest.failf "%s: fast variant did not fault" name);
      check_pair name c)
    fault_cases

(* ------------------------------------------------------------------ *)
(* Executing one compiled program repeatedly goes through the shared
   [reset_rt] path (the serve daemon's reuse pattern): runs stay
   byte-identical in both variants. *)

let test_repeat_execution () =
  let c = C.compile ~mode:C.Manual_omp reduction_source in
  let f1 = outcome ~no_model:true c in
  let f2 = outcome ~no_model:true c in
  Alcotest.(check string) "fast repeat" (show_outcome f1) (show_outcome f2);
  let m1 = outcome ~no_model:false c in
  let m2 = outcome ~no_model:false c in
  Alcotest.(check string) "modeled repeat" (show_outcome m1) (show_outcome m2);
  Alcotest.(check string) "variants agree after reuse" (show_outcome m2)
    (show_outcome f2)

(* ------------------------------------------------------------------ *)
(* Engagement witness: same bytes, but only the modeled run has a cost
   profile — so the equalities above really compared different engines. *)

let test_engagement_witness () =
  let c = C.compile ~mode:C.Sequential (snd (List.hd gallery)) in
  let pm = C.execute c in
  let pf = C.execute ~no_model:true c in
  Alcotest.(check string) "same bytes" pm.Interp.Trace.output pf.Interp.Trace.output;
  Alcotest.(check bool) "modeled counters engaged" false
    (Interp.Cost.is_zero (Interp.Trace.total_cost pm));
  Alcotest.(check bool) "fast counters all zero" true
    (Interp.Cost.is_zero (Interp.Trace.total_cost pf))

let suite =
  [
    Alcotest.test_case "gallery parity, sequential" `Quick test_gallery_sequential;
    Alcotest.test_case "gallery parity, pure chain at jobs 1/2/4/8" `Slow
      test_gallery_pure_chain;
    Alcotest.test_case "32 fuzz seeds at jobs 1/2/8" `Slow test_fuzz_seeds;
    Alcotest.test_case "reduction/critical/atomic parity" `Quick test_lowerings;
    Alcotest.test_case "tiled nest parity" `Quick test_tiled_nest;
    Alcotest.test_case "fault text parity" `Quick test_fault_parity;
    Alcotest.test_case "repeat execution via reset_rt" `Quick test_repeat_execution;
    Alcotest.test_case "engagement witness: counters zero only in fast" `Quick
      test_engagement_witness;
  ]
