/* Racecheck fixture: the same dot product as reduction_smoke.c but with
 * the shared accumulator updated under `#pragma omp critical` instead of
 * a reduction clause.  Every access to `sum` inside the parallel loop
 * carries the critical section's lock id in the trace, so the lockset
 * engine keeps a non-empty candidate lockset and the happens-before
 * engine sees release→acquire edges: both verdicts are clean.
 * critical_unguarded.c is this file with the critical pragma stripped —
 * the racy twin the guarded/unguarded golden pair pins. */
#include <stdio.h>

double a[64];
double b[64];
double sum;

int main(void) {
  sum = 0.0;
  for (int i = 0; i < 64; i++) {
    a[i] = (i * 13 % 101) * 0.5;
    b[i] = (i * 7 % 97) * 0.25;
  }
#pragma omp parallel for
  for (int i = 0; i < 64; i++) {
    double t = a[i] * b[i];
#pragma omp critical
    sum += t;
  }
  printf("dot %.17g\n", sum);
  return 0;
}
