(** Domain-pool runtime tests: worksharing correctness under every schedule
    (the pool really runs on OCaml domains). *)

let with_pool size f =
  let pool = Runtime.Pool.create size in
  Fun.protect ~finally:(fun () -> Runtime.Pool.shutdown pool) (fun () -> f pool)

let test_covers_all_indices () =
  List.iter
    (fun schedule ->
      with_pool 4 (fun pool ->
          let n = 1000 in
          let hits = Array.make n 0 in
          let mutex = Mutex.create () in
          Runtime.Par_loop.parallel_for pool ~schedule ~lo:0 ~hi:n (fun i ->
              Mutex.lock mutex;
              hits.(i) <- hits.(i) + 1;
              Mutex.unlock mutex);
          Array.iteri
            (fun i h -> if h <> 1 then Alcotest.failf "index %d hit %d times" i h)
            hits))
    [ Runtime.Par_loop.Static; Runtime.Par_loop.Static_chunk 7; Runtime.Par_loop.Dynamic 3 ]

let test_empty_and_single () =
  with_pool 3 (fun pool ->
      let count = ref 0 in
      Runtime.Par_loop.parallel_for pool ~lo:5 ~hi:5 (fun _ -> incr count);
      Alcotest.(check int) "empty range" 0 !count;
      Runtime.Par_loop.parallel_for pool ~lo:5 ~hi:6 (fun _ -> incr count);
      Alcotest.(check int) "single iteration" 1 !count)

let test_pool_size_one () =
  with_pool 1 (fun pool ->
      let acc = ref [] in
      Runtime.Par_loop.parallel_for pool ~lo:0 ~hi:5 (fun i -> acc := i :: !acc);
      Alcotest.(check (list int)) "sequential order" [ 4; 3; 2; 1; 0 ] !acc)

let test_reduce () =
  with_pool 4 (fun pool ->
      let sum =
        Runtime.Par_loop.parallel_reduce pool ~lo:1 ~hi:101 ~init:0 ~combine:( + )
          (fun i -> i)
      in
      Alcotest.(check int) "gauss sum" 5050 sum)

let test_reduce_dynamic () =
  with_pool 3 (fun pool ->
      let sum =
        Runtime.Par_loop.parallel_reduce pool ~schedule:(Runtime.Par_loop.Dynamic 5)
          ~lo:0 ~hi:1000 ~init:0 ~combine:( + )
          (fun i -> i * 2)
      in
      Alcotest.(check int) "doubled sum" (999 * 1000) sum)

let test_spmv_parallel_equals_seq () =
  with_pool 4 (fun pool ->
      let spec = Lama.Matrix_gen.pwtk_like ~rows:256 () in
      let m = Lama.Matrix_gen.generate_ell spec in
      let x = Lama.Matrix_gen.test_vector 256 in
      let seq = Lama.Spmv.ell_seq m x in
      List.iter
        (fun schedule ->
          let par = Lama.Spmv.ell_par pool ~schedule m x in
          Alcotest.(check bool) "identical" true (seq = par))
        [ Runtime.Par_loop.Static; Runtime.Par_loop.Dynamic 2 ])

exception Boom of int

let test_exception_propagates () =
  with_pool 4 (fun pool ->
      (* a failing job re-raises at the join point... *)
      let raised =
        try
          Runtime.Pool.run pool
            (List.init 8 (fun i ->
                 fun () -> if i = 5 then raise (Boom i)));
          false
        with Boom 5 -> true
      in
      Alcotest.(check bool) "job exception re-raised in run" true raised;
      (* ...and the pool remains usable afterwards *)
      let count = Atomic.make 0 in
      Runtime.Pool.run pool
        (List.init 8 (fun _ -> fun () -> Atomic.incr count));
      Alcotest.(check int) "pool reusable after failure" 8 (Atomic.get count))

let test_first_failure_wins_batch_isolation () =
  with_pool 2 (fun pool ->
      (* every job fails: exactly one exception surfaces, and the next batch
         starts with a clean failure slot *)
      (try Runtime.Pool.run pool (List.init 4 (fun i -> fun () -> raise (Boom i)))
       with Boom _ -> ());
      let ok = try Runtime.Pool.run pool [ (fun () -> ()); (fun () -> ()) ]; true with _ -> false in
      Alcotest.(check bool) "clean batch after failing batch" true ok)

let test_pool_reuse_many_batches () =
  with_pool 3 (fun pool ->
      let total = Atomic.make 0 in
      for _ = 1 to 50 do
        Runtime.Par_loop.parallel_for pool ~lo:0 ~hi:40 (fun _ -> Atomic.incr total)
      done;
      Alcotest.(check int) "50 batches of 40" 2000 (Atomic.get total))

let test_oversubscription () =
  (* many more jobs than domains: all must run exactly once *)
  with_pool 2 (fun pool ->
      let hits = Array.make 300 0 in
      let mutex = Mutex.create () in
      Runtime.Pool.run pool
        (List.init 300 (fun i ->
             fun () ->
               Mutex.lock mutex;
               hits.(i) <- hits.(i) + 1;
               Mutex.unlock mutex));
      Array.iteri
        (fun i h -> if h <> 1 then Alcotest.failf "job %d ran %d times" i h)
        hits)

let test_chunk_plan_consistent_with_plan () =
  List.iter
    (fun schedule ->
      List.iter
        (fun workers ->
          let plan = Runtime.Par_loop.plan schedule ~workers ~lo:3 ~hi:103 in
          let chunks = Runtime.Par_loop.chunk_plan schedule ~workers ~lo:3 ~hi:103 in
          Array.iteri
            (fun w runs ->
              let expanded =
                List.concat_map
                  (fun (a, b) -> List.init (b - a) (fun k -> a + k))
                  runs
              in
              if expanded <> plan.(w) then
                Alcotest.failf "worker %d: chunk_plan disagrees with plan" w)
            chunks)
        [ 1; 2; 4; 7 ])
    [ Runtime.Par_loop.Static; Runtime.Par_loop.Static_chunk 6; Runtime.Par_loop.Dynamic 4 ]

let test_default_jobs_env () =
  (* PUREC_JOBS overrides; garbage falls back to a positive default *)
  let with_env v f =
    (match v with Some v -> Unix.putenv "PUREC_JOBS" v | None -> Unix.putenv "PUREC_JOBS" "");
    Fun.protect ~finally:(fun () -> Unix.putenv "PUREC_JOBS" "") f
  in
  with_env (Some "7") (fun () ->
      Alcotest.(check int) "env honored" 7 (Runtime.Pool.default_jobs ()));
  with_env (Some "not-a-number") (fun () ->
      Alcotest.(check bool) "garbage falls back" true (Runtime.Pool.default_jobs () >= 1));
  with_env (Some "-3") (fun () ->
      Alcotest.(check bool) "negative falls back" true (Runtime.Pool.default_jobs () >= 1))

let qcheck_parallel_sum =
  QCheck.Test.make ~name:"parallel sums match sequential" ~count:20
    QCheck.(pair (int_range 1 4) (int_range 0 500))
    (fun (size, n) ->
      with_pool size (fun pool ->
          let expected = ref 0 in
          for i = 0 to n - 1 do
            expected := !expected + (i * i)
          done;
          let got =
            Runtime.Par_loop.parallel_reduce pool ~lo:0 ~hi:n ~init:0 ~combine:( + )
              (fun i -> i * i)
          in
          got = !expected))

(* ------------------------------------------------------------------ *)
(* Nested fork primitives: the work-stealing deque side entrances *)

let test_nested_fork_inside_chunk () =
  with_pool 4 (fun pool ->
      Runtime.Pool.reset_batches pool;
      let total = Atomic.make 0 in
      Runtime.Pool.run pool
        (List.init 4 (fun _ ->
             fun () ->
               Runtime.Pool.run_nested pool
                 (List.init 8 (fun _ -> fun _sid -> Atomic.incr total))));
      Alcotest.(check int) "every nested job ran once" 32 (Atomic.get total);
      if Runtime.Pool.workers pool > 0 then
        (* the top-level batch plus at least one nested enqueue *)
        Alcotest.(check bool) "nested forks counted as batches" true
          (Runtime.Pool.batches pool >= 2);
      (* outside a chunk the same call runs inline, in order *)
      let acc = ref [] in
      Runtime.Pool.run_nested pool (List.init 3 (fun i -> fun _sid -> acc := i :: !acc));
      Alcotest.(check (list int)) "inline fallback order" [ 2; 1; 0 ] !acc)

let test_chain_strict_order () =
  with_pool 4 (fun pool ->
      (* inline fallback: outside a chunk, run_chain loops on the caller *)
      let seen = ref [] in
      let i = ref 0 in
      Runtime.Pool.run_chain pool (fun _sid ->
          seen := !i :: !seen;
          incr i;
          !i < 5);
      Alcotest.(check (list int)) "inline chain order" [ 4; 3; 2; 1; 0 ] !seen;
      (* through the deques: links run strictly one at a time, in order,
         no matter which stream picks each one up *)
      let order = ref [] in
      Runtime.Pool.run pool
        [
          (fun () ->
            let k = ref 0 in
            Runtime.Pool.run_chain pool (fun _sid ->
                order := !k :: !order;
                incr k;
                !k < 30));
        ];
      Alcotest.(check (list int))
        "chain order through deques"
        (List.init 30 (fun j -> 29 - j))
        !order;
      (* the fixed-length chain keeps the same discipline *)
      let corder = ref [] in
      Runtime.Pool.run pool
        [
          (fun () ->
            Runtime.Pool.run_chained pool
              (Array.init 10 (fun j -> fun _sid -> corder := j :: !corder)));
        ];
      Alcotest.(check (list int)) "chained order" [ 9; 8; 7; 6; 5; 4; 3; 2; 1; 0 ] !corder)

let test_nested_exception_propagates () =
  with_pool 4 (fun pool ->
      let raised =
        try
          Runtime.Pool.run pool
            [
              (fun () ->
                Runtime.Pool.run_nested pool
                  (List.init 8 (fun i -> fun _sid -> if i = 3 then raise (Boom i))));
            ];
          false
        with Boom 3 -> true
      in
      Alcotest.(check bool) "nested exception re-raised at outer join" true raised;
      let n = Atomic.make 0 in
      Runtime.Pool.run pool (List.init 8 (fun _ -> fun () -> Atomic.incr n));
      Alcotest.(check int) "pool reusable after nested failure" 8 (Atomic.get n))

let test_streaming_batch_accounting () =
  (* the serve daemon's streaming channel and fork/join batches interleave
     on one pool: both accountings stay exact and separate *)
  with_pool 4 (fun pool ->
      Runtime.Pool.reset_batches pool;
      let s = Atomic.make 0 and b = Atomic.make 0 in
      for _ = 1 to 10 do
        Runtime.Pool.submit pool (fun () -> Atomic.incr s);
        Runtime.Pool.run pool (List.init 4 (fun _ -> fun () -> Atomic.incr b))
      done;
      Runtime.Pool.quiesce pool;
      Alcotest.(check int) "streamed jobs ran" 10 (Atomic.get s);
      Alcotest.(check int) "batch jobs ran" 40 (Atomic.get b);
      Alcotest.(check int) "streamed counted on its own channel" 10
        (Runtime.Pool.streamed pool);
      Alcotest.(check int) "batches counted once each" 10 (Runtime.Pool.batches pool))

(* ------------------------------------------------------------------ *)
(* Streaming lifecycle (the serve daemon's discipline) *)

let test_submit_quiesce () =
  with_pool 4 (fun pool ->
      Runtime.Pool.reset_batches pool;
      let hits = Atomic.make 0 in
      for _ = 1 to 100 do
        Runtime.Pool.submit pool (fun () -> Atomic.incr hits)
      done;
      Runtime.Pool.quiesce pool;
      Alcotest.(check int) "all streamed jobs ran" 100 (Atomic.get hits);
      (* streamed submissions count on their own channel, never as batches:
         the two accountings must not interleave *)
      Alcotest.(check int) "each submit counted" 100 (Runtime.Pool.streamed pool);
      Alcotest.(check int) "no batch counted" 0 (Runtime.Pool.batches pool);
      Runtime.Pool.reset_batches pool;
      Alcotest.(check int) "reset" 0 (Runtime.Pool.streamed pool);
      (* quiesce on an idle pool returns immediately *)
      Runtime.Pool.quiesce pool)

let test_submit_crash_isolated () =
  (* a streamed job that raises must neither kill the pool nor leak into a
     later fork/join batch *)
  with_pool 3 (fun pool ->
      Runtime.Pool.submit pool (fun () -> failwith "request crashed");
      Runtime.Pool.quiesce pool;
      let ok = Atomic.make 0 in
      Runtime.Pool.submit pool (fun () -> Atomic.incr ok);
      Runtime.Pool.quiesce pool;
      Alcotest.(check int) "pool still streams" 1 (Atomic.get ok);
      Runtime.Pool.run pool
        (List.init 8 (fun _ -> fun () -> Atomic.incr ok));
      Alcotest.(check int) "fork/join unaffected" 9 (Atomic.get ok))

let test_shutdown_idempotent () =
  let pool = Runtime.Pool.create 4 in
  Runtime.Pool.shutdown pool;
  Runtime.Pool.shutdown pool;
  Alcotest.(check int) "workers joined" 0 (Runtime.Pool.workers pool);
  (match Runtime.Pool.submit pool (fun () -> ()) with
  | () -> Alcotest.fail "submit after shutdown must refuse"
  | exception Invalid_argument _ -> ());
  (* a shutdown pool guarded by a second Fun.protect finalizer is fine *)
  Fun.protect ~finally:(fun () -> Runtime.Pool.shutdown pool) (fun () -> ())

let suite =
  [
    Alcotest.test_case "covers all indices once" `Quick test_covers_all_indices;
    Alcotest.test_case "empty and single ranges" `Quick test_empty_and_single;
    Alcotest.test_case "pool of one" `Quick test_pool_size_one;
    Alcotest.test_case "reduction" `Quick test_reduce;
    Alcotest.test_case "dynamic reduction" `Quick test_reduce_dynamic;
    Alcotest.test_case "parallel spmv = sequential" `Quick test_spmv_parallel_equals_seq;
    Alcotest.test_case "exception propagation" `Quick test_exception_propagates;
    Alcotest.test_case "failure isolation across batches" `Quick
      test_first_failure_wins_batch_isolation;
    Alcotest.test_case "pool reuse across batches" `Quick test_pool_reuse_many_batches;
    Alcotest.test_case "oversubscription" `Quick test_oversubscription;
    Alcotest.test_case "chunk_plan consistent with plan" `Quick
      test_chunk_plan_consistent_with_plan;
    Alcotest.test_case "PUREC_JOBS default" `Quick test_default_jobs_env;
    Alcotest.test_case "nested fork inside chunk" `Quick test_nested_fork_inside_chunk;
    Alcotest.test_case "chain strict order" `Quick test_chain_strict_order;
    Alcotest.test_case "nested exception propagation" `Quick
      test_nested_exception_propagates;
    Alcotest.test_case "streaming vs batch accounting" `Quick
      test_streaming_batch_accounting;
    Alcotest.test_case "submit/quiesce streaming" `Quick test_submit_quiesce;
    Alcotest.test_case "streamed crash isolated" `Quick test_submit_crash_isolated;
    Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent;
    QCheck_alcotest.to_alcotest qcheck_parallel_sum;
  ]
