(** Trace-driven multicore simulation.

    Replays an interpreter {!Interp.Trace.profile} on an abstract machine at
    a chosen core count: sequential segments run on one core; parallel
    segments distribute their per-iteration costs over the cores according
    to the recorded OpenMP schedule.  Per-segment time is a roofline
    [max(compute makespan, DRAM traffic / bandwidth)] plus fork/join
    overhead — which is what produces the paper's observed shapes
    (bandwidth rolloff for the stencil, schedule-dependent imbalance for
    the satellite and LAMA codes, Amdahl effects from serial sections). *)

open Interp

type seg_breakdown = {
  sb_parallel : bool;
  sb_compute_s : float;
  sb_memory_s : float;
  sb_overhead_s : float;
  sb_time_s : float;
}

type result = {
  r_seconds : float;
  r_segments : seg_breakdown list;
  r_cores : int;
  r_backend : Config.backend;
}

(* Cycles of one cost record on one core (no DRAM bandwidth term). *)
let cycles (machine : Config.machine) (backend : Config.backend) (c : Cost.t) : float =
  let w = machine.Config.m_weights in
  let flops = float_of_int (c.Cost.float_adds + c.Cost.float_muls) in
  (* flops executed under a vector mode the backend exploits *)
  let vec =
    (if backend.Config.b_honors_vector_pragmas then c.Cost.flops_pragma_vec else 0)
    + if backend.Config.b_auto_vectorize then c.Cost.flops_autovec else 0
  in
  let vec = Float.min (float_of_int vec) flops in
  let scalar_flops = flops -. vec in
  let speedup =
    1.0
    /. (1.0
        -. backend.Config.b_vector_efficiency
        +. (backend.Config.b_vector_efficiency /. float_of_int backend.Config.b_vector_width))
  in
  let flop_cycles =
    (* weight flops by the fadd/fmul mix *)
    let mix =
      let fa = float_of_int c.Cost.float_adds and fm = float_of_int c.Cost.float_muls in
      if fa +. fm = 0.0 then w.Config.w_fadd
      else ((fa *. w.Config.w_fadd) +. (fm *. w.Config.w_fmul)) /. (fa +. fm)
    in
    ((scalar_flops *. mix) +. (vec *. mix /. speedup))
    +. (float_of_int c.Cost.float_divs *. w.Config.w_fdiv)
  in
  (* Vectorized loops amortize loads, stores and address arithmetic across
     lanes as well (vector loads, strength-reduced induction): discount the
     bookkeeping ops by the fraction of flops executed under a vector mode,
     at roughly half the flop lanes' efficiency. *)
  let vec_frac = if flops > 0.0 then vec /. flops else 0.0 in
  let other_speedup = 1.0 +. ((speedup -. 1.0) /. 2.0) in
  let other_discount = 1.0 -. (vec_frac *. (1.0 -. (1.0 /. other_speedup))) in
  let bookkeeping =
    (float_of_int c.Cost.int_ops *. w.Config.w_int)
    +. (float_of_int c.Cost.loads *. w.Config.w_load)
    +. (float_of_int c.Cost.stores *. w.Config.w_store)
    +. (float_of_int c.Cost.branches *. w.Config.w_branch)
  in
  let other =
    (bookkeeping *. other_discount)
    +. (float_of_int c.Cost.l1_misses *. w.Config.w_l1_miss)
    +. (float_of_int c.Cost.calls *. w.Config.w_call)
    +. float_of_int c.Cost.extra_cycles
  in
  backend.Config.b_scalar_factor *. (flop_cycles +. other)

(* DRAM bytes of a cost record: L2 misses fetch whole lines. *)
let dram_bytes machine (c : Cost.t) =
  float_of_int (c.Cost.l2_misses * machine.Config.m_line_bytes)

(* ------------------------------------------------------------------ *)
(* Schedule simulation *)

(* Assign per-iteration cycle costs to [n] cores; returns the compute
   makespan in cycles plus scheduling overhead cycles. *)
let makespan machine n (sched : Trace.sched_kind) (iter_cycles : float array) :
    float * float =
  let m = Array.length iter_cycles in
  if m = 0 then (0.0, 0.0)
  else if n = 1 then (Array.fold_left ( +. ) 0.0 iter_cycles, 0.0)
  else begin
    match sched with
    | Trace.Static ->
      (* contiguous blocks of ceil(m/n) *)
      let block = (m + n - 1) / n in
      let worst = ref 0.0 in
      let i = ref 0 in
      while !i < m do
        let stop = min m (!i + block) in
        let sum = ref 0.0 in
        for k = !i to stop - 1 do
          sum := !sum +. iter_cycles.(k)
        done;
        if !sum > !worst then worst := !sum;
        i := stop
      done;
      (!worst, 0.0)
    | Trace.Static_chunk chunk ->
      (* round-robin chunks *)
      let chunk = max 1 chunk in
      let loads = Array.make n 0.0 in
      let i = ref 0 and core = ref 0 in
      while !i < m do
        let stop = min m (!i + chunk) in
        for k = !i to stop - 1 do
          loads.(!core) <- loads.(!core) +. iter_cycles.(k)
        done;
        core := (!core + 1) mod n;
        i := stop
      done;
      (Support.Util.float_array_max loads, 0.0)
    | Trace.Dynamic chunk ->
      (* online greedy: each free core takes the next chunk *)
      let chunk = max 1 chunk in
      let loads = Array.make n 0.0 in
      let i = ref 0 in
      let n_chunks = ref 0 in
      while !i < m do
        let stop = min m (!i + chunk) in
        let core = Support.Util.argmin_array compare loads in
        for k = !i to stop - 1 do
          loads.(core) <- loads.(core) +. iter_cycles.(k)
        done;
        incr n_chunks;
        i := stop
      done;
      ( Support.Util.float_array_max loads,
        float_of_int !n_chunks /. float_of_int n *. machine.Config.m_dynamic_chunk_cycles
      )
    | Trace.Guided floor ->
      (* online greedy over the deterministic decaying grant sequence: each
         free core takes the next grant (the work-stealing runtime's
         first-come order); per-grant dispatch overhead as for dynamic *)
      let loads = Array.make n 0.0 in
      let grants =
        Runtime.Par_loop.guided_grants ~floor ~workers:n ~lo:0 ~hi:m
      in
      let n_chunks = ref 0 in
      List.iter
        (fun (start, stop) ->
          let core = Support.Util.argmin_array compare loads in
          for k = start to stop - 1 do
            loads.(core) <- loads.(core) +. iter_cycles.(k)
          done;
          incr n_chunks)
        grants;
      ( Support.Util.float_array_max loads,
        float_of_int !n_chunks /. float_of_int m *. machine.Config.m_dynamic_chunk_cycles
      )
  end

(* ------------------------------------------------------------------ *)

(** [insp] is the inspector verdict guarding a runtime-checked parallel
    segment.  The check itself (base + per-probed-address cycles) is
    charged as master-side overhead either way; a conflict verdict
    additionally demotes the segment to sequential execution — every
    iteration on one core, no fork/join, single-core bandwidth — exactly
    what the interpreter's fallback path does. *)
let segment_time ?insp machine backend n (seg : Trace.segment) : seg_breakdown =
  let insp_cycles =
    match insp with
    | Some (v : Trace.insp_verdict) ->
      machine.Config.m_insp_base_cycles
      +. (float_of_int v.Trace.iv_checks *. machine.Config.m_insp_per_check_cycles)
    | None -> 0.0
  in
  match seg with
  | Trace.Seq c ->
    let comp = Config.cycles_to_seconds machine (cycles machine backend c) in
    let mem = dram_bytes machine c /. (Config.bandwidth machine 1 *. 1e9) in
    let t = Float.max comp mem in
    { sb_parallel = false; sb_compute_s = comp; sb_memory_s = mem; sb_overhead_s = 0.0; sb_time_s = t }
  | Trace.Par { sched; iters } ->
    let conflicted =
      match insp with Some v -> not v.Trace.iv_disjoint | None -> false
    in
    let n = if conflicted then 1 else max 1 n in
    let iter_cycles = Array.map (cycles machine backend) iters in
    let span_cycles, sched_overhead = makespan machine n sched iter_cycles in
    let comp = Config.cycles_to_seconds machine span_cycles in
    let bytes = Array.fold_left (fun acc c -> acc +. dram_bytes machine c) 0.0 iters in
    let mem = bytes /. (Config.bandwidth machine n *. 1e9) in
    let fork_cycles =
      if conflicted then 0.0
      else
        machine.Config.m_fork_base_cycles
        +. (float_of_int n *. machine.Config.m_fork_per_core_cycles)
    in
    let overhead =
      Config.cycles_to_seconds machine (fork_cycles +. sched_overhead +. insp_cycles)
    in
    let t = Float.max comp mem +. overhead in
    { sb_parallel = true; sb_compute_s = comp; sb_memory_s = mem; sb_overhead_s = overhead; sb_time_s = t }

(** Simulated wall-clock seconds of [profile] on [n] cores. *)
let simulate ?(machine = Config.opteron64) ~(backend : Config.backend) ~n
    (profile : Trace.profile) : result =
  (* pair each Par segment with its inspector verdict (if any), by the
     verdict's ordinal among the profile's Par segments *)
  let par_ord = ref (-1) in
  let segs =
    List.map
      (fun seg ->
        let insp =
          match seg with
          | Trace.Seq _ -> None
          | Trace.Par _ ->
            incr par_ord;
            List.find_opt
              (fun (v : Trace.insp_verdict) -> v.Trace.iv_par = !par_ord)
              profile.Trace.insp
        in
        segment_time ?insp machine backend n seg)
      profile.Trace.segments
  in
  {
    r_seconds = List.fold_left (fun acc s -> acc +. s.sb_time_s) 0.0 segs;
    r_segments = segs;
    r_cores = n;
    r_backend = backend;
  }

(** Simulate a sweep over core counts. *)
let sweep ?(machine = Config.opteron64) ~backend ~cores profile =
  List.map (fun n -> (n, (simulate ~machine ~backend ~n profile).r_seconds)) cores

(** The paper's speedup definition: sequential GCC runtime over parallel
    runtime (§4.3). *)
let speedup ~seq_seconds ~par_seconds = seq_seconds /. par_seconds
