(** Machine and compiler-backend descriptions for the multicore cost model.

    The default machine mirrors the paper's testbed: four AMD Opteron 6272
    processors, 64 cores at 2.1 GHz, ~100 GiB/s aggregate memory bandwidth
    (§4.2).  Backends model the two compilers of the evaluation: GCC 7.2
    [-O2] (no auto-vectorization at -O2) and ICC 16 (auto-vectorizes
    eligible loops, slightly better scalar code). *)

type weights = {
  w_int : float;
  w_fadd : float;
  w_fmul : float;
  w_fdiv : float;
  w_load : float;  (** L1 hit *)
  w_store : float;
  w_l1_miss : float;  (** extra cycles per L1 miss (L2 access, part overlap) *)
  w_call : float;  (** residual per-call cost (body overhead is charged by
                       the interpreter per site, inlining-aware) *)
  w_branch : float;
}

let default_weights =
  {
    w_int = 1.0;
    w_fadd = 1.0;
    w_fmul = 1.0;
    w_fdiv = 18.0;
    w_load = 1.0;
    w_store = 1.0;
    w_l1_miss = 6.0;
    w_call = 2.0;
    w_branch = 1.0;
  }

type backend = {
  b_name : string;
  b_auto_vectorize : bool;
  b_honors_vector_pragmas : bool;
  b_vector_width : int;  (** parallel single-precision lanes *)
  b_vector_efficiency : float;  (** fraction of ideal vector speedup reached *)
  b_scalar_factor : float;  (** scalar code quality multiplier (lower = faster) *)
}

let gcc =
  {
    b_name = "gcc";
    b_auto_vectorize = false;
    b_honors_vector_pragmas = true;
    b_vector_width = 4;
    b_vector_efficiency = 0.75;
    b_scalar_factor = 1.0;
  }

let icc =
  {
    b_name = "icc";
    b_auto_vectorize = true;
    b_honors_vector_pragmas = true;
    b_vector_width = 4;
    b_vector_efficiency = 0.85;
    b_scalar_factor = 0.92;
  }

type machine = {
  m_name : string;
  m_max_cores : int;
  m_freq_ghz : float;
  m_weights : weights;
  m_line_bytes : int;
  m_dram_bw_gbs : float;
      (** aggregate DRAM bandwidth in {e model units}: the interpreter's
          abstract cycles overstate native compute by roughly the factor an
          optimizing compiler removes (~6x), so bandwidth shrinks by the
          same factor to keep the compute-to-memory balance of the real
          machine (100 GiB/s aggregate, ~10 GiB/s per core) *)
  m_per_core_bw_gbs : float;  (** single-core streaming bandwidth, model units *)
  m_fork_base_cycles : float;  (** parallel-region fork/join fixed cost *)
  m_fork_per_core_cycles : float;  (** additional per participating core *)
  m_dynamic_chunk_cycles : float;  (** dequeue cost per dynamic chunk *)
  m_insp_base_cycles : float;
      (** inspector invocation fixed cost (scratch-frame setup, hash-table
          allocation), charged on the master before a runtime-checked loop
          forks or falls back *)
  m_insp_per_check_cycles : float;
      (** per probed address: subscript evaluation + hash lookup/insert *)
}

(** The paper's 4-socket Opteron 6272 node (§4.2). *)
let opteron64 =
  {
    m_name = "4x AMD Opteron 6272";
    m_max_cores = 64;
    m_freq_ghz = 2.1;
    m_weights = default_weights;
    m_line_bytes = 64;
    m_dram_bw_gbs = 16.0;
    m_per_core_bw_gbs = 1.7;
    m_fork_base_cycles = 8_000.0;
    m_fork_per_core_cycles = 600.0;
    m_dynamic_chunk_cycles = 180.0;
    m_insp_base_cycles = 400.0;
    m_insp_per_check_cycles = 14.0;
  }

(** Effective aggregate bandwidth with [n] active cores (GB/s). *)
let bandwidth machine n =
  Float.min machine.m_dram_bw_gbs (float_of_int n *. machine.m_per_core_bw_gbs)

let cycles_to_seconds machine cycles = cycles /. (machine.m_freq_ghz *. 1e9)
