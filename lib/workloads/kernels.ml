(** A gallery of classic polyhedral kernels in the C subset.

    These go beyond the paper's four applications: each kernel exercises a
    different corner of the polyhedral engine (reductions, wavefronts,
    triangular domains, sequential outer time loops, min-recurrences), and
    each records the transform properties the engine is expected to find —
    the test suite asserts them and checks the generated code against the
    sequential execution bit-for-bit. *)

type expectation = {
  x_parallel : bool;  (** some loop of the (first) unit is parallel *)
  x_outer_parallel : bool;  (** the outermost generated loop is parallel *)
  x_identity : bool;  (** no schedule transform needed *)
  x_band : int;  (** expected permutable-band size (0 = don't care) *)
}

type kernel = {
  k_name : string;
  k_source : string;  (** complete program printing "checksum %f" *)
  k_expect : expectation;
}

(* ------------------------------------------------------------------ *)

(* gemver-like: two dense rank-1-ish sweeps, all loops parallel *)
let gemver =
  {
    k_name = "gemver";
    k_expect = { x_parallel = true; x_outer_parallel = true; x_identity = true; x_band = 2 };
    k_source =
      {|
double A[48][48]; double u[48]; double v[48]; double x[48]; double y[48];
int main() {
  for (int i = 0; i < 48; i++) {
    u[i] = 1.0 + i * 0.25;
    v[i] = 2.0 - i * 0.125;
    y[i] = i % 7;
    x[i] = 0.0;
  }
#pragma scop
  for (int i = 0; i < 48; i++)
    for (int j = 0; j < 48; j++)
      A[i][j] = u[i] * v[j] + i - j;
#pragma endscop
#pragma scop
  for (int i = 0; i < 48; i++)
    for (int j = 0; j < 48; j++)
      x[i] = x[i] + A[j][i] * y[j];
#pragma endscop
  double s = 0.0;
  for (int i = 0; i < 48; i++) s += x[i];
  printf("checksum %.6f\n", s);
  return 0;
}
|};
  }

(* syrk: C += A A^T on the lower triangle — triangular domain + reduction *)
let syrk =
  {
    k_name = "syrk";
    k_expect = { x_parallel = true; x_outer_parallel = true; x_identity = true; x_band = 0 };
    k_source =
      {|
double C[40][40]; double A[40][24];
int main() {
  for (int i = 0; i < 40; i++) {
    for (int k = 0; k < 24; k++)
      A[i][k] = (i * 3 + k) % 11 * 0.25;
    for (int j = 0; j < 40; j++)
      C[i][j] = 0.0;
  }
#pragma scop
  for (int i = 0; i < 40; i++)
    for (int j = 0; j <= i; j++)
      for (int k = 0; k < 24; k++)
        C[i][j] = C[i][j] + A[i][k] * A[j][k];
#pragma endscop
  double s = 0.0;
  for (int i = 0; i < 40; i++)
    for (int j = 0; j < 40; j++)
      s += C[i][j] * (i + 2 * j + 1);
  printf("checksum %.6f\n", s);
  return 0;
}
|};
  }

(* jacobi-1d with a time loop: the time loop stays sequential, the sweep
   parallelizes per step *)
let jacobi1d =
  {
    k_name = "jacobi-1d";
    k_expect = { x_parallel = true; x_outer_parallel = true; x_identity = true; x_band = 0 };
    k_source =
      {|
double A[400]; double B[400];
int main() {
  for (int i = 0; i < 400; i++) A[i] = (i % 13) * 0.5;
  for (int t = 0; t < 12; t++) {
#pragma scop
    for (int i = 1; i < 399; i++)
      B[i] = 0.33333 * (A[i - 1] + A[i] + A[i + 1]);
#pragma endscop
#pragma scop
    for (int i = 1; i < 399; i++)
      A[i] = B[i];
#pragma endscop
  }
  double s = 0.0;
  for (int i = 0; i < 400; i++) s += A[i] * (i % 5);
  printf("checksum %.6f\n", s);
  return 0;
}
|};
  }

(* seidel-2d: in-place stencil, needs the wavefront skew of Fig. 2 *)
let seidel2d =
  {
    k_name = "seidel-2d";
    k_expect =
      { x_parallel = true; x_outer_parallel = false; x_identity = false; x_band = 0 };
    k_source =
      {|
double G[36][36];
int main() {
  for (int i = 0; i < 36; i++)
    for (int j = 0; j < 36; j++)
      G[i][j] = (i * 5 + j * 3) % 17 * 0.25;
#pragma scop
  for (int i = 1; i < 35; i++)
    for (int j = 1; j < 35; j++)
      G[i][j] = 0.2 * (G[i][j] + G[i - 1][j] + G[i][j - 1] + G[i + 1][j] + G[i][j + 1]);
#pragma endscop
  double s = 0.0;
  for (int i = 0; i < 36; i++)
    for (int j = 0; j < 36; j++)
      s += G[i][j] * ((i + 2 * j) % 7);
  printf("checksum %.6f\n", s);
  return 0;
}
|};
  }

(* floyd-warshall-like min-plus closure.  Dependence-wise no loop of the
   original order is parallel (the i=k / j=k iterations write the pivot row
   and column other iterations of the same k read), so the engine must find
   a skewed schedule with inner parallelism. *)
let floyd =
  {
    k_name = "floyd-warshall";
    k_expect =
      { x_parallel = true; x_outer_parallel = false; x_identity = false; x_band = 0 };
    k_source =
      {|
double D[28][28];
int main() {
  for (int i = 0; i < 28; i++)
    for (int j = 0; j < 28; j++)
      D[i][j] = i == j ? 0.0 : ((i * 7 + j * 5) % 23 + 1) * 1.0;
#pragma scop
  for (int k = 0; k < 28; k++)
    for (int i = 0; i < 28; i++)
      for (int j = 0; j < 28; j++)
        D[i][j] = D[i][j] < D[i][k] + D[k][j] ? D[i][j] : D[i][k] + D[k][j];
#pragma endscop
  double s = 0.0;
  for (int i = 0; i < 28; i++)
    for (int j = 0; j < 28; j++)
      s += D[i][j];
  printf("checksum %.6f\n", s);
  return 0;
}
|};
  }

(* a skewed recurrence with a pure call: the chain must combine call hiding
   with a schedule transform.  NOTE the call's arguments are scalars (i, j):
   passing W's *elements* into the call would hide the recurrence reads from
   the dependence analysis, which is exactly what the paper's Listing 5 rule
   forbids (and our marker rejects). *)
let pure_wavefront =
  {
    k_name = "pure-wavefront";
    k_expect =
      { x_parallel = true; x_outer_parallel = false; x_identity = false; x_band = 0 };
    k_source =
      {|
double W[32][32];

pure double bump(int i, int j) {
  return ((i * 3 + j) % 5) * 0.01;
}

int main() {
  for (int i = 0; i < 32; i++)
    for (int j = 0; j < 32; j++)
      W[i][j] = (i + j) % 9 * 0.5;
  for (int i = 1; i < 32; i++)
    for (int j = 1; j < 32; j++)
      W[i][j] = 0.5 * (W[i - 1][j] + W[i][j - 1]) + bump(i, j);
  double s = 0.0;
  for (int i = 0; i < 32; i++)
    for (int j = 0; j < 32; j++)
      s += W[i][j] * ((i * 3 + j) % 4 + 1);
  printf("checksum %.6f\n", s);
  return 0;
}
|};
  }

(* anti-diagonal recurrence: the single flow dependence has distance
   (1, -1), so the original loop nest is legal only with i outermost and
   sequential — the engine's winner keeps outer parallelism via a skewed
   permutation.  Swapping the loops flips the dependence lex-negative,
   which makes this the canonical witness for the race detector's
   fault-injection mode: under --inject-illegal the injected permutation
   puts the dependence-carrying loop under the parallel pragma and every
   plan with >= 2 workers races. *)
let antidiag =
  {
    k_name = "antidiag";
    k_expect =
      { x_parallel = true; x_outer_parallel = true; x_identity = false; x_band = 0 };
    k_source =
      {|
double A[40][40];
int main() {
  for (int i = 0; i < 40; i++)
    for (int j = 0; j < 40; j++)
      A[i][j] = ((i * 5 + j * 3) % 11) * 0.5;
#pragma scop
  for (int i = 1; i < 40; i++)
    for (int j = 0; j < 39; j++)
      A[i][j] = A[i - 1][j + 1] + 1.0;
#pragma endscop
  double s = 0.0;
  for (int i = 0; i < 40; i++)
    for (int j = 0; j < 40; j++)
      s += A[i][j] * ((i + 3 * j) % 5);
  printf("checksum %.6f\n", s);
  return 0;
}
|};
  }

(* doitgen-like contraction *)
let doitgen =
  {
    k_name = "doitgen";
    k_expect = { x_parallel = true; x_outer_parallel = true; x_identity = true; x_band = 0 };
    k_source =
      {|
double A[12][12][16]; double C4[16][16]; double S[12][12][16];
int main() {
  for (int r = 0; r < 12; r++)
    for (int q = 0; q < 12; q++)
      for (int p = 0; p < 16; p++)
        A[r][q][p] = ((r * 3 + q * 5 + p) % 13) * 0.25;
  for (int p = 0; p < 16; p++)
    for (int s = 0; s < 16; s++)
      C4[p][s] = ((p * 7 + s) % 9) * 0.5;
#pragma scop
  for (int r = 0; r < 12; r++)
    for (int q = 0; q < 12; q++)
      for (int p = 0; p < 16; p++)
        for (int s = 0; s < 16; s++)
          S[r][q][p] = S[r][q][p] + A[r][q][s] * C4[s][p];
#pragma endscop
  double total = 0.0;
  for (int r = 0; r < 12; r++)
    for (int q = 0; q < 12; q++)
      for (int p = 0; p < 16; p++)
        total += S[r][q][p] * (r + q + p);
  printf("checksum %.6f\n", total);
  return 0;
}
|};
  }

(* Irregular scatter through a permutation index array: y[col[j]] defeats
   the polyhedral dependence test, but col is a permutation (13 is coprime
   with 64), so the write footprints are pairwise disjoint and the
   inspector's runtime check parallelizes the loop.  The transform unit is
   the identity nest under the runtime-checked pragma. *)
let gather_disjoint =
  {
    k_name = "gather-disjoint";
    k_expect =
      { x_parallel = true; x_outer_parallel = true; x_identity = true; x_band = 0 };
    k_source =
      {|
double y[64]; double v[64]; int col[64];
int main() {
  for (int i = 0; i < 64; i++) {
    col[i] = (i * 13 + 5) % 64;
    v[i] = (i % 9) * 0.5 + 1.0;
    y[i] = 0.0;
  }
#pragma scop
  for (int j = 0; j < 64; j++)
    y[col[j]] += v[j] * 2.0;
#pragma endscop
  double s = 0.0;
  for (int i = 0; i < 64; i++) s += y[i] * (i % 7 + 1);
  printf("checksum %.6f\n", s);
  return 0;
}
|};
  }

(* The same scatter with a duplicating index map: every target cell is hit
   twice, so the inspector finds a write-write conflict at runtime and the
   loop falls back to the byte-identical sequential path.  The static
   transform properties are those of gather-disjoint — the conflict is a
   value property no compile-time analysis can see. *)
let gather_conflict =
  {
    k_name = "gather-conflict";
    k_expect =
      { x_parallel = true; x_outer_parallel = true; x_identity = true; x_band = 0 };
    k_source =
      {|
double y[64]; double v[64]; int col[64];
int main() {
  for (int i = 0; i < 64; i++) {
    col[i] = (i * 2) % 64;
    v[i] = (i % 9) * 0.5 + 1.0;
    y[i] = 0.0;
  }
#pragma scop
  for (int j = 0; j < 64; j++)
    y[col[j]] += v[j] * 2.0;
#pragma endscop
  double s = 0.0;
  for (int i = 0; i < 64; i++) s += y[i] * (i % 7 + 1);
  printf("checksum %.6f\n", s);
  return 0;
}
|};
  }

let all =
  [
    gemver;
    syrk;
    jacobi1d;
    seidel2d;
    floyd;
    pure_wavefront;
    antidiag;
    doitgen;
    gather_disjoint;
    gather_conflict;
  ]

let find name = List.find_opt (fun k -> k.k_name = name) all
