(** Application 4 (paper §4.1, §4.3.4): the LAMA ELL sparse matrix–vector
    multiplication.

    The Boeing/pwtk input is synthesized in-program by pure hash functions
    (the real matrix is a 155 MiB download; what the kernel's behaviour
    depends on — a banded symmetric-ish structure with a heavy tail of
    denser rows — is reproduced by construction, cf. [Lama.Matrix_gen]).
    The kernel loop uses indirect addressing {e and} a function call, so
    polyhedral tools are doubly unable to touch it without the pure stage.

    The heavy rows cluster at the end of the matrix, so [schedule(static)]
    leaves the last cores overloaded — "the thread load differs greatly at
    the end of the program" (§4.3.4). *)

let default_rows = 16384

let default_maxnnz = 24

(* One kernel invocation by default: with several invocations inside one
   scop the polyhedral pass legally interchanges the repetition loop inward
   (outer-parallelizing the rows across repetitions) — a schedule the
   paper's setup cannot reach across the library-kernel boundary, which
   would skew the auto-vs-manual comparison of Fig. 10. *)
let default_reps = 1

let header rows maxnnz reps =
  Printf.sprintf
    "#include <stdio.h>\n#include <stdlib.h>\n#define ROWS %d\n#define MAXNNZ %d\n#define REPS %d\n"
    rows maxnnz reps

let common_decls = {|
double *vals, *x, *y;
int *cols, *nnz;

pure int hash2(int a, int b) {
  int h = a * 2654435 + b * 40503 + 12289;
  h = h ^ (h / 8192);
  if (h < 0) h = -h;
  return h;
}

pure int row_nnz_of(int r, int rows) {
  int h = hash2(r, 17);
  int base = 8 + h % 9;
  if (r > rows - rows / 8) base = MAXNNZ - h % 3;
  return base;
}

pure int col_of(int r, int k, int rows) {
  int h = hash2(r * 31 + k, k);
  int c = r - 16 + h % 33;
  if (c < 0) c = -c;
  if (c >= rows) c = 2 * rows - 2 - c;
  return c;
}

pure double val_of(int r, int k) {
  return 0.001 * (hash2(r, k + 101) % 2000) - 1.0;
}
|}

let fill_code = {|
  vals = (double*) malloc(ROWS * MAXNNZ * sizeof(double));
  cols = (int*) malloc(ROWS * MAXNNZ * sizeof(int));
  nnz = (int*) malloc(ROWS * sizeof(int));
  x = (double*) malloc(ROWS * sizeof(double));
  y = (double*) malloc(ROWS * sizeof(double));
  for (int r = 0; r < ROWS; r++) {
    nnz[r] = row_nnz_of(r, ROWS);
    x[r] = 1.0 + (r % 17) * 0.125;
    y[r] = 0.0;
  }
  for (int r = 0; r < ROWS; r++) {
    for (int k = 0; k < MAXNNZ; k++) {
      cols[r * MAXNNZ + k] = col_of(r, k, ROWS);
      vals[r * MAXNNZ + k] = k < nnz[r] ? val_of(r, k) : 0.0;
    }
  }
|}

(* the hand-parallelized program parallelizes its setup loops as well, so
   the auto-vs-manual comparison isolates the kernel (the paper timed the
   library kernel against pre-loaded data) *)
let manual_fill_code = {|
  vals = (double*) malloc(ROWS * MAXNNZ * sizeof(double));
  cols = (int*) malloc(ROWS * MAXNNZ * sizeof(int));
  nnz = (int*) malloc(ROWS * sizeof(int));
  x = (double*) malloc(ROWS * sizeof(double));
  y = (double*) malloc(ROWS * sizeof(double));
#pragma omp parallel for
  for (int r = 0; r < ROWS; r++) {
    nnz[r] = row_nnz_of(r, ROWS);
    x[r] = 1.0 + (r % 17) * 0.125;
    y[r] = 0.0;
  }
#pragma omp parallel for private(k)
  for (int r = 0; r < ROWS; r++) {
    for (int k = 0; k < MAXNNZ; k++) {
      cols[r * MAXNNZ + k] = col_of(r, k, ROWS);
      vals[r * MAXNNZ + k] = k < nnz[r] ? val_of(r, k) : 0.0;
    }
  }
|}

let checksum_code = {|
  double sum = 0.0;
  for (int r = 0; r < ROWS; r++)
    sum += y[r] * (r % 13 + 1);
  printf("checksum %.6f\n", sum);
  return 0;
}
|}

(** Pure-annotated kernel (the automatic variant). *)
let pure_source ?(rows = default_rows) ?(maxnnz = default_maxnnz) ?(reps = default_reps)
    () =
  header rows maxnnz reps ^ common_decls
  ^ {|
pure double row_dot(pure double* v, pure int* c, pure double* xx, int r, int m, int n) {
  double acc = 0.0;
  for (int k = 0; k < n; k++)
    acc += v[r * m + k] * xx[c[r * m + k]];
  return acc;
}

int main() {
|}
  ^ fill_code
  ^ {|
  for (int rep = 0; rep < REPS; rep++)
    for (int r = 0; r < ROWS; r++)
      y[r] = row_dot((pure double*)vals, (pure int*)cols, (pure double*)x,
                     r, MAXNNZ, nnz[r]);
|}
  ^ checksum_code

(** Inlined-gather variant for the inspector/executor path: the ELL dot
    product written directly in the loop nest — no pure call to hide, no
    hand-written pragma — so static dependence analysis fails on the
    [x\[cols\[..\]\]] indirection and only the runtime disjointness check
    can parallelize it.  [vals] is zero beyond each row's [nnz], so the
    checksum matches {!pure_source} at [reps = 1].  The scop is marked
    manually (the purity stage has nothing to verify here). *)
let inspector_source ?(rows = default_rows) ?(maxnnz = default_maxnnz)
    ?(reps = default_reps) () =
  header rows maxnnz reps ^ common_decls
  ^ {|
int main() {
|}
  ^ fill_code
  ^ {|
  for (int rep = 0; rep < REPS; rep++) {
#pragma scop
    for (int r = 0; r < ROWS; r++)
      for (int k = 0; k < MAXNNZ; k++)
        y[r] += vals[r * MAXNNZ + k] * x[cols[r * MAXNNZ + k]];
#pragma endscop
  }
|}
  ^ checksum_code

(** Hand-parallelized variant: inlined kernel with an explicit OpenMP
    directive and [schedule(static)] (§4.3.4). *)
let manual_source ?(rows = default_rows) ?(maxnnz = default_maxnnz)
    ?(reps = default_reps) () =
  header rows maxnnz reps ^ common_decls
  ^ {|
int main() {
|}
  ^ manual_fill_code
  ^ {|
  for (int rep = 0; rep < REPS; rep++) {
#pragma omp parallel for private(k) schedule(static)
    for (int r = 0; r < ROWS; r++) {
      double acc = 0.0;
      for (int k = 0; k < nnz[r]; k++)
        acc += vals[r * MAXNNZ + k] * x[cols[r * MAXNNZ + k]];
      y[r] = acc;
    }
  }
|}
  ^ checksum_code
