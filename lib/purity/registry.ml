(** The hashset of functions declared or considered pure (paper §3.2).

    It starts out with the side-effect-free C standard functions, plus
    [malloc] and [free]: "Although these functions are not strictly free of
    side-effects, their side-effects do not affect other threads."  The
    checker adds user functions as their [pure] declarations are met. *)

type t = { set : (string, unit) Hashtbl.t; mutable allow_malloc : bool }

let pure_stdlib =
  [
    "sin"; "cos"; "tan"; "asin"; "acos"; "atan"; "atan2";
    "sinh"; "cosh"; "tanh";
    "exp"; "log"; "log2"; "log10"; "sqrt"; "pow";
    "fabs"; "floor"; "ceil"; "round"; "fmin"; "fmax"; "fmod"; "abs";
    "sinf"; "cosf"; "sqrtf"; "expf"; "logf"; "fabsf"; "powf";
    "__min"; "__max"; "__ceild"; "__floord";
  ]

(** [allow_malloc:false] is the ablation of DESIGN.md §5 ("no-malloc-pure"):
    without it the matmul initialization loop stops being parallelizable,
    reproducing the black bars of the paper's Fig. 3. *)
let create ?(allow_malloc = true) () =
  let t = { set = Hashtbl.create 64; allow_malloc } in
  List.iter (fun f -> Hashtbl.replace t.set f ()) pure_stdlib;
  if allow_malloc then begin
    Hashtbl.replace t.set "malloc" ();
    Hashtbl.replace t.set "calloc" ();
    Hashtbl.replace t.set "free" ()
  end;
  t

let add t name = Hashtbl.replace t.set name ()

let mem t name = Hashtbl.mem t.set name

let names t = Hashtbl.fold (fun k () acc -> k :: acc) t.set [] |> List.sort compare
