(** The differential oracle: one program, every meaningful pipeline
    configuration, bit-identical outputs.

    The baseline is the untransformed sequential interpretation.  Every
    other configuration — purity-lowered manual OpenMP, the full pure chain
    under several PluTo schedules/tilings, SICA — must print exactly the
    same bytes and return the same code, because a {e legal} polyhedral
    transform preserves the pairwise order of dependence-related iterations
    (so even floating-point reductions accumulate in the original order).
    Any divergence is a miscompile.

    Beyond output equality the oracle checks structural invariants:
    - every transformation matrix PluTo commits to is unimodular (the
      iteration set maps bijectively, no iteration lost or duplicated);
    - for every parallel segment of the execution profile, the runtime
      worksharing {!Runtime.Par_loop.plan} is an exact partition of the
      iteration space for all schedules at core counts 1, 4, 16 and 64;
    - the machine model produces finite positive times at each core count. *)

open Support

type failure =
  | Output_mismatch of { config : string; expected : string; got : string }
  | Return_mismatch of { config : string; expected : int; got : int }
  | Compile_failure of { config : string; detail : string }
  | Runtime_failure of { config : string; detail : string }
  | Nonunimodular of { config : string; detail : string }
  | Plan_violation of { config : string; detail : string }
  | Model_failure of { config : string; detail : string }
  | Race_detected of { config : string; detail : string }
      (** a dynamic race engine found conflicting accesses in a
          parallelized loop — checked {e before} outputs are compared, so
          an injected illegal transform is caught even when the racy
          schedule happens to print the right bytes *)
  | Engine_disagreement of { config : string; detail : string }
      (** the happens-before and lockset engines returned incompatible
          racy-word sets for the same plan — one of the two dynamic race
          models is wrong, which is a detector bug, not a program bug *)

type report = {
  r_seed : int option;  (** filled in by the campaign driver *)
  r_failures : failure list;
  r_configs : int;  (** configurations compared *)
}

let failure_config = function
  | Output_mismatch { config; _ }
  | Return_mismatch { config; _ }
  | Compile_failure { config; _ }
  | Runtime_failure { config; _ }
  | Nonunimodular { config; _ }
  | Plan_violation { config; _ }
  | Model_failure { config; _ }
  | Race_detected { config; _ }
  | Engine_disagreement { config; _ } -> config

let kind_tag = function
  | Output_mismatch _ -> "output-mismatch"
  | Return_mismatch _ -> "return-mismatch"
  | Compile_failure _ -> "compile-failure"
  | Runtime_failure _ -> "runtime-failure"
  | Nonunimodular _ -> "non-unimodular"
  | Plan_violation _ -> "plan-violation"
  | Model_failure _ -> "model-failure"
  | Race_detected _ -> "race-detected"
  | Engine_disagreement _ -> "engine-disagreement"

let describe = function
  | Output_mismatch { config; expected; got } ->
    Printf.sprintf "[%s] output mismatch\n--- expected\n%s--- got\n%s" config expected got
  | Return_mismatch { config; expected; got } ->
    Printf.sprintf "[%s] return code mismatch: expected %d, got %d" config expected got
  | Compile_failure { config; detail } -> Printf.sprintf "[%s] compile failure: %s" config detail
  | Runtime_failure { config; detail } -> Printf.sprintf "[%s] runtime failure: %s" config detail
  | Nonunimodular { config; detail } -> Printf.sprintf "[%s] non-unimodular transform: %s" config detail
  | Plan_violation { config; detail } -> Printf.sprintf "[%s] schedule plan violation: %s" config detail
  | Model_failure { config; detail } -> Printf.sprintf "[%s] machine model failure: %s" config detail
  | Race_detected { config; detail } -> Printf.sprintf "[%s] data race: %s" config detail
  | Engine_disagreement { config; detail } ->
    Printf.sprintf "[%s] race engine disagreement: %s" config detail

(* ------------------------------------------------------------------ *)
(* Configurations under test *)

let with_inject ~inject c =
  if inject then { c with Pluto.unsafe_no_legality = true } else c

let configs ~inject : (string * Toolchain.Chain.mode) list =
  let with_inject = with_inject ~inject in
  [
    ("manual-omp", Toolchain.Chain.Manual_omp);
    ("pure-static", Toolchain.Chain.Pure_chain with_inject);
    ( "pure-static4",
      Toolchain.Chain.Pure_chain (fun c -> with_inject { c with Pluto.schedule_clause = Some "static,4" }) );
    ( "pure-dyn1",
      Toolchain.Chain.Pure_chain (fun c -> with_inject { c with Pluto.schedule_clause = Some "dynamic,1" }) );
    ( "pure-guided1",
      Toolchain.Chain.Pure_chain (fun c -> with_inject { c with Pluto.schedule_clause = Some "guided,1" }) );
    ( "pure-tile",
      Toolchain.Chain.Pure_chain (fun c -> with_inject { c with Pluto.tile = true; tile_sizes = [ 4 ] }) );
    ( "pure-sica",
      Toolchain.Chain.Pure_chain
        (fun c -> with_inject { c with Pluto.sica = true; sica_cache = Toolchain.Chain.scaled_sica_cache }) );
  ]

(** The uninstrumented twin of the matrix: the same source executed on the
    fast variant ([no_model]).  Compared on output bytes and return code
    only — the structural checks (unimodularity, plan partitions, model
    sanity, races) need the instrumented profile, and the modeled twin of
    each configuration already runs them; a fast profile's counters are
    all zero by design, so e.g. {!check_model} would reject it vacuously. *)
let fast_configs ~inject : (string * Toolchain.Chain.mode) list =
  let with_inject = with_inject ~inject in
  [
    ("fast-seq", Toolchain.Chain.Sequential);
    ("fast-static", Toolchain.Chain.Pure_chain with_inject);
    ( "fast-guided1",
      Toolchain.Chain.Pure_chain
        (fun c -> with_inject { c with Pluto.schedule_clause = Some "guided,1" }) );
    ( "fast-tile",
      Toolchain.Chain.Pure_chain
        (fun c -> with_inject { c with Pluto.tile = true; tile_sizes = [ 4 ] }) );
  ]

let core_counts = [ 1; 4; 16; 64 ]

let plan_schedules =
  [
    Runtime.Par_loop.Static;
    Runtime.Par_loop.Static_chunk 4;
    Runtime.Par_loop.Dynamic 1;
    Runtime.Par_loop.Guided 1;
  ]

let sched_name = function
  | Runtime.Par_loop.Static -> "static"
  | Runtime.Par_loop.Static_chunk c -> Printf.sprintf "static,%d" c
  | Runtime.Par_loop.Dynamic c -> Printf.sprintf "dynamic,%d" c
  | Runtime.Par_loop.Guided c -> Printf.sprintf "guided,%d" c

(* ------------------------------------------------------------------ *)
(* Structural checks *)

let check_unimodular ~config (c : Toolchain.Chain.compiled) =
  List.concat_map
    (fun (o : Pluto.outcome) ->
      match o.Pluto.o_result with
      | Pluto.Rejected _ -> []
      | Pluto.Transformed { t_units } ->
        List.filter_map
          (fun (u : Pluto.unit_info) ->
            if Poly.Linalg.Imat.is_unimodular u.Pluto.ui_matrix then None
            else
              Some
                (Nonunimodular
                   {
                     config;
                     detail =
                       Printf.sprintf "iterators [%s]: matrix %s" (String.concat ", " u.Pluto.ui_iters)
                         (Poly.Linalg.Imat.to_string u.Pluto.ui_matrix);
                   }))
          t_units)
    c.Toolchain.Chain.c_outcomes

(* the plan of every schedule must be an exact partition of [0, m) *)
let check_plans ~config (profile : Interp.Trace.profile) =
  let check_one m =
    List.concat_map
      (fun workers ->
        List.filter_map
          (fun sched ->
            let plan = Runtime.Par_loop.plan sched ~workers ~lo:0 ~hi:m in
            let all = List.sort compare (List.concat (Array.to_list plan)) in
            if all = Util.range 0 m then None
            else
              Some
                (Plan_violation
                   {
                     config;
                     detail =
                       Printf.sprintf "%d iterations, %d workers, schedule(%s): covered %d of %d" m workers
                         (sched_name sched) (List.length all) m;
                   }))
          plan_schedules)
      core_counts
  in
  List.concat_map
    (function
      | Interp.Trace.Seq _ -> []
      | Interp.Trace.Par { iters; _ } -> check_one (Array.length iters))
    profile.Interp.Trace.segments

let check_model ~config (profile : Interp.Trace.profile) =
  List.filter_map
    (fun n ->
      let r = Machine.Model.simulate ~backend:Machine.Config.gcc ~n profile in
      let t = r.Machine.Model.r_seconds in
      if Float.is_finite t && t > 0.0 then None
      else
        Some (Model_failure { config; detail = Printf.sprintf "simulated time at %d cores is %g" n t }))
    core_counts

(* ------------------------------------------------------------------ *)

let run_config ?trace_accesses ?no_model ?shadow_slots mode source =
  match Toolchain.Chain.run ~mode ?trace_accesses ?no_model ?shadow_slots source with
  | c, profile -> Ok (c, profile)
  | exception Toolchain.Chain.Compile_error diags ->
    Error (String.concat "; " (List.map (fun d -> d.Diag.code ^ ": " ^ d.Diag.message) diags))
  | exception Diag.Fatal d -> Error (d.Diag.code ^ ": " ^ d.Diag.message)
  | exception Interp.Exec.Runtime_error msg -> Error ("runtime: " ^ msg)

(* The second oracle stage: replay the access log of a traced profile under
   the full plan matrix with BOTH race engines cross-checked.  Tracing never
   perturbs the output or the cost counters, so the {e same} run serves both
   this and output comparison. *)
let check_races ~config (profile : Interp.Trace.profile) =
  match
    Racecheck.verdict_matrix ~engine:Racecheck.Both ~schedules:plan_schedules
      ~cores:core_counts profile
  with
  | Error detail -> [ Runtime_failure { config; detail } ]
  | Ok verdicts ->
    let races =
      List.concat_map
        (fun v ->
          List.filter_map
            (fun r ->
              if Racecheck.clean r then None
              else Some (Race_detected { config; detail = Racecheck.describe_report r }))
            (Racecheck.verdict_reports v))
        verdicts
    in
    let disagreements =
      List.map
        (fun detail -> Engine_disagreement { config; detail })
        (Racecheck.verdicts_disagreements verdicts)
    in
    races @ disagreements

(** Compare all configurations of [source] against the sequential baseline.
    With [racecheck], every transformed configuration additionally runs
    with access tracing and must replay race-free under all plans; races
    are reported {e instead of} (not alongside) output comparison, so an
    injected illegal transform fails as a race even if its output happens
    to match. *)
let check ?(inject = false) ?(racecheck = false) (source : string) : report =
  let cfgs = configs ~inject in
  match run_config Toolchain.Chain.Sequential source with
  | Error detail ->
    { r_seed = None; r_failures = [ Compile_failure { config = "sequential"; detail } ]; r_configs = 1 }
  | Ok (_, base) ->
    let failures =
      List.concat_map
        (fun (name, mode) ->
          match run_config ~trace_accesses:racecheck ~shadow_slots:racecheck mode source with
          | Error detail ->
            if Util.string_starts_with ~prefix:"runtime" detail then
              [ Runtime_failure { config = name; detail } ]
            else [ Compile_failure { config = name; detail } ]
          | Ok (compiled, profile) -> (
            match if racecheck then check_races ~config:name profile else [] with
            | _ :: _ as races -> races
            | [] ->
            let fs = ref [] in
            if profile.Interp.Trace.output <> base.Interp.Trace.output then
              fs :=
                Output_mismatch
                  { config = name; expected = base.Interp.Trace.output; got = profile.Interp.Trace.output }
                :: !fs;
            if profile.Interp.Trace.return_code <> base.Interp.Trace.return_code then
              fs :=
                Return_mismatch
                  {
                    config = name;
                    expected = base.Interp.Trace.return_code;
                    got = profile.Interp.Trace.return_code;
                  }
                :: !fs;
            List.rev !fs
            @ check_unimodular ~config:name compiled
            @ check_plans ~config:name profile
            @ check_model ~config:name profile))
        cfgs
    in
    let fasts = fast_configs ~inject in
    let fast_failures =
      List.concat_map
        (fun (name, mode) ->
          match run_config ~no_model:true mode source with
          | Error detail ->
            if Util.string_starts_with ~prefix:"runtime" detail then
              [ Runtime_failure { config = name; detail } ]
            else [ Compile_failure { config = name; detail } ]
          | Ok (_, profile) ->
            let fs = ref [] in
            if profile.Interp.Trace.output <> base.Interp.Trace.output then
              fs :=
                Output_mismatch
                  { config = name; expected = base.Interp.Trace.output; got = profile.Interp.Trace.output }
                :: !fs;
            if profile.Interp.Trace.return_code <> base.Interp.Trace.return_code then
              fs :=
                Return_mismatch
                  {
                    config = name;
                    expected = base.Interp.Trace.return_code;
                    got = profile.Interp.Trace.return_code;
                  }
                :: !fs;
            List.rev !fs)
        fasts
    in
    {
      r_seed = None;
      r_failures = failures @ fast_failures;
      r_configs = 1 + List.length cfgs + List.length fasts;
    }

let passed r = r.r_failures = []
