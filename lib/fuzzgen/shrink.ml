(** Greedy minimizer for failing fuzz programs.

    Starting from a program the oracle rejects, repeatedly tries
    simplifications — dropping top-level statements of [main], shrinking
    literal loop bounds, inlining pure calls away, dropping statements from
    inner blocks — and keeps a candidate iff it still compiles sequentially
    {e and} still produces a failure of the same kind.  First-improvement
    descent until a full pass yields nothing, capped by an oracle-evaluation
    budget so shrinking stays fast even on pathological inputs. *)

open Cfront

let default_budget = 400

(* ------------------------------------------------------------------ *)
(* Expression rewriting (the AST only ships a statement mapper) *)

let rec map_expr f (e : Ast.expr) : Ast.expr =
  let go = map_expr f in
  let e' =
    match e.Ast.edesc with
    | Ast.IntLit _ | Ast.FloatLit _ | Ast.StrLit _ | Ast.CharLit _ | Ast.Ident _ | Ast.SizeofType _ -> e
    | Ast.Binop (op, a, b) -> { e with Ast.edesc = Ast.Binop (op, go a, go b) }
    | Ast.Unop (op, a) -> { e with Ast.edesc = Ast.Unop (op, go a) }
    | Ast.Assign (op, a, b) -> { e with Ast.edesc = Ast.Assign (op, go a, go b) }
    | Ast.Call (g, args) -> { e with Ast.edesc = Ast.Call (g, List.map go args) }
    | Ast.Index (a, b) -> { e with Ast.edesc = Ast.Index (go a, go b) }
    | Ast.Deref a -> { e with Ast.edesc = Ast.Deref (go a) }
    | Ast.AddrOf a -> { e with Ast.edesc = Ast.AddrOf (go a) }
    | Ast.Member (a, fld) -> { e with Ast.edesc = Ast.Member (go a, fld) }
    | Ast.Arrow (a, fld) -> { e with Ast.edesc = Ast.Arrow (go a, fld) }
    | Ast.Cast (ty, a) -> { e with Ast.edesc = Ast.Cast (ty, go a) }
    | Ast.Cond (a, b, c) -> { e with Ast.edesc = Ast.Cond (go a, go b, go c) }
    | Ast.SizeofExpr a -> { e with Ast.edesc = Ast.SizeofExpr (go a) }
    | Ast.IncDec { pre; inc; arg } -> { e with Ast.edesc = Ast.IncDec { pre; inc; arg = go arg } }
    | Ast.Comma (a, b) -> { e with Ast.edesc = Ast.Comma (go a, go b) }
  in
  f e'

(* apply [f] to every expression of every statement under [s] *)
let map_stmt_exprs f (s : Ast.stmt) : Ast.stmt =
  let fe = map_expr f in
  let fd (d : Ast.decl) = { d with Ast.d_init = Option.map fe d.Ast.d_init } in
  Ast.map_stmt
    (fun s ->
      let sdesc =
        match s.Ast.sdesc with
        | Ast.SExpr e -> Ast.SExpr (fe e)
        | Ast.SDecl d -> Ast.SDecl (fd d)
        | Ast.SIf (c, t, e) -> Ast.SIf (fe c, t, e)
        | Ast.SWhile (c, b) -> Ast.SWhile (fe c, b)
        | Ast.SDoWhile (b, c) -> Ast.SDoWhile (b, fe c)
        | Ast.SFor (init, cond, step, b) ->
          let init' =
            match init with
            | Some (Ast.FInitDecl d) -> Some (Ast.FInitDecl (fd d))
            | Some (Ast.FInitExpr e) -> Some (Ast.FInitExpr (fe e))
            | None -> None
          in
          Ast.SFor (init', Option.map fe cond, Option.map fe step, b)
        | Ast.SReturn e -> Ast.SReturn (Option.map fe e)
        | (Ast.SBlock _ | Ast.SBreak | Ast.SContinue | Ast.SPragma _) as d -> d
      in
      { s with Ast.sdesc })
    s

let map_bodies f (prog : Ast.program) : Ast.program =
  List.map
    (fun g ->
      match g with
      | Ast.GFunc ({ Ast.f_body = Some body; _ } as fn) -> Ast.GFunc { fn with Ast.f_body = Some (f fn body) }
      | g -> g)
    prog

(* ------------------------------------------------------------------ *)
(* Candidate edits *)

let drop_nth k l = List.filteri (fun i _ -> i <> k) l

let main_body prog =
  List.find_map
    (fun g -> match g with Ast.GFunc { Ast.f_name = "main"; f_body = Some b; _ } -> Some b | _ -> None)
    prog

let with_main_body body' prog =
  map_bodies (fun fn b -> if fn.Ast.f_name = "main" then body' else b) prog

(* all programs obtained by dropping one top-level statement of main *)
let drop_main_stmts prog =
  match main_body prog with
  | None -> []
  | Some body ->
    List.map (fun k -> with_main_body (drop_nth k body) prog) (Support.Util.range 0 (List.length body))

(* decrement a literal [<=] loop bound: one candidate per distinct bound *)
let shrink_bounds prog =
  let bounds = ref [] in
  let note v = if v >= 1 && not (List.mem v !bounds) then bounds := v :: !bounds in
  List.iter
    (fun g ->
      match g with
      | Ast.GFunc { Ast.f_body = Some body; _ } ->
        List.iter
          (Ast.fold_stmt
             ~stmt:(fun () s ->
               match s.Ast.sdesc with
               | Ast.SFor (_, Some { Ast.edesc = Ast.Binop (Ast.Le, _, { Ast.edesc = Ast.IntLit v; _ }); _ }, _, _) ->
                 note v
               | _ -> ())
             ~expr:(fun () _ -> ())
             ())
          body
      | _ -> ())
    prog;
  List.map
    (fun v ->
      let lower =
        Ast.map_stmt (fun s ->
            match s.Ast.sdesc with
            | Ast.SFor
                (i, Some ({ Ast.edesc = Ast.Binop (Ast.Le, lhs, ({ Ast.edesc = Ast.IntLit v'; _ } as ub)); _ } as c), step, b)
              when v' = v ->
              {
                s with
                Ast.sdesc =
                  Ast.SFor (i, Some { c with Ast.edesc = Ast.Binop (Ast.Le, lhs, { ub with Ast.edesc = Ast.IntLit (v - 1) }) }, step, b);
              }
            | _ -> s)
      in
      map_bodies (fun _ body -> List.map lower body) prog)
    !bounds

let pure_fn_names prog =
  List.filter_map
    (fun g -> match g with Ast.GFunc { Ast.f_pure = true; f_name; _ } -> Some f_name | _ -> None)
    prog

(* replace every call to one pure function by its first argument (or a
   literal), then drop pure definitions that became unreferenced *)
let inline_pure_calls prog =
  List.map
    (fun f ->
      let rewrite e =
        match e.Ast.edesc with
        | Ast.Call (g, args) when g = f -> (
          match args with a :: _ -> a | [] -> Ast.int_lit 1)
        | _ -> e
      in
      let prog' = map_bodies (fun _ body -> List.map (map_stmt_exprs rewrite) body) prog in
      let called =
        List.concat_map
          (fun g ->
            match g with
            | Ast.GFunc { Ast.f_body = Some body; _ } -> List.concat_map Ast.calls_in_stmt body
            | _ -> [])
          prog'
      in
      List.filter
        (fun g ->
          match g with
          | Ast.GFunc { Ast.f_pure = true; f_name; _ } -> List.mem f_name called
          | _ -> true)
        prog')
    (pure_fn_names prog)

(* drop one statement from one multi-statement inner block of main *)
let drop_inner_stmts prog =
  match main_body prog with
  | None -> []
  | Some body ->
    let count = ref 0 in
    List.iter
      (Ast.fold_stmt
         ~stmt:(fun () s ->
           match s.Ast.sdesc with
           | Ast.SBlock ss when List.length ss > 1 -> count := !count + List.length ss
           | _ -> ())
         ~expr:(fun () _ -> ())
         ())
      body;
    List.filter_map
      (fun target ->
        let seen = ref 0 in
        let hit = ref false in
        let edit =
          Ast.map_stmt (fun s ->
              match s.Ast.sdesc with
              | Ast.SBlock ss when List.length ss > 1 ->
                let ss' =
                  List.filter
                    (fun _ ->
                      let k = !seen in
                      incr seen;
                      if k = target then begin
                        hit := true;
                        false
                      end
                      else true)
                    ss
                in
                { s with Ast.sdesc = Ast.SBlock ss' }
              | _ -> s)
        in
        let body' = List.map edit body in
        if !hit then Some (with_main_body body' prog) else None)
      (Support.Util.range 0 !count)

(* drop one global array that no function body references *)
let drop_unused_globals prog =
  let referenced =
    List.concat_map
      (fun g ->
        match g with
        | Ast.GFunc { Ast.f_body = Some body; _ } ->
          List.concat_map
            (Ast.fold_stmt
               ~stmt:(fun acc _ -> acc)
               ~expr:(fun acc e -> match e.Ast.edesc with Ast.Ident x -> x :: acc | _ -> acc)
               [])
            body
        | _ -> [])
      prog
  in
  List.filter_map
    (fun g ->
      match g with
      | Ast.GVar { Ast.d_name; _ } when not (List.mem d_name referenced) ->
        Some (List.filter (fun g' -> g' != g) prog)
      | _ -> None)
    prog

let candidates prog =
  drop_main_stmts prog @ drop_unused_globals prog @ shrink_bounds prog @ inline_pure_calls prog
  @ drop_inner_stmts prog

(* ------------------------------------------------------------------ *)
(* Descent *)

let size prog = String.length (Ast_printer.program_to_string prog)

(** [minimize ~inject ~kind prog] greedily shrinks [prog] while the oracle
    keeps failing with a failure of [kind] (see {!Oracle.kind_tag}) and the
    sequential baseline still compiles.  Returns the smallest failing
    program found and the number of oracle evaluations spent. *)
let minimize ?(budget = default_budget) ?(racecheck = false) ~inject ~kind
    (prog : Ast.program) : Ast.program * int =
  let evals = ref 0 in
  let still_fails p =
    if !evals >= budget then false
    else begin
      incr evals;
      let report = Oracle.check ~inject ~racecheck (Ast_printer.program_to_string p) in
      List.exists (fun f -> Oracle.kind_tag f = kind) report.Oracle.r_failures
      && not
           (List.exists
              (fun f -> Oracle.kind_tag f = "compile-failure" && Oracle.failure_config f = "sequential")
              report.Oracle.r_failures)
    end
  in
  let rec descend current =
    if !evals >= budget then current
    else
      let better =
        List.find_opt (fun cand -> size cand < size current && still_fails cand) (candidates current)
      in
      match better with Some c -> descend c | None -> current
  in
  let result = descend prog in
  (result, !evals)
