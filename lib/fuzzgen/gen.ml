(** Seeded random generation of programs in purec's C subset.

    Every program is generated directly as a {!Cfront.Ast.program} and
    printed with {!Cfront.Ast_printer}, so it parses, typechecks and passes
    the purity verifier {e by construction}:

    - loops are canonical affine nests ([for (int i = lo; i <= hi; i++)])
      whose subscripts are iterators plus constant offsets, kept in bounds
      by sizing every array two larger than the hot range;
    - pure helper functions read only their parameters and locals, branch on
      data-dependent conditions, and call only earlier pure functions;
    - the §3.4 rule (an array passed to a pure call must not be assigned in
      the same nest) is enforced when statements are built: per nest the
      written arrays are chosen first and call arguments may only read the
      others.

    Programs end with per-array weighted checksums printed at full
    precision ([%.17g]), so any reordering of a dependence-carrying nest —
    the miscompile the differential oracle must catch — changes the
    output. *)

open Cfront
open Support

(* ------------------------------------------------------------------ *)
(* AST shorthands *)

let e = Ast.mk_expr

let st = Ast.mk_stmt

let ilit n = Ast.int_lit n

let flit v = e (Ast.FloatLit (v, false))

let id x = Ast.ident x

let bin op a b = e (Ast.Binop (op, a, b))

let badd a b = bin Ast.Add a b

let bsub a b = bin Ast.Sub a b

let bmul a b = bin Ast.Mul a b

let bmod a b = bin Ast.Mod a b

let call f args = e (Ast.Call (f, args))

let idx a i = e (Ast.Index (a, i))

let idx1 a i = idx (id a) i

let idx2 a i j = idx (idx (id a) i) j

let assign lhs rhs = st (Ast.SExpr (e (Ast.Assign (Ast.OpAssign, lhs, rhs))))

let sexpr x = st (Ast.SExpr x)

let sdecl ty name init =
  st (Ast.SDecl { Ast.d_type = ty; d_name = name; d_storage = Ast.Auto; d_init = init; d_loc = Loc.dummy })

let sreturn x = st (Ast.SReturn (Some x))

let block ss = st (Ast.SBlock ss)

(** Canonical affine loop with an expression upper bound:
    [for (int v = lo; v <= hi; v++) { body }].  Triangular domains pass an
    outer iterator as [hi]. *)
let sfor_ub v lo hi body =
  st
    (Ast.SFor
       ( Some
           (Ast.FInitDecl
              { Ast.d_type = Ast.Int; d_name = v; d_storage = Ast.Auto; d_init = Some (ilit lo); d_loc = Loc.dummy }),
         Some (bin Ast.Le (id v) hi),
         Some (e (Ast.IncDec { pre = false; inc = true; arg = id v })),
         block body ))

(** Canonical affine loop: [for (int v = lo; v <= hi; v++) { body }]. *)
let sfor v lo hi body = sfor_ub v lo (ilit hi) body

(* iterator plus a constant offset, printed as [i], [i + 1] or [i - 1] *)
let off iter o =
  if o = 0 then id iter else if o > 0 then badd (id iter) (ilit o) else bsub (id iter) (ilit (-o))

(* ------------------------------------------------------------------ *)
(* Program shape *)

type elt = D | I

type arr = {
  a_name : string;
  a_rank : int;  (** 1 or 2 *)
  a_elt : elt;
  a_dim : int;  (** extent of every dimension *)
  a_heap : bool;  (** malloc'd [double**] rather than a global *)
}

type pfn = { p_name : string; p_params : elt list }

type program_info = {
  pi_prog : Ast.program;
  pi_n : int;  (** hot loops run over [1, n] *)
  pi_arrays : arr list;
}

let dbl_pool = [ 0.25; 0.5; 1.5; 2.0; 0.125; 1.25; 0.1; 1.3; 2.7; 0.3 ]

let divisor_pool = [ 3; 5; 7; 11; 13 ]

(* ------------------------------------------------------------------ *)
(* Expressions inside pure function bodies (parameters and locals only) *)

let rec gen_dexpr rng ~vars ~fns ~depth =
  let leaf () =
    if vars <> [] && Rng.int rng 3 > 0 then id (Rng.choose rng vars)
    else flit (Rng.choose rng dbl_pool)
  in
  if depth <= 0 then leaf ()
  else
    match Rng.int rng 5 with
    | 0 | 1 ->
      let op = Rng.choose rng [ Ast.Add; Ast.Sub; Ast.Add; Ast.Mul ] in
      bin op (gen_dexpr rng ~vars ~fns ~depth:(depth - 1)) (gen_dexpr rng ~vars ~fns ~depth:(depth - 1))
    | 2 when fns <> [] ->
      let f = Rng.choose rng fns in
      call f.p_name (List.map (fun _ -> gen_dexpr rng ~vars ~fns:[] ~depth:0) f.p_params)
    | _ -> leaf ()

let rec gen_iexpr rng ~vars ~depth =
  let leaf () =
    if vars <> [] && Rng.int rng 3 > 0 then id (Rng.choose rng vars) else ilit (1 + Rng.int rng 9)
  in
  if depth <= 0 then leaf ()
  else
    match Rng.int rng 4 with
    | 0 | 1 ->
      let op = Rng.choose rng [ Ast.Add; Ast.Sub; Ast.Mul ] in
      bin op (gen_iexpr rng ~vars ~depth:(depth - 1)) (gen_iexpr rng ~vars ~depth:(depth - 1))
    | 2 -> bmod (gen_iexpr rng ~vars ~depth:(depth - 1)) (ilit (Rng.choose rng divisor_pool))
    | _ -> leaf ()

(* ------------------------------------------------------------------ *)
(* Pure helper functions *)

let mk_func ~pure ~ret ~params ~body name =
  Ast.GFunc
    {
      Ast.f_name = name;
      f_ret = ret;
      f_pure = pure;
      f_static = false;
      f_params =
        List.map (fun (ty, p) -> { Ast.p_type = ty; p_name = p; p_loc = Loc.dummy }) params;
      f_body = Some body;
      f_loc = Loc.dummy;
    }

(* [pure double fillf(int i, int j)]: the affine-ish seeding function every
   initialization nest uses; bounded, deterministic, index-dependent *)
let gen_fillf rng =
  let a = 1 + Rng.int rng 7 and b = 1 + Rng.int rng 7 in
  let m = Rng.choose rng divisor_pool in
  let s = Rng.choose rng dbl_pool and t = Rng.choose rng dbl_pool in
  let body =
    [ sreturn (badd (bmul (bmod (badd (bmul (id "i") (ilit a)) (bmul (id "j") (ilit b))) (ilit m)) (flit s)) (flit t)) ]
  in
  mk_func ~pure:true ~ret:Ast.Double ~params:[ (Ast.Int, "i"); (Ast.Int, "j") ] ~body "fillf"

let gen_filli rng =
  let a = 1 + Rng.int rng 7 and b = 1 + Rng.int rng 7 in
  let m = Rng.choose rng divisor_pool in
  let c = 1 + Rng.int rng 4 in
  let body =
    [ sreturn (badd (bmod (badd (bmul (id "i") (ilit a)) (bmul (id "j") (ilit b))) (ilit m)) (ilit c)) ]
  in
  mk_func ~pure:true ~ret:Ast.Int ~params:[ (Ast.Int, "i"); (Ast.Int, "j") ] ~body "filli"

(* a double-valued pure function with data-dependent branching; may call
   earlier double pure functions *)
let gen_dfn rng ~callable name =
  let vars = [ "x"; "y" ] in
  let body = ref [ sdecl Ast.Double "r" (Some (gen_dexpr rng ~vars ~fns:callable ~depth:2)) ] in
  let cond =
    bin (Rng.choose rng [ Ast.Lt; Ast.Gt; Ast.Le; Ast.Ge ]) (id (Rng.choose rng vars)) (flit (Rng.choose rng dbl_pool))
  in
  let vars' = "r" :: vars in
  let then_b = block [ assign (id "r") (gen_dexpr rng ~vars:vars' ~fns:callable ~depth:1) ] in
  let else_b =
    if Rng.int rng 2 = 0 then Some (block [ assign (id "r") (gen_dexpr rng ~vars:vars' ~fns:[] ~depth:1) ])
    else None
  in
  body := !body @ [ st (Ast.SIf (cond, then_b, else_b)) ];
  let final =
    match Rng.int rng 3 with
    | 0 -> badd (id "r") (flit (Rng.choose rng dbl_pool))
    | 1 -> bmul (id "r") (flit (Rng.choose rng dbl_pool))
    | _ -> id "r"
  in
  body := !body @ [ sreturn final ];
  mk_func ~pure:true ~ret:Ast.Double ~params:[ (Ast.Double, "x"); (Ast.Double, "y") ] ~body:!body name

(* an int-valued pure function with a data-dependent branch *)
let gen_ifn rng name =
  let vars = [ "a"; "b" ] in
  let body = ref [ sdecl Ast.Int "r" (Some (gen_iexpr rng ~vars ~depth:2)) ] in
  let cond = bin (Rng.choose rng [ Ast.Lt; Ast.Gt ]) (bmod (id "r") (ilit (Rng.choose rng divisor_pool))) (ilit (Rng.int rng 3)) in
  body := !body @ [ st (Ast.SIf (cond, block [ assign (id "r") (gen_iexpr rng ~vars:("r" :: vars) ~depth:1) ], None)) ];
  body := !body @ [ sreturn (id "r") ];
  mk_func ~pure:true ~ret:Ast.Int ~params:[ (Ast.Int, "a"); (Ast.Int, "b") ] ~body:!body name

(* ------------------------------------------------------------------ *)
(* Statement generation inside [main] *)

(* a read of [a] using the iterators in scope (offsets keep subscripts in
   [0, dim-1] as long as iterators range over [1, n] and dim = n + 2) *)
let gen_read rng ~iters ~n (a : arr) =
  let o () = Rng.int rng 3 - 1 in
  let const () = ilit (1 + Rng.int rng n) in
  let sub () =
    match iters with
    | [] -> const ()
    | _ -> if Rng.int rng 4 = 0 then const () else off (Rng.choose rng iters) (o ())
  in
  if a.a_rank = 1 then idx1 a.a_name (sub ()) else idx2 a.a_name (sub ()) (sub ())

(* a double-valued argument for a pure call: reads only arrays outside
   [written] (the §3.4 rule), or iterator/literal scalars *)
let gen_dbl_arg rng ~iters ~n ~readable =
  let darrs = List.filter (fun a -> a.a_elt = D) readable in
  match Rng.int rng 3 with
  | 0 when darrs <> [] -> gen_read rng ~iters ~n (Rng.choose rng darrs)
  | 1 when iters <> [] -> bmul (id (Rng.choose rng iters)) (flit (Rng.choose rng dbl_pool))
  | _ -> flit (Rng.choose rng dbl_pool)

let gen_int_arg rng ~iters =
  match iters with
  | [] -> ilit (Rng.int rng 4)
  | _ -> (
    let i = Rng.choose rng iters in
    match Rng.int rng 3 with
    | 0 -> id i
    | 1 -> badd (id i) (ilit (1 + Rng.int rng 2))
    | _ -> ilit (Rng.int rng 4))

(* one double-valued term of a compute statement's right-hand side *)
let gen_dbl_term rng ~iters ~n ~arrays ~readable ~dfns ~target =
  let darrs = List.filter (fun a -> a.a_elt = D) arrays in
  match Rng.int rng 6 with
  | 0 when dfns <> [] ->
    let f : pfn = Rng.choose rng dfns in
    call f.p_name (List.map (fun _ -> gen_dbl_arg rng ~iters ~n ~readable) f.p_params)
  | 1 -> call "fillf" [ gen_int_arg rng ~iters; gen_int_arg rng ~iters ]
  | 2 | 3 when darrs <> [] -> gen_read rng ~iters ~n (Rng.choose rng darrs)
  | 4 when iters <> [] -> bmul (id (Rng.choose rng iters)) (flit (Rng.choose rng dbl_pool))
  | _ ->
    (* a deliberate cross-sign stencil read of the written array: the
       dependence that makes illegal interchange visible in the output *)
    (match (target : arr option) with
    | Some a when a.a_rank = 2 && List.length iters = 2 ->
      let i1 = List.nth iters 0 and i2 = List.nth iters 1 in
      if Rng.int rng 2 = 0 then idx2 a.a_name (off i1 (-1)) (off i2 1) else idx2 a.a_name (off i1 1) (off i2 (-1))
    | _ -> flit (Rng.choose rng dbl_pool))

let gen_int_term rng ~iters ~n ~arrays ~readable =
  let iarrs = List.filter (fun a -> a.a_elt = I) arrays in
  let readable_i = List.filter (fun a -> a.a_elt = I) readable in
  match Rng.int rng 4 with
  | 0 when readable_i <> [] ->
    let a : arr = Rng.choose rng readable_i in
    call "filli" [ gen_int_arg rng ~iters; gen_int_arg rng ~iters ]
    |> fun c -> badd c (gen_read rng ~iters ~n a)
  | 1 when iarrs <> [] -> gen_read rng ~iters ~n (Rng.choose rng iarrs)
  | 2 -> call "filli" [ gen_int_arg rng ~iters; gen_int_arg rng ~iters ]
  | _ -> gen_iexpr rng ~vars:iters ~depth:1

(* left-hand side of a compute assignment to [a] under [iters] *)
let gen_lhs rng ~iters ~n (a : arr) =
  let o () = match Rng.int rng 5 with 0 -> -1 | 1 -> 1 | _ -> 0 in
  let const () = ilit (1 + Rng.int rng n) in
  let sub k =
    match iters with
    | [] -> const ()
    | [ i ] -> if k = 0 || Rng.int rng 2 = 0 then off i (o ()) else const ()
    | _ -> off (List.nth iters (min k (List.length iters - 1))) (o ())
  in
  if a.a_rank = 1 then
    idx1 a.a_name (match iters with [] -> const () | l -> off (Rng.choose rng l) (o ()))
  else idx2 a.a_name (sub 0) (sub 1)

(* the statements of one compute nest: pick the written arrays first, then
   build the statements so pure-call arguments only read the rest (§3.4) *)
let gen_nest_body rng ~iters ~n ~arrays ~dfns =
  let nstmts = 1 + Rng.int rng 2 in
  let targets = List.init nstmts (fun _ -> (Rng.choose rng arrays : arr)) in
  let written = List.sort_uniq compare (List.map (fun a -> a.a_name) targets) in
  let readable = List.filter (fun a -> not (List.mem a.a_name written)) arrays in
  let stmt_of (tgt : arr) =
    let lhs = gen_lhs rng ~iters ~n tgt in
    let rhs =
      match tgt.a_elt with
      | I ->
        let t1 = gen_int_term rng ~iters ~n ~arrays ~readable in
        if Rng.int rng 2 = 0 then t1
        else bin (Rng.choose rng [ Ast.Add; Ast.Sub ]) t1 (gen_int_term rng ~iters ~n ~arrays ~readable)
      | D ->
        let term () = gen_dbl_term rng ~iters ~n ~arrays ~readable ~dfns ~target:(Some tgt) in
        let t1 = term () in
        (match Rng.int rng 3 with
        | 0 -> t1
        | 1 -> bin (Rng.choose rng [ Ast.Add; Ast.Sub ]) t1 (term ())
        | _ -> badd (bmul t1 (flit (Rng.choose rng dbl_pool))) (term ()))
    in
    assign lhs rhs
  in
  List.map stmt_of targets

(* one full rectangular compute nest *)
let gen_compute_nest rng ~n ~arrays ~dfns =
  let depth = 1 + Rng.int rng 2 in
  let iters = if depth = 1 then [ "i" ] else [ "i"; "j" ] in
  let body = gen_nest_body rng ~iters ~n ~arrays ~dfns in
  match iters with
  | [ i ] -> sfor i 1 n body
  | [ i; j ] -> sfor i 1 n [ sfor j 1 n body ]
  | _ -> assert false

(* a triangular-domain nest: [for (i = 1..n) for (j = 1..i)].  The inner
   bound is an outer iterator — affine, so the polyhedral stages must model
   the non-rectangular domain exactly; subscripts stay in bounds because
   j <= i <= n *)
let gen_triangular_nest rng ~n ~arrays ~dfns =
  let body = gen_nest_body rng ~iters:[ "i"; "j" ] ~n ~arrays ~dfns in
  sfor "i" 1 n [ sfor_ub "j" 1 (id "i") body ]

(* CSR-style gather: [w[i] += A[i][col[k]] * weight].  The indirect
   subscript is deliberately not affine, so static dependence analysis
   fails — with the inspector on, the nest is runtime-checked instead of
   rejected (the write w[i] is affine, so the check is vacuous and the
   loop parallelizes); with the inspector off it is rejected and runs
   sequentially everywhere.  [col] is populated with an affine congruence
   whose values stay in [1, n], so every gather is in bounds by
   construction. *)
let gen_csr_nest rng ~n ~dim (matrix : arr) =
  let col = { a_name = "col"; a_rank = 1; a_elt = I; a_dim = dim; a_heap = false } in
  let w = { a_name = "w"; a_rank = 1; a_elt = D; a_dim = dim; a_heap = false } in
  let ca = 1 + Rng.int rng 7 and cb = Rng.int rng 8 in
  let col_init =
    sfor "k" 0 (dim - 1)
      [
        assign (idx1 col.a_name (id "k"))
          (badd (bmod (badd (bmul (id "k") (ilit ca)) (ilit cb)) (ilit n)) (ilit 1));
      ]
  in
  let gather =
    sfor "i" 1 n
      [
        sfor "k" 1 n
          [
            assign (idx1 w.a_name (id "i"))
              (badd (idx1 w.a_name (id "i"))
                 (bmul
                    (idx2 matrix.a_name (id "i") (idx1 col.a_name (id "k")))
                    (flit (Rng.choose rng dbl_pool))));
          ];
      ]
  in
  ([ col; w ], col_init, gather)

(* ------------------------------------------------------------------ *)
(* Fixed program segments *)

let init_nest rng ~dim (a : arr) =
  let rhs_for iters =
    match (a.a_elt, Rng.int rng 3) with
    | I, 0 -> gen_iexpr rng ~vars:iters ~depth:1
    | I, _ -> call "filli" (List.map (fun v -> id v) (if List.length iters = 2 then iters else iters @ [ "i" ]))
    | D, 0 -> gen_dexpr rng ~vars:[] ~fns:[] ~depth:1
    | D, _ ->
      let args = match iters with [ i ] -> [ id i; ilit (Rng.int rng 3) ] | l -> List.map id l in
      let c = call "fillf" args in
      if Rng.int rng 2 = 0 then c else bmul c (flit (Rng.choose rng dbl_pool))
  in
  if a.a_rank = 1 then sfor "i" 0 (dim - 1) [ assign (idx1 a.a_name (id "i")) (rhs_for [ "i" ]) ]
  else
    sfor "i" 0 (dim - 1)
      [ sfor "j" 0 (dim - 1) [ assign (idx2 a.a_name (id "i") (id "j")) (rhs_for [ "i"; "j" ]) ] ]

(* weighted checksum of [a], printed at full precision: makes every cell's
   final value (and, transitively, every nest's iteration order along its
   dependences) observable in the output *)
let checksum_segment k (a : arr) =
  let acc = Printf.sprintf "s%d" k in
  let dim = a.a_dim in
  let weight iters =
    let wexpr =
      match iters with
      | [ i ] -> bmod (bmul (id i) (ilit 3)) (ilit 7)
      | [ i; j ] -> bmod (badd (bmul (id i) (ilit 3)) (bmul (id j) (ilit 5))) (ilit 7)
      | _ -> assert false
    in
    badd wexpr (ilit 1)
  in
  let elem iters =
    match iters with [ i ] -> idx1 a.a_name (id i) | [ i; j ] -> idx2 a.a_name (id i) (id j) | _ -> assert false
  in
  let body iters =
    match a.a_elt with
    | D -> assign (id acc) (badd (id acc) (bmul (elem iters) (weight iters)))
    | I -> assign (id acc) (badd (id acc) (bmul (elem iters) (weight iters)))
  in
  let nest =
    if a.a_rank = 1 then sfor "i" 0 (dim - 1) [ body [ "i" ] ]
    else sfor "i" 0 (dim - 1) [ sfor "j" 0 (dim - 1) [ body [ "i"; "j" ] ] ]
  in
  let ty, fmt = match a.a_elt with D -> (Ast.Double, "%.17g") | I -> (Ast.Int, "%d") in
  let init = match a.a_elt with D -> flit 0.0 | I -> ilit 0 in
  [
    sdecl ty acc (Some init);
    nest;
    sexpr (call "printf" [ e (Ast.StrLit (Printf.sprintf "%s %s\n" a.a_name fmt)); id acc ]);
  ]

let malloc_segment ~dim name =
  let dptr = Ast.ptr Ast.Double in
  let dptr2 = Ast.ptr dptr in
  [
    sdecl dptr2 name
      (Some (e (Ast.Cast (dptr2, call "malloc" [ bmul (ilit dim) (e (Ast.SizeofType dptr)) ]))));
    sfor "i" 0 (dim - 1)
      [
        assign (idx1 name (id "i"))
          (e (Ast.Cast (dptr, call "malloc" [ bmul (ilit dim) (e (Ast.SizeofType Ast.Double)) ])));
      ];
  ]

let free_segment ~dim name =
  [ sfor "i" 0 (dim - 1) [ sexpr (call "free" [ idx1 name (id "i") ]) ]; sexpr (call "free" [ id name ]) ]

(* ------------------------------------------------------------------ *)
(* Whole programs *)

let global_array (a : arr) =
  let base = match a.a_elt with D -> Ast.Double | I -> Ast.Int in
  let ty =
    if a.a_rank = 1 then Ast.Array (base, Some a.a_dim)
    else Ast.Array (Ast.Array (base, Some a.a_dim), Some a.a_dim)
  in
  Ast.GVar { Ast.d_type = ty; d_name = a.a_name; d_storage = Ast.Auto; d_init = None; d_loc = Loc.dummy }

(** Generate one random program (with its shape metadata) from [rng]. *)
let program_info rng : program_info =
  let n = 3 + Rng.int rng 4 in
  let dim = n + 2 in
  let mk name rank elt = { a_name = name; a_rank = rank; a_elt = elt; a_dim = dim; a_heap = false } in
  let d2 = Util.take (1 + Rng.int rng 3) [ mk "A" 2 D; mk "B" 2 D; mk "C" 2 D ] in
  let d1 = Util.take (Rng.int rng 3) [ mk "u" 1 D; mk "v" 1 D ] in
  let i1 = Util.take (Rng.int rng 3) [ mk "p" 1 I; mk "q" 1 I ] in
  let heap =
    if Rng.int rng 10 < 4 then [ { (mk "M" 2 D) with a_heap = true } ] else []
  in
  let globals_arrs = d2 @ d1 @ i1 in
  let arrays = globals_arrs @ heap in
  (* pure helpers: the fill functions plus 1-2 branching double functions
     and an optional int one *)
  let fillf = gen_fillf rng and filli = gen_filli rng in
  let ndfn = 1 + Rng.int rng 2 in
  let dfns, dfn_globals =
    List.fold_left
      (fun (fns, gs) k ->
        let name = Printf.sprintf "fd%d" k in
        let g = gen_dfn rng ~callable:fns name in
        (fns @ [ { p_name = name; p_params = [ D; D ] } ], gs @ [ g ]))
      ([], []) (Util.range 0 ndfn)
  in
  let ifn_globals = if Rng.int rng 2 = 0 then [ gen_ifn rng "gi0" ] else [] in
  (* main *)
  let main_body = ref [] in
  let push ss = main_body := !main_body @ ss in
  List.iter (fun (a : arr) -> if a.a_heap then push (malloc_segment ~dim a.a_name)) arrays;
  List.iter (fun a -> push [ init_nest rng ~dim a ]) arrays;
  if Rng.int rng 3 = 0 then begin
    let a = List.hd d2 in
    push [ sexpr (call "printf" [ e (Ast.StrLit (Printf.sprintf "mid %s %%.17g\n" a.a_name)); idx2 a.a_name (ilit 1) (ilit 1) ]) ]
  end;
  let nnests = 1 + Rng.int rng 3 in
  for _ = 1 to nnests do
    (* one nest in four is triangular; the rest are rectangular *)
    let nest =
      if Rng.int rng 4 = 0 then gen_triangular_nest rng ~n ~arrays ~dfns
      else gen_compute_nest rng ~n ~arrays ~dfns
    in
    push [ nest ]
  done;
  (* one program in three carries a CSR-style gather with its own [col]/[w]
     arrays (kept out of [arrays] so no other nest can clobber the indices
     the gather relies on for bounds) *)
  let csr_arrays =
    if Rng.int rng 3 = 0 then begin
      let extra, col_init, gather = gen_csr_nest rng ~n ~dim (List.hd d2) in
      let w = List.find (fun (a : arr) -> a.a_elt = D) extra in
      push [ init_nest rng ~dim w ];
      push [ col_init; gather ];
      extra
    end
    else []
  in
  if Rng.int rng 2 = 0 then begin
    (* a scalar reduction nest over the double arrays *)
    let acc = "acc0" in
    let readable = arrays in
    let term () = gen_dbl_term rng ~iters:[ "i"; "j" ] ~n ~arrays ~readable ~dfns ~target:None in
    push
      [
        sdecl Ast.Double acc (Some (flit 0.0));
        sfor "i" 1 n [ sfor "j" 1 n [ assign (id acc) (badd (id acc) (term ())) ] ];
        sexpr (call "printf" [ e (Ast.StrLit "acc %.17g\n"); id acc ]);
      ]
  end;
  (* one program in two carries a tileable rectangular 2-D nest: a
     dedicated array [T] written along a (1,0) flow dependence from its own
     previous row plus a stencil read of another array — the band-of-two
     shape the tiling config blocks into tiles, so tile-granular dispatch
     and its nested-trace racecheck replay see fuzzed workloads too.
     Drawn after every other rng decision, so the program prefix of every
     pre-existing seed is unchanged. *)
  let tile_arrays =
    if Rng.int rng 2 = 0 then begin
      let t = { a_name = "T"; a_rank = 2; a_elt = D; a_dim = dim; a_heap = false } in
      push [ init_nest rng ~dim t ];
      let darrs = List.filter (fun (a : arr) -> a.a_elt = D && a.a_rank = 2 && not a.a_heap) arrays in
      let stencil =
        match darrs with
        | [] -> flit (Rng.choose rng dbl_pool)
        | _ ->
          let s : arr = Rng.choose rng darrs in
          let o = Rng.int rng 2 in
          idx2 s.a_name (off "i" o) (off "j" (-o))
      in
      let body =
        assign (idx2 "T" (id "i") (id "j"))
          (badd (bmul (idx2 "T" (off "i" (-1)) (id "j")) (flit (Rng.choose rng dbl_pool))) stencil)
      in
      push [ sfor "i" 1 n [ sfor "j" 1 n [ body ] ] ];
      [ t ]
    end
    else []
  in
  List.iteri (fun k a -> push (checksum_segment k a)) (arrays @ csr_arrays @ tile_arrays);
  (* one program in two carries a pragma'd scalar reduction loop, and one
     in two a critical/atomic-guarded shared-counter update: the
     reduction(op:name) recognition with its per-chunk merge and the
     lock-event channel of the race engines see fuzzed workloads too.
     Both shapes are drawn after every other rng decision (including the
     tile nest) and pushed after the checksum segments, so the full text
     of every pre-existing seed survives as a prefix. *)
  if Rng.int rng 2 = 0 then begin
    let acc = "r0" in
    let op_max = Rng.int rng 2 = 0 in
    let term = gen_dbl_term rng ~iters:[ "i" ] ~n ~arrays ~readable:arrays ~dfns ~target:None in
    let update =
      if op_max then assign (id acc) (call "fmax" [ id acc; term ])
      else st (Ast.SExpr (e (Ast.Assign (Ast.OpAddAssign, id acc, term))))
    in
    let clause = if op_max then "max" else "+" in
    push
      [
        sdecl Ast.Double acc (Some (flit 0.0));
        st (Ast.SPragma (Printf.sprintf "omp parallel for reduction(%s:%s)" clause acc));
        sfor "i" 1 n [ update ];
        sexpr (call "printf" [ e (Ast.StrLit "red %.17g\n"); id acc ]);
      ]
  end;
  let crit_globals =
    if Rng.int rng 2 = 0 then begin
      let g = "g0" in
      let pragma =
        match Rng.int rng 3 with
        | 0 -> "omp critical"
        | 1 -> "omp critical(fuzz_lock)"
        | _ -> "omp atomic"
      in
      let k = ilit (1 + Rng.int rng 7) in
      push
        [
          assign (id g) (ilit 0);
          st (Ast.SPragma "omp parallel for");
          sfor "i" 1 n
            [
              st (Ast.SPragma pragma);
              st (Ast.SExpr (e (Ast.Assign (Ast.OpAddAssign, id g, call "filli" [ id "i"; k ]))));
            ];
          sexpr (call "printf" [ e (Ast.StrLit "crit %d\n"); id g ]);
        ];
      [ Ast.GVar { Ast.d_type = Ast.Int; d_name = g; d_storage = Ast.Auto; d_init = None; d_loc = Loc.dummy } ]
    end
    else []
  in
  (* One program in two carries a skewed triangular-bound pragma'd loop:
     outer iteration i updates S's row i over columns [1, i], so the work
     per iteration grows linearly — the load-imbalance shape the
     work-stealing scheduler exists for.  The pragma's schedule clause is
     drawn from the full matrix (including guided), so clause parsing, the
     guided grant plan and the stealing dispatch all see fuzzed workloads.
     Iteration i touches only row i (the term reads other arrays), so the
     loop is race-free by construction and must stay oracle-clean.  Drawn
     after every other rng decision — including the reduction and critical
     shapes — so the full text of every pre-existing seed survives as a
     prefix. *)
  let skew_arrays =
    if Rng.int rng 2 = 0 then begin
      let s2 = { a_name = "S"; a_rank = 2; a_elt = D; a_dim = dim; a_heap = false } in
      push [ init_nest rng ~dim s2 ];
      let clause =
        match Rng.int rng 5 with
        | 0 -> ""
        | 1 -> " schedule(static,2)"
        | 2 -> " schedule(dynamic,1)"
        | 3 -> " schedule(guided,1)"
        | _ -> " schedule(guided,2)"
      in
      let term = gen_dbl_term rng ~iters:[ "i"; "j" ] ~n ~arrays ~readable:arrays ~dfns ~target:None in
      push
        [
          st (Ast.SPragma (Printf.sprintf "omp parallel for%s" clause));
          sfor "i" 1 n
            [
              sfor_ub "j" 1 (id "i")
                [
                  assign (idx2 "S" (id "i") (id "j"))
                    (badd
                       (bmul (idx2 "S" (id "i") (id "j")) (flit (Rng.choose rng dbl_pool)))
                       term);
                ];
            ];
        ];
      push (checksum_segment 77 s2);
      [ s2 ]
    end
    else []
  in
  (* One program in two carries an indirect-WRITE gather [G[gx[i]] += t]:
     the subscript through the index array [gx] defeats static dependence
     analysis, so the nest reaches the inspector/executor path.  [gx] is
     drawn as a rotation permutation (runtime-disjoint, parallelized), a
     duplicating congruence (runtime conflict, sequential fallback), or a
     data-dependent filli image (either verdict, seed-dependent) — so the
     differential oracle exercises both runtime verdicts across all its
     configurations.  The update term is call-free, keeping the compiled
     footprint probe applicable.  Drawn after every other rng decision, so
     the full text of every pre-existing seed survives as a prefix. *)
  let igather_arrays =
    if Rng.int rng 2 = 0 then begin
      let g = { a_name = "G"; a_rank = 1; a_elt = D; a_dim = dim; a_heap = false } in
      let gx = { a_name = "gx"; a_rank = 1; a_elt = I; a_dim = dim; a_heap = false } in
      push [ init_nest rng ~dim g ];
      let fill_rhs =
        match Rng.int rng 3 with
        | 0 ->
          (* rotation permutation: stride coprime with n, values in [1, n] *)
          let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
          let rec coprime a = if gcd a n = 1 then a else coprime (a - 1) in
          let a = coprime (1 + Rng.int rng (n - 1)) in
          let b = Rng.int rng n in
          badd (bmod (badd (bmul (id "k") (ilit a)) (ilit b)) (ilit n)) (ilit 1)
        | 1 ->
          (* duplicating congruence: n iterations land on n-1 cells *)
          badd (bmod (id "k") (ilit (n - 1))) (ilit 1)
        | _ ->
          (* data-dependent: the filli image folded into [1, n] *)
          badd (bmod (call "filli" [ id "k"; ilit (1 + Rng.int rng 5) ]) (ilit n)) (ilit 1)
      in
      push [ sfor "k" 0 (dim - 1) [ assign (idx1 "gx" (id "k")) fill_rhs ] ];
      let term =
        match List.filter (fun (a : arr) -> a.a_elt = D && not a.a_heap) arrays with
        | [] -> flit (Rng.choose rng dbl_pool)
        | darrs ->
          bmul (gen_read rng ~iters:[ "i" ] ~n (Rng.choose rng darrs)) (flit (Rng.choose rng dbl_pool))
      in
      push
        [
          sfor "i" 1 n
            [
              assign
                (idx1 "G" (idx1 "gx" (id "i")))
                (badd (idx1 "G" (idx1 "gx" (id "i"))) term);
            ];
        ];
      push (checksum_segment 88 g);
      push (checksum_segment 89 gx);
      [ g; gx ]
    end
    else []
  in
  List.iter (fun (a : arr) -> if a.a_heap then push (free_segment ~dim a.a_name)) arrays;
  push [ sreturn (ilit 0) ];
  let main =
    Ast.GFunc
      {
        Ast.f_name = "main";
        f_ret = Ast.Int;
        f_pure = false;
        f_static = false;
        f_params = [];
        f_body = Some !main_body;
        f_loc = Loc.dummy;
      }
  in
  let prog =
    [ Ast.GInclude ("<stdio.h>", Loc.dummy); Ast.GInclude ("<stdlib.h>", Loc.dummy) ]
    @ List.map global_array
        (globals_arrs @ csr_arrays @ tile_arrays @ skew_arrays @ igather_arrays)
    @ crit_globals
    @ [ fillf; filli ] @ dfn_globals @ ifn_globals @ [ main ]
  in
  {
    pi_prog = prog;
    pi_n = n;
    pi_arrays = arrays @ csr_arrays @ tile_arrays @ skew_arrays @ igather_arrays;
  }

(** Generate the program for [seed] and print it to C source text. *)
let program_of_seed seed : Ast.program =
  let rng = Rng.create seed in
  (program_info rng).pi_prog

let source_of_seed seed = Ast_printer.program_to_string (program_of_seed seed)
