(** Campaign driver: generate, cross-check, shrink, replay.

    Program [i] of a campaign uses seed [base + i], so any failure is
    replayable in isolation with [purec fuzz --seed (base+i) --count 1].
    Before the differential oracle runs, every generated program goes
    through a printer round-trip sanity check (print → parse → print must
    be a fixed point) — the pretty-printer is the transport between all
    source-to-source stages, so a round-trip bug would corrupt every
    comparison downstream. *)

open Cfront
open Support

type case_result = {
  c_seed : int;
  c_report : Oracle.report;
  c_source : string;  (** the program as generated *)
  c_shrunk : string option;  (** minimized reproducer, when the oracle failed *)
}

type campaign_result = {
  k_count : int;
  k_failed : case_result list;  (** only the failing cases *)
  k_configs : int;  (** configurations compared per program *)
}

exception Roundtrip_error of string

(* parse → print → parse → print must be a fixed point (the first parse
   drops [#include] lines, which only the full chain's PC-PrePro/PC-PosPro
   pair preserves, so the comparison starts at the first print) *)
let roundtrip_check source =
  let parse what src =
    try Parser.program_of_string src
    with Diag.Fatal d ->
      raise (Roundtrip_error (Printf.sprintf "%s does not parse: %s" what d.Diag.message))
  in
  let reparsed = parse "generated program" source in
  let printed = Ast_printer.program_to_string reparsed in
  let printed' = Ast_printer.program_to_string (parse "printed program" printed) in
  if printed' <> printed then
    raise (Roundtrip_error "pretty-printer round-trip is not a fixed point");
  reparsed

(** Generate and check the program of [seed]; shrink on failure.
    [racecheck] enables the happens-before replay as a second oracle
    stage (cf. {!Oracle.check}). *)
let run_one ?(inject = false) ?(racecheck = false) ?(shrink = true) seed : case_result =
  let prog = Gen.program_of_seed seed in
  let source = Ast_printer.program_to_string prog in
  let reparsed = roundtrip_check source in
  let report = Oracle.check ~inject ~racecheck source in
  let report = { report with Oracle.r_seed = Some seed } in
  let shrunk =
    match report.Oracle.r_failures with
    | [] -> None
    | f :: _ when shrink ->
      let minimized, _evals =
        Shrink.minimize ~inject ~racecheck ~kind:(Oracle.kind_tag f) reparsed
      in
      Some (Ast_printer.program_to_string minimized)
    | _ -> None
  in
  { c_seed = seed; c_report = report; c_source = source; c_shrunk = shrunk }

(** Run [count] programs starting at [seed].  [on_case] is called after
    each case (progress reporting).

    [jobs > 1] fans the cases across that many OCaml domains.  Each case is
    an independent generate→check→shrink pipeline keyed only by its seed
    (no shared mutable state below this function), so the fan-out is a
    dynamic self-scheduled loop over seed indices.  Results land in a
    per-case slot array; [on_case] and the failure list are then replayed
    in seed order after the join, so the campaign report — and anything
    printed from [on_case] — is bit-identical to a [jobs = 1] run. *)
let campaign ?(inject = false) ?(racecheck = false) ?(shrink = true)
    ?(on_case = fun _ -> ()) ?(jobs = 1) ~seed ~count () : campaign_result =
  let results : case_result option array = Array.make (max count 1) None in
  let fill i = results.(i) <- Some (run_one ~inject ~racecheck ~shrink (seed + i)) in
  if jobs <= 1 || count <= 1 then
    for i = 0 to count - 1 do
      fill i
    done
  else begin
    let pool = Runtime.Pool.create (min jobs count) in
    Fun.protect
      ~finally:(fun () -> Runtime.Pool.shutdown pool)
      (fun () ->
        Runtime.Par_loop.parallel_for pool
          ~schedule:(Runtime.Par_loop.Dynamic 1) ~lo:0 ~hi:count fill)
  end;
  let failed = ref [] in
  let configs = ref 0 in
  for i = 0 to count - 1 do
    match results.(i) with
    | None -> ()
    | Some case ->
      configs := case.c_report.Oracle.r_configs;
      if not (Oracle.passed case.c_report) then failed := case :: !failed;
      on_case case
  done;
  { k_count = count; k_failed = List.rev !failed; k_configs = !configs }

(** Process exit code for a finished campaign.  Precedence when one seed
    trips several oracle stages at once: a dynamic-race finding (a race, or
    the two race engines disagreeing — a detector bug, reported on the same
    channel) outranks every differential mismatch, because the race verdict
    explains the mismatch; any other failure is a fuzz mismatch. *)
let campaign_exit_code (r : campaign_result) : int =
  let failure_kinds =
    List.concat_map (fun c -> List.map Oracle.kind_tag c.c_report.Oracle.r_failures) r.k_failed
  in
  if List.exists (fun k -> k = "race-detected" || k = "engine-disagreement") failure_kinds
  then Toolchain.Chain.exit_race
  else if failure_kinds <> [] then Toolchain.Chain.exit_fuzz_mismatch
  else Toolchain.Chain.exit_ok
