(** A small domain pool: the execution substrate standing in for the OpenMP
    runtime when generated code is run for real (as opposed to being
    simulated by the {!Machine} model).

    The pool spawns [size - 1] worker domains once and supports two dispatch
    disciplines on the same worker set:

    - {!run}: fork/join — a batch of thunks is distributed and the caller
      helps until every one has finished ([#pragma omp parallel for]
      semantics).  Batches must not overlap.
    - {!submit}: streaming — one fire-and-forget job is enqueued and picked
      up by whichever worker is free; {!quiesce} waits for the queue to
      drain.  This is the serve daemon's discipline: one long-lived pool
      multiplexes many independent requests instead of paying domain-spawn
      cost per request.

    The two disciplines share the queue but must not be interleaved (a
    concurrent [run] would join on streaming jobs too); the serve daemon
    uses [submit]/[quiesce] exclusively. *)

type job = unit -> unit

type t = {
  size : int;
  queue : job Queue.t;
  mutex : Mutex.t;
  work_available : Condition.t;
  work_done : Condition.t;
  mutable outstanding : int;
  mutable failure : exn option;
      (** first exception a job of the current batch raised; re-raised at the
          join point in {!run}.  Streaming jobs ({!submit}) must catch their
          own exceptions — anything recorded here from a streamed job is
          cleared at the next batch, never re-raised to anyone, so a serve
          request that crashes can only fail its own client *)
  mutable shutdown : bool;
  mutable domains : unit Domain.t list;
  batches : int Atomic.t;
      (** dispatches observed by the pool: fork/join batches through {!run}
          (single-job batches included) plus streamed jobs through
          {!submit}; lets callers observe that work really reached the
          pool.  Atomic because streaming submits race with readers. *)
}

(* Record the first failing job of the batch; later failures are dropped
   (fork/join semantics: one crash fails the whole region). *)
let record_failure pool exn =
  Mutex.lock pool.mutex;
  if pool.failure = None then pool.failure <- Some exn;
  Mutex.unlock pool.mutex

let worker pool () =
  let rec loop () =
    Mutex.lock pool.mutex;
    while Queue.is_empty pool.queue && not pool.shutdown do
      Condition.wait pool.work_available pool.mutex
    done;
    if pool.shutdown && Queue.is_empty pool.queue then begin
      Mutex.unlock pool.mutex;
      ()
    end
    else begin
      let job = Queue.pop pool.queue in
      Mutex.unlock pool.mutex;
      (try job () with exn -> record_failure pool exn);
      Mutex.lock pool.mutex;
      pool.outstanding <- pool.outstanding - 1;
      if pool.outstanding = 0 then Condition.broadcast pool.work_done;
      Mutex.unlock pool.mutex;
      loop ()
    end
  in
  loop ()

(** Create a pool that runs jobs on [size] execution streams ([size - 1]
    worker domains plus the caller). *)
let create size =
  let size = max 1 size in
  let pool =
    {
      size;
      queue = Queue.create ();
      mutex = Mutex.create ();
      work_available = Condition.create ();
      work_done = Condition.create ();
      outstanding = 0;
      failure = None;
      shutdown = false;
      domains = [];
      batches = Atomic.make 0;
    }
  in
  let workers = max 0 (min (size - 1) (Domain.recommended_domain_count () * 4)) in
  pool.domains <- List.init workers (fun _ -> Domain.spawn (worker pool));
  pool

(** Run all jobs, returning when every one has finished.  The caller also
    executes jobs, so a pool of size 1 degenerates to a plain loop.  If any
    job raised, the first such exception is re-raised here at the join point
    (after every job of the batch has completed, so the pool stays
    reusable).  Batches must not overlap: [run] is fork/join, called from
    one domain at a time, and must not be interleaved with {!submit}. *)
let run pool (jobs : job list) =
  match jobs with
  | [] -> ()
  | [ j ] ->
    Atomic.incr pool.batches;
    j ()
  | jobs ->
    Atomic.incr pool.batches;
    Mutex.lock pool.mutex;
    pool.failure <- None;
    List.iter (fun j -> Queue.push j pool.queue) jobs;
    pool.outstanding <- pool.outstanding + List.length jobs;
    Condition.broadcast pool.work_available;
    Mutex.unlock pool.mutex;
    (* the caller helps *)
    let rec help () =
      Mutex.lock pool.mutex;
      if Queue.is_empty pool.queue then begin
        while pool.outstanding > 0 do
          Condition.wait pool.work_done pool.mutex
        done;
        Mutex.unlock pool.mutex
      end
      else begin
        let job = Queue.pop pool.queue in
        Mutex.unlock pool.mutex;
        (try job () with exn -> record_failure pool exn);
        Mutex.lock pool.mutex;
        pool.outstanding <- pool.outstanding - 1;
        if pool.outstanding = 0 then Condition.broadcast pool.work_done;
        Mutex.unlock pool.mutex;
        help ()
      end
    in
    help ();
    match pool.failure with
    | Some exn ->
      pool.failure <- None;
      raise exn
    | None -> ()

(** Enqueue one fire-and-forget job; whichever worker domain is free picks
    it up.  Unlike {!run} there is no join — pair with {!quiesce} to wait
    for the queue to drain.  The job must catch its own exceptions (a crash
    is recorded but never re-raised; see {!t.failure}).  Raises
    [Invalid_argument] after {!shutdown}: a torn-down pool silently
    dropping work would be indistinguishable from a hang. *)
let submit pool (job : job) =
  Mutex.lock pool.mutex;
  if pool.shutdown then begin
    Mutex.unlock pool.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Atomic.incr pool.batches;
  Queue.push job pool.queue;
  pool.outstanding <- pool.outstanding + 1;
  Condition.signal pool.work_available;
  Mutex.unlock pool.mutex

(** Wait until every queued and in-flight job (from {!submit}) has
    finished.  Safe to call repeatedly; returns immediately when the pool
    is idle. *)
let quiesce pool =
  Mutex.lock pool.mutex;
  while pool.outstanding > 0 do
    Condition.wait pool.work_done pool.mutex
  done;
  Mutex.unlock pool.mutex

(** Tear the pool down: wake every worker, join the domains.  Idempotent —
    a second call (or a shutdown racing a [Fun.protect] finalizer) is a
    no-op, so one pool can be guarded by several owners without
    double-join crashes. *)
let shutdown pool =
  Mutex.lock pool.mutex;
  if pool.shutdown then Mutex.unlock pool.mutex
  else begin
    pool.shutdown <- true;
    Condition.broadcast pool.work_available;
    Mutex.unlock pool.mutex;
    List.iter Domain.join pool.domains;
    pool.domains <- []
  end

let size pool = pool.size

(** Worker domains actually spawned ([size - 1], capped).  A pool with no
    workers executes {!run} batches caller-side only; streaming callers use
    this to fall back to inline execution (nobody would ever pop). *)
let workers pool = List.length pool.domains

(** Dispatches observed so far (see {!t.batches}): fork/join batches plus
    streamed jobs.  Safe to read concurrently. *)
let batches pool = Atomic.get pool.batches

(** Reset the {!batches} observability counter (e.g. between requests or
    test phases, so each can assert on the dispatches it alone caused).
    Does not affect queued or running work. *)
let reset_batches pool = Atomic.set pool.batches 0

(** Default worker count for [--jobs] flags: the [PUREC_JOBS] environment
    variable when set to a positive integer, otherwise
    [Domain.recommended_domain_count () - 1] (leave one core for the
    caller's bookkeeping), never less than 1. *)
let default_jobs () =
  let fallback = max 1 (Domain.recommended_domain_count () - 1) in
  match Sys.getenv_opt "PUREC_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> fallback)
  | None -> fallback
