(** A small domain pool: the execution substrate standing in for the OpenMP
    runtime when generated code is run for real (as opposed to being
    simulated by the {!Machine} model).

    The pool spawns [size - 1] worker domains once; [run] distributes a
    batch of thunks and waits for all of them (fork/join semantics of a
    [#pragma omp parallel for]). *)

type job = unit -> unit

type t = {
  size : int;
  queue : job Queue.t;
  mutex : Mutex.t;
  work_available : Condition.t;
  work_done : Condition.t;
  mutable outstanding : int;
  mutable failure : exn option;
      (** first exception a job of the current batch raised; re-raised at the
          join point in {!run} *)
  mutable shutdown : bool;
  mutable domains : unit Domain.t list;
  mutable batches : int;
      (** fork/join batches dispatched through {!run} (single-job batches
          included); lets callers observe that work really reached the pool *)
}

(* Record the first failing job of the batch; later failures are dropped
   (fork/join semantics: one crash fails the whole region). *)
let record_failure pool exn =
  Mutex.lock pool.mutex;
  if pool.failure = None then pool.failure <- Some exn;
  Mutex.unlock pool.mutex

let worker pool () =
  let rec loop () =
    Mutex.lock pool.mutex;
    while Queue.is_empty pool.queue && not pool.shutdown do
      Condition.wait pool.work_available pool.mutex
    done;
    if pool.shutdown && Queue.is_empty pool.queue then begin
      Mutex.unlock pool.mutex;
      ()
    end
    else begin
      let job = Queue.pop pool.queue in
      Mutex.unlock pool.mutex;
      (try job () with exn -> record_failure pool exn);
      Mutex.lock pool.mutex;
      pool.outstanding <- pool.outstanding - 1;
      if pool.outstanding = 0 then Condition.broadcast pool.work_done;
      Mutex.unlock pool.mutex;
      loop ()
    end
  in
  loop ()

(** Create a pool that runs jobs on [size] execution streams ([size - 1]
    worker domains plus the caller). *)
let create size =
  let size = max 1 size in
  let pool =
    {
      size;
      queue = Queue.create ();
      mutex = Mutex.create ();
      work_available = Condition.create ();
      work_done = Condition.create ();
      outstanding = 0;
      failure = None;
      shutdown = false;
      domains = [];
      batches = 0;
    }
  in
  let workers = max 0 (min (size - 1) (Domain.recommended_domain_count () * 4)) in
  pool.domains <- List.init workers (fun _ -> Domain.spawn (worker pool));
  pool

(** Run all jobs, returning when every one has finished.  The caller also
    executes jobs, so a pool of size 1 degenerates to a plain loop.  If any
    job raised, the first such exception is re-raised here at the join point
    (after every job of the batch has completed, so the pool stays
    reusable).  Batches must not overlap: [run] is fork/join, called from
    one domain at a time. *)
let run pool (jobs : job list) =
  match jobs with
  | [] -> ()
  | [ j ] ->
    pool.batches <- pool.batches + 1;
    j ()
  | jobs ->
    pool.batches <- pool.batches + 1;
    Mutex.lock pool.mutex;
    pool.failure <- None;
    List.iter (fun j -> Queue.push j pool.queue) jobs;
    pool.outstanding <- pool.outstanding + List.length jobs;
    Condition.broadcast pool.work_available;
    Mutex.unlock pool.mutex;
    (* the caller helps *)
    let rec help () =
      Mutex.lock pool.mutex;
      if Queue.is_empty pool.queue then begin
        while pool.outstanding > 0 do
          Condition.wait pool.work_done pool.mutex
        done;
        Mutex.unlock pool.mutex
      end
      else begin
        let job = Queue.pop pool.queue in
        Mutex.unlock pool.mutex;
        (try job () with exn -> record_failure pool exn);
        Mutex.lock pool.mutex;
        pool.outstanding <- pool.outstanding - 1;
        if pool.outstanding = 0 then Condition.broadcast pool.work_done;
        Mutex.unlock pool.mutex;
        help ()
      end
    in
    help ();
    match pool.failure with
    | Some exn ->
      pool.failure <- None;
      raise exn
    | None -> ()

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.shutdown <- true;
  Condition.broadcast pool.work_available;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.domains;
  pool.domains <- []

let size pool = pool.size

(** Fork/join batches dispatched so far (see {!t.batches}).  Only read
    between batches (the field is caller-side, not synchronized). *)
let batches pool = pool.batches

(** Default worker count for [--jobs] flags: the [PUREC_JOBS] environment
    variable when set to a positive integer, otherwise
    [Domain.recommended_domain_count () - 1] (leave one core for the
    caller's bookkeeping), never less than 1. *)
let default_jobs () =
  let fallback = max 1 (Domain.recommended_domain_count () - 1) in
  match Sys.getenv_opt "PUREC_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> fallback)
  | None -> fallback
