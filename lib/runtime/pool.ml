(** A work-stealing domain pool: the execution substrate standing in for the
    OpenMP runtime when generated code is run for real (as opposed to being
    simulated by the {!Machine} model).

    The pool spawns [size - 1] worker domains once.  Each execution stream
    (the caller plus every worker) owns a {e chunk deque}: the owner pushes
    and pops at the bottom (LIFO — freshly forked work first, while it is
    hot), idle streams steal from the top (FIFO — the oldest, typically
    largest outstanding piece, following the ACL2 parallelism engine's
    bounded work-queue design).  Three dispatch disciplines share the
    worker set:

    - {!run} / {!run_sharded}: fork/join — a batch of jobs is seeded across
      the deques per its worksharing plan and the caller helps until every
      one has finished ([#pragma omp parallel for] semantics).  A stream
      that drains its own deque steals the rest, so a skewed plan no longer
      leaves domains idle.  Concurrent batches are serialized on an
      internal ownership flag, so a batch started from inside a streamed
      serve request cannot interleave its accounting with another
      request's.
    - {!run_nested} / {!run_chained}: nested fork — a job {e already
      executing} on some stream forks sub-chunks onto that stream's own
      deque (instead of sequentializing, the PR 3/PR 5 leftover); idle
      streams steal them.  Enqueueing is throttled by a bounded
      unassigned-work count (see {!create}): past the bound, nested forks
      run inline — boundless recursive forking would otherwise flood the
      deques with chunks no one is free to steal.
    - {!submit}: streaming — one fire-and-forget job is enqueued on a
      separate queue and picked up by whichever worker is free; {!quiesce}
      waits for the streaming side only.  This is the serve daemon's
      discipline: one long-lived pool multiplexes many independent
      requests.  Streamed jobs and fork/join chunks are accounted
      separately ({!batches} vs {!streamed}), so neither discipline's join
      can be confused by the other's in-flight work.

    Exceptions terminate a batch early: the first failing chunk is
    recorded, every not-yet-started chunk of the batch is discarded at pop
    time, and the recorded exception is re-raised at the join point.  The
    scheduler only ever decides {e where} a chunk executes — chunk
    boundaries, merge order and every other observable output are fixed by
    the caller's plan, which is why outputs stay byte-identical no matter
    who stole what (DESIGN.md §14). *)

type job = unit -> unit

type sjob = int -> unit
(** A fork/join job; its argument is the id of the execution stream that
    actually runs it ([0] = the batch owner's slot, [1..] = worker
    domains), which is {e not} the plan position it was seeded at — a
    stolen chunk executes with the thief's stream id. *)

(* A nested fork in flight.  [g_left] counts outstanding members for a
   parallel group; a sequential chain (run_chained) holds it at 1 until the
   chain ends or dies.  [g_fail] is the group's first exception — once set,
   remaining members are discarded at pop time (early termination). *)
type group = {
  mutable g_left : int;
  mutable g_fail : exn option;
  g_chain : bool;
}

type item = { it_group : group option; it_fn : sjob }

(* Owner-LIFO / thief-FIFO deque (amortized O(1), two-list representation).
   All operations run under the pool mutex — chunk granularity is coarse
   enough that a lock-free deque would buy nothing measurable here. *)
module Dq = struct
  type 'a t = {
    mutable top : 'a list;  (** oldest first — thieves take from here *)
    mutable bottom : 'a list;  (** newest first — the owner's end *)
  }

  let create () = { top = []; bottom = [] }
  let push_bottom d x = d.bottom <- x :: d.bottom

  let pop_bottom d =
    match d.bottom with
    | x :: tl ->
      d.bottom <- tl;
      Some x
    | [] -> (
      match List.rev d.top with
      | [] -> None
      | x :: tl ->
        (* newest-first after the reversal: x is the newest *)
        d.top <- [];
        d.bottom <- tl;
        Some x)

  (* pop the bottom element only if it satisfies [p] (run_nested helps its
     own group without disturbing unrelated work below it) *)
  let pop_bottom_if d p =
    match pop_bottom d with
    | Some x when p x -> Some x
    | Some x ->
      d.bottom <- x :: d.bottom;
      None
    | None -> None

  let steal_top d =
    match d.top with
    | x :: tl ->
      d.top <- tl;
      Some x
    | [] -> (
      match List.rev d.bottom with
      | [] -> None
      | x :: tl ->
        (* oldest-first after the reversal: x is the oldest *)
        d.bottom <- [];
        d.top <- tl;
        Some x)
end

type t = {
  size : int;
  streams : int;  (** caller slot + spawned workers = number of deques *)
  deques : item Dq.t array;
  stream_queue : job Queue.t;  (** streamed ({!submit}) jobs, FIFO *)
  mutex : Mutex.t;
  work_available : Condition.t;
  work_done : Condition.t;
  batch_idle : Condition.t;
  mutable batch_active : bool;
      (** a fork/join batch owns the deques; competing batches wait *)
  mutable batch_left : int;
      (** items of the active batch (seeded + nested) not yet completed *)
  mutable cancelled : bool;
      (** the active batch died: discard its remaining items at pop time *)
  mutable failure : exn option;
      (** first exception a chunk of the active batch raised; re-raised at
          the join point in {!run_sharded} *)
  mutable streaming : int;  (** streamed jobs queued or running *)
  mutable unassigned : int;
      (** batch items sitting in deques, not yet picked up; {!run_nested}
          and {!run_chained} refuse to enqueue past [throttle] *)
  throttle : int;
  mutable shutdown : bool;
  mutable domains : unit Domain.t list;
  batches : int Atomic.t;
      (** fork/join dispatches observed: {!run}/{!run_sharded} batches plus
          nested forks that really reached the deques.  Streamed jobs are
          deliberately NOT counted here — see {!streamed}. *)
  streamed : int Atomic.t;  (** jobs accepted by {!submit} *)
  steals : int Atomic.t;
      (** batch items executed by a stream other than the one they were
          seeded on (or pushed to, for nested forks) *)
  self : int Domain.DLS.key;
      (** this domain's stream id; workers set it at spawn, everyone else
          reads the [-1] default and owns batches as stream 0 *)
  in_chunk : bool Domain.DLS.key;
      (** is this domain currently executing a fork/join item?  Gates
          nested-fork dispatch and makes a re-entrant {!run} degrade to
          inline execution instead of deadlocking on batch ownership. *)
}

let[@inline] self_stream pool = max 0 (Domain.DLS.get pool.self)

(** Is the calling domain inside a fork/join chunk of this pool right now?
    The interpreter uses this to route a nested [parallel for] to
    {!run_nested}/{!run_chained} rather than a second top-level batch. *)
let in_chunk pool = Domain.DLS.get pool.in_chunk

(* ------------------------------------------------------------------ *)
(* item execution (shared by workers, the batch owner and group helpers) *)

(* Mutex held on entry and exit; executes [it] (or discards it if its batch
   or group already died) and updates completion counters. *)
let run_item pool sid it =
  pool.unassigned <- pool.unassigned - 1;
  let dead =
    pool.cancelled
    || match it.it_group with Some g -> g.g_fail <> None | None -> false
  in
  if dead then (
    match it.it_group with
    | Some g ->
      if g.g_fail = None then g.g_fail <- pool.failure;
      if g.g_chain then g.g_left <- 0
    | None -> ())
  else begin
    Mutex.unlock pool.mutex;
    let prev = Domain.DLS.get pool.in_chunk in
    Domain.DLS.set pool.in_chunk true;
    (try it.it_fn sid
     with exn ->
       Mutex.lock pool.mutex;
       (match it.it_group with
       | Some g ->
         if g.g_fail = None then g.g_fail <- Some exn;
         if g.g_chain then g.g_left <- 0
       | None ->
         if pool.failure = None then pool.failure <- Some exn;
         (* early termination: remaining chunks of this batch are dead *)
         pool.cancelled <- true);
       Mutex.unlock pool.mutex);
    Domain.DLS.set pool.in_chunk prev;
    Mutex.lock pool.mutex
  end;
  pool.batch_left <- pool.batch_left - 1;
  (match it.it_group with
  | Some g when not g.g_chain -> g.g_left <- g.g_left - 1
  | _ -> ());
  Condition.broadcast pool.work_done

(* Mutex held.  Take a batch item for stream [sid]: own deque bottom first
   (LIFO), then steal the top of everyone else's (FIFO). *)
let obtain_batch pool sid =
  match Dq.pop_bottom pool.deques.(sid) with
  | Some _ as r -> r
  | None ->
    let n = pool.streams in
    let rec scan k =
      if k >= n then None
      else
        let t = (sid + k) mod n in
        match Dq.steal_top pool.deques.(t) with
        | Some _ as r ->
          Atomic.incr pool.steals;
          r
        | None -> scan (k + 1)
    in
    scan 1

let worker pool id () =
  Domain.DLS.set pool.self id;
  Mutex.lock pool.mutex;
  let rec loop () =
    match obtain_batch pool id with
    | Some it ->
      run_item pool id it;
      loop ()
    | None ->
      if not (Queue.is_empty pool.stream_queue) then begin
        let job = Queue.pop pool.stream_queue in
        Mutex.unlock pool.mutex;
        (* streamed jobs own their failures: a crashing serve request must
           only fail its own client, never a later batch's join *)
        (try job () with _ -> ());
        Mutex.lock pool.mutex;
        pool.streaming <- pool.streaming - 1;
        if pool.streaming = 0 then Condition.broadcast pool.work_done;
        loop ()
      end
      else if pool.shutdown then Mutex.unlock pool.mutex
      else begin
        Condition.wait pool.work_available pool.mutex;
        loop ()
      end
  in
  loop ()

(** Create a pool that runs jobs on [size] execution streams ([size - 1]
    worker domains plus the caller).  The unassigned-work throttle is
    [4 x streams]: nested forks past that bound run inline, so the deques
    hold at most one batch's seed plus a core-count-proportional backlog
    (the ACL2 engine's "bounded unassigned work" rule). *)
let create size =
  let size = max 1 size in
  let workers =
    max 0 (min (size - 1) (Domain.recommended_domain_count () * 4))
  in
  let streams = workers + 1 in
  let pool =
    {
      size;
      streams;
      deques = Array.init streams (fun _ -> Dq.create ());
      stream_queue = Queue.create ();
      mutex = Mutex.create ();
      work_available = Condition.create ();
      work_done = Condition.create ();
      batch_idle = Condition.create ();
      batch_active = false;
      batch_left = 0;
      cancelled = false;
      failure = None;
      streaming = 0;
      unassigned = 0;
      throttle = 4 * streams;
      shutdown = false;
      domains = [];
      batches = Atomic.make 0;
      streamed = Atomic.make 0;
      steals = Atomic.make 0;
      self = Domain.DLS.new_key (fun () -> -1);
      in_chunk = Domain.DLS.new_key (fun () -> false);
    }
  in
  pool.domains <- List.init workers (fun i -> Domain.spawn (worker pool (i + 1)));
  pool

(* Mutex held.  Help the active batch until it fully completes. *)
let rec help_batch pool sid =
  if pool.batch_left > 0 then begin
    match obtain_batch pool sid with
    | Some it ->
      run_item pool sid it;
      help_batch pool sid
    | None ->
      Condition.wait pool.work_done pool.mutex;
      help_batch pool sid
  end

(** Run a fork/join batch.  Each [(seed, job)] is pushed onto the deque of
    stream [seed mod streams]; the caller helps (own deque first, stealing
    after) until every item has finished, and each job receives the id of
    the stream that actually executes it.  If any job raised, the batch is
    terminated early — not-yet-started items are discarded — and the first
    exception is re-raised here at the join point, leaving the pool
    reusable.  Batches serialize on an ownership flag, so calling this
    from inside a streamed serve request is safe; calling it from inside a
    batch item falls back to inline execution (fork a nested region with
    {!run_nested}/{!run_chained} instead). *)
let run_sharded pool (jobs : (int * sjob) list) =
  match jobs with
  | [] -> ()
  | jobs ->
    if Domain.DLS.get pool.in_chunk then begin
      (* re-entrant fork/join: degrade to inline rather than deadlock on
         batch ownership (the enclosing batch cannot finish while we wait) *)
      let s = self_stream pool in
      List.iter (fun (_, f) -> f s) jobs
    end
    else begin
      Atomic.incr pool.batches;
      let s = self_stream pool in
      if pool.streams = 1 then begin
        (* no worker domains: a plain loop, but delimited as chunk context
           so nested forks know they are inside a dispatched region *)
        Domain.DLS.set pool.in_chunk true;
        let fin () = Domain.DLS.set pool.in_chunk false in
        (try List.iter (fun (_, f) -> f s) jobs
         with exn ->
           fin ();
           raise exn);
        fin ()
      end
      else begin
        Mutex.lock pool.mutex;
        while pool.batch_active do
          Condition.wait pool.batch_idle pool.mutex
        done;
        pool.batch_active <- true;
        pool.failure <- None;
        pool.cancelled <- false;
        List.iter
          (fun (seed, f) ->
            let d = pool.deques.(((seed mod pool.streams) + pool.streams) mod pool.streams) in
            Dq.push_bottom d { it_group = None; it_fn = f };
            pool.batch_left <- pool.batch_left + 1;
            pool.unassigned <- pool.unassigned + 1)
          jobs;
        Condition.broadcast pool.work_available;
        help_batch pool s;
        let fail = pool.failure in
        pool.failure <- None;
        pool.cancelled <- false;
        pool.batch_active <- false;
        Condition.broadcast pool.batch_idle;
        Mutex.unlock pool.mutex;
        match fail with Some exn -> raise exn | None -> ()
      end
    end

(** Run all jobs, returning when every one has finished — {!run_sharded}
    with round-robin seeding for callers that don't care which stream
    executes what (campaign fan-out, {!Par_loop}). *)
let run pool (jobs : job list) =
  run_sharded pool (List.mapi (fun i j -> (i, fun _ -> j ())) jobs)

(* Mutex held.  Help group [g] to completion: execute its members off the
   bottom of our own deque (they were pushed there; anything below them is
   unrelated and stays put) and wait for stolen members to finish
   elsewhere.  Deliberately does NOT pick up foreign work: the caller is
   midway through a chunk whose interpreter state a foreign chunk must not
   interleave with. *)
let rec help_group pool sid g =
  if g.g_left > 0 then begin
    match
      Dq.pop_bottom_if pool.deques.(sid) (fun it ->
          match it.it_group with Some g' -> g' == g | None -> false)
    with
    | Some it ->
      run_item pool sid it;
      help_group pool sid g
    | None ->
      if g.g_left > 0 then Condition.wait pool.work_done pool.mutex;
      help_group pool sid g
  end

(* Mutex held: may this nested fork enqueue?  Requires a live batch (we
   are a chunk of it), a stream to steal with, and headroom under the
   unassigned-work throttle. *)
let may_enqueue pool =
  pool.streams > 1 && pool.batch_active
  && (not pool.shutdown)
  && pool.unassigned < pool.throttle

(** Fork [jobs] from inside an executing chunk: push them onto the calling
    stream's own deque (bottom — the owner pops them LIFO, idle streams
    steal them FIFO) and help/wait until all of them — and only them —
    have completed.  The first member exception discards the group's
    remaining members and is re-raised here.  Outside a chunk, over the
    unassigned-work throttle, or on a single-stream pool the jobs simply
    run inline, in order. *)
let run_nested pool (jobs : sjob list) =
  match jobs with
  | [] -> ()
  | jobs ->
    let s = self_stream pool in
    let enqueue =
      Domain.DLS.get pool.in_chunk
      &&
      (Mutex.lock pool.mutex;
       let ok = may_enqueue pool in
       if not ok then Mutex.unlock pool.mutex;
       ok)
    in
    if not enqueue then List.iter (fun f -> f s) jobs
    else begin
      (* mutex held *)
      Atomic.incr pool.batches;
      let g = { g_left = List.length jobs; g_fail = None; g_chain = false } in
      List.iter
        (fun f ->
          Dq.push_bottom pool.deques.(s) { it_group = Some g; it_fn = f };
          pool.batch_left <- pool.batch_left + 1;
          pool.unassigned <- pool.unassigned + 1)
        jobs;
      Condition.broadcast pool.work_available;
      help_group pool s g;
      Mutex.unlock pool.mutex;
      match g.g_fail with Some exn -> raise exn | None -> ()
    end

(** Fork [jobs] from inside an executing chunk as a {e sequential chain}:
    link [i+1] enters the deques only when link [i] has finished, on
    whichever stream finished it, so at most one link runs at a time but
    the chain migrates to whoever steals it.  This is the instrumented
    interpreter's nested dispatch: its cost counters and cache simulation
    evolve on one state in program order, so execution must stay
    sequential — but the chunks still flow through the deques, where an
    idle stream can relieve a loaded one of the rest of the loop.  A link
    exception (or the enclosing batch dying) kills the chain: later links
    never run, and the exception is re-raised here.  Inline fallbacks as
    {!run_nested}. *)
let run_chained pool (jobs : sjob array) =
  let len = Array.length jobs in
  if len > 0 then begin
    let s = self_stream pool in
    let enqueue =
      Domain.DLS.get pool.in_chunk
      &&
      (Mutex.lock pool.mutex;
       let ok = may_enqueue pool in
       if not ok then Mutex.unlock pool.mutex;
       ok)
    in
    if not enqueue then Array.iter (fun f -> f s) jobs
    else begin
      (* mutex held *)
      Atomic.incr pool.batches;
      let g = { g_left = 1; g_fail = None; g_chain = true } in
      let push_locked it =
        Dq.push_bottom pool.deques.(self_stream pool) it;
        pool.batch_left <- pool.batch_left + 1;
        pool.unassigned <- pool.unassigned + 1;
        Condition.broadcast pool.work_available
      in
      let rec link i =
        {
          it_group = Some g;
          it_fn =
            (fun sid ->
              jobs.(i) sid;
              if i + 1 < len then begin
                Mutex.lock pool.mutex;
                if pool.cancelled || g.g_fail <> None then begin
                  if g.g_fail = None then g.g_fail <- pool.failure;
                  g.g_left <- 0;
                  Condition.broadcast pool.work_done
                end
                else push_locked (link (i + 1));
                Mutex.unlock pool.mutex
              end
              else begin
                Mutex.lock pool.mutex;
                g.g_left <- 0;
                Condition.broadcast pool.work_done;
                Mutex.unlock pool.mutex
              end);
        }
      in
      push_locked (link 0);
      help_group pool s g;
      Mutex.unlock pool.mutex;
      match g.g_fail with Some exn -> raise exn | None -> ()
    end
  end

(** Open-ended {!run_chained}: [step sid] runs as a chain link, and its
    result decides whether another link is scheduled ([true]) or the chain
    is complete ([false]).  For sequential work whose length is not known
    up front — the instrumented interpreter slices a nested loop of
    unknown trip count this way, yielding to the deques between slices.
    Inline fallback loops [step] to completion on the calling stream. *)
let run_chain pool (step : int -> bool) =
  let s = self_stream pool in
  let enqueue =
    Domain.DLS.get pool.in_chunk
    &&
    (Mutex.lock pool.mutex;
     let ok = may_enqueue pool in
     if not ok then Mutex.unlock pool.mutex;
     ok)
  in
  if not enqueue then
    let rec go () = if step s then go () in
    go ()
  else begin
    (* mutex held *)
    Atomic.incr pool.batches;
    let g = { g_left = 1; g_fail = None; g_chain = true } in
    let push_locked it =
      Dq.push_bottom pool.deques.(self_stream pool) it;
      pool.batch_left <- pool.batch_left + 1;
      pool.unassigned <- pool.unassigned + 1;
      Condition.broadcast pool.work_available
    in
    let rec link () =
      {
        it_group = Some g;
        it_fn =
          (fun sid ->
            let more = step sid in
            Mutex.lock pool.mutex;
            if (not more) || pool.cancelled || g.g_fail <> None then begin
              if g.g_fail = None && pool.cancelled then g.g_fail <- pool.failure;
              g.g_left <- 0;
              Condition.broadcast pool.work_done
            end
            else push_locked (link ());
            Mutex.unlock pool.mutex);
      }
    in
    push_locked (link ());
    help_group pool s g;
    Mutex.unlock pool.mutex;
    match g.g_fail with Some exn -> raise exn | None -> ()
  end

(** Enqueue one fire-and-forget job on the streaming side; whichever worker
    domain is free picks it up.  Unlike {!run} there is no join — pair with
    {!quiesce} to wait for the streaming side to drain.  The job must catch
    its own exceptions (a crash is swallowed, never re-raised to anyone, so
    a serve request that dies can only fail its own client).  Raises
    [Invalid_argument] after {!shutdown}: a torn-down pool silently
    dropping work would be indistinguishable from a hang. *)
let submit pool (job : job) =
  Mutex.lock pool.mutex;
  if pool.shutdown then begin
    Mutex.unlock pool.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Atomic.incr pool.streamed;
  Queue.push job pool.stream_queue;
  pool.streaming <- pool.streaming + 1;
  Condition.signal pool.work_available;
  Mutex.unlock pool.mutex

(** Wait until every queued and in-flight streamed job (from {!submit}) has
    finished.  Fork/join batches are not waited on — they have their own
    join — so a batch running concurrently cannot stall a serve drain.
    Safe to call repeatedly; returns immediately when the streaming side is
    idle. *)
let quiesce pool =
  Mutex.lock pool.mutex;
  while pool.streaming > 0 do
    Condition.wait pool.work_done pool.mutex
  done;
  Mutex.unlock pool.mutex

(** Tear the pool down: wake every worker, join the domains.  Idempotent —
    a second call (or a shutdown racing a [Fun.protect] finalizer) is a
    no-op, so one pool can be guarded by several owners without
    double-join crashes. *)
let shutdown pool =
  Mutex.lock pool.mutex;
  if pool.shutdown then Mutex.unlock pool.mutex
  else begin
    pool.shutdown <- true;
    Condition.broadcast pool.work_available;
    Mutex.unlock pool.mutex;
    List.iter Domain.join pool.domains;
    pool.domains <- []
  end

let size pool = pool.size

(** Worker domains actually spawned ([size - 1], capped).  A pool with no
    workers executes {!run} batches caller-side only; streaming callers use
    this to fall back to inline execution (nobody would ever pop). *)
let workers pool = List.length pool.domains

(** Fork/join dispatches observed so far (see {!t.batches}): top-level
    batches plus nested forks that reached the deques.  Streamed jobs are
    counted by {!streamed} instead, so the two disciplines cannot
    interleave each other's censuses.  Safe to read concurrently. *)
let batches pool = Atomic.get pool.batches

(** Streamed jobs accepted by {!submit} so far.  Safe to read
    concurrently. *)
let streamed pool = Atomic.get pool.streamed

(** Batch items executed by a stream other than the one they were seeded
    on: > 0 proves work really migrated (the steal-witness tests); 0 on a
    balanced plan is normal.  Safe to read concurrently. *)
let steals pool = Atomic.get pool.steals

(** Reset the {!batches} and {!streamed} observability counters (e.g.
    between requests or test phases, so each can assert on the dispatches
    it alone caused).  Does not affect queued or running work. *)
let reset_batches pool =
  Atomic.set pool.batches 0;
  Atomic.set pool.streamed 0

(** Reset the {!steals} counter. *)
let reset_steals pool = Atomic.set pool.steals 0

(** Default worker count for [--jobs] flags: the [PUREC_JOBS] environment
    variable when set to a positive integer, otherwise
    [Domain.recommended_domain_count () - 1] (leave one core for the
    caller's bookkeeping), never less than 1. *)
let default_jobs () =
  let fallback = max 1 (Domain.recommended_domain_count () - 1) in
  match Sys.getenv_opt "PUREC_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> fallback)
  | None -> fallback
