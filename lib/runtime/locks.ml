(** Named-lock table backing [#pragma omp critical] / [#pragma omp atomic].

    OpenMP gives every [critical] construct a process-wide name — all
    unnamed criticals share one implicit name, and [atomic] updates are
    modeled here as critical sections on a reserved name of their own
    (coarser than a hardware atomic, but with identical mutual-exclusion
    semantics at interpreter granularity).  The table maps each name to a
    stable small integer id and one [Mutex.t]; ids are what the interpreter
    stamps into access logs ({!Interp.Trace.access}) and what the lockset
    race engine intersects.

    The registry itself is guarded by a private mutex so compilation may
    happen concurrently on several domains (the fuzz campaign driver
    compiles independent cases in parallel). *)

(* reserved names: OpenMP's unnamed critical and the atomic lowering *)
let anonymous_critical = "<critical>"

let atomic_name = "<atomic>"

let registry_mu = Mutex.create ()

let ids : (string, int) Hashtbl.t = Hashtbl.create 16

let mutexes : Mutex.t array ref = ref [||]

(** Stable id of lock [name], registering it on first use.  Ids are
    assigned in registration order, so within one compiled program they are
    deterministic. *)
let id (name : string) : int =
  Mutex.lock registry_mu;
  let i =
    match Hashtbl.find_opt ids name with
    | Some i -> i
    | None ->
      let i = Array.length !mutexes in
      Hashtbl.replace ids name i;
      mutexes := Array.append !mutexes [| Mutex.create () |];
      i
  in
  Mutex.unlock registry_mu;
  i

(* [!mutexes] only ever grows and slots are immutable once published, so an
   unsynchronized read of an id handed out by {!id} is safe *)
let mutex_of_id (i : int) : Mutex.t =
  let ms = !mutexes in
  if i < 0 || i >= Array.length ms then
    invalid_arg (Printf.sprintf "Locks.mutex_of_id: unknown lock %d" i);
  ms.(i)

(** Acquire/release lock [i].  Real mutual exclusion: concurrent domains
    executing the same critical section serialize here. *)
let acquire (i : int) = Mutex.lock (mutex_of_id i)

let release (i : int) = Mutex.unlock (mutex_of_id i)

(** [with_lock i f] runs [f ()] holding lock [i], releasing on exceptions. *)
let with_lock (i : int) (f : unit -> 'a) : 'a =
  let m = mutex_of_id i in
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f
