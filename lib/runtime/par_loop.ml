(** OpenMP-style worksharing loops over a {!Pool}.

    Implements the four schedules the evaluation codes use —
    [schedule(static)] (contiguous blocks, the default), [schedule(static,c)]
    (round-robin chunks), [schedule(dynamic,c)] (first-come first-served
    chunks off a shared counter) and [schedule(guided,c)] (exponentially
    decaying grants down to a floor of [c]) — with OpenMP's fork/join
    semantics. *)

type schedule = Static | Static_chunk of int | Dynamic of int | Guided of int

(** The [(start, stop)] half-open grant sequence of [schedule(guided,floor)]
    over [lo, hi) with [workers] execution streams: each grant takes
    [remaining / max(2, workers)] iterations (rounded up, halving with two
    streams, decaying geometrically in general), never less than [floor].
    The sequence is a pure function of [(floor, workers, lo, hi)] — no
    runtime counter feeds it — so consumers that must stay deterministic
    under work stealing (the interpreter's chunk merge, the race engines'
    replays) can rely on identical chunk boundaries at a fixed worker
    count no matter which stream executes which grant. *)
let guided_grants ~floor ~workers ~lo ~hi : (int * int) list =
  let floor = max 1 floor in
  let div = max 2 workers in
  let rec go at acc =
    if at >= hi then List.rev acc
    else
      let remaining = hi - at in
      let grant = max floor ((remaining + div - 1) / div) in
      let stop = min hi (at + grant) in
      go stop ((at, stop) :: acc)
  in
  go lo []

(** [plan schedule ~workers ~lo ~hi] is the iteration set each worker
    executes, as an array of [workers] lists of ascending indices.

    For [Static] and [Static_chunk] this is exactly the partition
    {!parallel_for} uses.  [Dynamic] is nondeterministic at run time (chunks
    go to whichever worker asks first); the plan models the canonical
    round-robin dispatch order, which has the same coverage properties.  The
    differential fuzz oracle checks that, for every schedule and worker
    count, the plan is a {e partition} of [lo, hi): every iteration appears
    exactly once across workers. *)
let plan (schedule : schedule) ~workers ~lo ~hi : int list array =
  let workers = max 1 workers in
  let n = hi - lo in
  let out = Array.make workers [] in
  if n > 0 then begin
    (match schedule with
    | Static ->
      let block = (n + workers - 1) / workers in
      for w = 0 to workers - 1 do
        let start = lo + (w * block) in
        let stop = min hi (start + block) in
        if start < stop then out.(w) <- List.init (stop - start) (fun k -> start + k)
      done
    | Static_chunk chunk | Dynamic chunk ->
      (* worker w takes chunks w, w+workers, w+2*workers, ...; for Dynamic
         this is the canonical first-come order of identical workers *)
      let chunk = max 1 chunk in
      for w = 0 to workers - 1 do
        let rec go c acc =
          let start = lo + (c * chunk) in
          if start >= hi then List.rev acc
          else
            let stop = min hi (start + chunk) in
            go (c + workers) (List.rev_append (List.init (stop - start) (fun k -> start + k)) acc)
        in
        out.(w) <- go w []
      done
    | Guided floor ->
      (* grant g goes to worker g mod workers: the canonical first-come
         order of identical workers, exactly as Dynamic above; the grant
         boundaries themselves are deterministic (see guided_grants) *)
      let grants = Array.of_list (guided_grants ~floor ~workers ~lo ~hi) in
      let acc = Array.make workers [] in
      Array.iteri
        (fun g (start, stop) ->
          let w = g mod workers in
          acc.(w) <-
            List.rev_append (List.init (stop - start) (fun k -> start + k)) acc.(w))
        grants;
      Array.iteri (fun w l -> out.(w) <- List.rev l) acc)
  end;
  out

(** [chunk_plan schedule ~workers ~lo ~hi] is {!plan} with each worker's
    iteration set grouped into maximal contiguous runs, as [(start, stop)]
    half-open intervals.  Consumers that execute whole chunks (the
    interpreter's parallel loop dispatch, which gives each chunk its own
    output buffer for the deterministic merge) use this instead of the flat
    index lists; the two views are consistent by construction. *)
let chunk_plan (schedule : schedule) ~workers ~lo ~hi : (int * int) list array =
  let runs l =
    let rec go acc cur = function
      | [] -> List.rev (match cur with None -> acc | Some c -> c :: acc)
      | i :: tl -> (
        match cur with
        | Some (a, b) when i = b -> go acc (Some (a, i + 1)) tl
        | Some c -> go (c :: acc) (Some (i, i + 1)) tl
        | None -> go acc (Some (i, i + 1)) tl)
    in
    go [] None l
  in
  Array.map runs (plan schedule ~workers ~lo ~hi)

(** [parallel_for pool ~schedule ~lo ~hi body] runs [body i] for every
    [lo <= i < hi], partitioned over the pool per [schedule].  Returns when
    all iterations are done. *)
let parallel_for pool ?(schedule = Static) ~lo ~hi (body : int -> unit) =
  let n = hi - lo in
  if n <= 0 then ()
  else begin
    let workers = Pool.size pool in
    if workers = 1 then
      for i = lo to hi - 1 do
        body i
      done
    else begin
      match schedule with
      | Static | Static_chunk _ | Guided _ ->
        (* deterministic schedules execute exactly their plan (guided's
           grant sequence is deterministic too; the pool's stealing only
           moves whole grants between streams) *)
        let assignment = plan schedule ~workers ~lo ~hi in
        let jobs =
          List.init workers (fun w -> fun () -> List.iter body assignment.(w))
        in
        Pool.run pool jobs
      | Dynamic chunk ->
        let chunk = max 1 chunk in
        let next = Atomic.make lo in
        let jobs =
          List.init workers (fun _ ->
              fun () ->
                let rec go () =
                  let start = Atomic.fetch_and_add next chunk in
                  if start < hi then begin
                    let stop = min hi (start + chunk) in
                    for i = start to stop - 1 do
                      body i
                    done;
                    go ()
                  end
                in
                go ())
        in
        Pool.run pool jobs
    end
  end

(** Parallel reduction: combines a per-iteration value with [combine]
    (associative, commutative); used by tests and examples. *)
let parallel_reduce pool ?(schedule = Static) ~lo ~hi ~init ~combine
    (body : int -> 'a) : 'a =
  let workers = Pool.size pool in
  if workers = 1 || hi - lo <= 1 then begin
    let acc = ref init in
    for i = lo to hi - 1 do
      acc := combine !acc (body i)
    done;
    !acc
  end
  else begin
    let mutex = Mutex.create () in
    let acc = ref init in
    parallel_for pool ~schedule ~lo ~hi (fun i ->
        let v = body i in
        Mutex.lock mutex;
        acc := combine !acc v;
        Mutex.unlock mutex);
    !acc
  end
