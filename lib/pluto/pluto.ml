(** The polyhedral source-to-source pass (the [polycc] stage of Fig. 1).

    Scans function bodies for regions marked [#pragma scop] / [#pragma
    endscop], optionally substitutes pure calls by opaque constants (paper
    §3.3), extracts the polyhedral representation, finds a legal schedule,
    regenerates the nest with OpenMP (and optionally SICA/SIMD) pragmas, and
    swaps the pure calls back in.

    Exactly like the real PluTo, the pass {e rejects} a marked region that is
    not a static control part — most importantly a region containing
    function calls, which is what happens when the purity stage is skipped. *)

open Cfront
open Support

(** Re-export: [pluto.ml] is the library's interface module, so [Sica] must
    be reachable as [Pluto.Sica]. *)
module Sica = Sica

type config = {
  hide_pure_calls : Purity.Registry.t option;
      (** [Some registry]: the pure chain; [None]: plain PluTo on raw code *)
  sica : bool;
  tile : bool;
  tile_sizes : int list;
  parallelize : bool;
  schedule_clause : string option;
  skip_malloc_loops : bool;
      (** ablation: leave allocation loops untouched (cf. DESIGN.md §5) *)
  sica_cache : Sica.cache;  (** cache the SICA tile-size model targets *)
  fn_summaries : (string * Purity.Fn_metadata.summary) list;
      (** access metadata of pure functions (paper §3.3 future work): lets
          the SICA tile model see the arrays a hidden call touches *)
  unsafe_no_legality : bool;
      (** fault injection for the fuzz oracle: skip the dependence legality
          check and force an arbitrary permutation (see
          {!Poly.Transform.find_schedule}); never set outside testing *)
  inspector : bool;
      (** inspector/executor path for index-array gathers: a nest that
          fails extraction {e only} because of indirect subscripts
          ({!Poly.Gather.classify}) is emitted as a runtime-checked
          parallel loop instead of being rejected.  The emitted pragma
          carries an [[inspector:…]] marker naming the checked arrays;
          the interpreter probes their footprints for disjointness before
          every dispatch and falls back to sequential execution on
          conflict.  Off reverts to the static rejection — unless
          [unsafe_no_legality] also holds, in which case the pragma is
          emitted {e without} the marker (a forced-parallel gather, the
          race detector's inject witness for this subsystem). *)
}

let default_config =
  {
    hide_pure_calls = None;
    sica = false;
    tile = false;
    tile_sizes = [ 32 ];
    parallelize = true;
    schedule_clause = None;
    skip_malloc_loops = false;
    sica_cache = Sica.opteron_6272;
    fn_summaries = [];
    unsafe_no_legality = false;
    inspector = true;
  }

type outcome = {
  o_loc : Loc.t;
  o_result : result;
}

and result =
  | Transformed of transformed_info
  | Rejected of string

and transformed_info = {
  t_units : unit_info list;
}

and unit_info = {
  ui_iters : string list;
  ui_matrix : int array array;
  ui_parallel : int option;
  ui_tiled : int;
  ui_identity : bool;
  ui_runtime_check : string list option;
      (** [Some arrays]: the unit parallelizes only under the inspector's
          runtime disjointness verdict over these arrays' footprints
          ([[]] = read-only gathers, vacuously disjoint); [None]: the
          dependence analysis proved it statically *)
}

(* ------------------------------------------------------------------ *)

let elem_bytes_default = 4 (* float; conservative for tile sizing *)

let codegen_options config ~depth ~arrays_touched ~elem_bytes : Poly.Codegen.options =
  if config.sica then
    let o =
      Sica.options ~cache:config.sica_cache ~elem_bytes ~arrays_touched ~depth ()
    in
    { o with Poly.Codegen.parallelize = config.parallelize; schedule_clause = config.schedule_clause }
  else
    {
      Poly.Codegen.tile = config.tile;
      tile_sizes = config.tile_sizes;
      vectorize = false;
      parallelize = config.parallelize;
      schedule_clause = config.schedule_clause;
    }

let contains_malloc stmt =
  let prefixed pre s = String.length s >= String.length pre && String.sub s 0 (String.length pre) = pre in
  List.exists (fun f -> f = "malloc" || f = "calloc") (Ast.calls_in_stmt stmt)
  || Ast.fold_stmt
       ~stmt:(fun acc _ -> acc)
       ~expr:(fun acc e ->
         acc
         ||
         match e.Ast.edesc with
         | Ast.Ident x ->
           (* the purity stage may already have hidden the allocation call *)
           prefixed "tmpConst_malloc" x || prefixed "tmpConst_calloc" x
         | _ -> false)
       false stmt

(* ------------------------------------------------------------------ *)
(* Unit attribution: every transform unit gets a sequential id (its index
   in [unit_table]) and the pragmas its codegen emits carry a " [unit N]"
   tag, so a race found while replaying the access log of a parallel loop
   can be traced back to the schedule matrix that produced the pragma.
   The tag is an internal marker: [strip_unit_tags] removes it from any
   user-facing program text. *)

let omp_prefix = "omp parallel for"

let is_omp_pragma p =
  String.length p >= String.length omp_prefix
  && String.sub p 0 (String.length omp_prefix) = omp_prefix

let rec tag_stmt id (s : Ast.stmt) : Ast.stmt =
  let d =
    match s.Ast.sdesc with
    | Ast.SPragma p when is_omp_pragma p ->
      Ast.SPragma (Printf.sprintf "%s [unit %d]" p id)
    | Ast.SBlock ss -> Ast.SBlock (List.map (tag_stmt id) ss)
    | Ast.SIf (c, t, e) -> Ast.SIf (c, tag_stmt id t, Option.map (tag_stmt id) e)
    | Ast.SWhile (c, b) -> Ast.SWhile (c, tag_stmt id b)
    | Ast.SDoWhile (b, c) -> Ast.SDoWhile (tag_stmt id b, c)
    | Ast.SFor (i, c, st, b) -> Ast.SFor (i, c, st, tag_stmt id b)
    | d -> d
  in
  { s with Ast.sdesc = d }

(** Remove every " [unit N]" attribution tag from emitted program text. *)
let strip_unit_tags text =
  let n = String.length text in
  let buf = Buffer.create n in
  let rec go i =
    if i < n then
      if i + 6 <= n && String.sub text i 6 = " [unit" then
        match String.index_from_opt text i ']' with
        | Some j -> go (j + 1)
        | None ->
          Buffer.add_substring buf text i (n - i)
      else begin
        Buffer.add_char buf text.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

(* The inspector/executor fallback for a nest that failed extraction: if
   the only obstacle is index-array indirection ([Poly.Gather.classify]),
   emit the ORIGINAL nest under an [omp parallel for] pragma carrying an
   [inspector:…] marker naming the checked arrays; the interpreter probes
   their runtime footprints before dispatching (see [Interp.Compile]).
   Anything genuinely un-analyzable re-raises the original [Not_affine] so
   the region is rejected exactly as before.  With [inspector] off the
   marker path is closed: the nest is rejected — unless
   [unsafe_no_legality] forces the pragma WITHOUT the marker (the race
   detector's forced-parallel gather witness). *)
let runtime_check_nest config ~uid ~reveal ~enclosing ~msg ~loc (s : Ast.stmt) :
    Ast.stmt list * unit_info list =
  let reject () = raise (Poly.Scop_ir.Not_affine (msg, loc)) in
  if not (config.parallelize && (config.inspector || config.unsafe_no_legality))
  then reject ();
  match Poly.Gather.classify ~enclosing s with
  | Poly.Gather.Unanalyzable _ -> reject ()
  | Poly.Gather.Checkable g ->
    let depth = List.length g.Poly.Gather.g_unit.Poly.Scop_ir.u_iters in
    (* inner iterators driven through pre-declared variables must be
       privatized for the executor, like any multi-loop nest body *)
    let privates =
      match g.Poly.Gather.g_headers with
      | [] | [ _ ] -> []
      | _ :: inner ->
        List.filter_map
          (fun (h : Poly.Scop_ir.loop_header) ->
            if h.Poly.Scop_ir.h_decl = None then Some h.Poly.Scop_ir.h_iter
            else None)
          inner
    in
    let pragma =
      omp_prefix
      ^ (if privates = [] then ""
         else Printf.sprintf " private(%s)" (String.concat "," privates))
      ^ (match config.schedule_clause with
        | Some c -> Printf.sprintf " schedule(%s)" c
        | None -> "")
      ^
      if config.inspector then
        match g.Poly.Gather.g_checked with
        | [] -> " [inspector]"
        | checked -> Printf.sprintf " [inspector:%s]" (String.concat "," checked)
      else ""
    in
    let info =
      {
        ui_iters = g.Poly.Gather.g_unit.Poly.Scop_ir.u_iters;
        ui_matrix = Poly.Transform.identity_matrix depth;
        ui_parallel = Some 1;
        ui_tiled = 0;
        ui_identity = true;
        ui_runtime_check = Some g.Poly.Gather.g_checked;
      }
    in
    let id = !uid in
    incr uid;
    ( List.map (tag_stmt id) [ Ast.mk_stmt (Ast.SPragma pragma); reveal s ],
      [ info ] )

(* Transform one marked nest (recursive for imperfect nests).  [reveal]
   swaps hidden pure calls back into body statements before code
   generation, so the iterator substitution also reaches call arguments.
   [uid] numbers the emitted transform units in flattened source order —
   the same order [unit_table] lays them out.  Returns the replacement
   statements and per-unit info. *)
let rec transform_nest config ~uid ~reveal ~enclosing (s : Ast.stmt) :
    Ast.stmt list * unit_info list =
  match Poly.Scop_ir.recognize_loop s with
  | None -> Poly.Scop_ir.fail s.Ast.sloc "not a recognizable for-loop"
  | Some h ->
    let body = Poly.Scop_ir.body_list h.Poly.Scop_ir.h_body in
    let is_single_nest =
      match body with
      | [ st ] -> Option.is_some (Poly.Scop_ir.recognize_loop st)
      | _ -> false
    in
    let all_loops =
      body <> []
      && List.for_all (fun st -> Option.is_some (Poly.Scop_ir.recognize_loop st)) body
    in
    if all_loops && not is_single_nest then begin
      (* imperfect nest: keep this loop sequential, transform the sub-nests *)
      let enclosing' = enclosing @ [ h.Poly.Scop_ir.h_iter ] in
      let results =
        List.map (transform_nest config ~uid ~reveal ~enclosing:enclosing') body
      in
      (* block-wrap each sub-nest so their generated declarations don't
         collide in the shared loop body *)
      let new_body = List.map (fun (stmts, _) -> Ast.mk_stmt (Ast.SBlock stmts)) results in
      let infos = List.concat_map snd results in
      let rebuilt =
        {
          s with
          Ast.sdesc =
            (match s.Ast.sdesc with
            | Ast.SFor (i, c, st, _) -> Ast.SFor (i, c, st, Ast.mk_stmt (Ast.SBlock new_body))
            | _ -> assert false);
        }
      in
      ([ rebuilt ], infos)
    end
    else if config.skip_malloc_loops && contains_malloc s then
      (* ablation: leave allocation loops untouched (paper Fig. 3, black
         bars); hidden calls must still be revealed *)
      ([ reveal s ], [])
    else begin
      match Poly.Scop_ir.extract_unit ~enclosing s with
      | exception Poly.Scop_ir.Not_affine (msg, loc) ->
        runtime_check_nest config ~uid ~reveal ~enclosing ~msg ~loc s
      | unit ->
      let unit =
        {
          unit with
          Poly.Scop_ir.u_body =
            List.map
              (fun (b : Poly.Scop_ir.body_stmt) ->
                { b with Poly.Scop_ir.b_ast = reveal b.Poly.Scop_ir.b_ast })
              unit.Poly.Scop_ir.u_body;
        }
      in
      let sched =
        Poly.Transform.find_schedule
          ~unsafe_skip_legality:config.unsafe_no_legality unit
      in
      let depth = List.length unit.Poly.Scop_ir.u_iters in
      let visible_arrays =
        List.concat_map
          (fun (b : Poly.Scop_ir.body_stmt) ->
            List.map (fun a -> a.Poly.Scop_ir.a_array) (b.Poly.Scop_ir.b_writes @ b.Poly.Scop_ir.b_reads))
          unit.Poly.Scop_ir.u_body
        |> List.sort_uniq compare |> List.length
      in
      (* the paper's §3.3 coupling: hidden pure calls contribute the arrays
         their metadata says they touch, so SICA can size tiles for them *)
      let callees =
        List.concat_map
          (fun (b : Poly.Scop_ir.body_stmt) -> Ast.calls_in_stmt b.Poly.Scop_ir.b_ast)
          unit.Poly.Scop_ir.u_body
        |> List.sort_uniq compare
      in
      let call_arrays, elem_bytes =
        Purity.Fn_metadata.sica_footprint config.fn_summaries callees
      in
      let arrays_touched = max 1 (visible_arrays + call_arrays) in
      let elem_bytes = max elem_bytes_default elem_bytes in
      let options = codegen_options config ~depth ~arrays_touched ~elem_bytes in
      let gen = Poly.Codegen.generate ~options unit sched in
      let info =
        {
          ui_iters = unit.Poly.Scop_ir.u_iters;
          ui_matrix = sched.Poly.Transform.sched_matrix;
          ui_parallel = gen.Poly.Codegen.g_parallel_level;
          ui_tiled = gen.Poly.Codegen.g_tiled_levels;
          ui_identity = sched.Poly.Transform.sched_is_identity;
          ui_runtime_check = None;
        }
      in
      (* number EVERY unit (parallel or not): the id is the unit's index in
         [unit_table], which flattens all units in this same order *)
      let id = !uid in
      incr uid;
      (List.map (tag_stmt id) gen.Poly.Codegen.g_stmts, [ info ])
    end

(* Substitute pure calls, transform, reveal.  The replacement is wrapped in
   a block so the generated iterator declarations stay region-local. *)
let process_region config ~uid (s : Ast.stmt) :
    (Ast.stmt list * unit_info list, string) Stdlib.result =
  let table = Purity.Substitute.create () in
  let prepared, reveal =
    match config.hide_pure_calls with
    | Some _registry ->
      (Purity.Substitute.hide_stmt table s, Purity.Substitute.reveal_stmt table)
    | None -> (s, fun st -> st)
  in
  let saved = !uid in
  match transform_nest config ~uid ~reveal ~enclosing:[] prepared with
  | stmts, infos -> Ok ([ Ast.mk_stmt (Ast.SBlock stmts) ], infos)
  | exception Poly.Scop_ir.Not_affine (msg, _loc) ->
    (* a rejected region emits no units; roll back any ids assigned before
       the failure so [unit_table] indices stay aligned with the tags *)
    uid := saved;
    Error msg

(* Rewrite a statement list, replacing scop-delimited regions. *)
let rec process_stmts config outcomes uid stmts =
  match stmts with
  | [] -> []
  | { Ast.sdesc = Ast.SPragma p; sloc } :: nest :: { Ast.sdesc = Ast.SPragma p'; _ } :: rest
    when p = Purity.Scop_marker.scop_begin && p' = Purity.Scop_marker.scop_end -> (
    match process_region config ~uid nest with
    | Ok (replacement, infos) ->
      outcomes := { o_loc = sloc; o_result = Transformed { t_units = infos } } :: !outcomes;
      replacement @ process_stmts config outcomes uid rest
    | Error msg ->
      outcomes := { o_loc = sloc; o_result = Rejected msg } :: !outcomes;
      nest :: process_stmts config outcomes uid rest)
  | s :: rest ->
    descend_stmt config outcomes uid s :: process_stmts config outcomes uid rest

and descend_stmt config outcomes uid (s : Ast.stmt) : Ast.stmt =
  let d =
    match s.Ast.sdesc with
    | Ast.SBlock ss -> Ast.SBlock (process_stmts config outcomes uid ss)
    | Ast.SIf (c, t, e) ->
      Ast.SIf
        ( c,
          descend_stmt config outcomes uid t,
          Option.map (descend_stmt config outcomes uid) e )
    | Ast.SWhile (c, b) -> Ast.SWhile (c, descend_stmt config outcomes uid b)
    | Ast.SDoWhile (b, c) -> Ast.SDoWhile (descend_stmt config outcomes uid b, c)
    | Ast.SFor (i, c, st, b) -> Ast.SFor (i, c, st, descend_stmt config outcomes uid b)
    | d -> d
  in
  { s with Ast.sdesc = d }

(** Run the polyhedral pass over every function with a body.  Returns the
    rewritten program and the per-region outcomes. *)
let run ?(config = default_config) (program : Ast.program) : Ast.program * outcome list
    =
  let outcomes = ref [] in
  let uid = ref 0 in
  let program' =
    List.map
      (fun g ->
        match g with
        | Ast.GFunc ({ f_body = Some body; _ } as f) ->
          Ast.GFunc { f with f_body = Some (process_stmts config outcomes uid body) }
        | g -> g)
      program
  in
  (program', List.rev !outcomes)

(** Flatten the outcomes' transform units in emission order: the array
    index IS the unit id carried by the [unit N] pragma tags. *)
let unit_table (outcomes : outcome list) : (Loc.t * unit_info) array =
  Array.of_list
    (List.concat_map
       (fun o ->
         match o.o_result with
         | Transformed { t_units } -> List.map (fun u -> (o.o_loc, u)) t_units
         | Rejected _ -> [])
       outcomes)

(** [ui_matrix] on one line: "[[1 0]; [0 1]]". *)
let matrix_string (m : int array array) =
  "["
  ^ String.concat "; "
      (Array.to_list
         (Array.map
            (fun row ->
              "[" ^ String.concat " " (Array.to_list (Array.map string_of_int row)) ^ "]")
            m))
  ^ "]"

(** One-line description of a transform unit, naming its schedule matrix —
    the attribution line race reports point at. *)
let describe_unit (u : unit_info) =
  Printf.sprintf "iters (%s), schedule matrix %s%s%s%s%s"
    (String.concat "," u.ui_iters)
    (matrix_string u.ui_matrix)
    (if u.ui_identity then " (identity)" else "")
    (match u.ui_parallel with
    | Some l -> Printf.sprintf ", parallel level %d" l
    | None -> ", sequential")
    (if u.ui_tiled > 0 then Printf.sprintf ", %d tiled levels" u.ui_tiled else "")
    (match u.ui_runtime_check with
    | None -> ""
    | Some [] -> ", runtime-checked (no conflicting arrays)"
    | Some arrays ->
      Printf.sprintf ", runtime-checked on %s" (String.concat "," arrays))

(** Convenience: (regions with at least one parallel loop, rejected
    regions).  A region transformed without any parallel loop (e.g. a pure
    reduction) counts in neither number. *)
let summarize (outcomes : outcome list) =
  let parallel =
    List.filter
      (fun o ->
        match o.o_result with
        | Transformed { t_units } ->
          List.exists (fun u -> u.ui_parallel <> None) t_units
        | Rejected _ -> false)
      outcomes
  in
  let rejected =
    List.filter (fun o -> match o.o_result with Rejected _ -> true | _ -> false) outcomes
  in
  (List.length parallel, List.length rejected)
