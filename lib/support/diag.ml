(** Diagnostics: errors and warnings carrying a source location and a
    machine-readable code, collected by the compiler passes.

    Every pass reports through a [reporter] so tests can assert on the exact
    error codes a listing must produce (e.g. the invalid lines of the paper's
    Listing 2 and Listing 4). *)

type severity = Error | Warning | Note

type t = { severity : severity; code : string; loc : Loc.t; message : string }

(** The coarse failure stage a diagnostic belongs to.  Every code maps to
    exactly one kind, so downstream classification (e.g. the CLI's exit
    codes in {!Toolchain.Chain.classify_errors}) is a total match instead
    of an open-ended prefix cascade. *)
type kind =
  | Parse  (** lexer / parser / preprocessor rejections *)
  | Purity  (** purity verification or scop-marking rejections *)
  | Race  (** the dynamic race detector found conflicting accesses *)
  | Fuzz  (** the differential fuzz oracle found a divergence *)
  | Protocol
      (** serve-protocol and request-IO failures: a malformed JSONL request,
          an unreadable source file named by a request *)
  | Generic  (** everything else (runtime faults, internal errors) *)

let string_starts_with ~prefix s =
  let pl = String.length prefix in
  String.length s >= pl && String.sub s 0 pl = prefix

let kind_of_code code : kind =
  if
    code = "parse"
    || string_starts_with ~prefix:"parse." code
    || string_starts_with ~prefix:"lex" code
    || string_starts_with ~prefix:"cpp" code
  then Parse
  else if
    string_starts_with ~prefix:"pure." code || string_starts_with ~prefix:"scop." code
  then Purity
  else if string_starts_with ~prefix:"race." code then Race
  else if string_starts_with ~prefix:"fuzz." code then Fuzz
  else if string_starts_with ~prefix:"proto." code then Protocol
  else Generic

let kind_of t = kind_of_code t.code

let kind_to_string = function
  | Parse -> "parse"
  | Purity -> "purity"
  | Race -> "race"
  | Fuzz -> "fuzz"
  | Protocol -> "protocol"
  | Generic -> "generic"

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"

let pp ppf d =
  Fmt.pf ppf "%a: %s[%s]: %s" Loc.pp d.loc (severity_to_string d.severity)
    d.code d.message

let to_string d = Fmt.str "%a" pp d

type reporter = { mutable diags : t list (* newest first *) }

let create_reporter () = { diags = [] }

let report r d = r.diags <- d :: r.diags

let error r ?(loc = Loc.dummy) ~code fmt =
  Fmt.kstr (fun message -> report r { severity = Error; code; loc; message }) fmt

let warning r ?(loc = Loc.dummy) ~code fmt =
  Fmt.kstr (fun message -> report r { severity = Warning; code; loc; message }) fmt

let note r ?(loc = Loc.dummy) ~code fmt =
  Fmt.kstr (fun message -> report r { severity = Note; code; loc; message }) fmt

let diagnostics r = List.rev r.diags

let errors r = List.filter (fun d -> d.severity = Error) (diagnostics r)

let has_errors r = List.exists (fun d -> d.severity = Error) r.diags

let error_codes r = List.map (fun d -> d.code) (errors r)

(** Raised by passes that cannot continue past a malformed input. *)
exception Fatal of t

let fatal ?(loc = Loc.dummy) ~code fmt =
  Fmt.kstr
    (fun message -> raise (Fatal { severity = Error; code; loc; message }))
    fmt
