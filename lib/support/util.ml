(** Small shared helpers used across the compiler and simulator. *)

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let lcm a b = if a = 0 || b = 0 then 0 else abs (a / gcd a b * b)

(** [range a b] is [a; a+1; ...; b-1]. *)
let range a b = List.init (max 0 (b - a)) (fun i -> a + i)

let sum_list = List.fold_left ( + ) 0

let sum_floats = List.fold_left ( +. ) 0.0

let float_array_sum a = Array.fold_left ( +. ) 0.0 a

let float_array_max a = Array.fold_left max neg_infinity a

(** Index of the minimum element; [Not_found] on empty. *)
let argmin_array cmp a =
  if Array.length a = 0 then raise Not_found;
  let best = ref 0 in
  for i = 1 to Array.length a - 1 do
    if cmp a.(i) a.(!best) < 0 then best := i
  done;
  !best

let string_starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let string_contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  if nl = 0 then true
  else
    let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
    go 0

let split_lines s = String.split_on_char '\n' s

(** Round [x] to [d] decimal digits (for stable printed reports). *)
let round_to x d =
  let f = 10.0 ** float_of_int d in
  Float.round (x *. f) /. f

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: tl -> x :: take (n - 1) tl

let rec drop n = function
  | l when n <= 0 -> l
  | [] -> []
  | _ :: tl -> drop (n - 1) tl

(** Tabulate a float matrix. *)
let matrix_init rows cols f = Array.init rows (fun i -> Array.init cols (fun j -> f i j))

let clamp ~lo ~hi x = max lo (min hi x)

let clampf ~lo ~hi x = Float.max lo (Float.min hi x)

(** Geometric mean of positive values. *)
let geomean = function
  | [] -> invalid_arg "geomean: empty"
  | xs ->
    let logs = List.map log xs in
    exp (sum_floats logs /. float_of_int (List.length xs))
