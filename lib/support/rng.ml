(** Deterministic splitmix64 PRNG.

    Workload generators (sparse matrices, hyperspectral cubes) must be
    reproducible across runs and independent of the global [Random] state, so
    they each carry one of these. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Uniform in [0, bound). [bound] must be positive. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* keep 62 bits so the value fits OCaml's int non-negatively *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

(** Uniform in [0, 1). *)
let float t =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  r /. 9007199254740992.0 (* 2^53 *)

(** Uniform in [lo, hi). *)
let float_range t lo hi = lo +. (float t *. (hi -. lo))

let bool t = Int64.logand (next_int64 t) 1L = 1L

(** Standard normal via Box-Muller. *)
let gaussian t =
  let u1 = max 1e-12 (float t) and u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

(** Derive an independent child stream.  Splitmix64 is splittable by
    construction: the child is seeded from the parent's next output, so two
    splits of the same parent state always yield the same pair of streams —
    the property the fuzz harness relies on to keep program {e structure}
    decisions independent of {e constant} decisions while staying replayable
    from one integer seed. *)
let split t = { state = next_int64 t }

(** Pick one element of a non-empty list uniformly. *)
let choose t = function
  | [] -> invalid_arg "Rng.choose: empty list"
  | l -> List.nth l (int t (List.length l))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
