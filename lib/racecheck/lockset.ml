(** Eraser-style lockset engine: the schedule-independent second opinion.

    The vector-clock engine ({!Racecheck.analyze}) replays one concrete
    linearization of the access log; for [dynamic,c] plans its verdict
    depends on where the chunk-dispatch edges fall in that linearization.
    The lockset discipline (Savage et al., {e Eraser: A Dynamic Data Race
    Detector for Multithreaded Programs}) needs no order at all: each
    shadow word carries a {e candidate lockset} — the locks that protected
    {e every} access to it so far — refined by intersection with the locks
    the accessing thread holds.  A word written by one thread and touched
    by another with an empty candidate lockset is racy, whatever the
    interleaving.  Set intersection is commutative and associative and the
    thread/written summaries are sets, so the verdict is a function of the
    access {e multiset}, independent of the chunk-dispatch linearization.

    Two deliberate deviations from classic Eraser, both because one
    parallel segment of an OpenMP loop runs all its logical threads
    concurrently between one fork and one join:

    - {e no initialization suppression}: Eraser stays silent when a word is
      written by its first thread and then read by others (init-then-share
      is benign across thread {e creation}).  Inside a segment there is no
      such ordering — a word written in [Exclusive] state races as soon as
      a second thread touches it;
    - {e segment-scoped shadow state}: fork and join synchronize
      everything, so every word restarts [Virgin] at each segment.

    Lock acquisition is fed from the interpreter's access logs: every
    access carries the [critical]/[atomic] lock ids held when it executed
    ({!Interp.Trace.access.ac_locks}), and the candidate lockset of a word
    is refined by intersection with that held set on {e every} access —
    first touch included, so an unguarded initialization is never hidden.
    A loop whose shared updates all sit under a common [critical] name
    keeps a non-empty candidate lockset and is clean; any bare touch of
    the same word empties it. *)

(** One side of a conflicting pair, as the summary sets record it: the
    first dynamic occurrence of a (thread, site, read/write) combination. *)
type site = {
  k_thread : int;  (** logical thread (worker) of the plan *)
  k_iter : int;  (** iteration index within the parallel segment *)
  k_point : int;
      (** point-iteration child within [k_iter] when the trace carries
          nested (tile → point) structure; [-1] = unstructured *)
  k_write : bool;
  k_loc : string;  (** source location of the load/store site *)
}

type lockset = Universal | Locks of int list  (** sorted lock ids *)

let lockset_empty = function Universal -> false | Locks l -> l = []

(** The per-word state machine (segment-scoped Eraser variant, see above). *)
type state =
  | Virgin
  | Exclusive of { owner : int; written : bool }
  | Shared  (** multiple readers, no write observed *)
  | Shared_modified  (** written and touched by a second thread *)

(** Verdict for one racy shadow word. *)
type word = {
  w_addr : int;
  w_state : state;
  w_lockset : lockset;
  w_pairs : (site * site) list;
      (** cross-thread conflicting site pairs, earlier iteration first,
          deterministic order, capped at {!max_pairs_per_word} *)
  w_total : int;  (** all cross-thread conflicting site pairs, uncapped *)
}

type segment_verdict = {
  g_segment : int;  (** ordinal of the parallel segment in the profile *)
  g_words : word list;  (** racy words only, ascending address *)
}

type result = {
  l_schedule : Runtime.Par_loop.schedule;
  l_workers : int;
  l_racy : segment_verdict list;  (** segments with at least one racy word *)
  l_segments : int;
  l_iterations : int;
  l_accesses : int;
}

let max_pairs_per_word = 8

(** Locks held at [access]: the {!Runtime.Locks} ids of the
    [critical]/[atomic] sections the executing thread was inside when it
    performed the access, as stamped by the interpreter's recording run.
    Replay reassigns iterations to logical threads but never moves an
    access relative to its guarding sections, so the recorded set is the
    true held set under every plan. *)
let locks_held (access : Interp.Trace.access) : int list =
  access.Interp.Trace.ac_locks

let refine ls held =
  match ls with
  | Universal -> Locks held
  | Locks l -> Locks (List.filter (fun x -> List.mem x held) l)

(* per-word bookkeeping during the pass *)
type wrec = {
  mutable r_state : state;
  mutable r_lockset : lockset;
  r_sites : (int * bool * string, site) Hashtbl.t;
      (** (thread, write, loc) -> first occurrence *)
}

let analyze_segment ~schedule ~workers (pt : Interp.Trace.par_trace) :
    word list * int =
  let accs = pt.Interp.Trace.pt_accesses in
  let m = Array.length accs in
  let n_acc = ref 0 in
  if m = 0 || workers = 1 then begin
    (* a single worker runs everything in program order: no races *)
    Array.iter (fun a -> n_acc := !n_acc + Array.length a) accs;
    ([], !n_acc)
  end
  else begin
    let plan = Runtime.Par_loop.plan schedule ~workers ~lo:0 ~hi:m in
    let iter_thread = Array.make m 0 in
    Array.iteri (fun w l -> List.iter (fun i -> iter_thread.(i) <- w) l) plan;
    let shadow : (int, wrec) Hashtbl.t = Hashtbl.create 1024 in
    for i = 0 to m - 1 do
      let t = iter_thread.(i) in
      let points = Interp.Trace.points_of pt i in
      Array.iteri
        (fun k (a : Interp.Trace.access) ->
          incr n_acc;
          let w = a.Interp.Trace.ac_write in
          let r =
            match Hashtbl.find_opt shadow a.Interp.Trace.ac_addr with
            | Some r -> r
            | None ->
              let r =
                { r_state = Virgin; r_lockset = Universal; r_sites = Hashtbl.create 4 }
              in
              Hashtbl.replace shadow a.Interp.Trace.ac_addr r;
              r
          in
          (* candidate lockset: intersect with the held set on every
             access, first touch included — an unguarded write before the
             word is ever shared still empties the candidate set *)
          r.r_lockset <- refine r.r_lockset (locks_held a);
          (* state machine *)
          (match r.r_state with
          | Virgin -> r.r_state <- Exclusive { owner = t; written = w }
          | Exclusive { owner; written } ->
            if owner = t then
              (if w && not written then r.r_state <- Exclusive { owner; written = true })
            else r.r_state <- (if written || w then Shared_modified else Shared)
          | Shared -> if w then r.r_state <- Shared_modified
          | Shared_modified -> ());
          (* summary set: first occurrence per (thread, write, loc) *)
          let key = (t, w, a.Interp.Trace.ac_loc) in
          if not (Hashtbl.mem r.r_sites key) then
            Hashtbl.replace r.r_sites key
              { k_thread = t; k_iter = i;
                k_point = Interp.Trace.point_of points k;
                k_write = w; k_loc = a.Interp.Trace.ac_loc })
        accs.(i)
    done;
    (* verdicts: a word races iff it reached Shared_modified with an empty
       candidate lockset; enumerate the conflicting pairs from the summary
       sets (order-free, hence linearization-independent) *)
    let words = ref [] in
    Hashtbl.iter
      (fun addr r ->
        match r.r_state with
        | Shared_modified when lockset_empty r.r_lockset ->
          let sites =
            Hashtbl.fold (fun _ s acc -> s :: acc) r.r_sites []
            |> List.sort (fun a b ->
                   compare (a.k_iter, a.k_loc, a.k_write, a.k_thread)
                     (b.k_iter, b.k_loc, b.k_write, b.k_thread))
          in
          let arr = Array.of_list sites in
          let total = ref 0 in
          let pairs = ref [] in
          for x = 0 to Array.length arr - 1 do
            for y = x + 1 to Array.length arr - 1 do
              let a = arr.(x) and b = arr.(y) in
              if a.k_thread <> b.k_thread && (a.k_write || b.k_write) then begin
                incr total;
                if List.length !pairs < max_pairs_per_word then pairs := (a, b) :: !pairs
              end
            done
          done;
          if !total > 0 then
            words :=
              {
                w_addr = addr;
                w_state = r.r_state;
                w_lockset = r.r_lockset;
                w_pairs = List.rev !pairs;
                w_total = !total;
              }
              :: !words
        | _ -> ())
      shadow;
    let words = List.sort (fun a b -> compare a.w_addr b.w_addr) !words in
    ((if words = [] then [] else words), !n_acc)
  end

(** Run the lockset discipline over every parallel segment of [profile]
    with the thread assignment of [schedule] × [workers].  [Error] only
    when the profile was produced without access tracing. *)
let analyze ~(schedule : Runtime.Par_loop.schedule) ~workers
    (profile : Interp.Trace.profile) : (result, string) Stdlib.result =
  match profile.Interp.Trace.par_traces with
  | None ->
    Error
      "profile has no access trace: execute with access tracing enabled \
       (Interp.Exec.run ~trace_accesses:true)"
  | Some traces ->
    let workers = max 1 workers in
    let racy = ref [] in
    let n_acc = ref 0 in
    let n_iter = ref 0 in
    List.iteri
      (fun seg pt ->
        n_iter := !n_iter + Array.length pt.Interp.Trace.pt_accesses;
        let words, acc = analyze_segment ~schedule ~workers pt in
        n_acc := !n_acc + acc;
        if words <> [] then racy := { g_segment = seg; g_words = words } :: !racy)
      traces;
    Ok
      {
        l_schedule = schedule;
        l_workers = workers;
        l_racy = List.rev !racy;
        l_segments = List.length traces;
        l_iterations = !n_iter;
        l_accesses = !n_acc;
      }
