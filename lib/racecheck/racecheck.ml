(** Dynamic happens-before data-race detection for parallelized loops.

    The static side of the toolchain proves (via dependence polyhedra and
    Fourier–Motzkin emptiness) that the OpenMP pragmas it emits are safe.
    This module is the {e independent dynamic oracle} for that claim, in the
    ThreadSanitizer tradition: the instrumented interpreter records every
    load/store inside a parallelized loop ({!Interp.Trace.par_trace}), and a
    vector-clock engine replays the log under a concrete worksharing plan
    ({!Runtime.Par_loop.plan}: schedule × workers), reporting every pair of
    conflicting accesses that no happens-before edge orders.

    Happens-before model (exactly OpenMP's, for the loops we generate):
    - loop entry (fork) and exit (join) synchronize everything — distinct
      parallel segments never race, and races never span a segment boundary;
    - iterations assigned to the {e same} logical thread are ordered by
      program order;
    - [static] and [static,c] have {e no} intra-loop synchronization: any
      two iterations on different threads are concurrent;
    - [dynamic,c] dispatches chunks off a shared counter; the
      fetch-and-add is a release/acquire RMW, so chunk fetches form a
      chain.  A worker incorporates its finished chunks into the chain at
      its next fetch, which orders chunks at distance ≥ workers — the
      soundness direction (we may miss an ordering a lucky interleaving
      provides, we never invent one; detected races are real for some
      interleaving).

    Scalars held in frame slots (loop-local variables, privatized induction
    variables) are registers, not memory — exactly OpenMP's privatization
    semantics for variables declared inside the parallel body.  Mutated
    {e global} scalars are memory and are tracked. *)

open Support

(** One side of a conflicting pair.  The iteration vector of an access in a
    parallelized loop is its index in the annotated loop (inner loops run
    sequentially inside one iteration). *)
type access_ref = {
  f_thread : int;  (** logical thread (worker) of the plan *)
  f_iter : int;  (** iteration index within the parallel segment *)
  f_write : bool;
  f_loc : string;  (** source location of the load/store site *)
}

type race = {
  x_segment : int;  (** ordinal of the parallel segment in the profile *)
  x_addr : int;
  x_array : string;  (** region label: array/global name, "heap", ... *)
  x_elem : int;  (** element index within the region; -1 if unresolved *)
  x_first : access_ref;  (** the access that came first in the replay *)
  x_second : access_ref;
}

type report = {
  p_schedule : Runtime.Par_loop.schedule;
  p_workers : int;
  p_races : race list;  (** distinct (segment, site-pair) races, capped *)
  p_total : int;  (** every conflicting pair seen, uncapped *)
  p_segments : int;  (** parallel segments analyzed *)
  p_iterations : int;
  p_accesses : int;
}

let max_reported_races = 32

let clean r = r.p_total = 0

let schedule_name = function
  | Runtime.Par_loop.Static -> "static"
  | Runtime.Par_loop.Static_chunk c -> Printf.sprintf "static,%d" c
  | Runtime.Par_loop.Dynamic c -> Printf.sprintf "dynamic,%d" c

(** Parse "static", "static,C" or "dynamic,C" (the pragma clause syntax). *)
let schedule_of_string s : (Runtime.Par_loop.schedule, string) result =
  let s = String.trim (String.lowercase_ascii s) in
  let bad () =
    Error (Printf.sprintf "unknown schedule %S (expected static, static,C or dynamic,C)" s)
  in
  match String.index_opt s ',' with
  | None -> (
    match s with
    | "static" -> Ok Runtime.Par_loop.Static
    | "dynamic" -> Ok (Runtime.Par_loop.Dynamic 1)
    | _ -> bad ())
  | Some i -> (
    let kind = String.trim (String.sub s 0 i) in
    let chunk = String.sub s (i + 1) (String.length s - i - 1) in
    match (kind, int_of_string_opt (String.trim chunk)) with
    | "static", Some c when c > 0 -> Ok (Runtime.Par_loop.Static_chunk c)
    | "dynamic", Some c when c > 0 -> Ok (Runtime.Par_loop.Dynamic c)
    | _ -> bad ())

(** The plan matrix the oracle and CLI default to. *)
let default_cores = [ 1; 4; 16; 64 ]

let default_schedules =
  [ Runtime.Par_loop.Static; Runtime.Par_loop.Static_chunk 4; Runtime.Par_loop.Dynamic 1 ]

(* ------------------------------------------------------------------ *)
(* Vector-clock engine *)

let dummy_ref = { f_thread = -1; f_iter = -1; f_write = false; f_loc = "" }

(* Shadow state per address: the last write epoch plus, per thread, the
   latest read epoch since that write (FastTrack's read "vector"). *)
type cell = {
  mutable w_thread : int;  (* -1 = no write yet *)
  mutable w_clock : int;
  mutable w_ref : access_ref;
  r_clocks : int array;  (* 0 = no read *)
  r_refs : access_ref array;
}

let vc_join into from =
  for i = 0 to Array.length into - 1 do
    if from.(i) > into.(i) then into.(i) <- from.(i)
  done

let untraced_error =
  "profile has no access trace: execute with access tracing enabled \
   (Interp.Exec.run ~trace_accesses:true)"

(** Replay [profile]'s parallel access logs under the worksharing plan of
    [schedule] × [workers] and report all data races.  [Error] only when the
    profile was produced without access tracing. *)
let analyze ~(schedule : Runtime.Par_loop.schedule) ~workers
    (profile : Interp.Trace.profile) : (report, string) result =
  match profile.Interp.Trace.par_traces with
  | None -> Error untraced_error
  | Some traces ->
    let workers = max 1 workers in
    let regions = profile.Interp.Trace.regions in
    let races = ref [] in
    let n_stored = ref 0 in
    let total = ref 0 in
    let n_acc = ref 0 in
    let n_iter = ref 0 in
    let seen = Hashtbl.create 64 in
    let record seg addr (first : access_ref) (second : access_ref) =
      incr total;
      let key = (seg, first.f_loc, second.f_loc, first.f_write, second.f_write) in
      if (not (Hashtbl.mem seen key)) && !n_stored < max_reported_races then begin
        Hashtbl.replace seen key ();
        incr n_stored;
        let label, elem =
          match Interp.Mem.locate_region regions addr with
          | Some r ->
            ( r.Interp.Mem.rg_label,
              (addr - r.Interp.Mem.rg_base) / r.Interp.Mem.rg_elem_bytes )
          | None -> ("<unknown>", -1)
        in
        races :=
          {
            x_segment = seg;
            x_addr = addr;
            x_array = label;
            x_elem = elem;
            x_first = first;
            x_second = second;
          }
          :: !races
      end
    in
    List.iteri
      (fun seg (pt : Interp.Trace.par_trace) ->
        let accs = pt.Interp.Trace.pt_accesses in
        let m = Array.length accs in
        n_iter := !n_iter + m;
        if m = 0 || workers = 1 then
          (* a single worker runs everything in program order: no races *)
          Array.iter (fun a -> n_acc := !n_acc + Array.length a) accs
        else begin
          let plan = Runtime.Par_loop.plan schedule ~workers ~lo:0 ~hi:m in
          let iter_thread = Array.make m 0 in
          Array.iteri (fun w l -> List.iter (fun i -> iter_thread.(i) <- w) l) plan;
          let vc = Array.init workers (fun _ -> Array.make workers 0) in
          (* the dynamic dispatch counter's clock (release/acquire chain) *)
          let counter_vc = Array.make workers 0 in
          let chunk =
            match schedule with Runtime.Par_loop.Dynamic c -> max 1 c | _ -> 0
          in
          let shadow : (int, cell) Hashtbl.t = Hashtbl.create 1024 in
          (* global iteration order is a valid linearization: each worker's
             iterations appear in its program order, and dynamic chunk
             fetches appear in dispatch order *)
          for i = 0 to m - 1 do
            let t = iter_thread.(i) in
            let c_t = vc.(t) in
            if chunk > 0 && i mod chunk = 0 then begin
              (* fetch_and_add on the shared counter: acquire then release *)
              vc_join c_t counter_vc;
              vc_join counter_vc c_t
            end;
            c_t.(t) <- c_t.(t) + 1;
            let now = c_t.(t) in
            Array.iter
              (fun (a : Interp.Trace.access) ->
                incr n_acc;
                let aref =
                  { f_thread = t; f_iter = i; f_write = a.Interp.Trace.ac_write;
                    f_loc = a.Interp.Trace.ac_loc }
                in
                let addr = a.Interp.Trace.ac_addr in
                let cell =
                  match Hashtbl.find_opt shadow addr with
                  | Some cl -> cl
                  | None ->
                    let cl =
                      {
                        w_thread = -1;
                        w_clock = 0;
                        w_ref = dummy_ref;
                        r_clocks = Array.make workers 0;
                        r_refs = Array.make workers dummy_ref;
                      }
                    in
                    Hashtbl.replace shadow addr cl;
                    cl
                in
                let write_unordered () =
                  cell.w_thread >= 0 && cell.w_thread <> t
                  && cell.w_clock > c_t.(cell.w_thread)
                in
                if a.Interp.Trace.ac_write then begin
                  if write_unordered () then record seg addr cell.w_ref aref;
                  for u = 0 to workers - 1 do
                    if u <> t && cell.r_clocks.(u) > c_t.(u) then
                      record seg addr cell.r_refs.(u) aref
                  done;
                  cell.w_thread <- t;
                  cell.w_clock <- now;
                  cell.w_ref <- aref;
                  Array.fill cell.r_clocks 0 workers 0
                end
                else begin
                  if write_unordered () then record seg addr cell.w_ref aref;
                  cell.r_clocks.(t) <- now;
                  cell.r_refs.(t) <- aref
                end)
              accs.(i)
          done
        end)
      traces;
    Ok
      {
        p_schedule = schedule;
        p_workers = workers;
        p_races = List.rev !races;
        p_total = !total;
        p_segments = List.length traces;
        p_iterations = !n_iter;
        p_accesses = !n_acc;
      }

(** Analyze the whole plan matrix (every schedule at every core count). *)
let analyze_matrix ?(schedules = default_schedules) ?(cores = default_cores)
    (profile : Interp.Trace.profile) : (report list, string) result =
  match profile.Interp.Trace.par_traces with
  | None -> Error untraced_error
  | Some _ ->
    Ok
      (List.concat_map
         (fun schedule ->
           List.map
             (fun workers ->
               match analyze ~schedule ~workers profile with
               | Ok r -> r
               | Error e -> invalid_arg e (* unreachable: trace checked above *))
             cores)
         schedules)

let races_total reports = List.fold_left (fun acc r -> acc + r.p_total) 0 reports

(* ------------------------------------------------------------------ *)
(* Reporting *)

let rw r = if r then "write" else "read"

let describe_race (r : race) =
  Printf.sprintf
    "data race on %s[%d] (segment %d, addr 0x%x): %s at %s in iteration [%d] of thread %d \
     is concurrent with %s at %s in iteration [%d] of thread %d"
    r.x_array r.x_elem r.x_segment r.x_addr (rw r.x_first.f_write) r.x_first.f_loc
    r.x_first.f_iter r.x_first.f_thread (rw r.x_second.f_write) r.x_second.f_loc
    r.x_second.f_iter r.x_second.f_thread

let describe_report (r : report) =
  let header =
    Printf.sprintf
      "racecheck schedule(%s) x %d threads: %s (%d parallel segments, %d iterations, %d accesses)"
      (schedule_name r.p_schedule) r.p_workers
      (if clean r then "no races"
       else
         Printf.sprintf "%d conflicting access pairs (%d distinct sites)" r.p_total
           (List.length r.p_races))
      r.p_segments r.p_iterations r.p_accesses
  in
  String.concat "\n" (header :: List.map (fun x -> "  " ^ describe_race x) r.p_races)

(** Race diagnostics carry the dedicated "race.detected" code, which
    {!Support.Diag.kind_of_code} maps to {!Support.Diag.Race}. *)
let diags_of_report (r : report) : Diag.t list =
  List.map
    (fun x ->
      {
        Diag.severity = Diag.Error;
        code = "race.detected";
        loc = Loc.dummy;
        message =
          Printf.sprintf "[schedule(%s) x %d threads] %s" (schedule_name r.p_schedule)
            r.p_workers (describe_race x);
      })
    r.p_races
