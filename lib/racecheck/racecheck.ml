(** Dynamic happens-before data-race detection for parallelized loops.

    The static side of the toolchain proves (via dependence polyhedra and
    Fourier–Motzkin emptiness) that the OpenMP pragmas it emits are safe.
    This module is the {e independent dynamic oracle} for that claim, in the
    ThreadSanitizer tradition: the instrumented interpreter records every
    load/store inside a parallelized loop ({!Interp.Trace.par_trace}), and a
    vector-clock engine replays the log under a concrete worksharing plan
    ({!Runtime.Par_loop.plan}: schedule × workers), reporting every pair of
    conflicting accesses that no happens-before edge orders.

    Happens-before model (exactly OpenMP's, for the loops we generate):
    - loop entry (fork) and exit (join) synchronize everything — distinct
      parallel segments never race, and races never span a segment boundary;
    - iterations assigned to the {e same} logical thread are ordered by
      program order;
    - [static] and [static,c] have {e no} intra-loop synchronization: any
      two iterations on different threads are concurrent;
    - [dynamic,c] dispatches chunks off a shared counter; the
      fetch-and-add is a release/acquire RMW, so chunk fetches form a
      chain.  A worker incorporates its finished chunks into the chain at
      its next fetch, which orders chunks at distance ≥ workers — the
      soundness direction (we may miss an ordering a lucky interleaving
      provides, we never invent one; detected races are real for some
      interleaving);
    - [critical]/[atomic] sections are mutexes: each lock id carries a
      vector clock, joined into the thread's clock at acquisition and
      republished (followed by a thread-epoch bump) at release.  Lock
      transitions are reconstructed from the held-lock sets the recording
      run stamped on consecutive accesses ({!Interp.Trace.access.ac_locks}).
      The replay linearizes critical sections on the same lock in global
      iteration order — one legal order among many, so (as with the dynamic
      chain) lock edges can hide a conflict a different interleaving
      exposes; the order-free {!Lockset} engine is the second opinion that
      catches those.

    Scalars held in frame slots (loop-local variables, privatized induction
    variables) are registers, not memory — exactly OpenMP's privatization
    semantics for variables declared inside the parallel body.  Mutated
    {e global} scalars are memory and are tracked. *)

open Support

(** Re-export: the Eraser-style engine itself (the library is wrapped, so
    this is the only public path to it). *)
module Lockset = Lockset

(** One side of a conflicting pair.  The iteration vector of an access in a
    parallelized loop is its index in the annotated loop (inner loops run
    sequentially inside one iteration). *)
type access_ref = {
  f_thread : int;  (** logical thread (worker) of the plan *)
  f_iter : int;  (** iteration index within the parallel segment *)
  f_point : int;
      (** point-iteration child within iteration [f_iter] when the trace
          carries nested (tile → point) structure; [-1] = unstructured *)
  f_write : bool;
  f_loc : string;  (** source location of the load/store site *)
}

type race = {
  x_segment : int;  (** ordinal of the parallel segment in the profile *)
  x_addr : int;
  x_array : string;  (** region label: array/global name, "heap", ... *)
  x_elem : int;  (** element index within the region; -1 if unresolved *)
  x_first : access_ref;  (** the access that came first in the replay *)
  x_second : access_ref;
}

(** Which discipline produced a report: the vector-clock happens-before
    replay, or the linearization-independent {!Lockset} second opinion. *)
type engine = Hb | Lockset_engine

let engine_name = function Hb -> "hb" | Lockset_engine -> "lockset"

type report = {
  p_engine : engine;
  p_schedule : Runtime.Par_loop.schedule;
  p_workers : int;
  p_races : race list;  (** distinct (segment, site-pair) races, capped *)
  p_total : int;  (** every conflicting pair seen, uncapped *)
  p_words : (int * int) list;
      (** every racy (segment, addr) shadow word, sorted, {e uncapped} —
          the unit of cross-engine comparison (site pairs differ
          legitimately: FastTrack forgets elder writes) *)
  p_segments : int;  (** parallel segments analyzed *)
  p_iterations : int;
  p_accesses : int;
}

let max_reported_races = 32

let clean r = r.p_total = 0

let schedule_name = function
  | Runtime.Par_loop.Static -> "static"
  | Runtime.Par_loop.Static_chunk c -> Printf.sprintf "static,%d" c
  | Runtime.Par_loop.Dynamic c -> Printf.sprintf "dynamic,%d" c
  | Runtime.Par_loop.Guided c -> Printf.sprintf "guided,%d" c

(** Parse "static", "static,C", "dynamic,C" or "guided,C" (the pragma
    clause syntax). *)
let schedule_of_string s : (Runtime.Par_loop.schedule, string) result =
  let s = String.trim (String.lowercase_ascii s) in
  let bad () =
    Error
      (Printf.sprintf
         "unknown schedule %S (expected static, static,C, dynamic,C or guided,C)"
         s)
  in
  match String.index_opt s ',' with
  | None -> (
    match s with
    | "static" -> Ok Runtime.Par_loop.Static
    | "dynamic" -> Ok (Runtime.Par_loop.Dynamic 1)
    | "guided" -> Ok (Runtime.Par_loop.Guided 1)
    | _ -> bad ())
  | Some i -> (
    let kind = String.trim (String.sub s 0 i) in
    let chunk = String.sub s (i + 1) (String.length s - i - 1) in
    match (kind, int_of_string_opt (String.trim chunk)) with
    | "static", Some c when c > 0 -> Ok (Runtime.Par_loop.Static_chunk c)
    | "dynamic", Some c when c > 0 -> Ok (Runtime.Par_loop.Dynamic c)
    | "guided", Some c when c > 0 -> Ok (Runtime.Par_loop.Guided c)
    | _ -> bad ())

(** The plan matrix the oracle and CLI default to.  Guided's grant
    boundaries are a pure function of (floor, workers, n) — see
    {!Runtime.Par_loop.guided_grants} — so its plan replays exactly like
    the static ones; like [Static_chunk], it gets no inter-chunk ordering
    edges (the work-stealing runtime provides none). *)
let default_cores = [ 1; 4; 16; 64 ]

let default_schedules =
  [
    Runtime.Par_loop.Static;
    Runtime.Par_loop.Static_chunk 4;
    Runtime.Par_loop.Dynamic 1;
    Runtime.Par_loop.Guided 1;
  ]

(* ------------------------------------------------------------------ *)
(* Vector-clock engine *)

let dummy_ref = { f_thread = -1; f_iter = -1; f_point = -1; f_write = false; f_loc = "" }

(* Shadow state per address: the last write epoch plus, per thread, the
   latest read epoch since that write (FastTrack's read "vector"). *)
type cell = {
  mutable w_thread : int;  (* -1 = no write yet *)
  mutable w_clock : int;
  mutable w_ref : access_ref;
  r_clocks : int array;  (* 0 = no read *)
  r_refs : access_ref array;
}

let vc_join into from =
  for i = 0 to Array.length into - 1 do
    if from.(i) > into.(i) then into.(i) <- from.(i)
  done

let untraced_error =
  "profile has no access trace: execute with access tracing enabled \
   (Interp.Exec.run ~trace_accesses:true)"

(* ------------------------------------------------------------------ *)
(* Inspector verdicts.  A runtime-checked loop (see [Poly.Gather] and the
   [[inspector:…]] pragma marker) logs one {!Interp.Trace.insp_verdict} per
   execution, keyed by the ordinal of its parallel segment. *)

(** Ordinals of the parallel segments whose inspector verdict was a
    conflict: the runtime check forced those loops onto the sequential
    fallback. *)
let conflict_segments (profile : Interp.Trace.profile) : int list =
  List.filter_map
    (fun (v : Interp.Trace.insp_verdict) ->
      if v.Interp.Trace.iv_disjoint then None else Some v.Interp.Trace.iv_par)
    profile.Interp.Trace.insp

(** Ordinals of the segments the inspector declared runtime-disjoint (and
    therefore eligible for parallel dispatch). *)
let disjoint_segments (profile : Interp.Trace.profile) : int list =
  List.filter_map
    (fun (v : Interp.Trace.insp_verdict) ->
      if v.Interp.Trace.iv_disjoint then Some v.Interp.Trace.iv_par else None)
    profile.Interp.Trace.insp

(** Blank the access logs of conflict-verdict segments: those loops really
    executed sequentially (the fallback), so replaying their iterations
    under a parallel plan would report races that cannot happen.  Segment
    ordinals and the trace list structure are kept, so per-segment
    attribution downstream stays aligned.  Disjoint-verdict segments are
    deliberately {e not} masked — they dispatched (or were eligible to),
    and a race found in one is exactly the inspector/HB engine
    disagreement {!verdict} reports. *)
let mask_conflicts (profile : Interp.Trace.profile) : Interp.Trace.profile =
  match (profile.Interp.Trace.par_traces, conflict_segments profile) with
  | None, _ | _, [] -> profile
  | Some traces, conflicted ->
    let traces =
      List.mapi
        (fun seg (pt : Interp.Trace.par_trace) ->
          if List.mem seg conflicted then
            { pt with Interp.Trace.pt_accesses = [||]; pt_points = [||] }
          else pt)
        traces
    in
    { profile with Interp.Trace.par_traces = Some traces }

(** Replay [profile]'s parallel access logs under the worksharing plan of
    [schedule] × [workers] and report all data races.  [Error] only when the
    profile was produced without access tracing. *)
let analyze ~(schedule : Runtime.Par_loop.schedule) ~workers
    (profile : Interp.Trace.profile) : (report, string) result =
  let profile = mask_conflicts profile in
  match profile.Interp.Trace.par_traces with
  | None -> Error untraced_error
  | Some traces ->
    let workers = max 1 workers in
    let regions = profile.Interp.Trace.regions in
    let races = ref [] in
    let n_stored = ref 0 in
    let total = ref 0 in
    let n_acc = ref 0 in
    let n_iter = ref 0 in
    let seen = Hashtbl.create 64 in
    let words = Hashtbl.create 64 in
    let record seg addr (first : access_ref) (second : access_ref) =
      incr total;
      Hashtbl.replace words (seg, addr) ();
      let key = (seg, first.f_loc, second.f_loc, first.f_write, second.f_write) in
      if (not (Hashtbl.mem seen key)) && !n_stored < max_reported_races then begin
        Hashtbl.replace seen key ();
        incr n_stored;
        let label, elem =
          match Interp.Mem.locate_region regions addr with
          | Some r ->
            ( r.Interp.Mem.rg_label,
              (addr - r.Interp.Mem.rg_base) / r.Interp.Mem.rg_elem_bytes )
          | None -> ("<unknown>", -1)
        in
        races :=
          {
            x_segment = seg;
            x_addr = addr;
            x_array = label;
            x_elem = elem;
            x_first = first;
            x_second = second;
          }
          :: !races
      end
    in
    List.iteri
      (fun seg (pt : Interp.Trace.par_trace) ->
        let accs = pt.Interp.Trace.pt_accesses in
        let m = Array.length accs in
        n_iter := !n_iter + m;
        if m = 0 || workers = 1 then
          (* a single worker runs everything in program order: no races *)
          Array.iter (fun a -> n_acc := !n_acc + Array.length a) accs
        else begin
          let plan = Runtime.Par_loop.plan schedule ~workers ~lo:0 ~hi:m in
          let iter_thread = Array.make m 0 in
          Array.iteri (fun w l -> List.iter (fun i -> iter_thread.(i) <- w) l) plan;
          let vc = Array.init workers (fun _ -> Array.make workers 0) in
          (* the dynamic dispatch counter's clock (release/acquire chain) *)
          let counter_vc = Array.make workers 0 in
          let chunk =
            match schedule with Runtime.Par_loop.Dynamic c -> max 1 c | _ -> 0
          in
          (* per-lock clocks for the critical/atomic release→acquire edges *)
          let lock_vcs : (int, int array) Hashtbl.t = Hashtbl.create 8 in
          let lock_vc l =
            match Hashtbl.find_opt lock_vcs l with
            | Some v -> v
            | None ->
              let v = Array.make workers 0 in
              Hashtbl.replace lock_vcs l v;
              v
          in
          let shadow : (int, cell) Hashtbl.t = Hashtbl.create 1024 in
          (* global iteration order is a valid linearization: each worker's
             iterations appear in its program order, and dynamic chunk
             fetches appear in dispatch order *)
          for i = 0 to m - 1 do
            let t = iter_thread.(i) in
            let c_t = vc.(t) in
            if chunk > 0 && i mod chunk = 0 then begin
              (* fetch_and_add on the shared counter: acquire then release *)
              vc_join c_t counter_vc;
              vc_join counter_vc c_t
            end;
            c_t.(t) <- c_t.(t) + 1;
            (* held-lock set of the previous access: transitions between
               consecutive stamps reconstruct the acquire/release points *)
            let held = ref [] in
            let release l =
              (* publish the thread's clock on the lock, then open a fresh
                 epoch: later accesses of [t] are no longer covered by the
                 lock's chain *)
              Array.blit c_t 0 (lock_vc l) 0 workers;
              c_t.(t) <- c_t.(t) + 1
            in
            let transition locks =
              List.iter (fun l -> if not (List.mem l locks) then release l) !held;
              List.iter
                (fun l -> if not (List.mem l !held) then vc_join c_t (lock_vc l))
                locks;
              held := locks
            in
            let points = Interp.Trace.points_of pt i in
            Array.iteri
              (fun k (a : Interp.Trace.access) ->
                incr n_acc;
                transition a.Interp.Trace.ac_locks;
                let aref =
                  { f_thread = t; f_iter = i;
                    f_point = Interp.Trace.point_of points k;
                    f_write = a.Interp.Trace.ac_write;
                    f_loc = a.Interp.Trace.ac_loc }
                in
                let addr = a.Interp.Trace.ac_addr in
                let cell =
                  match Hashtbl.find_opt shadow addr with
                  | Some cl -> cl
                  | None ->
                    let cl =
                      {
                        w_thread = -1;
                        w_clock = 0;
                        w_ref = dummy_ref;
                        r_clocks = Array.make workers 0;
                        r_refs = Array.make workers dummy_ref;
                      }
                    in
                    Hashtbl.replace shadow addr cl;
                    cl
                in
                let write_unordered () =
                  cell.w_thread >= 0 && cell.w_thread <> t
                  && cell.w_clock > c_t.(cell.w_thread)
                in
                if a.Interp.Trace.ac_write then begin
                  if write_unordered () then record seg addr cell.w_ref aref;
                  for u = 0 to workers - 1 do
                    if u <> t && cell.r_clocks.(u) > c_t.(u) then
                      record seg addr cell.r_refs.(u) aref
                  done;
                  cell.w_thread <- t;
                  cell.w_clock <- c_t.(t);
                  cell.w_ref <- aref;
                  Array.fill cell.r_clocks 0 workers 0
                end
                else begin
                  if write_unordered () then record seg addr cell.w_ref aref;
                  cell.r_clocks.(t) <- c_t.(t);
                  cell.r_refs.(t) <- aref
                end)
              accs.(i);
            (* sections still open at the last access close before the
               iteration ends *)
            transition []
          done
        end)
      traces;
    Ok
      {
        p_engine = Hb;
        p_schedule = schedule;
        p_workers = workers;
        p_races = List.rev !races;
        p_total = !total;
        p_words =
          List.sort compare (Hashtbl.fold (fun w () acc -> w :: acc) words []);
        p_segments = List.length traces;
        p_iterations = !n_iter;
        p_accesses = !n_acc;
      }

(** Analyze the whole plan matrix (every schedule at every core count). *)
let analyze_matrix ?(schedules = default_schedules) ?(cores = default_cores)
    (profile : Interp.Trace.profile) : (report list, string) result =
  match profile.Interp.Trace.par_traces with
  | None -> Error untraced_error
  | Some _ ->
    Ok
      (List.concat_map
         (fun schedule ->
           List.map
             (fun workers ->
               match analyze ~schedule ~workers profile with
               | Ok r -> r
               | Error e -> invalid_arg e (* unreachable: trace checked above *))
             cores)
         schedules)

let races_total reports = List.fold_left (fun acc r -> acc + r.p_total) 0 reports

(* ------------------------------------------------------------------ *)
(* Lockset engine (second opinion) and cross-checking *)

let locate regions addr =
  match Interp.Mem.locate_region regions addr with
  | Some r ->
    (r.Interp.Mem.rg_label, (addr - r.Interp.Mem.rg_base) / r.Interp.Mem.rg_elem_bytes)
  | None -> ("<unknown>", -1)

let ref_of_site (s : Lockset.site) =
  {
    f_thread = s.Lockset.k_thread;
    f_iter = s.Lockset.k_iter;
    f_point = s.Lockset.k_point;
    f_write = s.Lockset.k_write;
    f_loc = s.Lockset.k_loc;
  }

(** Run the {!Lockset} discipline and package its verdict in the same
    [report] shape the vector-clock engine produces, so downstream
    consumers (CLI, oracle, diagnostics) are engine-agnostic. *)
let analyze_lockset ~(schedule : Runtime.Par_loop.schedule) ~workers
    (profile : Interp.Trace.profile) : (report, string) result =
  let profile = mask_conflicts profile in
  match Lockset.analyze ~schedule ~workers profile with
  | Error e -> Error e
  | Ok res ->
    let regions = profile.Interp.Trace.regions in
    let races = ref [] in
    let n_stored = ref 0 in
    let total = ref 0 in
    let words = ref [] in
    List.iter
      (fun (sv : Lockset.segment_verdict) ->
        let seg = sv.Lockset.g_segment in
        List.iter
          (fun (w : Lockset.word) ->
            total := !total + w.Lockset.w_total;
            words := (seg, w.Lockset.w_addr) :: !words;
            List.iter
              (fun (a, b) ->
                if !n_stored < max_reported_races then begin
                  incr n_stored;
                  let label, elem = locate regions w.Lockset.w_addr in
                  races :=
                    {
                      x_segment = seg;
                      x_addr = w.Lockset.w_addr;
                      x_array = label;
                      x_elem = elem;
                      x_first = ref_of_site a;
                      x_second = ref_of_site b;
                    }
                    :: !races
                end)
              w.Lockset.w_pairs)
          sv.Lockset.g_words)
      res.Lockset.l_racy;
    Ok
      {
        p_engine = Lockset_engine;
        p_schedule = schedule;
        p_workers = workers;
        p_races = List.rev !races;
        p_total = !total;
        p_words = List.sort compare !words;
        p_segments = res.Lockset.l_segments;
        p_iterations = res.Lockset.l_iterations;
        p_accesses = res.Lockset.l_accesses;
      }

let describe_word regions (seg, addr) =
  let label, elem = locate regions addr in
  Printf.sprintf "%s[%d] (segment %d, addr 0x%x)" label elem seg addr

(** Ordinals of the parallel segments whose traces carry lock events: HB's
    single-linearization replay of those segments can legitimately order
    critical sections the lockset discipline treats as concurrent, so
    {!cross_check} relaxes the equality direction for them. *)
let locked_segments (profile : Interp.Trace.profile) : int list =
  match profile.Interp.Trace.par_traces with
  | None -> []
  | Some traces ->
    List.concat
      (List.mapi
         (fun seg (pt : Interp.Trace.par_trace) ->
           let uses =
             Array.exists
               (fun iter ->
                 Array.exists
                   (fun (a : Interp.Trace.access) -> a.Interp.Trace.ac_locks <> [])
                   iter)
               pt.Interp.Trace.pt_accesses
           in
           if uses then [ seg ] else [])
         traces)

(** Cross-check the two engines' verdicts for one plan, comparing their
    {e racy shadow-word sets} (site pairs differ legitimately: FastTrack
    forgets elder writes once a newer one is ordered after them).

    Soundness invariant: lockset is strictly more conservative than the
    happens-before replay — every ordering edge HB uses (program order
    within a thread, the dynamic chunk chain, the lock chain) is absent
    from the lockset model, and two accesses with a common lock are always
    chain-ordered in HB's linearization — so on every plan
    [hb_words ⊆ lockset_words]; an HB-only word means one of the engines
    is wrong.  Under [static]/[static,C] with no lock events there are
    {e no} intra-loop happens-before edges either, so the two verdicts
    must be {e equal}; a lockset-only word there is also a bug.  Under
    [dynamic,C], or in a segment carrying lock events ([locked], from
    {!locked_segments}), a lockset-only word is the engine's designed
    catch: a race the chunk chain or the replay's arbitrary critical-
    section order happens to hide from HB — still a race (it fails the
    run via the lockset report) but not an engine disagreement.

    Returns the disagreement descriptions; non-empty = hard failure. *)
let cross_check ?(locked = []) ~regions ~(hb : report) ~(lockset : report) () :
    string list =
  let diff a b = List.filter (fun w -> not (List.mem w b)) a in
  let plan =
    Printf.sprintf "schedule(%s) x %d threads" (schedule_name hb.p_schedule) hb.p_workers
  in
  let hb_only = diff hb.p_words lockset.p_words in
  let ls_only = diff lockset.p_words hb.p_words in
  let dynamic =
    match hb.p_schedule with Runtime.Par_loop.Dynamic _ -> true | _ -> false
  in
  List.map
    (fun w ->
      Printf.sprintf
        "engine disagreement [%s]: hb flags %s as racy but lockset does not \
         (violates hb ⊆ lockset)"
        plan (describe_word regions w))
    hb_only
  @ List.filter_map
      (fun ((seg, _) as w) ->
        if dynamic || List.mem seg locked then None
        else
          Some
            (Printf.sprintf
               "engine disagreement [%s]: lockset flags %s as racy but hb does \
                not (the static plan has no intra-loop ordering, verdicts must \
                match)"
               plan (describe_word regions w)))
      ls_only

(** Inspector/HB cross-check for one happens-before report: a racy shadow
    word inside a segment the inspector declared runtime-disjoint means one
    of the two dynamic models is wrong — the inspector proved the
    iterations' footprints pairwise disjoint, so no unordered conflicting
    pair can exist.  Same hard-failure severity as an hb/lockset split. *)
let inspector_check (profile : Interp.Trace.profile) (hb : report) : string list =
  match disjoint_segments profile with
  | [] -> []
  | disjoint ->
    List.filter_map
      (fun ((seg, _) as w) ->
        if List.mem seg disjoint then
          Some
            (Printf.sprintf
               "engine disagreement [schedule(%s) x %d threads]: the inspector \
                declared segment %d runtime-disjoint but hb flags %s as racy"
               (schedule_name hb.p_schedule) hb.p_workers seg
               (describe_word profile.Interp.Trace.regions w))
        else None)
      (List.sort_uniq compare hb.p_words)

(** Which engine(s) a racecheck run consults. *)
type engine_choice = Only of engine | Both

let engine_choice_of_string s : (engine_choice, string) result =
  match String.trim (String.lowercase_ascii s) with
  | "hb" -> Ok (Only Hb)
  | "lockset" -> Ok (Only Lockset_engine)
  | "both" -> Ok Both
  | s -> Error (Printf.sprintf "unknown engine %S (expected hb, lockset or both)" s)

let engine_choice_name = function Only e -> engine_name e | Both -> "both"

(** One plan's combined verdict: the per-engine reports that ran, plus any
    cross-engine disagreements (each one a hard failure). *)
type verdict = {
  v_schedule : Runtime.Par_loop.schedule;
  v_workers : int;
  v_hb : report option;
  v_lockset : report option;
  v_disagreements : string list;
}

let verdict_racy v =
  let racy = function Some r -> not (clean r) | None -> false in
  racy v.v_hb || racy v.v_lockset

let verdict_reports v = List.filter_map (fun r -> r) [ v.v_hb; v.v_lockset ]

(** Analyze one plan with the chosen engine(s) and cross-check. *)
let verdict ?(engine = Both) ~schedule ~workers profile : (verdict, string) result =
  let run eng =
    match eng with
    | Hb -> analyze ~schedule ~workers profile
    | Lockset_engine -> analyze_lockset ~schedule ~workers profile
  in
  let ( let* ) = Result.bind in
  match engine with
  | Only e ->
    let* r = run e in
    let hb, ls = match e with Hb -> (Some r, None) | Lockset_engine -> (None, Some r) in
    Ok
      {
        v_schedule = schedule;
        v_workers = workers;
        v_hb = hb;
        v_lockset = ls;
        v_disagreements =
          (match hb with Some r -> inspector_check profile r | None -> []);
      }
  | Both ->
    let* hb = run Hb in
    let* ls = run Lockset_engine in
    Ok
      {
        v_schedule = schedule;
        v_workers = workers;
        v_hb = Some hb;
        v_lockset = Some ls;
        v_disagreements =
          cross_check
            ~locked:(locked_segments profile)
            ~regions:profile.Interp.Trace.regions ~hb ~lockset:ls ()
          @ inspector_check profile hb;
      }

(** The whole plan matrix through {!verdict}. *)
let verdict_matrix ?(engine = Both) ?(schedules = default_schedules)
    ?(cores = default_cores) (profile : Interp.Trace.profile) :
    (verdict list, string) result =
  match profile.Interp.Trace.par_traces with
  | None -> Error untraced_error
  | Some _ ->
    Ok
      (List.concat_map
         (fun schedule ->
           List.map
             (fun workers ->
               match verdict ~engine ~schedule ~workers profile with
               | Ok v -> v
               | Error e -> invalid_arg e (* unreachable: trace checked above *))
             cores)
         schedules)

let verdicts_racy vs = List.exists verdict_racy vs

let verdicts_disagreements vs = List.concat_map (fun v -> v.v_disagreements) vs

(* ------------------------------------------------------------------ *)
(* Reporting *)

let rw r = if r then "write" else "read"

(* iteration vector: [tile.point] when the trace carries nested structure *)
let iter_vec (a : access_ref) =
  if a.f_point >= 0 then Printf.sprintf "[%d.%d]" a.f_iter a.f_point
  else Printf.sprintf "[%d]" a.f_iter

let describe_race (r : race) =
  Printf.sprintf
    "data race on %s[%d] (segment %d, addr 0x%x): %s at %s in iteration %s of thread %d \
     is concurrent with %s at %s in iteration %s of thread %d"
    r.x_array r.x_elem r.x_segment r.x_addr (rw r.x_first.f_write) r.x_first.f_loc
    (iter_vec r.x_first) r.x_first.f_thread (rw r.x_second.f_write) r.x_second.f_loc
    (iter_vec r.x_second) r.x_second.f_thread

let describe_report (r : report) =
  let header =
    Printf.sprintf
      "racecheck[%s] schedule(%s) x %d threads: %s (%d parallel segments, %d iterations, %d accesses)"
      (engine_name r.p_engine) (schedule_name r.p_schedule) r.p_workers
      (if clean r then "no races"
       else
         Printf.sprintf "%d conflicting access pairs (%d distinct sites)" r.p_total
           (List.length r.p_races))
      r.p_segments r.p_iterations r.p_accesses
  in
  String.concat "\n" (header :: List.map (fun x -> "  " ^ describe_race x) r.p_races)

(** Race diagnostics carry the dedicated "race.detected" code, which
    {!Support.Diag.kind_of_code} maps to {!Support.Diag.Race}. *)
let diags_of_report (r : report) : Diag.t list =
  List.map
    (fun x ->
      {
        Diag.severity = Diag.Error;
        code = "race.detected";
        loc = Loc.dummy;
        message =
          Printf.sprintf "[%s: schedule(%s) x %d threads] %s" (engine_name r.p_engine)
            (schedule_name r.p_schedule) r.p_workers (describe_race x);
      })
    r.p_races
