(** Sharded concurrent caches: how unrelated serve clients share warm state.

    Keys are {!Digest.string} MD5s of [mode-fingerprint ^ NUL ^ source] (see
    {!Server}), so two clients submitting the same translation unit under
    the same pipeline spec hit the same entry while different specs of the
    same source cannot collide.  The table is split into [2^k] shards, each
    behind its own mutex; the shard index comes from the first key byte, so
    concurrent requests for unrelated keys rarely contend on a lock.

    [find_or_compute] runs the producer {e outside} the shard lock — a
    compile can take milliseconds and must not serialize every other lookup
    landing in the same shard.  The cost is a benign race: two concurrent
    misses on one key both compute, and the second insert is dropped in
    favor of the first (so every client of a key observes the same value
    forever).  Hit/miss counters are atomics, read by [{"cmd":"stats"}]. *)

type 'v t = {
  shards : (string, 'v) Hashtbl.t array;
  locks : Mutex.t array;
  hits : int Atomic.t;
  misses : int Atomic.t;
}

let default_shards = 16

let create ?(shards = default_shards) () =
  (* round up to a power of two so a mask can pick the shard *)
  let n =
    let rec up k = if k >= shards then k else up (k * 2) in
    up 1
  in
  {
    shards = Array.init n (fun _ -> Hashtbl.create 16);
    locks = Array.init n (fun _ -> Mutex.create ());
    hits = Atomic.make 0;
    misses = Atomic.make 0;
  }

let shard_of t key =
  let i = if key = "" then 0 else Char.code key.[0] land (Array.length t.shards - 1) in
  (t.shards.(i), t.locks.(i))

(** Stable cache key for a (pipeline spec, source) pair. *)
let key ~fingerprint ~source = Digest.string (fingerprint ^ "\x00" ^ source)

let find_opt t k =
  let table, lock = shard_of t k in
  Mutex.lock lock;
  let v = Hashtbl.find_opt table k in
  Mutex.unlock lock;
  (match v with None -> Atomic.incr t.misses | Some _ -> Atomic.incr t.hits);
  v

(** [find_or_compute t k produce] returns the cached value for [k], or runs
    [produce ()] (outside any lock) and caches its result.  If [produce]
    raises, nothing is cached and the exception propagates — failures that
    are not pure functions of the key (an unreadable file) must not poison
    the cache. *)
let find_or_compute t k produce =
  let table, lock = shard_of t k in
  Mutex.lock lock;
  let cached = Hashtbl.find_opt table k in
  Mutex.unlock lock;
  match cached with
  | Some v ->
    Atomic.incr t.hits;
    v
  | None ->
    Atomic.incr t.misses;
    let v = produce () in
    Mutex.lock lock;
    let v =
      (* first insert wins: a racing computation of the same key must not
         install a second (equal but physically distinct) value *)
      match Hashtbl.find_opt table k with
      | Some prior -> prior
      | None ->
        Hashtbl.add table k v;
        v
    in
    Mutex.unlock lock;
    v

let hits t = Atomic.get t.hits

let misses t = Atomic.get t.misses

let length t =
  Array.fold_left (fun acc table -> acc + Hashtbl.length table) 0 t.shards
