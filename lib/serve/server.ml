(** [purec serve]: the compile-and-run daemon (DESIGN.md §12).

    One long-lived {!Runtime.Pool} executes every request: the reader
    thread parses JSONL lines, admits them through a bounded {!Queue}
    (overflow → an immediate [busy] reply, never a stalled protocol loop),
    and hands each to the pool via {!Runtime.Pool.submit}; replies are
    written in completion order, matched to requests by [id].

    Isolation and sharing are split deliberately:

    - {e Mutable} interpreter state is per-request: every execution builds
      a fresh [rt] (own DLS key, allocator, output buffer, per-site memos
      — the PR 3 striping machinery), so concurrent requests cannot
      cross-contaminate output or memo state.
    - {e Immutable} results are shared: a sharded translation-unit cache
      (spec-fingerprint × source → compiled AST) and a reply memo
      (full request fingerprint → reply body) let unrelated clients reuse
      warm state, and identical re-submissions skip the pipeline entirely.

    The daemon survives anything a request does: driver-level failures
    become diagnostic replies, and an exception escaping a handler is
    caught at the job boundary and turned into an [internal] error reply
    for that client only. *)

open Support

type t = {
  jobs : int;  (** requested worker parallelism ([--jobs]) *)
  queue_depth : int;
  pool : Runtime.Pool.t;
  queue : (Protocol.request * float) Queue.t;  (** (request, admission time) *)
  tu : Toolchain.Chain.compiled Cache.t;
  memo : (int * string * string list) Cache.t;
      (** request fingerprint → (exit, stdout, diags) *)
  out_mutex : Mutex.t;  (** one reply line at a time *)
  served_ok : int Atomic.t;
  served_error : int Atomic.t;
  served_busy : int Atomic.t;
}

(** [create ~jobs ~queue_depth ()] spawns the pool once; it lives until
    {!shutdown}.  The pool is sized [jobs + 1] so [jobs] workers exist
    besides the reader (the reader never executes requests; it must stay
    responsive to keep admission control honest).  [Runtime.Pool] caps
    workers at 4× the recommended domain count. *)
let create ?(jobs = 2) ?(queue_depth = 64) () =
  let jobs = max 1 jobs in
  {
    jobs;
    queue_depth;
    pool = Runtime.Pool.create (jobs + 1);
    queue = Queue.create ~capacity:queue_depth;
    tu = Cache.create ();
    memo = Cache.create ();
    out_mutex = Mutex.create ();
    served_ok = Atomic.make 0;
    served_error = Atomic.make 0;
    served_busy = Atomic.make 0;
  }

(** Tear down queue and pool.  Idempotent (so is {!Runtime.Pool.shutdown}). *)
let shutdown t =
  Queue.close t.queue;
  Runtime.Pool.quiesce t.pool;
  Runtime.Pool.shutdown t.pool

let count_reply t (status : Protocol.status) =
  Atomic.incr
    (match status with
    | Protocol.Ok_ -> t.served_ok
    | Protocol.Error_ -> t.served_error
    | Protocol.Busy -> t.served_busy)

let emit_reply t ~emit (r : Protocol.reply) =
  count_reply t r.Protocol.rp_status;
  Mutex.lock t.out_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.out_mutex)
    (fun () -> emit (Protocol.reply_to_line r))

let now_ms () = Unix.gettimeofday () *. 1000.

let status_of_exit exit_code =
  if exit_code = Toolchain.Chain.exit_ok then Protocol.Ok_ else Protocol.Error_

let reply_of_outcome ?extra ~id ~t0 (o : Driver.outcome) : Protocol.reply =
  Protocol.make_reply ?extra ~id ~status:(status_of_exit o.Driver.o_exit)
    ~exit_code:o.Driver.o_exit ~stdout:o.Driver.o_stdout ~diags:o.Driver.o_diags
    ~elapsed_ms:(now_ms () -. t0) ()

(* ------------------------------------------------------------------ *)
(* Request fingerprints: the reply-memo key.  Only commands that are pure
   functions of their fingerprint are memoized — compile/run/racecheck of
   the resolved source text, and seeded fuzz campaigns.  File paths are
   resolved to content BEFORE fingerprinting, so editing a file busts the
   memo naturally, and an unreadable file never reaches it. *)

let cmd_fingerprint (rq : Protocol.request) : string option =
  let spec_fp = Toolchain.Chain.mode_spec_fingerprint rq.Protocol.rq_spec in
  match rq.Protocol.rq_cmd with
  | Protocol.Compile { dump } -> Some (Printf.sprintf "compile;dump=%b;%s" dump spec_fp)
  | Protocol.Run { cores; backend; no_model } ->
    (* the reply memo must distinguish the fast variant (its stdout omits
       the model sections); the TU cache underneath still shares the
       compiled AST because [compile]'s fingerprint never includes it *)
    Some
      (Printf.sprintf "run;cores=%s;backend=%s;tg=%b;%s"
         (String.concat "," (List.map string_of_int cores))
         backend rq.Protocol.rq_tile_grain
         (Toolchain.Chain.mode_spec_fingerprint ~no_model rq.Protocol.rq_spec))
  | Protocol.Racecheck { engine; schedules; rc_cores; inject } ->
    Some
      (Printf.sprintf "rc;engine=%s;scheds=%s;cores=%s;inject=%b;tg=%b;%s" engine
         (String.concat "," schedules)
         (String.concat "," (List.map string_of_int rc_cores))
         inject rq.Protocol.rq_tile_grain spec_fp)
  | Protocol.Fuzz { seed; count; fz_inject; fz_racecheck; fz_dump; shrink } ->
    Some
      (Printf.sprintf "fuzz;seed=%d;count=%d;inject=%b;rc=%b;dump=%b;shrink=%b" seed count
         fz_inject fz_racecheck fz_dump shrink)
  | Protocol.Batch _ | Protocol.Stats -> None

(* ------------------------------------------------------------------ *)
(* Handlers *)

(** Execute one already-admitted request (on a pool worker).  Total: every
    failure becomes an outcome. *)
let execute_request t (rq : Protocol.request) : Driver.outcome =
  let spec = rq.Protocol.rq_spec in
  let body () =
    match rq.Protocol.rq_cmd with
    | Protocol.Compile { dump } ->
      let source = Driver.read_source (Option.get rq.Protocol.rq_source) in
      (source, fun () -> Driver.compile_request ~tu:t.tu ~spec ~dump source)
    | Protocol.Run { cores; backend; no_model } ->
      let source = Driver.read_source (Option.get rq.Protocol.rq_source) in
      ( source,
        fun () ->
          Driver.run_request ~tu:t.tu ~spec ~cores ~backend
            ~tile_grain:rq.Protocol.rq_tile_grain ~no_model source )
    | Protocol.Racecheck { engine; schedules; rc_cores; inject } ->
      let src = Option.get rq.Protocol.rq_source in
      let source = Driver.read_source src in
      ( source,
        fun () ->
          Driver.racecheck_request ~name:(Driver.source_name src) ~spec ~engine ~schedules
            ~rc_cores ~inject ~tile_grain:rq.Protocol.rq_tile_grain source )
    | Protocol.Fuzz { seed; count; fz_inject; fz_racecheck; fz_dump; shrink } ->
      ( "",
        fun () ->
          Driver.fuzz_request ~seed ~count ~inject:fz_inject ~racecheck:fz_racecheck
            ~dump:fz_dump ~shrink )
    | Protocol.Batch _ | Protocol.Stats ->
      (* dispatched before admission; see [serve] *)
      assert false
  in
  match body () with
  | source, run -> (
    match cmd_fingerprint rq with
    | None -> run ()
    | Some fp ->
      let exit_code, stdout, diags =
        Cache.find_or_compute t.memo
          (Cache.key ~fingerprint:fp ~source)
          (fun () ->
            let o = run () in
            (o.Driver.o_exit, o.Driver.o_stdout, o.Driver.o_diags))
      in
      { Driver.o_exit = exit_code; o_stdout = stdout; o_diags = diags })
  | exception Diag.Fatal d ->
    (* [read_source] on an unreadable path: protocol stage, exit 6, and
       deliberately never memoized (the file may appear later) *)
    {
      Driver.o_exit = Toolchain.Chain.classify_errors [ d ];
      o_stdout = "";
      o_diags = [ Driver.render_diag d ];
    }

(** The catch-all around a worker job: the daemon must survive any request,
    so an escaping exception is this client's problem only. *)
let guarded_outcome t rq : Driver.outcome =
  try execute_request t rq
  with exn ->
    {
      Driver.o_exit = Toolchain.Chain.exit_error;
      o_stdout = "";
      o_diags = [ "internal: request died with " ^ Printexc.to_string exn ];
    }

let process_next t ~emit () =
  match Queue.pop t.queue with
  | None -> ()
  | Some (rq, t0) ->
    let o = guarded_outcome t rq in
    emit_reply t ~emit (reply_of_outcome ~id:rq.Protocol.rq_id ~t0 o)

(* Dispatch a job to the pool, or run it inline when the pool has no
   workers (nobody else would ever pop). *)
let dispatch t job = if Runtime.Pool.workers t.pool = 0 then job () else Runtime.Pool.submit t.pool job

(* ------------------------------------------------------------------ *)
(* stats *)

let cache_stats_json c ~entries =
  Protocol.Obj
    [
      ("hits", Protocol.Int (Cache.hits c));
      ("misses", Protocol.Int (Cache.misses c));
      ("entries", Protocol.Int entries);
    ]

let stats_reply t ~id ~t0 : Protocol.reply =
  let extra =
    [
      ( "requests",
        Protocol.Int
          (Atomic.get t.served_ok + Atomic.get t.served_error + Atomic.get t.served_busy) );
      ("ok", Protocol.Int (Atomic.get t.served_ok));
      ("error", Protocol.Int (Atomic.get t.served_error));
      ("busy", Protocol.Int (Atomic.get t.served_busy));
      ("jobs", Protocol.Int t.jobs);
      ("queue_depth", Protocol.Int t.queue_depth);
      ("queue_high_water", Protocol.Int (Queue.high_water t.queue));
      (* fork/join batches (run + nested forks) and streamed submissions
         count on separate channels — see Runtime.Pool *)
      ("pool_batches", Protocol.Int (Runtime.Pool.batches t.pool));
      ("pool_streamed", Protocol.Int (Runtime.Pool.streamed t.pool));
      ("pool_steals", Protocol.Int (Runtime.Pool.steals t.pool));
      ("tu_cache", cache_stats_json t.tu ~entries:(Cache.length t.tu));
      ("reply_memo", cache_stats_json t.memo ~entries:(Cache.length t.memo));
      ("interp_instances", Protocol.Int (Interp.Compile.rts_created ()));
      ("interp_instances_fast", Protocol.Int (Interp.Compile.rts_created_fast ()));
      (* runtime-check verdicts across every execution this daemon ran *)
      ("inspector_disjoint", Protocol.Int (Interp.Compile.insp_disjoint_total ()));
      ("inspector_conflict", Protocol.Int (Interp.Compile.insp_conflict_total ()));
    ]
  in
  Protocol.make_reply ~extra ~id ~status:Protocol.Ok_ ~exit_code:Toolchain.Chain.exit_ok
    ~stdout:"" ~diags:[] ~elapsed_ms:(now_ms () -. t0) ()

(* ------------------------------------------------------------------ *)
(* batch *)

(** Fan one batch over the pool: one sub-job per file, each a [run] under
    the batch's spec.  No job ever blocks on another — the countdown's
    last finisher assembles the aggregate and writes the reply, so batches
    cannot deadlock the pool however few workers it has. *)
let handle_batch t ~emit (rq : Protocol.request) (files : string list) ~t0 =
  let files = Array.of_list files in
  let n = Array.length files in
  let results = Array.make n None in
  let remaining = Atomic.make n in
  let finish () =
    let per_file =
      Array.to_list
        (Array.mapi
           (fun i o ->
             let o =
               match o with
               | Some o -> o
               | None ->
                 (* unreachable: every sub-job writes its slot *)
                 {
                   Driver.o_exit = Toolchain.Chain.exit_error;
                   o_stdout = "";
                   o_diags = [ "internal: missing batch slot" ];
                 }
             in
             Protocol.Obj
               [
                 ("file", Protocol.Str files.(i));
                 ("exit", Protocol.Int o.Driver.o_exit);
                 ("stdout", Protocol.Str o.Driver.o_stdout);
                 ("diags", Protocol.Arr (List.map (fun d -> Protocol.Str d) o.Driver.o_diags));
               ])
           results)
    in
    let exits =
      Array.to_list
        (Array.map (function Some o -> o.Driver.o_exit | None -> 1) results)
    in
    let ok = List.length (List.filter (fun e -> e = 0) exits) in
    let agg_exit = match List.filter (fun e -> e <> 0) exits with [] -> 0 | e :: _ -> e in
    let extra =
      [
        ("files", Protocol.Arr per_file);
        ( "aggregate",
          Protocol.Obj
            [
              ("total", Protocol.Int n);
              ("ok", Protocol.Int ok);
              ("failed", Protocol.Int (n - ok));
            ] );
      ]
    in
    emit_reply t ~emit
      (Protocol.make_reply ~extra ~id:rq.Protocol.rq_id ~status:(status_of_exit agg_exit)
         ~exit_code:agg_exit ~stdout:"" ~diags:[] ~elapsed_ms:(now_ms () -. t0) ())
  in
  Array.iteri
    (fun i file ->
      dispatch t (fun () ->
          let sub =
            {
              rq with
              Protocol.rq_cmd =
                Protocol.Run
                  { cores = Protocol.cli_default_cores; backend = "gcc"; no_model = false };
              rq_source = Some (Protocol.From_file file);
            }
          in
          results.(i) <- Some (guarded_outcome t sub);
          if Atomic.fetch_and_add remaining (-1) = 1 then finish ()))
    files

(* ------------------------------------------------------------------ *)
(* The protocol loop *)

let protocol_error_reply ~id ~t0 (d : Diag.t) : Protocol.reply =
  Protocol.make_reply ~id ~status:Protocol.Error_
    ~exit_code:(Toolchain.Chain.classify_errors [ d ])
    ~stdout:"" ~diags:[ Driver.render_diag d ] ~elapsed_ms:(now_ms () -. t0) ()

let busy_reply ~id ~t0 : Protocol.reply =
  Protocol.make_reply ~id ~status:Protocol.Busy ~exit_code:Toolchain.Chain.exit_protocol_error
    ~stdout:""
    ~diags:[ "server busy: request queue is full, retry later" ]
    ~elapsed_ms:(now_ms () -. t0) ()

(* the id of a line that parsed as JSON but failed request validation is
   still echoable; a line that failed JSON parsing has none *)
let id_of_line line =
  match Protocol.of_string line with
  | Protocol.Obj _ as obj -> (
    match Protocol.field obj "id" with Some v -> v | None -> Protocol.Null)
  | _ -> Protocol.Null
  | exception _ -> Protocol.Null

(** Run the protocol loop: read lines from [next] until it returns [None],
    write reply lines through [emit] (serialized, completion order).
    Returns once every admitted request has been answered.  The server
    stays usable afterwards — callers can run several scripts against one
    [t] — until {!shutdown}. *)
let serve t ~(next : unit -> string option) ~(emit : string -> unit) =
  let rec loop () =
    match next () with
    | None -> ()
    | Some line ->
      let t0 = now_ms () in
      (if String.trim line <> "" then
         match Protocol.request_of_line line with
         | exception Diag.Fatal d ->
           emit_reply t ~emit (protocol_error_reply ~id:(id_of_line line) ~t0 d)
         | rq -> (
           match rq.Protocol.rq_cmd with
           | Protocol.Stats ->
             (* answered by the reader, bypassing the queue: introspection
                must work on an overloaded server *)
             emit_reply t ~emit (stats_reply t ~id:rq.Protocol.rq_id ~t0)
           | Protocol.Batch { files } -> handle_batch t ~emit rq files ~t0
           | _ -> (
             match Queue.try_push t.queue (rq, t0) with
             | `Ok -> dispatch t (process_next t ~emit)
             | `Overflow | `Closed ->
               emit_reply t ~emit (busy_reply ~id:rq.Protocol.rq_id ~t0))));
      loop ()
  in
  loop ();
  (* all replies out before returning: batch countdowns included, since
     their sub-jobs are pool jobs too *)
  Runtime.Pool.quiesce t.pool

(** Feed [lines] through the protocol loop and collect the reply lines
    (completion order).  The harness behind the serve tests and the
    throughput bench. *)
let run_script t (lines : string list) : string list =
  let remaining = ref lines in
  let out = ref [] in
  let next () =
    match !remaining with
    | [] -> None
    | l :: rest ->
      remaining := rest;
      Some l
  in
  (* emit is called under [out_mutex]; the ref is safe *)
  let emit line = out := line :: !out in
  serve t ~next ~emit;
  List.rev !out

(** Serve stdin → stdout: the [purec serve] daemon loop. *)
let stdio t =
  let next () = In_channel.input_line stdin in
  let emit line =
    print_string line;
    print_newline ();
    flush stdout
  in
  serve t ~next ~emit
