(** A bounded MPMC queue: the serve daemon's admission control.

    The reader thread [try_push]es accepted requests and pool workers [pop]
    them.  The bound is the back-pressure knob ([purec serve
    --queue-depth]): when the queue is full the daemon answers [busy]
    immediately instead of buffering without limit or blocking the protocol
    loop — an overloaded server must keep reading, or clients stall on
    write and the failure mode becomes a distributed deadlock instead of a
    clean retry signal.

    (Shadows [Stdlib.Queue] inside the [serve] library; the implementation
    names it explicitly.) *)

type 'a t = {
  capacity : int;
  items : 'a Stdlib.Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
  mutable high_water : int;  (** max queue length ever observed *)
}

let create ~capacity =
  {
    capacity = max 0 capacity;
    items = Stdlib.Queue.create ();
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    closed = false;
    high_water = 0;
  }

(** Non-blocking enqueue: [`Overflow] when the bound is reached (the caller
    replies [busy]), [`Closed] after {!close}. *)
let try_push t x =
  Mutex.lock t.mutex;
  let result =
    if t.closed then `Closed
    else if Stdlib.Queue.length t.items >= t.capacity then `Overflow
    else begin
      Stdlib.Queue.push x t.items;
      let len = Stdlib.Queue.length t.items in
      if len > t.high_water then t.high_water <- len;
      Condition.signal t.nonempty;
      `Ok
    end
  in
  Mutex.unlock t.mutex;
  result

(** Blocking dequeue; [None] once the queue is closed and drained. *)
let pop t =
  Mutex.lock t.mutex;
  while Stdlib.Queue.is_empty t.items && not t.closed do
    Condition.wait t.nonempty t.mutex
  done;
  let result =
    if Stdlib.Queue.is_empty t.items then None else Some (Stdlib.Queue.pop t.items)
  in
  Mutex.unlock t.mutex;
  result

(** Close the queue: poppers drain what is queued, then get [None];
    pushers get [`Closed].  Idempotent. *)
let close t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex

let length t =
  Mutex.lock t.mutex;
  let n = Stdlib.Queue.length t.items in
  Mutex.unlock t.mutex;
  n

let high_water t =
  Mutex.lock t.mutex;
  let n = t.high_water in
  Mutex.unlock t.mutex;
  n
