(** The serve wire protocol: JSONL requests and replies (DESIGN.md §12).

    One JSON object per line in, one JSON object per line out:

    {v
    → {"id": "r1", "cmd": "run", "file": "test/reduction_smoke.c", "mode": "manual"}
    ← {"id": "r1", "status": "ok", "exit": 0, "stdout": "...", "diags": [], "elapsed_ms": 3.2}
    v}

    The JSON reader/printer is hand-rolled: the toolchain deliberately has
    no JSON dependency, and the protocol needs only the plain scalar /
    array / object subset.  Malformed input raises {!Support.Diag.Fatal}
    with a [proto.*] code, which {!Toolchain.Chain.classify_errors} maps
    to exit 6 — protocol failures are classified like every other failure
    stage, not ad-hoc. *)

open Support

(* ------------------------------------------------------------------ *)
(* JSON values *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

let proto_error fmt = Diag.fatal ~code:"proto.request" fmt

(* ------------------------------------------------------------------ *)
(* Printing *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec print_json b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (string_of_bool v)
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f ->
    (* %.17g round-trips every float but prints integral values bare
       ("3" not "3."), which is still valid JSON *)
    Buffer.add_string b (Printf.sprintf "%.17g" f)
  | Str s -> escape_string b s
  | Arr items ->
    Buffer.add_char b '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char b ',';
        print_json b item)
      items;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        escape_string b k;
        Buffer.add_char b ':';
        print_json b v)
      fields;
    Buffer.add_char b '}'

let to_string (j : json) : string =
  let b = Buffer.create 256 in
  print_json b j;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing: a plain recursive-descent scanner over the line *)

type cursor = { text : string; mutable pos : int }

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let parse_fail c fmt =
  Fmt.kstr (fun msg -> proto_error "invalid JSON at offset %d: %s" c.pos msg) fmt

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      true
    | _ -> false
  do
    ()
  done

let expect c ch =
  match peek c with
  | Some k when k = ch -> advance c
  | Some k -> parse_fail c "expected '%c', found '%c'" ch k
  | None -> parse_fail c "expected '%c', found end of input" ch

let parse_literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.text && String.sub c.text c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else parse_fail c "unrecognized literal"

(* \uXXXX escapes are decoded to UTF-8 (surrogate pairs are not paired:
   protocol payloads are C source and diagnostics, all ASCII in practice) *)
let utf8_of_code b code =
  if code < 0x80 then Buffer.add_char b (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> parse_fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
      | None -> parse_fail c "unterminated escape"
      | Some esc ->
        advance c;
        (match esc with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'u' ->
          if c.pos + 4 > String.length c.text then parse_fail c "truncated \\u escape";
          let hex = String.sub c.text c.pos 4 in
          (match int_of_string_opt ("0x" ^ hex) with
          | Some code ->
            c.pos <- c.pos + 4;
            utf8_of_code b code
          | None -> parse_fail c "invalid \\u escape %S" hex)
        | e -> parse_fail c "unknown escape '\\%c'" e));
      loop ()
    | Some ch ->
      advance c;
      Buffer.add_char b ch;
      loop ()
  in
  loop ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while match peek c with Some ch when is_num_char ch -> advance c; true | _ -> false do
    ()
  done;
  let lit = String.sub c.text start (c.pos - start) in
  match int_of_string_opt lit with
  | Some n -> Int n
  | None -> (
    match float_of_string_opt lit with
    | Some f -> Float f
    | None -> parse_fail c "invalid number %S" lit)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> parse_fail c "empty input"
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws c;
        let key = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        fields := (key, v) :: !fields;
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          members ()
        | Some '}' -> advance c
        | _ -> parse_fail c "expected ',' or '}' in object"
      in
      members ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      Arr []
    end
    else begin
      let items = ref [] in
      let rec elements () =
        let v = parse_value c in
        items := v :: !items;
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          elements ()
        | Some ']' -> advance c
        | _ -> parse_fail c "expected ',' or ']' in array"
      in
      elements ();
      Arr (List.rev !items)
    end
  | Some '"' -> Str (parse_string c)
  | Some 't' -> parse_literal c "true" (Bool true)
  | Some 'f' -> parse_literal c "false" (Bool false)
  | Some 'n' -> parse_literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> parse_fail c "unexpected character '%c'" ch

(** Parse one JSON value from a line.  Trailing garbage after the value is
    a protocol error: every line must be exactly one object. *)
let of_string (s : string) : json =
  let c = { text = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then parse_fail c "trailing garbage after value";
  v

(* ------------------------------------------------------------------ *)
(* Field accessors (all raise [proto.request] on type mismatch) *)

let field obj key =
  match obj with Obj fields -> List.assoc_opt key fields | _ -> None

let get_string key = function
  | Some (Str s) -> s
  | Some _ -> proto_error "field %S must be a string" key
  | None -> proto_error "missing required field %S" key

let opt_string key = function
  | Some (Str s) -> Some s
  | Some Null | None -> None
  | Some _ -> proto_error "field %S must be a string" key

let opt_bool ~default key = function
  | Some (Bool b) -> b
  | Some Null | None -> default
  | Some _ -> proto_error "field %S must be a boolean" key

let opt_int key = function
  | Some (Int n) -> Some n
  | Some Null | None -> None
  | Some _ -> proto_error "field %S must be an integer" key

let opt_int_default ~default key v =
  match opt_int key v with Some n -> n | None -> default

let opt_int_list key = function
  | Some (Arr items) ->
    Some
      (List.map
         (function Int n -> n | _ -> proto_error "field %S must be an integer array" key)
         items)
  | Some Null | None -> None
  | Some _ -> proto_error "field %S must be an integer array" key

let opt_string_list key = function
  | Some (Arr items) ->
    Some
      (List.map
         (function Str s -> s | _ -> proto_error "field %S must be a string array" key)
         items)
  | Some Null | None -> None
  | Some _ -> proto_error "field %S must be a string array" key

(* ------------------------------------------------------------------ *)
(* Requests *)

(** Where a request's C source comes from: a path the server reads
    ([proto.unreadable] if it cannot) or inline text. *)
type source = From_file of string | Inline of string

type cmd =
  | Compile of { dump : bool }
  | Run of { cores : int list; backend : string; no_model : bool }
  | Racecheck of {
      engine : string;
      schedules : string list;
      rc_cores : int list;
      inject : bool;
    }
  | Fuzz of {
      seed : int;
      count : int;
      fz_inject : bool;
      fz_racecheck : bool;
      fz_dump : bool;
      shrink : bool;
    }
  | Batch of { files : string list }
  | Stats

type request = {
  rq_id : json;  (** echoed verbatim in the reply; any scalar the client picked *)
  rq_cmd : cmd;
  rq_source : source option;  (** required by compile/run/racecheck *)
  rq_spec : Toolchain.Chain.mode_spec;
  rq_tile_grain : bool;
}

(* Defaults mirror the one-shot CLI flags exactly: a request omitting every
   option must produce the same bytes as the bare CLI invocation. *)
let cli_default_cores = [ 1; 2; 4; 8; 16; 32; 64 ]

let mode_of_string = function
  | "pure" -> `Pure
  | "seq" -> `Seq
  | "pluto" -> `Pluto
  | "manual" -> `Manual
  | other -> proto_error "unknown mode %S (expected pure|seq|pluto|manual)" other

let spec_of_obj obj : Toolchain.Chain.mode_spec =
  {
    Toolchain.Chain.ms_mode =
      (match opt_string "mode" (field obj "mode") with
      | Some m -> mode_of_string m
      | None -> `Pure);
    ms_sica = opt_bool ~default:false "sica" (field obj "sica");
    ms_tile = opt_int "tile" (field obj "tile");
    ms_schedule = opt_string "schedule" (field obj "schedule");
    ms_inject = opt_bool ~default:false "inject" (field obj "inject");
    ms_inspector = opt_bool ~default:true "inspector" (field obj "inspector");
  }

let source_of_obj obj : source option =
  match (opt_string "file" (field obj "file"), opt_string "source" (field obj "source")) with
  | Some _, Some _ -> proto_error "give either \"file\" or \"source\", not both"
  | Some f, None -> Some (From_file f)
  | None, Some s -> Some (Inline s)
  | None, None -> None

let request_of_json (j : json) : request =
  (match j with Obj _ -> () | _ -> proto_error "request must be a JSON object");
  let id = match field j "id" with Some v -> v | None -> Null in
  let cmd_name = get_string "cmd" (field j "cmd") in
  let cmd =
    match cmd_name with
    | "compile" -> Compile { dump = opt_bool ~default:false "dump" (field j "dump") }
    | "run" ->
      Run
        {
          cores =
            (match opt_int_list "cores" (field j "cores") with
            | Some l when l <> [] -> l
            | _ -> cli_default_cores);
          backend =
            (match opt_string "backend" (field j "backend") with
            | Some ("gcc" | "icc") as b -> Option.get b
            | Some other -> proto_error "unknown backend %S (expected gcc|icc)" other
            | None -> "gcc");
          no_model = opt_bool ~default:false "no_model" (field j "no_model");
        }
    | "racecheck" ->
      Racecheck
        {
          engine = Option.value ~default:"both" (opt_string "engine" (field j "engine"));
          schedules =
            Option.value ~default:[] (opt_string_list "schedules" (field j "schedules"));
          rc_cores = Option.value ~default:[] (opt_int_list "cores" (field j "cores"));
          inject = opt_bool ~default:false "inject" (field j "inject");
        }
    | "fuzz" ->
      Fuzz
        {
          seed = opt_int_default ~default:1 "seed" (field j "seed");
          count = opt_int_default ~default:100 "count" (field j "count");
          fz_inject = opt_bool ~default:false "inject" (field j "inject");
          fz_racecheck = opt_bool ~default:false "racecheck" (field j "racecheck");
          fz_dump = opt_bool ~default:false "dump" (field j "dump");
          shrink = opt_bool ~default:true "shrink" (field j "shrink");
        }
    | "batch" ->
      Batch
        {
          files =
            (match opt_string_list "files" (field j "files") with
            | Some (_ :: _ as files) -> files
            | Some [] | None -> proto_error "batch needs a non-empty \"files\" array");
        }
    | "stats" -> Stats
    | other ->
      proto_error "unknown cmd %S (expected compile|run|racecheck|fuzz|batch|stats)" other
  in
  let source = source_of_obj j in
  (match (cmd, source) with
  | (Compile _ | Run _ | Racecheck _), None ->
    proto_error "cmd %S needs a \"file\" or \"source\"" cmd_name
  | _ -> ());
  {
    rq_id = id;
    rq_cmd = cmd;
    rq_source = source;
    rq_spec = spec_of_obj j;
    rq_tile_grain = opt_bool ~default:true "tile_grain" (field j "tile_grain");
  }

(** Parse one request line.  Any failure — bad JSON, bad field types, an
    unknown cmd — lands here as [Diag.Fatal] with a [proto.*] code. *)
let request_of_line (line : string) : request = request_of_json (of_string line)

(* ------------------------------------------------------------------ *)
(* Replies *)

type status = Ok_ | Error_ | Busy

let status_name = function Ok_ -> "ok" | Error_ -> "error" | Busy -> "busy"

type reply = {
  rp_id : json;
  rp_status : status;
  rp_exit : int;
  rp_stdout : string;
  rp_diags : string list;  (** rendered diagnostics, in report order *)
  rp_elapsed_ms : float;
  rp_extra : (string * json) list;  (** cmd-specific payload (stats, batch) *)
}

let make_reply ?(extra = []) ~id ~status ~exit_code ~stdout ~diags ~elapsed_ms () =
  {
    rp_id = id;
    rp_status = status;
    rp_exit = exit_code;
    rp_stdout = stdout;
    rp_diags = diags;
    rp_elapsed_ms = elapsed_ms;
    rp_extra = extra;
  }

let json_of_reply (r : reply) : json =
  Obj
    ([
       ("id", r.rp_id);
       ("status", Str (status_name r.rp_status));
       ("exit", Int r.rp_exit);
       ("stdout", Str r.rp_stdout);
       ("diags", Arr (List.map (fun d -> Str d) r.rp_diags));
       ("elapsed_ms", Float r.rp_elapsed_ms);
     ]
    @ r.rp_extra)

let reply_to_line (r : reply) : string = to_string (json_of_reply r)

(** The reply with volatile fields zeroed, for byte-comparison in tests:
    [elapsed_ms] is wall time and never reproducible. *)
let reply_significant (j : json) : json =
  match j with
  | Obj fields ->
    Obj (List.map (fun (k, v) -> if k = "elapsed_ms" then (k, Float 0.) else (k, v)) fields)
  | v -> v
