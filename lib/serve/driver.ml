(** Request drivers: execute one protocol command and capture what the
    one-shot CLI would have printed.

    Each driver funnels through the capturable pipeline entry points in
    {!Toolchain.Chain} ([pp_compile_result], [pp_run_report],
    [racecheck_report]) with a buffer-backed formatter, so a serve reply's
    [stdout] is byte-identical to the CLI by construction — both front
    ends run the same printing code, they only differ in where the
    formatter points.

    Every driver returns a total {!outcome}; compile failures
    ({!Toolchain.Chain.Compile_error}, {!Support.Diag.Fatal}) become
    diagnostics plus the classified exit code, never an escaping exception
    — a crashing request must fail its own client only, and the daemon
    treats any exception that does escape a driver as an internal error. *)

open Support

type outcome = {
  o_exit : int;
  o_stdout : string;  (** exactly the CLI's stdout for the equivalent invocation *)
  o_diags : string list;  (** rendered diagnostics (the CLI's stderr) *)
}

let render_diag d = Fmt.str "%a" Diag.pp d

(** Run [f ppf] capturing its formatter output; map compile failures to a
    diagnostic outcome with the classified exit code. *)
let capture (f : Format.formatter -> int) : outcome =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  match f ppf with
  | exit_code ->
    Format.pp_print_flush ppf ();
    { o_exit = exit_code; o_stdout = Buffer.contents buf; o_diags = [] }
  | exception Toolchain.Chain.Compile_error diags ->
    Format.pp_print_flush ppf ();
    {
      o_exit = Toolchain.Chain.classify_errors diags;
      o_stdout = Buffer.contents buf;
      o_diags = List.map render_diag diags;
    }
  | exception Diag.Fatal d ->
    Format.pp_print_flush ppf ();
    {
      o_exit = Toolchain.Chain.classify_errors [ d ];
      o_stdout = Buffer.contents buf;
      o_diags = [ render_diag d ];
    }

(* ------------------------------------------------------------------ *)
(* Sources *)

(** Resolve a request's source to C text.  An unreadable path is a
    protocol-stage failure ([proto.unreadable] → exit 6): the pipeline
    never saw the program, unlike a parse error where it at least received
    source text. *)
let read_source (s : Protocol.source) : string =
  match s with
  | Protocol.Inline text -> text
  | Protocol.From_file path -> (
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error msg -> Diag.fatal ~code:"proto.unreadable" "cannot read %s: %s" path msg)

let source_name = function
  | Protocol.From_file path -> path
  | Protocol.Inline _ -> "<source>"

(* ------------------------------------------------------------------ *)
(* Compilation (with the shared translation-unit cache) *)

(** Compile under [spec], consulting the shared TU cache when given one.
    The cached {!Toolchain.Chain.compiled} is immutable (AST + emitted
    text + outcomes) and every execution builds fresh interpreter state
    from it, so one entry can serve any number of concurrent requests. *)
let compile ?tu ~(spec : Toolchain.Chain.mode_spec) (source : string) :
    Toolchain.Chain.compiled =
  let produce () = Toolchain.Chain.compile ~mode:(Toolchain.Chain.mode_of_spec spec) source in
  match tu with
  | None -> produce ()
  | Some cache ->
    Cache.find_or_compute cache
      (Cache.key ~fingerprint:(Toolchain.Chain.mode_spec_fingerprint spec) ~source)
      produce

(* ------------------------------------------------------------------ *)
(* One driver per protocol command *)

let compile_request ?tu ~spec ~dump source : outcome =
  capture (fun ppf ->
      let c = compile ?tu ~spec source in
      Toolchain.Chain.pp_compile_result ppf ~dump c;
      Toolchain.Chain.exit_ok)

let backend_of_string = function
  | "icc" -> Machine.Config.icc
  | _ -> Machine.Config.gcc

let run_request ?tu ~spec ~cores ~backend ~tile_grain ?(no_model = false) source :
    outcome =
  capture (fun ppf ->
      let c = compile ?tu ~spec source in
      Toolchain.Chain.pp_outcomes ppf c;
      (* sequential execution, as the CLI defaults to: the daemon's
         parallelism is across requests, and per-request determinism is
         what makes replies cacheable and byte-comparable *)
      let profile = Toolchain.Chain.execute ~no_model ~tile_grain c in
      Toolchain.Chain.pp_run_report ppf ~model:(not no_model) ~cores
        ~backend:(backend_of_string backend) profile;
      Toolchain.Chain.exit_ok)

let racecheck_request ~name ~spec ~engine ~schedules ~rc_cores ~inject ~tile_grain source :
    outcome =
  match Racecheck.engine_choice_of_string engine with
  | Error msg ->
    { o_exit = Toolchain.Chain.exit_error; o_stdout = ""; o_diags = [ "racecheck: " ^ msg ] }
  | Ok engine -> (
    let cores = if rc_cores = [] then Racecheck.default_cores else rc_cores in
    let parse_schedules =
      List.fold_left
        (fun acc s ->
          match (acc, Racecheck.schedule_of_string s) with
          | Error _, _ -> acc
          | Ok _, Error msg -> Error msg
          | Ok scheds, Ok sched -> Ok (sched :: scheds))
        (Ok [])
    in
    let schedules =
      if schedules = [] then Ok Racecheck.default_schedules
      else Result.map List.rev (parse_schedules schedules)
    in
    match schedules with
    | Error msg ->
      {
        o_exit = Toolchain.Chain.exit_error;
        o_stdout = "";
        o_diags = [ "racecheck: " ^ msg ];
      }
    | Ok schedules ->
      (* the CLI racechecks files with the pragma clause cleared (the replay
         matrix covers every clause) and [--inject-illegal] folded into the
         mode; mirror both so the bytes match *)
      let spec =
        {
          spec with
          Toolchain.Chain.ms_schedule = None;
          ms_inject = inject || spec.Toolchain.Chain.ms_inject;
        }
      in
      let inject = spec.Toolchain.Chain.ms_inject in
      capture (fun ppf ->
          let racy =
            Toolchain.Chain.racecheck_report ppf ~name ~engine ~schedules ~cores
              ~tile_grain ~inject
              ~mode:(Toolchain.Chain.mode_of_spec spec)
              source
          in
          if racy then Toolchain.Chain.exit_race else Toolchain.Chain.exit_ok))

(** The CLI fuzz campaign, printing its stdout report to [ppf].  [jobs]
    fans cases across domains exactly like [purec fuzz --jobs]; the report
    is byte-identical for every value (campaign results are buffered and
    replayed in seed order). *)
let fuzz_campaign ppf ~seed ~count ~inject ~racecheck ~dump ~shrink ~jobs : int =
  let on_case (case : Fuzzgen.Fuzz.case_result) =
    if dump then
      Fmt.pf ppf "===== seed %d =====@.%s@." case.Fuzzgen.Fuzz.c_seed
        case.Fuzzgen.Fuzz.c_source;
    if not (Fuzzgen.Oracle.passed case.Fuzzgen.Fuzz.c_report) then begin
      Fmt.pf ppf "seed %d: FAILED (replay: purec fuzz --seed %d --count 1%s%s)@."
        case.Fuzzgen.Fuzz.c_seed case.Fuzzgen.Fuzz.c_seed
        (if inject then " --inject-illegal" else "")
        (if racecheck then " --racecheck" else "");
      List.iter
        (fun f -> Fmt.pf ppf "  %s@." (Fuzzgen.Oracle.describe f))
        case.Fuzzgen.Fuzz.c_report.Fuzzgen.Oracle.r_failures;
      match case.Fuzzgen.Fuzz.c_shrunk with
      | Some src -> Fmt.pf ppf "--- minimized reproducer ---@.%s@." src
      | None -> ()
    end
  in
  let result = Fuzzgen.Fuzz.campaign ~inject ~racecheck ~shrink ~on_case ~jobs ~seed ~count () in
  let nfail = List.length result.Fuzzgen.Fuzz.k_failed in
  Fmt.pf ppf "fuzz: %d programs, %d configurations each, %d mismatches@."
    result.Fuzzgen.Fuzz.k_count result.Fuzzgen.Fuzz.k_configs nfail;
  Fuzzgen.Fuzz.campaign_exit_code result

let fuzz_request ~seed ~count ~inject ~racecheck ~dump ~shrink : outcome =
  match
    capture (fun ppf ->
        (* one domain: the daemon's pool parallelizes across requests, not
           inside one fuzz campaign *)
        fuzz_campaign ppf ~seed ~count ~inject ~racecheck ~dump ~shrink ~jobs:1)
  with
  | outcome -> outcome
  | exception Fuzzgen.Fuzz.Roundtrip_error msg ->
    {
      o_exit = Toolchain.Chain.exit_error;
      o_stdout = "";
      o_diags = [ "fuzz: internal round-trip failure: " ^ msg ];
    }
