(** The end-to-end compiler chain of paper Fig. 1:

    {v
    C file → PC-PrePro → GCC-E → PC-CC (purity + scop marking)
           → polycc (PluTo / PluTo-SICA) → PC-PosPro → backend
    v}

    Our backend is the instrumented interpreter ({!Interp.Exec}) instead of
    GCC, but every source-to-source stage emits real C text along the way
    (inspectable via {!compiled.stage_sources}). *)

open Support

exception Compile_error of Diag.t list

(* ------------------------------------------------------------------ *)
(* CLI exit codes.  [purec] distinguishes the failure stages so scripts
   (and the fuzz harness) can tell a malformed input from a program the
   purity verifier rejects. *)

let exit_ok = 0

let exit_error = 1  (** runtime faults and other non-compile failures *)

let exit_parse_error = 2  (** lexer/parser/preprocessor rejections *)

let exit_purity_error = 3  (** purity verification or scop-marking rejections *)

let exit_fuzz_mismatch = 4  (** the differential fuzz oracle found a divergence *)

let exit_race = 5  (** the dynamic race detector found conflicting accesses *)

let exit_protocol_error = 6
(** serve protocol/IO failures: a malformed JSONL request, an unreadable
    source file named by a request (see {!Serve.Protocol}) *)

let exit_of_kind : Diag.kind -> int = function
  | Diag.Purity -> exit_purity_error
  | Diag.Race -> exit_race
  | Diag.Fuzz -> exit_fuzz_mismatch
  | Diag.Parse -> exit_parse_error
  | Diag.Protocol -> exit_protocol_error
  | Diag.Generic -> exit_error

(** Map the diagnostics of a failed run to the process exit code.  The
    classification is total over {!Diag.kind}: every error code maps to
    exactly one kind, and the kinds are ranked by how much of the pipeline
    the input survived — purity/scop rejections win over race reports
    (a race means the transform committed), races win over fuzz
    divergences, fuzz over parse, parse over protocol (a parse error means
    the request at least delivered readable source), and anything left is
    [exit_error]. *)
let classify_errors (diags : Diag.t list) : int =
  let kinds =
    List.filter_map
      (fun d -> if d.Diag.severity = Diag.Error then Some (Diag.kind_of d) else None)
      diags
  in
  let has k = List.mem k kinds in
  if has Diag.Purity then exit_purity_error
  else if has Diag.Race then exit_race
  else if has Diag.Fuzz then exit_fuzz_mismatch
  else if has Diag.Parse then exit_parse_error
  else if has Diag.Protocol then exit_protocol_error
  else exit_error

type compiled = {
  c_ast : Cfront.Ast.program;  (** the program the backend executes *)
  c_emitted : string;  (** final C text after PC-PosPro *)
  c_outcomes : Pluto.outcome list;  (** per-scop polyhedral results *)
  c_diags : Diag.t list;
  c_stage_sources : (string * string) list;  (** stage name → source text *)
  c_scops : int;  (** number of scop regions marked *)
}

type mode =
  | Sequential  (** no transformation at all: the paper's baseline *)
  | Pure_chain of (Pluto.config -> Pluto.config)  (** the full chain of Fig. 1 *)
  | Plain_pluto of (Pluto.config -> Pluto.config)
      (** PluTo/PluTo-SICA on manually prepared code (manual scop markers) *)
  | Manual_omp  (** hand-written OpenMP pragmas in the source, no polycc *)

let fail_if_errors reporter =
  if Diag.has_errors reporter then raise (Compile_error (Diag.errors reporter))

let parse_and_check ~reporter source =
  (* PC-PrePro: strip system includes *)
  let stripped = Cpp.Pc_prepro.strip source in
  (* GCC-E: expand macros and quoted includes *)
  let cpp_env = Cpp.Preproc.create ~reporter () in
  let preprocessed = Cpp.Preproc.run cpp_env stripped.Cpp.Pc_prepro.source in
  fail_if_errors reporter;
  let program = Cfront.Parser.program_of_string ~reporter preprocessed in
  let _env = Sema.Typecheck.check_program ~reporter program in
  fail_if_errors reporter;
  (stripped, preprocessed, program)

(** Run the configured chain on C source text. *)
let compile ?(mode = Sequential) (source : string) : compiled =
  let reporter = Diag.create_reporter () in
  let stripped, preprocessed, program = parse_and_check ~reporter source in
  let stages = ref [ ("gcc-E", preprocessed); ("pc-prepro", stripped.Cpp.Pc_prepro.source) ] in
  let finish ast outcomes scops =
    (* the interpreter executes [ast] with the [unit N] attribution tags
       intact (the race detector maps them back to outcomes); user-facing C
       text has them stripped *)
    let emitted =
      Pluto.strip_unit_tags
        (Cpp.Pc_prepro.reinsert stripped (Cfront.Ast_printer.program_to_string ast))
    in
    stages := ("pc-pospro", emitted) :: !stages;
    {
      c_ast = ast;
      c_emitted = emitted;
      c_outcomes = outcomes;
      c_diags = Diag.diagnostics reporter;
      c_stage_sources = List.rev !stages;
      c_scops = scops;
    }
  in
  match mode with
  | Sequential -> finish program [] 0
  | Manual_omp ->
    (* verify purity (the annotations are still checked) and lower *)
    let _registry = Purity.Purity_check.check_program ~reporter program in
    fail_if_errors reporter;
    let lowered = Purity.Lowering.lower program in
    stages := ("pc-cc", Cfront.Ast_printer.program_to_string lowered) :: !stages;
    finish lowered [] 0
  | Plain_pluto adjust ->
    (* no purity stage: PluTo sees the raw (manually marked) code *)
    let config = adjust Pluto.default_config in
    let transformed, outcomes = Pluto.run ~config program in
    stages :=
      ("polycc", Pluto.strip_unit_tags (Cfront.Ast_printer.program_to_string transformed))
      :: !stages;
    finish transformed outcomes 0
  | Pure_chain adjust ->
    (* PC-CC: purity verification + scop marking *)
    let registry = Purity.Purity_check.check_program ~reporter program in
    fail_if_errors reporter;
    let marked = Purity.Scop_marker.mark ~registry ~reporter program in
    fail_if_errors reporter;
    let scops = Purity.Scop_marker.count_scops marked in
    stages := ("pc-cc", Cfront.Ast_printer.program_to_string marked) :: !stages;
    (* polycc with pure-call hiding; access metadata of the pure functions
       feeds the SICA tile model (paper §3.3 future work) *)
    let summaries = Purity.Fn_metadata.summarize_program marked in
    let config =
      adjust
        {
          Pluto.default_config with
          hide_pure_calls = Some registry;
          fn_summaries = summaries;
        }
    in
    let transformed, outcomes = Pluto.run ~config marked in
    stages :=
      ("polycc", Pluto.strip_unit_tags (Cfront.Ast_printer.program_to_string transformed))
      :: !stages;
    (* lowering pure away, as the classic backend requires *)
    let lowered = Purity.Lowering.lower transformed in
    finish lowered outcomes scops

(** The simulated cache hierarchy paired with the scaled problem sizes.
    Workloads run ~20-30x smaller than the paper's, so capacities shrink
    accordingly to preserve each kernel's working-set-to-cache ratio (the
    quantity that decides memory-boundedness). *)
let scaled_l1_bytes = 4 * 1024

let scaled_l2_bytes = 32 * 1024

let scaled_sica_cache =
  { Pluto.Sica.l1_bytes = scaled_l1_bytes; l2_bytes = scaled_l2_bytes; line_bytes = 64 }

(** Execute a compiled program on the instrumented interpreter.
    [trace_accesses] additionally logs every load/store inside parallel
    loops (for {!Racecheck}); it perturbs neither costs nor output.
    [no_model] selects the uninstrumented fast execution variant instead:
    identical output, exit code and faults, but no cost/cache model (the
    profile's counters stay zero), so nothing downstream can simulate
    timing from it.  [trace_accesses] wins over [no_model] — the race
    detector always needs the instrumented build.  [pool] attaches a
    domain pool so parallelized loops really execute on OCaml domains
    (output bit-identical to sequential for race-free programs). *)
let execute ?(trace_accesses = false) ?(no_model = false) ?(shadow_slots = false)
    ?tile_grain ?pool (c : compiled) : Interp.Trace.profile =
  let instr =
    if trace_accesses then Interp.Compile.Traced
    else if no_model then Interp.Compile.Fast
    else Interp.Compile.Modeled
  in
  Interp.Exec.run ~l1_bytes:scaled_l1_bytes ~l2_bytes:scaled_l2_bytes ~instr
    ~shadow_slots ?tile_grain ?pool c.c_ast

(** Compile and execute in one go. *)
let run ?mode ?trace_accesses ?no_model ?shadow_slots ?tile_grain ?pool source :
    compiled * Interp.Trace.profile =
  let c = compile ?mode source in
  (c, execute ?trace_accesses ?no_model ?shadow_slots ?tile_grain ?pool c)

(** Optional racecheck pass: compile, execute with access tracing (and
    scalar-slot shadowing, so shared local scalars are visible too), then
    shadow-verify the parallelized loops under the whole plan matrix
    ([schedules] × [cores]) with the chosen engine(s).  A non-clean verdict
    on a legality-approved compile means either the polyhedral legality
    analysis or a dynamic race model is wrong; an engine disagreement means
    one of the two dynamic models is wrong — all hard failures. *)
let run_racecheck ?mode ?engine ?schedules ?cores ?tile_grain source :
    compiled * Interp.Trace.profile * Racecheck.verdict list =
  let c = compile ?mode source in
  let profile = execute ~trace_accesses:true ~shadow_slots:true ?tile_grain c in
  match Racecheck.verdict_matrix ?engine ?schedules ?cores profile with
  | Ok verdicts -> (c, profile, verdicts)
  | Error e ->
    (* unreachable: the profile above was produced with tracing on *)
    invalid_arg e

(* ------------------------------------------------------------------ *)
(* Mode specs: the CLI/serve surface of {!mode}.

   [mode] carries a closure (the PluTo config adjustment), which cannot be
   compared, serialized, or used as a cache key.  A [mode_spec] is the
   plain-data description both front ends share: the one-shot CLI builds it
   from flags, the serve protocol from request fields, and both lower it
   through {!mode_of_spec} — so a request and its equivalent CLI
   invocation run the exact same pipeline by construction. *)

type mode_spec = {
  ms_mode : [ `Pure | `Seq | `Pluto | `Manual ];
  ms_sica : bool;
  ms_tile : int option;  (** tile the permutable band with this size *)
  ms_schedule : string option;  (** OpenMP schedule clause for emitted pragmas *)
  ms_inject : bool;  (** fault injection: skip the polyhedral legality check *)
  ms_inspector : bool;
      (** runtime-checked parallelization of index-array gathers (default
          on); off drops the [[inspector]] marker from emitted pragmas, so
          with [ms_inject] a gather loop runs forced-parallel — the
          racecheck witness configuration *)
}

let default_mode_spec =
  { ms_mode = `Pure; ms_sica = false; ms_tile = None; ms_schedule = None;
    ms_inject = false; ms_inspector = true }

let mode_of_spec (s : mode_spec) : mode =
  let adjust (c : Pluto.config) =
    let c =
      if s.ms_sica then { c with Pluto.sica = true; sica_cache = scaled_sica_cache } else c
    in
    let c =
      match s.ms_tile with
      | Some ts -> { c with Pluto.tile = true; tile_sizes = [ ts ] }
      | None -> c
    in
    let c = { c with Pluto.schedule_clause = s.ms_schedule } in
    let c = { c with Pluto.inspector = s.ms_inspector } in
    if s.ms_inject then { c with Pluto.unsafe_no_legality = true } else c
  in
  match s.ms_mode with
  | `Pure -> Pure_chain adjust
  | `Seq -> Sequential
  | `Pluto -> Plain_pluto adjust
  | `Manual -> Manual_omp

(** Stable plain-text encoding of a spec, for cache keys (serve shards its
    translation-unit and reply caches by [fingerprint ^ source]).
    [no_model] marks a fast-variant execution; the marker is only appended
    when set so every pre-existing fingerprint stays byte-stable.  Note the
    translation-unit cache deliberately does {e not} key on it — the
    compiled AST is variant-independent — only reply memoization does. *)
let mode_spec_fingerprint ?(no_model = false) (s : mode_spec) : string =
  (if no_model then "nm=1;" else "")
  (* non-default only, so every pre-existing fingerprint stays byte-stable *)
  ^ (if not s.ms_inspector then "insp=0;" else "")
  ^ Printf.sprintf "m=%s;sica=%b;tile=%s;sched=%s;inject=%b"
    (match s.ms_mode with
    | `Pure -> "pure"
    | `Seq -> "seq"
    | `Pluto -> "pluto"
    | `Manual -> "manual")
    s.ms_sica
    (match s.ms_tile with Some t -> string_of_int t | None -> "-")
    (match s.ms_schedule with Some c -> c | None -> "-")
    s.ms_inject

(* ------------------------------------------------------------------ *)
(* Capturable drivers: everything the one-shot CLI prints for
   [compile]/[run]/[racecheck], factored onto an explicit formatter so the
   serve daemon can capture the same bytes into a reply.  [bin/purec.ml]
   passes [Fmt.stdout]; {!Serve.Server} passes a buffer formatter —
   byte-identical replies fall out of sharing this code rather than being a
   property anyone has to maintain by hand. *)

(** Per-scop polyhedral outcome lines ([purec compile]/[run] preamble). *)
let pp_outcomes ppf (c : compiled) =
  List.iter
    (fun (o : Pluto.outcome) ->
      match o.Pluto.o_result with
      | Pluto.Transformed { t_units } ->
        List.iter
          (fun (u : Pluto.unit_info) ->
            Fmt.pf ppf "scop at %a: iters [%s], parallel level %s, tiled %d levels%s@."
              Support.Loc.pp o.Pluto.o_loc
              (String.concat ", " u.Pluto.ui_iters)
              (match u.Pluto.ui_parallel with Some l -> string_of_int l | None -> "none")
              u.Pluto.ui_tiled
              (if u.Pluto.ui_identity then "" else " (transformed schedule)"))
          t_units
      | Pluto.Rejected msg ->
        Fmt.pf ppf "scop at %a: rejected (%s)@." Support.Loc.pp o.Pluto.o_loc msg)
    c.c_outcomes

(** What [purec compile] prints: outcomes, then the emitted C (or every
    stage source under [--dump-stages]). *)
let pp_compile_result ppf ?(dump = false) (c : compiled) =
  pp_outcomes ppf c;
  if dump then
    List.iter
      (fun (stage, text) -> Fmt.pf ppf "@.===== stage %s =====@.%s@." stage text)
      c.c_stage_sources
  else Fmt.pf ppf "%s@." c.c_emitted

(** What [purec run] prints after the outcome preamble: program output,
    interpreter exit code, dynamic-cost summary and the simulated sweep.
    [model=false] ([purec run --no-model]) drops the two model-derived
    sections — the counters are all zero on the fast variant, so printing
    them would be noise at best and a lie at worst. *)
let pp_run_report ppf ?(model = true) ~cores ~backend (profile : Interp.Trace.profile) =
  Fmt.pf ppf "--- program output ---@.%s--- end output ---@." profile.Interp.Trace.output;
  Fmt.pf ppf "exit code: %d@." profile.Interp.Trace.return_code;
  Fmt.pf ppf "parallel regions executed: %d@." (Interp.Trace.n_parallel_segments profile);
  (* inspector verdicts, in execution order: which runtime-checked loops
     were eligible for dispatch and which fell back to sequential *)
  List.iter
    (fun (v : Interp.Trace.insp_verdict) ->
      Fmt.pf ppf "%s runtime-check: %s (%d addresses inspected)@."
        (match v.Interp.Trace.iv_unit with
        | Some id -> Printf.sprintf "[unit %d]" id
        | None -> Printf.sprintf "[region %d]" v.Interp.Trace.iv_par)
        (if v.Interp.Trace.iv_disjoint then "disjoint (parallelized)"
         else "conflict (sequential fallback)")
        v.Interp.Trace.iv_checks)
    profile.Interp.Trace.insp;
  if model then begin
    let cost = Interp.Trace.total_cost profile in
    Fmt.pf ppf "dynamic ops: %d (flops %d, loads %d, stores %d, calls %d)@."
      (Interp.Cost.total_ops cost) (Interp.Cost.total_flops cost) cost.Interp.Cost.loads
      cost.Interp.Cost.stores cost.Interp.Cost.calls;
    Fmt.pf ppf "simulated %s timing:@." backend.Machine.Config.b_name;
    List.iter
      (fun n ->
        let r = Machine.Model.simulate ~backend ~n profile in
        Fmt.pf ppf "  %2d cores: %10.6f s@." n r.Machine.Model.r_seconds)
      cores
  end

(** The full single-target racecheck report of [purec racecheck] — unit
    table, per-plan verdicts, transform-unit attribution of every racy
    segment, and the legality/pragma postmortem lines.  Returns [true] when
    any plan raced or the engines disagreed (the caller maps that to
    {!exit_race}).  Raises {!Compile_error} like every other driver. *)
let racecheck_report ppf ~name ~engine ~schedules ~cores ~tile_grain ~inject ~mode
    source : bool =
  let c, profile, verdicts =
    run_racecheck ~mode ~engine ~schedules ~cores ~tile_grain source
  in
  (* per-outcome attribution: every [unit N] pragma tag maps back to the
     polyhedral transform unit that emitted it *)
  let units = Pluto.unit_table c.c_outcomes in
  Array.iteri
    (fun id (loc, u) ->
      Fmt.pf ppf "%s: unit %d (scop at %a): %s@." name id Support.Loc.pp loc
        (Pluto.describe_unit u))
    units;
  List.iter
    (fun (v : Interp.Trace.insp_verdict) ->
      Fmt.pf ppf "%s: %s runtime-check: %s@." name
        (match v.Interp.Trace.iv_unit with
        | Some id -> Printf.sprintf "[unit %d]" id
        | None -> Printf.sprintf "[region %d]" v.Interp.Trace.iv_par)
        (if v.Interp.Trace.iv_disjoint then "disjoint (parallelized)"
         else "conflict (sequential fallback)"))
    profile.Interp.Trace.insp;
  let attribute seg =
    let tagged =
      match profile.Interp.Trace.par_traces with
      | Some traces -> (
        match List.nth_opt traces seg with
        | Some pt -> pt.Interp.Trace.pt_unit
        | None -> None)
      | None -> None
    in
    match tagged with
    | Some id when id >= 0 && id < Array.length units ->
      let loc, u = units.(id) in
      Fmt.str "transform unit %d (scop at %a): %s" id Support.Loc.pp loc
        (Pluto.describe_unit u)
    | Some id -> Fmt.str "transform unit %d (no surviving outcome)" id
    | None -> "a hand-written pragma (no transform unit)"
  in
  let racy_verdicts = List.filter Racecheck.verdict_racy verdicts in
  let disagreements = Racecheck.verdicts_disagreements verdicts in
  if racy_verdicts = [] && disagreements = [] then
    Fmt.pf ppf "%s: no races across %d plans (engine %s; %s x cores %s)@." name
      (List.length verdicts)
      (Racecheck.engine_choice_name engine)
      (String.concat ", " (List.map Racecheck.schedule_name schedules))
      (String.concat ", " (List.map string_of_int cores))
  else begin
    List.iter
      (fun v ->
        List.iter
          (fun (r : Racecheck.report) ->
            if not (Racecheck.clean r) then begin
              Fmt.pf ppf "%s: %s@." name (Racecheck.describe_report r);
              List.iter
                (fun seg ->
                  Fmt.pf ppf "%s:   segment %d emitted by %s@." name seg (attribute seg))
                (List.sort_uniq compare (List.map fst r.Racecheck.p_words))
            end)
          (Racecheck.verdict_reports v))
      racy_verdicts;
    List.iter (fun d -> Fmt.pf ppf "%s: ENGINE DISAGREEMENT: %s@." name d) disagreements;
    if (not inject) && racy_verdicts <> [] then
      if Array.length units > 0 then
        Fmt.pf ppf
          "%s: LEGALITY DISAGREEMENT: the polyhedral legality analysis approved \
           this transform, but a dynamic race engine found races — one of the \
           two is wrong.@."
          name
      else
        Fmt.pf ppf
          "%s: the hand-written pragmas assert an independence the program \
           does not have.@."
          name
  end;
  racy_verdicts <> [] || disagreements <> []
