(** Type checking for the C subset.

    Deliberately permissive where C is permissive (implicit arithmetic
    conversions, void*-to-T* assignment, 0-as-null-pointer), strict where
    the later passes need guarantees: every identifier is declared, every
    call resolves, lvalues are real lvalues.  Purity-qualifier enforcement
    is NOT done here — that is the purity pass (paper §3.2). *)

open Cfront
open Support

type ctx = {
  env : Env.t;
  reporter : Diag.reporter;
  mutable current_ret : Ast.ctype;
}

let arith_rank = function
  | Ast.Char -> 1
  | Ast.Int -> 2
  | Ast.Float -> 3
  | Ast.Double -> 4
  | _ -> 0

let promote a b = if arith_rank a >= arith_rank b then a else b

let is_zero_literal (e : Ast.expr) = match e.edesc with Ast.IntLit 0 -> true | _ -> false

(* Can [src] be assigned to [dst] without an explicit cast? *)
let assignable ~(dst : Ast.ctype) ~(src : Ast.ctype) ~(src_expr : Ast.expr option) =
  match (dst, src) with
  | a, b when Ast.is_arith a && Ast.is_arith b -> true
  | Ast.Ptr _, Ast.Ptr { elt = Ast.Void; _ } | Ast.Ptr { elt = Ast.Void; _ }, Ast.Ptr _ ->
    true
  | Ast.Ptr _, Ast.Int -> (
    match src_expr with Some e -> is_zero_literal e | None -> false)
  | Ast.Ptr _, (Ast.Ptr _ | Ast.Array _) | Ast.Array _, Ast.Ptr _ ->
    Ast.type_compatible dst src
  | Ast.Struct a, Ast.Struct b -> a = b
  | a, b -> Ast.type_equal a b

let rec is_lvalue (e : Ast.expr) =
  match e.edesc with
  | Ast.Ident _ | Ast.Index _ | Ast.Deref _ | Ast.Member _ | Ast.Arrow _ -> true
  | Ast.Cast (_, inner) -> is_lvalue inner
  | _ -> false

(* Array-to-pointer decay in rvalue contexts. *)
let decay = function Ast.Array (elt, _) -> Ast.ptr elt | ty -> ty

let rec infer ctx scope (e : Ast.expr) : Ast.ctype =
  let err fmt =
    Fmt.kstr
      (fun m ->
        Diag.error ctx.reporter ~loc:e.eloc ~code:"type" "%s" m;
        Ast.Int (* recovery type *))
      fmt
  in
  match e.edesc with
  | Ast.IntLit _ -> Ast.Int
  | Ast.FloatLit (_, single) -> if single then Ast.Float else Ast.Double
  | Ast.CharLit _ -> Ast.Char
  | Ast.StrLit _ -> Ast.ptr Ast.Char ~const:true
  | Ast.Ident x -> (
    match Scope.lookup scope x with
    | Some entry -> Env.resolve ctx.env entry.ty
    | None -> err "undeclared identifier %s" x)
  | Ast.Binop (op, a, b) -> (
    let ta = decay (infer ctx scope a) and tb = decay (infer ctx scope b) in
    match op with
    | Ast.Add | Ast.Sub -> (
      match (ta, tb) with
      | ta, tb when Ast.is_arith ta && Ast.is_arith tb -> promote ta tb
      | (Ast.Ptr _ as p), t when Ast.is_arith t -> p
      | t, (Ast.Ptr _ as p) when Ast.is_arith t && op = Ast.Add -> p
      | Ast.Ptr _, Ast.Ptr _ when op = Ast.Sub -> Ast.Int
      | _ -> err "invalid operands to %s" (Ast_printer.binop_str op))
    | Ast.Mul | Ast.Div ->
      if Ast.is_arith ta && Ast.is_arith tb then promote ta tb
      else err "invalid operands to %s" (Ast_printer.binop_str op)
    | Ast.Mod | Ast.BAnd | Ast.BOr | Ast.BXor | Ast.Shl | Ast.Shr ->
      if arith_rank ta <= 2 && arith_rank tb <= 2 && arith_rank ta > 0 && arith_rank tb > 0
      then Ast.Int
      else err "integer operands required for %s" (Ast_printer.binop_str op)
    | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne ->
      let ok =
        (Ast.is_arith ta && Ast.is_arith tb)
        || (Ast.is_pointer ta && Ast.is_pointer tb)
        || (Ast.is_pointer ta && is_zero_literal b)
        || (Ast.is_pointer tb && is_zero_literal a)
      in
      if ok then Ast.Int else err "invalid comparison operands"
    | Ast.LAnd | Ast.LOr -> Ast.Int)
  | Ast.Unop (op, a) -> (
    let ta = decay (infer ctx scope a) in
    match op with
    | Ast.Neg -> if Ast.is_arith ta then ta else err "negation of non-arithmetic value"
    | Ast.LNot -> Ast.Int
    | Ast.BNot ->
      if arith_rank ta > 0 && arith_rank ta <= 2 then Ast.Int
      else err "bitwise not of non-integer value")
  | Ast.Assign (op, lhs, rhs) -> (
    if not (is_lvalue lhs) then ignore (err "assignment target is not an lvalue");
    let tl = infer ctx scope lhs in
    let tr = decay (infer ctx scope rhs) in
    match op with
    | Ast.OpAssign ->
      if not (assignable ~dst:(decay tl) ~src:tr ~src_expr:(Some rhs)) then
        ignore
          (err "cannot assign %s to %s"
             (Ast_printer.type_to_string tr)
             (Ast_printer.type_to_string tl));
      tl
    | Ast.OpAddAssign | Ast.OpSubAssign ->
      (match (decay tl, tr) with
      | tl', tr' when Ast.is_arith tl' && Ast.is_arith tr' -> ()
      | Ast.Ptr _, t when Ast.is_arith t -> ()
      | _ -> ignore (err "invalid compound assignment operands"));
      tl
    | Ast.OpMulAssign | Ast.OpDivAssign | Ast.OpModAssign ->
      if not (Ast.is_arith (decay tl) && Ast.is_arith tr) then
        ignore (err "invalid compound assignment operands");
      tl)
  | Ast.Call (fname, args) -> (
    let targs = List.map (fun a -> decay (infer ctx scope a)) args in
    match Env.find_func ctx.env fname with
    | Some fs ->
      let nformal = List.length fs.fs_params in
      if List.length args <> nformal then
        ignore
          (err "function %s expects %d arguments, got %d" fname nformal
             (List.length args))
      else
        List.iteri
          (fun i (p : Ast.param) ->
            let src = List.nth targs i in
            let dst = decay (Env.resolve ctx.env p.p_type) in
            if not (assignable ~dst ~src ~src_expr:(Some (List.nth args i))) then
              ignore
                (err "argument %d of %s: cannot pass %s as %s" (i + 1) fname
                   (Ast_printer.type_to_string src)
                   (Ast_printer.type_to_string dst)))
          fs.fs_params;
      Env.resolve ctx.env fs.fs_ret
    | None -> (
      match Builtins.find fname with
      | Some b ->
        let nformal = List.length b.params in
        if List.length args < nformal || ((not b.varargs) && List.length args > nformal)
        then ignore (err "wrong number of arguments to %s" fname);
        b.ret
      | None -> err "call to undeclared function %s" fname))
  | Ast.Index (a, i) -> (
    let ta = infer ctx scope a in
    let ti = decay (infer ctx scope i) in
    if not (Ast.is_arith ti) then ignore (err "array subscript is not an integer");
    match decay ta with
    | Ast.Ptr p -> Env.resolve ctx.env p.elt
    | _ -> err "subscripted value is not an array or pointer")
  | Ast.Deref a -> (
    match decay (infer ctx scope a) with
    | Ast.Ptr p -> Env.resolve ctx.env p.elt
    | _ -> err "dereferencing a non-pointer")
  | Ast.AddrOf a ->
    if not (is_lvalue a) then ignore (err "address of a non-lvalue");
    Ast.ptr (infer ctx scope a)
  | Ast.Member (a, fld) -> (
    match infer ctx scope a with
    | Ast.Struct s -> (
      match Env.field_type ctx.env s fld with
      | Some ty -> Env.resolve ctx.env ty
      | None -> err "struct %s has no field %s" s fld)
    | _ -> err "member access on a non-struct value")
  | Ast.Arrow (a, fld) -> (
    match decay (infer ctx scope a) with
    | Ast.Ptr { elt = Ast.Struct s; _ } -> (
      match Env.field_type ctx.env s fld with
      | Some ty -> Env.resolve ctx.env ty
      | None -> err "struct %s has no field %s" s fld)
    | _ -> err "-> applied to a non-struct-pointer value")
  | Ast.Cast (ty, a) ->
    ignore (infer ctx scope a);
    Env.resolve ctx.env ty
  | Ast.Cond (c, t, f) ->
    ignore (infer ctx scope c);
    let tt = decay (infer ctx scope t) and tf = decay (infer ctx scope f) in
    if Ast.is_arith tt && Ast.is_arith tf then promote tt tf
    else if Ast.type_compatible tt tf then tt
    else err "mismatched branches of ?:"
  | Ast.SizeofType _ | Ast.SizeofExpr _ -> Ast.Int
  | Ast.IncDec { arg; _ } -> (
    if not (is_lvalue arg) then ignore (err "++/-- target is not an lvalue");
    match decay (infer ctx scope arg) with
    | t when Ast.is_arith t -> t
    | Ast.Ptr _ as t -> t
    | _ -> err "++/-- on a non-scalar value")
  | Ast.Comma (a, b) ->
    ignore (infer ctx scope a);
    infer ctx scope b

(* ------------------------------------------------------------------ *)
(* Statement checking *)

let check_decl ctx scope (d : Ast.decl) =
  if Scope.in_current_block scope d.d_name then
    Diag.error ctx.reporter ~loc:d.d_loc ~code:"sema.shadow"
      "redeclaration of %s in the same block" d.d_name;
  let ty = Env.resolve ctx.env d.d_type in
  (match d.d_init with
  | Some init ->
    let ti = decay (infer ctx scope init) in
    if not (assignable ~dst:(decay ty) ~src:ti ~src_expr:(Some init)) then
      Diag.error ctx.reporter ~loc:d.d_loc ~code:"type"
        "cannot initialize %s (of type %s) from %s" d.d_name
        (Ast_printer.type_to_string ty)
        (Ast_printer.type_to_string ti)
  | None -> ());
  Scope.add_local scope d.d_name ty d.d_loc

(* [#pragma omp critical] / [#pragma omp atomic] guard the next statement
   of their block, so pairing is a property of statement lists: a guard
   pragma must be followed by a statement (not another pragma), and an
   atomic guard must be a single update expression — anything larger needs
   [critical]. *)
let atomic_guard_ok (g : Ast.stmt) =
  match g.Ast.sdesc with
  | Ast.SExpr { Ast.edesc = Ast.Assign _; _ }
  | Ast.SExpr { Ast.edesc = Ast.IncDec _; _ } ->
    true
  | _ -> false

let check_pragma_pairs ctx (ss : Ast.stmt list) =
  let rec go = function
    | { Ast.sdesc = Ast.SPragma p; sloc } :: rest
      when Pragma.is_critical p || Pragma.is_atomic p -> (
      let what = if Pragma.is_atomic p then "atomic" else "critical" in
      match rest with
      | [] | { Ast.sdesc = Ast.SPragma _; _ } :: _ ->
        Diag.error ctx.reporter ~loc:sloc ~code:"sema.pragma"
          "#pragma omp %s must be followed by the statement it guards" what;
        go rest
      | g :: rest' ->
        if Pragma.is_atomic p && not (atomic_guard_ok g) then
          Diag.error ctx.reporter ~loc:g.Ast.sloc ~code:"sema.pragma"
            "#pragma omp atomic must guard a single update expression \
             (use critical for compound statements)";
        go rest')
    | _ :: rest -> go rest
    | [] -> ()
  in
  go ss

let rec check_stmt ctx scope (s : Ast.stmt) =
  match s.sdesc with
  | Ast.SExpr e -> ignore (infer ctx scope e)
  | Ast.SDecl d -> check_decl ctx scope d
  | Ast.SIf (c, t, e) ->
    ignore (infer ctx scope c);
    check_block ctx scope t;
    Option.iter (check_block ctx scope) e
  | Ast.SWhile (c, b) ->
    ignore (infer ctx scope c);
    check_block ctx scope b
  | Ast.SDoWhile (b, c) ->
    check_block ctx scope b;
    ignore (infer ctx scope c)
  | Ast.SFor (init, cond, step, b) ->
    Scope.push scope;
    (match init with
    | Some (Ast.FInitDecl d) -> check_decl ctx scope d
    | Some (Ast.FInitExpr e) -> ignore (infer ctx scope e)
    | None -> ());
    Option.iter (fun e -> ignore (infer ctx scope e)) cond;
    Option.iter (fun e -> ignore (infer ctx scope e)) step;
    check_block ctx scope b;
    Scope.pop scope
  | Ast.SReturn eo -> (
    match (eo, ctx.current_ret) with
    | None, Ast.Void -> ()
    | None, _ ->
      Diag.error ctx.reporter ~loc:s.sloc ~code:"type.return"
        "non-void function must return a value"
    | Some e, ret ->
      let te = decay (infer ctx scope e) in
      if ret = Ast.Void then
        Diag.error ctx.reporter ~loc:s.sloc ~code:"type.return"
          "void function returns a value"
      else if not (assignable ~dst:(decay ret) ~src:te ~src_expr:(Some e)) then
        Diag.error ctx.reporter ~loc:s.sloc ~code:"type.return"
          "returning %s from a function returning %s"
          (Ast_printer.type_to_string te)
          (Ast_printer.type_to_string ret))
  | Ast.SBlock ss ->
    check_pragma_pairs ctx ss;
    Scope.push scope;
    List.iter (check_stmt ctx scope) ss;
    Scope.pop scope
  | Ast.SBreak | Ast.SContinue | Ast.SPragma _ -> ()

(* A statement used as a loop/if body shares our handling of SBlock. *)
and check_block ctx scope s = check_stmt ctx scope s

let scope_for_function env (f : Ast.func) =
  let params = Hashtbl.create 8 in
  List.iter
    (fun (p : Ast.param) ->
      Hashtbl.replace params p.p_name
        { Symbol.ty = Env.resolve env p.p_type; origin = Symbol.Param; loc = p.p_loc })
    f.f_params;
  Scope.create ~globals:env.Env.globals ~params

let check_func ctx (f : Ast.func) =
  match f.f_body with
  | None -> ()
  | Some body ->
    ctx.current_ret <- Env.resolve ctx.env f.f_ret;
    check_pragma_pairs ctx body;
    let scope = scope_for_function ctx.env f in
    List.iter (check_stmt ctx scope) body

(** Check a whole program; returns the environment for later passes. *)
let check_program ?(reporter = Diag.create_reporter ()) (program : Ast.program) : Env.t =
  let env = Env.gather ~reporter program in
  let ctx = { env; reporter; current_ret = Ast.Void } in
  List.iter (function Ast.GFunc f -> check_func ctx f | _ -> ()) program;
  env
