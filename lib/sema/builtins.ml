(** Signatures of the C standard-library functions the subset knows about.

    The purity whitelist (paper §3.2) lives in [Purity.Registry]; here we
    only provide types so calls check. *)

open Cfront

type t = {
  name : string;
  ret : Ast.ctype;
  params : Ast.ctype list;
  varargs : bool;
}

let d = Ast.Double
let f1 name = { name; ret = d; params = [ d ]; varargs = false }
let f2 name = { name; ret = d; params = [ d; d ]; varargs = false }

let table : t list =
  [
    { name = "malloc"; ret = Ast.ptr Ast.Void; params = [ Ast.Int ]; varargs = false };
    { name = "calloc"; ret = Ast.ptr Ast.Void; params = [ Ast.Int; Ast.Int ]; varargs = false };
    { name = "free"; ret = Ast.Void; params = [ Ast.ptr Ast.Void ]; varargs = false };
    { name = "printf"; ret = Ast.Int; params = [ Ast.ptr Ast.Char ]; varargs = true };
    { name = "fprintf"; ret = Ast.Int; params = [ Ast.ptr Ast.Void; Ast.ptr Ast.Char ]; varargs = true };
    { name = "exit"; ret = Ast.Void; params = [ Ast.Int ]; varargs = false };
    { name = "abs"; ret = Ast.Int; params = [ Ast.Int ]; varargs = false };
    f1 "sin"; f1 "cos"; f1 "tan"; f1 "asin"; f1 "acos"; f1 "atan";
    f1 "sinh"; f1 "cosh"; f1 "tanh";
    f1 "exp"; f1 "log"; f1 "log2"; f1 "log10"; f1 "sqrt"; f1 "fabs";
    f1 "floor"; f1 "ceil"; f1 "round";
    f2 "pow"; f2 "fmin"; f2 "fmax"; f2 "atan2"; f2 "fmod";
    { name = "sinf"; ret = Ast.Float; params = [ Ast.Float ]; varargs = false };
    { name = "cosf"; ret = Ast.Float; params = [ Ast.Float ]; varargs = false };
    { name = "sqrtf"; ret = Ast.Float; params = [ Ast.Float ]; varargs = false };
    { name = "expf"; ret = Ast.Float; params = [ Ast.Float ]; varargs = false };
    { name = "logf"; ret = Ast.Float; params = [ Ast.Float ]; varargs = false };
    { name = "fabsf"; ret = Ast.Float; params = [ Ast.Float ]; varargs = false };
    { name = "powf"; ret = Ast.Float; params = [ Ast.Float; Ast.Float ]; varargs = false };
    (* the integer bound helpers PluTo's codegen emits; also valid in
       hand-written sources (e.g. a reduction(max:m) accumulator update) *)
    { name = "__min"; ret = Ast.Int; params = [ Ast.Int; Ast.Int ]; varargs = false };
    { name = "__max"; ret = Ast.Int; params = [ Ast.Int; Ast.Int ]; varargs = false };
    { name = "__ceild"; ret = Ast.Int; params = [ Ast.Int; Ast.Int ]; varargs = false };
    { name = "__floord"; ret = Ast.Int; params = [ Ast.Int; Ast.Int ]; varargs = false };
  ]

let find name = List.find_opt (fun b -> b.name = name) table

let is_builtin name = Option.is_some (find name)
