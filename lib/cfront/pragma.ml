(** Classification of the [#pragma] lines the subset understands.

    The lexer keeps each pragma as the raw text after [#pragma] (leading
    blanks stripped); this module is the single place that decides what
    kind of directive that text is, shared by sema (pairing validation)
    and the interpreter (lowering).  Clause parsing — schedules, private
    and reduction lists — stays in [Interp.Trace] next to the other trace
    helpers. *)

let starts_with ~prefix s =
  let n = String.length prefix in
  String.length s >= n && String.sub s 0 n = prefix

(* the directive must end right there or continue with a separator, so
   [omp criticalish] is not a critical section *)
let directive s prefix =
  starts_with ~prefix s
  && (String.length s = String.length prefix
     ||
     match s.[String.length prefix] with
     | ' ' | '\t' | '(' -> true
     | _ -> false)

(** [omp parallel for ...] *)
let is_omp_for p = directive p "omp parallel for"

(** [omp critical] / [omp critical(name)] *)
let is_critical p = directive p "omp critical"

(** [omp atomic] *)
let is_atomic p = directive p "omp atomic"

(** The lock name a [critical] directive binds: the parenthesized name when
    present, the shared anonymous name otherwise.  Returns [None] for
    non-critical pragmas. *)
let critical_name p =
  if not (is_critical p) then None
  else
    match String.index_opt p '(' with
    | None -> Some ""
    | Some i -> (
      match String.index_from_opt p i ')' with
      | None -> Some ""
      | Some j -> Some (String.trim (String.sub p (i + 1) (j - i - 1))))
