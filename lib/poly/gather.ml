(** Classification of index-array gather nests for the inspector/executor.

    [Scop_ir.extract_unit] fails on any subscript that is not affine in the
    iterators — in particular on one level of indirection through an index
    array ([y\[col\[j\]\]], [A\[ia\[i\]\]]), the CSR/ELL access pattern.
    Such a nest is not necessarily sequential: it is parallel whenever the
    runtime contents of the index arrays happen to make the touched
    elements disjoint across outer iterations.  [classify] decides whether
    indirection is the {e only} obstacle:

    - every subscript must be affine, or exactly [idx\[affine\]] where
      [idx] is an index array never written in the nest;
    - the {e abstract unit} — the nest with every access to a {e checked}
      array removed (checked = written in the nest and subscripted through
      an index array somewhere), all remaining affine accesses kept, and
      the index-array reads added — must carry no dependence on the
      outermost loop.

    Then the nest is [Checkable]: its only possible cross-iteration
    conflicts flow through the checked arrays' runtime footprints, which an
    inspector loop can test for pairwise disjointness before dispatch (see
    [Interp.Compile]).  Anything else — an index array itself written in
    the nest, deeper indirection, calls, a residual affine dependence —
    stays [Unanalyzable] and the region is rejected exactly as before. *)

open Cfront

type info = {
  g_unit : Scop_ir.unit_nest;
      (** the abstract unit whose dependences prove every non-checked
          access parallel on the outer loop *)
  g_checked : string list;
      (** arrays whose footprints need the runtime disjointness check;
          may be empty (read-only gathers conflict with nothing) *)
  g_index_arrays : string list;  (** the index arrays driving the gathers *)
  g_headers : Scop_ir.loop_header list;  (** nest headers, outer→inner *)
}

type verdict =
  | Checkable of info
  | Unanalyzable of string

(* local failure carrier for the tolerant walkers below *)
exception Refuse of string

let refuse fmt = Fmt.kstr (fun m -> raise (Refuse m)) fmt

(* ------------------------------------------------------------------ *)
(* Tolerant access collection: like [Scop_ir.collect_expr], but a subscript
   may also be one indirection level [idx[affine]].  Each collected access
   carries its affine subscripts where they exist and the index arrays its
   indirect subscripts read. *)

type raw_sub = Sub_affine of Affine.t | Sub_indirect of string * Affine.t

type raw_access = {
  r_array : string;
  r_subs : raw_sub list;  (** [] for scalars *)
  r_write : bool;
}

let rec strip_cast (e : Ast.expr) =
  match e.Ast.edesc with Ast.Cast (_, inner) -> strip_cast inner | _ -> e

(* classify one subscript expression *)
let classify_sub env space (e : Ast.expr) : raw_sub =
  match Scop_ir.to_affine env space e with
  | a -> Sub_affine a
  | exception Scop_ir.Not_affine _ -> (
    match (strip_cast e).Ast.edesc with
    | Ast.Index (base, idx) -> (
      match (strip_cast base).Ast.edesc with
      | Ast.Ident arr -> (
        match Scop_ir.to_affine env space idx with
        | a -> Sub_indirect (arr, a)
        | exception Scop_ir.Not_affine _ ->
          refuse "subscript of index array %s is not affine" arr)
      | _ -> refuse "indirect subscript through a non-array base")
    | _ -> refuse "non-affine subscript: %s" (Ast_printer.expr_to_string e))

let rec collect env space acc ~(is_read : bool) (e : Ast.expr) =
  match e.Ast.edesc with
  | Ast.IntLit _ | Ast.FloatLit _ | Ast.StrLit _ | Ast.CharLit _ | Ast.SizeofType _
  | Ast.SizeofExpr _ ->
    ()
  | Ast.Ident x ->
    if List.mem x env.Scop_ir.iters || Scop_ir.is_tmp_const x then ()
    else if is_read && not (List.mem x env.Scop_ir.forbidden) then ()
    else
      (* mutated scalar: a 0-dimensional access, exactly as in extraction *)
      acc := { r_array = x; r_subs = []; r_write = not is_read } :: !acc
  | Ast.Index _ | Ast.Deref _ -> (
    match Scop_ir.array_base e [] with
    | Some (base, subs) ->
      let rs = List.map (classify_sub env space) subs in
      acc := { r_array = base; r_subs = rs; r_write = not is_read } :: !acc
    | None -> refuse "unanalyzable memory access")
  | Ast.Binop (_, a, b) ->
    collect env space acc ~is_read:true a;
    collect env space acc ~is_read:true b
  | Ast.Unop (_, a) | Ast.Cast (_, a) -> collect env space acc ~is_read:true a
  | Ast.Cond (c, t, f) ->
    collect env space acc ~is_read:true c;
    collect env space acc ~is_read:true t;
    collect env space acc ~is_read:true f
  | Ast.Assign (op, lhs, rhs) ->
    collect env space acc ~is_read:false lhs;
    if op <> Ast.OpAssign then collect env space acc ~is_read:true lhs;
    collect env space acc ~is_read:true rhs
  | Ast.IncDec { arg; _ } ->
    collect env space acc ~is_read:false arg;
    collect env space acc ~is_read:true arg
  | Ast.Comma (a, b) ->
    collect env space acc ~is_read:true a;
    collect env space acc ~is_read:true b
  | Ast.Call (f, _) -> refuse "function call to %s inside the nest" f
  | Ast.Member _ | Ast.Arrow _ -> refuse "struct access inside the nest"
  | Ast.AddrOf _ -> refuse "address-of inside the nest"

(* parameter pre-scan tolerant of indirection: reuse [Scop_ir.scan_expr],
   which already treats array-base identifiers as arrays, not parameters *)
let scan_stmt env (st : Ast.stmt) =
  match st.Ast.sdesc with
  | Ast.SExpr e -> Scop_ir.scan_expr env e
  | _ -> refuse "unsupported statement in the nest"

(* ------------------------------------------------------------------ *)

let classify ?(enclosing = []) ?(enclosing_params = []) (s : Ast.stmt) : verdict =
  try
    let headers, body = Scop_ir.perfect_nest s in
    if headers = [] then refuse "not a recognizable for-loop";
    let iters = List.map (fun h -> h.Scop_ir.h_iter) headers in
    let forbidden =
      List.filter (fun n -> not (List.mem n iters)) (Scop_ir.mutated_names s)
    in
    let env =
      { Scop_ir.iters; params = enclosing_params @ enclosing; forbidden }
    in
    List.iter
      (fun h ->
        Scop_ir.scan_expr env h.Scop_ir.h_lb;
        Scop_ir.scan_expr env h.Scop_ir.h_ub)
      headers;
    List.iter (scan_stmt env) body;
    let space = Affine.space ~iters ~params:(List.rev env.Scop_ir.params) in
    let domain =
      try
        List.fold_left
          (fun p h ->
            let lb = Scop_ir.to_affine env space h.Scop_ir.h_lb in
            let ub = Scop_ir.to_affine env space h.Scop_ir.h_ub in
            let iter = Affine.of_iter space h.Scop_ir.h_iter in
            let p = Polyhedron.ge2 p iter lb in
            if h.Scop_ir.h_ub_incl then Polyhedron.le2 p iter ub
            else Polyhedron.lt2 p iter ub)
          (Polyhedron.universe space) headers
      with Scop_ir.Not_affine (m, _) -> refuse "%s" m
    in
    (* raw accesses per body statement *)
    let raw_stmts =
      List.map
        (fun st ->
          match st.Ast.sdesc with
          | Ast.SExpr e ->
            let acc = ref [] in
            collect env space acc ~is_read:true e;
            (st, List.rev !acc)
          | _ -> refuse "unsupported statement in the nest")
        body
    in
    let all_raw = List.concat_map snd raw_stmts in
    let index_arrays =
      List.concat_map
        (fun r ->
          List.filter_map
            (function Sub_indirect (a, _) -> Some a | Sub_affine _ -> None)
            r.r_subs)
        all_raw
      |> List.sort_uniq compare
    in
    let written a =
      List.exists (fun r -> r.r_write && r.r_array = a) all_raw
      || List.mem a forbidden
    in
    (* the runtime check can only reason about index arrays whose contents
       are fixed across the nest *)
    List.iter
      (fun a ->
        if written a then refuse "index array %s is written in the nest" a)
      index_arrays;
    let indirect a =
      List.exists
        (fun r ->
          r.r_array = a
          && List.exists (function Sub_indirect _ -> true | _ -> false) r.r_subs)
        all_raw
    in
    let checked =
      List.filter_map
        (fun r ->
          if indirect r.r_array && written r.r_array then Some r.r_array else None)
        all_raw
      |> List.sort_uniq compare
    in
    (* abstract unit: drop every access to a checked array (the inspector
       owns them), keep fully-affine accesses of everything else, and add
       the index-array reads.  An access with an indirect subscript that is
       NOT checked is a read of an unwritten array — it can pair with no
       write, so dropping it is sound. *)
    let abstract (r : raw_access) : Scop_ir.access list =
      let idx_reads =
        if r.r_write then []
        else
          List.filter_map
            (function
              | Sub_indirect (a, aff) ->
                Some { Scop_ir.a_array = a; a_indices = [ aff ] }
              | Sub_affine _ -> None)
            r.r_subs
      in
      if List.mem r.r_array checked then idx_reads
      else if List.exists (function Sub_indirect _ -> true | _ -> false) r.r_subs
      then idx_reads
      else
        { Scop_ir.a_array = r.r_array;
          a_indices =
            List.map
              (function Sub_affine a -> a | Sub_indirect _ -> assert false)
              r.r_subs }
        :: idx_reads
    in
    (* index-array reads of write accesses still happen; collect them too *)
    let idx_reads_of (r : raw_access) =
      List.filter_map
        (function
          | Sub_indirect (a, aff) -> Some { Scop_ir.a_array = a; a_indices = [ aff ] }
          | Sub_affine _ -> None)
        r.r_subs
    in
    let body_stmts =
      List.map
        (fun (st, raws) ->
          let writes, reads =
            List.fold_left
              (fun (ws, rs) r ->
                if r.r_write then
                  let ws' =
                    if List.mem r.r_array checked then ws else abstract r @ ws
                  in
                  (ws', idx_reads_of r @ rs)
                else (ws, abstract r @ rs))
              ([], []) raws
          in
          { Scop_ir.b_ast = st; b_writes = List.rev writes; b_reads = List.rev reads })
        raw_stmts
    in
    let decls =
      List.filter_map
        (fun h ->
          match h.Scop_ir.h_decl with
          | Some ty -> Some (h.Scop_ir.h_iter, ty)
          | None -> None)
        headers
    in
    let unit =
      {
        Scop_ir.u_iters = iters;
        u_space = space;
        u_domain = domain;
        u_body = body_stmts;
        u_enclosing = enclosing;
        u_decls = decls;
      }
    in
    if index_arrays = [] then
      (* no indirection at all: the static pipeline's rejection stands *)
      refuse "no index-array subscript in the nest"
    else if List.mem 1 (Dependence.parallel_levels unit) then
      Checkable { g_unit = unit; g_checked = checked; g_index_arrays = index_arrays; g_headers = headers }
    else
      refuse
        "the outer loop carries a dependence besides the index-array accesses"
  with
  | Refuse m -> Unanalyzable m
  | Scop_ir.Not_affine (m, _) -> Unanalyzable m
  | Invalid_argument m -> Unanalyzable m
