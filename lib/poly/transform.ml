(** Schedule-transformation search over unimodular matrices.

    PluTo finds affine schedules with an ILP over Farkas multipliers; for the
    loop shapes in the paper's evaluation a search over a small family of
    unimodular transforms (permutations, skews, their compositions) finds
    the same schedules: identity for the already-parallel nests, a wavefront
    skew for stencil-like nests (the shearing of paper Fig. 2).

    Every candidate is checked for legality against the exact dependence
    polyhedra, and scored by the outermost parallel level it exposes. *)

open Support

type schedule = {
  sched_matrix : int array array;  (** new iteration vector = matrix × old *)
  sched_parallel : int list;  (** 1-based parallel levels of the new nest *)
  sched_carried : int list;  (** 1-based levels carrying a dependence *)
  sched_band : int;  (** levels 1..band are fully permutable (0 = none) *)
  sched_is_identity : bool;
}

let identity_matrix = Linalg.Imat.identity

let is_identity m =
  let n = Array.length m in
  let ok = ref true in
  Array.iteri
    (fun i row -> Array.iteri (fun j v -> if v <> (if i = j then 1 else 0) then ok := false) row)
    m;
  ignore n;
  !ok

(* All permutation matrices of dimension d (d <= 4 in practice). *)
let permutations d =
  let rec perms = function
    | [] -> [ [] ]
    | l -> List.concat_map (fun x -> List.map (fun p -> x :: p) (perms (List.filter (( <> ) x) l))) l
  in
  perms (Util.range 0 d)
  |> List.map (fun perm ->
         let m = Array.make_matrix d d 0 in
         List.iteri (fun row old -> m.(row).(old) <- 1) perm;
         m)

(* Single skews I + f*E_rc (r <> c). *)
let skews d factors =
  List.concat_map
    (fun r ->
      List.concat_map
        (fun c ->
          if r = c then []
          else
            List.map
              (fun f ->
                let m = identity_matrix d in
                m.(r).(c) <- f;
                m)
              factors)
        (Util.range 0 d))
    (Util.range 0 d)

(* Double skews sharing a source column (time-skewing patterns for 3-D
   stencils: skew both space loops by the time loop). *)
let double_skews d factors =
  if d < 3 then []
  else
    List.concat_map
      (fun c ->
        List.concat_map
          (fun r1 ->
            List.concat_map
              (fun r2 ->
                if r1 = c || r2 = c || r1 >= r2 then []
                else
                  List.concat_map
                    (fun f1 ->
                      List.map
                        (fun f2 ->
                          let m = identity_matrix d in
                          m.(r1).(c) <- f1;
                          m.(r2).(c) <- f2;
                          m)
                        factors)
                    factors)
              (Util.range 0 d))
          (Util.range 0 d))
      (Util.range 0 d)

(* Candidate transforms, cheapest first. *)
let candidates d =
  let factors = [ 1; -1; 2 ] in
  let base =
    (identity_matrix d :: permutations d)
    @ skews d factors @ double_skews d [ 1 ]
  in
  (* compose permutations with skews for wavefront-then-interchange shapes *)
  let composed =
    List.concat_map
      (fun p -> List.map (fun s -> Linalg.Imat.mul p s) (skews d [ 1; -1 ]))
      (permutations d)
  in
  base @ composed

let complexity m =
  let c = ref 0 in
  Array.iteri
    (fun i row ->
      Array.iteri (fun j v -> if i = j then c := !c + abs (v - 1) else c := !c + abs v) row)
    m;
  !c

let dedup_matrices ms =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun m ->
      let key = Linalg.Imat.to_string m in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.replace seen key ();
        true
      end)
    ms

(* Largest b such that levels 1..b are fully permutable under [t]. *)
let permutable_band u t d =
  let rec go b =
    if b >= d then d
    else if Dependence.band_permutable u t ~l1:1 ~l2:(b + 1) then go (b + 1)
    else b
  in
  (* a single loop is trivially a (degenerate) band if legal *)
  go 0

(** Analyze the unit under transform [t] (must be unimodular and legal). *)
let analyze (u : Scop_ir.unit_nest) (t : int array array) : schedule =
  let d = List.length u.u_iters in
  let carried = Dependence.carried_levels_under u t in
  let parallel = List.filter (fun l -> not (List.mem l carried)) (Util.range 1 (d + 1)) in
  {
    sched_matrix = t;
    sched_parallel = parallel;
    sched_carried = carried;
    sched_band = permutable_band u t d;
    sched_is_identity = is_identity t;
  }

(** Find the best legal schedule: minimize the outermost parallel level,
    then transform complexity.  Always succeeds (identity is always legal —
    it is the original execution order).

    [unsafe_skip_legality] is a deliberate fault-injection hook for the
    differential fuzz oracle: it returns the first non-identity permutation
    {e without} checking it against the dependence polyhedra, i.e. exactly
    the miscompile a polyhedral tool commits when its legality test is
    broken.  The oracle must detect the resulting reorderings; never set it
    in production paths. *)
let find_schedule ?(unsafe_skip_legality = false) (u : Scop_ir.unit_nest) : schedule =
  let d = List.length u.u_iters in
  if unsafe_skip_legality then
    let illegal =
      List.find_opt (fun t -> not (is_identity t)) (permutations d)
    in
    match illegal with
    | Some t -> analyze u t
    | None -> analyze u (identity_matrix d) (* d = 1: no permutation to inject *)
  else
  let cands = dedup_matrices (candidates d) in
  let best = ref None in
  let score (s : schedule) =
    let outer_par = match s.sched_parallel with [] -> d + 1 | l :: _ -> l in
    (outer_par, complexity s.sched_matrix)
  in
  List.iter
    (fun t ->
      if Linalg.Imat.is_unimodular t && Dependence.transform_legal u t then begin
        let s = analyze u t in
        match !best with
        | None -> best := Some s
        | Some b -> if score s < score b then best := Some s
      end)
    cands;
  match !best with
  | Some s -> s
  | None ->
    (* identity must be legal; reaching here means no deps at all were found
       and candidates were empty, which cannot happen for d >= 1 *)
    analyze u (identity_matrix d)
