(** Program loading and execution: compile every function, set up globals,
    run [main], and assemble the {!Trace.profile}. *)

open Cfront

exception Runtime_error of string

(* Allocate storage for a global declaration. *)
let setup_global cenv (d : Ast.decl) =
  let rt = cenv.Compile.rt in
  let ty = Compile.resolve cenv d.Ast.d_type in
  match ty with
  | Ast.Array _ ->
    let rec base_and_len t =
      match Compile.resolve cenv t with
      | Ast.Array (e, Some n) ->
        let b, l = base_and_len e in
        (b, n * l)
      | Ast.Array (_, None) ->
        Compile.unsupported "global array %s needs explicit dimensions" d.Ast.d_name
      | t -> (t, 1)
    in
    let base, len = base_and_len ty in
    let view =
      match base with
      | Ast.Float -> Mem.alloc_floats rt.Compile.alloc ~elem_bytes:4 len
      | Ast.Double -> Mem.alloc_floats rt.Compile.alloc ~elem_bytes:8 len
      | Ast.Int | Ast.Char -> Mem.alloc_ints rt.Compile.alloc len
      | Ast.Ptr _ -> Mem.alloc_ptrs rt.Compile.alloc len
      | _ -> Compile.unsupported "unsupported global array element type"
    in
    Compile.register_ptr_region rt.Compile.alloc d.Ast.d_name view;
    Hashtbl.replace cenv.Compile.globals d.Ast.d_name
      (Compile.GArray { view }, ty)
  | Ast.Struct _ -> Compile.unsupported "global struct values are not executable"
  | _ ->
    let zero =
      if Compile.is_floaty ty then Mem.VFloat 0.0
      else match ty with Ast.Ptr _ -> Mem.VNull | _ -> Mem.VInt 0
    in
    let bytes = Compile.scalar_bytes ty in
    let addr = Mem.alloc_addr rt.Compile.alloc bytes in
    Mem.register_region rt.Compile.alloc ~label:d.Ast.d_name ~base:addr ~bytes
      ~elem_bytes:bytes;
    Hashtbl.replace cenv.Compile.globals d.Ast.d_name
      (Compile.GScalar { cell = ref zero; addr }, ty)

(* Evaluate global initializers (in declaration order). *)
let init_global cenv (d : Ast.decl) =
  match d.Ast.d_init with
  | None -> ()
  | Some init -> (
    let f, _ = Compile.compile_expr cenv init in
    let v = f [||] in
    match Hashtbl.find_opt cenv.Compile.globals d.Ast.d_name with
    | Some (Compile.GScalar { cell; _ }, ty) -> cell := Compile.coerce ty v
    | _ -> ())

let compile_function cenv (f : Ast.func) =
  match f.Ast.f_body with
  | None -> ()
  | Some body ->
    let saved_scope = cenv.Compile.scope and saved_nslots = cenv.Compile.nslots in
    cenv.Compile.scope <- [];
    cenv.Compile.nslots <- 0;
    (* slot numbers restart here; bump the ordinal so shadow-slot addresses
       (keyed (function, slot)) never collide across functions *)
    cenv.Compile.cur_fun <- cenv.Compile.cur_fun + 1;
    let nparams = List.length f.Ast.f_params in
    List.iter
      (fun (p : Ast.param) ->
        ignore
          (Compile.fresh_slot cenv p.Ast.p_name (Compile.resolve cenv p.Ast.p_type)))
      f.Ast.f_params;
    (* A single-return body on the fast path compiles to its return
       expression alone: no statement chain and no [Return_v] unwind on
       the (hot) call exit.  Every other shape compiles as a block so
       pragma/loop pairing works at function level. *)
    let body_fn =
      match body with
      | [ { Ast.sdesc = Ast.SReturn (Some e); _ } ] when Compile.is_fast cenv.Compile.rt
        ->
        let fret, _ = Compile.compile_expr cenv e in
        fret
      | _ ->
        let code = Compile.compile_block cenv body in
        fun fr ->
          (try
             code fr;
             Mem.VInt 0
           with Compile.Return_v v -> v)
    in
    let nslots = max cenv.Compile.nslots 1 in
    cenv.Compile.scope <- saved_scope;
    cenv.Compile.nslots <- saved_nslots;
    let run (args : Mem.value array) : Mem.value =
      let fr = Array.make nslots Mem.VNull in
      Array.blit args 0 fr 0 (min (Array.length args) nparams);
      body_fn fr
    in
    (match Hashtbl.find_opt cenv.Compile.funcs f.Ast.f_name with
    | Some entry ->
      entry.Compile.fe_run <- Some run;
      entry.Compile.fe_fast <- Some body_fn;
      entry.Compile.fe_nslots <- nslots
    | None -> ())

(** Load a program: returns the compile environment, ready to run.
    [l1_bytes]/[l2_bytes] configure the simulated cache hierarchy (scaled
    problem sizes pair with scaled caches, cf. DESIGN.md). *)
let load ?l1_bytes ?l2_bytes ?instr ?shadow_slots ?tile_grain ?pool
    (program : Ast.program) : Compile.cenv =
  let rt =
    Compile.create_rt ?l1_bytes ?l2_bytes ?instr ?shadow_slots ?tile_grain ?pool ()
  in
  let tenv = Sema.Env.gather program in
  let cenv =
    {
      Compile.tenv;
      funcs = Hashtbl.create 16;
      globals = Hashtbl.create 16;
      rt;
      scope = [];
      nslots = 0;
      shadow_ctx = None;
      cur_fun = 0;
      shadow_addrs = Hashtbl.create 16;
    }
  in
  (* register functions first (mutual recursion) *)
  List.iter
    (function
      | Ast.GFunc f ->
        if not (Hashtbl.mem cenv.Compile.funcs f.Ast.f_name) || f.Ast.f_body <> None
        then
          Hashtbl.replace cenv.Compile.funcs f.Ast.f_name
            { Compile.fe_def = f; fe_run = None; fe_fast = None; fe_nslots = 1 }
      | _ -> ())
    program;
  List.iter (function Ast.GVar d -> setup_global cenv d | _ -> ()) program;
  List.iter (function Ast.GFunc f -> compile_function cenv f | _ -> ()) program;
  List.iter (function Ast.GVar d -> init_global cenv d | _ -> ()) program;
  cenv

(** Run a loaded program's [main] and assemble the profile. *)
let run_main (cenv : Compile.cenv) : Trace.profile =
  let rt = cenv.Compile.rt in
  Compile.reset_rt rt;
  let m = Compile.master rt in
  let entry =
    match Hashtbl.find_opt cenv.Compile.funcs "main" with
    | Some ({ Compile.fe_run = Some _; _ } as e) -> e
    | _ -> raise (Runtime_error "no main function")
  in
  let run = Option.get entry.Compile.fe_run in
  let nparams = List.length entry.Compile.fe_def.Ast.f_params in
  let args =
    if nparams >= 2 then [| Mem.VInt 1; Mem.VNull |]
    else if nparams = 1 then [| Mem.VInt 1 |]
    else [||]
  in
  let result =
    try run args with
    | Mem.Fault m -> raise (Runtime_error ("memory fault: " ^ m))
    | Compile.Unsupported m -> raise (Runtime_error ("unsupported: " ^ m))
  in
  (* close the trailing sequential segment *)
  rt.Compile.segments <-
    Trace.Seq (Cost.diff m.Compile.ds_counters rt.Compile.seg_start)
    :: rt.Compile.segments;
  {
    Trace.segments = List.rev rt.Compile.segments;
    output = Buffer.contents m.Compile.ds_out;
    return_code = Mem.to_int result;
    regions = List.rev rt.Compile.alloc.Mem.regions;
    par_traces =
      (if rt.Compile.trace_accesses then Some (List.rev rt.Compile.par_traces)
       else None);
    insp = List.rev rt.Compile.insp_log;
  }

(** One-shot: load and run.  [instr] selects the execution variant
    ({!Compile.instr}): [Traced] additionally records every load/store
    inside parallel loops into {!Trace.profile.par_traces} for the race
    detector without perturbing costs or output; [Fast] compiles
    uninstrumented typed closures (identical output and faults, empty
    cost/cache profile).  [pool] attaches a domain pool: canonical
    [#pragma omp parallel for] loops then really execute in parallel
    (output stays bit-identical to sequential for race-free programs).
    [tile_grain] (default on) dispatches tiled/skewed multi-loop nests at
    the granularity of the annotated tile loop and records nested point
    structure when tracing. *)
let run ?l1_bytes ?l2_bytes ?instr ?shadow_slots ?tile_grain ?pool
    (program : Ast.program) : Trace.profile =
  run_main (load ?l1_bytes ?l2_bytes ?instr ?shadow_slots ?tile_grain ?pool program)
